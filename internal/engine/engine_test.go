package engine

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/storage"
)

func simpleRunner(n int) *Runner {
	return New(Config{Topo: cluster.NewT1(n)})
}

func TestSingleTask(t *testing.T) {
	r := simpleRunner(2)
	job := &Job{Name: "one", Stages: []*Stage{{
		Name:  "s",
		Tasks: []*Task{{Name: "t", Machine: 0, Compute: 2.5, DiskRead: 0, DiskWrite: 0}},
	}}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ResponseSeconds-2.5) > 1e-9 {
		t.Fatalf("response = %g, want 2.5", m.ResponseSeconds)
	}
	if m.TasksRun != 1 || m.NetworkBytes != 0 || m.DiskBytes != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestDiskTimeAccounted(t *testing.T) {
	r := simpleRunner(1)
	bw := r.cfg.Topo.DiskBandwidth()
	job := &Job{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, DiskRead: int64(bw), DiskWrite: int64(bw)}}}}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ResponseSeconds-2.0) > 1e-9 {
		t.Fatalf("response = %g, want 2 (1s read + 1s write)", m.ResponseSeconds)
	}
	if m.DiskBytes != int64(2*bw) {
		t.Fatalf("disk bytes = %d", m.DiskBytes)
	}
}

func TestParallelMachines(t *testing.T) {
	// Two equal tasks on two machines run concurrently.
	r := simpleRunner(2)
	job := &Job{Stages: []*Stage{{Tasks: []*Task{
		{Machine: 0, Compute: 3},
		{Machine: 1, Compute: 3},
	}}}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ResponseSeconds-3) > 1e-9 {
		t.Fatalf("response = %g, want 3", m.ResponseSeconds)
	}
	if math.Abs(m.MachineSeconds-6) > 1e-9 {
		t.Fatalf("machine time = %g, want 6", m.MachineSeconds)
	}
}

func TestMachineSerializesTasks(t *testing.T) {
	// Two tasks pinned to one machine run back to back.
	r := simpleRunner(2)
	job := &Job{Stages: []*Stage{{Tasks: []*Task{
		{Machine: 0, Compute: 3},
		{Machine: 0, Compute: 3},
	}}}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ResponseSeconds-6) > 1e-9 {
		t.Fatalf("response = %g, want 6", m.ResponseSeconds)
	}
}

func TestTransferTiming(t *testing.T) {
	// Task on machine 0 sends bytes to a stage-2 task on machine 1;
	// response = compute + transfer + compute.
	r := simpleRunner(2)
	bytes := int64(cluster.LinkBandwidth) // exactly 1 second on a T1 link
	job := &Job{Stages: []*Stage{
		{Tasks: []*Task{{Machine: 0, Compute: 1, Outputs: []Output{{DstTask: 0, Bytes: bytes}}}}},
		{Tasks: []*Task{{Machine: 1, Compute: 1, Kind: KindCombine}}},
	}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ResponseSeconds-3) > 1e-9 {
		t.Fatalf("response = %g, want 3", m.ResponseSeconds)
	}
	if m.NetworkBytes != bytes {
		t.Fatalf("network bytes = %d, want %d", m.NetworkBytes, bytes)
	}
}

func TestIntraMachineTransferFree(t *testing.T) {
	r := simpleRunner(2)
	job := &Job{Stages: []*Stage{
		{Tasks: []*Task{{Machine: 0, Compute: 1, Outputs: []Output{{DstTask: 0, Bytes: 1 << 30}}}}},
		{Tasks: []*Task{{Machine: 0, Compute: 1}}},
	}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.NetworkBytes != 0 {
		t.Fatalf("intra-machine transfer counted as network: %d", m.NetworkBytes)
	}
	if math.Abs(m.ResponseSeconds-2) > 1e-9 {
		t.Fatalf("response = %g, want 2", m.ResponseSeconds)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two producers on machine 0 and 1... use same link: two tasks on
	// machine 0 each send 1s worth of data to machine 1: the second
	// transfer waits for the first.
	r := simpleRunner(2)
	bytes := int64(cluster.LinkBandwidth)
	job := &Job{Stages: []*Stage{
		{Tasks: []*Task{
			{Machine: 0, Compute: 1, Outputs: []Output{{DstTask: 0, Bytes: bytes}}},
			{Machine: 0, Compute: 1, Outputs: []Output{{DstTask: 0, Bytes: bytes}}},
		}},
		{Tasks: []*Task{{Machine: 1, Compute: 0}}},
	}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	// Task A: 0..1, sends 1..2. Task B: 1..2, its transfer must wait for
	// the link until 2, finishing at 3.
	if math.Abs(m.ResponseSeconds-3) > 1e-9 {
		t.Fatalf("response = %g, want 3", m.ResponseSeconds)
	}
}

func TestSlowLinkSlowsTransfer(t *testing.T) {
	topo := cluster.NewT2(cluster.T2Config{Machines: 4, Pods: 2, Levels: 1})
	r := New(Config{Topo: topo})
	bytes := int64(cluster.LinkBandwidth) // 1s intra-pod, 32s cross-pod
	job := &Job{Stages: []*Stage{
		{Tasks: []*Task{{Machine: 0, Outputs: []Output{{DstTask: 0, Bytes: bytes}}}}},
		{Tasks: []*Task{{Machine: 2, Compute: 0}}},
	}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ResponseSeconds-32) > 1e-6 {
		t.Fatalf("cross-pod response = %g, want 32", m.ResponseSeconds)
	}
}

func TestJobValidation(t *testing.T) {
	r := simpleRunner(2)
	bad := []*Job{
		{Stages: []*Stage{{Tasks: []*Task{{Machine: 9}}}}},
		{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Compute: -1}}}}},
		{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Outputs: []Output{{DstTask: 0, Bytes: 1}}}}}}},
		{Stages: []*Stage{
			{Tasks: []*Task{{Machine: 0, Outputs: []Output{{DstTask: 5, Bytes: 1}}}}},
			{Tasks: []*Task{{Machine: 0}}},
		}},
	}
	for i, job := range bad {
		if _, err := r.Run(job); err == nil {
			t.Errorf("job %d: expected validation error", i)
		}
	}
}

func TestRunnerAccumulatesAcrossJobs(t *testing.T) {
	r := simpleRunner(1)
	job := &Job{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Compute: 1}}}}}
	for i := 0; i < 3; i++ {
		if _, err := r.Run(job); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(r.Metrics().ResponseSeconds-3) > 1e-9 {
		t.Fatalf("cumulative response = %g, want 3", r.Metrics().ResponseSeconds)
	}
	if r.Metrics().TasksRun != 3 {
		t.Fatalf("tasks = %d", r.Metrics().TasksRun)
	}
}

func failureFixture(t *testing.T) (*Runner, *Job) {
	t.Helper()
	topo := cluster.NewT1(4)
	pl := &partition.Placement{MachineOf: []cluster.MachineID{0, 1, 2, 3}}
	reps := storage.PlaceReplicas(pl, topo, 1)
	r := New(Config{
		Topo:              topo,
		Replicas:          reps,
		Failures:          []Failure{{Machine: 0, At: 5}},
		HeartbeatInterval: 1,
	})
	tasks := make([]*Task, 4)
	for p := 0; p < 4; p++ {
		tasks[p] = &Task{
			Name: "work", Kind: KindTransfer,
			Part: partition.PartID(p), Machine: cluster.MachineID(p),
			Compute: 10,
		}
	}
	job := &Job{Name: "failjob", Stages: []*Stage{{Name: "only", Tasks: tasks}}}
	return r, job
}

func TestFailureRecovery(t *testing.T) {
	r, job := failureFixture(t)
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries)
	}
	// Machine 0 dies at t=5; its task restarts at t=6 on a replica that
	// is already busy until t=10, so the re-run spans 10..20.
	if math.Abs(m.ResponseSeconds-20) > 1e-9 {
		t.Fatalf("response = %g, want 20", m.ResponseSeconds)
	}
	// 5 task executions: 4 originals (one aborted, 3 useful) minus the
	// aborted one never completes; TasksRun counts completions = 4.
	if m.TasksRun != 4 {
		t.Fatalf("tasks run = %d, want 4", m.TasksRun)
	}
}

func TestFailureWithoutReplicasErrors(t *testing.T) {
	r := New(Config{Topo: cluster.NewT1(2), Failures: []Failure{{Machine: 0, At: 1}}})
	job := &Job{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Compute: 5}}}}}
	if _, err := r.Run(job); err == nil {
		t.Fatal("expected error when failures configured without replicas")
	}
}

func TestCombineRecoveryRetransfersInputs(t *testing.T) {
	topo := cluster.NewT1(4)
	// Pin replicas so partition 1's failover target (machine 2) differs
	// from the producer's machine (0): the input re-transfer must cross
	// the network.
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{
		{0, 3, 1}, {1, 2, 3}, {2, 3, 0}, {3, 0, 1},
	}}
	bytes := int64(cluster.LinkBandwidth)
	mkJob := func() *Job {
		return &Job{Stages: []*Stage{
			{Tasks: []*Task{
				{Name: "prod", Kind: KindTransfer, Part: 0, Machine: 0, Compute: 1,
					Outputs: []Output{{DstTask: 0, Bytes: bytes}}},
			}},
			{Tasks: []*Task{
				{Name: "cons", Kind: KindCombine, Part: 1, Machine: 1, Compute: 10},
			}},
		}}
	}
	// Baseline without failure.
	r0 := New(Config{Topo: topo, Replicas: reps})
	base, err := r0.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	// Kill machine 1 while the combine task runs (stage 2 starts at t=2).
	r1 := New(Config{Topo: topo, Replicas: reps, Failures: []Failure{{Machine: 1, At: 4}}, HeartbeatInterval: 1})
	m, err := r1.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d", m.Recoveries)
	}
	// Inputs re-transferred: network bytes doubled.
	if m.NetworkBytes != 2*base.NetworkBytes {
		t.Fatalf("network = %d, want %d (inputs re-sent)", m.NetworkBytes, 2*base.NetworkBytes)
	}
	if m.ResponseSeconds <= base.ResponseSeconds {
		t.Fatalf("recovered run (%g) not slower than baseline (%g)", m.ResponseSeconds, base.ResponseSeconds)
	}
}

func TestFailureBeforeStageReassignsUpfront(t *testing.T) {
	topo := cluster.NewT1(3)
	pl := &partition.Placement{MachineOf: []cluster.MachineID{0, 1, 2}}
	reps := storage.PlaceReplicas(pl, topo, 3)
	r := New(Config{Topo: topo, Replicas: reps, Failures: []Failure{{Machine: 0, At: 0.5}}})
	// Two sequential jobs; machine 0 dies during the first. The second
	// job's task pinned to machine 0 must be reassigned at stage start.
	j1 := &Job{Stages: []*Stage{{Tasks: []*Task{{Part: 1, Machine: 1, Compute: 2}}}}}
	j2 := &Job{Stages: []*Stage{{Tasks: []*Task{{Part: 0, Machine: 0, Compute: 2}}}}}
	if _, err := r.Run(j1); err != nil {
		t.Fatal(err)
	}
	m, err := r.Run(j2)
	if err != nil {
		t.Fatal(err)
	}
	if m.TasksRun != 1 {
		t.Fatalf("tasks run = %d", m.TasksRun)
	}
	// No recovery counted: reassignment happened before dispatch.
	if m.Recoveries != 0 {
		t.Fatalf("recoveries = %d, want 0", m.Recoveries)
	}
}

func TestTimelineBuckets(t *testing.T) {
	r := simpleRunner(1)
	bw := r.cfg.Topo.DiskBandwidth()
	job := &Job{Stages: []*Stage{{Tasks: []*Task{
		{Machine: 0, DiskRead: int64(bw), DiskWrite: int64(bw)},
	}}}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	samples := r.Timeline().Buckets(1.0, r.Clock())
	var total int64
	for _, s := range samples {
		total += s.DiskBytes
	}
	if total != int64(2*bw) {
		t.Fatalf("timeline total = %d, want %d", total, int64(2*bw))
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() (Metrics, error) {
		topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
		r := New(Config{Topo: topo})
		var stage1, stage2 []*Task
		for i := 0; i < 16; i++ {
			stage1 = append(stage1, &Task{
				Machine: cluster.MachineID(i % 8), Compute: float64(i%3) + 1,
				Outputs: []Output{{DstTask: i, Bytes: int64(i+1) * 1e6}},
			})
			stage2 = append(stage2, &Task{Machine: cluster.MachineID((i + 3) % 8), Compute: 1, Kind: KindCombine})
		}
		return r.Run(&Job{Stages: []*Stage{{Tasks: stage1}, {Tasks: stage2}}})
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSlotsAllowConcurrentTasks(t *testing.T) {
	// Two equal tasks on one machine: serial with 1 slot, parallel with 2.
	mkJob := func() *Job {
		return &Job{Stages: []*Stage{{Tasks: []*Task{
			{Machine: 0, Compute: 3},
			{Machine: 0, Compute: 3},
		}}}}
	}
	r1 := New(Config{Topo: cluster.NewT1(1)})
	m1, err := r1.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(Config{Topo: cluster.NewT1(1), SlotsPerMachine: 2})
	m2, err := r2.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1.ResponseSeconds-6) > 1e-9 {
		t.Fatalf("1 slot response = %g, want 6", m1.ResponseSeconds)
	}
	if math.Abs(m2.ResponseSeconds-3) > 1e-9 {
		t.Fatalf("2 slots response = %g, want 3", m2.ResponseSeconds)
	}
	// Machine time identical: slots change elapsed, not work.
	if math.Abs(m1.MachineSeconds-m2.MachineSeconds) > 1e-9 {
		t.Fatalf("machine time differs: %g vs %g", m1.MachineSeconds, m2.MachineSeconds)
	}
}

func TestSlotsWithFailureLosesAllRunning(t *testing.T) {
	topo := cluster.NewT1(2)
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{{0, 1}, {0, 1}}}
	r := New(Config{
		Topo: topo, Replicas: reps, SlotsPerMachine: 2,
		Failures:          []Failure{{Machine: 0, At: 1}},
		HeartbeatInterval: 0.5,
	})
	job := &Job{Stages: []*Stage{{Tasks: []*Task{
		{Part: 0, Machine: 0, Compute: 5},
		{Part: 1, Machine: 0, Compute: 5},
	}}}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	// Both running tasks lost at t=1, requeued on machine 1 at t=1.5,
	// run serially... machine 1 also has 2 slots: parallel, done at 6.5.
	if m.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", m.Recoveries)
	}
	if math.Abs(m.ResponseSeconds-6.5) > 1e-9 {
		t.Fatalf("response = %g, want 6.5", m.ResponseSeconds)
	}
}

func TestMultipleFailures(t *testing.T) {
	topo := cluster.NewT1(4)
	pl := &partition.Placement{MachineOf: []cluster.MachineID{0, 1, 2, 3}}
	reps := storage.PlaceReplicas(pl, topo, 9)
	r := New(Config{
		Topo: topo, Replicas: reps,
		Failures:          []Failure{{Machine: 0, At: 2}, {Machine: 1, At: 4}},
		HeartbeatInterval: 1,
	})
	tasks := make([]*Task, 4)
	for p := 0; p < 4; p++ {
		tasks[p] = &Task{Part: partition.PartID(p), Machine: cluster.MachineID(p), Compute: 10}
	}
	m, err := r.Run(&Job{Stages: []*Stage{{Tasks: tasks}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Recoveries < 2 {
		t.Fatalf("recoveries = %d, want >= 2", m.Recoveries)
	}
	if m.TasksRun != 4 {
		t.Fatalf("completions = %d, want 4", m.TasksRun)
	}
}

func TestAllReplicasDeadDeadlocks(t *testing.T) {
	topo := cluster.NewT1(2)
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{{0, 1}}}
	r := New(Config{
		Topo: topo, Replicas: reps,
		Failures:          []Failure{{Machine: 0, At: 1}, {Machine: 1, At: 2}},
		HeartbeatInterval: 0.5,
	})
	job := &Job{Stages: []*Stage{{Tasks: []*Task{{Part: 0, Machine: 0, Compute: 10}}}}}
	if _, err := r.Run(job); err == nil {
		t.Fatal("expected an error when every replica is dead")
	}
}
