package engine

import "sort"

// Metrics aggregates the four quantities the paper reports for every
// experiment (§F.1): response time, total machine time, total network I/O
// and total disk I/O.
type Metrics struct {
	// ResponseSeconds is the elapsed virtual time from job submission to
	// completion.
	ResponseSeconds float64
	// MachineSeconds is the busy time summed over all machines.
	MachineSeconds float64
	// NetworkBytes counts bytes moved between distinct machines
	// (intra-machine transfers are free and uncounted, like the paper's
	// network I/O metric).
	NetworkBytes int64
	// DiskBytes counts bytes read from or written to local disks.
	DiskBytes int64
	// TasksRun counts task executions including re-executions.
	TasksRun int
	// Recoveries counts task re-executions due to machine failures.
	Recoveries int
	// TransferDrops counts transfers failed by transient link faults;
	// TransferRetries counts their backoff re-issues. Retried bytes are
	// only added to NetworkBytes when an attempt succeeds.
	TransferDrops   int
	TransferRetries int
	// Speculations counts backup task copies the job manager launched
	// against stragglers. A backup that loses the race still shows up in
	// TasksRun and MachineSeconds — wasted work is real work.
	Speculations int
	// Checkpoints and Restores count iteration-checkpoint commits and
	// rollback restores recorded by multi-iteration drivers.
	Checkpoints int
	Restores    int
	// Joins and Drains count elastic membership events fired: machines
	// that went live mid-run and machines that began a graceful drain
	// (a drain whose deadline expires additionally shows up in the death
	// metrics via the failover path).
	Joins  int
	Drains int
	// Migrations counts committed live partition migrations (including
	// instant zero-byte rehomes); MigrationBytes is the delivered
	// migration volume, also included in NetworkBytes — migration traffic
	// is real traffic.
	Migrations     int
	MigrationBytes int64
}

// Add accumulates other into m (for multi-iteration jobs).
func (m *Metrics) Add(other Metrics) {
	m.ResponseSeconds += other.ResponseSeconds
	m.MachineSeconds += other.MachineSeconds
	m.NetworkBytes += other.NetworkBytes
	m.DiskBytes += other.DiskBytes
	m.TasksRun += other.TasksRun
	m.Recoveries += other.Recoveries
	m.TransferDrops += other.TransferDrops
	m.TransferRetries += other.TransferRetries
	m.Speculations += other.Speculations
	m.Checkpoints += other.Checkpoints
	m.Restores += other.Restores
	m.Joins += other.Joins
	m.Drains += other.Drains
	m.Migrations += other.Migrations
	m.MigrationBytes += other.MigrationBytes
}

// IOSample is a point on the disk-I/O-rate timeline (Figure 10).
type IOSample struct {
	// Time is the bucket start in virtual seconds.
	Time float64
	// DiskBytes is the disk traffic attributed to the bucket.
	DiskBytes int64
}

// Timeline records bursty I/O events and renders them as a bucketed rate
// series.
type Timeline struct {
	events []ioEvent
}

type ioEvent struct {
	at    float64
	bytes int64
}

func (tl *Timeline) record(at float64, bytes int64) {
	if bytes != 0 {
		tl.events = append(tl.events, ioEvent{at: at, bytes: bytes})
	}
}

// Buckets aggregates the recorded events into fixed-width buckets covering
// [0, end]. Events beyond end land in the final bucket.
func (tl *Timeline) Buckets(width, end float64) []IOSample {
	if width <= 0 || end <= 0 {
		return nil
	}
	n := int(end/width) + 1
	out := make([]IOSample, n)
	for i := range out {
		out[i].Time = float64(i) * width
	}
	sort.Slice(tl.events, func(i, j int) bool { return tl.events[i].at < tl.events[j].at })
	for _, e := range tl.events {
		idx := int(e.at / width)
		if idx >= n {
			idx = n - 1
		}
		out[idx].DiskBytes += e.bytes
	}
	return out
}
