package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs the *actual Go compute* of simulated tasks — Transfer fan-out,
// Combine folds, Map/Reduce bodies — on real OS threads, while the
// discrete-event loop remains the single source of truth for virtual-time
// ordering, failures and the clock. The simulator models a cluster of many
// machines; the Pool makes the wall clock see many cores too.
//
// The determinism contract: a Pool only ever executes index-disjoint work
// (worker i writes slot i of preallocated per-task buffers), and callers
// merge per-task outputs in task-index order afterwards. Results are
// therefore bit-identical for every worker count, including 1.
type Pool struct {
	workers int
}

// NewPool creates a pool with the given worker count. A count <= 0 selects
// GOMAXPROCS, the default sizing.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker count. A nil pool is serial (1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n), spread over the pool's workers.
// Indices are claimed atomically, so callers must not rely on which worker
// runs which index — only on the index-disjoint-writes discipline above.
// With one worker (or a nil pool) it degenerates to a plain loop on the
// calling goroutine. A panic raised by fn is re-raised on the caller, as a
// serial loop would.
func (p *Pool) ForEach(n int, fn func(i int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
