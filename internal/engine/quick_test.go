package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

// randomJob builds a random two-stage job on n machines.
func randomJob(rng *rand.Rand, n int) (*Job, int64) {
	s1 := rng.Intn(12) + 1
	s2 := rng.Intn(8) + 1
	stage2 := make([]*Task, s2)
	for i := range stage2 {
		stage2[i] = &Task{
			Kind:    KindCombine,
			Machine: cluster.MachineID(rng.Intn(n)),
			Compute: rng.Float64(),
		}
	}
	var crossBytes int64
	stage1 := make([]*Task, s1)
	for i := range stage1 {
		t := &Task{
			Machine:   cluster.MachineID(rng.Intn(n)),
			Compute:   rng.Float64(),
			DiskRead:  int64(rng.Intn(1 << 20)),
			DiskWrite: int64(rng.Intn(1 << 20)),
		}
		for o := 0; o < rng.Intn(3); o++ {
			dst := rng.Intn(s2)
			bytes := int64(rng.Intn(1<<20) + 1)
			t.Outputs = append(t.Outputs, Output{DstTask: dst, Bytes: bytes})
			if stage2[dst].Machine != t.Machine {
				crossBytes += bytes
			}
		}
		stage1[i] = t
	}
	return &Job{Stages: []*Stage{{Tasks: stage1}, {Tasks: stage2}}}, crossBytes
}

func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed int64, nPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nPick%6)
		job, crossBytes := randomJob(rng, n)
		r := New(Config{Topo: cluster.NewT1(n)})
		m, err := r.Run(job)
		if err != nil {
			return false
		}
		// Network bytes are exactly the cross-machine output bytes.
		if m.NetworkBytes != crossBytes {
			return false
		}
		// Disk bytes are exactly the summed task disk traffic.
		var disk int64
		for _, st := range job.Stages {
			for _, task := range st.Tasks {
				disk += task.DiskRead + task.DiskWrite
			}
		}
		if m.DiskBytes != disk {
			return false
		}
		// Elapsed time bounds: response covers the busiest machine but
		// not more than total serialized work plus transfer time.
		if m.ResponseSeconds < 0 || m.MachineSeconds < 0 {
			return false
		}
		if m.MachineSeconds > m.ResponseSeconds*float64(n)+1e-9 {
			return false
		}
		// Every task completed exactly once.
		want := len(job.Stages[0].Tasks) + len(job.Stages[1].Tasks)
		return m.TasksRun == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEngineDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() Metrics {
			rng := rand.New(rand.NewSource(seed))
			job, _ := randomJob(rng, 4)
			r := New(Config{Topo: cluster.NewT1(4)})
			m, err := r.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSlotsNeverSlowDown(t *testing.T) {
	f := func(seed int64) bool {
		mk := func(slots int) Metrics {
			rng := rand.New(rand.NewSource(seed))
			job, _ := randomJob(rng, 3)
			r := New(Config{Topo: cluster.NewT1(3), SlotsPerMachine: slots})
			m, err := r.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		m1, m4 := mk(1), mk(4)
		// More slots never change the work done. Response time usually
		// drops but can grow slightly: earlier task completions reorder
		// transfers on the coupled egress/ingress NIC queues (a Graham-
		// style scheduling anomaly), bounded well below 2x.
		machineDiff := m4.MachineSeconds - m1.MachineSeconds
		if machineDiff < 0 {
			machineDiff = -machineDiff
		}
		return m4.ResponseSeconds <= 2*m1.ResponseSeconds+1e-9 &&
			machineDiff < 1e-9 && // summation order differs with slots
			m4.NetworkBytes == m1.NetworkBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
