package engine

import (
	"math"

	"repro/internal/cluster"
)

// The job manager "records resource utilization and estimates the execution
// progress of the job" (Appendix B). The runner keeps both: per-machine
// busy time for utilization, and a task-completion timeline for progress.

// ProgressSample is one point of a job's execution progress.
type ProgressSample struct {
	// Time is the virtual time of the sample.
	Time float64
	// Completed and Total count task completions; Fraction is their
	// ratio, the manager's progress estimate.
	Completed int
	Total     int
}

// Fraction returns the completed share at this sample.
func (p ProgressSample) Fraction() float64 {
	if p.Total == 0 {
		return 1
	}
	return float64(p.Completed) / float64(p.Total)
}

// Progress returns the task-completion timeline of the most recent Run
// call: one sample per completed task, in time order.
func (r *Runner) Progress() []ProgressSample {
	out := make([]ProgressSample, len(r.progress))
	copy(out, r.progress)
	return out
}

// EstimateRemaining extrapolates the time left for the running job from the
// current progress: with fraction f done at elapsed t, the estimate is
// t*(1-f)/f. The job manager's GUI uses this estimate to display runtime
// dynamics [3]. It returns 0 for a finished job and +Inf before any task
// completes.
func EstimateRemaining(samples []ProgressSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	last := samples[len(samples)-1]
	f := last.Fraction()
	if f >= 1 {
		return 0
	}
	if f == 0 || last.Time == 0 {
		return math.Inf(1)
	}
	return last.Time * (1 - f) / f
}

// MachineUtilization reports each machine's busy time divided by the total
// elapsed virtual time across all jobs run so far. Dead machines show the
// utilization they accumulated before failing.
func (r *Runner) MachineUtilization() []float64 {
	out := make([]float64, r.cfg.Topo.NumMachines())
	if r.clock <= 0 {
		return out
	}
	for m, b := range r.busySeconds {
		out[m] = b / r.clock
	}
	return out
}

// busyAccounting hooks called from the event loop.
func (r *Runner) noteTaskDone(m cluster.MachineID, at, dur float64, total int) {
	if r.busySeconds == nil {
		r.busySeconds = make([]float64, r.cfg.Topo.NumMachines())
	}
	r.busySeconds[m] += dur
	r.progress = append(r.progress, ProgressSample{
		Time:      at,
		Completed: len(r.progress) + 1,
		Total:     total,
	})
}

// resetProgress starts a fresh progress timeline for a new job.
func (r *Runner) resetProgress(totalTasks int) {
	r.progress = r.progress[:0]
	r.progressTotal = totalTasks
}
