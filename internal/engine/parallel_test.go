package engine

import (
	"sync/atomic"
	"testing"
)

func TestPoolCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 32} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]atomic.Int32
		p.ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestPoolIndexDisjointWrites(t *testing.T) {
	// The canonical usage: each index fills its own slot; the merged
	// result must be identical for every worker count.
	compute := func(workers int) []int {
		out := make([]int, 257)
		NewPool(workers).ForEach(len(out), func(i int) { out[i] = i * i })
		return out
	}
	ref := compute(1)
	for _, workers := range []int{2, 8} {
		got := compute(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestPoolZeroAndNil(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("NewPool(0).Workers() = %d, want >= 1 (GOMAXPROCS)", w)
	}
	var nilPool *Pool
	if w := nilPool.Workers(); w != 1 {
		t.Fatalf("nil pool workers = %d, want 1", w)
	}
	ran := 0
	nilPool.ForEach(5, func(i int) { ran++ })
	if ran != 5 {
		t.Fatalf("nil pool ran %d of 5", ran)
	}
}

func TestPoolEmptyAndSmall(t *testing.T) {
	p := NewPool(8)
	p.ForEach(0, func(int) { t.Fatal("fn called for n=0") })
	var count atomic.Int32
	p.ForEach(1, func(int) { count.Add(1) })
	if count.Load() != 1 {
		t.Fatalf("n=1 ran %d times", count.Load())
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			NewPool(workers).ForEach(100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

// TestRunnerMetricsIdenticalAcrossWorkers: the worker pool executes compute
// bodies, but the event loop alone owns virtual time — so a job's metrics
// are identical whatever the pool size.
func TestRunnerMetricsIdenticalAcrossWorkers(t *testing.T) {
	mk := func(workers int) Metrics {
		r, job := failureFixture(t)
		r2 := New(Config{
			Topo:              r.cfg.Topo,
			Replicas:          r.cfg.Replicas,
			Failures:          r.cfg.Failures,
			HeartbeatInterval: r.cfg.HeartbeatInterval,
			Workers:           workers,
		})
		m, err := r2.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := mk(1)
	for _, workers := range []int{2, 8} {
		if got := mk(workers); got != ref {
			t.Fatalf("workers=%d: metrics %+v, want %+v", workers, got, ref)
		}
	}
}
