package engine

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestProgressTimeline(t *testing.T) {
	r := simpleRunner(2)
	job := &Job{Stages: []*Stage{{Tasks: []*Task{
		{Machine: 0, Compute: 1},
		{Machine: 1, Compute: 2},
		{Machine: 0, Compute: 1},
	}}}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	samples := r.Progress()
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	// Monotone in time and completion count; final fraction 1.
	for i := 1; i < len(samples); i++ {
		if samples[i].Time < samples[i-1].Time {
			t.Fatal("progress time not monotone")
		}
		if samples[i].Completed != samples[i-1].Completed+1 {
			t.Fatal("completion count not incremental")
		}
	}
	if f := samples[len(samples)-1].Fraction(); f != 1 {
		t.Fatalf("final fraction = %g", f)
	}
	if rem := EstimateRemaining(samples); rem != 0 {
		t.Fatalf("remaining after completion = %g", rem)
	}
}

func TestProgressResetsPerJob(t *testing.T) {
	r := simpleRunner(1)
	job := &Job{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Compute: 1}}}}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	if n := len(r.Progress()); n != 1 {
		t.Fatalf("progress carries over between jobs: %d samples", n)
	}
}

func TestEstimateRemainingMidJob(t *testing.T) {
	// Synthetic: half done at t=10 -> ~10 remaining.
	samples := []ProgressSample{
		{Time: 5, Completed: 1, Total: 4},
		{Time: 10, Completed: 2, Total: 4},
	}
	if rem := EstimateRemaining(samples); math.Abs(rem-10) > 1e-9 {
		t.Fatalf("remaining = %g, want 10", rem)
	}
	if rem := EstimateRemaining(nil); rem != 0 {
		t.Fatalf("remaining of empty = %g", rem)
	}
}

func TestMachineUtilization(t *testing.T) {
	r := simpleRunner(2)
	// Machine 0 busy 4s, machine 1 busy 2s; response = 4s.
	job := &Job{Stages: []*Stage{{Tasks: []*Task{
		{Machine: 0, Compute: 4},
		{Machine: 1, Compute: 2},
	}}}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	u := r.MachineUtilization()
	if math.Abs(u[0]-1.0) > 1e-9 {
		t.Fatalf("u[0] = %g, want 1", u[0])
	}
	if math.Abs(u[1]-0.5) > 1e-9 {
		t.Fatalf("u[1] = %g, want 0.5", u[1])
	}
}

func TestUtilizationZeroBeforeRuns(t *testing.T) {
	r := New(Config{Topo: cluster.NewT1(3)})
	for _, u := range r.MachineUtilization() {
		if u != 0 {
			t.Fatal("nonzero utilization before any job")
		}
	}
}
