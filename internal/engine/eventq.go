package engine

import "repro/internal/cluster"

// event kinds for the simulation queue, ordered by dispatch priority at
// equal times.
const (
	evTaskDone = iota
	evTransferDone
	evFailure
	evRecovery
	// evTransferRetry re-issues a dropped transfer after its backoff.
	evTransferRetry
	// evJoin brings a dormant elastic machine live (fault.MachineJoin).
	evJoin
	// evDrain starts a graceful decommission (fault.MachineDrain); the
	// event carries the drain deadline.
	evDrain
	// evDrainDeadline fires at a drain's deadline; if migration is still
	// incomplete the machine degrades into the ordinary death path.
	evDrainDeadline
)

type event struct {
	at   float64
	kind int
	seq  int // tie-break for determinism
	// task events
	task    *Task
	machine cluster.MachineID
	// start and dur record the task attempt's actual start time and
	// duration (slowdown-adjusted), so accounting never has to re-derive
	// them from fault-dependent state.
	start, dur float64
	// transfer events
	bytes    int64
	transfer *pendingTransfer
	// failure and elastic-membership events (failMachine doubles as the
	// joining/draining machine; deadline is a drain's migration deadline)
	failMachine cluster.MachineID
	lost        []*Task
	deadline    float64
	// traceSeq is the Seq of the trace event whose consequence this heap
	// event is (the transfer for evTransferDone, the failure for evRecovery,
	// the drop for evTransferRetry); startSeq is the task-start Seq carried
	// to the matching evTaskDone. Both None when tracing is off.
	traceSeq int
	startSeq int
}

// eventQueue is a 4-ary min-heap of simulation events ordered by the strict
// total order (at, kind, seq) — seq is unique, so the pop sequence is fully
// determined regardless of internal layout — plus a freelist that recycles
// event records across pushes, stages and jobs. The event loop pops one
// event per task completion and per transfer; at millions of events the
// 4-ary layout halves the sift-down depth of a binary heap and the freelist
// keeps the loop allocation-free in steady state.
type eventQueue struct {
	h    []*event
	free []*event
}

func (q *eventQueue) Len() int { return len(q.h) }

func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// alloc returns a zeroed event record, recycled when possible.
func (q *eventQueue) alloc() *event {
	if n := len(q.free); n > 0 {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		*e = event{}
		return e
	}
	return &event{}
}

// recycle returns a popped event to the freelist. The caller must not hold
// the record past this call.
func (q *eventQueue) recycle(e *event) { q.free = append(q.free, e) }

func (q *eventQueue) push(e *event) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(q.h[i], q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *eventQueue) pop() *event {
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = nil
	q.h = q.h[:n]
	i := 0
	for {
		first := i*4 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(q.h[c], q.h[best]) {
				best = c
			}
		}
		if !less(q.h[best], q.h[i]) {
			break
		}
		q.h[i], q.h[best] = q.h[best], q.h[i]
		i = best
	}
	return top
}

// reset recycles every event still queued (stale completions of dead
// machines, failures armed beyond the stage barrier) so the next stage
// starts from an empty queue without dropping the records.
func (q *eventQueue) reset() {
	for i, e := range q.h {
		q.free = append(q.free, e)
		q.h[i] = nil
	}
	q.h = q.h[:0]
}
