package engine

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/trace"
)

// countKinds tallies an event stream by kind.
func countKinds(evs []trace.Event) map[trace.EventKind]int {
	c := make(map[trace.EventKind]int)
	for _, ev := range evs {
		c[ev.Kind]++
	}
	return c
}

func TestTracedRunEmitsStructuredEvents(t *testing.T) {
	rec := trace.NewRecorder()
	r := New(Config{Topo: cluster.NewT1(2), Trace: rec})
	bytes := int64(cluster.LinkBandwidth)
	job := &Job{Name: "traced", Stages: []*Stage{
		{Name: "produce", Tasks: []*Task{
			{Name: "p0", Machine: 0, Part: 0, Compute: 1, Outputs: []Output{{DstTask: 0, Bytes: bytes}}},
		}},
		{Name: "consume", Tasks: []*Task{
			{Name: "c0", Machine: 1, Part: 1, Compute: 1, Kind: KindCombine},
		}},
	}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	c := countKinds(rec.Events())
	if c[trace.KindJobBegin] != 1 || c[trace.KindJobEnd] != 1 {
		t.Fatalf("job markers = %d/%d", c[trace.KindJobBegin], c[trace.KindJobEnd])
	}
	if c[trace.KindStageBegin] != 2 || c[trace.KindStageEnd] != 2 {
		t.Fatalf("stage markers = %d/%d", c[trace.KindStageBegin], c[trace.KindStageEnd])
	}
	if c[trace.KindTaskStart] != 2 || c[trace.KindTaskEnd] != 2 {
		t.Fatalf("task markers = %d/%d", c[trace.KindTaskStart], c[trace.KindTaskEnd])
	}
	if c[trace.KindTransfer] != 1 {
		t.Fatalf("transfers = %d, want 1", c[trace.KindTransfer])
	}

	// The breakdown computed from the stream must agree with Metrics.
	b := trace.Summarize(rec.Events())
	tot := b.Totals()
	if tot.EgressBytes != m.NetworkBytes || tot.IngressBytes != m.NetworkBytes {
		t.Fatalf("trace bytes egress=%d ingress=%d, metrics=%d",
			tot.EgressBytes, tot.IngressBytes, m.NetworkBytes)
	}
	if tot.TasksRun != m.TasksRun {
		t.Fatalf("trace tasks = %d, metrics = %d", tot.TasksRun, m.TasksRun)
	}
	// One transfer of LinkBandwidth bytes = 1 second on each NIC.
	if math.Abs(tot.EgressBusySeconds-1) > 1e-9 || math.Abs(tot.IngressBusySeconds-1) > 1e-9 {
		t.Fatalf("NIC busy = %v/%v, want 1/1", tot.EgressBusySeconds, tot.IngressBusySeconds)
	}
	// The transfer event must carry the destination task's partition.
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindTransfer && ev.Part != 1 {
			t.Fatalf("transfer dst partition = %d, want 1", ev.Part)
		}
	}
}

func TestTracedIntraMachineTransferNotEmitted(t *testing.T) {
	rec := trace.NewRecorder()
	r := New(Config{Topo: cluster.NewT1(2), Trace: rec})
	job := &Job{Name: "local", Stages: []*Stage{
		{Tasks: []*Task{{Machine: 0, Compute: 1, Outputs: []Output{{DstTask: 0, Bytes: 1 << 20}}}}},
		{Tasks: []*Task{{Machine: 0, Compute: 1, Kind: KindCombine}}},
	}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	if n := countKinds(rec.Events())[trace.KindTransfer]; n != 0 {
		t.Fatalf("intra-machine move emitted %d transfer events", n)
	}
}

func TestTracedFailureRecovery(t *testing.T) {
	rec := trace.NewRecorder()
	topo := cluster.NewT1(4)
	pl := &partition.Placement{MachineOf: []cluster.MachineID{0, 1, 2, 3}}
	reps := storage.PlaceReplicas(pl, topo, 1)
	r := New(Config{
		Topo:              topo,
		Replicas:          reps,
		Failures:          []Failure{{Machine: 0, At: 5}},
		HeartbeatInterval: 1,
		Trace:             rec,
	})
	tasks := make([]*Task, 4)
	for p := 0; p < 4; p++ {
		tasks[p] = &Task{
			Name: "work", Kind: KindTransfer,
			Part: partition.PartID(p), Machine: cluster.MachineID(p),
			Compute: 10,
		}
	}
	m, err := r.Run(&Job{Name: "failjob", Stages: []*Stage{{Name: "only", Tasks: tasks}}})
	if err != nil {
		t.Fatal(err)
	}
	c := countKinds(rec.Events())
	if c[trace.KindFailure] != 1 {
		t.Fatalf("failure events = %d, want 1", c[trace.KindFailure])
	}
	if c[trace.KindTaskLost] != 1 {
		t.Fatalf("lost-task events = %d, want 1", c[trace.KindTaskLost])
	}
	if c[trace.KindRetry] != int(m.Recoveries) {
		t.Fatalf("retry events = %d, metrics recoveries = %d", c[trace.KindRetry], m.Recoveries)
	}
	// Completions in the trace match the metrics (the aborted original
	// never emits KindTaskEnd).
	if c[trace.KindTaskEnd] != m.TasksRun {
		t.Fatalf("task-end events = %d, metrics tasks = %d", c[trace.KindTaskEnd], m.TasksRun)
	}
	b := trace.Summarize(rec.Events())
	per := b.PerMachine()
	if !per[0].Failed || per[0].TasksLost != 1 {
		t.Fatalf("machine 0 breakdown: failed=%v lost=%d", per[0].Failed, per[0].TasksLost)
	}
}

// TestUntracedRunnerUnchanged: a runner without a recorder behaves exactly
// as before tracing existed (and its Trace accessor reports nil).
func TestUntracedRunnerUnchanged(t *testing.T) {
	r := simpleRunner(2)
	if r.Trace().Enabled() {
		t.Fatal("untraced runner reports an enabled recorder")
	}
	job := &Job{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Compute: 1}}}}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	if r.Trace().Len() != 0 {
		t.Fatal("untraced run recorded events")
	}
}
