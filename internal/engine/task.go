// Package engine is Surfer's distributed runtime (§3, Appendix B) on a
// simulated cluster: a job manager dispatches the tasks of each stage to
// slave machines, data moves between machines over links whose bandwidth
// comes from the cluster topology, heartbeats detect machine failures, and
// failed tasks are re-executed on replica machines — re-transferring their
// inputs first when they are Combine-type tasks.
//
// The engine executes in virtual time: task durations are computed from
// their CPU work and disk traffic, transfers from their byte volume and the
// link bandwidth. The event loop interleaves machines, links and failures
// exactly as a real cluster would; only the clock is simulated. All byte
// counters (network, disk) are exact.
package engine

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/partition"
)

// TaskKind distinguishes recovery semantics (Appendix B): a failed Transfer
// task is simply re-executed; a failed Combine task must first re-fetch its
// inputs from the machines that produced them.
type TaskKind int

const (
	// KindTransfer tasks read their partition from local disk and produce
	// outputs; re-execution needs no remote data.
	KindTransfer TaskKind = iota
	// KindCombine tasks consume outputs of the previous stage;
	// re-execution re-transfers those inputs.
	KindCombine
)

func (k TaskKind) String() string {
	switch k {
	case KindTransfer:
		return "transfer"
	case KindCombine:
		return "combine"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Output declares bytes produced by a task for a task of the next stage.
type Output struct {
	// DstTask indexes into the next stage's task list.
	DstTask int
	// Bytes is the transfer volume.
	Bytes int64
}

// Task is a unit of work pinned to a machine (the machine holding the
// primary replica of its partition).
type Task struct {
	// Name is a diagnostic label.
	Name string
	// Kind selects the failure-recovery semantics.
	Kind TaskKind
	// Part is the partition the task processes; used to find replicas
	// when the primary machine dies. Use NoPart for unpinned tasks.
	Part partition.PartID
	// Machine is the initial assignment.
	Machine cluster.MachineID
	// Compute is CPU seconds.
	Compute float64
	// DiskRead and DiskWrite are local disk bytes.
	DiskRead  int64
	DiskWrite int64
	// Outputs are the data this task produces for next-stage tasks.
	Outputs []Output
	// idx is the task's position in its stage's task list, stamped by the
	// engine when the stage starts; it keys all per-task stage state.
	idx int
}

// NoPart marks a task not bound to any partition.
const NoPart partition.PartID = -1

// Stage is a set of tasks separated from the next stage by a barrier: all
// tasks and all their transfers complete before the next stage starts (the
// bulk-synchronous structure of propagation's Transfer and Combine stages).
type Stage struct {
	Name  string
	Tasks []*Task
}

// Job is a sequence of stages.
type Job struct {
	Name   string
	Stages []*Stage
}

// Validate checks output references and machine assignments.
func (j *Job) Validate(topo *cluster.Topology) error {
	for si, st := range j.Stages {
		for ti, task := range st.Tasks {
			if int(task.Machine) < 0 || int(task.Machine) >= topo.NumMachines() {
				return fmt.Errorf("engine: job %q stage %d task %d on invalid machine %d", j.Name, si, ti, task.Machine)
			}
			if task.Compute < 0 || task.DiskRead < 0 || task.DiskWrite < 0 {
				return fmt.Errorf("engine: job %q stage %d task %d has negative cost", j.Name, si, ti)
			}
			for _, out := range task.Outputs {
				if si+1 >= len(j.Stages) {
					return fmt.Errorf("engine: job %q stage %d task %d outputs past the last stage", j.Name, si, ti)
				}
				if out.DstTask < 0 || out.DstTask >= len(j.Stages[si+1].Tasks) {
					return fmt.Errorf("engine: job %q stage %d task %d output to invalid task %d", j.Name, si, ti, out.DstTask)
				}
				if out.Bytes < 0 {
					return fmt.Errorf("engine: job %q stage %d task %d negative output bytes", j.Name, si, ti)
				}
			}
		}
	}
	return nil
}
