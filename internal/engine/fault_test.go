package engine

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/partition"
	"repro/internal/storage"
)

// transferJob is a two-stage job whose single output transfer takes exactly
// one second on a healthy T1 link.
func transferJob() *Job {
	return &Job{Name: "xfer", Stages: []*Stage{
		{Name: "s1", Tasks: []*Task{{Name: "p", Machine: 0, Compute: 1,
			Outputs: []Output{{DstTask: 0, Bytes: int64(cluster.LinkBandwidth)}}}}},
		{Name: "s2", Tasks: []*Task{{Name: "c", Machine: 1, Compute: 1, Kind: KindCombine}}},
	}}
}

func TestDegradedLinkSlowsTransfer(t *testing.T) {
	sched := &fault.Schedule{Links: []fault.LinkFault{
		{Src: 0, Dst: 1, From: 0, Until: 10, Factor: 4},
	}}
	r := New(Config{Topo: cluster.NewT1(2), Faults: sched})
	m, err := r.Run(transferJob())
	if err != nil {
		t.Fatal(err)
	}
	// Compute 1s, transfer at quarter rate 4s, compute 1s.
	if math.Abs(m.ResponseSeconds-6) > 1e-9 {
		t.Fatalf("response = %g, want 6", m.ResponseSeconds)
	}
	if m.TransferDrops != 0 || m.TransferRetries != 0 {
		t.Fatalf("degradation should not drop: %+v", m)
	}
}

func TestDroppedTransferRetriesWithBackoff(t *testing.T) {
	sched := &fault.Schedule{Links: []fault.LinkFault{
		{Src: 0, Dst: 1, From: 0, Until: 3, Drop: true},
	}}
	r := New(Config{Topo: cluster.NewT1(2), Faults: sched})
	m, err := r.Run(transferJob())
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1 starts at 1, times out at 2, retries at 2.25 (still in the
	// drop window), times out at 3.25, retries at 3.75 (window closed) and
	// delivers by 4.75; stage 2 computes 1s more.
	if math.Abs(m.ResponseSeconds-5.75) > 1e-9 {
		t.Fatalf("response = %g, want 5.75", m.ResponseSeconds)
	}
	if m.TransferDrops != 2 || m.TransferRetries != 2 {
		t.Fatalf("drops/retries = %d/%d, want 2/2", m.TransferDrops, m.TransferRetries)
	}
	// Only the delivered attempt counts as network I/O.
	if m.NetworkBytes != int64(cluster.LinkBandwidth) {
		t.Fatalf("network bytes = %d, want %d", m.NetworkBytes, int64(cluster.LinkBandwidth))
	}
}

func TestRetryBudgetExhaustionFailsRun(t *testing.T) {
	sched := &fault.Schedule{Links: []fault.LinkFault{
		{Src: 0, Dst: 1, From: 0, Until: 100, Drop: true},
	}}
	r := New(Config{
		Topo: cluster.NewT1(2), Faults: sched,
		Retry: fault.RetryPolicy{MaxAttempts: 2},
	})
	_, err := r.Run(transferJob())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want retry budget exhaustion", err)
	}
}

func TestSlowdownStretchesTasks(t *testing.T) {
	sched := &fault.Schedule{Slowdowns: []fault.Slowdown{
		{Machine: 0, From: 0, Until: 0.5, Factor: 3},
	}}
	r := New(Config{Topo: cluster.NewT1(1), Faults: sched})
	job := &Job{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Compute: 2}}}}}
	m, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	// The task starts inside the slowdown window, so its whole duration is
	// multiplied even though the window closes at 0.5.
	if math.Abs(m.ResponseSeconds-6) > 1e-9 {
		t.Fatalf("response = %g, want 6", m.ResponseSeconds)
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	topo := cluster.NewT1(4)
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
	}}
	sched := &fault.Schedule{Slowdowns: []fault.Slowdown{
		{Machine: 3, From: 0, Until: 0.5, Factor: 10},
	}}
	mkJob := func() *Job {
		tasks := make([]*Task, 4)
		for p := 0; p < 4; p++ {
			tasks[p] = &Task{Name: "t" + string(rune('0'+p)),
				Part: partition.PartID(p), Machine: cluster.MachineID(p), Compute: 1}
		}
		return &Job{Name: "spec", Stages: []*Stage{{Name: "s", Tasks: tasks}}}
	}
	// Without speculation the straggler gates the stage at 10s.
	r0 := New(Config{Topo: topo, Replicas: reps, Faults: sched})
	base, err := r0.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.ResponseSeconds-10) > 1e-9 {
		t.Fatalf("baseline response = %g, want 10", base.ResponseSeconds)
	}
	// With speculation a backup launches on partition 3's other replica
	// holder (machine 0) once the median is trusted, and commits first.
	r1 := New(Config{Topo: topo, Replicas: reps, Faults: sched,
		Speculation: fault.SpeculationPolicy{Enabled: true}})
	m, err := r1.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	if m.Speculations != 1 {
		t.Fatalf("speculations = %d, want 1", m.Speculations)
	}
	// Backup launches at t=1 on machine 0 and finishes at t=2.
	if math.Abs(m.ResponseSeconds-2) > 1e-9 {
		t.Fatalf("speculative response = %g, want 2", m.ResponseSeconds)
	}
	if m.ResponseSeconds >= base.ResponseSeconds {
		t.Fatalf("speculation did not help: %g vs %g", m.ResponseSeconds, base.ResponseSeconds)
	}
}

func TestFaultyRunsAreDeterministic(t *testing.T) {
	sched := &fault.Schedule{
		Links: []fault.LinkFault{
			{Src: 0, Dst: 1, From: 0.5, Until: 2.5, Drop: true},
			{Src: 2, Dst: 3, From: 0, Until: 5, Factor: 8},
		},
		Slowdowns: []fault.Slowdown{{Machine: 2, From: 0, Until: 1, Factor: 4}},
	}
	mk := func(workers int) (Metrics, error) {
		topo := cluster.NewT1(4)
		reps := &storage.Replicas{Machines: [][]cluster.MachineID{
			{0, 1}, {1, 2}, {2, 3}, {3, 0},
		}}
		r := New(Config{Topo: topo, Replicas: reps, Faults: sched, Workers: workers,
			Speculation: fault.SpeculationPolicy{Enabled: true}})
		var s1, s2 []*Task
		for i := 0; i < 8; i++ {
			s1 = append(s1, &Task{Name: "a", Part: partition.PartID(i % 4),
				Machine: cluster.MachineID(i % 4), Compute: float64(i%3) + 1,
				Outputs: []Output{{DstTask: (i + 1) % 4, Bytes: int64(i+1) * 1e7}}})
		}
		for i := 0; i < 4; i++ {
			s2 = append(s2, &Task{Name: "b", Part: partition.PartID(i),
				Machine: cluster.MachineID(i), Compute: 1, Kind: KindCombine})
		}
		return r.Run(&Job{Stages: []*Stage{{Tasks: s1}, {Tasks: s2}}})
	}
	a, err := mk(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fault replay nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.TransferDrops == 0 {
		t.Fatal("schedule injected no drops; test is vacuous")
	}
}

func TestValidateFailures(t *testing.T) {
	topo := cluster.NewT1(4)
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
	}}
	cases := []struct {
		name string
		fs   []Failure
		reps *storage.Replicas
		want string // substring of the error, "" = valid
	}{
		{"empty plan", nil, nil, ""},
		{"valid single kill", []Failure{{Machine: 2, At: 5}}, reps, ""},
		{"negative time", []Failure{{Machine: 1, At: -1}}, reps, "negative time"},
		{"unknown machine", []Failure{{Machine: 9, At: 1}}, reps, "outside"},
		{"duplicate machine", []Failure{{Machine: 1, At: 1}, {Machine: 1, At: 2}}, reps, "duplicate"},
		{"kills everything", []Failure{{Machine: 0, At: 1}, {Machine: 1, At: 1}, {Machine: 2, At: 1}, {Machine: 3, At: 1}}, reps, "kills all"},
		{"no replicas", []Failure{{Machine: 0, At: 1}}, nil, "no replicas"},
		{"kills every replica", []Failure{{Machine: 0, At: 1}, {Machine: 1, At: 2}}, reps, "every replica of partition 0"},
	}
	for _, tc := range cases {
		err := ValidateFailures(tc.fs, topo, tc.reps)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
