package engine

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Failure schedules the death of a machine at a virtual time, for the
// fault-tolerance experiments (Figure 10).
type Failure struct {
	Machine cluster.MachineID
	At      float64
}

// Config configures a Runner.
type Config struct {
	Topo *cluster.Topology
	// Replicas provides failover targets; required when Failures is
	// non-empty.
	Replicas *storage.Replicas
	// Failures to inject, in any order.
	Failures []Failure
	// HeartbeatInterval is the failure-detection latency of the job
	// manager (Appendix B). Defaults to 1s.
	HeartbeatInterval float64
	// SlotsPerMachine is how many tasks a slave runs concurrently (the
	// paper's slaves are quad-core Xeons; the job manager "dispatches one
	// more task to a slave node when the slave node finishes a task").
	// Defaults to 1.
	SlotsPerMachine int
	// Workers sizes the pool that executes the real Go compute of tasks
	// (Transfer fan-out, Combine folds, Map/Reduce bodies) on host cores.
	// Zero or negative selects GOMAXPROCS; 1 forces serial execution.
	// Results are bit-identical for every value — see Pool.
	Workers int
	// Trace receives one structured event per task start/finish, NIC
	// transfer, stage barrier, failure and retry. Nil disables tracing at
	// zero cost. Every event is emitted from the serial event loop, so the
	// stream is identical for every Workers value (see docs/METRICS.md).
	Trace *trace.Recorder
	// Faults injects transient faults — degraded links, dropped
	// transfers, machine slowdowns — replayed deterministically from the
	// serial event loop. Nil means no transient faults, at zero cost.
	Faults *fault.Schedule
	// Retry governs dropped-transfer detection and exponential backoff.
	// The zero value selects the defaults (1s timeout, 0.25s backoff
	// doubling to an 8s cap, unlimited attempts).
	Retry fault.RetryPolicy
	// Speculation enables MapReduce-style backup tasks for stragglers.
	// Requires Replicas (backups run on replica holders).
	Speculation fault.SpeculationPolicy
	// PartBytes is the resident state volume of each partition, indexed by
	// PartID: the bytes a live migration must copy when the partition's
	// home machine drains. Missing or short means zero-cost (instant)
	// migrations. Only consulted when Faults contains drains.
	PartBytes []int64
}

// Runner executes jobs on the simulated cluster. A Runner carries its
// virtual clock and metrics across jobs, so a multi-iteration application
// can run each iteration as a separate job and read cumulative metrics.
type Runner struct {
	cfg      Config
	pool     *Pool
	clock    float64
	metrics  Metrics
	timeline Timeline
	dead     map[cluster.MachineID]bool
	failures []Failure // pending, sorted by At
	// progress tracking (Appendix B): per-machine busy time and the task
	// completion timeline of the current job.
	busySeconds   []float64
	progress      []ProgressSample
	progressTotal int
	// tr receives structured trace events; nil means tracing is disabled
	// and every emission site reduces to a nil check.
	tr *trace.Recorder
	// Causal-DAG threading (docs/METRICS.md): lastJobEnd is the Seq of the
	// previous job's end (the cause of the next job's begin), failSeq the
	// Seq of each dead machine's failure event (the cause of everything that
	// machine's death enabled), lastFailSeq the most recent failure, and
	// recoveryPending marks that the next job is a rollback reaction whose
	// begin should be caused by that failure instead of the previous job.
	lastJobEnd      int
	failSeq         map[cluster.MachineID]int
	lastFailSeq     int
	recoveryPending bool
	// faults is the transient-fault schedule (nil = fault-free: every
	// query is a nil check), retry and spec the defaulted policies.
	faults *fault.Schedule
	retry  fault.RetryPolicy
	spec   fault.SpeculationPolicy
	// Elastic membership (see elastic.go). dormant marks provisioned
	// machines whose join has not fired; draining marks machines mid-drain;
	// retired marks cleanly decommissioned machines. home overlays the
	// replica primary as a partition's current location after migration —
	// the shared Replicas is never mutated, so runners at different worker
	// counts stay independent. nicRate caps a machine's NIC line rate
	// (0 = topology rate); joins and drains are the pending elastic events
	// in deterministic (At, Machine) order; drainState tracks each active
	// drain's outstanding migrations.
	dormant    map[cluster.MachineID]bool
	draining   map[cluster.MachineID]bool
	retired    map[cluster.MachineID]bool
	home       map[partition.PartID]cluster.MachineID
	nicRate    []float64
	joins      []fault.MachineJoin
	drains     []fault.MachineDrain
	drainState map[cluster.MachineID]*drainState
	// evq is the simulation event queue, shared across stages and jobs so
	// its heap storage and event freelist are reused.
	evq eventQueue
}

// New creates a Runner.
func New(cfg Config) *Runner {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 1.0
	}
	if cfg.SlotsPerMachine <= 0 {
		cfg.SlotsPerMachine = 1
	}
	r := &Runner{
		cfg: cfg, pool: NewPool(cfg.Workers), tr: cfg.Trace,
		dead:        make(map[cluster.MachineID]bool),
		faults:      cfg.Faults,
		retry:       cfg.Retry.WithDefaults(),
		spec:        cfg.Speculation.WithDefaults(),
		lastJobEnd:  trace.None,
		failSeq:     make(map[cluster.MachineID]int),
		lastFailSeq: trace.None,
		dormant:     make(map[cluster.MachineID]bool),
		draining:    make(map[cluster.MachineID]bool),
		retired:     make(map[cluster.MachineID]bool),
		home:        make(map[partition.PartID]cluster.MachineID),
		nicRate:     make([]float64, cfg.Topo.NumMachines()),
		drainState:  make(map[cluster.MachineID]*drainState),
	}
	r.failures = append(r.failures, cfg.Failures...)
	sortFailures(r.failures)
	if cfg.Faults != nil {
		// Join targets start dormant; their NIC rate cap is in force from
		// the moment they go live.
		for _, j := range cfg.Faults.Joins {
			if int(j.Machine) >= 0 && int(j.Machine) < len(r.nicRate) {
				r.dormant[j.Machine] = true
				r.nicRate[j.Machine] = j.NICs
			}
		}
		r.joins = cfg.Faults.SortedJoins()
		r.drains = cfg.Faults.SortedDrains()
	}
	return r
}

// Pool returns the worker pool that executes task compute bodies.
func (r *Runner) Pool() *Pool { return r.pool }

// Trace returns the runner's trace recorder (nil when tracing is off).
func (r *Runner) Trace() *trace.Recorder { return r.tr }

// Workers reports the pool size the runner executes compute with.
func (r *Runner) Workers() int { return r.pool.Workers() }

func sortFailures(fs []Failure) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].At < fs[j-1].At; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// Metrics returns the cumulative metrics of all jobs run so far.
func (r *Runner) Metrics() Metrics {
	m := r.metrics
	m.ResponseSeconds = r.clock
	return m
}

// Timeline exposes the recorded disk-I/O timeline.
func (r *Runner) Timeline() *Timeline { return &r.timeline }

// Clock returns the current virtual time.
func (r *Runner) Clock() float64 { return r.clock }

// NumMachines reports the size of the underlying cluster.
func (r *Runner) NumMachines() int { return r.cfg.Topo.NumMachines() }

// IsDead reports whether a machine has failed so far, for membership
// tracking by the job scheduler (§3).
func (r *Runner) IsDead(m cluster.MachineID) bool { return r.dead[m] }

// Deaths reports how many machines have died so far. Multi-iteration
// drivers use the delta across an iteration to detect that state stored on
// a now-dead machine was lost and a checkpoint rollback is needed.
func (r *Runner) Deaths() int { return len(r.dead) }

// NoteCheckpoint records a committed iteration checkpoint on the runner's
// metrics and trace stream. The checkpoint's I/O cost is charged by the
// checkpoint job itself; this marks the commit point.
func (r *Runner) NoteCheckpoint(job string, bytes int64) {
	r.metrics.Checkpoints++
	r.tr.Emit(trace.Event{Kind: trace.KindCheckpoint, Job: job, Cause: r.lastJobEnd,
		Machine: trace.None, Dst: trace.None, Part: trace.None,
		Bytes: bytes, Time: r.clock})
}

// NoteRestore records a checkpoint rollback (a machine death invalidated
// iterations since the last checkpoint).
func (r *Runner) NoteRestore(job string, bytes int64) {
	r.metrics.Restores++
	r.tr.Emit(trace.Event{Kind: trace.KindRestore, Job: job, Cause: r.lastJobEnd,
		Machine: trace.None, Dst: trace.None, Part: trace.None,
		Bytes: bytes, Time: r.clock})
}

// MarkNextJobRecovery declares that the next Run is a rollback reaction to
// the most recent machine failure (a restore job): its job-begin event is
// caused by that failure instead of the previous job's end, so the causal
// DAG shows the failure — not normal job chaining — driving the replay.
func (r *Runner) MarkNextJobRecovery() { r.recoveryPending = true }

// ValidateFailures rejects malformed failure plans at build time instead of
// letting them panic or hang mid-run: negative times, unknown or duplicate
// machines, failures without replicas to fail over to, and kill sets that
// destroy every replica of some partition.
func ValidateFailures(fs []Failure, topo *cluster.Topology, reps *storage.Replicas) error {
	if len(fs) == 0 {
		return nil
	}
	killed := make(map[cluster.MachineID]bool, len(fs))
	for i, f := range fs {
		if f.At < 0 {
			return fmt.Errorf("engine: failure %d kills machine %d at negative time %g", i, f.Machine, f.At)
		}
		if int(f.Machine) < 0 || int(f.Machine) >= topo.NumMachines() {
			return fmt.Errorf("engine: failure %d kills machine %d outside [0,%d)", i, f.Machine, topo.NumMachines())
		}
		if killed[f.Machine] {
			return fmt.Errorf("engine: duplicate failure for machine %d", f.Machine)
		}
		killed[f.Machine] = true
	}
	if len(killed) >= topo.NumMachines() {
		return fmt.Errorf("engine: failure plan kills all %d machines", topo.NumMachines())
	}
	if reps == nil {
		return fmt.Errorf("engine: %d failure(s) configured but no replicas to fail over to", len(fs))
	}
	for p, ms := range reps.Machines {
		alive := false
		for _, m := range ms {
			if !killed[m] {
				alive = true
				break
			}
		}
		if !alive {
			return fmt.Errorf("engine: failure plan kills every replica of partition %d (machines %v)", p, ms)
		}
	}
	return nil
}

// Topology exposes the simulated cluster the runner executes on.
func (r *Runner) Topology() *cluster.Topology { return r.cfg.Topo }

// pendingTransfer is the retry state machine of one logical transfer: the
// same record is re-dispatched until an attempt succeeds, carrying the
// attempt count that drives the exponential backoff.
type pendingTransfer struct {
	src, dst cluster.MachineID
	bytes    int64
	part     partition.PartID
	attempt  int
	// dstName is the destination task's name and cause the Seq of the event
	// that enabled the current attempt (the producing task's end, a recovery
	// retry, or the transfer-retry after a drop's backoff) — both carried
	// onto the emitted transfer event for the causal DAG.
	dstName string
	cause   int
	// migrate marks a live partition migration: a successful attempt emits
	// KindPartitionMigrate instead of KindTransfer and rehomes the
	// partition on arrival. part is the migrating partition itself.
	migrate bool
}

// runAttempt is one currently-executing copy of a task, registered when the
// attempt starts and dropped when it completes or its machine dies. The
// registry replaces scans of the event queue: the straggler check and the
// failure handler read it directly, in attempt-start order.
type runAttempt struct {
	task    *Task
	machine cluster.MachineID
	dur     float64
}

// stageRun holds the mutable state of one stage execution. All per-task
// state is indexed by the task's position in the stage (Task.idx, stamped
// at stage start) and all per-machine state by machine ID, so the event
// loop touches only flat slices.
type stageRun struct {
	r        *Runner
	job      *Job
	stageIdx int
	events   *eventQueue
	seq      int
	queues   [][]*Task
	// running counts the tasks currently executing on each machine; a
	// machine accepts up to Config.SlotsPerMachine concurrent tasks.
	running []int
	// egressFree / ingressFree model the NIC as the shared resource: a
	// transfer occupies the sender's egress and the receiver's ingress
	// for bytes/bandwidth(src,dst) seconds. All-to-all bursts therefore
	// serialize at the NICs (incast), as on a real cluster.
	egressFree  []float64
	ingressFree []float64
	remaining   int
	inflight    int
	// attempts registers the currently running task copies across all
	// machines, in attempt-start order.
	attempts []runAttempt
	// taskMachine records where each task actually ran (-1 = nowhere yet),
	// for input re-transfer on recovery.
	taskMachine []cluster.MachineID
	// committed marks tasks whose first completed copy already committed
	// its results; later copies (speculative backups, stale completions)
	// burn machine time but change nothing — first completion wins, and
	// because commitment happens in the serial event loop the committed
	// results are identical in task order for every worker count.
	committed []bool
	// copies counts the currently running copies of each task (original
	// plus speculative backups).
	copies []int
	// speculated marks tasks that already received a backup copy, so the
	// straggler rule fires at most once per task.
	speculated []bool
	// doneDurs collects committed task durations for the median the
	// speculation policy compares stragglers against.
	doneDurs []float64
	end      float64
	// Causal threading: stageBeginSeq is this stage's begin event,
	// dispatchCause the Seq that enabled the next task launch (set before
	// every startNext call), popSeq the Seq describing the heap event just
	// handled, endCause the Seq of the event that last advanced sr.end (the
	// stage barrier's binding event), endSeq the emitted stage-end.
	stageBeginSeq int
	dispatchCause int
	popSeq        int
	endCause      int
	endSeq        int
	// err aborts the event loop (e.g. a transfer exhausted its retries).
	err error
}

// Run executes the job, advancing the runner's clock, and returns the
// metrics of this job alone.
func (r *Runner) Run(job *Job) (Metrics, error) {
	if err := job.Validate(r.cfg.Topo); err != nil {
		return Metrics{}, err
	}
	if len(r.failures) > 0 && r.cfg.Replicas == nil {
		return Metrics{}, fmt.Errorf("engine: failures configured without replicas")
	}
	if len(r.drains) > 0 && r.cfg.Replicas == nil {
		return Metrics{}, fmt.Errorf("engine: drains configured without replicas (migration needs partition homes)")
	}
	before := r.metrics
	start := r.clock
	total := 0
	for _, st := range job.Stages {
		total += len(st.Tasks)
	}
	r.resetProgress(total)
	// A job begins because the previous one ended — except a rollback
	// replay, which begins because a machine died.
	jobCause := r.lastJobEnd
	if r.recoveryPending && r.lastFailSeq != trace.None {
		jobCause = r.lastFailSeq
	}
	r.recoveryPending = false
	cause := r.tr.Emit(trace.Event{Kind: trace.KindJobBegin, Job: job.Name, Cause: jobCause,
		Machine: trace.None, Dst: trace.None, Part: trace.None, Time: r.clock})
	var prev *stageRun
	for si := range job.Stages {
		sr, err := r.runStage(job, si, prev, cause)
		if err != nil {
			return Metrics{}, err
		}
		cause = sr.endSeq
		prev = sr
	}
	r.lastJobEnd = r.tr.Emit(trace.Event{Kind: trace.KindJobEnd, Job: job.Name, Cause: cause,
		Machine: trace.None, Dst: trace.None, Part: trace.None, Time: r.clock})
	m := r.metrics
	m.ResponseSeconds = r.clock - start
	m.MachineSeconds -= before.MachineSeconds
	m.NetworkBytes -= before.NetworkBytes
	m.DiskBytes -= before.DiskBytes
	m.TasksRun -= before.TasksRun
	m.Recoveries -= before.Recoveries
	m.TransferDrops -= before.TransferDrops
	m.TransferRetries -= before.TransferRetries
	m.Speculations -= before.Speculations
	m.Checkpoints -= before.Checkpoints
	m.Restores -= before.Restores
	m.Joins -= before.Joins
	m.Drains -= before.Drains
	m.Migrations -= before.Migrations
	m.MigrationBytes -= before.MigrationBytes
	return m, nil
}

func (r *Runner) runStage(job *Job, si int, prev *stageRun, cause int) (*stageRun, error) {
	stage := job.Stages[si]
	nm := r.cfg.Topo.NumMachines()
	nt := len(stage.Tasks)
	sr := &stageRun{
		r: r, job: job, stageIdx: si,
		events:      &r.evq,
		queues:      make([][]*Task, nm),
		running:     make([]int, nm),
		egressFree:  make([]float64, nm),
		ingressFree: make([]float64, nm),
		taskMachine: make([]cluster.MachineID, nt),
		committed:   make([]bool, nt),
		copies:      make([]int, nt),
		speculated:  make([]bool, nt),
		remaining:   nt,
		end:         r.clock,
	}
	// Enqueue tasks on their machines: a migrated partition's tasks follow
	// its new home, dead/draining/dormant/retired primaries fail over. Each
	// task is stamped with its stage-local index, the key of all per-task
	// state above.
	for i, t := range stage.Tasks {
		t.idx = i
		sr.taskMachine[i] = -1
		m, err := r.place(t)
		if err != nil {
			return nil, err
		}
		sr.queues[m] = append(sr.queues[m], t)
	}
	// Arm pending failures that fall inside this stage: push them as
	// events; ones beyond the stage end simply never fire (they are kept
	// for later stages).
	for _, f := range r.failures {
		if !r.dead[f.Machine] {
			at := f.At
			if at < r.clock {
				at = r.clock
			}
			sr.push(event{at: at, kind: evFailure, failMachine: f.Machine})
		}
	}
	// Arm elastic membership events the same way: joins that have not
	// fired (machine still dormant) and drains that have not started.
	for _, j := range r.joins {
		if r.dormant[j.Machine] {
			at := j.At
			if at < r.clock {
				at = r.clock
			}
			sr.push(event{at: at, kind: evJoin, failMachine: j.Machine})
		}
	}
	for _, d := range r.drains {
		if !r.draining[d.Machine] && !r.retired[d.Machine] && !r.dead[d.Machine] {
			at := d.At
			if at < r.clock {
				at = r.clock
			}
			sr.push(event{at: at, kind: evDrain, failMachine: d.Machine, deadline: d.Deadline})
		}
	}
	sr.stageBeginSeq = r.tr.Emit(trace.Event{Kind: trace.KindStageBegin, Job: job.Name, Stage: stage.Name,
		Cause: cause, Machine: trace.None, Dst: trace.None, Part: trace.None, Time: r.clock})
	// An empty (or instantaneous) stage's barrier is bound by its own begin.
	sr.endCause = sr.stageBeginSeq
	// Start machines in ID order for determinism. These launches are
	// enabled by the stage barrier opening.
	sr.dispatchCause = sr.stageBeginSeq
	for i := 0; i < r.cfg.Topo.NumMachines(); i++ {
		sr.startNext(cluster.MachineID(i), r.clock)
	}
	// Event loop.
	for sr.remaining > 0 || sr.inflight > 0 {
		if sr.events.Len() == 0 {
			return nil, fmt.Errorf("engine: stage %q deadlocked with %d tasks and %d transfers pending", stage.Name, sr.remaining, sr.inflight)
		}
		e := sr.events.pop()
		sr.popSeq = trace.None
		switch e.kind {
		case evTaskDone:
			sr.onTaskDone(e, prev)
		case evTransferDone:
			sr.inflight--
			sr.popSeq = e.traceSeq
			if e.transfer != nil && e.transfer.migrate {
				sr.onMigrateDone(e)
			}
		case evFailure:
			sr.onFailure(e)
		case evRecovery:
			sr.onRecovery(e, prev)
		case evTransferRetry:
			sr.onTransferRetry(e)
		case evJoin:
			sr.onJoin(e)
		case evDrain:
			sr.onDrain(e)
		case evDrainDeadline:
			sr.onDrainDeadline(e)
		}
		if sr.err != nil {
			return nil, sr.err
		}
		// The last event to advance sr.end is the stage barrier's binding
		// event: the stage-end's cause on the critical path.
		if e.at > sr.end {
			sr.end = e.at
			sr.endCause = sr.popSeq
		}
		sr.events.recycle(e)
	}
	// Recycle events the barrier left behind (stale completions of dead
	// machines, failures armed past the stage end — re-armed next stage).
	sr.events.reset()
	r.clock = sr.end
	sr.endSeq = r.tr.Emit(trace.Event{Kind: trace.KindStageEnd, Job: job.Name, Stage: stage.Name,
		Cause: sr.endCause, Machine: trace.None, Dst: trace.None, Part: trace.None, Time: sr.end})
	return sr, nil
}

// stageName names the stage this run executes, for trace events.
func (sr *stageRun) stageName() string { return sr.job.Stages[sr.stageIdx].Name }

// emitTask emits a task-lifecycle trace event and returns its Seq (None when
// tracing is off, via the nil-safe Emit).
func (sr *stageRun) emitTask(kind trace.EventKind, t *Task, m cluster.MachineID, at, start, end float64, cause int) int {
	return sr.r.tr.Emit(trace.Event{
		Kind: kind, Job: sr.job.Name, Stage: sr.stageName(), Name: t.Name,
		Cause: cause, Machine: int(m), Dst: trace.None, Part: int(t.Part),
		Time: at, Start: start, End: end,
	})
}

// push enqueues a simulation event, copying it into a recycled record and
// stamping the deterministic tie-break sequence.
func (sr *stageRun) push(ev event) {
	e := sr.events.alloc()
	*e = ev
	e.seq = sr.seq
	sr.seq++
	sr.events.push(e)
}

// startNext launches queued tasks on machine m at time now until its slots
// are full or its queue drains.
func (sr *stageRun) startNext(m cluster.MachineID, now float64) {
	if sr.r.dead[m] {
		return
	}
	for sr.running[m] < sr.r.cfg.SlotsPerMachine {
		q := sr.queues[m]
		if len(q) == 0 {
			return
		}
		t := q[0]
		sr.queues[m] = q[1:]
		if sr.committed[t.idx] {
			// A queued backup whose original already finished: drop it.
			continue
		}
		sr.running[m]++
		sr.copies[t.idx]++
		// Stragglers: a machine slowed by a transient fault stretches
		// every task that starts during the slowdown window.
		dur := sr.r.taskDuration(t) * sr.r.faults.SlowdownFactor(m, now)
		sr.r.timeline.record(now, t.DiskRead)
		startSeq := sr.emitTask(trace.KindTaskStart, t, m, now, now, 0, sr.dispatchCause)
		sr.attempts = append(sr.attempts, runAttempt{task: t, machine: m, dur: dur})
		sr.push(event{at: now + dur, kind: evTaskDone, task: t, machine: m, start: now, dur: dur, startSeq: startSeq})
	}
}

// dropAttempt unregisters the running attempt of task t on machine m,
// preserving the start order of the remaining attempts.
func (sr *stageRun) dropAttempt(t *Task, m cluster.MachineID) {
	for i, a := range sr.attempts {
		if a.task == t && a.machine == m {
			sr.attempts = append(sr.attempts[:i], sr.attempts[i+1:]...)
			return
		}
	}
}

func (r *Runner) taskDuration(t *Task) float64 {
	return t.Compute + float64(t.DiskRead+t.DiskWrite)/r.cfg.Topo.DiskBandwidth()
}

func (sr *stageRun) onTaskDone(e *event, prev *stageRun) {
	r := sr.r
	if r.dead[e.machine] {
		// The machine died while this completion event was in flight;
		// the failure handler already requeued the task. If this stale
		// completion still advances the stage barrier, blame the failure.
		sr.popSeq = r.failSeq[e.machine]
		return
	}
	t := e.task
	sr.dropAttempt(t, e.machine)
	r.metrics.MachineSeconds += e.dur
	r.metrics.DiskBytes += t.DiskRead + t.DiskWrite
	r.metrics.TasksRun++
	endSeq := sr.emitTask(trace.KindTaskEnd, t, e.machine, e.at, e.start, e.at, e.startSeq)
	sr.popSeq = endSeq
	r.noteTaskDone(e.machine, e.at, e.dur, r.progressTotal)
	r.timeline.record(e.at, t.DiskWrite)
	sr.running[e.machine]--
	sr.copies[t.idx]--
	// This completion frees a slot: whatever launches next is its effect.
	sr.dispatchCause = endSeq
	if sr.committed[t.idx] {
		// A speculative duplicate losing the race: its work is charged
		// above, but the first completion already committed the results.
		sr.startNext(e.machine, e.at)
		return
	}
	sr.committed[t.idx] = true
	sr.taskMachine[t.idx] = e.machine
	sr.remaining--
	sr.doneDurs = append(sr.doneDurs, e.dur)
	// Launch output transfers toward next-stage task machines.
	if len(t.Outputs) > 0 {
		next := sr.job.Stages[sr.stageIdx+1]
		for _, out := range t.Outputs {
			dst := next.Tasks[out.DstTask]
			dstM := dst.Machine
			if pm, err := r.place(dst); err == nil {
				dstM = pm
			}
			sr.sendBytes(e.machine, dstM, out.Bytes, e.at, dst.Part, dst.Name, endSeq)
		}
	}
	sr.startNext(e.machine, e.at)
	sr.maybeSpeculate(e.at)
}

// maybeSpeculate is the job manager's straggler check (Appendix B records
// per-task progress; MapReduce-style backup tasks act on it): once enough
// of the stage has committed to trust the median task duration, every
// still-running task projected to overrun Factor × median gets one backup
// copy on a live replica holder of its partition. The first completed copy
// commits; the loop stays serial, so speculation preserves determinism.
func (sr *stageRun) maybeSpeculate(now float64) {
	r := sr.r
	if !r.spec.Enabled || r.cfg.Replicas == nil {
		return
	}
	total := len(sr.job.Stages[sr.stageIdx].Tasks)
	median := medianOf(sr.doneDurs)
	// Collect stragglers from the running-attempt registry first: launching
	// backups mutates it via startNext. Attempts on dead machines were
	// already dropped by the failure handler.
	type straggler struct {
		t       *Task
		machine cluster.MachineID
	}
	var found []straggler
	for _, a := range sr.attempts {
		if sr.committed[a.task.idx] || sr.speculated[a.task.idx] || a.task.Part == NoPart {
			continue
		}
		if r.spec.IsStraggler(a.dur, median, len(sr.doneDurs), total) {
			found = append(found, straggler{t: a.task, machine: a.machine})
		}
	}
	// Deterministic launch order: the registry order is deterministic, but
	// sort by task name anyway so the order is obvious, not incidental.
	sort.Slice(found, func(i, j int) bool { return found[i].t.Name < found[j].t.Name })
	for _, s := range found {
		backup := r.backupMachine(s.t, s.machine)
		if backup < 0 {
			continue
		}
		sr.speculated[s.t.idx] = true
		r.metrics.Speculations++
		// The committed completion whose median triggered this check is the
		// cause of the backup launch (sr.popSeq: the task-end just handled).
		specSeq := r.tr.Emit(trace.Event{Kind: trace.KindSpeculate, Job: sr.job.Name,
			Stage: sr.stageName(), Name: s.t.Name, Cause: sr.popSeq, Machine: int(backup),
			Dst: trace.None, Part: int(s.t.Part), Time: now})
		sr.queues[backup] = append(sr.queues[backup], s.t)
		sr.dispatchCause = specSeq
		sr.startNext(backup, now)
	}
}

// backupMachine picks the first available replica holder of the task's
// partition that is not the machine already running it, or -1 when none
// exists. Draining, retired and dormant machines do not accept backups.
func (r *Runner) backupMachine(t *Task, running cluster.MachineID) cluster.MachineID {
	for _, m := range r.cfg.Replicas.Machines[t.Part] {
		if m != running && !r.unavailable(m) {
			return m
		}
	}
	return -1
}

// medianOf returns the median of a non-empty sample (0 when empty). The
// sample is copied; the caller's order is preserved.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// sendBytes schedules a transfer from src to dst, serializing with earlier
// transfers on the sender's egress NIC and the receiver's ingress NIC.
// Intra-machine moves are free. dstPart is the destination task's partition
// and dstName its name, recorded on the trace event so traffic can be
// attributed per partition and the transfer → receiving-task edge is
// visible; cause is the Seq of the event that produced the bytes.
func (sr *stageRun) sendBytes(src, dst cluster.MachineID, bytes int64, now float64, dstPart partition.PartID, dstName string, cause int) {
	if bytes <= 0 {
		return
	}
	if src == dst {
		return
	}
	sr.inflight++
	sr.dispatch(&pendingTransfer{src: src, dst: dst, bytes: bytes, part: dstPart, dstName: dstName, cause: cause}, now)
}

// dispatch issues one attempt of a (possibly retried) transfer at time now.
// A blackholed attempt holds both NICs until the sender's timeout, then
// schedules a backoff retry; a successful attempt occupies the NICs for
// bytes / (bandwidth ÷ degradation factor) seconds and delivers the bytes.
func (sr *stageRun) dispatch(ts *pendingTransfer, now float64) {
	r := sr.r
	egFree, inFree := sr.egressFree[ts.src], sr.ingressFree[ts.dst]
	start := now
	if egFree > start {
		start = egFree
	}
	if inFree > start {
		start = inFree
	}
	if r.faults.DropsTransfer(ts.src, ts.dst, start) {
		// The attempt makes no progress, but the sender cannot know that
		// until its timeout fires: both NICs stay held until detection.
		detect := start + r.retry.Timeout
		sr.egressFree[ts.src] = detect
		sr.ingressFree[ts.dst] = detect
		ts.attempt++
		r.metrics.TransferDrops++
		dropSeq := r.tr.Emit(trace.Event{
			Kind: trace.KindTransferDrop, Job: sr.job.Name, Stage: sr.stageName(), Name: ts.dstName,
			Cause: ts.cause, Machine: int(ts.src), Dst: int(ts.dst), Part: int(ts.part), Bytes: ts.bytes,
			Time: now, Start: start, End: detect, Attempt: ts.attempt,
		})
		if r.retry.MaxAttempts > 0 && ts.attempt >= r.retry.MaxAttempts {
			sr.err = fmt.Errorf("engine: transfer %d→%d (%d bytes) dropped %d times; retry budget exhausted",
				ts.src, ts.dst, ts.bytes, ts.attempt)
			return
		}
		sr.push(event{at: detect + r.retry.BackoffAt(ts.attempt), kind: evTransferRetry, transfer: ts, traceSeq: dropSeq})
		return
	}
	factor := r.faults.LinkFactor(ts.src, ts.dst, start)
	// An elastic machine's NIC line rate caps the link in both directions
	// (min of link bandwidth and either endpoint's rate), the slow-spot-
	// instance model.
	bw := r.cfg.Topo.Bandwidth(ts.src, ts.dst)
	if nr := r.nicRate[ts.src]; nr > 0 && nr < bw {
		bw = nr
	}
	if nr := r.nicRate[ts.dst]; nr > 0 && nr < bw {
		bw = nr
	}
	dur := float64(ts.bytes) * factor / bw
	sr.egressFree[ts.src] = start + dur
	sr.ingressFree[ts.dst] = start + dur
	// Only delivered bytes count as network I/O; dropped attempts moved
	// nothing.
	r.metrics.NetworkBytes += ts.bytes
	kind := trace.KindTransfer
	if ts.migrate {
		kind = trace.KindPartitionMigrate
	}
	seq := r.tr.Emit(trace.Event{
		Kind: kind, Job: sr.job.Name, Stage: sr.stageName(), Name: ts.dstName,
		Cause: ts.cause, Machine: int(ts.src), Dst: int(ts.dst), Part: int(ts.part), Bytes: ts.bytes,
		Time: now, Start: start, End: start + dur, Stall: start - now,
		// The receiver's ingress NIC is the binding constraint when it
		// frees no earlier than the sender's egress — the incast case.
		Incast:  inFree > now && inFree >= egFree,
		Attempt: ts.attempt, Degraded: factor > 1,
	})
	done := event{at: start + dur, kind: evTransferDone, bytes: ts.bytes, traceSeq: seq}
	if ts.migrate {
		// The completion handler needs the transfer record to rehome the
		// partition on arrival.
		done.transfer = ts
	}
	sr.push(done)
}

// onTransferRetry re-issues a dropped transfer once its backoff elapses.
func (sr *stageRun) onTransferRetry(e *event) {
	r := sr.r
	ts := e.transfer
	r.metrics.TransferRetries++
	retrySeq := r.tr.Emit(trace.Event{
		Kind: trace.KindTransferRetry, Job: sr.job.Name, Stage: sr.stageName(), Name: ts.dstName,
		Cause: e.traceSeq, Machine: int(ts.src), Dst: int(ts.dst), Part: int(ts.part),
		Time: e.at, Attempt: ts.attempt,
	})
	sr.popSeq = retrySeq
	// The re-issued attempt is caused by the retry, not the original send.
	ts.cause = retrySeq
	sr.dispatch(ts, e.at)
}

// onFailure marks the machine dead, collects its lost work and schedules the
// manager's reaction one heartbeat later. A scheduled failure is exogenous;
// anchoring it to the enclosing stage keeps the DAG rooted, and the analyzer
// blames the gap to the stage's start on the fault model (retry backoff),
// not on work.
func (sr *stageRun) onFailure(e *event) {
	sr.failMachine(e.failMachine, e.at, sr.stageBeginSeq)
}

// failMachine executes a machine death at time at: the failure trace event
// cites cause (the stage begin for scheduled failures, the machine-drain for
// an expired drain deadline), lost work is collected and the manager's
// reaction scheduled one heartbeat later.
func (sr *stageRun) failMachine(m cluster.MachineID, at float64, cause int) {
	r := sr.r
	if r.dead[m] {
		sr.popSeq = r.failSeq[m]
		return
	}
	r.dead[m] = true
	failSeq := r.tr.Emit(trace.Event{Kind: trace.KindFailure, Job: sr.job.Name, Stage: sr.stageName(),
		Cause: cause, Machine: int(m), Dst: trace.None, Part: trace.None, Time: at})
	r.failSeq[m] = failSeq
	r.lastFailSeq = failSeq
	sr.popSeq = failSeq
	var lost []*Task
	// Queued tasks are lost — unless another copy is committed or still
	// running elsewhere (a queued speculative backup loses nothing).
	for _, t := range sr.queues[m] {
		if !sr.committed[t.idx] && sr.copies[t.idx] == 0 {
			lost = append(lost, t)
		}
	}
	sr.queues[m] = nil
	// Running tasks are lost in attempt-start order: their completion
	// events stay on the queue, but the completion handler sees the dead
	// machine and ignores them. A task is only requeued when this death
	// killed its last running copy and no copy has committed — a surviving
	// speculative backup carries on.
	if sr.running[m] > 0 {
		kept := sr.attempts[:0]
		for _, a := range sr.attempts {
			if a.machine != m {
				kept = append(kept, a)
				continue
			}
			sr.copies[a.task.idx]--
			if !sr.committed[a.task.idx] && sr.copies[a.task.idx] == 0 {
				lost = append(lost, a.task)
			}
		}
		sr.attempts = kept
		sr.running[m] = 0
	}
	for _, t := range lost {
		sr.emitTask(trace.KindTaskLost, t, m, at, 0, 0, failSeq)
	}
	sr.push(event{
		at:       at + r.cfg.HeartbeatInterval,
		kind:     evRecovery,
		lost:     lost,
		traceSeq: failSeq,
	})
	// Keep the recovery event from racing stage completion.
	sr.inflight++
}

// onRecovery reassigns lost tasks to replica machines, re-transferring the
// inputs of Combine-type tasks (Appendix B).
func (sr *stageRun) onRecovery(e *event, prev *stageRun) {
	r := sr.r
	sr.inflight--
	sr.popSeq = e.traceSeq
	for _, t := range e.lost {
		if sr.committed[t.idx] {
			// A copy elsewhere committed between the failure and the
			// manager noticing it; nothing to recover.
			continue
		}
		m, err := r.failover(t)
		if err != nil {
			// No live replica: surface as a deadlock; tests assert on
			// the error path via Run's deadlock message.
			continue
		}
		r.metrics.Recoveries++
		// The retry is caused by the failure (via the heartbeat); emit it
		// before the input re-transfers so they can cite it as their cause.
		retrySeq := sr.emitTask(trace.KindRetry, t, m, e.at, 0, 0, e.traceSeq)
		if t.Kind == KindCombine && prev != nil {
			// Re-transfer this task's inputs from their producers.
			myIdx := t.idx
			prevStage := sr.job.Stages[sr.stageIdx-1]
			for pi, pt := range prevStage.Tasks {
				for _, out := range pt.Outputs {
					if out.DstTask != myIdx {
						continue
					}
					src := prev.taskMachine[pi]
					if src < 0 || r.dead[src] {
						// Producer machine gone: fetch from the
						// producing partition's replica.
						if fm, err := r.failover(pt); err == nil {
							src = fm
						} else {
							continue
						}
					}
					sr.sendBytes(src, m, out.Bytes, e.at, t.Part, t.Name, retrySeq)
				}
			}
		}
		sr.queues[m] = append(sr.queues[m], t)
		sr.dispatchCause = retrySeq
		sr.startNext(m, e.at)
	}
}

// failover picks an available replica machine for a task's partition.
// Availability excludes dead machines and — under elastic membership —
// dormant, draining and retired ones.
func (r *Runner) failover(t *Task) (cluster.MachineID, error) {
	if t.Part == NoPart || r.cfg.Replicas == nil {
		// Unpinned task: any available machine.
		for i := 0; i < r.cfg.Topo.NumMachines(); i++ {
			if !r.unavailable(cluster.MachineID(i)) {
				return cluster.MachineID(i), nil
			}
		}
		return 0, fmt.Errorf("engine: no live machines")
	}
	return r.cfg.Replicas.FailoverFunc(t.Part, r.unavailable)
}
