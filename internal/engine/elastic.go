package engine

import (
	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Elastic cluster membership (fault.MachineJoin / fault.MachineDrain),
// handled entirely inside the serial event loop so the determinism contract
// survives: joins wake dormant machines, drains trigger live partition
// migration as ordinary NIC-charged transfers, and a drain whose deadline
// expires before the last byte lands degrades into the existing machine-
// death/failover path.
//
// Migration state lives in the runner's home overlay, never in the shared
// storage.Replicas: deployments reuse one Replicas across runners at
// different worker counts, and mutating it from one run would leak into the
// next.

// drainState tracks one active drain: the trace Seq of its machine-drain
// event (the cause of the deadline death, should it come to that) and the
// number of partition migrations still in flight.
type drainState struct {
	seq         int
	outstanding int
}

// unavailable reports whether machine m can accept work and data right now:
// dead, still-dormant, draining and retired machines cannot. It is the
// exclusion predicate for placement, failover, speculation and migration
// targeting.
func (r *Runner) unavailable(m cluster.MachineID) bool {
	return r.dead[m] || r.dormant[m] || r.draining[m] || r.retired[m]
}

// Draining reports whether machine m is currently mid-drain.
func (r *Runner) Draining(m cluster.MachineID) bool { return r.draining[m] }

// Retired reports whether machine m completed a graceful drain.
func (r *Runner) Retired(m cluster.MachineID) bool { return r.retired[m] }

// Dormant reports whether machine m is provisioned but not yet joined.
func (r *Runner) Dormant(m cluster.MachineID) bool { return r.dormant[m] }

// homeOf reports the current machine of partition p: the migration overlay
// when the partition has moved, else the replica primary.
func (r *Runner) homeOf(p partition.PartID) cluster.MachineID {
	if h, ok := r.home[p]; ok {
		return h
	}
	return r.cfg.Replicas.Primary(p)
}

// partBytes is the migration volume of partition p (0 when PartBytes is
// not configured: the rehome is then instantaneous).
func (r *Runner) partBytes(p partition.PartID) int64 {
	if int(p) >= 0 && int(p) < len(r.cfg.PartBytes) {
		return r.cfg.PartBytes[p]
	}
	return 0
}

// place resolves where a task runs: a migrated partition follows its new
// home, an available pinned machine keeps the task, anything else fails
// over to an available replica. With no elastic events this reduces exactly
// to the historical dead-primary failover.
func (r *Runner) place(t *Task) (cluster.MachineID, error) {
	if t.Part != NoPart && r.cfg.Replicas != nil {
		if h, ok := r.home[t.Part]; ok && !r.unavailable(h) {
			return h, nil
		}
	}
	if !r.unavailable(t.Machine) {
		return t.Machine, nil
	}
	return r.failover(t)
}

// onJoin brings a dormant machine live: from this instant it accepts
// failovers, speculation backups and migrated partitions, and its NICs
// (capped at its configured line rate) carry traffic.
func (sr *stageRun) onJoin(e *event) {
	r := sr.r
	m := e.failMachine
	if !r.dormant[m] {
		sr.popSeq = trace.None
		return
	}
	delete(r.dormant, m)
	r.metrics.Joins++
	// A join is exogenous, like a failure: anchor it to the enclosing stage.
	sr.popSeq = r.tr.Emit(trace.Event{Kind: trace.KindMachineJoin, Job: sr.job.Name, Stage: sr.stageName(),
		Cause: sr.stageBeginSeq, Machine: int(m), Dst: trace.None, Part: trace.None, Time: e.at})
}

// onDrain starts a graceful decommission: the machine stops accepting new
// work (it is unavailable from here on; tasks already queued on it finish),
// every partition homed on it starts migrating to a survivor, and the
// deadline is armed. A machine with nothing to migrate retires on the spot.
func (sr *stageRun) onDrain(e *event) {
	r := sr.r
	m := e.failMachine
	if r.dead[m] || r.draining[m] || r.retired[m] || r.dormant[m] {
		sr.popSeq = trace.None
		return
	}
	r.draining[m] = true
	r.metrics.Drains++
	drainSeq := r.tr.Emit(trace.Event{Kind: trace.KindMachineDrain, Job: sr.job.Name, Stage: sr.stageName(),
		Cause: sr.stageBeginSeq, Machine: int(m), Dst: trace.None, Part: trace.None,
		Time: e.at, End: e.deadline})
	sr.popSeq = drainSeq
	outstanding := sr.startMigrations(m, e.at, drainSeq)
	if outstanding == 0 {
		sr.retire(m)
		return
	}
	r.drainState[m] = &drainState{seq: drainSeq, outstanding: outstanding}
	// The deadline event does not hold the stage barrier: if every
	// migration lands first the machine retires and the deadline is moot
	// (a stale pop is ignored; an unpopped event is recycled at stage end).
	sr.push(event{at: e.deadline, kind: evDrainDeadline, failMachine: m})
}

// startMigrations issues one live migration per partition homed on the
// draining machine, in PartID order for determinism, and returns how many
// are in flight. Migrations ride the ordinary transfer machinery — NIC
// serialization, link degradation, drops and retries all apply — and each
// holds the stage barrier via inflight until it lands. Zero-byte partitions
// (no PartBytes configured) rehome instantly but still leave a trace event.
func (sr *stageRun) startMigrations(m cluster.MachineID, at float64, drainSeq int) int {
	r := sr.r
	if r.cfg.Replicas == nil {
		return 0
	}
	outstanding := 0
	for p := range r.cfg.Replicas.Machines {
		pid := partition.PartID(p)
		if r.homeOf(pid) != m {
			continue
		}
		dst, err := r.cfg.Replicas.MigrationTarget(pid, r.cfg.Topo.NumMachines(),
			func(mm cluster.MachineID) bool { return !r.unavailable(mm) })
		if err != nil {
			// Nowhere to migrate right now: leave the partition in place.
			// If nothing frees up, the deadline fires and the death path
			// recovers through replicas as usual.
			continue
		}
		bytes := r.partBytes(pid)
		if bytes <= 0 {
			r.home[pid] = dst
			r.metrics.Migrations++
			r.tr.Emit(trace.Event{Kind: trace.KindPartitionMigrate, Job: sr.job.Name, Stage: sr.stageName(),
				Cause: drainSeq, Machine: int(m), Dst: int(dst), Part: int(pid),
				Time: at, Start: at, End: at})
			continue
		}
		sr.inflight++
		outstanding++
		sr.dispatch(&pendingTransfer{src: m, dst: dst, bytes: bytes, part: pid,
			cause: drainSeq, migrate: true}, at)
	}
	return outstanding
}

// onMigrateDone commits one landed partition migration: the partition is
// rehomed to its destination and the machine retires once its last
// migration lands. An arrival after the source died at its drain deadline
// is stale — the copy never completed; the partition recovers through the
// failover path instead.
func (sr *stageRun) onMigrateDone(e *event) {
	r := sr.r
	ts := e.transfer
	if r.dead[ts.src] {
		return
	}
	r.metrics.Migrations++
	r.metrics.MigrationBytes += ts.bytes
	r.home[ts.part] = ts.dst
	if ds := r.drainState[ts.src]; ds != nil {
		ds.outstanding--
		if ds.outstanding <= 0 {
			sr.retire(ts.src)
		}
	}
}

// retire completes a clean drain: the machine leaves the cluster with all
// its state handed off and nothing lost. Retired is distinct from dead —
// Deaths() stays untouched, so multi-iteration drivers do not mistake a
// clean drain for a failure and roll back to a checkpoint.
func (sr *stageRun) retire(m cluster.MachineID) {
	r := sr.r
	delete(r.drainState, m)
	delete(r.draining, m)
	r.retired[m] = true
}

// onDrainDeadline fires at a drain's deadline: if migrations are still in
// flight the drain degrades into an ordinary machine death whose failure
// event is caused by the machine-drain, and the standard lost-task /
// heartbeat / failover recovery takes over. A deadline whose drain already
// retired (or died) is stale and ignored.
func (sr *stageRun) onDrainDeadline(e *event) {
	r := sr.r
	m := e.failMachine
	ds := r.drainState[m]
	if ds == nil || !r.draining[m] || r.dead[m] {
		sr.popSeq = trace.None
		return
	}
	delete(r.drainState, m)
	delete(r.draining, m)
	sr.failMachine(m, e.at, ds.seq)
}
