package engine

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/trace"
)

// threeMachineReplicas is the replica layout the elastic tests share:
// partition p's primary is machine p, with one extra holder.
func threeMachineReplicas() *storage.Replicas {
	return &storage.Replicas{Machines: [][]cluster.MachineID{
		{0, 1}, {1, 2}, {2, 0},
	}}
}

// pinnedStage builds one stage with task i pinned to machine i, partition i.
func pinnedStage(name string, n int, compute float64) *Stage {
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tasks[i] = &Task{Name: "t" + string(rune('0'+i)),
			Part: partition.PartID(i), Machine: cluster.MachineID(i), Compute: compute}
	}
	return &Stage{Name: name, Tasks: tasks}
}

func TestCleanDrainMigratesAndRetires(t *testing.T) {
	rec := trace.NewRecorder()
	bw := int64(cluster.LinkBandwidth)
	r := New(Config{
		Topo: cluster.NewT1(3), Replicas: threeMachineReplicas(), Trace: rec,
		Faults:    &fault.Schedule{Drains: []fault.MachineDrain{{Machine: 2, At: 0.5, Deadline: 10}}},
		PartBytes: []int64{0, 0, bw},
	})
	m, err := r.Run(&Job{Name: "drain", Stages: []*Stage{pinnedStage("s", 3, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	// Tasks gate the stage at 2s; the migration (1s on the NIC, 0.5→1.5)
	// finishes inside it.
	if math.Abs(m.ResponseSeconds-2) > 1e-9 {
		t.Fatalf("response = %g, want 2", m.ResponseSeconds)
	}
	if m.Drains != 1 || m.Migrations != 1 || m.MigrationBytes != bw {
		t.Fatalf("drains/migrations/bytes = %d/%d/%d, want 1/1/%d",
			m.Drains, m.Migrations, m.MigrationBytes, bw)
	}
	// A clean drain is not a death: no checkpoint rollback trigger.
	if r.Deaths() != 0 {
		t.Fatalf("deaths = %d, want 0 (clean drain)", r.Deaths())
	}
	if !r.Retired(2) || r.Draining(2) {
		t.Fatalf("machine 2: retired=%v draining=%v, want retired", r.Retired(2), r.Draining(2))
	}
	c := countKinds(rec.Events())
	if c[trace.KindMachineDrain] != 1 || c[trace.KindPartitionMigrate] != 1 || c[trace.KindFailure] != 0 {
		t.Fatalf("drain/migrate/failure events = %d/%d/%d, want 1/1/0",
			c[trace.KindMachineDrain], c[trace.KindPartitionMigrate], c[trace.KindFailure])
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindPartitionMigrate {
			if ev.Machine != 2 || ev.Dst != 0 || ev.Part != 2 {
				t.Fatalf("migration %d→%d part %d, want 2→0 part 2", ev.Machine, ev.Dst, ev.Part)
			}
		}
	}
	// After the drain, partition 2's tasks follow their new home (machine 0)
	// and nothing runs on the retired machine.
	before := rec.Len()
	if _, err := r.Run(&Job{Name: "after", Stages: []*Stage{pinnedStage("s", 3, 1)}}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events()[before:] {
		if ev.Kind == trace.KindTaskEnd && ev.Part == 2 && ev.Machine != 0 {
			t.Fatalf("migrated partition's task ran on machine %d, want 0", ev.Machine)
		}
		if ev.Kind == trace.KindTaskStart && ev.Machine == 2 {
			t.Fatal("retired machine accepted a task")
		}
	}
}

func TestDrainDeadlineExpiryDegradesToFailure(t *testing.T) {
	rec := trace.NewRecorder()
	bw := int64(cluster.LinkBandwidth)
	r := New(Config{
		Topo: cluster.NewT1(3), Replicas: threeMachineReplicas(), Trace: rec,
		Faults:    &fault.Schedule{Drains: []fault.MachineDrain{{Machine: 2, At: 0.5, Deadline: 1.0}}},
		PartBytes: []int64{0, 0, 2 * bw},
	})
	m, err := r.Run(&Job{Name: "expire", Stages: []*Stage{pinnedStage("s", 3, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	// The 2s migration (0.5→2.5) cannot beat the 1.0 deadline: machine 2
	// dies at 1.0, its running task is lost and reruns on partition 2's
	// surviving replica (machine 0) after the heartbeat — queued behind
	// machine 0's own task, so it runs 3→6.
	if math.Abs(m.ResponseSeconds-6) > 1e-9 {
		t.Fatalf("response = %g, want 6", m.ResponseSeconds)
	}
	if r.Deaths() != 1 || r.Retired(2) {
		t.Fatalf("deaths=%d retired=%v, want a real death", r.Deaths(), r.Retired(2))
	}
	// The aborted migration never commits.
	if m.Drains != 1 || m.Migrations != 0 || m.MigrationBytes != 0 {
		t.Fatalf("drains/migrations/bytes = %d/%d/%d, want 1/0/0",
			m.Drains, m.Migrations, m.MigrationBytes)
	}
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries)
	}
	// Causal edge: the failure is caused by the machine-drain event.
	drainSeq := trace.None
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindMachineDrain {
			drainSeq = ev.Seq
		}
		if ev.Kind == trace.KindFailure {
			if ev.Cause != drainSeq || drainSeq == trace.None {
				t.Fatalf("failure cause = %d, want the drain's seq %d", ev.Cause, drainSeq)
			}
		}
	}
}

func TestJoinedMachineReceivesMigration(t *testing.T) {
	rec := trace.NewRecorder()
	bw := int64(cluster.LinkBandwidth)
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{
		{0, 2}, {1, 3}, {2, 0},
	}}
	r := New(Config{
		Topo: cluster.NewT1(4), Replicas: reps, Trace: rec,
		Faults: &fault.Schedule{
			// The joining spot instance has half-rate NICs, so the 1s-at-full-
			// rate migration takes 2s.
			Joins:  []fault.MachineJoin{{Machine: 3, At: 0.25, NICs: cluster.LinkBandwidth / 2}},
			Drains: []fault.MachineDrain{{Machine: 1, At: 0.5, Deadline: 10}},
		},
		PartBytes: []int64{0, bw, 0},
	})
	m, err := r.Run(&Job{Name: "join", Stages: []*Stage{pinnedStage("s", 3, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Joins != 1 || m.Drains != 1 || m.Migrations != 1 {
		t.Fatalf("joins/drains/migrations = %d/%d/%d, want 1/1/1", m.Joins, m.Drains, m.Migrations)
	}
	if !r.Retired(1) || r.Dormant(3) {
		t.Fatalf("machine 1 retired=%v, machine 3 dormant=%v", r.Retired(1), r.Dormant(3))
	}
	// Partition 1 migrates to its replica holder machine 3 — live since its
	// join — at the joiner's NIC rate: 2s on the wire (0.5→2.5), which gates
	// the stage past the 2s tasks.
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind != trace.KindPartitionMigrate {
			continue
		}
		found = true
		if ev.Machine != 1 || ev.Dst != 3 || ev.Part != 1 {
			t.Fatalf("migration %d→%d part %d, want 1→3 part 1", ev.Machine, ev.Dst, ev.Part)
		}
		if math.Abs((ev.End-ev.Start)-2) > 1e-9 {
			t.Fatalf("migration wire time = %g, want 2 (half-rate NIC)", ev.End-ev.Start)
		}
	}
	if !found {
		t.Fatal("no partition-migrate event")
	}
	if math.Abs(m.ResponseSeconds-2.5) > 1e-9 {
		t.Fatalf("response = %g, want 2.5", m.ResponseSeconds)
	}
}

func TestDormantMachineExcludedUntilJoin(t *testing.T) {
	rec := trace.NewRecorder()
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{{0, 1}, {1, 0}}}
	r := New(Config{
		Topo: cluster.NewT1(3), Replicas: reps, Trace: rec,
		Faults: &fault.Schedule{Joins: []fault.MachineJoin{{Machine: 2, At: 5}}},
	})
	// A task pinned to the dormant machine fails over to a live replica
	// instead of running on provisioned-but-absent hardware.
	job := &Job{Name: "dormant", Stages: []*Stage{{Name: "s", Tasks: []*Task{
		{Name: "t", Part: 0, Machine: 2, Compute: 1},
	}}}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindTaskEnd && ev.Machine == 2 {
			t.Fatal("dormant machine ran a task before its join")
		}
	}
	if !r.Dormant(2) {
		t.Fatal("machine 2 should still be dormant (join at t=5, job ended at 1)")
	}
}

// TestElasticRunsAreDeterministic pins the tentpole acceptance: the same
// schedule — joins, drains (one clean, one expiring), kills, migrations —
// yields bit-identical metrics and byte-identical trace streams at worker
// counts 1, 4 and 8.
func TestElasticRunsAreDeterministic(t *testing.T) {
	bw := int64(cluster.LinkBandwidth)
	sched := &fault.Schedule{
		Joins: []fault.MachineJoin{
			{Machine: 4, At: 0.25, NICs: cluster.LinkBandwidth / 2},
			{Machine: 5, At: 0.75},
		},
		Drains: []fault.MachineDrain{
			{Machine: 1, At: 1.0, Deadline: 20},   // clean: migrates out
			{Machine: 3, At: 0.5, Deadline: 0.75}, // expires: dies
		},
		Slowdowns: []fault.Slowdown{{Machine: 2, From: 0, Until: 1, Factor: 3}},
	}
	mk := func(workers int) (Metrics, []byte, error) {
		topo := cluster.NewT1(6)
		// Every partition keeps a replica on machine 0 (never drained or
		// killed here), so failover always has somewhere to land.
		reps := &storage.Replicas{Machines: [][]cluster.MachineID{
			{0, 1, 2}, {1, 4, 0}, {2, 3, 0}, {3, 0, 1}, {0, 2, 3}, {1, 2, 0}, {2, 0, 1}, {3, 1, 0},
		}}
		rec := trace.NewRecorder()
		r := New(Config{
			Topo: topo, Replicas: reps, Faults: sched, Workers: workers, Trace: rec,
			PartBytes: []int64{bw / 2, bw, bw / 4, bw, bw / 2, bw / 8, bw, bw / 2},
		})
		var s1, s2 []*Task
		for i := 0; i < 8; i++ {
			s1 = append(s1, &Task{Name: "a", Part: partition.PartID(i),
				Machine: cluster.MachineID(i % 4), Compute: float64(i%3) + 1,
				Outputs: []Output{{DstTask: (i + 1) % 8, Bytes: int64(i+1) * 1e7}}})
		}
		for i := 0; i < 8; i++ {
			s2 = append(s2, &Task{Name: "b", Part: partition.PartID(i),
				Machine: cluster.MachineID(i % 4), Compute: 1, Kind: KindCombine})
		}
		m, err := r.Run(&Job{Name: "churn", Stages: []*Stage{{Name: "s1", Tasks: s1}, {Name: "s2", Tasks: s2}}})
		if err != nil {
			return Metrics{}, nil, err
		}
		var buf bytes.Buffer
		if err := trace.WriteEvents(&buf, nil, rec.Events()); err != nil {
			return Metrics{}, nil, err
		}
		return m, buf.Bytes(), nil
	}
	baseM, baseT, err := mk(1)
	if err != nil {
		t.Fatal(err)
	}
	if baseM.Joins != 2 || baseM.Drains != 2 {
		t.Fatalf("joins/drains = %d/%d, want 2/2", baseM.Joins, baseM.Drains)
	}
	if baseM.Migrations == 0 {
		t.Fatal("schedule produced no migrations; test is vacuous")
	}
	for _, w := range []int{4, 8} {
		m, tr, err := mk(w)
		if err != nil {
			t.Fatal(err)
		}
		if m != baseM {
			t.Fatalf("metrics diverge at workers=%d:\n%+v\n%+v", w, baseM, m)
		}
		if !bytes.Equal(tr, baseT) {
			t.Fatalf("trace stream diverges at workers=%d (%d vs %d bytes)", w, len(baseT), len(tr))
		}
	}
}

// TestElasticChurnSoak replays a generated chaos schedule — kills, drops,
// slowdowns, joins and drains together — across worker counts and seeds.
// Run under -race this doubles as the data-race gate for the elastic paths.
func TestElasticChurnSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		sched, kills := fault.Generate(fault.GenConfig{
			Machines: 6, Horizon: 10,
			Degrades: 1, Drops: 1, Slowdowns: 1, Kills: 1,
			Joins: 2, Drains: 2, Seed: seed,
		})
		total := 6 + 2 // base machines + join targets
		if err := sched.Validate(total); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
		topo := cluster.NewT1(6).Expand(2)
		var failures []Failure
		for _, k := range kills {
			failures = append(failures, Failure{Machine: k.Machine, At: k.At})
		}
		parts := 8
		// Machine 0 is never killed or drained by the generator, so keeping
		// a replica of every partition there means failover never dead-ends
		// whatever the seed draws.
		reps := &storage.Replicas{Machines: make([][]cluster.MachineID, parts)}
		for p := 0; p < parts; p++ {
			ms := []cluster.MachineID{cluster.MachineID(p % 6), cluster.MachineID((p + 1) % 6)}
			if ms[0] != 0 && ms[1] != 0 {
				ms = append(ms, 0)
			}
			reps.Machines[p] = ms
		}
		pb := make([]int64, parts)
		for p := range pb {
			pb[p] = int64(p+1) * int64(cluster.LinkBandwidth) / 16
		}
		mk := func(workers int) (Metrics, error) {
			r := New(Config{
				Topo: topo, Replicas: reps, Failures: failures,
				Faults: sched, Workers: workers, PartBytes: pb,
			})
			var m Metrics
			for it := 0; it < 3; it++ {
				var s1, s2 []*Task
				for i := 0; i < parts; i++ {
					s1 = append(s1, &Task{Name: "a", Part: partition.PartID(i),
						Machine: cluster.MachineID(i % 6), Compute: 0.5 + float64(i%4)*0.5,
						Outputs: []Output{{DstTask: (i + 1) % parts, Bytes: int64(i+1) * 5e6}}})
				}
				for i := 0; i < parts; i++ {
					s2 = append(s2, &Task{Name: "b", Part: partition.PartID(i),
						Machine: cluster.MachineID(i % 6), Compute: 0.5, Kind: KindCombine})
				}
				jm, err := r.Run(&Job{Name: "soak", Stages: []*Stage{{Name: "s1", Tasks: s1}, {Name: "s2", Tasks: s2}}})
				if err != nil {
					return Metrics{}, err
				}
				m.Add(jm)
			}
			return m, nil
		}
		base, err := mk(1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := mk(8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// ResponseSeconds is per-job and Add sums it; both runs sum the same
		// three jobs, so the whole struct must match.
		if base != got {
			t.Fatalf("seed %d: churn nondeterministic across workers:\n%+v\n%+v", seed, base, got)
		}
	}
}

// TestDrainWithoutReplicasRejected: migration needs partition homes.
func TestDrainWithoutReplicasRejected(t *testing.T) {
	r := New(Config{
		Topo:   cluster.NewT1(2),
		Faults: &fault.Schedule{Drains: []fault.MachineDrain{{Machine: 1, At: 1, Deadline: 2}}},
	})
	_, err := r.Run(&Job{Stages: []*Stage{{Tasks: []*Task{{Machine: 0, Compute: 1}}}}})
	if err == nil {
		t.Fatal("drain without replicas should be rejected")
	}
}
