package cluster

// BisectionLevels computes, for every machine pair, the recursion depth at
// which the pair separates under repeated machine-graph bisection (§4.2):
// level 0 crosses the top-level cut — the scarcest bandwidth in the
// hierarchy. The bisection is a pure function of the topology, so levels are
// deterministic; the link report, the autoscaler and the metrics collector
// all bucket traffic with this one function so they observe the same
// hierarchy.
func BisectionLevels(topo *Topology) [][]int {
	n := topo.NumMachines()
	lvl := make([][]int, n)
	for i := range lvl {
		lvl[i] = make([]int, n)
	}
	var rec func(mg *MachineGraph, depth int)
	rec = func(mg *MachineGraph, depth int) {
		if mg.Size() < 2 {
			return
		}
		a, b := mg.Bisect()
		for _, ma := range a.Machines() {
			for _, mb := range b.Machines() {
				lvl[ma][mb] = depth
				lvl[mb][ma] = depth
			}
		}
		rec(a, depth+1)
		rec(b, depth+1)
	}
	rec(NewMachineGraph(topo), 0)
	return lvl
}
