package cluster

import "sort"

// MachineGraph is the complete undirected weighted graph the bandwidth-aware
// partitioning algorithm bisects (§4.2): each vertex is a machine and each
// edge weight is the calibrated bandwidth between the two machines.
type MachineGraph struct {
	machines []MachineID
	topo     *Topology
}

// NewMachineGraph constructs the machine graph over all machines of a
// topology. In a real deployment the weights come from bandwidth
// calibration; here they come from the topology model directly.
func NewMachineGraph(t *Topology) *MachineGraph {
	ms := make([]MachineID, t.NumMachines())
	for i := range ms {
		ms[i] = MachineID(i)
	}
	return &MachineGraph{machines: ms, topo: t}
}

// subgraph returns a machine graph restricted to the given machines.
func (mg *MachineGraph) subgraph(ms []MachineID) *MachineGraph {
	return &MachineGraph{machines: ms, topo: mg.topo}
}

// Machines returns the machines in this (sub)graph. Callers must not modify
// the returned slice.
func (mg *MachineGraph) Machines() []MachineID { return mg.machines }

// Size reports the number of machines in this (sub)graph.
func (mg *MachineGraph) Size() int { return len(mg.machines) }

// Weight reports the bandwidth between two member machines.
func (mg *MachineGraph) Weight(a, b MachineID) float64 { return mg.topo.Bandwidth(a, b) }

// Bisect splits the machine graph into two halves of (near-)equal size,
// minimizing the aggregate bandwidth crossing the cut — the objective of
// §4.2: low cross-cut bandwidth machine sets receive the data-graph
// partitions with few cross-partition edges.
//
// The machine graph is tiny (tens to thousands of vertices) so Surfer runs a
// local algorithm (the paper uses Metis). We use greedy growing from the
// best-connected seed followed by exhaustive pairwise-swap refinement, which
// is exact on the paper's pod-structured instances: machines in a pod have
// uniformly higher mutual bandwidth, so any pod-respecting cut is optimal.
func (mg *MachineGraph) Bisect() (*MachineGraph, *MachineGraph) {
	n := len(mg.machines)
	if n < 2 {
		panic("cluster: cannot bisect fewer than 2 machines")
	}
	half := n / 2
	inA := make(map[MachineID]bool, half)

	// Seed with the machine with the highest total bandwidth to others:
	// growing from a well-connected machine keeps its pod together.
	seed := mg.machines[0]
	best := -1.0
	for _, m := range mg.machines {
		var s float64
		for _, o := range mg.machines {
			if o != m {
				s += mg.Weight(m, o)
			}
		}
		if s > best {
			best, seed = s, m
		}
	}
	inA[seed] = true
	for len(inA) < half {
		// Add the outside machine with maximum attraction to A.
		var pick MachineID
		bestGain := -1.0
		for _, m := range mg.machines {
			if inA[m] {
				continue
			}
			// Fold attraction in machine order, not map order: float
			// addition is not associative, and bestGain ties must not
			// depend on the runtime's map iteration.
			var gain float64
			for _, a := range mg.machines {
				if inA[a] {
					gain += mg.Weight(m, a)
				}
			}
			if gain > bestGain {
				bestGain, pick = gain, m
			}
		}
		inA[pick] = true
	}

	// Pairwise swap refinement: swap (a in A, b in B) while it reduces the
	// aggregate cut bandwidth.
	improved := true
	for improved {
		improved = false
		for _, a := range mg.machines {
			if !inA[a] {
				continue
			}
			for _, b := range mg.machines {
				if inA[b] {
					continue
				}
				if mg.swapGain(inA, a, b) > 1e-9 {
					delete(inA, a)
					inA[b] = true
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
	}

	var as, bs []MachineID
	for _, m := range mg.machines {
		if inA[m] {
			as = append(as, m)
		} else {
			bs = append(bs, m)
		}
	}
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return mg.subgraph(as), mg.subgraph(bs)
}

// swapGain computes the reduction in cut bandwidth from swapping a (in A)
// with b (in B).
func (mg *MachineGraph) swapGain(inA map[MachineID]bool, a, b MachineID) float64 {
	var before, after float64
	for _, m := range mg.machines {
		if m == a || m == b {
			continue
		}
		if inA[m] {
			before += mg.Weight(m, b) // b outside
			after += mg.Weight(m, a)  // a would be outside
		} else {
			before += mg.Weight(m, a)
			after += mg.Weight(m, b)
		}
	}
	// The a-b edge crosses the cut both before and after; it cancels.
	return before - after
}

// CutBandwidth reports the aggregate bandwidth between the two halves of a
// bisection, for assertions and diagnostics.
func CutBandwidth(a, b *MachineGraph) float64 {
	return a.topo.AggregateBandwidth(a.machines, b.machines)
}

// BestConnected returns the member machine with maximum aggregate bandwidth
// to the other members. Algorithm 4 line 8 stores an undividable partition
// on this machine.
func (mg *MachineGraph) BestConnected() MachineID {
	best := mg.machines[0]
	bestSum := -1.0
	for _, m := range mg.machines {
		var s float64
		for _, o := range mg.machines {
			if o != m {
				s += mg.Weight(m, o)
			}
		}
		if s > bestSum {
			bestSum, best = s, m
		}
	}
	return best
}
