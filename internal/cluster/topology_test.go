package cluster

import (
	"math"
	"testing"
)

func TestT1Uniform(t *testing.T) {
	topo := NewT1(8)
	if topo.NumMachines() != 8 || topo.NumPods() != 1 {
		t.Fatalf("T1: machines=%d pods=%d", topo.NumMachines(), topo.NumPods())
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := LinkBandwidth
			if i == j {
				want = LoopbackBandwidth
			}
			if topo.Bandwidth(MachineID(i), MachineID(j)) != want {
				t.Fatalf("bw(%d,%d) = %g", i, j, topo.Bandwidth(MachineID(i), MachineID(j)))
			}
		}
	}
}

func TestT2TwoPods(t *testing.T) {
	topo := NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1})
	if topo.Name() != "T2(2,1)" {
		t.Fatalf("name = %q", topo.Name())
	}
	if topo.NumPods() != 2 {
		t.Fatalf("pods = %d", topo.NumPods())
	}
	// Intra-pod full rate; cross-pod 1/32 by default.
	if got := topo.Bandwidth(0, 1); got != LinkBandwidth {
		t.Fatalf("intra-pod bw = %g", got)
	}
	if got := topo.Bandwidth(0, 7); got != LinkBandwidth/32 {
		t.Fatalf("cross-pod bw = %g, want %g", got, LinkBandwidth/32)
	}
	if !topo.SamePod(0, 3) || topo.SamePod(3, 4) {
		t.Fatal("pod membership wrong")
	}
}

func TestT2TwoLevels(t *testing.T) {
	topo := NewT2(T2Config{Machines: 16, Pods: 4, Levels: 2})
	// Pods 0,1 share a mid switch; pods 2,3 share another.
	// machine 0 in pod 0; machine 4 in pod 1; machine 8 in pod 2.
	if got := topo.Bandwidth(0, 4); got != LinkBandwidth/16 {
		t.Fatalf("mid-level bw = %g, want %g", got, LinkBandwidth/16)
	}
	if got := topo.Bandwidth(0, 8); got != LinkBandwidth/32 {
		t.Fatalf("top-level bw = %g, want %g", got, LinkBandwidth/32)
	}
	if got := topo.Bandwidth(0, 1); got != LinkBandwidth {
		t.Fatalf("intra-pod bw = %g", got)
	}
}

func TestT2CustomFactors(t *testing.T) {
	topo := NewT2(T2Config{Machines: 4, Pods: 2, Levels: 1, TopFactor: 128})
	if got := topo.Bandwidth(0, 2); got != LinkBandwidth/128 {
		t.Fatalf("bw = %g, want %g", got, LinkBandwidth/128)
	}
}

func TestT2PanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []T2Config{
		{Machines: 7, Pods: 2, Levels: 1},
		{Machines: 8, Pods: 0, Levels: 1},
		{Machines: 8, Pods: 2, Levels: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			NewT2(cfg)
		}()
	}
}

func TestT3HalfSlow(t *testing.T) {
	topo := NewT3(8, 1)
	slowPairs, fastPairs := 0, 0
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			bw := topo.Bandwidth(MachineID(i), MachineID(j))
			switch bw {
			case LinkBandwidth:
				fastPairs++
			case LinkBandwidth / 2:
				slowPairs++
			default:
				t.Fatalf("unexpected bw %g", bw)
			}
		}
	}
	// 4 fast machines -> C(4,2)=6 fast pairs; rest slow.
	if fastPairs != 6 || slowPairs != 22 {
		t.Fatalf("fast=%d slow=%d, want 6/22", fastPairs, slowPairs)
	}
}

func TestT3Deterministic(t *testing.T) {
	a, b := NewT3(8, 5), NewT3(8, 5)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if a.Bandwidth(MachineID(i), MachineID(j)) != b.Bandwidth(MachineID(i), MachineID(j)) {
				t.Fatal("same seed, different topology")
			}
		}
	}
}

func TestBandwidthSymmetric(t *testing.T) {
	for _, topo := range []*Topology{
		NewT1(8),
		NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1}),
		NewT2(T2Config{Machines: 16, Pods: 4, Levels: 2}),
		NewT3(8, 2),
	} {
		for i := 0; i < topo.NumMachines(); i++ {
			for j := 0; j < topo.NumMachines(); j++ {
				a := topo.Bandwidth(MachineID(i), MachineID(j))
				b := topo.Bandwidth(MachineID(j), MachineID(i))
				if a != b {
					t.Fatalf("%s: asymmetric bw(%d,%d)", topo.Name(), i, j)
				}
			}
		}
	}
}

func TestAggregateBandwidth(t *testing.T) {
	topo := NewT2(T2Config{Machines: 4, Pods: 2, Levels: 1})
	// Cross-pod sets: 2x2 pairs at LinkBandwidth/32.
	got := topo.AggregateBandwidth([]MachineID{0, 1}, []MachineID{2, 3})
	want := 4 * LinkBandwidth / 32
	if math.Abs(got-want) > 1 {
		t.Fatalf("aggregate = %g, want %g", got, want)
	}
}

func TestMachineGraphBisectRespectsPods(t *testing.T) {
	topo := NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1})
	mg := NewMachineGraph(topo)
	a, b := mg.Bisect()
	if a.Size() != 4 || b.Size() != 4 {
		t.Fatalf("unbalanced bisection %d/%d", a.Size(), b.Size())
	}
	// Each half must be exactly one pod: cut bandwidth is then minimal.
	podOf := func(ms []MachineID) int {
		p := topo.Pod(ms[0])
		for _, m := range ms {
			if topo.Pod(m) != p {
				return -1
			}
		}
		return p
	}
	if podOf(a.Machines()) == -1 || podOf(b.Machines()) == -1 {
		t.Fatalf("bisection split pods: A=%v B=%v", a.Machines(), b.Machines())
	}
}

func TestMachineGraphBisectFourPods(t *testing.T) {
	topo := NewT2(T2Config{Machines: 16, Pods: 4, Levels: 2})
	mg := NewMachineGraph(topo)
	a, b := mg.Bisect()
	if a.Size() != 8 || b.Size() != 8 {
		t.Fatalf("unbalanced %d/%d", a.Size(), b.Size())
	}
	// The two mid-level groups (pods {0,1} and {2,3}) should separate:
	// that cut crosses only top-level links.
	group := func(m MachineID) int { return topo.Pod(m) / 2 }
	for _, m := range a.Machines() {
		if group(m) != group(a.Machines()[0]) {
			t.Fatalf("half A mixes mid-level groups: %v", a.Machines())
		}
	}
	for _, m := range b.Machines() {
		if group(m) != group(b.Machines()[0]) {
			t.Fatalf("half B mixes mid-level groups: %v", b.Machines())
		}
	}
}

func TestMachineGraphBisectT1AnyBalanced(t *testing.T) {
	topo := NewT1(6)
	mg := NewMachineGraph(topo)
	a, b := mg.Bisect()
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("unbalanced %d/%d", a.Size(), b.Size())
	}
}

func TestMachineGraphBisectOddSize(t *testing.T) {
	topo := NewT1(5)
	a, b := NewMachineGraph(topo).Bisect()
	if a.Size()+b.Size() != 5 {
		t.Fatalf("lost machines: %d + %d", a.Size(), b.Size())
	}
	if a.Size() < 2 || b.Size() < 2 {
		t.Fatalf("too unbalanced: %d/%d", a.Size(), b.Size())
	}
}

func TestMachineGraphBisectPanicsOnSingleton(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachineGraph(NewT1(1)).Bisect()
}

func TestBestConnected(t *testing.T) {
	topo := NewT3(4, 3)
	mg := NewMachineGraph(topo)
	best := mg.BestConnected()
	// Best-connected machine must be a fast one: verify its aggregate is max.
	sum := func(m MachineID) float64 {
		var s float64
		for i := 0; i < 4; i++ {
			if MachineID(i) != m {
				s += topo.Bandwidth(m, MachineID(i))
			}
		}
		return s
	}
	for i := 0; i < 4; i++ {
		if sum(MachineID(i)) > sum(best)+1e-9 {
			t.Fatalf("machine %d better connected than BestConnected()=%d", i, best)
		}
	}
}

func TestCutBandwidthMatchesAggregate(t *testing.T) {
	topo := NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1})
	mg := NewMachineGraph(topo)
	a, b := mg.Bisect()
	got := CutBandwidth(a, b)
	want := topo.AggregateBandwidth(a.Machines(), b.Machines())
	if got != want {
		t.Fatalf("CutBandwidth = %g, want %g", got, want)
	}
}

func TestT2FactorMonotonic(t *testing.T) {
	// Larger delay factors mean strictly lower cross-pod bandwidth.
	var prev float64 = 1e18
	for _, f := range []float64{2, 4, 8, 16, 32, 64, 128} {
		topo := NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1, TopFactor: f})
		bw := topo.Bandwidth(0, 7)
		if bw >= prev {
			t.Fatalf("factor %g: bw %g not below previous %g", f, bw, prev)
		}
		if topo.Bandwidth(0, 1) != LinkBandwidth {
			t.Fatalf("factor %g changed intra-pod bandwidth", f)
		}
		prev = bw
	}
}

func TestNumPodsAcrossTopologies(t *testing.T) {
	cases := []struct {
		topo *Topology
		want int
	}{
		{NewT1(8), 1},
		{NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1}), 2},
		{NewT2(T2Config{Machines: 16, Pods: 4, Levels: 2}), 4},
		{NewT3(8, 1), 1},
	}
	for _, c := range cases {
		if got := c.topo.NumPods(); got != c.want {
			t.Errorf("%s: pods = %d, want %d", c.topo.Name(), got, c.want)
		}
	}
}

func TestMachineGraphSize(t *testing.T) {
	mg := NewMachineGraph(NewT1(5))
	if mg.Size() != 5 || len(mg.Machines()) != 5 {
		t.Fatalf("size = %d", mg.Size())
	}
	if mg.Weight(0, 1) != LinkBandwidth {
		t.Fatal("weight wrong")
	}
}

func TestExpandAddsDormantCapacity(t *testing.T) {
	base := NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1, TopFactor: 4})
	got := base.Expand(3)
	if got.NumMachines() != 11 {
		t.Fatalf("machines = %d, want 11", got.NumMachines())
	}
	// The base topology is untouched — Expand returns a new value.
	if base.NumMachines() != 8 {
		t.Fatalf("Expand mutated its receiver to %d machines", base.NumMachines())
	}
	// Existing links keep their bandwidth exactly.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if got.Bandwidth(MachineID(i), MachineID(j)) != base.Bandwidth(MachineID(i), MachineID(j)) {
				t.Fatalf("link %d→%d changed", i, j)
			}
		}
	}
	// New machines share one new pod at full intra-pod rate...
	if !got.SamePod(8, 10) || got.SamePod(0, 8) {
		t.Fatal("expanded machines should share a new pod of their own")
	}
	if got.Bandwidth(8, 9) != LinkBandwidth {
		t.Fatalf("intra-new bandwidth = %g, want %g", got.Bandwidth(8, 9), float64(LinkBandwidth))
	}
	// ...and reach the base at the worst rate already present (the
	// oversubscribed top-level cut), never better.
	cross := got.Bandwidth(0, 8)
	if cross != base.Bandwidth(0, 7) {
		t.Fatalf("cross bandwidth = %g, want the base's worst %g", cross, base.Bandwidth(0, 7))
	}
	if got.NumPods() != base.NumPods()+1 {
		t.Fatalf("pods = %d, want %d", got.NumPods(), base.NumPods()+1)
	}
	// No-op expansion returns the receiver unchanged.
	if base.Expand(0) != base {
		t.Fatal("Expand(0) should return the same topology")
	}
}
