// Package cluster models the cloud environment Surfer runs in: a set of
// machines interconnected by a switch-based tree whose bandwidth is uneven
// across machine pairs (§2 "Cloud network"). It provides the three
// experimental settings of §6.1 — the flat cluster T1, the simulated tree
// topologies T2(#pod, #level), and the heterogeneous cluster T3 — plus the
// complete weighted "machine graph" the bandwidth-aware partitioner bisects.
package cluster

import (
	"fmt"
	"math/rand"
)

// MachineID identifies a machine in a topology, densely numbered 0..N-1.
type MachineID int

// Topology describes a set of machines and the network bandwidth between
// every ordered pair. Bandwidth is symmetric in all paper settings.
type Topology struct {
	name string
	n    int
	// pod[i] is the pod index of machine i; machines in the same pod share
	// the bottom-level switch.
	pod []int
	// bw[i][j] is the bandwidth between machines i and j in bytes/second;
	// bw[i][i] is the loopback bandwidth used for intra-machine transfers
	// (effectively memory speed — transfers are free in time but counted
	// as zero network bytes by the engine).
	bw [][]float64
	// diskBW is the sequential disk bandwidth per machine, bytes/second.
	diskBW float64
}

// Common hardware constants for the simulated cluster, mirroring §F.1
// (1 Gb Ethernet NICs, SATA disks). Values are bytes per second.
const (
	// LinkBandwidth is the full NIC rate: 1 Gb/s = 125 MB/s.
	LinkBandwidth = 125e6
	// DiskBandwidth approximates a 2007-era SATA disk sequential rate.
	DiskBandwidth = 80e6
	// LoopbackBandwidth is the effective intra-machine transfer rate.
	LoopbackBandwidth = 4e9
)

// NumMachines reports the number of machines.
func (t *Topology) NumMachines() int { return t.n }

// Name returns the topology's display name (e.g. "T2(4,1)").
func (t *Topology) Name() string { return t.name }

// Pod reports the pod index of machine m.
func (t *Topology) Pod(m MachineID) int { return t.pod[m] }

// NumPods reports the number of distinct pods.
func (t *Topology) NumPods() int {
	max := -1
	for _, p := range t.pod {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// Bandwidth reports the bandwidth between machines a and b in bytes/second.
func (t *Topology) Bandwidth(a, b MachineID) float64 { return t.bw[a][b] }

// DiskBandwidth reports the per-machine disk bandwidth in bytes/second.
func (t *Topology) DiskBandwidth() float64 { return t.diskBW }

// BandwidthMatrix returns a copy of the full pairwise bandwidth matrix in
// bytes/second (diagonal = loopback). Trace exporters embed it so analysis
// tools can rebuild the machine graph without the generating process.
func (t *Topology) BandwidthMatrix() [][]float64 {
	out := make([][]float64, t.n)
	for i := range out {
		out[i] = append([]float64(nil), t.bw[i]...)
	}
	return out
}

// NewTopologyFromMatrix rebuilds a topology from a raw bandwidth matrix (as
// recorded in a trace header): the inverse of BandwidthMatrix, with every
// machine in one pod and default disk bandwidth. It panics on a non-square
// matrix, since trace readers validate shape before calling.
func NewTopologyFromMatrix(name string, bw [][]float64) *Topology {
	n := len(bw)
	t := &Topology{name: name, n: n, pod: make([]int, n), diskBW: DiskBandwidth}
	t.bw = make([][]float64, n)
	for i := range bw {
		if len(bw[i]) != n {
			panic(fmt.Sprintf("cluster: bandwidth matrix row %d has %d entries, want %d", i, len(bw[i]), n))
		}
		t.bw[i] = append([]float64(nil), bw[i]...)
	}
	return t
}

// SamePod reports whether two machines share a bottom-level switch.
func (t *Topology) SamePod(a, b MachineID) bool { return t.pod[a] == t.pod[b] }

// AggregateBandwidth sums the pairwise bandwidth between two disjoint machine
// sets. The bandwidth-aware partitioner minimizes this quantity across the
// cut when bisecting the machine graph (§4.2).
func (t *Topology) AggregateBandwidth(setA, setB []MachineID) float64 {
	var sum float64
	for _, a := range setA {
		for _, b := range setB {
			sum += t.bw[a][b]
		}
	}
	return sum
}

func (t *Topology) String() string {
	return fmt.Sprintf("%s{machines=%d pods=%d}", t.name, t.n, t.NumPods())
}

// NewT1 builds the paper's baseline setting: n machines in a single pod
// sharing one switch, with even bandwidth between every pair.
func NewT1(n int) *Topology {
	t := &Topology{name: "T1", n: n, pod: make([]int, n), diskBW: DiskBandwidth}
	t.bw = uniformMatrix(n, LinkBandwidth)
	return t
}

// T2Config parameterizes the tree topology T2(#pod, #level) from §6.1.
// Machines are split evenly into Pods pods. With Levels == 1, pods connect
// through one top-level switch; with Levels == 2 pods pair up under
// second-level switches which then connect through the top switch.
//
// The paper sets the cross-switch machine-pair bandwidth as a fraction of the
// link rate: 1/TopFactor through the top-level switch (default 32) and
// 1/MidFactor through a second-level switch (default 16). Figure 9 sweeps
// TopFactor from 2 to 128.
type T2Config struct {
	Machines  int
	Pods      int
	Levels    int
	TopFactor float64 // bandwidth divisor across the top-level switch
	MidFactor float64 // bandwidth divisor across a second-level switch
}

// NewT2 builds a T2 tree topology. It panics if machines do not divide
// evenly into pods or the configuration is degenerate, since experiment
// configurations are static.
func NewT2(cfg T2Config) *Topology {
	if cfg.Pods <= 0 || cfg.Machines%cfg.Pods != 0 {
		panic(fmt.Sprintf("cluster: %d machines do not divide into %d pods", cfg.Machines, cfg.Pods))
	}
	if cfg.Levels < 1 || cfg.Levels > 2 {
		panic("cluster: T2 supports 1 or 2 switch levels above pods")
	}
	if cfg.TopFactor == 0 {
		cfg.TopFactor = 32
	}
	if cfg.MidFactor == 0 {
		cfg.MidFactor = 16
	}
	n := cfg.Machines
	perPod := n / cfg.Pods
	t := &Topology{
		name:   fmt.Sprintf("T2(%d,%d)", cfg.Pods, cfg.Levels),
		n:      n,
		pod:    make([]int, n),
		diskBW: DiskBandwidth,
	}
	for i := 0; i < n; i++ {
		t.pod[i] = i / perPod
	}
	// midGroup pairs adjacent pods under a second-level switch.
	midGroup := func(pod int) int { return pod / 2 }
	t.bw = make([][]float64, n)
	for i := 0; i < n; i++ {
		t.bw[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				t.bw[i][j] = LoopbackBandwidth
			case t.pod[i] == t.pod[j]:
				t.bw[i][j] = LinkBandwidth
			case cfg.Levels == 2 && midGroup(t.pod[i]) == midGroup(t.pod[j]):
				t.bw[i][j] = LinkBandwidth / cfg.MidFactor
			default:
				t.bw[i][j] = LinkBandwidth / cfg.TopFactor
			}
		}
	}
	return t
}

// NewT3 builds the heterogeneous setting T3: one pod where a random half of
// the machines has NICs running at half rate. A transfer touching a slow
// machine runs at the slower endpoint's rate (§F.1).
func NewT3(n int, seed int64) *Topology {
	t := &Topology{name: "T3", n: n, pod: make([]int, n), diskBW: DiskBandwidth}
	slow := make([]bool, n)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	for _, i := range perm[:n/2] {
		slow[i] = true
	}
	t.bw = make([][]float64, n)
	for i := 0; i < n; i++ {
		t.bw[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				t.bw[i][j] = LoopbackBandwidth
			case slow[i] || slow[j]:
				t.bw[i][j] = LinkBandwidth / 2
			default:
				t.bw[i][j] = LinkBandwidth
			}
		}
	}
	return t
}

// Expand returns a copy of the topology provisioned with extra additional
// machines, for elastic joins: the new machines form one new pod, connect to
// each other at the full link rate, and reach every existing machine at the
// existing topology's minimum inter-machine bandwidth (a conservative model
// of fresh capacity landing behind the aggregation layer). The receiver is
// unchanged. Machines that join mid-run start dormant in the engine; Expand
// only provisions the bandwidth matrix they will use once live.
func (t *Topology) Expand(extra int) *Topology {
	if extra <= 0 {
		return t
	}
	n := t.n + extra
	// Cross bandwidth: the worst pairwise rate already in the topology, or
	// the full link rate for a single-machine base.
	cross := LinkBandwidth
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if i != j && t.bw[i][j] < cross {
				cross = t.bw[i][j]
			}
		}
	}
	out := &Topology{
		name:   fmt.Sprintf("%s+%d", t.name, extra),
		n:      n,
		pod:    make([]int, n),
		diskBW: t.diskBW,
	}
	copy(out.pod, t.pod)
	newPod := t.NumPods()
	for i := t.n; i < n; i++ {
		out.pod[i] = newPod
	}
	out.bw = make([][]float64, n)
	for i := 0; i < n; i++ {
		out.bw[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				out.bw[i][j] = LoopbackBandwidth
			case i < t.n && j < t.n:
				out.bw[i][j] = t.bw[i][j]
			case i >= t.n && j >= t.n:
				out.bw[i][j] = LinkBandwidth
			default:
				out.bw[i][j] = cross
			}
		}
	}
	return out
}

// uniformMatrix builds an n x n bandwidth matrix with value v off-diagonal
// and loopback on the diagonal.
func uniformMatrix(n int, v float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = LoopbackBandwidth
			} else {
				m[i][j] = v
			}
		}
	}
	return m
}
