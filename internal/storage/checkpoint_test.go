package storage

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestCheckpointRoundTrip(t *testing.T) {
	payload := []byte("per-vertex state encoded by the propagation layer")
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, 7, payload); err != nil {
		t.Fatal(err)
	}
	iter, got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if iter != 7 {
		t.Fatalf("iteration = %d, want 7", iter)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestCheckpointEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	iter, got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if iter != 0 || len(got) != 0 {
		t.Fatalf("iter=%d payload=%q", iter, got)
	}
}

func TestCheckpointRejectsNegativeIteration(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, -1, nil); err == nil {
		t.Fatal("expected error for negative iteration")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, 3, []byte("state bytes")); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Garbage header.
	if _, _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated payload.
	if _, _, err := ReadCheckpoint(bytes.NewReader(good[:len(good)-4])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	// Flipped payload bit: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted payload: err = %v, want checksum error", err)
	}
}

// TestFailoverReplicaExhaustionNamesPartition pins the operator-facing error
// of the replica-exhaustion path: when every holder of a partition is dead,
// the error must say which partition is unrecoverable.
func TestFailoverReplicaExhaustionNamesPartition(t *testing.T) {
	r := &Replicas{Machines: [][]cluster.MachineID{
		{0, 1, 2},
		{1, 2, 3},
	}}
	dead := map[cluster.MachineID]bool{1: true, 2: true, 3: true}
	// Partition 0 still has machine 0: failover succeeds.
	if m, err := r.Failover(0, dead); err != nil || m != 0 {
		t.Fatalf("partition 0 failover = %d, %v", m, err)
	}
	// Partition 1 lost every holder: the error must name it.
	_, err := r.Failover(1, dead)
	if err == nil {
		t.Fatal("expected replica-exhaustion error")
	}
	if !strings.Contains(err.Error(), "partition 1") {
		t.Fatalf("error %q does not name partition 1", err)
	}
	if !strings.Contains(err.Error(), "3 replicas") {
		t.Fatalf("error %q does not state the replica count", err)
	}
}
