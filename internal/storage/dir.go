package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/partition"
)

// On-disk layout of a partitioned graph, mirroring how slave machines store
// their partitions (§3): a manifest with the vertex→partition assignment
// plus one adjacency-list file per partition.
//
// manifest (little-endian):
//
//	magic   uint32 'S','R','F','M'
//	version uint32 1
//	p       uint32 partition count
//	n       uint32 vertex count
//	assign  [n]uint32
const (
	manifestMagic   = uint32('S') | uint32('R')<<8 | uint32('F')<<16 | uint32('M')<<24
	manifestVersion = 1
	manifestName    = "manifest.srfm"
)

func partFileName(p partition.PartID) string {
	return fmt.Sprintf("part-%04d.srfp", p)
}

// SaveDir writes the partitioned graph into dir (created if missing):
// manifest.srfm plus part-%04d.srfp per partition.
func (pg *PartitionedGraph) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(dir, manifestName))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(mf)
	hdr := []uint32{manifestMagic, manifestVersion, uint32(pg.Part.P), uint32(pg.G.NumVertices())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		mf.Close()
		return err
	}
	assign := make([]uint32, len(pg.Part.Assign))
	for i, p := range pg.Part.Assign {
		assign[i] = uint32(p)
	}
	if err := binary.Write(bw, binary.LittleEndian, assign); err != nil {
		mf.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	for _, pi := range pg.Parts {
		f, err := os.Create(filepath.Join(dir, partFileName(pi.ID)))
		if err != nil {
			return err
		}
		if err := WritePartition(f, pg.G, pi); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads a partitioned graph written by SaveDir, rebuilding the
// graph, the partitioning, and all per-partition metadata.
func LoadDir(dir string) (*PartitionedGraph, error) {
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	br := bufio.NewReader(mf)
	var hdr [4]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("storage: reading manifest header: %w", err)
	}
	if hdr[0] != manifestMagic {
		return nil, fmt.Errorf("storage: bad manifest magic %#x", hdr[0])
	}
	if hdr[1] != manifestVersion {
		return nil, fmt.Errorf("storage: unsupported manifest version %d", hdr[1])
	}
	p, n := int(hdr[2]), int(hdr[3])
	const maxReasonable = 1 << 31
	if p <= 0 || p > maxReasonable || n < 0 || n > maxReasonable {
		return nil, fmt.Errorf("storage: implausible manifest p=%d n=%d", p, n)
	}
	raw := make([]uint32, n)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("storage: reading assignment: %w", err)
	}
	pt := &partition.Partitioning{Assign: make([]partition.PartID, n), P: p}
	for i, a := range raw {
		if int(a) >= p {
			return nil, fmt.Errorf("storage: vertex %d assigned to invalid partition %d", i, a)
		}
		pt.Assign[i] = partition.PartID(a)
	}

	b := graph.NewBuilder(n).KeepDuplicates()
	for pid := 0; pid < p; pid++ {
		f, err := os.Open(filepath.Join(dir, partFileName(partition.PartID(pid))))
		if err != nil {
			return nil, err
		}
		pd, err := ReadPartition(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("storage: partition %d: %w", pid, err)
		}
		if pd.ID != partition.PartID(pid) {
			return nil, fmt.Errorf("storage: file %s holds partition %d", partFileName(partition.PartID(pid)), pd.ID)
		}
		for i, v := range pd.Vertices {
			if int(v) >= n {
				return nil, fmt.Errorf("storage: partition %d vertex %d out of range", pid, v)
			}
			if pt.Assign[v] != partition.PartID(pid) {
				return nil, fmt.Errorf("storage: vertex %d in partition file %d but assigned to %d", v, pid, pt.Assign[v])
			}
			for _, nb := range pd.Adjacency[i] {
				if int(nb) >= n {
					return nil, fmt.Errorf("storage: partition %d has neighbor %d out of range", pid, nb)
				}
				b.AddEdge(v, nb)
			}
		}
	}
	return Build(b.Build(), pt)
}
