package storage

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/partition"
)

func buildPG(t *testing.T, g *graph.Graph, levels int, seed int64) *PartitionedGraph {
	t.Helper()
	pt, _ := partition.RecursiveBisect(g, levels, partition.Options{Seed: seed})
	pg, err := Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestBuildSmall(t *testing.T) {
	// 4 vertices, hand partitioning: {0,1} and {2,3}.
	g := graph.FromEdges(4, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	pt := &partition.Partitioning{Assign: []partition.PartID{0, 0, 1, 1}, P: 2}
	pg, err := Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := pg.Parts[0], pg.Parts[1]
	if p0.InnerEdges != 1 { // 0->1
		t.Errorf("p0 inner = %d, want 1", p0.InnerEdges)
	}
	if p0.CrossOut != 2 { // 1->2, 0->2
		t.Errorf("p0 crossOut = %d, want 2", p0.CrossOut)
	}
	if p0.CrossIn != 1 { // 3->0
		t.Errorf("p0 crossIn = %d, want 1", p0.CrossIn)
	}
	if p1.InnerEdges != 1 || p1.CrossOut != 1 || p1.CrossIn != 2 {
		t.Errorf("p1 stats = %d/%d/%d", p1.InnerEdges, p1.CrossOut, p1.CrossIn)
	}
	// Boundary: in p0 both 0 and 1 touch cross edges; p0 has no inner vertex.
	if p0.BoundaryCount != 2 || p0.InnerVertices != 0 {
		t.Errorf("p0 boundary = %d inner = %d", p0.BoundaryCount, p0.InnerVertices)
	}
	// CrossDst of p0 maps vertex 2 -> partition 1.
	if pid, ok := p0.CrossDstPart(2); !ok || pid != 1 {
		t.Errorf("p0 CrossDstPart(2) = %d (%v)", pid, ok)
	}
	if pid, ok := p0.CrossDstPart(0); ok {
		t.Errorf("p0 CrossDstPart(0) = %d, want no entry", pid)
	}
	// OutPerPart: p0 -> p1 has 2 edges, 1 distinct destination (vertex 2).
	st := p0.OutPerPart[1]
	if st == nil || st.Edges != 2 || st.DistinctDst != 1 {
		t.Errorf("p0 OutPerPart[1] = %+v", st)
	}
}

func TestBuildRejectsMismatch(t *testing.T) {
	g := graph.Ring(4)
	pt := &partition.Partitioning{Assign: []partition.PartID{0, 0}, P: 1}
	if _, err := Build(g, pt); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestBuildRejectsInvalidPartitioning(t *testing.T) {
	g := graph.Ring(2)
	pt := &partition.Partitioning{Assign: []partition.PartID{0, 7}, P: 2}
	if _, err := Build(g, pt); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBuildInvariantsOnSynthetic(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(3000, 1))
	pg := buildPG(t, g, 3, 1)
	// Sum of per-partition inner + cross must be |E| (checked by Validate);
	// also cross totals must match partition.CrossEdges.
	if pg.TotalCrossEdges() != partition.CrossEdges(g, pg.Part) {
		t.Fatal("cross edge totals disagree")
	}
	// Inner vertex ratio must be meaningful on a partitioned small-world
	// graph: most vertices should be inner at P=8.
	var inner, total int64
	for _, pi := range pg.Parts {
		inner += pi.InnerVertices
		total += int64(len(pi.Vertices))
	}
	if float64(inner)/float64(total) < 0.3 {
		t.Fatalf("inner vertex ratio %.2f suspiciously low", float64(inner)/float64(total))
	}
}

func TestInnerVertexConsistency(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(1000, 2))
	pg := buildPG(t, g, 2, 2)
	// Independently verify: a vertex is inner iff no incident edge crosses.
	for _, pi := range pg.Parts {
		for _, v := range pi.Vertices {
			crosses := false
			for _, nb := range g.Neighbors(v) {
				if pg.Part.Assign[nb] != pi.ID {
					crosses = true
				}
			}
			// Incoming edges: scan reverse graph lazily via full check.
			if !crosses {
				g.ForEachEdge(func(u, w graph.VertexID) bool {
					if w == v && pg.Part.Assign[u] != pi.ID {
						crosses = true
						return false
					}
					return true
				})
			}
			if crosses != pi.IsBoundary(v) {
				t.Fatalf("vertex %d: crosses=%v boundary=%v", v, crosses, pi.IsBoundary(v))
			}
		}
	}
}

func TestPartitionFileRoundTrip(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(500, 3))
	pg := buildPG(t, g, 2, 3)
	for _, pi := range pg.Parts {
		var buf bytes.Buffer
		if err := WritePartition(&buf, g, pi); err != nil {
			t.Fatal(err)
		}
		pd, err := ReadPartition(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if pd.ID != pi.ID || len(pd.Vertices) != len(pi.Vertices) {
			t.Fatalf("partition %d: decoded header mismatch", pi.ID)
		}
		for i, v := range pd.Vertices {
			if v != pi.Vertices[i] {
				t.Fatalf("vertex order mismatch at %d", i)
			}
			want := g.Neighbors(v)
			got := pd.Adjacency[i]
			if len(want) != len(got) {
				t.Fatalf("degree mismatch for %d", v)
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("neighbor mismatch for %d", v)
				}
			}
		}
	}
}

func TestReadPartitionRejectsGarbage(t *testing.T) {
	if _, err := ReadPartition(bytes.NewReader([]byte("garbage data here"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestPlaceReplicas(t *testing.T) {
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	pl := partition.RandomPlacement(16, topo, 1)
	r := PlaceReplicas(pl, topo, 1)
	if err := r.Validate(topo); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		ms := r.Machines[p]
		if len(ms) != ReplicationFactor {
			t.Fatalf("partition %d has %d replicas", p, len(ms))
		}
		if ms[0] != pl.MachineOf[p] {
			t.Fatalf("primary mismatch for %d", p)
		}
		// Replica 2 same pod, replica 3 other pod (topology permits both).
		if !topo.SamePod(ms[0], ms[1]) {
			t.Errorf("partition %d: replica 2 not in primary pod", p)
		}
		if topo.SamePod(ms[0], ms[2]) {
			t.Errorf("partition %d: replica 3 in primary pod", p)
		}
	}
}

func TestPlaceReplicasTinyCluster(t *testing.T) {
	topo := cluster.NewT1(2)
	pl := partition.RandomPlacement(4, topo, 2)
	r := PlaceReplicas(pl, topo, 2)
	if err := r.Validate(topo); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if len(r.Machines[p]) != 2 {
			t.Fatalf("partition %d: got %d replicas on a 2-machine cluster", p, len(r.Machines[p]))
		}
	}
}

func TestFailover(t *testing.T) {
	topo := cluster.NewT1(4)
	pl := partition.RandomPlacement(2, topo, 3)
	r := PlaceReplicas(pl, topo, 3)
	p := partition.PartID(0)
	primary := r.Primary(p)
	m, err := r.Failover(p, map[cluster.MachineID]bool{primary: true})
	if err != nil {
		t.Fatal(err)
	}
	if m == primary {
		t.Fatal("failover returned dead primary")
	}
	// Kill everything: must error.
	dead := map[cluster.MachineID]bool{}
	for i := 0; i < 4; i++ {
		dead[cluster.MachineID(i)] = true
	}
	if _, err := r.Failover(p, dead); err == nil {
		t.Fatal("expected failover error with all machines dead")
	}
}

func TestFailoverFunc(t *testing.T) {
	r := &Replicas{Machines: [][]cluster.MachineID{{2, 0, 1}}}
	excl := func(bad ...cluster.MachineID) func(cluster.MachineID) bool {
		return func(m cluster.MachineID) bool {
			for _, b := range bad {
				if m == b {
					return true
				}
			}
			return false
		}
	}
	if m, err := r.FailoverFunc(0, excl()); err != nil || m != 2 {
		t.Fatalf("no exclusions: %d, %v", m, err)
	}
	// Replica order, not ID order: excluding the primary lands on the next
	// listed holder.
	if m, err := r.FailoverFunc(0, excl(2)); err != nil || m != 0 {
		t.Fatalf("primary excluded: %d, %v", m, err)
	}
	if _, err := r.FailoverFunc(0, excl(0, 1, 2)); err == nil {
		t.Fatal("all replicas excluded should error")
	}
}

func TestMigrationTarget(t *testing.T) {
	r := &Replicas{Machines: [][]cluster.MachineID{{3, 1, 2}}}
	avail := func(ok ...cluster.MachineID) func(cluster.MachineID) bool {
		return func(m cluster.MachineID) bool {
			for _, o := range ok {
				if m == o {
					return true
				}
			}
			return false
		}
	}
	// Lowest-ID available replica holder wins (the copy is already local).
	if m, err := r.MigrationTarget(0, 4, avail(1, 2, 3)); err != nil || m != 1 {
		t.Fatalf("replica holders available: %d, %v", m, err)
	}
	if m, err := r.MigrationTarget(0, 4, avail(2, 3)); err != nil || m != 2 {
		t.Fatalf("subset available: %d, %v", m, err)
	}
	// With no replica holder available, fall back to the lowest-ID available
	// machine overall.
	if m, err := r.MigrationTarget(0, 4, avail(0)); err != nil || m != 0 {
		t.Fatalf("fallback: %d, %v", m, err)
	}
	if _, err := r.MigrationTarget(0, 4, avail()); err == nil {
		t.Fatal("no available machine should error")
	}
}

func TestPartBytesIndexedByPartID(t *testing.T) {
	g := graph.FromEdges(8, [][2]graph.VertexID{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0},
	})
	pt, _ := partition.RecursiveBisect(g, 2, partition.Options{Seed: 1})
	pg, err := Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	pb := pg.PartBytes()
	if len(pb) != len(pg.Parts) {
		t.Fatalf("len = %d, want %d", len(pb), len(pg.Parts))
	}
	var sum int64
	for p, b := range pb {
		if b != pg.Parts[p].Bytes {
			t.Fatalf("partition %d: %d != %d", p, b, pg.Parts[p].Bytes)
		}
		sum += b
	}
	if sum != pg.Bytes() {
		t.Fatalf("sum %d != total %d", sum, pg.Bytes())
	}
}
