package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Checkpoint file format: the serialized vertex state of one propagation
// iteration, written every K iterations so a failed multi-iteration run can
// resume from the last checkpoint instead of iteration zero (§F, Figure 10's
// fault-tolerance experiments). Little-endian, mirroring the partition and
// manifest formats:
//
//	magic     uint32  'S','R','F','C'
//	version   uint32  1
//	iteration uint32  iteration the state belongs to (state *after* it ran)
//	length    uint32  payload bytes
//	crc32     uint32  IEEE CRC of the payload
//	payload   [length]byte (caller-defined state encoding)
const (
	ckptMagic   = uint32('S') | uint32('R')<<8 | uint32('F')<<16 | uint32('C')<<24
	ckptVersion = 1
)

// WriteCheckpoint writes one checkpoint envelope. The payload encoding is the
// caller's (propagation serializes its State); the envelope pins iteration
// identity and integrity so a torn or stale file is rejected at restore time.
func WriteCheckpoint(w io.Writer, iteration int, payload []byte) error {
	if iteration < 0 {
		return fmt.Errorf("storage: checkpoint iteration %d is negative", iteration)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint32{ckptMagic, ckptVersion, uint32(iteration), uint32(len(payload)), crc32.ChecksumIEEE(payload)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCheckpoint decodes a checkpoint envelope, returning the iteration it
// belongs to and the caller-encoded payload. Corruption — wrong magic,
// truncated payload, checksum mismatch — is an error, never a silent
// partial restore.
func ReadCheckpoint(r io.Reader) (iteration int, payload []byte, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [5]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return 0, nil, fmt.Errorf("storage: reading checkpoint header: %w", err)
	}
	if hdr[0] != ckptMagic {
		return 0, nil, fmt.Errorf("storage: bad checkpoint magic %#x", hdr[0])
	}
	if hdr[1] != ckptVersion {
		return 0, nil, fmt.Errorf("storage: unsupported checkpoint version %d", hdr[1])
	}
	const maxPayload = 1 << 31
	if hdr[3] > maxPayload {
		return 0, nil, fmt.Errorf("storage: implausible checkpoint payload of %d bytes", hdr[3])
	}
	payload = make([]byte, hdr[3])
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("storage: reading checkpoint payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != hdr[4] {
		return 0, nil, fmt.Errorf("storage: checkpoint payload checksum %#x does not match header %#x", got, hdr[4])
	}
	return int(hdr[2]), payload, nil
}
