// Package storage materializes a partitioned data graph the way Surfer
// stores it on slave machines (§3, §5.1): each partition keeps its vertices'
// adjacency lists plus two locality structures generated at partitioning
// time — the set of the partition's boundary vertices and the (v, pid)
// association from the destination vertex of each outgoing cross-partition
// edge to the remote partition that owns it. The paper stores these as hash
// tables; we store the boundary sets as graph-wide bitsets and the
// cross-destination set as a sorted flat slice, so Build makes no map
// insertions on the per-edge path and lookups stay cache-friendly at
// millions of vertices. Partitions are placed on machines by a
// partition.Placement and replicated three ways like GFS.
package storage

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/partition"
)

// CrossStats summarizes the outgoing cross-partition edges from one
// partition to one remote partition.
type CrossStats struct {
	// Edges is the number of cross-partition edges to that remote.
	Edges int64
	// DistinctDst is the number of distinct destination vertices among
	// them. Local combination (§5.1) shrinks the transfer from Edges
	// values to DistinctDst values when the combiner is associative.
	DistinctDst int64
}

// PartInfo is the per-partition locality metadata Surfer keeps in memory
// while processing the partition.
type PartInfo struct {
	ID partition.PartID
	// Vertices lists the partition's vertices in increasing ID order.
	Vertices []graph.VertexID
	// CrossDst lists the distinct destination vertices of this partition's
	// outgoing cross-partition edges, in increasing ID order — the (v, pid)
	// structure of §5.1, with the pid half implied by the assignment (see
	// CrossDstPart).
	CrossDst []graph.VertexID
	// OutPerPart aggregates outgoing cross-edge statistics per remote
	// partition; InPerPart counts incoming cross edges per remote.
	OutPerPart map[partition.PartID]*CrossStats
	InPerPart  map[partition.PartID]int64
	// InnerEdges counts edges with both endpoints in this partition;
	// CrossOut / CrossIn count cross-partition edges leaving / entering.
	InnerEdges int64
	CrossOut   int64
	CrossIn    int64
	// BoundaryCount counts this partition's boundary vertices: members
	// touching at least one cross-partition edge (either direction).
	BoundaryCount int64
	// InnerVertices counts vertices with no cross-partition edge at all.
	InnerVertices int64
	// Bytes is the serialized size of the partition's adjacency lists,
	// the unit the engine charges for disk scans.
	Bytes int64

	// boundary and inBoundary are graph-wide bitsets shared by every
	// PartInfo of the same Build: bit v is set iff v is a boundary vertex
	// (resp. has an incoming cross-partition edge) of its owning partition.
	// Sharing is sound because each vertex belongs to exactly one partition.
	boundary   bitset
	inBoundary bitset
	// assign is the shared vertex→partition assignment, for CrossDstPart.
	assign []partition.PartID
}

// bitset is a fixed-size bit vector indexed by vertex ID.
type bitset []uint64

func newBitset(n int) bitset               { return make(bitset, (n+63)/64) }
func (b bitset) set(v graph.VertexID)      { b[v>>6] |= 1 << (v & 63) }
func (b bitset) has(v graph.VertexID) bool { return b[v>>6]&(1<<(v&63)) != 0 }

// NumVertices reports the number of vertices in the partition.
func (pi *PartInfo) NumVertices() int { return len(pi.Vertices) }

// IsBoundary reports whether v (a member of this partition) is a boundary
// vertex.
func (pi *PartInfo) IsBoundary(v graph.VertexID) bool {
	return pi.boundary.has(v)
}

// HasCrossInEdge reports whether v receives any cross-partition edge; if
// not, v's combine input is entirely local and local propagation can fuse
// it in memory.
func (pi *PartInfo) HasCrossInEdge(v graph.VertexID) bool {
	return pi.inBoundary.has(v)
}

// CrossDstPart reports the remote partition owning destination vertex v,
// and whether v is the destination of any outgoing cross-partition edge of
// this partition — the lookup the paper serves from the (v, pid) hash table.
func (pi *PartInfo) CrossDstPart(v graph.VertexID) (partition.PartID, bool) {
	if _, ok := slices.BinarySearch(pi.CrossDst, v); !ok {
		return 0, false
	}
	return pi.assign[v], true
}

// InnerVertexRatio is the fraction of the partition's vertices that are
// inner — the quantity that determines how much local propagation helps
// (§5.1).
func (pi *PartInfo) InnerVertexRatio() float64 {
	if len(pi.Vertices) == 0 {
		return 1
	}
	return float64(pi.InnerVertices) / float64(len(pi.Vertices))
}

// PartitionedGraph bundles a data graph with its partitioning and the
// per-partition metadata.
type PartitionedGraph struct {
	G     *graph.Graph
	Part  *partition.Partitioning
	Parts []*PartInfo
}

// Build computes all per-partition metadata for a partitioned graph in two
// passes over the edges. The per-edge path touches only flat arrays and
// bitsets; maps appear only in the final per-remote aggregation (at most
// P² entries).
func Build(g *graph.Graph, pt *partition.Partitioning) (*PartitionedGraph, error) {
	if g.NumVertices() != len(pt.Assign) {
		return nil, fmt.Errorf("storage: partitioning covers %d vertices, graph has %d", len(pt.Assign), g.NumVertices())
	}
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	P := pt.P
	pg := &PartitionedGraph{G: g, Part: pt, Parts: make([]*PartInfo, P)}
	boundary := newBitset(n)
	inBoundary := newBitset(n)
	for p := 0; p < P; p++ {
		pg.Parts[p] = &PartInfo{
			ID:         partition.PartID(p),
			boundary:   boundary,
			inBoundary: inBoundary,
			assign:     pt.Assign,
		}
	}
	for v, p := range pt.Assign {
		pi := pg.Parts[p]
		pi.Vertices = append(pi.Vertices, graph.VertexID(v))
	}
	// Per-(src,remote) edge counts in a flat P×P matrix; cross-edge
	// destinations collected per source partition and deduplicated by
	// sorting afterwards.
	outEdges := make([]int64, P*P)
	inEdges := make([]int64, P*P)
	dsts := make([][]graph.VertexID, P)
	offsets, targets := g.Offsets(), g.Targets()
	for u := 0; u < n; u++ {
		pu := pt.Assign[u]
		src := pg.Parts[pu]
		for _, v := range targets[offsets[u]:offsets[u+1]] {
			pv := pt.Assign[v]
			if pu == pv {
				src.InnerEdges++
				continue
			}
			dst := pg.Parts[pv]
			src.CrossOut++
			dst.CrossIn++
			boundary.set(graph.VertexID(u))
			boundary.set(v)
			inBoundary.set(v)
			outEdges[int(pu)*P+int(pv)]++
			inEdges[int(pv)*P+int(pu)]++
			dsts[pu] = append(dsts[pu], v)
		}
	}
	for p := 0; p < P; p++ {
		pi := pg.Parts[p]
		// Deduplicate this partition's cross destinations and count the
		// distinct ones per remote partition.
		ds := dsts[p]
		slices.Sort(ds)
		distinct := make([]int64, P)
		pi.CrossDst = ds[:0]
		for i, v := range ds {
			if i > 0 && v == ds[i-1] {
				continue
			}
			pi.CrossDst = append(pi.CrossDst, v)
			distinct[pt.Assign[v]]++
		}
		pi.OutPerPart = make(map[partition.PartID]*CrossStats)
		pi.InPerPart = make(map[partition.PartID]int64)
		for q := 0; q < P; q++ {
			if e := outEdges[p*P+q]; e > 0 {
				pi.OutPerPart[partition.PartID(q)] = &CrossStats{Edges: e, DistinctDst: distinct[q]}
			}
			if e := inEdges[p*P+q]; e > 0 {
				pi.InPerPart[partition.PartID(q)] = e
			}
		}
		var edges int64
		for _, v := range pi.Vertices {
			if boundary.has(v) {
				pi.BoundaryCount++
			}
			edges += int64(g.OutDegree(v))
		}
		pi.InnerVertices = int64(len(pi.Vertices)) - pi.BoundaryCount
		pi.Bytes = int64(len(pi.Vertices))*8 + edges*4
	}
	return pg, nil
}

// TotalCrossEdges sums outgoing cross-partition edges over all partitions.
func (pg *PartitionedGraph) TotalCrossEdges() int64 {
	var c int64
	for _, pi := range pg.Parts {
		c += pi.CrossOut
	}
	return c
}

// Bytes sums the serialized sizes of all partitions.
func (pg *PartitionedGraph) Bytes() int64 {
	var b int64
	for _, pi := range pg.Parts {
		b += pi.Bytes
	}
	return b
}

// PartBytes returns the serialized size of each partition indexed by
// PartID — the per-partition migration volume the engine charges when a
// drain evicts resident state (engine.Config.PartBytes).
func (pg *PartitionedGraph) PartBytes() []int64 {
	out := make([]int64, len(pg.Parts))
	for p, pi := range pg.Parts {
		out[p] = pi.Bytes
	}
	return out
}

// Validate cross-checks the metadata invariants: vertex cover, symmetric
// cross-edge counts, boundary consistency.
func (pg *PartitionedGraph) Validate() error {
	total := 0
	for _, pi := range pg.Parts {
		total += len(pi.Vertices)
	}
	if total != pg.G.NumVertices() {
		return fmt.Errorf("storage: partitions cover %d of %d vertices", total, pg.G.NumVertices())
	}
	var outSum, inSum int64
	for _, pi := range pg.Parts {
		outSum += pi.CrossOut
		inSum += pi.CrossIn
	}
	if outSum != inSum {
		return fmt.Errorf("storage: cross-out %d != cross-in %d", outSum, inSum)
	}
	var inner int64
	for _, pi := range pg.Parts {
		inner += pi.InnerEdges
	}
	if inner+outSum != pg.G.NumEdges() {
		return fmt.Errorf("storage: inner %d + cross %d != |E| %d", inner, outSum, pg.G.NumEdges())
	}
	return nil
}
