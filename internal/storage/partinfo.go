// Package storage materializes a partitioned data graph the way Surfer
// stores it on slave machines (§3, §5.1): each partition keeps its vertices'
// adjacency lists plus two locality structures generated at partitioning
// time — a hash table of the partition's boundary vertices and a map from
// the destination vertex of each outgoing cross-partition edge to the remote
// partition that owns it. Partitions are placed on machines by a
// partition.Placement and replicated three ways like GFS.
package storage

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
)

// CrossStats summarizes the outgoing cross-partition edges from one
// partition to one remote partition.
type CrossStats struct {
	// Edges is the number of cross-partition edges to that remote.
	Edges int64
	// DistinctDst is the number of distinct destination vertices among
	// them. Local combination (§5.1) shrinks the transfer from Edges
	// values to DistinctDst values when the combiner is associative.
	DistinctDst int64
}

// PartInfo is the per-partition locality metadata Surfer keeps in memory
// while processing the partition.
type PartInfo struct {
	ID partition.PartID
	// Vertices lists the partition's vertices in increasing ID order.
	Vertices []graph.VertexID
	// Boundary is the hash table of boundary vertices: members of this
	// partition touching at least one cross-partition edge (either
	// direction).
	Boundary map[graph.VertexID]struct{}
	// InBoundary is the subset of members with at least one *incoming*
	// cross-partition edge. Local propagation fuses transfer+combine for
	// a destination vertex exactly when all its inputs originate inside
	// the partition, i.e. when it is not in InBoundary — a refinement of
	// the paper's conservative both-direction inner-vertex definition.
	InBoundary map[graph.VertexID]struct{}
	// CrossDst maps the destination vertex of every outgoing
	// cross-partition edge to the remote partition owning it — the (v,
	// pid) map of §5.1.
	CrossDst map[graph.VertexID]partition.PartID
	// OutPerPart aggregates outgoing cross-edge statistics per remote
	// partition; InPerPart counts incoming cross edges per remote.
	OutPerPart map[partition.PartID]*CrossStats
	InPerPart  map[partition.PartID]int64
	// InnerEdges counts edges with both endpoints in this partition;
	// CrossOut / CrossIn count cross-partition edges leaving / entering.
	InnerEdges int64
	CrossOut   int64
	CrossIn    int64
	// InnerVertices counts vertices with no cross-partition edge at all.
	InnerVertices int64
	// Bytes is the serialized size of the partition's adjacency lists,
	// the unit the engine charges for disk scans.
	Bytes int64
}

// NumVertices reports the number of vertices in the partition.
func (pi *PartInfo) NumVertices() int { return len(pi.Vertices) }

// IsBoundary reports whether v (a member of this partition) is a boundary
// vertex.
func (pi *PartInfo) IsBoundary(v graph.VertexID) bool {
	_, ok := pi.Boundary[v]
	return ok
}

// HasCrossInEdge reports whether v receives any cross-partition edge; if
// not, v's combine input is entirely local and local propagation can fuse
// it in memory.
func (pi *PartInfo) HasCrossInEdge(v graph.VertexID) bool {
	_, ok := pi.InBoundary[v]
	return ok
}

// InnerVertexRatio is the fraction of the partition's vertices that are
// inner — the quantity that determines how much local propagation helps
// (§5.1).
func (pi *PartInfo) InnerVertexRatio() float64 {
	if len(pi.Vertices) == 0 {
		return 1
	}
	return float64(pi.InnerVertices) / float64(len(pi.Vertices))
}

// PartitionedGraph bundles a data graph with its partitioning and the
// per-partition metadata.
type PartitionedGraph struct {
	G     *graph.Graph
	Part  *partition.Partitioning
	Parts []*PartInfo
}

// Build computes all per-partition metadata for a partitioned graph in two
// passes over the edges.
func Build(g *graph.Graph, pt *partition.Partitioning) (*PartitionedGraph, error) {
	if g.NumVertices() != len(pt.Assign) {
		return nil, fmt.Errorf("storage: partitioning covers %d vertices, graph has %d", len(pt.Assign), g.NumVertices())
	}
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	pg := &PartitionedGraph{G: g, Part: pt, Parts: make([]*PartInfo, pt.P)}
	for p := 0; p < pt.P; p++ {
		pg.Parts[p] = &PartInfo{
			ID:         partition.PartID(p),
			Boundary:   make(map[graph.VertexID]struct{}),
			InBoundary: make(map[graph.VertexID]struct{}),
			CrossDst:   make(map[graph.VertexID]partition.PartID),
			OutPerPart: make(map[partition.PartID]*CrossStats),
			InPerPart:  make(map[partition.PartID]int64),
		}
	}
	for v, p := range pt.Assign {
		pi := pg.Parts[p]
		pi.Vertices = append(pi.Vertices, graph.VertexID(v))
	}
	// Distinct-destination tracking per (srcPart, dst).
	seenDst := make([]map[graph.VertexID]struct{}, pt.P)
	for p := range seenDst {
		seenDst[p] = make(map[graph.VertexID]struct{})
	}
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		pu, pv := pt.Assign[u], pt.Assign[v]
		src, dst := pg.Parts[pu], pg.Parts[pv]
		if pu == pv {
			src.InnerEdges++
			return true
		}
		src.CrossOut++
		dst.CrossIn++
		src.Boundary[u] = struct{}{}
		dst.Boundary[v] = struct{}{}
		dst.InBoundary[v] = struct{}{}
		src.CrossDst[v] = pv
		st := src.OutPerPart[pv]
		if st == nil {
			st = &CrossStats{}
			src.OutPerPart[pv] = st
		}
		st.Edges++
		if _, ok := seenDst[pu][v]; !ok {
			seenDst[pu][v] = struct{}{}
			st.DistinctDst++
		}
		dst.InPerPart[pu]++
		return true
	})
	for _, pi := range pg.Parts {
		pi.InnerVertices = int64(len(pi.Vertices) - len(pi.Boundary))
		var edges int64
		for _, v := range pi.Vertices {
			edges += int64(g.OutDegree(v))
		}
		pi.Bytes = int64(len(pi.Vertices))*8 + edges*4
	}
	return pg, nil
}

// TotalCrossEdges sums outgoing cross-partition edges over all partitions.
func (pg *PartitionedGraph) TotalCrossEdges() int64 {
	var c int64
	for _, pi := range pg.Parts {
		c += pi.CrossOut
	}
	return c
}

// Bytes sums the serialized sizes of all partitions.
func (pg *PartitionedGraph) Bytes() int64 {
	var b int64
	for _, pi := range pg.Parts {
		b += pi.Bytes
	}
	return b
}

// Validate cross-checks the metadata invariants: vertex cover, symmetric
// cross-edge counts, boundary consistency.
func (pg *PartitionedGraph) Validate() error {
	total := 0
	for _, pi := range pg.Parts {
		total += len(pi.Vertices)
	}
	if total != pg.G.NumVertices() {
		return fmt.Errorf("storage: partitions cover %d of %d vertices", total, pg.G.NumVertices())
	}
	var outSum, inSum int64
	for _, pi := range pg.Parts {
		outSum += pi.CrossOut
		inSum += pi.CrossIn
	}
	if outSum != inSum {
		return fmt.Errorf("storage: cross-out %d != cross-in %d", outSum, inSum)
	}
	var inner int64
	for _, pi := range pg.Parts {
		inner += pi.InnerEdges
	}
	if inner+outSum != pg.G.NumEdges() {
		return fmt.Errorf("storage: inner %d + cross %d != |E| %d", inner, outSum, pg.G.NumEdges())
	}
	return nil
}
