package storage

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/partition"
)

// ReplicationFactor is the number of copies of each partition, following
// GFS (§3: "each partition has three replicas on different slave machines").
const ReplicationFactor = 3

// Replicas records, per partition, the machines holding its copies. The
// first replica is the primary from the placement; the engine reads the
// primary and fails over to the others when the primary's machine dies.
type Replicas struct {
	Machines [][]cluster.MachineID
}

// PlaceReplicas derives a replica layout from a primary placement,
// GFS-style: replica 2 goes to a different machine in the same pod as the
// primary when one exists (cheap re-replication, switch-local reads) and
// replica 3 to a machine in another pod when one exists (pod-failure
// tolerance). Degenerate topologies fall back to any distinct machines; a
// topology with fewer machines than ReplicationFactor gets as many distinct
// replicas as machines exist.
func PlaceReplicas(pl *partition.Placement, topo *cluster.Topology, seed int64) *Replicas {
	rng := rand.New(rand.NewSource(seed))
	n := topo.NumMachines()
	r := &Replicas{Machines: make([][]cluster.MachineID, pl.NumPartitions())}
	for p, primary := range pl.MachineOf {
		replicas := []cluster.MachineID{primary}
		pick := func(want func(cluster.MachineID) bool) bool {
			// Random probing with a deterministic full scan fallback.
			for try := 0; try < 2*n; try++ {
				m := cluster.MachineID(rng.Intn(n))
				if want(m) && !containsMachine(replicas, m) {
					replicas = append(replicas, m)
					return true
				}
			}
			for i := 0; i < n; i++ {
				m := cluster.MachineID(i)
				if want(m) && !containsMachine(replicas, m) {
					replicas = append(replicas, m)
					return true
				}
			}
			return false
		}
		samePod := func(m cluster.MachineID) bool { return topo.SamePod(m, primary) }
		otherPod := func(m cluster.MachineID) bool { return !topo.SamePod(m, primary) }
		any := func(cluster.MachineID) bool { return true }
		if !pick(samePod) {
			pick(any)
		}
		if len(replicas) < ReplicationFactor && !pick(otherPod) {
			pick(any)
		}
		r.Machines[p] = replicas
	}
	return r
}

// Primary returns the primary machine of partition p.
func (r *Replicas) Primary(p partition.PartID) cluster.MachineID {
	return r.Machines[p][0]
}

// Failover returns the first replica of p not in the dead set, or an error
// if all replicas are dead.
func (r *Replicas) Failover(p partition.PartID, dead map[cluster.MachineID]bool) (cluster.MachineID, error) {
	for _, m := range r.Machines[p] {
		if !dead[m] {
			return m, nil
		}
	}
	return 0, fmt.Errorf("storage: all %d replicas of partition %d are on dead machines", len(r.Machines[p]), p)
}

// FailoverFunc is Failover generalized over an arbitrary exclusion
// predicate, for elastic membership: the engine excludes not just dead
// machines but also draining, retired and still-dormant ones.
func (r *Replicas) FailoverFunc(p partition.PartID, excluded func(cluster.MachineID) bool) (cluster.MachineID, error) {
	for _, m := range r.Machines[p] {
		if !excluded(m) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("storage: all %d replicas of partition %d are excluded", len(r.Machines[p]), p)
}

// MigrationTarget picks the machine a partition migrates to when its home
// drains: deterministically the lowest-ID available machine holding a
// replica of p (the copy is already local — cheapest handoff), else the
// lowest-ID available machine overall. available must be stable across
// worker counts for determinism; load balancing is the caller's concern via
// the available predicate.
func (r *Replicas) MigrationTarget(p partition.PartID, numMachines int, available func(cluster.MachineID) bool) (cluster.MachineID, error) {
	best := cluster.MachineID(-1)
	for _, m := range r.Machines[p] {
		if available(m) && (best < 0 || m < best) {
			best = m
		}
	}
	if best >= 0 {
		return best, nil
	}
	for i := 0; i < numMachines; i++ {
		if available(cluster.MachineID(i)) {
			return cluster.MachineID(i), nil
		}
	}
	return 0, fmt.Errorf("storage: no available migration target for partition %d", p)
}

// Validate checks that each partition has distinct replica machines and at
// least one replica.
func (r *Replicas) Validate(topo *cluster.Topology) error {
	for p, ms := range r.Machines {
		if len(ms) == 0 {
			return fmt.Errorf("storage: partition %d has no replicas", p)
		}
		seen := map[cluster.MachineID]bool{}
		for _, m := range ms {
			if int(m) < 0 || int(m) >= topo.NumMachines() {
				return fmt.Errorf("storage: partition %d replica on invalid machine %d", p, m)
			}
			if seen[m] {
				return fmt.Errorf("storage: partition %d has duplicate replica machine %d", p, m)
			}
			seen[m] = true
		}
	}
	return nil
}

func containsMachine(ms []cluster.MachineID, m cluster.MachineID) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}
