package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Partition file format: the adjacency lists of one partition in the
// <ID, d, neighbors> layout of §3, little-endian.
//
//	magic   uint32  'S','R','F','P'
//	version uint32  1
//	partID  uint32
//	nVerts  uint32
//	repeated nVerts times:
//	  id    uint32
//	  d     uint32
//	  nbrs  [d]uint32
const (
	partMagic   = uint32('S') | uint32('R')<<8 | uint32('F')<<16 | uint32('P')<<24
	partVersion = 1
)

// WritePartition serializes one partition's adjacency lists.
func WritePartition(w io.Writer, g *graph.Graph, pi *PartInfo) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint32{partMagic, partVersion, uint32(pi.ID), uint32(len(pi.Vertices))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, v := range pi.Vertices {
		ns := g.Neighbors(v)
		if err := binary.Write(bw, binary.LittleEndian, []uint32{uint32(v), uint32(len(ns))}); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, ns); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PartitionData is the decoded form of a partition file.
type PartitionData struct {
	ID       partition.PartID
	Vertices []graph.VertexID
	// Adjacency[i] holds the out-neighbors of Vertices[i] (global IDs).
	Adjacency [][]graph.VertexID
}

// ReadPartition decodes a partition file written by WritePartition.
func ReadPartition(r io.Reader) (*PartitionData, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("storage: reading partition header: %w", err)
	}
	if hdr[0] != partMagic {
		return nil, fmt.Errorf("storage: bad partition magic %#x", hdr[0])
	}
	if hdr[1] != partVersion {
		return nil, fmt.Errorf("storage: unsupported partition version %d", hdr[1])
	}
	n := int(hdr[3])
	pd := &PartitionData{
		ID:        partition.PartID(hdr[2]),
		Vertices:  make([]graph.VertexID, n),
		Adjacency: make([][]graph.VertexID, n),
	}
	for i := 0; i < n; i++ {
		var vh [2]uint32
		if err := binary.Read(br, binary.LittleEndian, &vh); err != nil {
			return nil, fmt.Errorf("storage: reading vertex %d: %w", i, err)
		}
		pd.Vertices[i] = graph.VertexID(vh[0])
		d := int(vh[1])
		const maxDegree = 1 << 28
		if d > maxDegree {
			return nil, fmt.Errorf("storage: implausible degree %d", d)
		}
		ns := make([]graph.VertexID, d)
		if err := binary.Read(br, binary.LittleEndian, ns); err != nil {
			return nil, fmt.Errorf("storage: reading neighbors of vertex %d: %w", i, err)
		}
		pd.Adjacency[i] = ns
	}
	return pd, nil
}
