package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	g := graph.Social(graph.DefaultSocial(1200, 4))
	pg := buildPG(t, g, 3, 4)
	dir := filepath.Join(t.TempDir(), "parts")
	if err := pg.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.G.Equal(pg.G) {
		t.Fatal("graph changed through save/load")
	}
	if loaded.Part.P != pg.Part.P {
		t.Fatalf("P = %d, want %d", loaded.Part.P, pg.Part.P)
	}
	for v := range pg.Part.Assign {
		if loaded.Part.Assign[v] != pg.Part.Assign[v] {
			t.Fatalf("assignment changed at %d", v)
		}
	}
	// Metadata is recomputed, so cross/inner counts must match.
	for p := range pg.Parts {
		if loaded.Parts[p].InnerEdges != pg.Parts[p].InnerEdges ||
			loaded.Parts[p].CrossOut != pg.Parts[p].CrossOut {
			t.Fatalf("partition %d metadata mismatch", p)
		}
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestLoadDirRejectsCorruptManifest(t *testing.T) {
	g := graph.Ring(32)
	pg := buildPG(t, g, 2, 1)
	dir := filepath.Join(t.TempDir(), "parts")
	if err := pg.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF // break magic
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestLoadDirRejectsMissingPartition(t *testing.T) {
	g := graph.Ring(32)
	pg := buildPG(t, g, 2, 2)
	dir := filepath.Join(t.TempDir(), "parts")
	if err := pg.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, partFileName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("expected error for missing partition file")
	}
}
