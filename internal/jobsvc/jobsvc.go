// Package jobsvc is Surfer's multi-tenant job service: a submission queue
// over the simulated cluster that runs many jobs *concurrently* in one
// virtual clock, so their transfers contend on the same per-machine NICs
// and links — the cloud regime of §1–2 where network bandwidth is the
// shared, fought-over resource, generalizing the one-job-at-a-time
// scheduler package.
//
// A job arrives at its spec's submit time, waits in the queue for a run
// slot (Config.Concurrency bounds how many jobs hold the cluster at once),
// and then executes its pre-planned engine jobs stage by stage. Scheduling
// decisions happen only at arrivals and stage barriers — a running stage is
// never torn down — which keeps preemption cheap and the determinism
// argument simple. Three policies order the queue: FIFO (submission order,
// run to completion), Fair (CFS-style: the tenant with the least delivered
// machine-seconds runs next, so a heavy tenant is preempted at barriers
// while light tenants catch up), and Priority (strict: a higher-priority
// arrival preempts lower-priority jobs at their next barrier). Admission
// control (Config.QueueLimit) rejects arrivals when the queue is over
// budget, deterministically.
//
// Determinism contract: the service is one serial discrete-event loop in
// virtual time — the worker pool parallelism of the engine only ever runs
// semantic *planning* compute (see propagation.PlanIterations), never this
// loop — so per-job results, latencies and the trace stream are
// bit-identical for every worker count, with or without a fault schedule.
// Every scheduler decision is traced (job-queued / job-admitted /
// job-preempted / job-resumed / job-rejected) with causal edges, so
// surfer-analyze can attribute makespan to queueing (the queued-preempted
// blame category).
package jobsvc

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/trace"
)

// Policy selects the queue-ordering discipline.
type Policy int

const (
	// FIFO runs jobs in submission order, to completion (no preemption).
	FIFO Policy = iota
	// Fair is CFS-style fair sharing: each tenant accrues virtual runtime
	// (delivered machine-seconds); the runnable job of the least-served
	// tenant wins every barrier. New tenants start at the minimum live
	// vruntime, so they get service promptly without starving incumbents.
	Fair
	// Priority is strict priority (higher Spec.Priority first, ties by
	// submission order) with preemption at stage barriers.
	Priority
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Fair:
		return "fair"
	case Priority:
		return "priority"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Policies lists every policy in report order.
var Policies = []Policy{FIFO, Fair, Priority}

// ParsePolicy resolves a policy name ("fifo", "fair", "priority").
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("jobsvc: unknown policy %q (want fifo, fair or priority)", s)
}

// Config configures one service run.
type Config struct {
	Topo   *cluster.Topology
	Policy Policy
	// Concurrency is how many jobs may hold the cluster (have an active
	// stage) at once. <= 0 selects 2.
	Concurrency int
	// QueueLimit bounds the jobs waiting for admission: an arrival that
	// finds QueueLimit jobs already queued is rejected. 0 = unlimited.
	QueueLimit int
	// SlotsPerMachine is each machine's task slot count. <= 0 selects 1.
	SlotsPerMachine int
	// Trace receives the event stream; nil disables tracing.
	Trace *trace.Recorder
	// Faults injects transient link faults and machine slowdowns shared by
	// every job; Retry tunes dropped-transfer recovery.
	Faults *fault.Schedule
	Retry  fault.RetryPolicy
}

// Job is one unit of submission: a spec plus its pre-planned engine jobs.
// Plans are pure functions of graph, program and placement (see
// propagation.PlanIterations), so planning once and replaying under any
// policy yields identical per-job results.
type Job struct {
	Spec JobSpec
	Plan []*engine.Job
}

// Record is the service's account of one submitted job.
type Record struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// Submitted, Admitted and Finished are virtual times; Admitted and
	// Finished are zero for rejected jobs.
	Submitted float64 `json:"submitted"`
	Admitted  float64 `json:"admitted"`
	Finished  float64 `json:"finished"`
	// Rejected reports the job was refused by admission control.
	Rejected bool `json:"rejected,omitempty"`
	// Preemptions counts barrier preemptions the job suffered.
	Preemptions int `json:"preemptions,omitempty"`
	// Resource accounting over the job's whole plan.
	MachineSeconds  float64 `json:"machine_seconds"`
	NetworkBytes    int64   `json:"network_bytes"`
	DiskBytes       int64   `json:"disk_bytes"`
	TasksRun        int     `json:"tasks_run"`
	TransferDrops   int     `json:"transfer_drops,omitempty"`
	TransferRetries int     `json:"transfer_retries,omitempty"`
}

// Latency is the submit→finish response time (0 for rejected jobs).
func (r Record) Latency() float64 {
	if r.Rejected {
		return 0
	}
	return r.Finished - r.Submitted
}

// WaitSeconds is the submit→admit queueing delay (0 for rejected jobs).
func (r Record) WaitSeconds() float64 {
	if r.Rejected {
		return 0
	}
	return r.Admitted - r.Submitted
}

// Run executes the workload under the config's policy and returns one
// record per job, in arrival order (ties by input order).
func Run(cfg Config, jobs []Job) ([]Record, error) {
	s, err := newService(cfg, jobs)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// jobState is a submitted job's lifecycle position.
type jobState int

const (
	jsQueued  jobState = iota
	jsActive           // holds a run slot, stage in flight
	jsBarrier          // between stages, still holding its candidacy this instant
	jsPreempted
	jsDone
	jsRejected
)

// jobRun is the service's mutable state for one submitted job.
type jobRun struct {
	job   Job
	idx   int // arrival order
	state jobState
	// planIdx/stageIdx locate the next (or running) stage.
	planIdx  int
	stageIdx int
	// Running-stage bookkeeping, engine-equivalent: remaining tasks,
	// in-flight transfers, and the barrier's binding event.
	remaining     int
	inflight      int
	stageEnd      float64
	stageEndCause int
	dispatchCause int
	// stageMach is the stage's delivered machine-seconds, accrued into the
	// tenant's fair-share vruntime at the barrier.
	stageMach float64
	// Trace threading.
	queuedSeq  int
	preemptSeq int
	nextCause  int // cause of the job's next begin/stage-begin
	rec        Record
}

func (jr *jobRun) id() string { return jr.job.Spec.ID }

// curPlan returns the engine job the next/running stage belongs to.
func (jr *jobRun) curPlan() *engine.Job { return jr.job.Plan[jr.planIdx] }

// execName is the trace label of the job's current engine job: the spec ID
// plus the plan-job name, unique across tenants even when two jobs run the
// same app.
func (jr *jobRun) execName() string { return jr.id() + "/" + jr.curPlan().Name }

// event kinds, in tie-break order at equal virtual times: arrivals resolve
// before completions so a same-instant arrival is visible to the schedule
// pass its barrier triggers.
const (
	evArrival = iota
	evTaskDone
	evTransferDone
	evTransferRetry
)

type event struct {
	at   float64
	kind int
	seq  int
	// evArrival / evTransferDone
	jr *jobRun
	// evTaskDone
	st       *simTask
	machine  cluster.MachineID
	start    float64
	dur      float64
	startSeq int
	// evTransferDone / evTransferRetry
	transfer *pendingTransfer
	traceSeq int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// simTask is one enqueued task execution, tagged with its owning job.
type simTask struct {
	jr *jobRun
	t  *engine.Task
}

type pendingTransfer struct {
	jr      *jobRun
	src     cluster.MachineID
	dst     cluster.MachineID
	bytes   int64
	part    int
	dstName string
	attempt int
	cause   int
}

// service is the multi-job discrete-event simulator. Everything here runs
// on the caller's goroutine — the serial loop is the determinism anchor.
type service struct {
	cfg    Config
	tr     *trace.Recorder
	faults *fault.Schedule
	retry  fault.RetryPolicy

	events eventHeap
	seq    int

	// Shared cluster state: task slots and NIC free-times span jobs, which
	// is the whole point — concurrent tenants contend here.
	running     []int
	queues      [][]*simTask
	egressFree  []float64
	ingressFree []float64

	jobs      []*jobRun // arrival order
	queued    []*jobRun // waiting for admission, arrival order
	preempted []*jobRun // preemption order
	active    int       // jobs holding a run slot

	// vruntime is each tenant's fair-share clock: delivered machine-seconds.
	vruntime map[string]float64

	// lastQueuedSeq chains arrival events causally (first arrival is root).
	lastQueuedSeq int

	err error
}

func newService(cfg Config, jobs []Job) (*service, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("jobsvc: config without a topology")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.SlotsPerMachine <= 0 {
		cfg.SlotsPerMachine = 1
	}
	if err := cfg.Faults.Validate(cfg.Topo.NumMachines()); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if j.Spec.ID == "" {
			return nil, fmt.Errorf("jobsvc: job %d has no ID", i)
		}
		if seen[j.Spec.ID] {
			return nil, fmt.Errorf("jobsvc: duplicate job ID %q", j.Spec.ID)
		}
		seen[j.Spec.ID] = true
		if j.Spec.Tenant == "" {
			return nil, fmt.Errorf("jobsvc: job %q has no tenant", j.Spec.ID)
		}
		if j.Spec.Submit < 0 {
			return nil, fmt.Errorf("jobsvc: job %q submits at negative time %g", j.Spec.ID, j.Spec.Submit)
		}
		if len(j.Plan) == 0 {
			return nil, fmt.Errorf("jobsvc: job %q has an empty plan", j.Spec.ID)
		}
		for _, pj := range j.Plan {
			if err := pj.Validate(cfg.Topo); err != nil {
				return nil, fmt.Errorf("jobsvc: job %q: %w", j.Spec.ID, err)
			}
			for si, st := range pj.Stages {
				if len(st.Tasks) == 0 {
					return nil, fmt.Errorf("jobsvc: job %q plan %q stage %d has no tasks", j.Spec.ID, pj.Name, si)
				}
			}
		}
	}
	n := cfg.Topo.NumMachines()
	s := &service{
		cfg:           cfg,
		tr:            cfg.Trace,
		faults:        cfg.Faults,
		retry:         cfg.Retry.WithDefaults(),
		running:       make([]int, n),
		queues:        make([][]*simTask, n),
		egressFree:    make([]float64, n),
		ingressFree:   make([]float64, n),
		vruntime:      make(map[string]float64),
		lastQueuedSeq: trace.None,
	}
	// Arrival order: submit time, ties by input order (stable).
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Spec.Submit < jobs[order[b]].Spec.Submit
	})
	for idx, ji := range order {
		jr := &jobRun{job: jobs[ji], idx: idx, nextCause: trace.None}
		jr.rec = Record{
			ID:       jr.job.Spec.ID,
			Tenant:   jr.job.Spec.Tenant,
			Priority: jr.job.Spec.Priority,
		}
		s.jobs = append(s.jobs, jr)
		s.push(&event{at: jr.job.Spec.Submit, kind: evArrival, jr: jr})
	}
	return s, nil
}

func (s *service) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *service) run() ([]Record, error) {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		switch e.kind {
		case evArrival:
			s.onArrival(e.jr, e.at)
		case evTaskDone:
			s.onTaskDone(e)
		case evTransferDone:
			jr := e.jr
			jr.inflight--
			s.noteStageEvent(jr, e.at, e.traceSeq)
			if jr.remaining == 0 && jr.inflight == 0 {
				s.finishStage(jr, e.at)
			}
		case evTransferRetry:
			s.onTransferRetry(e)
		}
		if s.err != nil {
			return nil, s.err
		}
	}
	recs := make([]Record, len(s.jobs))
	for i, jr := range s.jobs {
		if jr.state != jsDone && jr.state != jsRejected {
			return nil, fmt.Errorf("jobsvc: job %q stalled in state %d with no events pending", jr.id(), jr.state)
		}
		recs[i] = jr.rec
	}
	return recs, nil
}

// onArrival queues (or rejects) an arriving job and runs a schedule pass.
func (s *service) onArrival(jr *jobRun, at float64) {
	jr.rec.Submitted = at
	jr.queuedSeq = s.tr.Emit(trace.Event{Kind: trace.KindJobQueued, Job: jr.id(),
		Tenant: jr.job.Spec.Tenant, Cause: s.lastQueuedSeq, Machine: trace.None,
		Dst: trace.None, Part: trace.None, Time: at})
	s.lastQueuedSeq = jr.queuedSeq
	if s.cfg.QueueLimit > 0 && len(s.queued) >= s.cfg.QueueLimit {
		s.tr.Emit(trace.Event{Kind: trace.KindJobRejected, Job: jr.id(),
			Tenant: jr.job.Spec.Tenant, Cause: jr.queuedSeq, Machine: trace.None,
			Dst: trace.None, Part: trace.None, Time: at})
		jr.state = jsRejected
		jr.rec.Rejected = true
		return
	}
	jr.state = jsQueued
	// Fair-share placement: a tenant's first live job starts its vruntime
	// at the minimum over tenants with unfinished jobs, so newcomers
	// neither monopolize (no zero debt to pay off) nor starve.
	if _, known := s.vruntime[jr.job.Spec.Tenant]; !known {
		s.vruntime[jr.job.Spec.Tenant] = s.minLiveVruntime()
	}
	s.queued = append(s.queued, jr)
	s.schedule(at, nil)
}

// minLiveVruntime scans jobs (a deterministic slice, never the map) for the
// smallest vruntime among tenants that still have unfinished jobs.
func (s *service) minLiveVruntime() float64 {
	min, found := 0.0, false
	for _, jr := range s.jobs {
		if jr.state == jsDone || jr.state == jsRejected {
			continue
		}
		v, known := s.vruntime[jr.job.Spec.Tenant]
		if !known {
			continue
		}
		if !found || v < min {
			min, found = v, true
		}
	}
	return min
}

// rankLess orders schedulable candidates under the policy. Lower ranks run
// first; ties always fall back to arrival order, which is unique.
func (s *service) rankLess(a, b *jobRun) bool {
	switch s.cfg.Policy {
	case Fair:
		va, vb := s.vruntime[a.job.Spec.Tenant], s.vruntime[b.job.Spec.Tenant]
		if va != vb {
			return va < vb
		}
	case Priority:
		if a.job.Spec.Priority != b.job.Spec.Priority {
			return a.job.Spec.Priority > b.job.Spec.Priority
		}
	default:
		// FIFO: jobs already admitted (barrier/preempted) outrank queued
		// ones, so admitted jobs run to completion; both classes order by
		// arrival.
		ca, cb := a.state == jsQueued, b.state == jsQueued
		if ca != cb {
			return cb
		}
	}
	return a.idx < b.idx
}

// schedule is the only place run slots change hands. It runs at arrivals,
// stage barriers and job completions; barrier (if non-nil) is a job that
// just finished a stage and competes to continue. Candidates are ranked
// under the policy and granted free slots; a losing barrier job is
// preempted.
func (s *service) schedule(now float64, barrier *jobRun) {
	cands := make([]*jobRun, 0, 1+len(s.preempted)+len(s.queued))
	if barrier != nil {
		cands = append(cands, barrier)
	}
	cands = append(cands, s.preempted...)
	cands = append(cands, s.queued...)
	sort.SliceStable(cands, func(i, j int) bool { return s.rankLess(cands[i], cands[j]) })
	free := s.cfg.Concurrency - s.active
	if free > len(cands) {
		free = len(cands)
	}
	for _, jr := range cands[:free] {
		s.grant(jr, now)
	}
	if barrier != nil && barrier.state == jsBarrier {
		// The barrier job lost its slot: preempt at the barrier.
		barrier.preemptSeq = s.tr.Emit(trace.Event{Kind: trace.KindJobPreempted,
			Job: barrier.id(), Tenant: barrier.job.Spec.Tenant, Cause: barrier.nextCause,
			Machine: trace.None, Dst: trace.None, Part: trace.None, Time: now})
		barrier.state = jsPreempted
		barrier.rec.Preemptions++
		s.preempted = append(s.preempted, barrier)
	}
}

// grant gives jr a run slot and starts its next stage.
func (s *service) grant(jr *jobRun, now float64) {
	switch jr.state {
	case jsQueued:
		s.queued = removeJob(s.queued, jr)
		admitSeq := s.tr.Emit(trace.Event{Kind: trace.KindJobAdmitted, Job: jr.id(),
			Tenant: jr.job.Spec.Tenant, Cause: jr.queuedSeq, Machine: trace.None,
			Dst: trace.None, Part: trace.None, Time: now})
		jr.rec.Admitted = now
		jr.nextCause = admitSeq
	case jsPreempted:
		s.preempted = removeJob(s.preempted, jr)
		resumeSeq := s.tr.Emit(trace.Event{Kind: trace.KindJobResumed, Job: jr.id(),
			Tenant: jr.job.Spec.Tenant, Cause: jr.preemptSeq, Machine: trace.None,
			Dst: trace.None, Part: trace.None, Time: now})
		jr.nextCause = resumeSeq
	case jsBarrier:
		// Continuing at its own barrier; nextCause is the stage/job end.
	default:
		panic(fmt.Sprintf("jobsvc: granting job %q in state %d", jr.id(), jr.state))
	}
	jr.state = jsActive
	s.active++
	s.startStage(jr, now)
}

func removeJob(list []*jobRun, jr *jobRun) []*jobRun {
	for i, x := range list {
		if x == jr {
			return append(list[:i], list[i+1:]...)
		}
	}
	panic("jobsvc: job missing from its scheduler list")
}

// startStage opens jr's next stage: emits begin markers, enqueues the
// stage's tasks on their machines and launches what fits in the free slots.
func (s *service) startStage(jr *jobRun, now float64) {
	plan := jr.curPlan()
	if jr.stageIdx == 0 {
		jr.nextCause = s.tr.Emit(trace.Event{Kind: trace.KindJobBegin, Job: jr.execName(),
			Tenant: jr.job.Spec.Tenant, Cause: jr.nextCause, Machine: trace.None,
			Dst: trace.None, Part: trace.None, Time: now})
	}
	stage := plan.Stages[jr.stageIdx]
	beginSeq := s.tr.Emit(trace.Event{Kind: trace.KindStageBegin, Job: jr.execName(),
		Stage: stage.Name, Tenant: jr.job.Spec.Tenant, Cause: jr.nextCause,
		Machine: trace.None, Dst: trace.None, Part: trace.None, Time: now})
	jr.remaining = len(stage.Tasks)
	jr.inflight = 0
	jr.stageMach = 0
	jr.stageEnd = now
	jr.stageEndCause = beginSeq
	jr.dispatchCause = beginSeq
	touched := make([]cluster.MachineID, 0, len(stage.Tasks))
	for _, t := range stage.Tasks {
		m := t.Machine
		// Elastic membership: a machine that is draining (or not yet
		// joined) at this barrier stops accepting new tasks — its work is
		// rerouted to the least-loaded accepting machine. Running tasks
		// elsewhere in flight are untouched; barriers are the only points
		// where assignment decisions happen.
		if !s.faults.AcceptingAt(m, now) {
			if rm, ok := s.rerouteTarget(now); ok {
				m = rm
			}
		}
		if len(s.queues[m]) == 0 {
			touched = append(touched, m)
		}
		s.queues[m] = append(s.queues[m], &simTask{jr: jr, t: t})
	}
	// Machines in ID order for determinism (engine-equivalent); only ones
	// this stage touched can have gained runnable work.
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	for _, m := range touched {
		s.startNext(m, now, jr.dispatchCause)
	}
}

// rerouteTarget picks the accepting machine with the least pending work
// (queued + running), ties to the lowest machine ID — the deterministic
// landing spot for tasks whose pinned machine is draining or not yet
// joined. False when no machine accepts (the caller then keeps the pin).
func (s *service) rerouteTarget(now float64) (cluster.MachineID, bool) {
	best := cluster.MachineID(-1)
	bestLoad := 0
	for i := 0; i < s.cfg.Topo.NumMachines(); i++ {
		m := cluster.MachineID(i)
		if !s.faults.AcceptingAt(m, now) {
			continue
		}
		load := len(s.queues[m]) + s.running[m]
		if best < 0 || load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best, best >= 0
}

// startNext launches queued tasks on machine m until its slots fill or its
// queue drains. The queue is shared across jobs: contention for task slots
// is FIFO in enqueue order, whatever the owning job.
func (s *service) startNext(m cluster.MachineID, now float64, cause int) {
	for s.running[m] < s.cfg.SlotsPerMachine && len(s.queues[m]) > 0 {
		st := s.queues[m][0]
		s.queues[m] = s.queues[m][1:]
		s.running[m]++
		dur := s.taskDuration(st.t) * s.faults.SlowdownFactor(m, now)
		startSeq := s.tr.Emit(trace.Event{Kind: trace.KindTaskStart, Job: st.jr.execName(),
			Stage: st.jr.curStageName(), Name: st.t.Name, Tenant: st.jr.job.Spec.Tenant,
			Cause: cause, Machine: int(m), Dst: trace.None, Part: int(st.t.Part),
			Time: now, Start: now})
		s.push(&event{at: now + dur, kind: evTaskDone, st: st, machine: m,
			start: now, dur: dur, startSeq: startSeq})
	}
}

func (jr *jobRun) curStageName() string { return jr.curPlan().Stages[jr.stageIdx].Name }

func (s *service) taskDuration(t *engine.Task) float64 {
	return t.Compute + float64(t.DiskRead+t.DiskWrite)/s.cfg.Topo.DiskBandwidth()
}

// noteStageEvent advances jr's barrier clock: the last event to move it is
// the stage barrier's binding event, the stage-end's cause.
func (s *service) noteStageEvent(jr *jobRun, at float64, seq int) {
	if at > jr.stageEnd {
		jr.stageEnd = at
		jr.stageEndCause = seq
	}
}

func (s *service) onTaskDone(e *event) {
	st := e.st
	jr := st.jr
	t := st.t
	jr.rec.MachineSeconds += e.dur
	jr.rec.DiskBytes += t.DiskRead + t.DiskWrite
	jr.rec.TasksRun++
	jr.stageMach += e.dur
	endSeq := s.tr.Emit(trace.Event{Kind: trace.KindTaskEnd, Job: jr.execName(),
		Stage: jr.curStageName(), Name: t.Name, Tenant: jr.job.Spec.Tenant,
		Cause: e.startSeq, Machine: int(e.machine), Dst: trace.None, Part: int(t.Part),
		Time: e.at, Start: e.start, End: e.at})
	s.running[e.machine]--
	jr.remaining--
	s.noteStageEvent(jr, e.at, endSeq)
	// Launch output transfers toward next-stage task machines.
	if len(t.Outputs) > 0 {
		next := jr.curPlan().Stages[jr.stageIdx+1]
		for _, out := range t.Outputs {
			dst := next.Tasks[out.DstTask]
			s.sendBytes(jr, e.machine, dst.Machine, out.Bytes, e.at, int(dst.Part), dst.Name, endSeq)
		}
	}
	// The freed slot goes to the head of the shared machine queue —
	// possibly another tenant's task.
	s.startNext(e.machine, e.at, endSeq)
	if s.err == nil && jr.remaining == 0 && jr.inflight == 0 {
		s.finishStage(jr, e.at)
	}
}

// sendBytes schedules a transfer, serializing on the shared egress/ingress
// NIC free-times — where cross-job contention happens. Intra-machine moves
// are free.
func (s *service) sendBytes(jr *jobRun, src, dst cluster.MachineID, bytes int64, now float64, dstPart int, dstName string, cause int) {
	if bytes <= 0 || src == dst {
		return
	}
	jr.inflight++
	s.dispatch(&pendingTransfer{jr: jr, src: src, dst: dst, bytes: bytes,
		part: dstPart, dstName: dstName, cause: cause}, now)
}

// dispatch issues one attempt of a (possibly retried) transfer, with the
// engine's fault semantics: a blackholed attempt holds both NICs until the
// sender's timeout, then schedules a backoff retry.
func (s *service) dispatch(ts *pendingTransfer, now float64) {
	jr := ts.jr
	egFree, inFree := s.egressFree[ts.src], s.ingressFree[ts.dst]
	start := now
	if egFree > start {
		start = egFree
	}
	if inFree > start {
		start = inFree
	}
	if s.faults.DropsTransfer(ts.src, ts.dst, start) {
		detect := start + s.retry.Timeout
		s.egressFree[ts.src] = detect
		s.ingressFree[ts.dst] = detect
		ts.attempt++
		jr.rec.TransferDrops++
		dropSeq := s.tr.Emit(trace.Event{Kind: trace.KindTransferDrop, Job: jr.execName(),
			Stage: jr.curStageName(), Name: ts.dstName, Tenant: jr.job.Spec.Tenant,
			Cause: ts.cause, Machine: int(ts.src), Dst: int(ts.dst), Part: ts.part,
			Bytes: ts.bytes, Time: now, Start: start, End: detect, Attempt: ts.attempt})
		if s.retry.MaxAttempts > 0 && ts.attempt >= s.retry.MaxAttempts {
			s.err = fmt.Errorf("jobsvc: job %q transfer %d→%d (%d bytes) dropped %d times; retry budget exhausted",
				jr.id(), ts.src, ts.dst, ts.bytes, ts.attempt)
			return
		}
		s.noteStageEvent(jr, detect, dropSeq)
		s.push(&event{at: detect + s.retry.BackoffAt(ts.attempt), kind: evTransferRetry,
			transfer: ts, traceSeq: dropSeq})
		return
	}
	factor := s.faults.LinkFactor(ts.src, ts.dst, start)
	dur := float64(ts.bytes) * factor / s.cfg.Topo.Bandwidth(ts.src, ts.dst)
	s.egressFree[ts.src] = start + dur
	s.ingressFree[ts.dst] = start + dur
	jr.rec.NetworkBytes += ts.bytes
	seq := s.tr.Emit(trace.Event{Kind: trace.KindTransfer, Job: jr.execName(),
		Stage: jr.curStageName(), Name: ts.dstName, Tenant: jr.job.Spec.Tenant,
		Cause: ts.cause, Machine: int(ts.src), Dst: int(ts.dst), Part: ts.part, Bytes: ts.bytes,
		Time: now, Start: start, End: start + dur, Stall: start - now,
		Incast:  inFree > now && inFree >= egFree,
		Attempt: ts.attempt, Degraded: factor > 1})
	s.push(&event{at: start + dur, kind: evTransferDone, jr: jr, traceSeq: seq})
}

func (s *service) onTransferRetry(e *event) {
	ts := e.transfer
	jr := ts.jr
	jr.rec.TransferRetries++
	retrySeq := s.tr.Emit(trace.Event{Kind: trace.KindTransferRetry, Job: jr.execName(),
		Stage: jr.curStageName(), Name: ts.dstName, Tenant: jr.job.Spec.Tenant,
		Cause: e.traceSeq, Machine: int(ts.src), Dst: int(ts.dst), Part: ts.part,
		Time: e.at, Attempt: ts.attempt})
	s.noteStageEvent(jr, e.at, retrySeq)
	ts.cause = retrySeq
	s.dispatch(ts, e.at)
}

// finishStage closes jr's stage barrier, accrues fair-share vruntime,
// releases the run slot and runs a schedule pass with jr competing to
// continue (or completing the job).
func (s *service) finishStage(jr *jobRun, now float64) {
	plan := jr.curPlan()
	stage := plan.Stages[jr.stageIdx]
	endSeq := s.tr.Emit(trace.Event{Kind: trace.KindStageEnd, Job: jr.execName(),
		Stage: stage.Name, Tenant: jr.job.Spec.Tenant, Cause: jr.stageEndCause,
		Machine: trace.None, Dst: trace.None, Part: trace.None, Time: jr.stageEnd})
	s.active--
	s.vruntime[jr.job.Spec.Tenant] += jr.stageMach
	jr.nextCause = endSeq
	jr.stageIdx++
	if jr.stageIdx >= len(plan.Stages) {
		jobEndSeq := s.tr.Emit(trace.Event{Kind: trace.KindJobEnd, Job: jr.execName(),
			Tenant: jr.job.Spec.Tenant, Cause: endSeq, Machine: trace.None,
			Dst: trace.None, Part: trace.None, Time: jr.stageEnd})
		jr.nextCause = jobEndSeq
		jr.planIdx++
		jr.stageIdx = 0
		if jr.planIdx >= len(jr.job.Plan) {
			jr.state = jsDone
			jr.rec.Finished = jr.stageEnd
			s.schedule(now, nil)
			return
		}
	}
	jr.state = jsBarrier
	s.schedule(now, jr)
}
