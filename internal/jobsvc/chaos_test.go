package jobsvc

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/analyze"
	"repro/internal/fault"
	"repro/internal/trace"
)

// TestChaosSoak is the scheduler soak: seeded rounds of tenant churn
// (generated workloads with varying tenant counts) under generated
// transient-fault schedules, across every policy. Each round must complete
// all admitted jobs, replay byte-identically, and satisfy the blame-sum
// invariant. The round count shrinks under -short so the race-gated CI run
// stays fast.
func TestChaosSoak(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		seed := int64(100 + 17*round)
		for _, pol := range Policies {
			t.Run(fmt.Sprintf("round%d/%s", round, pol), func(t *testing.T) {
				sched, kills := fault.Generate(fault.GenConfig{
					Machines:  8,
					Horizon:   0.02,
					Degrades:  1 + round%3,
					Drops:     1 + round%2,
					Slowdowns: round % 2,
					Seed:      seed,
				})
				if len(kills) != 0 {
					t.Fatal("unexpected kill faults")
				}
				cfg := Config{
					Topo:        testTopo(),
					Policy:      pol,
					Concurrency: 1 + round%3,
					QueueLimit:  (round % 3) * 4, // 0 = unlimited on round 0, 3…
					Faults:      sched,
				}
				nJobs := 6 + round
				tenants := 1 + round%5 // churn: tenant population varies round to round
				run := func() ([]Record, []byte, []trace.Event) {
					rec := trace.NewRecorder()
					c := cfg
					c.Trace = rec
					recs, err := Run(c, synthJobs(nJobs, tenants, seed))
					if err != nil {
						t.Fatalf("soak run failed: %v", err)
					}
					var buf bytes.Buffer
					if err := trace.WriteEvents(&buf, nil, rec.Events()); err != nil {
						t.Fatal(err)
					}
					return recs, buf.Bytes(), rec.Events()
				}
				recs, stream, events := run()
				recs2, stream2, _ := run()
				if !bytes.Equal(stream, stream2) {
					t.Fatal("soak round is not deterministic: trace streams differ")
				}
				finished, rejected := 0, 0
				for i, r := range recs {
					if r != recs2[i] {
						t.Fatalf("record %d differs between replays", i)
					}
					switch {
					case r.Rejected:
						rejected++
					case r.Finished > 0:
						finished++
					default:
						t.Fatalf("job %s neither finished nor rejected: %+v", r.ID, r)
					}
				}
				if finished+rejected != nJobs {
					t.Fatalf("accounting: %d finished + %d rejected != %d submitted", finished, rejected, nJobs)
				}
				if finished == 0 {
					return
				}
				rep, err := analyze.Analyze(events, testTopo())
				if err != nil {
					t.Fatal(err)
				}
				var sum float64
				for _, c := range analyze.Categories {
					sum += rep.Blame[c]
				}
				if diff := math.Abs(sum - rep.Makespan); diff > 1e-9*math.Max(1, rep.Makespan) {
					t.Fatalf("blame sums to %g, makespan %g", sum, rep.Makespan)
				}
			})
		}
	}
}
