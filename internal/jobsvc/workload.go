package jobsvc

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// JobSpec is one submission of a multi-tenant workload: who wants what run,
// when, and how urgently. App and Iterations select the plan (see Planner);
// the rest drives scheduling.
type JobSpec struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	Priority int     `json:"priority"`
	Submit   float64 `json:"submit"`
	// App names the application to plan ("rank" or "reach").
	App string `json:"app"`
	// Iterations is the propagation iteration count (plan length).
	Iterations int `json:"iterations"`
}

// WorkloadFormat / WorkloadVersion identify the jobs-file format consumed
// by cmd/surfer-submit.
const (
	WorkloadFormat  = "surfer-jobs"
	WorkloadVersion = 1
)

// Workload is a jobs file: the arrival schedule of a multi-tenant run.
type Workload struct {
	Format  string    `json:"format"`
	Version int       `json:"version"`
	Jobs    []JobSpec `json:"jobs"`
}

// Validate checks the envelope and every spec.
func (w *Workload) Validate() error {
	if w.Format != WorkloadFormat {
		return fmt.Errorf("jobsvc: not a jobs file (format %q, want %q)", w.Format, WorkloadFormat)
	}
	if w.Version != WorkloadVersion {
		return fmt.Errorf("jobsvc: unsupported jobs-file version %d (want %d)", w.Version, WorkloadVersion)
	}
	seen := make(map[string]bool, len(w.Jobs))
	for i, js := range w.Jobs {
		if js.ID == "" {
			return fmt.Errorf("jobsvc: job %d has no id", i)
		}
		if seen[js.ID] {
			return fmt.Errorf("jobsvc: duplicate job id %q", js.ID)
		}
		seen[js.ID] = true
		if js.Tenant == "" {
			return fmt.Errorf("jobsvc: job %q has no tenant", js.ID)
		}
		if js.Submit < 0 {
			return fmt.Errorf("jobsvc: job %q submits at negative time %g", js.ID, js.Submit)
		}
		if js.Iterations <= 0 {
			return fmt.Errorf("jobsvc: job %q asks for %d iterations", js.ID, js.Iterations)
		}
	}
	return nil
}

// WriteWorkload writes a jobs file: one spec per line, struct-driven field
// order, byte-identical for identical workloads.
func WriteWorkload(w io.Writer, wl *Workload) error {
	if _, err := fmt.Fprintf(w, "{\"format\":%q,\"version\":%d,\"jobs\":[\n", WorkloadFormat, WorkloadVersion); err != nil {
		return err
	}
	for i := range wl.Jobs {
		line, err := json.Marshal(&wl.Jobs[i])
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// ReadWorkload parses and validates a jobs file.
func ReadWorkload(r io.Reader) (*Workload, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var wl Workload
	if err := json.Unmarshal(data, &wl); err != nil {
		return nil, fmt.Errorf("jobsvc: invalid jobs-file JSON: %w", err)
	}
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	return &wl, nil
}

// GenConfig sizes a seeded synthetic arrival workload.
type GenConfig struct {
	// Jobs is the submission count, Tenants the tenant population
	// (tenant-00 … tenant-NN, round-robin weighted by the rng).
	Jobs    int
	Tenants int
	// MeanGap is the mean inter-arrival gap in virtual seconds
	// (exponentially distributed). <= 0 selects 0.002.
	MeanGap float64
	// MaxPriority bounds priorities: drawn uniformly from [0, MaxPriority].
	MaxPriority int
	// MaxIterations bounds plan length: drawn from [1, MaxIterations]
	// (<= 0 selects 2).
	MaxIterations int
	// Seed drives every random choice.
	Seed int64
}

// GenerateWorkload draws a seeded arrival workload: Poisson-ish arrivals,
// random tenant/priority/app/iterations per job. Identical configs produce
// identical workloads.
func GenerateWorkload(cfg GenConfig) *Workload {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 0.002
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wl := &Workload{Format: WorkloadFormat, Version: WorkloadVersion}
	at := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		if i > 0 {
			at += rng.ExpFloat64() * cfg.MeanGap
		}
		app := Apps[rng.Intn(len(Apps))]
		wl.Jobs = append(wl.Jobs, JobSpec{
			ID:         fmt.Sprintf("job-%03d", i),
			Tenant:     fmt.Sprintf("tenant-%02d", rng.Intn(cfg.Tenants)),
			Priority:   rng.Intn(cfg.MaxPriority + 1),
			Submit:     at,
			App:        app,
			Iterations: 1 + rng.Intn(cfg.MaxIterations),
		})
	}
	return wl
}

// LatencyPercentile is the q-quantile (0 ≤ q ≤ 1) of finished jobs'
// submit→finish latencies, by the nearest-rank method; 0 when no job
// finished.
func LatencyPercentile(recs []Record, q float64) float64 {
	var lats []float64
	for _, r := range recs {
		if !r.Rejected {
			lats = append(lats, r.Latency())
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	rank := int(math.Ceil(q*float64(len(lats)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(lats) {
		rank = len(lats) - 1
	}
	return lats[rank]
}

// MeanWait is the mean submit→admit queueing delay over finished jobs.
func MeanWait(recs []Record) float64 {
	sum, n := 0.0, 0
	for _, r := range recs {
		if !r.Rejected {
			sum += r.WaitSeconds()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TenantService sums delivered machine-seconds per tenant, returned in
// sorted tenant order (deterministic).
func TenantService(recs []Record) ([]string, []float64) {
	byTenant := make(map[string]float64)
	for _, r := range recs {
		byTenant[r.Tenant] += r.MachineSeconds
	}
	tenants := make([]string, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	service := make([]float64, len(tenants))
	for i, t := range tenants {
		service[i] = byTenant[t]
	}
	return tenants, service
}

// JainIndex is Jain's fairness index (Σx)² / (n·Σx²) over an allocation
// vector: 1 when perfectly even, 1/n when one party gets everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
