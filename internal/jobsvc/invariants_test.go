package jobsvc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestNoStarvationUnderFairShare: a heavy tenant floods the queue at t=0;
// a light tenant trickles in afterwards. Under fair-share the light
// tenant's jobs must all finish strictly before the heavy tenant's backlog
// drains — least-served wins every barrier — and nobody starves: every
// admitted job finishes.
func TestNoStarvationUnderFairShare(t *testing.T) {
	plans := SyntheticPlan(31, 8, 14, 2, 3)
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{
			Spec: JobSpec{ID: fmt.Sprintf("heavy-%02d", i), Tenant: "heavy", Submit: 0},
			Plan: plans[i : i+1],
		})
	}
	for i := 0; i < 2; i++ {
		jobs = append(jobs, Job{
			Spec: JobSpec{ID: fmt.Sprintf("light-%02d", i), Tenant: "light", Submit: 0.002 * float64(i+1)},
			Plan: plans[12+i : 13+i],
		})
	}
	recs, err := Run(Config{Topo: testTopo(), Policy: Fair, Concurrency: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var lastLight, lastHeavy float64
	for _, r := range recs {
		if r.Rejected {
			t.Fatalf("job %s rejected without a queue limit", r.ID)
		}
		if r.Finished <= r.Submitted {
			t.Fatalf("job %s never finished (starved)", r.ID)
		}
		if strings.HasPrefix(r.ID, "light") {
			if r.Finished > lastLight {
				lastLight = r.Finished
			}
		} else if r.Finished > lastHeavy {
			lastHeavy = r.Finished
		}
	}
	if lastLight >= lastHeavy {
		t.Fatalf("light tenant drained at %g, after the heavy backlog at %g — fair share failed to protect it", lastLight, lastHeavy)
	}
}

// TestBoundedPriorityInversion: once a high-priority job is queued, the
// strict-priority policy may let already-running lower-priority stages
// drain (preemption happens only at barriers), but it must never *grant* a
// slot — admit or resume — to a strictly lower-priority job until the
// high-priority job has been admitted. That is the bounded-inversion
// guarantee: inversion lasts at most the stages in flight, never a fresh
// scheduling decision.
func TestBoundedPriorityInversion(t *testing.T) {
	plans := SyntheticPlan(37, 8, 8, 2, 3)
	var jobs []Job
	for i := 0; i < 7; i++ {
		jobs = append(jobs, Job{
			Spec: JobSpec{ID: fmt.Sprintf("low-%02d", i), Tenant: "t0", Priority: 0, Submit: 0.0001 * float64(i)},
			Plan: plans[i : i+1],
		})
	}
	jobs = append(jobs, Job{
		Spec: JobSpec{ID: "hi-00", Tenant: "t1", Priority: 5, Submit: 0.004},
		Plan: plans[7:8],
	})
	rec := trace.NewRecorder()
	if _, err := Run(Config{Topo: testTopo(), Policy: Priority, Concurrency: 2, Trace: rec}, jobs); err != nil {
		t.Fatal(err)
	}
	hiQueued, hiAdmitted := false, false
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindJobQueued:
			if ev.Job == "hi-00" {
				hiQueued = true
			}
		case trace.KindJobAdmitted, trace.KindJobResumed:
			if ev.Job == "hi-00" {
				hiAdmitted = true
			} else if hiQueued && !hiAdmitted {
				t.Fatalf("%s granted to %s at %g while hi-00 was runnable — unbounded priority inversion", ev.Kind, ev.Job, ev.Time)
			}
		}
	}
	if !hiQueued || !hiAdmitted {
		t.Fatal("high-priority job never queued/admitted; test workload broken")
	}
}

// TestDeterministicAdmissionRejections: the rejected set is a pure function
// of the workload — identical across policies' queue dynamics only when
// dynamics are identical, and identical across repeated runs always.
func TestDeterministicAdmissionRejections(t *testing.T) {
	for _, pol := range Policies {
		var ref string
		for run := 0; run < 3; run++ {
			jobs := synthJobs(10, 3, 41)
			recs, err := Run(Config{Topo: testTopo(), Policy: pol, Concurrency: 1, QueueLimit: 3}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			var rejected []string
			for _, r := range recs {
				if r.Rejected {
					rejected = append(rejected, r.ID)
				}
			}
			if len(rejected) == 0 {
				t.Fatalf("%s: overload workload rejected nobody", pol)
			}
			got := fmt.Sprint(rejected)
			if run == 0 {
				ref = got
			} else if got != ref {
				t.Fatalf("%s run %d: rejected %s, previously %s", pol, run, got, ref)
			}
		}
	}
}

// TestRecordAccounting pins per-record invariants on a mixed run: states
// are exclusive, times ordered, and resource accounting positive for every
// finished job.
func TestRecordAccounting(t *testing.T) {
	jobs := synthJobs(9, 3, 43)
	recs, err := Run(Config{Topo: testTopo(), Policy: Fair, Concurrency: 2, QueueLimit: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Rejected {
			if r.Admitted != 0 || r.Finished != 0 || r.TasksRun != 0 {
				t.Errorf("rejected job %s carries execution state: %+v", r.ID, r)
			}
			continue
		}
		if r.Admitted < r.Submitted {
			t.Errorf("job %s admitted %g before submit %g", r.ID, r.Admitted, r.Submitted)
		}
		if r.Finished <= r.Admitted {
			t.Errorf("job %s finished %g not after admit %g", r.ID, r.Finished, r.Admitted)
		}
		if r.TasksRun == 0 || r.MachineSeconds <= 0 {
			t.Errorf("job %s finished with empty accounting: %+v", r.ID, r)
		}
		if r.Latency() < r.WaitSeconds() {
			t.Errorf("job %s latency %g < wait %g", r.ID, r.Latency(), r.WaitSeconds())
		}
	}
}
