package jobsvc

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/analyze"
	"repro/internal/trace"
)

// FuzzJobService drives the service with fuzzer-chosen workload shapes and
// service configs and checks the properties that must hold for *every*
// input: two runs are byte-identical, records account consistently, and
// the analyzer's blame sums to makespan whenever at least one job finished.
func FuzzJobService(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(3), uint8(2), uint8(1), uint8(0), false)
	f.Add(int64(7), uint8(1), uint8(6), uint8(3), uint8(2), uint8(2), true)
	f.Add(int64(21), uint8(2), uint8(5), uint8(1), uint8(1), uint8(1), false)
	f.Add(int64(42), uint8(1), uint8(8), uint8(4), uint8(3), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, policy, nJobs, nTenants, conc, qlimit uint8, faults bool) {
		pol := Policies[int(policy)%len(Policies)]
		n := 1 + int(nJobs)%10
		tenants := 1 + int(nTenants)%4
		cfg := Config{
			Topo:        testTopo(),
			Policy:      pol,
			Concurrency: 1 + int(conc)%3,
			QueueLimit:  int(qlimit) % 5, // 0 = unlimited
		}
		if faults {
			cfg.Faults = testFaults(t)
		}
		run := func() ([]Record, []byte) {
			rec := trace.NewRecorder()
			c := cfg
			c.Trace = rec
			recs, err := Run(c, synthJobs(n, tenants, seed))
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			var buf bytes.Buffer
			if err := trace.WriteEvents(&buf, nil, rec.Events()); err != nil {
				t.Fatal(err)
			}
			return recs, buf.Bytes()
		}
		recs1, stream1 := run()
		recs2, stream2 := run()
		if !bytes.Equal(stream1, stream2) {
			t.Fatal("two identical runs produced different trace streams")
		}
		if len(recs1) != len(recs2) {
			t.Fatalf("record counts differ: %d vs %d", len(recs1), len(recs2))
		}
		finished := 0
		for i, r := range recs1 {
			if r != recs2[i] {
				t.Fatalf("record %d differs between runs: %+v vs %+v", i, r, recs2[i])
			}
			if r.Rejected {
				if r.Finished != 0 || r.TasksRun != 0 || r.Preemptions != 0 {
					t.Fatalf("rejected job %s has execution state: %+v", r.ID, r)
				}
				continue
			}
			finished++
			if r.Admitted < r.Submitted || r.Finished <= r.Admitted {
				t.Fatalf("job %s times out of order: %+v", r.ID, r)
			}
			if r.TasksRun == 0 || r.MachineSeconds <= 0 {
				t.Fatalf("job %s finished without work: %+v", r.ID, r)
			}
		}
		if finished == 0 {
			return // every job bounced off the queue limit; nothing to analyze
		}
		stream, err := trace.ReadEvents(bytes.NewReader(stream1))
		if err != nil {
			t.Fatalf("service emitted an unreadable stream: %v", err)
		}
		rep, err := analyze.Analyze(stream.Events, testTopo())
		if err != nil {
			t.Fatalf("analyze rejected the stream: %v", err)
		}
		var sum float64
		for _, c := range analyze.Categories {
			sum += rep.Blame[c]
		}
		if diff := math.Abs(sum - rep.Makespan); diff > 1e-9*math.Max(1, rep.Makespan) {
			t.Fatalf("blame sums to %g, makespan %g", sum, rep.Makespan)
		}
	})
}
