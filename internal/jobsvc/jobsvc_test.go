package jobsvc

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/trace"
)

// testTopo is the shared 8-machine heterogeneous cluster of these tests.
func testTopo() *cluster.Topology { return cluster.NewT3(8, 7) }

// synthJobs builds a small synthetic workload: n jobs over the tenants,
// staggered arrivals, priorities cycling 0..2.
func synthJobs(n int, tenants int, seed int64) []Job {
	plans := SyntheticPlan(seed, 8, n, 2, 4)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		jobs[i] = Job{
			Spec: JobSpec{
				ID:       fmt.Sprintf("job-%02d", i),
				Tenant:   fmt.Sprintf("tenant-%d", i%tenants),
				Priority: i % 3,
				Submit:   0.001 * float64(i),
			},
			Plan: plans[i : i+1],
		}
	}
	return jobs
}

func TestSingleJobRuns(t *testing.T) {
	jobs := synthJobs(1, 1, 1)
	recs, err := Run(Config{Topo: testTopo(), Policy: FIFO}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Rejected {
		t.Fatal("sole job rejected")
	}
	if r.Admitted != r.Submitted {
		t.Errorf("sole job waited: submitted %g, admitted %g", r.Submitted, r.Admitted)
	}
	if r.Latency() <= 0 {
		t.Errorf("latency %g, want > 0", r.Latency())
	}
	if r.TasksRun != 8 || r.MachineSeconds <= 0 {
		t.Errorf("accounting: tasks %d (want 8), machine-seconds %g", r.TasksRun, r.MachineSeconds)
	}
}

// realWorkload plans a real propagation workload over a shared deployment
// at the given worker count.
func realWorkload(t *testing.T, workers int) []Job {
	t.Helper()
	g := graph.Social(graph.DefaultSocial(1024, 7))
	p, err := NewPlanner(PlannerConfig{Graph: g, Topo: testTopo(), Levels: 3, Seed: 7, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	wl := GenerateWorkload(GenConfig{Jobs: 8, Tenants: 3, MaxPriority: 2, MaxIterations: 2, Seed: 11})
	jobs, err := p.Jobs(wl)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func testFaults(t *testing.T) *fault.Schedule {
	t.Helper()
	sched, kills := fault.Generate(fault.GenConfig{Machines: 8, Horizon: 0.01, Degrades: 2, Drops: 2, Slowdowns: 1, Seed: 3})
	if len(kills) != 0 {
		t.Fatal("unexpected kills")
	}
	return sched
}

// TestDeterminismAcrossWorkers is the acceptance criterion: for every
// policy, with and without a fault schedule, the same workload produces
// byte-identical trace streams and identical per-job records across
// planning worker counts 1, 4 and 8.
func TestDeterminismAcrossWorkers(t *testing.T) {
	for _, pol := range Policies {
		for _, withFaults := range []bool{false, true} {
			name := fmt.Sprintf("%s/faults=%v", pol, withFaults)
			t.Run(name, func(t *testing.T) {
				var refStream []byte
				var refRecs []Record
				for _, workers := range []int{1, 4, 8} {
					jobs := realWorkload(t, workers)
					cfg := Config{Topo: testTopo(), Policy: pol, Concurrency: 2, Trace: trace.NewRecorder()}
					if withFaults {
						cfg.Faults = testFaults(t)
					}
					recs, err := Run(cfg, jobs)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := trace.WriteEvents(&buf, nil, cfg.Trace.Events()); err != nil {
						t.Fatal(err)
					}
					if refStream == nil {
						refStream, refRecs = buf.Bytes(), recs
						continue
					}
					if !bytes.Equal(refStream, buf.Bytes()) {
						t.Fatalf("workers=%d: trace stream differs from workers=1", workers)
					}
					for i := range recs {
						if recs[i] != refRecs[i] {
							t.Fatalf("workers=%d: record %d differs: %+v vs %+v", workers, i, recs[i], refRecs[i])
						}
					}
				}
			})
		}
	}
}

// TestAdmissionControl pins deterministic rejection: a burst over the queue
// limit rejects exactly the over-budget arrivals, identically every run.
func TestAdmissionControl(t *testing.T) {
	jobs := synthJobs(6, 2, 5)
	for i := range jobs {
		jobs[i].Spec.Submit = 0 // burst: everyone at t=0
	}
	var refRejected []string
	for run := 0; run < 2; run++ {
		rec := trace.NewRecorder()
		recs, err := Run(Config{Topo: testTopo(), Policy: FIFO, Concurrency: 1, QueueLimit: 2, Trace: rec}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var rejected []string
		for _, r := range recs {
			if r.Rejected {
				rejected = append(rejected, r.ID)
			}
		}
		// Concurrency 1, queue limit 2: job-00 admitted immediately,
		// job-01 and job-02 queue, every later arrival bounces.
		want := []string{"job-03", "job-04", "job-05"}
		if fmt.Sprint(rejected) != fmt.Sprint(want) {
			t.Fatalf("run %d: rejected %v, want %v", run, rejected, want)
		}
		if refRejected == nil {
			refRejected = rejected
		}
		var rejEvents int
		for _, ev := range rec.Events() {
			if ev.Kind == trace.KindJobRejected {
				rejEvents++
			}
		}
		if rejEvents != len(want) {
			t.Fatalf("run %d: %d job-rejected events, want %d", run, rejEvents, len(want))
		}
	}
}

// TestBlameSumsToMakespanMultiTenant pins the analyzer invariant on a
// multi-tenant stream: blame — including the queued-preempted category —
// sums exactly to makespan, and queueing actually lands on the path.
func TestBlameSumsToMakespanMultiTenant(t *testing.T) {
	for _, pol := range Policies {
		t.Run(pol.String(), func(t *testing.T) {
			jobs := realWorkload(t, 4)
			rec := trace.NewRecorder()
			cfg := Config{Topo: testTopo(), Policy: pol, Concurrency: 1, Trace: rec, Faults: testFaults(t)}
			if _, err := Run(cfg, jobs); err != nil {
				t.Fatal(err)
			}
			rep, err := analyze.Analyze(rec.Events(), testTopo())
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, c := range analyze.Categories {
				sum += rep.Blame[c]
			}
			if diff := math.Abs(sum - rep.Makespan); diff > 1e-9*math.Max(1, rep.Makespan) {
				t.Fatalf("blame sums to %g, makespan %g (diff %g)", sum, rep.Makespan, diff)
			}
			// Concurrency 1 over 8 concurrent jobs: queueing must dominate
			// someone's path.
			if rep.Blame[analyze.CatQueued] <= 0 {
				t.Fatalf("queued-preempted blame is %g, want > 0 (blame %v)", rep.Blame[analyze.CatQueued], rep.Blame)
			}
		})
	}
}

// TestPlanPurity pins the planning-vs-execution split: the same spec
// planned at different worker counts yields byte-identical plans (asserted
// indirectly by TestDeterminismAcrossWorkers) and re-running the same jobs
// under a different policy leaves the plans untouched.
func TestPlanPurity(t *testing.T) {
	jobs := realWorkload(t, 2)
	before := fmt.Sprintf("%+v", jobs[0].Plan[0].Stages[0].Tasks[0])
	if _, err := Run(Config{Topo: testTopo(), Policy: Fair, Concurrency: 1}, jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Topo: testTopo(), Policy: Priority, Concurrency: 3}, jobs); err != nil {
		t.Fatal(err)
	}
	after := fmt.Sprintf("%+v", jobs[0].Plan[0].Stages[0].Tasks[0])
	if before != after {
		t.Fatalf("plan mutated by execution:\nbefore %s\nafter  %s", before, after)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatal("ParsePolicy accepted junk")
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	wl := GenerateWorkload(GenConfig{Jobs: 5, Tenants: 2, MaxPriority: 2, Seed: 9})
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got.Jobs) != fmt.Sprintf("%+v", wl.Jobs) {
		t.Fatal("workload round trip changed the jobs")
	}
	var buf2 bytes.Buffer
	if err := WriteWorkload(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("workload files are not byte-identical")
	}
	if _, err := ReadWorkload(bytes.NewReader([]byte(`{"format":"nope","version":1}`))); err == nil {
		t.Fatal("ReadWorkload accepted a wrong format marker")
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("even allocation: %g, want 1", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("monopoly over 4: %g, want 0.25", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty allocation: %g, want 0", j)
	}
}

// pinnedJob builds a one-stage job with one unit-compute task pinned to
// each listed machine.
func pinnedJob(id string, machines ...cluster.MachineID) Job {
	tasks := make([]*engine.Task, len(machines))
	for i, m := range machines {
		tasks[i] = &engine.Task{Name: fmt.Sprintf("t%d", i), Part: partition.PartID(i),
			Machine: m, Compute: 1}
	}
	return Job{
		Spec: JobSpec{ID: id, Tenant: "t", Submit: 0},
		Plan: []*engine.Job{{Name: id, Stages: []*engine.Stage{{Name: "s", Tasks: tasks}}}},
	}
}

// taskMachines returns the set of machines TaskStart events ran on.
func taskMachines(evs []trace.Event) map[cluster.MachineID]int {
	out := map[cluster.MachineID]int{}
	for _, ev := range evs {
		if ev.Kind == trace.KindTaskStart {
			out[cluster.MachineID(ev.Machine)]++
		}
	}
	return out
}

// TestDrainReroutesPinnedTasks: at a stage barrier the service reroutes
// tasks whose pinned machine is draining or not yet joined to the
// least-loaded accepting machine, deterministically.
func TestDrainReroutesPinnedTasks(t *testing.T) {
	topo := cluster.NewT1(4)
	// Machine 1 drains at t=0; machine 3 does not join until t=100. Tasks
	// pinned to either must land elsewhere.
	sched := &fault.Schedule{
		Joins:  []fault.MachineJoin{{Machine: 3, At: 100}},
		Drains: []fault.MachineDrain{{Machine: 1, At: 0, Deadline: 100}},
	}
	rec := trace.NewRecorder()
	recs, err := Run(Config{Topo: topo, Policy: FIFO, Trace: rec, Faults: sched},
		[]Job{pinnedJob("j", 0, 1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].TasksRun != 4 {
		t.Fatalf("tasks run = %d, want 4", recs[0].TasksRun)
	}
	got := taskMachines(rec.Events())
	if got[1] != 0 || got[3] != 0 {
		t.Fatalf("tasks ran on a draining/dormant machine: %v", got)
	}
	if got[0]+got[2] != 4 {
		t.Fatalf("rerouted tasks lost: %v", got)
	}
	// Least-loaded tie-break: the two displaced tasks split across the two
	// accepting machines rather than piling onto one.
	if got[0] != 2 || got[2] != 2 {
		t.Fatalf("reroute did not balance load: %v", got)
	}
}

// TestRerouteKeepsPinWhenNothingAccepts: with every machine draining the
// reroute has no target, so tasks keep their pins instead of deadlocking.
func TestRerouteKeepsPinWhenNothingAccepts(t *testing.T) {
	topo := cluster.NewT1(2)
	sched := &fault.Schedule{Drains: []fault.MachineDrain{
		{Machine: 0, At: 0, Deadline: 100}, {Machine: 1, At: 0, Deadline: 100},
	}}
	rec := trace.NewRecorder()
	recs, err := Run(Config{Topo: topo, Policy: FIFO, Trace: rec, Faults: sched},
		[]Job{pinnedJob("j", 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].TasksRun != 2 {
		t.Fatalf("tasks run = %d, want 2", recs[0].TasksRun)
	}
	got := taskMachines(rec.Events())
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("pins not kept: %v", got)
	}
}
