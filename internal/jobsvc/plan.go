package jobsvc

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// Apps lists the plannable application names of a jobs file.
var Apps = []string{"rank", "reach"}

// PlannerConfig sizes a shared deployment all tenants' jobs plan against:
// one graph, one partitioning, one placement — the multi-tenant premise is
// a shared cluster, not a shared dataset copy per tenant.
type PlannerConfig struct {
	Graph *graph.Graph
	Topo  *cluster.Topology
	// Levels is log2 of the partition count.
	Levels int
	// Seed drives partitioning.
	Seed int64
	// Workers sizes the planning compute pool (0 = GOMAXPROCS, 1 =
	// serial); plans are bit-identical for every value.
	Workers int
}

// Planner turns job specs into engine-job plans via the propagation
// planning API. Plans are pure functions of (app, iterations) over the
// shared deployment, so they are cached and safely shared between jobs:
// the service never mutates a plan.
type Planner struct {
	pg    *storage.PartitionedGraph
	pl    *partition.Placement
	pool  *engine.Pool
	opt   propagation.Options
	cache map[string][]*engine.Job
}

// NewPlanner partitions the graph and places it on the topology.
func NewPlanner(cfg PlannerConfig) (*Planner, error) {
	if cfg.Graph == nil || cfg.Topo == nil {
		return nil, fmt.Errorf("jobsvc: planner needs a graph and a topology")
	}
	pt, sk := partition.RecursiveBisect(cfg.Graph, cfg.Levels, partition.Options{Seed: cfg.Seed})
	pg, err := storage.Build(cfg.Graph, pt)
	if err != nil {
		return nil, err
	}
	return &Planner{
		pg:    pg,
		pl:    partition.SketchPlacement(sk, cfg.Topo),
		pool:  engine.NewPool(cfg.Workers),
		opt:   propagation.Options{LocalPropagation: true, LocalCombination: true},
		cache: make(map[string][]*engine.Job),
	}, nil
}

// Plan returns the engine jobs of one spec ("<app>-iter-001"…).
func (p *Planner) Plan(spec JobSpec) ([]*engine.Job, error) {
	key := fmt.Sprintf("%s/%d", spec.App, spec.Iterations)
	if jobs, ok := p.cache[key]; ok {
		return jobs, nil
	}
	var (
		jobs []*engine.Job
		err  error
	)
	switch spec.App {
	case "rank":
		prog := &rankProg{g: p.pg.G, n: float64(p.pg.G.NumVertices())}
		st := propagation.NewState(p.pg, prog)
		jobs, _, err = propagation.PlanIterations(p.pool, p.pg, p.pl, prog, st, p.opt, spec.Iterations, "rank")
	case "reach":
		prog := reachProg{}
		st := propagation.NewState(p.pg, propagation.Program[float64](prog))
		jobs, _, err = propagation.PlanIterations(p.pool, p.pg, p.pl, prog, st, p.opt, spec.Iterations, "reach")
	default:
		return nil, fmt.Errorf("jobsvc: unknown app %q (want one of %v)", spec.App, Apps)
	}
	if err != nil {
		return nil, err
	}
	p.cache[key] = jobs
	return jobs, nil
}

// Jobs plans a whole workload into service submissions.
func (p *Planner) Jobs(wl *Workload) ([]Job, error) {
	jobs := make([]Job, 0, len(wl.Jobs))
	for _, spec := range wl.Jobs {
		plan, err := p.Plan(spec)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{Spec: spec, Plan: plan})
	}
	return jobs, nil
}

// rankProg is PageRank-shaped network ranking: transfer sends
// rank·d/outdegree along each edge, combine sums and adds the random-jump
// term — the canonical propagation workload.
type rankProg struct {
	g *graph.Graph
	n float64
}

func (p *rankProg) Init(graph.VertexID) float64 { return 1 / p.n }

func (p *rankProg) Transfer(src graph.VertexID, rank float64, dst graph.VertexID, emit propagation.Emit[float64]) {
	emit(dst, rank*0.85/float64(p.g.OutDegree(src)))
}

func (p *rankProg) Combine(_ graph.VertexID, _ float64, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum + 0.15/p.n
}

func (p *rankProg) Bytes(float64) int64 { return 8 }
func (p *rankProg) Associative() bool   { return true }
func (p *rankProg) Merge(_ graph.VertexID, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum
}

// reachProg is min-label propagation (connected-component style
// reachability): every vertex floods its label, combine keeps the minimum.
type reachProg struct{}

func (reachProg) Init(v graph.VertexID) float64 { return float64(v) }

func (reachProg) Transfer(_ graph.VertexID, label float64, dst graph.VertexID, emit propagation.Emit[float64]) {
	emit(dst, label)
}

func (reachProg) Combine(_ graph.VertexID, prev float64, values []float64) float64 {
	min := prev
	for _, v := range values {
		if v < min {
			min = v
		}
	}
	return min
}

func (reachProg) Bytes(float64) int64 { return 8 }
func (reachProg) Associative() bool   { return true }
func (reachProg) Merge(_ graph.VertexID, values []float64) float64 {
	min := values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// SyntheticPlan draws a deterministic plan straight from a seed — no graph,
// no planner — for scheduler tests and fuzzing: planJobs engine jobs of
// `stages` stages with tasksPerStage tasks spread over the machines, each
// task feeding bytes to every next-stage task. Identical arguments produce
// identical plans.
func SyntheticPlan(seed int64, machines, planJobs, stages, tasksPerStage int) []*engine.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]*engine.Job, planJobs)
	for ji := range jobs {
		job := &engine.Job{Name: fmt.Sprintf("synth-%03d", ji)}
		for si := 0; si < stages; si++ {
			st := &engine.Stage{Name: fmt.Sprintf("stage-%d", si)}
			for ti := 0; ti < tasksPerStage; ti++ {
				t := &engine.Task{
					Name:      fmt.Sprintf("s%d-t%d", si, ti),
					Part:      engine.NoPart,
					Machine:   cluster.MachineID(rng.Intn(machines)),
					Compute:   0.0002 + 0.0008*rng.Float64(),
					DiskRead:  int64(1 + rng.Intn(1<<14)),
					DiskWrite: int64(1 + rng.Intn(1<<14)),
				}
				if si+1 < stages {
					for d := 0; d < tasksPerStage; d++ {
						t.Outputs = append(t.Outputs, engine.Output{
							DstTask: d,
							Bytes:   int64(1 + rng.Intn(1<<16)),
						})
					}
				}
				st.Tasks = append(st.Tasks, t)
			}
			job.Stages = append(job.Stages, st)
		}
		jobs[ji] = job
	}
	return jobs
}
