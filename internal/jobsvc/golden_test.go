package jobsvc

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// goldenWorkload is the fixed workload of the policy golden tests: six
// single-plan jobs from three tenants with mixed priorities, arriving while
// the first job's opening stage runs, over a concurrency-1 service — every
// policy decision is forced into the open.
func goldenWorkload() []Job {
	plans := SyntheticPlan(21, 8, 6, 2, 3)
	specs := []JobSpec{
		{ID: "job-00", Tenant: "tenant-0", Priority: 0, Submit: 0},
		{ID: "job-01", Tenant: "tenant-0", Priority: 1, Submit: 0.0001},
		{ID: "job-02", Tenant: "tenant-1", Priority: 2, Submit: 0.0002},
		{ID: "job-03", Tenant: "tenant-0", Priority: 0, Submit: 0.0003},
		{ID: "job-04", Tenant: "tenant-1", Priority: 1, Submit: 0.0004},
		{ID: "job-05", Tenant: "tenant-2", Priority: 2, Submit: 0.0005},
	}
	jobs := make([]Job, len(specs))
	for i, sp := range specs {
		jobs[i] = Job{Spec: sp, Plan: plans[i : i+1]}
	}
	return jobs
}

// completionOrder extracts job IDs in job-end order (last plan job's end).
func completionOrder(events []trace.Event) []string {
	done := make(map[string]bool)
	var out []string
	for _, ev := range events {
		if ev.Kind != trace.KindJobEnd {
			continue
		}
		id := ev.Job[:len("job-00")] // exec names are "job-NN/..."
		if !done[id] {
			done[id] = true
			out = append(out, id)
		}
	}
	return out
}

// admissionOrder extracts job IDs in job-admitted order.
func admissionOrder(events []trace.Event) []string {
	var out []string
	for _, ev := range events {
		if ev.Kind == trace.KindJobAdmitted {
			out = append(out, ev.Job)
		}
	}
	return out
}

func preemptCounts(recs []Record) map[string]int {
	out := make(map[string]int)
	for _, r := range recs {
		if r.Preemptions > 0 {
			out[r.ID] = r.Preemptions
		}
	}
	return out
}

// TestPolicyGoldenOrders pins the exact scheduling decisions of every
// policy on the fixed workload. These orders are behavior, not incident:
// FIFO runs to completion in arrival order; Priority preempts job-00 at its
// first barrier for the priority-2 jobs and resumes it before equal-
// priority-but-later job-03; Fair rotates tenants by accrued service.
func TestPolicyGoldenOrders(t *testing.T) {
	want := map[Policy]struct {
		completion []string
		admission  []string
		preempt    map[string]int
	}{
		FIFO: {
			completion: []string{"job-00", "job-01", "job-02", "job-03", "job-04", "job-05"},
			admission:  []string{"job-00", "job-01", "job-02", "job-03", "job-04", "job-05"},
			preempt:    map[string]int{},
		},
		Fair: {
			completion: []string{"job-05", "job-00", "job-02", "job-01", "job-04", "job-03"},
			admission:  []string{"job-00", "job-02", "job-05", "job-01", "job-04", "job-03"},
			preempt:    map[string]int{"job-00": 1, "job-01": 1, "job-02": 1, "job-04": 1},
		},
		Priority: {
			completion: []string{"job-02", "job-05", "job-01", "job-04", "job-00", "job-03"},
			admission:  []string{"job-00", "job-02", "job-05", "job-01", "job-04", "job-03"},
			preempt:    map[string]int{"job-00": 1},
		},
	}
	for _, pol := range Policies {
		t.Run(pol.String(), func(t *testing.T) {
			jobs := goldenWorkload()
			rec := trace.NewRecorder()
			recs, err := Run(Config{Topo: testTopo(), Policy: pol, Concurrency: 1, Trace: rec}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			w := want[pol]
			if got := completionOrder(rec.Events()); !reflect.DeepEqual(got, w.completion) {
				t.Errorf("completion order %v, want %v", got, w.completion)
			}
			if got := admissionOrder(rec.Events()); !reflect.DeepEqual(got, w.admission) {
				t.Errorf("admission order %v, want %v", got, w.admission)
			}
			if got := preemptCounts(recs); !reflect.DeepEqual(got, w.preempt) {
				t.Errorf("preemptions %v, want %v", got, w.preempt)
			}
			for _, r := range recs {
				if r.Rejected {
					t.Errorf("job %s rejected without a queue limit", r.ID)
				}
			}
		})
	}
}

// TestGoldenCausalEdges pins the causal-edge contract of the scheduler
// events on the FIFO golden run: admissions are caused by their own queued
// event, queued events chain by arrival, preemptions/resumes bracket.
func TestGoldenCausalEdges(t *testing.T) {
	rec := trace.NewRecorder()
	if _, err := Run(Config{Topo: testTopo(), Policy: Priority, Concurrency: 1, Trace: rec}, goldenWorkload()); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	queuedOf := make(map[string]int)
	preemptOf := make(map[string]int)
	prevQueued := trace.None
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindJobQueued:
			if ev.Cause != prevQueued {
				t.Errorf("queued %s: cause %d, want previous queued %d", ev.Job, ev.Cause, prevQueued)
			}
			prevQueued = ev.Seq
			queuedOf[ev.Job] = ev.Seq
		case trace.KindJobAdmitted:
			if ev.Cause != queuedOf[ev.Job] {
				t.Errorf("admitted %s: cause %d, want its queued %d", ev.Job, ev.Cause, queuedOf[ev.Job])
			}
		case trace.KindJobPreempted:
			if ev.Cause == trace.None {
				t.Errorf("preempted %s has no cause", ev.Job)
			}
			if events[ev.Cause].Kind != trace.KindStageEnd && events[ev.Cause].Kind != trace.KindJobEnd {
				t.Errorf("preempted %s caused by %s, want its barrier's stage-end/job-end", ev.Job, events[ev.Cause].Kind)
			}
			preemptOf[ev.Job] = ev.Seq
		case trace.KindJobResumed:
			if ev.Cause != preemptOf[ev.Job] {
				t.Errorf("resumed %s: cause %d, want its preemption %d", ev.Job, ev.Cause, preemptOf[ev.Job])
			}
		}
	}
	if len(preemptOf) == 0 {
		t.Fatal("priority golden run preempted nobody")
	}
}
