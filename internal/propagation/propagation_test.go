package propagation

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// sumProgram is a minimal associative program: every vertex sends its value
// along each out-edge; combine sums.
type sumProgram struct{}

func (sumProgram) Init(v graph.VertexID) int64 { return int64(v) }
func (sumProgram) Transfer(src graph.VertexID, val int64, dst graph.VertexID, emit Emit[int64]) {
	emit(dst, val)
}
func (sumProgram) Combine(_ graph.VertexID, _ int64, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}
func (sumProgram) Bytes(int64) int64 { return 8 }
func (sumProgram) Associative() bool { return true }
func (sumProgram) Merge(_ graph.VertexID, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}

// listProgram is a non-associative program shipping singleton lists.
type listProgram struct {
	NonAssociative[[]int64]
}

func (listProgram) Init(v graph.VertexID) []int64 { return []int64{int64(v)} }
func (listProgram) Transfer(src graph.VertexID, val []int64, dst graph.VertexID, emit Emit[[]int64]) {
	emit(dst, val)
}
func (listProgram) Combine(_ graph.VertexID, _ []int64, values [][]int64) []int64 {
	var out []int64
	for _, l := range values {
		out = append(out, l...)
	}
	return out
}
func (listProgram) Bytes(l []int64) int64 { return 8 * int64(len(l)) }

type fixture struct {
	pg   *storage.PartitionedGraph
	pl   *partition.Placement
	topo *cluster.Topology
}

func newFixture(t *testing.T, n int, levels int, seed int64) *fixture {
	t.Helper()
	g := graph.SmallWorld(graph.DefaultSmallWorld(n, seed))
	pt, sk := partition.RecursiveBisect(g, levels, partition.Options{Seed: seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT1(4)
	return &fixture{pg: pg, pl: partition.SketchPlacement(sk, topo), topo: topo}
}

func (f *fixture) runner() *engine.Runner { return engine.New(engine.Config{Topo: f.topo}) }

func refSum(g *graph.Graph) []int64 {
	out := make([]int64, g.NumVertices())
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		out[v] += int64(u)
		return true
	})
	return out
}

func TestIterateMatchesReferenceAllOptLevels(t *testing.T) {
	f := newFixture(t, 1000, 2, 1)
	want := refSum(f.pg.G)
	for _, opt := range []Options{
		{},
		{LocalPropagation: true},
		{LocalCombination: true},
		{LocalPropagation: true, LocalCombination: true},
	} {
		st := NewState[int64](f.pg, sumProgram{})
		next, _, err := Iterate(f.runner(), f.pg, f.pl, sumProgram{}, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if next.Values[v] != want[v] {
				t.Fatalf("opt %+v: value[%d] = %d, want %d", opt, v, next.Values[v], want[v])
			}
		}
	}
}

func TestOptimizationLevelsOrderedByIO(t *testing.T) {
	// O1 >= O3 on both network and disk; local combination alone must
	// reduce network; local propagation alone must reduce disk.
	f := newFixture(t, 2000, 3, 2)
	run := func(opt Options) engine.Metrics {
		st := NewState[int64](f.pg, sumProgram{})
		_, m, err := Iterate(f.runner(), f.pg, f.pl, sumProgram{}, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	o1 := run(Options{})
	lp := run(Options{LocalPropagation: true})
	lc := run(Options{LocalCombination: true})
	o3 := run(Options{LocalPropagation: true, LocalCombination: true})
	if lp.DiskBytes >= o1.DiskBytes {
		t.Errorf("local propagation did not cut disk: %d vs %d", lp.DiskBytes, o1.DiskBytes)
	}
	if lp.NetworkBytes != o1.NetworkBytes {
		t.Errorf("local propagation changed network: %d vs %d", lp.NetworkBytes, o1.NetworkBytes)
	}
	if lc.NetworkBytes >= o1.NetworkBytes {
		t.Errorf("local combination did not cut network: %d vs %d", lc.NetworkBytes, o1.NetworkBytes)
	}
	if o3.DiskBytes >= o1.DiskBytes || o3.NetworkBytes >= o1.NetworkBytes {
		t.Errorf("O3 not better than O1: disk %d/%d net %d/%d", o3.DiskBytes, o1.DiskBytes, o3.NetworkBytes, o1.NetworkBytes)
	}
	if o3.DiskBytes > lp.DiskBytes {
		t.Errorf("O3 disk worse than LP alone: %d vs %d", o3.DiskBytes, lp.DiskBytes)
	}
}

func TestNonAssociativeIgnoresLocalCombination(t *testing.T) {
	// Local combination must be a no-op for non-associative programs
	// (Merge would change semantics); network bytes must be identical.
	f := newFixture(t, 800, 2, 3)
	run := func(opt Options) engine.Metrics {
		st := NewState[[]int64](f.pg, listProgram{})
		_, m, err := Iterate(f.runner(), f.pg, f.pl, listProgram{}, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	off := run(Options{})
	on := run(Options{LocalCombination: true})
	if off.NetworkBytes != on.NetworkBytes || off.DiskBytes != on.DiskBytes {
		t.Fatalf("local combination affected a non-associative program: %+v vs %+v", off, on)
	}
}

func TestVirtualVertexRouting(t *testing.T) {
	f := newFixture(t, 500, 2, 4)
	n := f.pg.G.NumVertices()
	// Program: every vertex sends 1 to virtual vertex n + (v mod 3).
	prog := &virtProgram{n: n}
	st := NewState[int64](f.pg, prog)
	opt := Options{VirtualVertices: 3}
	next, _, err := Iterate(f.runner(), f.pg, f.pl, prog, st, opt)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 3; i++ {
		total += next.Virtual[graph.VertexID(n+i)]
	}
	if total != int64(n) {
		t.Fatalf("virtual totals = %d, want %d", total, n)
	}
}

type virtProgram struct {
	n int
}

func (p *virtProgram) Init(graph.VertexID) int64 { return 0 }
func (p *virtProgram) TransferVertex(v graph.VertexID, _ int64, emit Emit[int64]) {
	if int(v) < p.n {
		emit(graph.VertexID(p.n+int(v)%3), 1)
	}
}
func (p *virtProgram) Transfer(graph.VertexID, int64, graph.VertexID, Emit[int64]) {}
func (p *virtProgram) Combine(_ graph.VertexID, prev int64, values []int64) int64 {
	s := prev
	for _, v := range values {
		s += v
	}
	return s
}
func (p *virtProgram) Bytes(int64) int64 { return 8 }
func (p *virtProgram) Associative() bool { return true }
func (p *virtProgram) Merge(_ graph.VertexID, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}

func TestEmitOutsideSpacePanics(t *testing.T) {
	f := newFixture(t, 100, 1, 5)
	prog := &virtProgram{n: f.pg.G.NumVertices()}
	st := NewState[int64](f.pg, prog)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for emission outside virtual space")
		}
	}()
	// VirtualVertices = 0 makes the virtual emission invalid.
	_, _, _ = Iterate(f.runner(), f.pg, f.pl, prog, st, Options{VirtualVertices: 0})
}

func TestIterateValidatesSizes(t *testing.T) {
	f := newFixture(t, 100, 1, 6)
	st := &State[int64]{Values: make([]int64, 5)}
	if _, _, err := Iterate(f.runner(), f.pg, f.pl, sumProgram{}, st, Options{}); err == nil {
		t.Fatal("expected size mismatch error")
	}
	badPl := &partition.Placement{MachineOf: make([]cluster.MachineID, 1)}
	st2 := NewState[int64](f.pg, sumProgram{})
	if _, _, err := Iterate(f.runner(), f.pg, badPl, sumProgram{}, st2, Options{}); err == nil {
		t.Fatal("expected placement mismatch error")
	}
}

func TestRunIterationsAccumulates(t *testing.T) {
	f := newFixture(t, 500, 2, 7)
	st := NewState[int64](f.pg, sumProgram{})
	_, m1, err := Iterate(f.runner(), f.pg, f.pl, sumProgram{}, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := NewState[int64](f.pg, sumProgram{})
	_, m3, err := RunIterations(f.runner(), f.pg, f.pl, sumProgram{}, st2, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m3.DiskBytes <= 2*m1.DiskBytes {
		t.Fatalf("3 iterations disk %d not > 2x single %d", m3.DiskBytes, m1.DiskBytes)
	}
}

func TestAnalyzeCascadeDepths(t *testing.T) {
	// Hand-built graph: two partitions {0,1,2,3} and {4,5}; edges
	// 4->0 (cross), 0->1->2->3 (chain), 5->5 irrelevant.
	g := graph.FromEdges(6, [][2]graph.VertexID{
		{4, 0}, {0, 1}, {1, 2}, {2, 3}, {4, 5},
	})
	pt := &partition.Partitioning{Assign: []partition.PartID{0, 0, 0, 0, 1, 1}, P: 2}
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	ci := AnalyzeCascade(pg)
	want := []int{0, 1, 2, 3}
	for v, d := range want {
		if ci.Depth[v] != d {
			t.Errorf("depth[%d] = %d, want %d", v, ci.Depth[v], d)
		}
	}
	// Vertex 4 never receives outside info: V_inf.
	if ci.Depth[4] != InfiniteDepth {
		t.Errorf("depth[4] = %d, want inf", ci.Depth[4])
	}
	// Vertex 5 receives only from 4 (same partition): V_inf too.
	if ci.Depth[5] != InfiniteDepth {
		t.Errorf("depth[5] = %d, want inf", ci.Depth[5])
	}
	if r := ci.VkRatio(2); r != 4.0/6 {
		t.Errorf("VkRatio(2) = %g, want %g", r, 4.0/6)
	}
}

func TestCascadedMatchesPlainResults(t *testing.T) {
	f := newFixture(t, 1000, 2, 8)
	iters := 5
	stA := NewState[int64](f.pg, sumProgram{})
	plain, _, err := RunIterations(f.runner(), f.pg, f.pl, sumProgram{}, stA, Options{LocalPropagation: true, LocalCombination: true}, iters)
	if err != nil {
		t.Fatal(err)
	}
	stB := NewState[int64](f.pg, sumProgram{})
	casc, _, err := RunCascaded(f.runner(), f.pg, f.pl, sumProgram{}, stB, Options{LocalPropagation: true, LocalCombination: true}, iters, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.Values {
		if plain.Values[v] != casc.Values[v] {
			t.Fatalf("cascaded changed result at %d: %d vs %d", v, casc.Values[v], plain.Values[v])
		}
	}
}

func TestCascadedSavesDisk(t *testing.T) {
	f := newFixture(t, 2000, 2, 9)
	ci := AnalyzeCascade(f.pg)
	if ci.VkRatio(1) == 0 {
		t.Skip("no cascade-eligible vertices in fixture")
	}
	iters := 6
	opt := Options{LocalPropagation: true, LocalCombination: true}
	stA := NewState[int64](f.pg, sumProgram{})
	_, plain, err := RunIterations(f.runner(), f.pg, f.pl, sumProgram{}, stA, opt, iters)
	if err != nil {
		t.Fatal(err)
	}
	stB := NewState[int64](f.pg, sumProgram{})
	_, casc, err := RunCascaded(f.runner(), f.pg, f.pl, sumProgram{}, stB, opt, iters, ci)
	if err != nil {
		t.Fatal(err)
	}
	if ci.MinDiameter > 1 && casc.DiskBytes >= plain.DiskBytes {
		t.Fatalf("cascading did not save disk: %d vs %d", casc.DiskBytes, plain.DiskBytes)
	}
	if casc.NetworkBytes != plain.NetworkBytes {
		t.Fatalf("cascading changed network traffic: %d vs %d", casc.NetworkBytes, plain.NetworkBytes)
	}
}
