package propagation

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// CascadeInfo captures, per vertex, how many propagation iterations can be
// computed from data inside its own partition (§5.2).
//
// Depth[v] = k means every in-path of length <= k into v starts inside v's
// partition, so v's value after k iterations depends only on local data —
// v is in V_k. Depth is InfiniteDepth for vertices never reached by outside
// information (the paper's V_inf).
type CascadeInfo struct {
	Depth []int
	// MinDiameter is d_min, the smallest partition diameter; the paper
	// uses it as the per-phase iteration count of cascaded propagation.
	MinDiameter int
}

// InfiniteDepth marks members of V_inf.
const InfiniteDepth = math.MaxInt32

// AnalyzeCascade computes the cascade depths with one multi-source BFS per
// partition: sources are the vertices receiving a cross-partition in-edge
// (depth 0); following out-edges inside the partition, depth grows by one
// per hop; unreached vertices are V_inf.
func AnalyzeCascade(pg *storage.PartitionedGraph) *CascadeInfo {
	n := pg.G.NumVertices()
	info := &CascadeInfo{Depth: make([]int, n)}
	for i := range info.Depth {
		info.Depth[i] = InfiniteDepth
	}
	// Multi-source BFS across the whole graph at once: initialize every
	// head of a cross-partition edge at depth 0, then relax only along
	// inner edges.
	queue := make([]graph.VertexID, 0, n/4)
	pg.G.ForEachEdge(func(u, v graph.VertexID) bool {
		if pg.Part.Assign[u] != pg.Part.Assign[v] && info.Depth[v] != 0 {
			info.Depth[v] = 0
			queue = append(queue, v)
		}
		return true
	})
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range pg.G.Neighbors(u) {
			if pg.Part.Assign[u] != pg.Part.Assign[v] {
				continue // cross edges already seeded their heads
			}
			if info.Depth[v] > info.Depth[u]+1 {
				info.Depth[v] = info.Depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	info.MinDiameter = minPartitionDiameter(pg)
	if info.MinDiameter < 1 {
		info.MinDiameter = 1
	}
	return info
}

// VkRatio reports the fraction of vertices in V_k for k >= threshold (the
// paper measures the ratio for k >= 2: 7% on the MSN graph).
func (ci *CascadeInfo) VkRatio(threshold int) float64 {
	if len(ci.Depth) == 0 {
		return 0
	}
	c := 0
	for _, d := range ci.Depth {
		if d >= threshold {
			c++
		}
	}
	return float64(c) / float64(len(ci.Depth))
}

// minPartitionDiameter estimates each partition's internal diameter by
// sampled BFS over inner edges and returns the minimum.
func minPartitionDiameter(pg *storage.PartitionedGraph) int {
	minD := math.MaxInt32
	for _, pi := range pg.Parts {
		d := partitionDiameter(pg, pi)
		if d < minD {
			minD = d
		}
	}
	if minD == math.MaxInt32 {
		return 0
	}
	return minD
}

func partitionDiameter(pg *storage.PartitionedGraph, pi *storage.PartInfo) int {
	if len(pi.Vertices) == 0 {
		return 0
	}
	// Sample a handful of sources; eccentricity within the partition.
	samples := 4
	step := len(pi.Vertices) / samples
	if step == 0 {
		step = 1
	}
	best := 0
	dist := make(map[graph.VertexID]int, len(pi.Vertices))
	for s := 0; s < len(pi.Vertices); s += step {
		src := pi.Vertices[s]
		clear(dist)
		dist[src] = 0
		queue := []graph.VertexID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range pg.G.Neighbors(u) {
				if pg.Part.Assign[v] != pi.ID {
					continue
				}
				if _, ok := dist[v]; !ok {
					dist[v] = dist[u] + 1
					if dist[v] > best {
						best = dist[v]
					}
					queue = append(queue, v)
				}
			}
		}
	}
	return best
}

// RunIterations executes `iters` propagation iterations without cascading:
// each iteration reads the previous state from disk and writes the next
// (the naive multi-iteration approach of §5.2).
func RunIterations[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, iters int) (*State[V], engine.Metrics, error) {
	var total engine.Metrics
	for i := 0; i < iters; i++ {
		next, m, err := iterateNamed(r, pg, pl, prog, st, opt, iterName("propagation", i))
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		st = next
	}
	return st, total, nil
}

// iterName labels one iteration's engine job, so traced multi-iteration
// runs show each iteration as its own span.
func iterName(prefix string, i int) string {
	return fmt.Sprintf("%s-iter-%03d", prefix, i+1)
}

// RunUntilConverged iterates propagation until the summed per-vertex delta
// between consecutive states drops to eps or below (or maxIters is
// reached). delta measures the change of one vertex's value; fixpoint
// algorithms (label propagation, PageRank with a tolerance) use it to stop
// as soon as an iteration changes nothing.
func RunUntilConverged[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, maxIters int, delta func(old, new V) float64, eps float64) (*State[V], engine.Metrics, error) {
	var total engine.Metrics
	for i := 0; i < maxIters; i++ {
		next, m, err := iterateNamed(r, pg, pl, prog, st, opt, iterName("propagation", i))
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		var change float64
		for v := range next.Values {
			change += delta(st.Values[v], next.Values[v])
		}
		st = next
		if change <= eps {
			break
		}
	}
	return st, total, nil
}

// RunCascaded executes `iters` iterations with cascaded propagation: the
// iterations are grouped into phases of d_min; within a phase, iteration j
// (1-based) skips the intermediate state I/O of every vertex with cascade
// depth >= j, because those vertices' values were computable in a batch at
// the phase start. V_inf vertices skip intermediate I/O in every iteration.
// Results are identical to RunIterations; only disk traffic and time shrink.
func RunCascaded[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, iters int, ci *CascadeInfo) (*State[V], engine.Metrics, error) {
	if ci == nil {
		ci = AnalyzeCascade(pg)
	}
	var total engine.Metrics
	for i := 0; i < iters; i++ {
		phasePos := i % ci.MinDiameter // 0-based position within the phase
		ex := newExecution(pg, pl, prog, st, opt)
		ex.pool = r.Pool()
		ex.jobName = iterName("cascaded", i)
		// Iterations at a phase boundary (or the final iteration) must
		// materialize everything; later in-phase iterations skip I/O for
		// deep vertices.
		last := i == iters-1
		if phasePos > 0 && !last {
			skip := make([]bool, pg.G.NumVertices())
			for v, d := range ci.Depth {
				if d >= phasePos {
					skip[v] = true
				}
			}
			ex.skipStateIO = skip
		}
		ex.transferAll()
		next := ex.combineAll()
		m, err := r.Run(ex.buildJob())
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		st = next
	}
	return st, total, nil
}
