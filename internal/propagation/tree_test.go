package propagation

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

func treeFixture(t *testing.T, seed int64) (*storage.PartitionedGraph, *partition.Placement, *cluster.Topology) {
	t.Helper()
	g := graph.SmallWorld(graph.DefaultSmallWorld(2000, seed))
	pt, sk := partition.RecursiveBisect(g, 3, partition.Options{Seed: seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	return pg, partition.SketchPlacement(sk, topo), topo
}

func TestTreeAggregationSameResults(t *testing.T) {
	pg, pl, topo := treeFixture(t, 41)
	opt := Options{LocalPropagation: true, LocalCombination: true}
	prog := sumProgram{}

	stA := NewState[int64](pg, prog)
	plain, _, err := RunIterations(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stA, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	stB := NewState[int64](pg, prog)
	tree, _, err := RunIterationsTree(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stB, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.Values {
		if plain.Values[v] != tree.Values[v] {
			t.Fatalf("tree aggregation changed value[%d]: %d vs %d", v, tree.Values[v], plain.Values[v])
		}
	}
}

func TestTreeAggregationCutsCrossPodTime(t *testing.T) {
	// Tree aggregation targets heavy cross-pod traffic on an
	// oversubscribed tree: spread placement (lots of cross-pod values)
	// and a slow top-level switch. With sketch placement and default
	// factors the cross-pod leg is already small and the extra stage is
	// not worth it — which TestTreeAggregationOverheadBounded covers.
	g := graph.SmallWorld(graph.DefaultSmallWorld(2000, 42))
	pt, _ := partition.RecursiveBisect(g, 3, partition.Options{Seed: 42})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1, TopFactor: 128})
	pl := partition.RandomPlacement(pt.P, topo, 42)
	opt := Options{LocalPropagation: true, LocalCombination: true}
	prog := sumProgram{}

	stA := NewState[int64](pg, prog)
	_, plain, err := Iterate(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stA, opt)
	if err != nil {
		t.Fatal(err)
	}
	stB := NewState[int64](pg, prog)
	_, tree, err := IterateTree(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stB, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tree.ResponseSeconds >= plain.ResponseSeconds {
		t.Fatalf("tree aggregation not faster on oversubscribed T2: %.5f vs %.5f", tree.ResponseSeconds, plain.ResponseSeconds)
	}
}

func TestTreeAggregationOverheadBounded(t *testing.T) {
	// When cross-pod traffic is already small (sketch placement, default
	// factors), the extra stage must cost at most a modest overhead.
	pg, pl, topo := treeFixture(t, 42)
	opt := Options{LocalPropagation: true, LocalCombination: true}
	prog := sumProgram{}

	stA := NewState[int64](pg, prog)
	_, plain, err := Iterate(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stA, opt)
	if err != nil {
		t.Fatal(err)
	}
	stB := NewState[int64](pg, prog)
	_, tree, err := IterateTree(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stB, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tree.ResponseSeconds > 1.5*plain.ResponseSeconds {
		t.Fatalf("tree aggregation overhead too large: %.5f vs %.5f", tree.ResponseSeconds, plain.ResponseSeconds)
	}
}

func TestTreeAggregationRejectsNonAssociative(t *testing.T) {
	pg, pl, topo := treeFixture(t, 43)
	prog := listProgram{}
	st := NewState[[]int64](pg, prog)
	_, _, err := IterateTree(engine.New(engine.Config{Topo: topo}), pg, pl, prog, st, Options{})
	if err == nil {
		t.Fatal("expected error for non-associative program")
	}
}

func TestTreeAggregationOnSinglePod(t *testing.T) {
	// With one pod, there is no cross-pod traffic: tree aggregation must
	// degenerate gracefully to the plain path (same results, no
	// aggregator traffic).
	g := graph.SmallWorld(graph.DefaultSmallWorld(1000, 44))
	pt, sk := partition.RecursiveBisect(g, 2, partition.Options{Seed: 44})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT1(4)
	pl := partition.SketchPlacement(sk, topo)
	prog := sumProgram{}

	stA := NewState[int64](pg, prog)
	_, plain, err := Iterate(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stA, Options{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	stB := NewState[int64](pg, prog)
	next, tree, err := IterateTree(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NetworkBytes != plain.NetworkBytes {
		t.Fatalf("single-pod tree network %d != plain %d", tree.NetworkBytes, plain.NetworkBytes)
	}
	want := refSum(g)
	for v := range want {
		if next.Values[v] != want[v] {
			t.Fatalf("value[%d] wrong", v)
		}
	}
}
