package propagation

import (
	"testing"

	"repro/internal/engine"
)

// steadyAllocs measures per-iteration heap allocations of the pooled
// propagation loop after the scratch slabs are warm.
func steadyAllocs(t *testing.T, n int) float64 {
	t.Helper()
	f := newFixture(t, n, 3, 1)
	r := engine.New(engine.Config{Topo: f.topo, Workers: 1})
	st := NewState[int64](f.pg, sumProgram{})
	opt := Options{LocalPropagation: true, LocalCombination: true}
	var err error
	// Two warm iterations: the first sizes the emission logs, bag slab and
	// key caches; the second settles the engine's event freelist.
	for i := 0; i < 2; i++ {
		st, _, err = Iterate(r, f.pg, f.pl, sumProgram{}, st, opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(5, func() {
		st, _, err = Iterate(r, f.pg, f.pl, sumProgram{}, st, opt)
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestSteadyStateAllocsPerMessageZero pins the pooled hot loop: once warm,
// an iteration's allocation count must not scale with the message volume.
// The two fixtures differ by ~8x in edges (and therefore messages) at the
// same partition count, so any per-message or per-emission allocation shows
// up as thousands of extra allocations on the larger run.
func TestSteadyStateAllocsPerMessageZero(t *testing.T) {
	small := steadyAllocs(t, 1024)
	large := steadyAllocs(t, 8192)
	if large > small+64 {
		t.Fatalf("steady-state allocs scale with messages: %.0f at 1k vertices vs %.0f at 8k", small, large)
	}
	// And the absolute count must stay bounded: a fixed overhead per
	// iteration (next state, job scaffolding), nothing proportional to the
	// ~100k messages the 8k-vertex fixture moves.
	if large > 600 {
		t.Fatalf("steady-state iteration allocates %.0f times; pooled loop should stay in the low hundreds", large)
	}
}
