package propagation

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// FuzzPropagationParallel fuzzes the determinism contract: a small graph is
// decoded from the fuzz input (consecutive byte pairs are edges), run through
// propagation serially and with a parallel compute pool, and the two
// executions must agree bit-for-bit on vertex values and engine metrics.
func FuzzPropagationParallel(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0}, int64(1), uint8(3))
	f.Add([]byte{0, 0, 5, 9, 9, 5, 3, 7, 7, 3, 1, 4}, int64(42), uint8(0))
	f.Add([]byte{255, 0, 0, 255, 128, 64, 64, 128}, int64(7), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, optPick uint8) {
		if len(data) < 2 {
			return
		}
		if len(data) > 256 {
			data = data[:256]
		}
		const n = 64
		edges := make([][2]graph.VertexID, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			edges = append(edges, [2]graph.VertexID{
				graph.VertexID(int(data[i]) % n),
				graph.VertexID(int(data[i+1]) % n),
			})
		}
		g := graph.FromEdges(n, edges)
		pt, sk := partition.RecursiveBisect(g, 2, partition.Options{Seed: seed})
		pg, err := storage.Build(g, pt)
		if err != nil {
			t.Fatal(err)
		}
		topo := cluster.NewT1(4)
		pl := partition.SketchPlacement(sk, topo)
		prog := &weightedSum{weights: make([]int64, n)}
		for i := range prog.weights {
			prog.weights[i] = int64((int(seed) + i) % 5)
		}
		opt := Options{
			LocalPropagation: optPick&1 != 0,
			LocalCombination: optPick&2 != 0,
		}
		run := func(workers int) ([]int64, engine.Metrics) {
			r := engine.New(engine.Config{Topo: topo, Workers: workers})
			st := NewState[int64](pg, prog)
			st, m, err := RunIterations(r, pg, pl, prog, st, opt, 2)
			if err != nil {
				t.Fatal(err)
			}
			return st.Values, m
		}
		refVals, refM := run(1)
		for _, workers := range []int{2, 8} {
			gotVals, gotM := run(workers)
			if gotM != refM {
				t.Fatalf("workers=%d: metrics %+v, want %+v", workers, gotM, refM)
			}
			for v := range refVals {
				if gotVals[v] != refVals[v] {
					t.Fatalf("workers=%d: vertex %d = %d, want %d", workers, v, gotVals[v], refVals[v])
				}
			}
		}
	})
}
