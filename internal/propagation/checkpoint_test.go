package propagation

import (
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

func (f *fixture) replicatedRunner(failures []engine.Failure, heartbeat float64, workers int) *engine.Runner {
	reps := storage.PlaceReplicas(f.pl, f.topo, 7)
	return engine.New(engine.Config{
		Topo: f.topo, Replicas: reps, Failures: failures,
		HeartbeatInterval: heartbeat, Workers: workers,
	})
}

func (f *fixture) replicas() *storage.Replicas { return storage.PlaceReplicas(f.pl, f.topo, 7) }

func TestRunCheckpointedMatchesRunIterations(t *testing.T) {
	f := newFixture(t, 600, 2, 1)
	opt := Options{LocalPropagation: true, LocalCombination: true}
	const iters = 4

	base, baseM, err := RunIterations(f.runner(), f.pg, f.pl, sumProgram{}, NewState(f.pg, sumProgram{}), opt, iters)
	if err != nil {
		t.Fatal(err)
	}
	st, m, err := RunCheckpointed(f.replicatedRunner(nil, 0, 1), f.pg, f.pl, sumProgram{}, NewState(f.pg, sumProgram{}), opt, iters,
		CheckpointConfig{Interval: 2, Replicas: f.replicas()})
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Values {
		if st.Values[v] != base.Values[v] {
			t.Fatalf("vertex %d: checkpointed value %d != plain %d", v, st.Values[v], base.Values[v])
		}
	}
	// One checkpoint commits after iteration 2; none after the final one.
	if m.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", m.Checkpoints)
	}
	if m.Restores != 0 {
		t.Fatalf("restores = %d, want 0 without failures", m.Restores)
	}
	// Checkpointing is not free: its I/O is charged to the virtual clock.
	if m.ResponseSeconds <= baseM.ResponseSeconds {
		t.Fatalf("checkpointed response %.3fs not above plain %.3fs", m.ResponseSeconds, baseM.ResponseSeconds)
	}
}

func TestCheckpointRollbackBeatsRestartFromZero(t *testing.T) {
	f := newFixture(t, 600, 2, 1)
	opt := Options{LocalPropagation: true, LocalCombination: true}
	const iters = 4

	base, baseM, err := RunIterations(f.runner(), f.pg, f.pl, sumProgram{}, NewState(f.pg, sumProgram{}), opt, iters)
	if err != nil {
		t.Fatal(err)
	}
	// Kill a machine ~70% into the failure-free run: past the interval-2
	// checkpoint, inside iteration 3 or 4.
	killAt := baseM.ResponseSeconds * 0.7
	heartbeat := baseM.ResponseSeconds / 20
	run := func(interval, workers int) (*State[int64], engine.Metrics) {
		t.Helper()
		r := f.replicatedRunner([]engine.Failure{{Machine: 2, At: killAt}}, heartbeat, workers)
		st, m, err := RunCheckpointed(r, f.pg, f.pl, sumProgram{}, NewState(f.pg, sumProgram{}), opt, iters,
			CheckpointConfig{Interval: interval, Replicas: f.replicas()})
		if err != nil {
			t.Fatal(err)
		}
		return st, m
	}

	ckptSt, ckptM := run(2, 1)
	zeroSt, zeroM := run(0, 1)

	// Both recover to bit-identical values.
	for v := range base.Values {
		if ckptSt.Values[v] != base.Values[v] {
			t.Fatalf("vertex %d: checkpointed recovery value %d != failure-free %d", v, ckptSt.Values[v], base.Values[v])
		}
		if zeroSt.Values[v] != base.Values[v] {
			t.Fatalf("vertex %d: restart-from-zero value %d != failure-free %d", v, zeroSt.Values[v], base.Values[v])
		}
	}
	if ckptM.Restores != 1 {
		t.Fatalf("checkpointed run restores = %d, want 1", ckptM.Restores)
	}
	if ckptM.Checkpoints < 1 {
		t.Fatalf("checkpointed run committed %d checkpoints", ckptM.Checkpoints)
	}
	if zeroM.Restores != 0 || zeroM.Checkpoints != 0 {
		t.Fatalf("restart-from-zero run has checkpoints=%d restores=%d", zeroM.Checkpoints, zeroM.Restores)
	}
	// The point of checkpointing: replaying <= K iterations plus the
	// restore I/O beats replaying the whole prefix.
	if ckptM.ResponseSeconds >= zeroM.ResponseSeconds {
		t.Fatalf("checkpointed recovery %.3fs not faster than restart-from-zero %.3fs",
			ckptM.ResponseSeconds, zeroM.ResponseSeconds)
	}
	// Recovery is deterministic across worker counts.
	for _, workers := range []int{4, 8} {
		st, m := run(2, workers)
		if m != ckptM {
			t.Fatalf("workers=%d: metrics %+v differ from serial %+v", workers, m, ckptM)
		}
		for v := range base.Values {
			if st.Values[v] != base.Values[v] {
				t.Fatalf("workers=%d vertex %d diverges", workers, v)
			}
		}
	}
}

func TestRunCheckpointedCascaded(t *testing.T) {
	f := newFixture(t, 600, 2, 1)
	opt := Options{LocalPropagation: true, LocalCombination: true}
	const iters = 4
	base, _, err := RunIterations(f.runner(), f.pg, f.pl, sumProgram{}, NewState(f.pg, sumProgram{}), opt, iters)
	if err != nil {
		t.Fatal(err)
	}
	st, m, err := RunCheckpointed(f.replicatedRunner(nil, 0, 1), f.pg, f.pl, sumProgram{}, NewState(f.pg, sumProgram{}), opt, iters,
		CheckpointConfig{Interval: 2, Replicas: f.replicas(), Cascaded: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Values {
		if st.Values[v] != base.Values[v] {
			t.Fatalf("vertex %d: cascaded checkpointed value %d != plain %d", v, st.Values[v], base.Values[v])
		}
	}
	if m.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", m.Checkpoints)
	}

	// A kill late in the cascaded run: the interval-2 checkpoint bounds the
	// replay to at most 2 iterations, beating restart-from-zero, and the
	// recovered values stay bit-identical (the cascade skip pattern is keyed
	// to absolute iteration indices, so the replay skips what the original
	// run skipped).
	killAt := m.ResponseSeconds * 0.7
	heartbeat := m.ResponseSeconds / 20
	runKilled := func(interval int) (*State[int64], engine.Metrics) {
		t.Helper()
		r := f.replicatedRunner([]engine.Failure{{Machine: 2, At: killAt}}, heartbeat, 1)
		st, km, err := RunCheckpointed(r, f.pg, f.pl, sumProgram{}, NewState(f.pg, sumProgram{}), opt, iters,
			CheckpointConfig{Interval: interval, Replicas: f.replicas(), Cascaded: true})
		if err != nil {
			t.Fatal(err)
		}
		return st, km
	}
	ckptSt, ckptM := runKilled(2)
	zeroSt, zeroM := runKilled(0)
	for v := range base.Values {
		if ckptSt.Values[v] != base.Values[v] || zeroSt.Values[v] != base.Values[v] {
			t.Fatalf("vertex %d: cascaded recovery diverges from failure-free run", v)
		}
	}
	if ckptM.Restores != 1 {
		t.Fatalf("cascaded checkpointed run restores = %d, want 1", ckptM.Restores)
	}
	if ckptM.ResponseSeconds >= zeroM.ResponseSeconds {
		t.Fatalf("cascaded checkpointed recovery %.3fs not faster than restart-from-zero %.3fs",
			ckptM.ResponseSeconds, zeroM.ResponseSeconds)
	}
}

func TestRunCheckpointedValidation(t *testing.T) {
	f := newFixture(t, 100, 1, 1)
	st := NewState(f.pg, sumProgram{})
	if _, _, err := RunCheckpointed(f.runner(), f.pg, f.pl, sumProgram{}, st, Options{}, 2,
		CheckpointConfig{Interval: -1}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, _, err := RunCheckpointed(f.runner(), f.pg, f.pl, sumProgram{}, st, Options{}, 2,
		CheckpointConfig{Interval: 2}); err == nil {
		t.Fatal("interval without replicas accepted")
	}
}

func TestSaveLoadCheckpointFile(t *testing.T) {
	f := newFixture(t, 100, 1, 1)
	st := NewState(f.pg, sumProgram{})
	st.Virtual[1000] = 42
	path := filepath.Join(t.TempDir(), "state.srfc")
	if err := SaveCheckpoint(path, 5, st); err != nil {
		t.Fatal(err)
	}
	iter, got, err := LoadCheckpoint[int64](path)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 5 {
		t.Fatalf("iteration = %d, want 5", iter)
	}
	if len(got.Values) != len(st.Values) {
		t.Fatalf("values = %d, want %d", len(got.Values), len(st.Values))
	}
	for v := range st.Values {
		if got.Values[v] != st.Values[v] {
			t.Fatalf("vertex %d: %d != %d", v, got.Values[v], st.Values[v])
		}
	}
	if got.Virtual[1000] != 42 {
		t.Fatalf("virtual value = %d, want 42", got.Virtual[1000])
	}
}
