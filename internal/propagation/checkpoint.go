package propagation

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// Clone returns a deep copy of the state: the checkpoint the driver rolls
// back to when a machine death invalidates the iterations since. Values are
// copied shallowly (programs treat values as immutable between iterations).
func (st *State[V]) Clone() *State[V] {
	c := &State[V]{
		Values:  append([]V(nil), st.Values...),
		Virtual: make(map[graph.VertexID]V, len(st.Virtual)),
	}
	for k, v := range st.Virtual {
		c.Virtual[k] = v
	}
	return c
}

// CheckpointConfig configures iteration checkpointing for multi-iteration
// propagation (the recovery half of Figure 10's fault-tolerance story):
// between iterations the vertex state lives only on each partition's local
// disk, so a machine death loses every iteration since the last durable
// copy. Checkpointing persists the state to storage replicas every Interval
// iterations; recovery then replays at most Interval iterations instead of
// the whole run.
type CheckpointConfig struct {
	// Interval is K: a checkpoint commits after every K-th iteration.
	// 0 disables checkpointing — a death rolls the run back to iteration
	// zero (the restart-from-scratch baseline).
	Interval int
	// Replicas locates each partition's replica holders; checkpoint copies
	// sync to a holder other than the writer, and restores read from it.
	// Required when Interval > 0.
	Replicas *storage.Replicas
	// Cascaded applies cascaded propagation (§5.2) to the compute
	// iterations. Checkpoints always persist the full state, so mid-phase
	// iterations that skipped intermediate I/O stay recoverable.
	Cascaded bool
}

// RunCheckpointed executes iters propagation iterations with iteration
// checkpointing. Every checkpoint and restore runs as an ordinary engine job
// — its disk and network traffic is charged to the virtual clock and the
// NICs like any other stage — and is marked on the runner's metrics and
// trace stream. When a machine dies during an iteration, the run rolls back
// to the last checkpoint and replays; because iterations are deterministic,
// the final values are bit-identical to a failure-free run.
func RunCheckpointed[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, iters int, cfg CheckpointConfig) (*State[V], engine.Metrics, error) {
	if cfg.Interval < 0 {
		return nil, engine.Metrics{}, fmt.Errorf("propagation: negative checkpoint interval %d", cfg.Interval)
	}
	if cfg.Interval > 0 && cfg.Replicas == nil {
		return nil, engine.Metrics{}, fmt.Errorf("propagation: checkpoint interval %d requires replicas", cfg.Interval)
	}
	var ci *CascadeInfo
	if cfg.Cascaded {
		ci = AnalyzeCascade(pg)
	}
	var total engine.Metrics
	ckptState := st.Clone()
	ckptIter := 0
	rollbacks := 0
	for i := 0; i < iters; {
		deaths := r.Deaths()
		next, m, err := runOneIteration(r, pg, pl, prog, st, opt, i, iters, ci)
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		if r.Deaths() > deaths {
			// A machine died: the state of its partitions since the last
			// checkpoint is gone. Restore the checkpoint (charging its I/O)
			// and replay from there.
			rollbacks++
			if rollbacks > r.NumMachines() {
				return nil, total, fmt.Errorf("propagation: %d rollbacks on a %d-machine cluster; failure plan cannot converge", rollbacks, r.NumMachines())
			}
			if ckptIter > 0 {
				// The restore job is the failure's consequence, not normal
				// job chaining: mark it so its trace event says so.
				r.MarkNextJobRecovery()
				rm, err := runRestoreJob(r, pg, pl, prog, ckptState, cfg.Replicas, ckptIter)
				if err != nil {
					return nil, total, err
				}
				total.Add(rm)
			}
			st = ckptState.Clone()
			i = ckptIter
			continue
		}
		st = next
		i++
		if cfg.Interval > 0 && i%cfg.Interval == 0 && i < iters {
			cm, err := runCheckpointJob(r, pg, pl, prog, st, cfg.Replicas, i)
			if err != nil {
				return nil, total, err
			}
			total.Add(cm)
			ckptState = st.Clone()
			ckptIter = i
		}
	}
	return st, total, nil
}

// runOneIteration executes iteration i, optionally with the cascaded
// propagation skip pattern (keyed to the absolute iteration index, so a
// replayed iteration skips exactly what the original run skipped).
func runOneIteration[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, i, iters int, ci *CascadeInfo) (*State[V], engine.Metrics, error) {
	if ci == nil {
		return iterateNamed(r, pg, pl, prog, st, opt, iterName("propagation", i))
	}
	ex := newExecution(pg, pl, prog, st, opt)
	ex.pool = r.Pool()
	ex.jobName = iterName("cascaded", i)
	phasePos := i % ci.MinDiameter
	if phasePos > 0 && i != iters-1 {
		skip := make([]bool, pg.G.NumVertices())
		for v, d := range ci.Depth {
			if d >= phasePos {
				skip[v] = true
			}
		}
		ex.skipStateIO = skip
	}
	ex.transferAll()
	next := ex.combineAll()
	m, err := r.Run(ex.buildJob())
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	return next, m, nil
}

// statePartBytes sums the serialized state per partition: each real vertex
// in its home partition, each virtual value in its round-robin owner.
func statePartBytes[V any](pg *storage.PartitionedGraph, prog Program[V], st *State[V]) []int64 {
	out := make([]int64, pg.Part.P)
	for v, val := range st.Values {
		out[pg.Part.Assign[v]] += prog.Bytes(val)
	}
	for d, val := range st.Virtual {
		out[VirtualPartition(d, pg.Part.P)] += prog.Bytes(val)
	}
	return out
}

// syncHolder picks the replica machine a partition's checkpoint copy syncs
// to: the first holder that is not the writer. Degenerate layouts (a single
// holder) sync in place.
func syncHolder(reps *storage.Replicas, p int, writer cluster.MachineID) cluster.MachineID {
	for _, m := range reps.Machines[p] {
		if m != writer {
			return m
		}
	}
	return writer
}

// runCheckpointJob persists the state as a two-stage engine job: ckpt-write
// writes each partition's state to its machine's disk, ckpt-sync ships a
// copy to a replica holder and writes it there. All I/O flows through the
// simulated disks and NICs.
func runCheckpointJob[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], reps *storage.Replicas, iter int) (engine.Metrics, error) {
	bytesPer := statePartBytes(pg, prog, st)
	p := pg.Part.P
	write := make([]*engine.Task, p)
	sync := make([]*engine.Task, p)
	var totalBytes int64
	for i := 0; i < p; i++ {
		m := pl.MachineOf[i]
		totalBytes += bytesPer[i]
		write[i] = &engine.Task{
			Name: fmt.Sprintf("ckpt-write-p%d", i), Kind: engine.KindTransfer,
			Part: partition.PartID(i), Machine: m,
			DiskWrite: bytesPer[i],
			Outputs:   []engine.Output{{DstTask: i, Bytes: bytesPer[i]}},
		}
		sync[i] = &engine.Task{
			Name: fmt.Sprintf("ckpt-sync-p%d", i), Kind: engine.KindCombine,
			Part: partition.PartID(i), Machine: syncHolder(reps, i, m),
			DiskWrite: bytesPer[i],
		}
	}
	name := fmt.Sprintf("ckpt-%03d", iter)
	m, err := r.Run(&engine.Job{Name: name, Stages: []*engine.Stage{
		{Name: "ckpt-write", Tasks: write},
		{Name: "ckpt-sync", Tasks: sync},
	}})
	if err != nil {
		return m, err
	}
	r.NoteCheckpoint(name, totalBytes)
	m.Checkpoints++
	return m, nil
}

// runRestoreJob reloads the last checkpoint: restore-read reads each
// partition's durable copy on its sync holder, restore-write ships it back
// to the partition's (possibly failed-over) machine and writes it locally.
func runRestoreJob[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], reps *storage.Replicas, iter int) (engine.Metrics, error) {
	bytesPer := statePartBytes(pg, prog, st)
	p := pg.Part.P
	read := make([]*engine.Task, p)
	write := make([]*engine.Task, p)
	var totalBytes int64
	for i := 0; i < p; i++ {
		m := pl.MachineOf[i]
		holder := syncHolder(reps, i, m)
		totalBytes += bytesPer[i]
		read[i] = &engine.Task{
			Name: fmt.Sprintf("restore-read-p%d", i), Kind: engine.KindTransfer,
			Part: partition.PartID(i), Machine: holder,
			DiskRead: bytesPer[i],
			Outputs:  []engine.Output{{DstTask: i, Bytes: bytesPer[i]}},
		}
		write[i] = &engine.Task{
			Name: fmt.Sprintf("restore-write-p%d", i), Kind: engine.KindCombine,
			Part: partition.PartID(i), Machine: m,
			DiskWrite: bytesPer[i],
		}
	}
	name := fmt.Sprintf("restore-%03d", iter)
	m, err := r.Run(&engine.Job{Name: name, Stages: []*engine.Stage{
		{Name: "restore-read", Tasks: read},
		{Name: "restore-write", Tasks: write},
	}})
	if err != nil {
		return m, err
	}
	r.NoteRestore(name, totalBytes)
	m.Restores++
	return m, nil
}

// SaveCheckpoint persists a state to path in the storage checkpoint format
// (a gob-encoded payload inside the SRFC envelope), for drivers that keep
// real durable checkpoints between process runs.
func SaveCheckpoint[V any](path string, iteration int, st *State[V]) error {
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(st.Values); err != nil {
		return fmt.Errorf("propagation: encoding checkpoint values: %w", err)
	}
	if err := enc.Encode(st.Virtual); err != nil {
		return fmt.Errorf("propagation: encoding checkpoint virtual values: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := storage.WriteCheckpoint(f, iteration, payload.Bytes()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint, returning the
// iteration it belongs to and the decoded state.
func LoadCheckpoint[V any](path string) (int, *State[V], error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	iter, payload, err := storage.ReadCheckpoint(f)
	if err != nil {
		return 0, nil, err
	}
	st := &State[V]{}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&st.Values); err != nil {
		return 0, nil, fmt.Errorf("propagation: decoding checkpoint values: %w", err)
	}
	if err := dec.Decode(&st.Virtual); err != nil {
		return 0, nil, fmt.Errorf("propagation: decoding checkpoint virtual values: %w", err)
	}
	if st.Virtual == nil {
		st.Virtual = make(map[graph.VertexID]V)
	}
	return iter, st, nil
}
