package propagation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// weightedSum is a randomized associative program: each edge scales the
// source's value by a per-source weight; combine sums. Randomizing the
// weights exercises value paths beyond the constant-1 tests.
type weightedSum struct {
	weights []int64
}

func (p *weightedSum) Init(v graph.VertexID) int64 { return int64(v%97) + 1 }
func (p *weightedSum) Transfer(src graph.VertexID, val int64, dst graph.VertexID, emit Emit[int64]) {
	emit(dst, val*p.weights[src])
}
func (p *weightedSum) Combine(_ graph.VertexID, _ int64, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}
func (p *weightedSum) Bytes(int64) int64 { return 8 }
func (p *weightedSum) Associative() bool { return true }
func (p *weightedSum) Merge(_ graph.VertexID, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}

// TestQuickOptLevelEquivalence is the central semantics property: for
// random graphs, partitionings and programs, all four optimization levels
// and all placements produce bit-identical results across multiple
// iterations.
func TestQuickOptLevelEquivalence(t *testing.T) {
	f := func(seed int64, levelPick, iterPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		g := graph.Uniform(n, n*4, seed)
		levels := 1 + int(levelPick%3)
		iters := 1 + int(iterPick%3)
		pt, sk := partition.RecursiveBisect(g, levels, partition.Options{Seed: seed})
		pg, err := storage.Build(g, pt)
		if err != nil {
			return false
		}
		topo := cluster.NewT1(4)
		prog := &weightedSum{weights: make([]int64, n)}
		for i := range prog.weights {
			prog.weights[i] = int64(rng.Intn(5))
		}
		run := func(pl *partition.Placement, opt Options) []int64 {
			r := engine.New(engine.Config{Topo: topo})
			st := NewState[int64](pg, prog)
			st, _, err := RunIterations(r, pg, pl, prog, st, opt, iters)
			if err != nil {
				t.Fatal(err)
			}
			return st.Values
		}
		plans := []*partition.Placement{
			partition.SketchPlacement(sk, topo),
			partition.RandomPlacement(pt.P, topo, seed),
		}
		opts := []Options{
			{},
			{LocalPropagation: true},
			{LocalCombination: true},
			{LocalPropagation: true, LocalCombination: true},
		}
		ref := run(plans[0], opts[0])
		for _, pl := range plans {
			for _, opt := range opts {
				got := run(pl, opt)
				for v := range ref {
					if got[v] != ref[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParallelEquivalence is the determinism contract of the parallel
// executor: for random seeds, partition counts and topologies, running the
// same program with 1, 2 and 8 compute workers yields bit-identical vertex
// values and identical engine metrics.
func TestQuickParallelEquivalence(t *testing.T) {
	topos := func(machines int, seed int64) []*cluster.Topology {
		return []*cluster.Topology{
			cluster.NewT1(machines),
			cluster.NewT2(cluster.T2Config{Machines: machines, Pods: 2, Levels: 1}),
			cluster.NewT3(machines, seed),
		}
	}
	f := func(seed int64, levelPick, optPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		g := graph.Uniform(n, n*4, seed)
		levels := 1 + int(levelPick%3)
		pt, sk := partition.RecursiveBisect(g, levels, partition.Options{Seed: seed})
		pg, err := storage.Build(g, pt)
		if err != nil {
			return false
		}
		prog := &weightedSum{weights: make([]int64, n)}
		for i := range prog.weights {
			prog.weights[i] = int64(rng.Intn(5))
		}
		opt := Options{
			LocalPropagation: optPick&1 != 0,
			LocalCombination: optPick&2 != 0,
		}
		for _, topo := range topos(4, seed) {
			pl := partition.SketchPlacement(sk, topo)
			run := func(workers int) ([]int64, engine.Metrics) {
				r := engine.New(engine.Config{Topo: topo, Workers: workers})
				st := NewState[int64](pg, prog)
				st, m, err := RunIterations(r, pg, pl, prog, st, opt, 2)
				if err != nil {
					t.Fatal(err)
				}
				return st.Values, m
			}
			refVals, refM := run(1)
			for _, workers := range []int{2, 8} {
				gotVals, gotM := run(workers)
				if gotM != refM {
					t.Logf("metrics diverge with %d workers: %+v vs %+v", workers, gotM, refM)
					return false
				}
				for v := range refVals {
					if gotVals[v] != refVals[v] {
						t.Logf("vertex %d diverges with %d workers", v, workers)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCascadeEquivalence: cascading never changes results for random
// graphs and iteration counts.
func TestQuickCascadeEquivalence(t *testing.T) {
	f := func(seed int64, iterPick uint8) bool {
		n := 300
		g := graph.SmallWorld(graph.DefaultSmallWorld(n, seed))
		iters := 2 + int(iterPick%4)
		pt, sk := partition.RecursiveBisect(g, 2, partition.Options{Seed: seed})
		pg, err := storage.Build(g, pt)
		if err != nil {
			return false
		}
		topo := cluster.NewT1(2)
		pl := partition.SketchPlacement(sk, topo)
		prog := &weightedSum{weights: make([]int64, g.NumVertices())}
		rng := rand.New(rand.NewSource(seed))
		for i := range prog.weights {
			prog.weights[i] = int64(rng.Intn(3))
		}
		stA := NewState[int64](pg, prog)
		plain, _, err := RunIterations(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stA, Options{}, iters)
		if err != nil {
			return false
		}
		stB := NewState[int64](pg, prog)
		casc, _, err := RunCascaded(engine.New(engine.Config{Topo: topo}), pg, pl, prog, stB, Options{}, iters, nil)
		if err != nil {
			return false
		}
		for v := range plain.Values {
			if plain.Values[v] != casc.Values[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIOOrdering: the optimization levels never increase traffic when
// the placement is fixed, for random graphs.
func TestQuickIOOrdering(t *testing.T) {
	f := func(seed int64) bool {
		n := 300 + int(uint64(seed)%300)
		g := graph.Uniform(n, n*5, seed)
		pt, sk := partition.RecursiveBisect(g, 2, partition.Options{Seed: seed})
		pg, err := storage.Build(g, pt)
		if err != nil {
			return false
		}
		topo := cluster.NewT1(4)
		pl := partition.SketchPlacement(sk, topo)
		prog := &weightedSum{weights: make([]int64, g.NumVertices())}
		for i := range prog.weights {
			prog.weights[i] = 1
		}
		run := func(opt Options) engine.Metrics {
			r := engine.New(engine.Config{Topo: topo})
			st := NewState[int64](pg, prog)
			_, m, err := Iterate(r, pg, pl, prog, st, opt)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		o1 := run(Options{})
		o3 := run(Options{LocalPropagation: true, LocalCombination: true})
		return o3.NetworkBytes <= o1.NetworkBytes && o3.DiskBytes <= o1.DiskBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
