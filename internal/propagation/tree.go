package propagation

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// Tree aggregation is an extension beyond the paper's per-partition local
// combination: the multi-level data reduction along the switch tree that
// §2 credits to cloud systems like MapReduce and DryadLINQ [5, 23].
//
// With local combination, every partition ships one merged value per
// remote destination vertex — but when several partitions of one pod all
// send values for the same destination into another pod, the same vertex's
// data crosses the oversubscribed top-level switch several times. Tree
// aggregation inserts an Aggregate stage: cross-pod values first converge
// inside the sending pod over cheap intra-pod links, are merged per
// destination vertex, and only one value per (pod, destination) crosses
// the tree. To keep the pod's full egress bandwidth, the aggregation work
// is spread over the pod's machines by destination partition rather than
// funneled through a single aggregator. Combine's associativity makes the
// results identical; only traffic moves.

// aggKey identifies one aggregation task: the sending pod and the
// destination partition its traffic heads to.
type aggKey struct {
	pod     int
	dstPart int
}

// IterateTree runs one propagation iteration with tree aggregation. It
// requires an associative program and applies local propagation and local
// combination unconditionally (the stage exists to squeeze the remaining
// cross-pod traffic; running it without the cheaper optimizations would be
// pointless).
func IterateTree[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options) (*State[V], engine.Metrics, error) {
	if !prog.Associative() {
		return nil, engine.Metrics{}, fmt.Errorf("propagation: tree aggregation requires an associative program")
	}
	if len(st.Values) != pg.G.NumVertices() {
		return nil, engine.Metrics{}, fmt.Errorf("propagation: state has %d values, graph has %d vertices", len(st.Values), pg.G.NumVertices())
	}
	if pl.NumPartitions() != pg.Part.P {
		return nil, engine.Metrics{}, fmt.Errorf("propagation: placement covers %d partitions, graph has %d", pl.NumPartitions(), pg.Part.P)
	}
	opt.LocalPropagation = true
	opt.LocalCombination = true
	topo := r.Topology()
	partPod := func(p int) int { return topo.Pod(pl.MachineOf[p]) }

	ex := newExecution(pg, pl, prog, st, opt)
	ex.pool = r.Pool()
	ex.jobName = opt.jobName
	// Intercept cross-pod values after local combination: group them per
	// (sending pod, destination vertex) for the Aggregate stage and track
	// the partition -> aggregator intra-pod traffic per aggregation task.
	// The hook only fires from the serial merge step (mergeEmissions), so
	// its shared maps need no locking even with a parallel pool.
	type podDst struct {
		pod int
		dst graph.VertexID
	}
	podVals := make(map[podDst][]V)
	toAggBytes := make([]map[aggKey]int64, pg.Part.P)
	for i := range toAggBytes {
		toAggBytes[i] = make(map[aggKey]int64)
	}
	ex.crossHook = func(srcPart int, dst graph.VertexID, v V) bool {
		dstPart := int(ex.partOf(dst))
		if partPod(srcPart) == partPod(dstPart) {
			return false // same pod: no top-level switch crossed
		}
		k := podDst{pod: partPod(srcPart), dst: dst}
		podVals[k] = append(podVals[k], v)
		toAggBytes[srcPart][aggKey{pod: k.pod, dstPart: dstPart}] += ex.prog.Bytes(v)
		return true
	}
	ex.transferAll()

	// Merge per (pod, destination vertex); account per aggregation task.
	aggOutBytes := make(map[aggKey]int64)
	aggInValues := make(map[aggKey]int64)
	keys := make([]podDst, 0, len(podVals))
	for k := range podVals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pod != keys[j].pod {
			return keys[i].pod < keys[j].pod
		}
		return keys[i].dst < keys[j].dst
	})
	for _, k := range keys {
		vals := podVals[k]
		merged := vals[0]
		if len(vals) > 1 {
			merged = ex.prog.Merge(k.dst, vals)
		}
		ex.appendBag(k.dst, merged)
		ak := aggKey{pod: k.pod, dstPart: int(ex.partOf(k.dst))}
		aggOutBytes[ak] += ex.prog.Bytes(merged)
		aggInValues[ak] += int64(len(vals))
	}
	next := ex.combineAll()

	m, err := r.Run(ex.buildTreeJob(topo, toAggBytes, aggOutBytes, aggInValues))
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	return next, m, nil
}

// buildTreeJob assembles the three-stage job: Transfer -> Aggregate/Relay
// -> Combine.
func (ex *execution[V]) buildTreeJob(topo *cluster.Topology, toAggBytes []map[aggKey]int64, aggOutBytes, aggInValues map[aggKey]int64) *engine.Job {
	p := ex.pg.Part.P
	costs := ex.opt.costs()
	podMachines := machinesByPod(topo)

	// Stage 2 layout: first P relay tasks forward direct (same-pod)
	// traffic to their combine tasks, then one aggregation task per
	// (pod, dstPart) pair with traffic, spread over the pod's machines by
	// destination partition so the pod's full egress stays usable.
	stage2 := make([]*engine.Task, p, p+len(aggOutBytes))
	for q := 0; q < p; q++ {
		stage2[q] = &engine.Task{
			Name:    fmt.Sprintf("relay-p%d", q),
			Kind:    engine.KindCombine,
			Part:    partition.PartID(q),
			Machine: ex.pl.MachineOf[q],
		}
	}
	aggKeys := make([]aggKey, 0, len(aggOutBytes))
	for k := range aggOutBytes {
		aggKeys = append(aggKeys, k)
	}
	sort.Slice(aggKeys, func(i, j int) bool {
		if aggKeys[i].pod != aggKeys[j].pod {
			return aggKeys[i].pod < aggKeys[j].pod
		}
		return aggKeys[i].dstPart < aggKeys[j].dstPart
	})
	aggTaskIdx := make(map[aggKey]int, len(aggKeys))
	for _, k := range aggKeys {
		ms := podMachines[k.pod]
		aggTaskIdx[k] = len(stage2)
		stage2 = append(stage2, &engine.Task{
			Name:    fmt.Sprintf("aggregate-pod%d-to-p%d", k.pod, k.dstPart),
			Kind:    engine.KindCombine,
			Part:    engine.NoPart,
			Machine: ms[k.dstPart%len(ms)],
			Compute: costs.ComputePerValue * float64(aggInValues[k]),
			Outputs: []engine.Output{{DstTask: k.dstPart, Bytes: aggOutBytes[k]}},
		})
	}

	// Direct inbound bytes per partition (relay forwarding) and total
	// combine-side arrivals.
	directIn := make([]int64, p)
	for i := 0; i < p; i++ {
		for q := 0; q < p; q++ {
			directIn[q] += ex.remoteBytes[i*p+q]
		}
	}
	received := make([]int64, p)
	copy(received, directIn)
	for k, b := range aggOutBytes {
		received[k.dstPart] += b
	}
	for q := 0; q < p; q++ {
		if directIn[q] > 0 {
			stage2[q].Outputs = []engine.Output{{DstTask: q, Bytes: directIn[q]}}
		}
	}

	transfer := make([]*engine.Task, p)
	combine := make([]*engine.Task, p)
	for i := 0; i < p; i++ {
		pi := ex.pg.Parts[i]
		m := ex.pl.MachineOf[i]
		var edges int64
		for _, v := range pi.Vertices {
			edges += int64(ex.pg.G.OutDegree(v))
		}
		var outs []engine.Output
		for q := 0; q < p; q++ {
			if b := ex.remoteBytes[i*p+q]; b > 0 {
				outs = append(outs, engine.Output{DstTask: q, Bytes: b})
			}
		}
		aks := make([]aggKey, 0, len(toAggBytes[i]))
		for k := range toAggBytes[i] {
			aks = append(aks, k)
		}
		sort.Slice(aks, func(a, b int) bool {
			if aks[a].pod != aks[b].pod {
				return aks[a].pod < aks[b].pod
			}
			return aks[a].dstPart < aks[b].dstPart
		})
		for _, k := range aks {
			if b := toAggBytes[i][k]; b > 0 {
				outs = append(outs, engine.Output{DstTask: aggTaskIdx[k], Bytes: b})
			}
		}
		transfer[i] = &engine.Task{
			Name:      fmt.Sprintf("transfer-p%d", i),
			Kind:      engine.KindTransfer,
			Part:      partition.PartID(i),
			Machine:   m,
			Compute:   costs.ComputePerEdge * float64(edges),
			DiskRead:  pi.Bytes + ex.stateRead[i],
			DiskWrite: ex.localBytes[i],
			Outputs:   outs,
		}
		combine[i] = &engine.Task{
			Name:      fmt.Sprintf("combine-p%d", i),
			Kind:      engine.KindCombine,
			Part:      partition.PartID(i),
			Machine:   m,
			Compute:   costs.ComputePerValue * float64(ex.combineCount[i]),
			DiskRead:  ex.localBytes[i] + received[i],
			DiskWrite: ex.stateWrite[i],
		}
	}
	name := ex.jobName
	if name == "" {
		name = "propagation-tree-iteration"
	}
	return &engine.Job{
		Name: name,
		Stages: []*engine.Stage{
			{Name: "transfer", Tasks: transfer},
			{Name: "aggregate", Tasks: stage2},
			{Name: "combine", Tasks: combine},
		},
	}
}

// machinesByPod lists each pod's machines in ID order.
func machinesByPod(topo *cluster.Topology) map[int][]cluster.MachineID {
	out := make(map[int][]cluster.MachineID)
	for i := 0; i < topo.NumMachines(); i++ {
		m := cluster.MachineID(i)
		out[topo.Pod(m)] = append(out[topo.Pod(m)], m)
	}
	return out
}

// RunIterationsTree is RunIterations with tree aggregation.
func RunIterationsTree[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, iters int) (*State[V], engine.Metrics, error) {
	var total engine.Metrics
	for i := 0; i < iters; i++ {
		opt.jobName = iterName("propagation-tree", i)
		next, m, err := IterateTree(r, pg, pl, prog, st, opt)
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		st = next
	}
	return st, total, nil
}
