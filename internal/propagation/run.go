package propagation

import (
	"fmt"
	"slices"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// State carries the per-vertex values between iterations.
type State[V any] struct {
	// Values[v] is real vertex v's current value.
	Values []V
	// Virtual holds values of virtual vertices that have received data.
	Virtual map[graph.VertexID]V
	// sc is the reusable iteration workspace, handed from each state to its
	// successor so steady-state iterations allocate nothing per message. It
	// is created lazily, so states built by hand (tests, checkpoint restore)
	// work unchanged.
	sc *scratch[V]
}

// scratch is the pooled working memory of the propagation fast path: the
// per-partition emission logs and grouping buffers of the parallel Transfer
// phase, plus the shared bag slab the serial merge delivers into. Buffers
// keep their capacity across iterations; everything is re-sliced to zero
// length before reuse, never reallocated while sizes are steady.
type scratch[V any] struct {
	parts []partScratch[V]
	// bags[v] is real vertex v's received-value bag, a zero-copy window into
	// slab sized by the pre-merge counting pass; counts is that pass's
	// workspace (always all-zero between iterations).
	bags   [][]V
	counts []int32
	slab   []V
}

// partScratch is one partition's private transfer-phase workspace. Only the
// goroutine running that partition touches it.
type partScratch[V any] struct {
	// out is the partition's emission log.
	out []emission[V]
	// key/gval hold emissions pending local combination: gval in emission
	// order, key packing (dst<<32 | index-into-gval) so one unstable sort of
	// the uint64 keys groups by destination while preserving per-destination
	// emission order (indices are unique). Partition-local emission counts
	// stay far below 2^32 at the scales the 32-bit VertexID admits.
	key  []uint64
	gval []V
	// vals is the reused buffer handed to Program.Merge; programs must not
	// retain it (see Program.Merge).
	vals []V
	// raw/sorted cache the previous iteration's key sequence and its sorted
	// order. For programs whose emission pattern is value-independent (one
	// emission per edge — NR, TFL, ...), the sequence repeats every
	// iteration, so grouping costs one O(m) comparison instead of a sort.
	raw    []uint64
	sorted []uint64
}

func newScratch[V any](n, p int) *scratch[V] {
	return &scratch[V]{
		parts:  make([]partScratch[V], p),
		bags:   make([][]V, n),
		counts: make([]int32, n),
	}
}

// NewState initializes the state with Program.Init.
func NewState[V any](pg *storage.PartitionedGraph, prog Program[V]) *State[V] {
	st := &State[V]{
		Values:  make([]V, pg.G.NumVertices()),
		Virtual: make(map[graph.VertexID]V),
	}
	for v := range st.Values {
		st.Values[v] = prog.Init(graph.VertexID(v))
	}
	return st
}

// VirtualPartition assigns virtual vertex ids to partitions round-robin, so
// virtual combine work spreads across machines (§3.2).
func VirtualPartition(v graph.VertexID, p int) partition.PartID {
	return partition.PartID(int(v) % p)
}

// Iterate runs one propagation iteration (Algorithm 5) on the simulated
// cluster: the Transfer stage applies Program.Transfer to every out-edge of
// every partition in parallel, the Combine stage folds the received bags.
// It returns the next state and the iteration's metrics. The runner's clock
// and cumulative metrics advance.
func Iterate[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options) (*State[V], engine.Metrics, error) {
	return iterateNamed(r, pg, pl, prog, st, opt, "")
}

// iterateNamed is Iterate with a job label for trace output.
func iterateNamed[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, jobName string) (*State[V], engine.Metrics, error) {
	next, job, err := planIteration(r.Pool(), pg, pl, prog, st, opt, jobName)
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	m, err := r.Run(job)
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	return next, m, nil
}

// planIteration computes one iteration's semantics — the next state and the
// engine job carrying its exact I/O accounting — without running the job.
// The semantic computation never reads the simulated clock, so the plan is
// independent of when (or against what contention) the job later executes.
func planIteration[V any](pool *engine.Pool, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, jobName string) (*State[V], *engine.Job, error) {
	if len(st.Values) != pg.G.NumVertices() {
		return nil, nil, fmt.Errorf("propagation: state has %d values, graph has %d vertices", len(st.Values), pg.G.NumVertices())
	}
	if pl.NumPartitions() != pg.Part.P {
		return nil, nil, fmt.Errorf("propagation: placement covers %d partitions, graph has %d", pl.NumPartitions(), pg.Part.P)
	}
	ex := newExecution(pg, pl, prog, st, opt)
	ex.pool = pool
	ex.jobName = jobName
	ex.transferAll()
	next := ex.combineAll()
	return next, ex.buildJob(), nil
}

// PlanIterations runs iters iterations of the propagation semantics only,
// returning the per-iteration engine jobs (named "<prefix>-iter-001"...)
// without executing them on a runner, plus the final state. A multi-tenant
// job service replays these plans on a shared cluster: because planning is a
// pure function of graph, program and placement, the plan — and therefore
// the job's results — is identical however the jobs are later scheduled.
// pool parallelizes the per-partition compute bodies (nil = serial); results
// are bit-identical for every worker count.
func PlanIterations[V any](pool *engine.Pool, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options, iters int, prefix string) ([]*engine.Job, *State[V], error) {
	jobs := make([]*engine.Job, 0, iters)
	for i := 0; i < iters; i++ {
		next, job, err := planIteration(pool, pg, pl, prog, st, opt, iterName(prefix, i))
		if err != nil {
			return nil, nil, err
		}
		jobs = append(jobs, job)
		st = next
	}
	return jobs, st, nil
}

// execution holds the per-iteration working state: semantic bags plus the
// exact I/O accounting that becomes the engine job.
type execution[V any] struct {
	pg   *storage.PartitionedGraph
	pl   *partition.Placement
	prog Program[V]
	st   *State[V]
	opt  Options
	// pool runs the per-partition compute bodies on host cores; nil means
	// serial. Determinism: each partition writes only its own slots during
	// the parallel phase, and shared structures (bags, crossHook state) are
	// touched only by the serial merge that replays partitions in index
	// order — so results are bit-identical for every worker count.
	pool *engine.Pool

	n     int
	assoc bool
	// sc is the pooled workspace shared along the state chain; bags aliases
	// sc.bags. virtualBags holds virtual-vertex bags (lazily allocated — the
	// common VirtualVertices=0 case never touches it).
	sc          *scratch[V]
	bags        [][]V
	virtualBags map[graph.VertexID][]V
	// perPart[p] is partition p's ordered emission log from the parallel
	// transfer phase (aliasing sc.parts[p].out), replayed by mergeEmissions.
	perPart [][]emission[V]

	// Per-partition accounting.
	localBytes    []int64 // intermediates materialized inside the partition
	remoteBytes   []int64 // flat P×P [src*P+dst] network bytes
	receivedBytes []int64 // sum of inbound remote bytes per partition
	combineCount  []int64 // values folded in each partition's combine
	stateRead     []int64 // prior state bytes read by transfer tasks
	stateWrite    []int64 // next state bytes written by combine tasks
	// SkipStateIO suppresses state read/write accounting for chosen
	// vertices (used by cascaded propagation, §5.2). Nil means none.
	skipStateIO []bool
	// crossHook, when set, intercepts remote-bound values after local
	// combination: returning true claims the value (the caller appends it
	// to the destination bag and accounts its transfer), false leaves it
	// on the direct partition-to-partition path. Used by tree aggregation.
	crossHook func(srcPart int, dst graph.VertexID, v V) bool
	// jobName labels the engine job (and thus every trace event of the
	// iteration); multi-iteration drivers set per-iteration labels so a
	// traced run shows "propagation-iter-002" etc. as separate spans.
	jobName string
}

func newExecution[V any](pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options) *execution[V] {
	p := pg.Part.P
	n := pg.G.NumVertices()
	if st.sc == nil || len(st.sc.counts) != n || len(st.sc.parts) != p {
		st.sc = newScratch[V](n, p)
	}
	ex := &execution[V]{
		pg: pg, pl: pl, prog: prog, st: st, opt: opt,
		n:             n,
		assoc:         prog.Associative(),
		sc:            st.sc,
		bags:          st.sc.bags,
		localBytes:    make([]int64, p),
		remoteBytes:   make([]int64, p*p),
		receivedBytes: make([]int64, p),
		combineCount:  make([]int64, p),
		stateRead:     make([]int64, p),
		stateWrite:    make([]int64, p),
	}
	return ex
}

// partOf resolves a destination (real or virtual) to its partition.
func (ex *execution[V]) partOf(dst graph.VertexID) partition.PartID {
	if int(dst) < ex.n {
		return ex.pg.Part.Assign[dst]
	}
	return VirtualPartition(dst, ex.pg.Part.P)
}

// emitKind classifies a recorded emission for the deterministic merge.
type emitKind uint8

const (
	// emitFused: same-partition destination with all-local inputs under
	// local propagation — consumed in memory, no I/O charged.
	emitFused emitKind = iota
	// emitLocal: same-partition destination materialized to local disk.
	emitLocal
	// emitRemote: cross-partition destination (crossHook candidate).
	emitRemote
)

// emission is one entry of a partition's transfer output log: the exact
// sequence of values the serial executor would have delivered, with the
// classification needed to charge its I/O during the merge.
type emission[V any] struct {
	dst  graph.VertexID
	val  V
	kind emitKind
	q    int // destination partition (emitRemote only)
}

// transferAll runs the Transfer stage semantics for every partition —
// in parallel over the runner's worker pool — then merges the per-partition
// emission logs in partition-index order, reproducing the serial delivery
// order exactly.
func (ex *execution[V]) transferAll() {
	ex.perPart = make([][]emission[V], len(ex.pg.Parts))
	ex.pool.ForEach(len(ex.pg.Parts), ex.transferPart)
	ex.mergeEmissions()
}

// transferPart runs one partition's Transfer calls and local combination.
// It writes only partition-indexed slots (perPart[p], stateRead[p], its
// partScratch), so concurrent invocations for different partitions never
// share state.
func (ex *execution[V]) transferPart(p int) {
	pi := ex.pg.Parts[p]
	ps := &ex.sc.parts[p]
	ps.out = ps.out[:0]
	// grouping: pending emissions are held back for local combination —
	// remote-bound groups shrink the transfer, same-partition groups
	// headed to non-fusable vertices shrink the materialized intermediates
	// (one merged value per destination instead of one per edge).
	grouping := ex.assoc && ex.opt.LocalCombination
	if grouping {
		ps.key = ps.key[:0]
		ps.gval = ps.gval[:0]
	}
	vt, hasVT := any(ex.prog).(VertexTransferrer[V])
	emit := func(d graph.VertexID, v V) {
		ex.record(pi, ps, grouping, d, v)
	}
	for _, u := range pi.Vertices {
		ex.stateRead[p] += ex.prog.Bytes(ex.st.Values[u])
		val := ex.st.Values[u]
		if hasVT {
			vt.TransferVertex(u, val, emit)
		}
		for _, dst := range ex.pg.G.Neighbors(u) {
			ex.prog.Transfer(u, val, dst, emit)
		}
	}
	if grouping {
		ex.flushGroups(p, ps)
	}
	ex.perPart[p] = ps.out
}

// record classifies one emitted value into the partition's emission log (or
// its local-combination group).
func (ex *execution[V]) record(pi *storage.PartInfo, ps *partScratch[V], grouping bool, dst graph.VertexID, v V) {
	if int(dst) >= ex.n+ex.opt.VirtualVertices || int(dst) < 0 {
		panic(fmt.Sprintf("propagation: emission to vertex %d outside real+virtual space", dst))
	}
	q := ex.partOf(dst)
	if int(q) == int(pi.ID) {
		// Same-partition emission: free when the destination's inputs are
		// entirely local (no cross in-edge) and local propagation is on;
		// otherwise materialized to local disk for the Combine stage —
		// after per-destination merging when local combination applies.
		// Same-partition destinations are owned by this partition, so their
		// bag-size counts can be bumped here, in the parallel phase, without
		// racing other partitions (remote destinations are counted by the
		// serial merge).
		fusable := int(dst) < ex.n && !pi.HasCrossInEdge(dst)
		if ex.opt.LocalPropagation && fusable {
			ex.sc.counts[dst]++
			ps.out = append(ps.out, emission[V]{dst: dst, val: v, kind: emitFused})
			return
		}
		if grouping {
			ps.key = append(ps.key, uint64(dst)<<32|uint64(len(ps.gval)))
			ps.gval = append(ps.gval, v)
			return
		}
		if int(dst) < ex.n {
			ex.sc.counts[dst]++
		}
		ps.out = append(ps.out, emission[V]{dst: dst, val: v, kind: emitLocal})
		return
	}
	if grouping {
		ps.key = append(ps.key, uint64(dst)<<32|uint64(len(ps.gval)))
		ps.gval = append(ps.gval, v)
		return
	}
	ps.out = append(ps.out, emission[V]{dst: dst, val: v, kind: emitRemote, q: int(q)})
}

// flushGroups merges the held-back emissions (local combination) into the
// log in sorted destination order. Sorting the packed keys groups the log by
// destination (ascending) while keeping each destination's values in
// emission order — exactly the grouping the map-based implementation
// produced, without a hash map on the per-emission path.
func (ex *execution[V]) flushGroups(p int, ps *partScratch[V]) {
	keys := ps.key
	if slices.Equal(ps.key, ps.raw) {
		keys = ps.sorted
	} else {
		ps.raw = append(ps.raw[:0], ps.key...)
		slices.Sort(ps.key)
		ps.sorted = append(ps.sorted[:0], ps.key...)
	}
	for i := 0; i < len(keys); {
		d := graph.VertexID(keys[i] >> 32)
		ps.vals = ps.vals[:0]
		j := i
		for ; j < len(keys) && graph.VertexID(keys[j]>>32) == d; j++ {
			ps.vals = append(ps.vals, ps.gval[uint32(keys[j])])
		}
		i = j
		merged := ps.vals[0]
		if len(ps.vals) > 1 {
			merged = ex.prog.Merge(d, ps.vals)
		}
		q := ex.partOf(d)
		if int(q) == p {
			if int(d) < ex.n {
				ex.sc.counts[d]++
			}
			ps.out = append(ps.out, emission[V]{dst: d, val: merged, kind: emitLocal})
		} else {
			ps.out = append(ps.out, emission[V]{dst: d, val: merged, kind: emitRemote, q: int(q)})
		}
	}
}

// mergeEmissions replays the per-partition logs in partition-index order,
// delivering values into the shared bags and charging I/O. This is the
// serial step that pins down ordering: bags receive values in exactly the
// sequence the serial executor produced, so order-sensitive combines and
// float summations stay bit-identical for every worker count.
//
// Before replaying, a counting pass sizes every real vertex's bag as a
// window into one shared slab, so delivery appends never allocate. The
// counts are an upper bound (crossHook may claim remote values), which also
// leaves room for the per-destination merged values tree aggregation appends
// after the replay.
func (ex *execution[V]) mergeEmissions() {
	sc := ex.sc
	// Same-partition deliveries were counted during the parallel phase;
	// only the (post-combination, much smaller) remote logs remain.
	for p := range ex.perPart {
		for i := range ex.perPart[p] {
			e := &ex.perPart[p][i]
			if e.kind == emitRemote && int(e.dst) < ex.n {
				sc.counts[e.dst]++
			}
		}
	}
	total := 0
	for v := range sc.bags {
		total += int(sc.counts[v])
	}
	if cap(sc.slab) < total {
		sc.slab = make([]V, total)
	}
	slab := sc.slab[:cap(sc.slab)]
	off := 0
	for v := range sc.bags {
		c := int(sc.counts[v])
		sc.bags[v] = slab[off : off : off+c]
		off += c
		sc.counts[v] = 0
	}
	for p := range ex.perPart {
		for _, e := range ex.perPart[p] {
			switch e.kind {
			case emitFused:
				ex.appendBag(e.dst, e.val)
			case emitLocal:
				ex.localBytes[p] += ex.prog.Bytes(e.val)
				ex.appendBag(e.dst, e.val)
			case emitRemote:
				if ex.crossHook != nil && ex.crossHook(p, e.dst, e.val) {
					continue
				}
				ex.remoteBytes[p*ex.pg.Part.P+e.q] += ex.prog.Bytes(e.val)
				ex.appendBag(e.dst, e.val)
			}
		}
	}
}

func (ex *execution[V]) appendBag(dst graph.VertexID, v V) {
	if int(dst) < ex.n {
		ex.bags[dst] = append(ex.bags[dst], v)
	} else {
		if ex.virtualBags == nil {
			ex.virtualBags = make(map[graph.VertexID][]V)
		}
		ex.virtualBags[dst] = append(ex.virtualBags[dst], v)
	}
}

// combineAll runs the Combine stage semantics, producing the next state and
// the combine-side accounting.
func (ex *execution[V]) combineAll() *State[V] {
	next := &State[V]{
		Values:  make([]V, ex.n),
		Virtual: make(map[graph.VertexID]V, len(ex.virtualBags)),
		sc:      ex.sc,
	}
	// Real vertices combine in parallel: partitions own disjoint vertex
	// sets and disjoint accounting slots, and the bags are read-only here.
	ex.pool.ForEach(len(ex.pg.Parts), func(p int) {
		pi := ex.pg.Parts[p]
		for _, v := range pi.Vertices {
			bag := ex.bags[v]
			next.Values[v] = ex.prog.Combine(v, ex.st.Values[v], bag)
			ex.combineCount[p] += int64(len(bag)) + 1
			if ex.skipStateIO == nil || !ex.skipStateIO[v] {
				ex.stateWrite[p] += ex.prog.Bytes(next.Values[v])
			} else {
				// Cascaded vertices skip both the prior-state read and
				// the next-state write for this iteration.
				ex.stateRead[p] -= ex.prog.Bytes(ex.st.Values[v])
			}
		}
	})
	// Virtual vertices: combined in their owning partition with a zero
	// previous value on first receipt.
	dsts := make([]graph.VertexID, 0, len(ex.virtualBags))
	for d := range ex.virtualBags {
		dsts = append(dsts, d)
	}
	slices.Sort(dsts)
	for _, d := range dsts {
		q := int(ex.partOf(d))
		var prev V
		if old, ok := ex.st.Virtual[d]; ok {
			prev = old
		}
		bag := ex.virtualBags[d]
		next.Virtual[d] = ex.prog.Combine(d, prev, bag)
		ex.combineCount[q] += int64(len(bag)) + 1
		ex.stateWrite[q] += ex.prog.Bytes(next.Virtual[d])
	}
	// Carry forward untouched virtual values.
	for d, v := range ex.st.Virtual {
		if _, ok := next.Virtual[d]; !ok {
			next.Virtual[d] = v
		}
	}
	return next
}

// buildJob converts the accounting into a two-stage engine job.
func (ex *execution[V]) buildJob() *engine.Job {
	p := ex.pg.Part.P
	costs := ex.opt.costs()
	transfer := make([]*engine.Task, p)
	combine := make([]*engine.Task, p)
	for i := 0; i < p; i++ {
		for q := 0; q < p; q++ {
			ex.receivedBytes[q] += ex.remoteBytes[i*p+q]
		}
	}
	for i := 0; i < p; i++ {
		pi := ex.pg.Parts[i]
		m := ex.pl.MachineOf[i]
		var edges int64
		for _, v := range pi.Vertices {
			edges += int64(ex.pg.G.OutDegree(v))
		}
		var outs []engine.Output
		for q := 0; q < p; q++ {
			if b := ex.remoteBytes[i*p+q]; b > 0 {
				outs = append(outs, engine.Output{DstTask: q, Bytes: b})
			}
		}
		transfer[i] = &engine.Task{
			Name:      fmt.Sprintf("transfer-p%d", i),
			Kind:      engine.KindTransfer,
			Part:      partition.PartID(i),
			Machine:   m,
			Compute:   costs.ComputePerEdge * float64(edges),
			DiskRead:  pi.Bytes + ex.stateRead[i],
			DiskWrite: ex.localBytes[i],
			Outputs:   outs,
		}
		combine[i] = &engine.Task{
			Name:    fmt.Sprintf("combine-p%d", i),
			Kind:    engine.KindCombine,
			Part:    partition.PartID(i),
			Machine: m,
			Compute: costs.ComputePerValue * float64(ex.combineCount[i]),
			// The combine input is the locally materialized intermediates
			// plus the remote arrivals staged on local disk ("all the
			// intermediate results required for the Combine stage is
			// stored on the same machine", §5.1).
			DiskRead:  ex.localBytes[i] + ex.receivedBytes[i],
			DiskWrite: ex.stateWrite[i],
		}
	}
	name := ex.jobName
	if name == "" {
		name = "propagation-iteration"
	}
	return &engine.Job{
		Name:   name,
		Stages: []*engine.Stage{{Name: "transfer", Tasks: transfer}, {Name: "combine", Tasks: combine}},
	}
}
