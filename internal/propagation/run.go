package propagation

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// State carries the per-vertex values between iterations.
type State[V any] struct {
	// Values[v] is real vertex v's current value.
	Values []V
	// Virtual holds values of virtual vertices that have received data.
	Virtual map[graph.VertexID]V
}

// NewState initializes the state with Program.Init.
func NewState[V any](pg *storage.PartitionedGraph, prog Program[V]) *State[V] {
	st := &State[V]{
		Values:  make([]V, pg.G.NumVertices()),
		Virtual: make(map[graph.VertexID]V),
	}
	for v := range st.Values {
		st.Values[v] = prog.Init(graph.VertexID(v))
	}
	return st
}

// VirtualPartition assigns virtual vertex ids to partitions round-robin, so
// virtual combine work spreads across machines (§3.2).
func VirtualPartition(v graph.VertexID, p int) partition.PartID {
	return partition.PartID(int(v) % p)
}

// Iterate runs one propagation iteration (Algorithm 5) on the simulated
// cluster: the Transfer stage applies Program.Transfer to every out-edge of
// every partition in parallel, the Combine stage folds the received bags.
// It returns the next state and the iteration's metrics. The runner's clock
// and cumulative metrics advance.
func Iterate[V any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options) (*State[V], engine.Metrics, error) {
	if len(st.Values) != pg.G.NumVertices() {
		return nil, engine.Metrics{}, fmt.Errorf("propagation: state has %d values, graph has %d vertices", len(st.Values), pg.G.NumVertices())
	}
	if pl.NumPartitions() != pg.Part.P {
		return nil, engine.Metrics{}, fmt.Errorf("propagation: placement covers %d partitions, graph has %d", pl.NumPartitions(), pg.Part.P)
	}
	ex := newExecution(pg, pl, prog, st, opt)
	ex.transferAll()
	next := ex.combineAll()
	job := ex.buildJob()
	m, err := r.Run(job)
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	return next, m, nil
}

// execution holds the per-iteration working state: semantic bags plus the
// exact I/O accounting that becomes the engine job.
type execution[V any] struct {
	pg   *storage.PartitionedGraph
	pl   *partition.Placement
	prog Program[V]
	st   *State[V]
	opt  Options

	n     int
	assoc bool
	// bags[v] is the list of values real vertex v received; virtualBags
	// holds the same for virtual vertices.
	bags        [][]V
	virtualBags map[graph.VertexID][]V

	// Per-partition accounting.
	localBytes    []int64         // intermediates materialized inside the partition
	remoteBytes   []map[int]int64 // [src][dst] network bytes
	receivedBytes []int64         // sum of inbound remote bytes per partition
	combineCount  []int64         // values folded in each partition's combine
	stateRead     []int64         // prior state bytes read by transfer tasks
	stateWrite    []int64         // next state bytes written by combine tasks
	// SkipStateIO suppresses state read/write accounting for chosen
	// vertices (used by cascaded propagation, §5.2). Nil means none.
	skipStateIO []bool
	// crossHook, when set, intercepts remote-bound values after local
	// combination: returning true claims the value (the caller appends it
	// to the destination bag and accounts its transfer), false leaves it
	// on the direct partition-to-partition path. Used by tree aggregation.
	crossHook func(srcPart int, dst graph.VertexID, v V) bool
}

func newExecution[V any](pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[V], st *State[V], opt Options) *execution[V] {
	p := pg.Part.P
	ex := &execution[V]{
		pg: pg, pl: pl, prog: prog, st: st, opt: opt,
		n:             pg.G.NumVertices(),
		assoc:         prog.Associative(),
		bags:          make([][]V, pg.G.NumVertices()),
		virtualBags:   make(map[graph.VertexID][]V),
		localBytes:    make([]int64, p),
		remoteBytes:   make([]map[int]int64, p),
		receivedBytes: make([]int64, p),
		combineCount:  make([]int64, p),
		stateRead:     make([]int64, p),
		stateWrite:    make([]int64, p),
	}
	for i := range ex.remoteBytes {
		ex.remoteBytes[i] = make(map[int]int64)
	}
	return ex
}

// partOf resolves a destination (real or virtual) to its partition.
func (ex *execution[V]) partOf(dst graph.VertexID) partition.PartID {
	if int(dst) < ex.n {
		return ex.pg.Part.Assign[dst]
	}
	return VirtualPartition(dst, ex.pg.Part.P)
}

// transferAll runs the Transfer stage semantics for every partition and
// accumulates the accounting.
func (ex *execution[V]) transferAll() {
	useLocalComb := ex.assoc && ex.opt.LocalCombination
	for p, pi := range ex.pg.Parts {
		// Pending emissions grouped by destination for local combination:
		// remote-bound groups shrink the transfer, same-partition groups
		// headed to non-fusable vertices shrink the materialized
		// intermediates (one merged value per destination instead of one
		// per edge).
		var groups map[graph.VertexID][]V
		if useLocalComb {
			groups = make(map[graph.VertexID][]V)
		}
		vt, hasVT := any(ex.prog).(VertexTransferrer[V])
		for _, u := range pi.Vertices {
			ex.stateRead[p] += ex.prog.Bytes(ex.st.Values[u])
			val := ex.st.Values[u]
			emit := func(d graph.VertexID, v V) {
				ex.emit(p, pi, groups, d, v)
			}
			if hasVT {
				vt.TransferVertex(u, val, emit)
			}
			for _, dst := range ex.pg.G.Neighbors(u) {
				ex.prog.Transfer(u, val, dst, emit)
			}
		}
		if useLocalComb {
			ex.flushGroups(p, groups)
		}
	}
}

// emit classifies one emitted value and records its cost.
func (ex *execution[V]) emit(p int, pi *storage.PartInfo, groups map[graph.VertexID][]V, dst graph.VertexID, v V) {
	if int(dst) >= ex.n+ex.opt.VirtualVertices || int(dst) < 0 {
		panic(fmt.Sprintf("propagation: emission to vertex %d outside real+virtual space", dst))
	}
	q := ex.partOf(dst)
	if int(q) == int(pi.ID) {
		// Same-partition emission: free when the destination's inputs are
		// entirely local (no cross in-edge) and local propagation is on;
		// otherwise materialized to local disk for the Combine stage —
		// after per-destination merging when local combination applies.
		fusable := int(dst) < ex.n && !pi.HasCrossInEdge(dst)
		if ex.opt.LocalPropagation && fusable {
			ex.appendBag(dst, v)
			return
		}
		if groups != nil {
			groups[dst] = append(groups[dst], v)
			return
		}
		ex.localBytes[p] += ex.prog.Bytes(v)
		ex.appendBag(dst, v)
		return
	}
	if groups != nil {
		groups[dst] = append(groups[dst], v)
		return
	}
	if ex.crossHook != nil && ex.crossHook(p, dst, v) {
		return
	}
	ex.remoteBytes[p][int(q)] += ex.prog.Bytes(v)
	ex.appendBag(dst, v)
}

// flushGroups merges grouped remote emissions (local combination) and
// charges the merged sizes.
func (ex *execution[V]) flushGroups(p int, groups map[graph.VertexID][]V) {
	dsts := make([]graph.VertexID, 0, len(groups))
	for d := range groups {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		vals := groups[d]
		merged := vals[0]
		if len(vals) > 1 {
			merged = ex.prog.Merge(d, vals)
		}
		q := ex.partOf(d)
		if int(q) == p {
			ex.localBytes[p] += ex.prog.Bytes(merged)
		} else {
			if ex.crossHook != nil && ex.crossHook(p, d, merged) {
				continue
			}
			ex.remoteBytes[p][int(q)] += ex.prog.Bytes(merged)
		}
		ex.appendBag(d, merged)
	}
}

func (ex *execution[V]) appendBag(dst graph.VertexID, v V) {
	if int(dst) < ex.n {
		ex.bags[dst] = append(ex.bags[dst], v)
	} else {
		ex.virtualBags[dst] = append(ex.virtualBags[dst], v)
	}
}

// combineAll runs the Combine stage semantics, producing the next state and
// the combine-side accounting.
func (ex *execution[V]) combineAll() *State[V] {
	next := &State[V]{
		Values:  make([]V, ex.n),
		Virtual: make(map[graph.VertexID]V, len(ex.virtualBags)),
	}
	for p, pi := range ex.pg.Parts {
		for _, v := range pi.Vertices {
			bag := ex.bags[v]
			next.Values[v] = ex.prog.Combine(v, ex.st.Values[v], bag)
			ex.combineCount[p] += int64(len(bag)) + 1
			if ex.skipStateIO == nil || !ex.skipStateIO[v] {
				ex.stateWrite[p] += ex.prog.Bytes(next.Values[v])
			} else {
				// Cascaded vertices skip both the prior-state read and
				// the next-state write for this iteration.
				ex.stateRead[p] -= ex.prog.Bytes(ex.st.Values[v])
			}
		}
	}
	// Virtual vertices: combined in their owning partition with a zero
	// previous value on first receipt.
	dsts := make([]graph.VertexID, 0, len(ex.virtualBags))
	for d := range ex.virtualBags {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		q := int(ex.partOf(d))
		var prev V
		if old, ok := ex.st.Virtual[d]; ok {
			prev = old
		}
		bag := ex.virtualBags[d]
		next.Virtual[d] = ex.prog.Combine(d, prev, bag)
		ex.combineCount[q] += int64(len(bag)) + 1
		ex.stateWrite[q] += ex.prog.Bytes(next.Virtual[d])
	}
	// Carry forward untouched virtual values.
	for d, v := range ex.st.Virtual {
		if _, ok := next.Virtual[d]; !ok {
			next.Virtual[d] = v
		}
	}
	return next
}

// buildJob converts the accounting into a two-stage engine job.
func (ex *execution[V]) buildJob() *engine.Job {
	p := ex.pg.Part.P
	costs := ex.opt.costs()
	transfer := make([]*engine.Task, p)
	combine := make([]*engine.Task, p)
	for _, by := range ex.remoteBytes {
		for q, b := range by {
			ex.receivedBytes[q] += b
		}
	}
	for i := 0; i < p; i++ {
		pi := ex.pg.Parts[i]
		m := ex.pl.MachineOf[i]
		var edges int64
		for _, v := range pi.Vertices {
			edges += int64(ex.pg.G.OutDegree(v))
		}
		var outs []engine.Output
		qs := make([]int, 0, len(ex.remoteBytes[i]))
		for q := range ex.remoteBytes[i] {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		for _, q := range qs {
			if b := ex.remoteBytes[i][q]; b > 0 {
				outs = append(outs, engine.Output{DstTask: q, Bytes: b})
			}
		}
		transfer[i] = &engine.Task{
			Name:      fmt.Sprintf("transfer-p%d", i),
			Kind:      engine.KindTransfer,
			Part:      partition.PartID(i),
			Machine:   m,
			Compute:   costs.ComputePerEdge * float64(edges),
			DiskRead:  pi.Bytes + ex.stateRead[i],
			DiskWrite: ex.localBytes[i],
			Outputs:   outs,
		}
		combine[i] = &engine.Task{
			Name:    fmt.Sprintf("combine-p%d", i),
			Kind:    engine.KindCombine,
			Part:    partition.PartID(i),
			Machine: m,
			Compute: costs.ComputePerValue * float64(ex.combineCount[i]),
			// The combine input is the locally materialized intermediates
			// plus the remote arrivals staged on local disk ("all the
			// intermediate results required for the Combine stage is
			// stored on the same machine", §5.1).
			DiskRead:  ex.localBytes[i] + ex.receivedBytes[i],
			DiskWrite: ex.stateWrite[i],
		}
	}
	return &engine.Job{
		Name:   "propagation-iteration",
		Stages: []*engine.Stage{{Name: "transfer", Tasks: transfer}, {Name: "combine", Tasks: combine}},
	}
}
