// Package propagation implements Surfer's propagation primitive (§3.2, §5):
// iterative information transfer along edges, expressed by two user-defined
// functions — transfer (how a value moves along an edge) and combine (how a
// vertex folds the values it received). The executor runs each iteration as
// a Transfer stage and a Combine stage on the simulated cluster, applying
// the paper's automatic optimizations:
//
//   - local propagation (§5.1): values destined to inner vertices of the
//     same partition are consumed in memory, never materialized;
//   - local combination (§5.1): when combine is associative, values leaving
//     a partition for the same remote vertex are merged before transfer;
//   - cascaded propagation (§5.2): in multi-iteration runs, vertices whose
//     k-hop in-neighborhood stays inside the partition skip intermediate
//     state I/O for k iterations.
//
// The optimizations never change results — only network traffic, disk
// traffic and time. The executor computes exact semantics and exact byte
// counts together.
package propagation

import (
	"repro/internal/graph"
)

// Emit delivers a value to a destination vertex during Transfer. dst may be
// a virtual vertex (ID >= NumVertices) when the run declares virtual space.
type Emit[V any] func(dst graph.VertexID, val V)

// Program is the user-defined logic of a propagation application.
//
// Transfer is called once for every out-edge (src, dst) of the graph with
// src's current value; it may emit zero or more values to dst (the common
// case is exactly one, matching the paper's transfer: (v, v') -> (v',
// value)), and may also emit to virtual vertices to express vertex-oriented
// tasks (§3.2 "virtual vertex").
//
// Combine folds the bag of values a vertex received into the vertex's next
// value; prev is the vertex's value from the previous iteration. Combine is
// called for every real vertex each iteration (with an empty bag when
// nothing arrived) and for every virtual vertex that received values.
//
// The values slices passed to Combine and Merge are windows into pooled
// buffers the executor reuses across iterations: implementations may read
// them freely during the call (and keep the element values, which are
// copies) but must not retain the slice itself.
type Program[V any] interface {
	// Init returns vertex v's value before the first iteration.
	Init(v graph.VertexID) V
	// Transfer moves information along the edge (src, dst).
	Transfer(src graph.VertexID, srcVal V, dst graph.VertexID, emit Emit[V])
	// Combine folds received values into the vertex's next value.
	Combine(v graph.VertexID, prev V, values []V) V
	// Bytes reports the serialized size of a value, for I/O accounting.
	Bytes(v V) int64
	// Associative reports whether Merge may pre-combine values headed to
	// the same destination (enables local combination).
	Associative() bool
	// Merge pre-combines values headed to the same destination vertex
	// within one source partition. Only called when Associative() is
	// true; non-associative programs may panic.
	Merge(dst graph.VertexID, values []V) V
}

// VertexTransferrer is an optional extension for vertex-oriented tasks
// (§3.2): TransferVertex is called exactly once per vertex, before its
// edges, and typically emits along "virtual edges" to virtual vertices —
// how Surfer emulates MapReduce-style vertex aggregation (e.g. VDD).
type VertexTransferrer[V any] interface {
	TransferVertex(v graph.VertexID, val V, emit Emit[V])
}

// NonAssociative is a mixin providing the two methods of Program that
// non-associative programs do not support.
type NonAssociative[V any] struct{}

// Associative reports false.
func (NonAssociative[V]) Associative() bool { return false }

// Merge panics: local combination must not be applied.
func (NonAssociative[V]) Merge(graph.VertexID, []V) V {
	panic("propagation: Merge called on a non-associative program")
}

// CostParams sets the CPU cost constants of the execution model.
type CostParams struct {
	// ComputePerEdge is seconds per transfer call (one per out-edge).
	ComputePerEdge float64
	// ComputePerValue is seconds per value folded in a combine call.
	ComputePerValue float64
}

// DefaultCostParams makes the simulated system I/O-bound, like the paper's
// deployment: the per-edge CPU cost of an optimized C++ kernel is tens of
// nanoseconds, far below the disk and network cost of moving the same edge's
// data, so byte volumes — not CPU — decide the experiment outcomes.
func DefaultCostParams() CostParams {
	return CostParams{ComputePerEdge: 20e-9, ComputePerValue: 10e-9}
}

// Options selects the optimization level and execution parameters of a run.
// The four optimization levels of §6.3 map to:
//
//	O1: LocalPropagation=false, LocalCombination=false, ParMetis placement
//	O2: LocalPropagation=false, LocalCombination=false, sketch placement
//	O3: both true, ParMetis placement
//	O4: both true, sketch placement
//
// (Placement is chosen by the caller when building the engine runner.)
type Options struct {
	LocalPropagation bool
	LocalCombination bool
	// VirtualVertices is the size of the virtual vertex ID space
	// [NumVertices, NumVertices+VirtualVertices) available to Transfer.
	VirtualVertices int
	// Costs are the CPU cost constants; zero value means defaults.
	Costs CostParams
	// jobName labels the iteration's engine job in trace output; set by
	// the multi-iteration drivers, empty for single Iterate calls.
	jobName string
}

func (o Options) costs() CostParams {
	if o.Costs.ComputePerEdge == 0 && o.Costs.ComputePerValue == 0 {
		return DefaultCostParams()
	}
	return o.Costs
}
