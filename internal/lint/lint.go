// Package lint is surfer-lint: a static analyzer that proves the
// determinism contract (DESIGN.md "Parallel execution & the determinism
// contract") at review time instead of replay time. The engine's guarantee —
// results and traces bit-identical across worker counts — holds only if
// every source of nondeterminism is kept out of the deterministic packages:
// wall clock, unseeded randomness, map iteration order feeding ordered
// output, and ad-hoc concurrency outside the sanctioned worker pool. The
// equivalence and chaos tests catch violations dynamically and late; this
// analyzer catches the same classes syntactically, on every commit.
//
// The analyzer is stdlib-only (go/parser, go/ast, go/token — no go/types,
// no external modules) and therefore purely syntactic: it resolves local
// declarations within a function to decide whether a range expression is a
// map, and skips expressions it cannot resolve rather than guessing. Each
// check has a stable ID (SL001..SL004, see docs/LINTS.md); a finding on a
// legitimate line is suppressed explicitly with a
//
//	//lint:allow SLnnn reason
//
// pragma on the offending line or the line directly above it. The reason is
// mandatory — a bare pragma suppresses nothing — so every suppression is
// auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Check IDs. Stable: tests, pragmas and docs refer to them by name.
const (
	// IDEntropy is SL001: wall-clock / environment / global-randomness
	// calls in simulation packages.
	IDEntropy = "SL001"
	// IDMapOrder is SL002: range over a map emitting into ordered output
	// without a subsequent sort — the PR 1 nrMR.Map bug class.
	IDMapOrder = "SL002"
	// IDConcurrency is SL003: go statements or multi-case selects outside
	// the sanctioned worker pool.
	IDConcurrency = "SL003"
	// IDDocSync is SL004: trace event-kind constants missing from
	// docs/METRICS.md.
	IDDocSync = "SL004"
)

// Finding is one analyzer report. File is slash-separated and relative to
// the configured root.
type Finding struct {
	ID         string `json:"id"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason is the pragma justification when Suppressed.
	Reason string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.ID, f.Message)
}

// Config scopes the analysis.
type Config struct {
	// Root is the module root; findings are reported relative to it.
	Root string
	// DeterministicDirs are slash-relative directory prefixes under Root
	// holding the deterministic packages: the full contract (SL001, SL002,
	// SL003) applies.
	DeterministicDirs []string
	// SupportingDirs are prefixes for packages that feed the deterministic
	// core seed-derived state (graphs, partitions, replicas, benchmarks):
	// only the entropy check (SL001) applies — their outputs must be
	// reproducible from seeds, but they run outside the event loop.
	SupportingDirs []string
	// SanctionedConcurrency lists slash-relative files allowed to spawn
	// goroutines and select: the engine's worker pool.
	SanctionedConcurrency []string
	// TraceDir is the slash-relative directory of the trace package, and
	// MetricsDoc the document every event-kind constant must appear in.
	// Either empty disables SL004.
	TraceDir   string
	MetricsDoc string
}

// DefaultConfig returns the repository's real scoping: the eight
// deterministic packages from DESIGN.md, the seed-driven supporting
// packages, and the engine worker pool as the one sanctioned concurrency
// site. cmd/ and examples/ are process-boundary drivers (flag parsing,
// wall-clock progress output) and are not scanned.
func DefaultConfig(root string) Config {
	return Config{
		Root: root,
		DeterministicDirs: []string{
			"internal/engine",
			"internal/propagation",
			"internal/mapreduce",
			"internal/scheduler",
			"internal/cluster",
			"internal/apps",
			"internal/fault",
			"internal/trace",
		},
		SupportingDirs: []string{
			"internal/graph",
			"internal/partition",
			"internal/storage",
			"internal/core",
			"internal/bench",
			"internal/lint",
			".", // the root package (surfer.go, workloads.go)
		},
		SanctionedConcurrency: []string{"internal/engine/parallel.go"},
		TraceDir:              "internal/trace",
		MetricsDoc:            "docs/METRICS.md",
	}
}

// tier is how much of the contract applies to a file.
type tier int

const (
	tierExempt tier = iota
	tierSupporting
	tierDeterministic
)

func (c *Config) tierOf(relDir string) tier {
	for _, d := range c.DeterministicDirs {
		if relDir == d || strings.HasPrefix(relDir, d+"/") {
			return tierDeterministic
		}
	}
	for _, d := range c.SupportingDirs {
		if relDir == d || (d != "." && strings.HasPrefix(relDir, d+"/")) {
			return tierSupporting
		}
	}
	return tierExempt
}

// Run analyzes the packages matched by patterns under cfg.Root and returns
// all findings (suppressed ones included, flagged), sorted by position.
// Patterns are slash-relative to Root: "./..." (or "...") walks everything,
// "dir/..." walks a subtree, a plain directory analyzes that one package.
func Run(cfg Config, patterns []string) ([]Finding, error) {
	dirs, err := expandPatterns(cfg.Root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var findings []Finding
	for _, dir := range dirs {
		rel := relSlash(cfg.Root, dir)
		t := cfg.tierOf(rel)
		if t == tierExempt {
			continue
		}
		names, err := goSources(dir)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("surfer-lint: %w", err)
			}
			relFile := relSlash(cfg.Root, path)
			fileFindings := analyzeFile(fset, file, relFile, t, cfg.sanctioned(relFile))
			suppress(fset, file, fileFindings)
			findings = append(findings, fileFindings...)
		}
	}
	if cfg.TraceDir != "" && cfg.MetricsDoc != "" {
		docFindings, err := checkDocSync(cfg, fset)
		if err != nil {
			return nil, err
		}
		findings = append(findings, docFindings...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.ID < b.ID
	})
	return findings, nil
}

// Unsuppressed filters to the findings that fail the build.
func Unsuppressed(all []Finding) []Finding {
	var out []Finding
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

func (c *Config) sanctioned(relFile string) bool {
	for _, s := range c.SanctionedConcurrency {
		if relFile == s {
			return true
		}
	}
	return false
}

// analyzeFile runs the per-file checks appropriate to the tier. Test files
// are exempt from the whole contract: they may time, randomize and spawn
// freely (the determinism suite itself races worker pools against each
// other).
func analyzeFile(fset *token.FileSet, file *ast.File, relFile string, t tier, sanctioned bool) []Finding {
	if strings.HasSuffix(relFile, "_test.go") {
		return nil
	}
	var findings []Finding
	add := func(pos token.Pos, id, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, Finding{
			ID:      id,
			File:    relFile,
			Line:    p.Line,
			Col:     p.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	checkEntropy(file, add)
	if t == tierDeterministic {
		checkMapRangeEmission(file, add)
		if !sanctioned {
			checkConcurrency(file, add)
		}
	}
	return findings
}

// pragmaRE matches //lint:allow SLnnn reason — the reason is mandatory, so
// suppressions are self-documenting.
var pragmaRE = regexp.MustCompile(`^//lint:allow\s+(SL\d{3})\s+(\S.*)$`)

// suppress marks findings covered by a pragma on the same line or the line
// directly above.
func suppress(fset *token.FileSet, file *ast.File, findings []Finding) {
	type allow struct {
		id     string
		reason string
	}
	byLine := map[int][]allow{}
	for _, group := range file.Comments {
		for _, c := range group.List {
			m := pragmaRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			byLine[line] = append(byLine[line], allow{id: m[1], reason: strings.TrimSpace(m[2])})
		}
	}
	if len(byLine) == 0 {
		return
	}
	for i := range findings {
		for _, line := range []int{findings[i].Line, findings[i].Line - 1} {
			for _, a := range byLine[line] {
				if a.id == findings[i].ID {
					findings[i].Suppressed = true
					findings[i].Reason = a.reason
				}
			}
		}
	}
}

// expandPatterns resolves CLI package patterns to directories containing Go
// sources. testdata and hidden directories are never walked.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	addTree := func(base string) error {
		return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." || pat == "":
			if err := addTree(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			if err := addTree(filepath.Join(root, strings.TrimSuffix(pat, "/..."))); err != nil {
				return nil, err
			}
		default:
			dir := filepath.Join(root, pat)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// goSources lists the non-test .go files of one directory, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func relSlash(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
