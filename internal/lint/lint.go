// Package lint is surfer-lint v2: a static analyzer that proves the
// determinism contract (DESIGN.md "Parallel execution & the determinism
// contract") at review time instead of replay time. The engine's guarantee —
// results and traces bit-identical across worker counts — holds only if
// every source of nondeterminism is kept out of the deterministic packages:
// wall clock, unseeded randomness, map iteration order feeding ordered
// output, ad-hoc concurrency outside the sanctioned worker pool,
// order-sensitive float folds, and mutation of published shared views.
//
// The analyzer is stdlib-only but no longer purely syntactic: it
// type-checks every analyzed package with go/types, resolving stdlib
// imports through go/importer's source importer and module-internal
// imports by recursively loading them from the configured root. On top of
// the typed packages it builds a whole-program call graph, so entropy
// reads laundered through any number of helper packages (SL005) are
// reported with their full call chain.
//
// Each check has a stable ID (SL000..SL008, see docs/LINTS.md) and a
// severity (error or warn). A finding on a legitimate line is suppressed
// explicitly with a
//
//	//lint:allow SLnnn reason
//
// pragma on the offending line or the line directly above it. The reason
// is mandatory — a bare or malformed pragma is itself an error-severity
// finding (SL000) — so every suppression is auditable. Warn-severity
// findings can additionally be parked in a committed baseline file
// (lint-baseline.json) and burned down incrementally.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Check IDs. Stable: tests, pragmas, baselines and docs refer to them by
// name.
const (
	// IDPragma is SL000: a malformed //lint:allow pragma — missing or
	// unknown check ID, or no reason. A bare pragma suppresses nothing and
	// fails the build so silent dead suppressions cannot accumulate.
	IDPragma = "SL000"
	// IDEntropy is SL001: direct wall-clock / environment /
	// global-randomness calls in simulation packages.
	IDEntropy = "SL001"
	// IDMapOrder is SL002: range over a map emitting into ordered output
	// without a subsequent sort — the PR 1 nrMR.Map bug class.
	IDMapOrder = "SL002"
	// IDConcurrency is SL003: go statements or multi-case selects outside
	// the sanctioned worker pool.
	IDConcurrency = "SL003"
	// IDDocSync is SL004: trace event-kind constants missing from
	// docs/METRICS.md.
	IDDocSync = "SL004"
	// IDTransitive is SL005: a deterministic-package function whose call
	// graph reaches a wall-clock/env/global-rand sink through any number
	// of helper functions in other packages. Reported with the full chain.
	IDTransitive = "SL005"
	// IDFloatAccum is SL006: order-sensitive float accumulation — a
	// float compound assignment inside a map range, or into a variable
	// captured across Pool.ForEach worker goroutines. Float addition is
	// not associative, so the fold's bits depend on visit order.
	IDFloatAccum = "SL006"
	// IDSharedView is SL007: mutation-after-publish of a shared read-only
	// view (graph CSR Offsets/Targets slices, storage partition tables)
	// outside the view's constructor package.
	IDSharedView = "SL007"
	// IDSchemaSync is SL008: analyze blame categories or surfer-bench/v1
	// report fields missing from docs/METRICS.md — the SL004 idea
	// generalized beyond trace kinds.
	IDSchemaSync = "SL008"
)

// Severities.
const (
	SeverityError = "error"
	SeverityWarn  = "warn"
)

// severities maps each check to its tier. SL006 is a heuristic (it cannot
// prove two float folds collide), so it lands as warn and existing
// findings can ride in the baseline; everything else is a contract
// violation and fails the build outright.
var severities = map[string]string{
	IDPragma:      SeverityError,
	IDEntropy:     SeverityError,
	IDMapOrder:    SeverityError,
	IDConcurrency: SeverityError,
	IDDocSync:     SeverityError,
	IDTransitive:  SeverityError,
	IDFloatAccum:  SeverityWarn,
	IDSharedView:  SeverityError,
	IDSchemaSync:  SeverityError,
}

// SeverityOf returns a check's severity ("error" or "warn"); unknown IDs
// are errors so nothing new can slip in quietly.
func SeverityOf(id string) string {
	if s, ok := severities[id]; ok {
		return s
	}
	return SeverityError
}

// KnownCheck reports whether id names a check this analyzer runs — the
// set a //lint:allow pragma may reference.
func KnownCheck(id string) bool {
	_, ok := severities[id]
	return ok
}

// CheckIDs lists every check ID in order, for the SARIF rule catalogue
// and the docs test.
func CheckIDs() []string {
	return []string{IDPragma, IDEntropy, IDMapOrder, IDConcurrency, IDDocSync,
		IDTransitive, IDFloatAccum, IDSharedView, IDSchemaSync}
}

// Finding is one analyzer report. File is slash-separated and relative to
// the configured root.
type Finding struct {
	ID       string `json:"id"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Chain is SL005's full call path, outermost frame first, each frame
	// "func (file:line)"; the last frame is the entropy sink itself.
	Chain      []string `json:"chain,omitempty"`
	Suppressed bool     `json:"suppressed"`
	// Reason is the pragma justification when Suppressed.
	Reason string `json:"reason,omitempty"`
	// Baselined marks a warn-severity finding matched by the committed
	// baseline (ApplyBaseline): reported, but not failing.
	Baselined bool `json:"baselined,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s[%s]: %s", f.File, f.Line, f.Col, f.ID, f.Severity, f.Message)
}

// ViewSpec names a shared read-only view published by one package: method
// results and struct fields that no code outside the owning package may
// write through. SL007.
type ViewSpec struct {
	// Pkg is the owning package's slash-relative directory — its
	// constructor set: writes inside it are the view being built.
	Pkg string
	// Type is the named type publishing the view.
	Type string
	// Methods are accessor methods whose returned slices are shared.
	Methods []string
	// Fields are exported slice fields that are shared views.
	Fields []string
}

// Config scopes the analysis.
type Config struct {
	// Root is the module root; findings are reported relative to it.
	Root string
	// Module is the import-path prefix of packages under Root ("repro").
	// Imports carrying it resolve to directories under Root; everything
	// else resolves through go/importer.
	Module string
	// DeterministicDirs are slash-relative directory prefixes under Root
	// holding the deterministic packages: the full contract (SL001, SL002,
	// SL003, SL005, SL006, SL007) applies.
	DeterministicDirs []string
	// SupportingDirs are prefixes for packages that feed the deterministic
	// core seed-derived state (graphs, partitions, replicas, benchmarks):
	// their outputs must be reproducible from seeds, but they run outside
	// the event loop, so only SL001, SL006 and SL007 apply.
	SupportingDirs []string
	// SanctionedConcurrency lists slash-relative files allowed to spawn
	// goroutines and select: the engine's worker pool.
	SanctionedConcurrency []string
	// TraceDir is the slash-relative directory of the trace package, and
	// MetricsDoc the document every event-kind constant must appear in.
	// Either empty disables SL004.
	TraceDir   string
	MetricsDoc string
	// AnalyzeDir and BenchDir are the packages whose blame-category
	// constants and surfer-bench/v1 field inventories must appear in
	// MetricsDoc (SL008). Either empty disables that half of the check.
	AnalyzeDir string
	BenchDir   string
	// SharedViews are the published read-only views SL007 protects.
	SharedViews []ViewSpec
}

// DefaultConfig returns the repository's real scoping: the deterministic
// packages from DESIGN.md (including the post-PR-4 additions
// internal/jobsvc and internal/analyze — both are pure functions of their
// seeded inputs whose outputs must be byte-identical), the seed-driven
// supporting packages, and the engine worker pool as the one sanctioned
// concurrency site. cmd/ and examples/ are process-boundary drivers (flag
// parsing, wall-clock progress output) and are not scanned.
func DefaultConfig(root string) Config {
	return Config{
		Root:   root,
		Module: "repro",
		DeterministicDirs: []string{
			"internal/engine",
			"internal/propagation",
			"internal/mapreduce",
			"internal/scheduler",
			"internal/jobsvc",
			"internal/cluster",
			"internal/apps",
			"internal/fault",
			"internal/trace",
			"internal/analyze",
			"internal/metrics",
		},
		SupportingDirs: []string{
			"internal/graph",
			"internal/partition",
			"internal/storage",
			"internal/core",
			"internal/bench",
			"internal/lint",
			".", // the root package (surfer.go, workloads.go)
		},
		SanctionedConcurrency: []string{"internal/engine/parallel.go"},
		TraceDir:              "internal/trace",
		MetricsDoc:            "docs/METRICS.md",
		AnalyzeDir:            "internal/analyze",
		BenchDir:              "internal/bench",
		SharedViews: []ViewSpec{
			{Pkg: "internal/graph", Type: "Graph", Methods: []string{"Offsets", "Targets"}},
			{Pkg: "internal/storage", Type: "PartInfo", Fields: []string{"Vertices", "CrossDst"}},
		},
	}
}

// tier is how much of the contract applies to a file.
type tier int

const (
	tierExempt tier = iota
	tierSupporting
	tierDeterministic
)

func (c *Config) tierOf(relDir string) tier {
	for _, d := range c.DeterministicDirs {
		if relDir == d || strings.HasPrefix(relDir, d+"/") {
			return tierDeterministic
		}
	}
	for _, d := range c.SupportingDirs {
		if relDir == d || (d != "." && strings.HasPrefix(relDir, d+"/")) {
			return tierSupporting
		}
	}
	return tierExempt
}

// Run analyzes the packages matched by patterns under cfg.Root and returns
// all findings (suppressed and baselined ones included, flagged), sorted
// by position and deduplicated. Patterns are slash-relative to Root:
// "./..." (or "...") walks everything, "dir/..." walks a subtree, a plain
// directory analyzes that one package. A pattern that matches no Go files
// at all is an error — an empty run must not masquerade as a clean one.
func Run(cfg Config, patterns []string) ([]Finding, error) {
	perPattern, err := expandPatterns(cfg.Root, patterns)
	if err != nil {
		return nil, err
	}
	prog := newProgram(&cfg)

	// Load every matched, non-exempt package. Dependencies inside the
	// module load transitively through the importer, so the call graph is
	// whole-program even when the pattern selects a subtree.
	analyzed := map[string]*pkgInfo{}
	for _, pp := range perPattern {
		matchedFiles := 0
		for _, dir := range pp.dirs {
			names, err := goSources(dir)
			if os.IsNotExist(err) {
				continue // missing directory: zero matches for this pattern
			}
			if err != nil {
				return nil, err
			}
			matchedFiles += len(names)
			rel := relSlash(cfg.Root, dir)
			if cfg.tierOf(rel) == tierExempt || len(names) == 0 {
				continue
			}
			if _, ok := analyzed[rel]; ok {
				continue
			}
			pi, err := prog.loadRel(rel)
			if err != nil {
				return nil, err
			}
			analyzed[rel] = pi
		}
		if matchedFiles == 0 {
			return nil, fmt.Errorf("surfer-lint: pattern %q matched no Go files", pp.pattern)
		}
	}

	var findings []Finding
	rels := make([]string, 0, len(analyzed))
	for rel := range analyzed {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		pi := analyzed[rel]
		for i, file := range pi.files {
			findings = append(findings, analyzeFile(&fileCtx{
				cfg:        &cfg,
				fset:       prog.fset,
				file:       file,
				info:       pi.info,
				pkgRel:     pi.rel,
				relFile:    pi.relFiles[i],
				tier:       pi.tier,
				sanctioned: cfg.sanctioned(pi.relFiles[i]),
			})...)
		}
	}

	// Whole-program pass: SL005 transitive entropy over the call graph of
	// everything the loader pulled in.
	findings = append(findings, checkTransitiveEntropy(prog, analyzed)...)

	// Doc-sync passes parse their target packages directly, so they hold
	// even when the pattern excludes them.
	if cfg.TraceDir != "" && cfg.MetricsDoc != "" {
		docFindings, err := checkDocSync(cfg, prog.fset)
		if err != nil {
			return nil, err
		}
		findings = append(findings, docFindings...)
	}
	if cfg.MetricsDoc != "" && (cfg.AnalyzeDir != "" || cfg.BenchDir != "") {
		schemaFindings, err := checkSchemaSync(cfg, prog)
		if err != nil {
			return nil, err
		}
		findings = append(findings, schemaFindings...)
	}

	// Pragma audit (SL000) and suppression, over every analyzed file.
	for _, rel := range rels {
		pi := analyzed[rel]
		for i, file := range pi.files {
			pragmas := filePragmas(prog.fset, file)
			findings = append(findings, pragmaFindings(pi.relFiles[i], pragmas)...)
		}
	}
	suppressAll(prog, analyzed, findings)

	for i := range findings {
		findings[i].Severity = SeverityOf(findings[i].ID)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Message < b.Message
	})
	return Dedup(findings), nil
}

// Dedup removes exact duplicates — same check, position and message —
// keeping the first occurrence and the input order. Overlapping passes
// (e.g. nested map ranges both claiming one accumulation) may report the
// same defect once each; the stream the CLI and goldens see carries it
// once.
func Dedup(findings []Finding) []Finding {
	type key struct {
		id, file, msg string
		line, col     int
	}
	seen := make(map[key]bool, len(findings))
	out := findings[:0:0]
	for _, f := range findings {
		k := key{f.ID, f.File, f.Message, f.Line, f.Col}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// Unsuppressed filters to the findings not covered by a //lint:allow
// pragma (baselined warns included — see Failing for the exit gate).
func Unsuppressed(all []Finding) []Finding {
	var out []Finding
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Failing filters to the findings that fail the build: unsuppressed
// error-severity findings, plus unsuppressed warn-severity findings not
// parked in the baseline. This is the CLI's exit-status predicate.
func Failing(all []Finding) []Finding {
	var out []Finding
	for _, f := range all {
		if f.Suppressed {
			continue
		}
		if f.Severity == SeverityWarn && f.Baselined {
			continue
		}
		out = append(out, f)
	}
	return out
}

func (c *Config) sanctioned(relFile string) bool {
	for _, s := range c.SanctionedConcurrency {
		if relFile == s {
			return true
		}
	}
	return false
}

// analyzeFile runs the per-file checks appropriate to the tier. Test files
// are exempt from the whole contract: they may time, randomize and spawn
// freely (the determinism suite itself races worker pools against each
// other).
func analyzeFile(ctx *fileCtx) []Finding {
	if strings.HasSuffix(ctx.relFile, "_test.go") {
		return nil
	}
	var findings []Finding
	ctx.add = func(pos token.Pos, id, format string, args ...any) {
		p := ctx.fset.Position(pos)
		findings = append(findings, Finding{
			ID:      id,
			File:    ctx.relFile,
			Line:    p.Line,
			Col:     p.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	checkEntropy(ctx)
	checkFloatAccum(ctx)
	checkSharedViews(ctx)
	if ctx.tier == tierDeterministic {
		checkMapRangeEmission(ctx)
		if !ctx.sanctioned {
			checkConcurrency(ctx)
		}
	}
	return findings
}

// patternDirs is one CLI pattern with the directories it matched.
type patternDirs struct {
	pattern string
	dirs    []string
}

// expandPatterns resolves CLI package patterns to directories containing Go
// sources, per pattern. testdata and hidden directories are never walked.
func expandPatterns(root string, patterns []string) ([]patternDirs, error) {
	var out []patternDirs
	for _, pat := range patterns {
		orig := pat
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		seen := map[string]bool{}
		var dirs []string
		addTree := func(base string) error {
			return walkGoDirs(base, func(path string) {
				if !seen[path] {
					seen[path] = true
					dirs = append(dirs, path)
				}
			})
		}
		switch {
		case pat == "..." || pat == "":
			if err := addTree(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			if err := addTree(filepath.Join(root, strings.TrimSuffix(pat, "/..."))); err != nil {
				return nil, err
			}
		default:
			dirs = append(dirs, filepath.Join(root, pat))
		}
		sort.Strings(dirs)
		out = append(out, patternDirs{pattern: orig, dirs: dirs})
	}
	return out, nil
}

func relSlash(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
