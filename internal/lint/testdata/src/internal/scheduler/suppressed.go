// Package scheduler fixture: the pragma path. The first finding is
// suppressed by a reasoned //lint:allow on the line above, the second by a
// trailing pragma; the third pragma has no reason and must NOT suppress.
package scheduler

import "time"

func startupStamp() (time.Time, time.Time, time.Time) {
	//lint:allow SL001 one-shot process start stamp, never enters virtual time
	a := time.Now()
	b := time.Now() //lint:allow SL001 trailing-pragma form of the same stamp
	//lint:allow SL001
	c := time.Now()
	return a, b, c
}
