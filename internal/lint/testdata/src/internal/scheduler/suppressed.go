// Package scheduler fixture: the pragma path. The first finding is
// suppressed by a reasoned //lint:allow on the line above, the second by a
// trailing pragma; the third pragma has no reason, so it is itself an
// SL000 error and must NOT suppress. The two pragmas at the bottom are the
// rest of the SL000 corpus: an unknown check ID and a malformed ID.
package scheduler

import "time"

func startupStamp() (time.Time, time.Time, time.Time) {
	//lint:allow SL001 one-shot process start stamp, never enters virtual time
	a := time.Now()
	b := time.Now() //lint:allow SL001 trailing-pragma form of the same stamp
	//lint:allow SL001
	c := time.Now()
	return a, b, c
}

//lint:allow SL999 this check was retired long ago
//lint:allow entropy misspelled check reference
func late() {}
