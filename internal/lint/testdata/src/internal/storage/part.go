// Package storage fixture: owner of the PartInfo flat tables SL007
// protects as shared views. Construction writes here are exempt.
package storage

import "repro/internal/graph"

type PartInfo struct {
	Vertices []graph.VertexID
	CrossDst []graph.VertexID
}

// NewPartInfo builds the tables inside the owner package: no SL007.
func NewPartInfo(n int) *PartInfo {
	pi := &PartInfo{Vertices: make([]graph.VertexID, n)}
	for i := range pi.Vertices {
		pi.Vertices[i] = graph.VertexID(i)
	}
	pi.CrossDst = nil
	return pi
}
