// Package bench fixture: SL008 report-schema doc-sync. The schema
// constant and wall_seconds are documented in the fixture METRICS.md;
// rank_residual (a metric-map literal key) and converged (a string-literal
// info-map index) are not — one finding each.
package bench

const ReportSchema = "surfer-bench/v1"

func entry() map[string]float64 {
	m := map[string]float64{
		"wall_seconds":  1,
		"rank_residual": 0,
	}
	m["converged"] = 1
	return m
}
