// Package analyze fixture: SL008 blame-category doc-sync plus the
// deterministic-tier pin for internal/analyze (flush's map-range emission
// is SL002, which only fires in the deterministic tier — if the package
// were ever demoted, that golden line disappears and the tier test fails).
package analyze

const (
	// CatCPU is documented (backticked) in the fixture METRICS.md.
	CatCPU = "cpu-bound"
	// CatSpill is not documented: SL008.
	CatSpill = "spill-bound"
	// CatQueue is undocumented but suppressed: the SL008 pragma case.
	CatQueue = "queue-bound" //lint:allow SL008 fixture: taxonomy section rewrite pending, tracked in docs backlog
)

func flush(counts map[string]int, emit func(string, int)) {
	for k, v := range counts {
		emit(k, v)
	}
}
