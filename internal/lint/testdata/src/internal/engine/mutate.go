// Package engine fixture: SL007 mutation-after-publish. Every write here
// goes through a shared view published by another package — directly, via
// a tainted alias, via a re-slice, by copy, by append, and by field
// reassignment. scratch shows the sanctioned pattern (copy out, then
// mutate the private copy); allowed is the suppressed-SL007 corpus case.
package engine

import (
	"repro/internal/graph"
	"repro/internal/storage"
)

func compact(g *graph.Graph) {
	off := g.Offsets()
	off[0] = 0
	g.Targets()[1] = 0
	head := off[:2]
	head[1] = 4
}

func patch(pi *storage.PartInfo, extra []graph.VertexID) {
	pi.Vertices[0] = 0
	pi.CrossDst = nil
	copy(pi.Vertices, extra)
	pi.CrossDst = append(pi.CrossDst, extra...)
}

// scratch copies out of the view and mutates its own slice: no findings.
func scratch(g *graph.Graph) []int64 {
	off := g.Offsets()
	tmp := make([]int64, len(off))
	copy(tmp, off)
	tmp[0] = 1
	return tmp
}

func allowed(g *graph.Graph) {
	//lint:allow SL007 fixture: relabel pass blessed by the owner, runs before publication
	g.Offsets()[0] = 0
}
