// Package engine fixture: ad-hoc concurrency for SL003 — a goroutine and
// a multi-case select outside the sanctioned worker pool. The single-case
// receive at the end is deterministic and must not be flagged.
package engine

func spawn(work func(int), results chan int) int {
	for i := 0; i < 4; i++ {
		go work(i)
	}
	done := make(chan int)
	select {
	case v := <-results:
		return v
	case v := <-done:
		return v
	}
}

func drain(results chan int) int {
	select {
	case v := <-results:
		return v
	}
}
