// Package engine fixture: every SL001 entropy class in one file — wall
// clock, ambient environment, the global rand source (under an alias, to
// prove import resolution), plus the seeded-constructor idiom that must
// stay clean.
package engine

import (
	mrand "math/rand"
	"os"
	"time"
)

func wallClock() float64 {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start).Seconds()
}

func ambient() string {
	return os.Getenv("SURFER_WORKERS")
}

func globalRand() int {
	return mrand.Intn(10)
}

// seeded draws from a plumbed source: the sanctioned idiom, no finding.
func seeded(seed int64) int {
	rng := mrand.New(mrand.NewSource(seed))
	return rng.Intn(10)
}
