// Package engine fixture: SL005 transitive entropy. tick never touches
// time itself — it calls graph.Stamp, which calls loadStamp, which reads
// the wall clock (under a suppressed SL001, proving suppressed sinks still
// propagate). The finding lands here, at the call that leaves the
// deterministic tier, with the full chain attached. tickAllowed is the
// suppressed-SL005 corpus case.
package engine

import "repro/internal/graph"

func tick() int64 {
	return graph.Stamp()
}

func tickAllowed() int64 {
	//lint:allow SL005 fixture: startup banner stamp, reviewed as non-simulation state
	return graph.Stamp()
}
