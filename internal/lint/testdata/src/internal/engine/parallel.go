// Package engine fixture: this path (internal/engine/parallel.go) is the
// sanctioned worker pool, so its go statement must produce no SL003.
package engine

import "sync"

func forEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}
