// Package mapreduce fixture: the SL002 boundary. sortedKeys-style
// collection (append keys, sort, then emit over the slice) and map-to-map
// rekeying are sanctioned; an unsorted append, a channel send and a
// recorder Emit inside a map range are the bug class.
package mapreduce

import "sort"

type recorder struct{}

func (recorder) Emit(k int, v float64) {}

// shuffleSorted is the fixed nrMR.Map shape: no findings.
func shuffleSorted(table map[int]float64, emit func(int, float64)) {
	keys := make([]int, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		emit(k, table[k])
	}
}

// rekey writes map-to-map: order-independent, no finding.
func rekey(in map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(in))
	for k, v := range in {
		out[k+1] = v
	}
	return out
}

// collectUnsorted appends values in map order and never sorts: SL002.
func collectUnsorted(table map[int]float64) []float64 {
	var vals []float64
	for _, v := range table {
		vals = append(vals, v)
	}
	return vals
}

// streamOut sends on a channel and emits to a recorder in map order: two
// SL002 findings in one range body.
func streamOut(table map[int]float64, ch chan float64, rec recorder) {
	for k, v := range table {
		ch <- v
		rec.Emit(k, v)
	}
}
