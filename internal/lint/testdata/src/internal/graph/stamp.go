// Package graph fixture: the far end of the SL005 chain. loadStamp calls
// the wall clock directly — suppressed here with a reasoned SL001 pragma,
// which must NOT stop the sink from propagating through the call graph:
// a deterministic package calling Stamp still launders entropy.
package graph

import "time"

// loadStamp is the sink. The pragma silences the local SL001 only.
func loadStamp() int64 {
	return time.Now().UnixNano() //lint:allow SL001 fixture sink: load-time stamp stays out of simulation state
}

// Stamp is the helper hop deterministic packages actually call.
func Stamp() int64 {
	return loadStamp()
}
