// Package graph fixture: the shared-CSR-view owner for SL007. Offsets and
// Targets publish the backing arrays; writes here, inside the constructor
// set, are the view being built and must not be flagged.
package graph

type VertexID uint32

type Graph struct {
	offsets []int64
	targets []VertexID
}

func (g *Graph) Offsets() []int64    { return g.offsets }
func (g *Graph) Targets() []VertexID { return g.targets }

// Build writes the views inside the owner package: no SL007.
func Build(n int) *Graph {
	g := &Graph{offsets: make([]int64, n+1), targets: make([]VertexID, 0, n)}
	for i := range g.offsets {
		g.offsets[i] = 0
	}
	return g
}
