// Package propagation fixture: SL006 order-sensitive float accumulation.
// totalRank folds a map in iteration order — the low bits of the sum
// change run to run. perKey is the carve-out (one slot per range key,
// order-free). mergeRanks races a captured scalar across ForEach workers
// while its indexed writes follow the pool's index-disjoint discipline.
// totalAllowed is the suppressed-SL006 corpus case.
package propagation

func totalRank(ranks map[vertexID]float64) float64 {
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	return sum
}

// perKey updates a slot keyed by the range key: order-independent, clean.
func perKey(in map[vertexID]float64, out map[vertexID]float64) {
	for k, v := range in {
		out[k] += v
	}
}

type pool struct{}

func (pool) ForEach(n int, fn func(int)) {}

func mergeRanks(p pool, parts [][]float64, out []float64) float64 {
	var total float64
	p.ForEach(len(parts), func(i int) {
		for j, v := range parts[i] {
			out[j] += v
			total += v
		}
	})
	return total
}

func totalAllowed(ranks map[vertexID]float64) float64 {
	var sum float64
	for _, r := range ranks {
		sum += r //lint:allow SL006 fixture: diagnostic total, never compared bit-for-bit
	}
	return sum
}
