// Package propagation fixture: the CSR fast-path variant of the SL002 bug
// class. The scatter loop walks flat CSR neighbor ranges — already sorted
// by construction — but accumulates into a hash table and then ranges over
// it to flush, so the emission order reaching downstream consumers follows
// the runtime's randomized map iteration instead of the sorted ranges the
// data came from.
package propagation

type vertexID uint32

type csrBug struct {
	offsets []int64
	targets []vertexID
}

func (c *csrBug) flush(emit func(vertexID, int64)) {
	counts := make(map[vertexID]int64)
	for u := 0; u+1 < len(c.offsets); u++ {
		for _, v := range c.targets[c.offsets[u]:c.offsets[u+1]] {
			counts[v]++
		}
	}
	for v, n := range counts {
		emit(v, n)
	}
}
