// Package trace fixture for SL004: three event kinds with String
// mappings; the metrics doc next to this corpus documents task-start and
// transfer but not spill — exactly one finding, at KindSpill.
package trace

type EventKind uint8

const (
	KindTaskStart EventKind = iota
	KindTransfer
	KindSpill
)

func (k EventKind) String() string {
	switch k {
	case KindTaskStart:
		return "task-start"
	case KindTransfer:
		return "transfer"
	case KindSpill:
		return "spill"
	default:
		return "unknown"
	}
}
