// Package trace fixture for SL004: seven event kinds with String mappings;
// the metrics doc next to this corpus documents task-start, transfer,
// job-queued and the elastic partition-migrate, but neither spill, the
// scheduler's job-preempted nor machine-drain — exactly three findings.
package trace

type EventKind uint8

const (
	KindTaskStart EventKind = iota
	KindTransfer
	KindSpill
	KindJobQueued
	KindJobPreempted
	KindPartitionMigrate
	KindMachineDrain
)

func (k EventKind) String() string {
	switch k {
	case KindTaskStart:
		return "task-start"
	case KindTransfer:
		return "transfer"
	case KindSpill:
		return "spill"
	case KindJobQueued:
		return "job-queued"
	case KindJobPreempted:
		return "job-preempted"
	case KindPartitionMigrate:
		return "partition-migrate"
	case KindMachineDrain:
		return "machine-drain"
	default:
		return "unknown"
	}
}
