// Package trace fixture for SL004: five event kinds with String mappings;
// the metrics doc next to this corpus documents task-start, transfer and
// job-queued but neither spill nor the scheduler's job-preempted — exactly
// two findings, at KindSpill and KindJobPreempted.
package trace

type EventKind uint8

const (
	KindTaskStart EventKind = iota
	KindTransfer
	KindSpill
	KindJobQueued
	KindJobPreempted
)

func (k EventKind) String() string {
	switch k {
	case KindTaskStart:
		return "task-start"
	case KindTransfer:
		return "transfer"
	case KindSpill:
		return "spill"
	case KindJobQueued:
		return "job-queued"
	case KindJobPreempted:
		return "job-preempted"
	default:
		return "unknown"
	}
}
