// Package apps fixture: the exact PR 1 nrMR.Map bug, preserved as a
// regression corpus for SL002. The map-range emits partial ranks straight
// out of the hash table, so the value sequence reaching each reducer — and
// the non-associative float sums it computes — follow the runtime's
// randomized map iteration order.
package apps

type vertexID uint32

type nrMRBug struct {
	ranks []float64
}

type partInfo struct {
	Vertices []vertexID
}

type adjacency interface {
	OutDegree(vertexID) int
	Neighbors(vertexID) []vertexID
}

const damping = 0.85

func (p *nrMRBug) Map(pi *partInfo, g adjacency, emit func(vertexID, float64)) {
	rTable := make(map[vertexID]float64)
	for _, u := range pi.Vertices {
		deg := g.OutDegree(u)
		if deg == 0 {
			continue
		}
		delta := p.ranks[u] * damping / float64(deg)
		for _, v := range g.Neighbors(u) {
			rTable[v] += delta
		}
	}
	for v, r := range rTable {
		emit(v, r)
	}
}
