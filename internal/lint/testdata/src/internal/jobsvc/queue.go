// Package jobsvc fixture: pins internal/jobsvc to the deterministic tier.
// dispatch's go statement is SL003, which only fires in that tier — the
// golden line is the fixture proof the tier table covers the post-PR-4
// package (the laundering hole this corpus exists to close).
package jobsvc

func dispatch(work func(int)) {
	go work(0)
}
