package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// checkDocSync is SL004: every trace event-kind constant must appear in
// docs/METRICS.md, so the observability reference can never silently lag
// the event stream. The check parses the EventKind const block and the
// EventKind.String method out of the trace package, then requires each
// kind's display string (falling back to its constant name) to occur in
// the metrics document.
func checkDocSync(cfg Config, fset *token.FileSet) ([]Finding, error) {
	traceDir := filepath.Join(cfg.Root, filepath.FromSlash(cfg.TraceDir))
	names, err := goSources(traceDir)
	if err != nil {
		return nil, fmt.Errorf("surfer-lint: trace package: %w", err)
	}
	docPath := filepath.Join(cfg.Root, filepath.FromSlash(cfg.MetricsDoc))
	doc, err := os.ReadFile(docPath)
	if err != nil {
		return nil, fmt.Errorf("surfer-lint: metrics doc: %w", err)
	}
	content := string(doc)

	var findings []Finding
	for _, name := range names {
		path := filepath.Join(traceDir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("surfer-lint: %w", err)
		}
		kinds := eventKindConsts(file)
		if len(kinds) == 0 {
			continue
		}
		display := kindStrings(file)
		relFile := relSlash(cfg.Root, path)
		fileFindings := make([]Finding, 0)
		for _, k := range kinds {
			want := display[k.name]
			if want == "" {
				want = k.name
			}
			if strings.Contains(content, want) {
				continue
			}
			p := fset.Position(k.pos)
			fileFindings = append(fileFindings, Finding{
				ID:   IDDocSync,
				File: relFile,
				Line: p.Line,
				Col:  p.Column,
				Message: fmt.Sprintf("trace event kind %s (%q) is not documented in %s",
					k.name, want, cfg.MetricsDoc),
			})
		}
		suppressWith(fset, file, fileFindings)
		findings = append(findings, fileFindings...)
	}
	return findings, nil
}

// checkSchemaSync is SL008, the SL004 idea generalized beyond trace kinds:
// the analyze package's blame-category constants and the bench package's
// surfer-bench/v1 report vocabulary (schema constant, metric and info map
// keys written as string literals) must all appear in docs/METRICS.md —
// backticked, the way the document spells field names — so downstream
// dashboards never meet an undocumented field. Both packages are parsed
// directly (not via the type-checking loader): the pass holds even when
// the CLI pattern excludes them, mirroring SL004.
func checkSchemaSync(cfg Config, prog *program) ([]Finding, error) {
	docPath := filepath.Join(cfg.Root, filepath.FromSlash(cfg.MetricsDoc))
	doc, err := os.ReadFile(docPath)
	if err != nil {
		return nil, fmt.Errorf("surfer-lint: metrics doc: %w", err)
	}
	content := string(doc)
	documented := func(word string) bool {
		return strings.Contains(content, "`"+word+"`")
	}

	var findings []Finding
	if cfg.AnalyzeDir != "" {
		fs, err := schemaScanDir(cfg, prog, cfg.AnalyzeDir, func(file *ast.File, add func(pos token.Pos, format string, args ...any)) {
			for _, c := range blameCategoryConsts(file) {
				if !documented(c.value) {
					add(c.pos, "blame category %s (%q) is not documented in %s", c.name, c.value, cfg.MetricsDoc)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	if cfg.BenchDir != "" {
		fs, err := schemaScanDir(cfg, prog, cfg.BenchDir, func(file *ast.File, add func(pos token.Pos, format string, args ...any)) {
			for _, k := range benchReportKeys(file) {
				if !documented(k.value) {
					add(k.pos, "bench report %s %q is not documented in %s", k.what, k.value, cfg.MetricsDoc)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// schemaScanDir parses one package directory, runs scan per file with a
// position-aware adder, and applies that file's pragmas to its findings.
func schemaScanDir(cfg Config, prog *program, rel string, scan func(*ast.File, func(pos token.Pos, format string, args ...any))) ([]Finding, error) {
	dir := filepath.Join(cfg.Root, filepath.FromSlash(rel))
	names, err := goSources(dir)
	if err != nil {
		return nil, fmt.Errorf("surfer-lint: %s: %w", rel, err)
	}
	var findings []Finding
	for _, name := range names {
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(prog.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("surfer-lint: %w", err)
		}
		relFile := relSlash(cfg.Root, path)
		var fileFindings []Finding
		scan(file, func(pos token.Pos, format string, args ...any) {
			p := prog.fset.Position(pos)
			fileFindings = append(fileFindings, Finding{
				ID:      IDSchemaSync,
				File:    relFile,
				Line:    p.Line,
				Col:     p.Column,
				Message: fmt.Sprintf(format, args...),
			})
		})
		suppressWith(prog.fset, file, fileFindings)
		findings = append(findings, fileFindings...)
	}
	return findings, nil
}

type schemaWord struct {
	name  string // constant name, "" for map keys
	what  string // "schema"/"metric key"/"info key" for bench words
	value string
	pos   token.Pos
}

// blameCategoryConsts extracts the analyze package's category vocabulary:
// string constants whose name starts with "Cat".
func blameCategoryConsts(file *ast.File) []schemaWord {
	var words []schemaWord
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.CONST {
			continue
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, n := range vs.Names {
				if !strings.HasPrefix(n.Name, "Cat") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				words = append(words, schemaWord{name: n.Name, value: v, pos: n.Pos()})
			}
		}
	}
	return words
}

// benchReportKeys extracts the bench package's report vocabulary: the
// ReportSchema constant, every string key of a map[string]float64
// composite literal, and every string-literal index on the left of an
// assignment (metrics["x"] = v). Computed keys are out of scope — they
// are not a fixed vocabulary the doc could enumerate.
func benchReportKeys(file *ast.File) []schemaWord {
	var words []schemaWord
	addLit := func(lit *ast.BasicLit, what string) {
		v, err := strconv.Unquote(lit.Value)
		if err != nil || v == "" {
			return
		}
		words = append(words, schemaWord{what: what, value: v, pos: lit.Pos()})
	}
	for _, decl := range file.Decls {
		if gen, ok := decl.(*ast.GenDecl); ok && gen.Tok == token.CONST {
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, n := range vs.Names {
					if n.Name != "ReportSchema" || i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						addLit(lit, "schema")
					}
				}
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CompositeLit:
			mt, ok := s.Type.(*ast.MapType)
			if !ok || !typeNamed(mt.Key, "string") || !typeNamed(mt.Value, "float64") {
				return true
			}
			for _, elt := range s.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					addLit(lit, "metric key")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if lit, ok := idx.Index.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					addLit(lit, "info key")
				}
			}
		}
		return true
	})
	return words
}

type kindConst struct {
	name string
	pos  token.Pos
}

// eventKindConsts returns the constants of every const block whose first
// typed spec is EventKind — iota continuation lines inherit membership.
func eventKindConsts(file *ast.File) []kindConst {
	var kinds []kindConst
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.CONST {
			continue
		}
		inBlock := false
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if vs.Type != nil {
				id, ok := vs.Type.(*ast.Ident)
				inBlock = ok && id.Name == "EventKind"
			}
			if !inBlock {
				continue
			}
			for _, n := range vs.Names {
				if n.Name == "_" {
					continue
				}
				kinds = append(kinds, kindConst{name: n.Name, pos: n.Pos()})
			}
		}
	}
	return kinds
}

// kindStrings extracts the constant→display-string mapping from the
// EventKind.String method's switch (case KindX: return "x").
func kindStrings(file *ast.File) map[string]string {
	display := map[string]string{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "String" || fn.Recv == nil || fn.Body == nil {
			continue
		}
		if recv := fn.Recv.List[0].Type; !typeNamed(recv, "EventKind") {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok || len(cc.Body) != 1 {
				return true
			}
			ret, ok := cc.Body[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			lit, ok := ret.Results[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, e := range cc.List {
				if id, ok := e.(*ast.Ident); ok {
					display[id.Name] = s
				}
			}
			return true
		})
	}
	return display
}

func typeNamed(expr ast.Expr, name string) bool {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name == name
	case *ast.StarExpr:
		return typeNamed(t.X, name)
	}
	return false
}
