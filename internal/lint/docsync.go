package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// checkDocSync is SL004: every trace event-kind constant must appear in
// docs/METRICS.md, so the observability reference can never silently lag
// the event stream. The check parses the EventKind const block and the
// EventKind.String method out of the trace package, then requires each
// kind's display string (falling back to its constant name) to occur in
// the metrics document.
func checkDocSync(cfg Config, fset *token.FileSet) ([]Finding, error) {
	traceDir := filepath.Join(cfg.Root, filepath.FromSlash(cfg.TraceDir))
	names, err := goSources(traceDir)
	if err != nil {
		return nil, fmt.Errorf("surfer-lint: trace package: %w", err)
	}
	docPath := filepath.Join(cfg.Root, filepath.FromSlash(cfg.MetricsDoc))
	doc, err := os.ReadFile(docPath)
	if err != nil {
		return nil, fmt.Errorf("surfer-lint: metrics doc: %w", err)
	}
	content := string(doc)

	var findings []Finding
	for _, name := range names {
		path := filepath.Join(traceDir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("surfer-lint: %w", err)
		}
		kinds := eventKindConsts(file)
		if len(kinds) == 0 {
			continue
		}
		display := kindStrings(file)
		relFile := relSlash(cfg.Root, path)
		fileFindings := make([]Finding, 0)
		for _, k := range kinds {
			want := display[k.name]
			if want == "" {
				want = k.name
			}
			if strings.Contains(content, want) {
				continue
			}
			p := fset.Position(k.pos)
			fileFindings = append(fileFindings, Finding{
				ID:   IDDocSync,
				File: relFile,
				Line: p.Line,
				Col:  p.Column,
				Message: fmt.Sprintf("trace event kind %s (%q) is not documented in %s",
					k.name, want, cfg.MetricsDoc),
			})
		}
		suppress(fset, file, fileFindings)
		findings = append(findings, fileFindings...)
	}
	return findings, nil
}

type kindConst struct {
	name string
	pos  token.Pos
}

// eventKindConsts returns the constants of every const block whose first
// typed spec is EventKind — iota continuation lines inherit membership.
func eventKindConsts(file *ast.File) []kindConst {
	var kinds []kindConst
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.CONST {
			continue
		}
		inBlock := false
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if vs.Type != nil {
				id, ok := vs.Type.(*ast.Ident)
				inBlock = ok && id.Name == "EventKind"
			}
			if !inBlock {
				continue
			}
			for _, n := range vs.Names {
				if n.Name == "_" {
					continue
				}
				kinds = append(kinds, kindConst{name: n.Name, pos: n.Pos()})
			}
		}
	}
	return kinds
}

// kindStrings extracts the constant→display-string mapping from the
// EventKind.String method's switch (case KindX: return "x").
func kindStrings(file *ast.File) map[string]string {
	display := map[string]string{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "String" || fn.Recv == nil || fn.Body == nil {
			continue
		}
		if recv := fn.Recv.List[0].Type; !typeNamed(recv, "EventKind") {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok || len(cc.Body) != 1 {
				return true
			}
			ret, ok := cc.Body[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			lit, ok := ret.Results[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, e := range cc.List {
				if id, ok := e.(*ast.Ident); ok {
					display[id.Name] = s
				}
			}
			return true
		})
	}
	return display
}

func typeNamed(expr ast.Expr, name string) bool {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name == name
	case *ast.StarExpr:
		return typeNamed(t.X, name)
	}
	return false
}
