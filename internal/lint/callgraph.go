// The whole-program call graph behind SL005. Every module package the
// loader pulled in contributes its declared functions as nodes; edges are
// statically resolved calls (direct calls and method calls through
// concrete receivers — dynamic dispatch through interfaces is out of
// scope and documented as such). A node is a sink carrier when its body
// calls an entropy sink directly. SL005 then reports, for every
// deterministic-tier function, each call edge that crosses out of the
// deterministic tier into a function from which a sink is reachable —
// with the full chain down to the sink, rendered like a stack trace.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// sinkFact is one direct entropy-sink call inside a function body.
type sinkFact struct {
	pos  token.Pos
	desc string // canonical "time.Now", "os.Getenv", "rand.Intn"
}

// callFact is one statically resolved call to another module function.
type callFact struct {
	pos    token.Pos
	callee *types.Func
}

// funcNode is one declared function in the loaded program.
type funcNode struct {
	fn      *types.Func
	pkg     *pkgInfo
	relFile string
	declPos token.Pos
	sinks   []sinkFact
	calls   []callFact
}

// checkTransitiveEntropy is SL005. analyzed scopes where findings are
// *reported* (the packages the patterns matched); the graph itself spans
// every package the loader reached, so a chain through an unmatched helper
// package is still followed to its sink.
func checkTransitiveEntropy(prog *program, analyzed map[string]*pkgInfo) []Finding {
	nodes := collectFuncNodes(prog)

	// Reverse-propagate sink reachability (handles cycles without a
	// recursion guard): seed with direct sink carriers, walk callers.
	reaches := map[*types.Func]bool{}
	callersOf := map[*types.Func][]*types.Func{}
	for _, n := range nodes {
		for _, c := range n.calls {
			callersOf[c.callee] = append(callersOf[c.callee], n.fn)
		}
	}
	var queue []*types.Func
	for _, n := range nodes {
		if len(n.sinks) > 0 && !reaches[n.fn] {
			reaches[n.fn] = true
			queue = append(queue, n.fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range callersOf[fn] {
			if !reaches[caller] {
				reaches[caller] = true
				queue = append(queue, caller)
			}
		}
	}

	// Report at the laundering boundary: a deterministic-tier caller F with
	// an edge to a non-deterministic-tier callee G that reaches a sink.
	// Direct sinks inside F are SL001's finding; det→det edges are skipped
	// so a chain is reported exactly once, where it leaves the tier.
	var findings []Finding
	rels := make([]string, 0, len(analyzed))
	for rel := range analyzed {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		pi := analyzed[rel]
		if pi.tier != tierDeterministic {
			continue
		}
		for _, n := range nodesOfPkg(nodes, pi) {
			if strings.HasSuffix(n.relFile, "_test.go") {
				continue
			}
			for _, call := range n.calls {
				callee := nodes[call.callee]
				if callee == nil || callee.pkg.tier == tierDeterministic || !reaches[call.callee] {
					continue
				}
				chain, sink := chainToSink(prog.fset, nodes, callee)
				if sink == nil {
					continue
				}
				p := prog.fset.Position(call.pos)
				frames := []string{fmt.Sprintf("%s (%s:%d)", frameName(n.fn), n.relFile, p.Line)}
				frames = append(frames, chain...)
				findings = append(findings, Finding{
					ID:   IDTransitive,
					File: n.relFile,
					Line: p.Line,
					Col:  p.Column,
					Message: fmt.Sprintf(
						"call to %s transitively reaches entropy sink %s (%d frame chain); deterministic code must not depend on wall clock, environment or global rand",
						frameName(call.callee), sink.desc, len(frames)+1),
					Chain: append(frames, fmt.Sprintf("%s (%s)", sink.desc, sinkSite(prog.fset, nodes, sink))),
				})
			}
		}
	}
	return findings
}

// chainToSink BFSes from start to the nearest node carrying a direct sink
// and renders the intermediate frames "func (file:line)", where file:line
// is the call site that takes the chain one step deeper. Edge order is AST
// order, so ties break deterministically.
func chainToSink(fset *token.FileSet, nodes map[*types.Func]*funcNode, start *funcNode) ([]string, *sinkFact) {
	type hop struct {
		node *funcNode
		prev *hop
		// via is the call fact in prev.node that reached node (nil at start).
		via *callFact
	}
	seen := map[*types.Func]bool{start.fn: true}
	queue := []*hop{{node: start}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if len(h.node.sinks) > 0 {
			sink := &h.node.sinks[0]
			// Walk back to the start, rendering each node with the position
			// of the call it makes toward the sink.
			var rev []*hop
			for cur := h; cur != nil; cur = cur.prev {
				rev = append(rev, cur)
			}
			var frames []string
			for i := len(rev) - 1; i >= 0; i-- {
				cur := rev[i]
				var nextPos token.Pos
				if i > 0 {
					nextPos = rev[i-1].via.pos
				} else {
					nextPos = sink.pos
				}
				p := fset.Position(nextPos)
				frames = append(frames, fmt.Sprintf("%s (%s:%d)", frameName(cur.node.fn), cur.node.relFile, p.Line))
			}
			return frames, sink
		}
		for i := range h.node.calls {
			c := &h.node.calls[i]
			next := nodes[c.callee]
			if next == nil || seen[c.callee] {
				continue
			}
			seen[c.callee] = true
			queue = append(queue, &hop{node: next, prev: h, via: c})
		}
	}
	return nil, nil
}

// nodesOfPkg returns pi's function nodes in declaration order, so the
// findings stream is deterministic before the global sort.
func nodesOfPkg(nodes map[*types.Func]*funcNode, pi *pkgInfo) []*funcNode {
	var out []*funcNode
	for _, n := range nodes {
		if n.pkg == pi {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].declPos < out[j].declPos })
	return out
}

// sinkSite renders the sink call's file:line. The sink lives in the last
// chain node's file; scan nodes for the one owning the position.
func sinkSite(fset *token.FileSet, nodes map[*types.Func]*funcNode, sink *sinkFact) string {
	p := fset.Position(sink.pos)
	for _, n := range nodes {
		np := fset.Position(n.declPos)
		if np.Filename == p.Filename {
			return fmt.Sprintf("%s:%d", n.relFile, p.Line)
		}
	}
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// frameName renders a function for chain frames: "pkg/path.Func" or
// "(pkg/path.Recv).Method", with the module prefix stripped for brevity.
func frameName(fn *types.Func) string {
	name := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil {
		if i := strings.Index(pkg.Path(), "/"); i >= 0 {
			name = strings.ReplaceAll(name, pkg.Path()[:i+1], "")
		}
	}
	return name
}

// collectFuncNodes walks every loaded module package and builds the node
// set: declared functions, their direct sink calls, and their statically
// resolved module-internal call edges. FuncLit bodies attribute to the
// enclosing declaration — a closure reading the clock taints its owner.
func collectFuncNodes(prog *program) map[*types.Func]*funcNode {
	nodes := map[*types.Func]*funcNode{}
	rels := make([]string, 0, len(prog.pkgs))
	for rel := range prog.pkgs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		pi := prog.pkgs[rel]
		for fi, file := range pi.files {
			ctx := &fileCtx{file: file, info: pi.info}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pi.info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &funcNode{fn: obj, pkg: pi, relFile: pi.relFiles[fi], declPos: fd.Name.Pos()}
				ast.Inspect(fd.Body, func(node ast.Node) bool {
					call, ok := node.(*ast.CallExpr)
					if !ok {
						return true
					}
					if desc, isSink := sinkCall(ctx, call); isSink {
						n.sinks = append(n.sinks, sinkFact{pos: call.Pos(), desc: desc})
						return true
					}
					if callee := calleeFunc(pi.info, call); callee != nil && moduleFunc(prog, callee) {
						n.calls = append(n.calls, callFact{pos: call.Pos(), callee: callee})
					}
					return true
				})
				nodes[obj] = n
			}
		}
	}
	return nodes
}

// sinkCall reports whether call is a direct entropy sink, with a canonical
// description ("time.Now") independent of import aliasing.
func sinkCall(ctx *fileCtx, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	path := ctx.pkgPathOf(id)
	hit := false
	switch path {
	case "time":
		hit = forbiddenTime[sel.Sel.Name]
	case "os":
		hit = forbiddenOS[sel.Sel.Name]
	case "math/rand", "math/rand/v2":
		hit = !allowedRand[sel.Sel.Name]
	}
	if !hit {
		return "", false
	}
	return pkgNameOf(path) + "." + sel.Sel.Name, true
}

// calleeFunc statically resolves a call expression's target function
// object, or nil when the target is dynamic (interface method, func
// value) or not a function at all (conversion, builtin).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method call: concrete receivers resolve; interface methods
			// stay dynamic and are skipped.
			if f, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); !isIface {
					return f
				}
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// moduleFunc reports whether fn is declared in a package of this module —
// the only nodes the graph tracks.
func moduleFunc(prog *program, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	_, ok := prog.relOfImportPath(pkg.Path())
	return ok
}
