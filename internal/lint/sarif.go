// SARIF 2.1.0 output, for code-review tooling that ingests the standard
// format. The document is built from fixed structs and emitted with
// json.MarshalIndent, so two runs over the same tree produce byte-identical
// files — the same determinism bar the analyzer holds everyone else to.

package lint

import (
	"encoding/json"
	"io"
	"strings"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	DefaultLevel     struct {
		Level string `json:"level"`
	} `json:"defaultConfiguration"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
	Properties   map[string]bool    `json:"properties,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation struct {
		ArtifactLocation struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn"`
		} `json:"region"`
	} `json:"physicalLocation"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// ruleSummaries is the one-line catalogue entry per check.
var ruleSummaries = map[string]string{
	IDPragma:      "malformed //lint:allow pragma",
	IDEntropy:     "direct wall-clock, environment or global-rand call",
	IDMapOrder:    "map iteration order feeding ordered output",
	IDConcurrency: "concurrency outside the sanctioned worker pool",
	IDDocSync:     "trace event kind missing from docs/METRICS.md",
	IDTransitive:  "transitive entropy reach through helper packages",
	IDFloatAccum:  "order-sensitive float accumulation",
	IDSharedView:  "mutation of a published shared view",
	IDSchemaSync:  "blame-category or bench-schema vocabulary missing from docs/METRICS.md",
}

func sarifLevel(severity string) string {
	if severity == SeverityWarn {
		return "warning"
	}
	return "error"
}

// WriteSARIF emits all findings (suppressed ones carried as SARIF
// suppressions, baselined ones flagged in properties) as one SARIF run.
func WriteSARIF(w io.Writer, findings []Finding) error {
	var rules []sarifRule
	for _, id := range CheckIDs() {
		r := sarifRule{ID: id, ShortDescription: sarifMessage{Text: ruleSummaries[id]}}
		r.DefaultLevel.Level = sarifLevel(SeverityOf(id))
		rules = append(rules, r)
	}
	results := []sarifResult{}
	for _, f := range findings {
		text := f.Message
		if len(f.Chain) > 0 {
			text += " [chain: " + strings.Join(f.Chain, " -> ") + "]"
		}
		res := sarifResult{
			RuleID:  f.ID,
			Level:   sarifLevel(f.Severity),
			Message: sarifMessage{Text: text},
		}
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = f.File
		loc.PhysicalLocation.Region.StartLine = f.Line
		loc.PhysicalLocation.Region.StartColumn = f.Col
		res.Locations = []sarifLocation{loc}
		if f.Suppressed {
			res.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: f.Reason}}
		}
		if f.Baselined {
			res.Properties = map[string]bool{"baselined": true}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "surfer-lint", InformationURI: "docs/LINTS.md", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
