package lint_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// -update regenerates testdata/expected.txt from the current run:
//
//	go test ./internal/lint -run TestCorpusGolden -update
var update = flag.Bool("update", false, "rewrite the golden corpus findings file")

// corpusConfig scopes the analyzer to the known-bad fixture tree, which
// mirrors the repository layout (internal/engine, internal/apps, ...) so
// the real tier classification, the sanctioned-pool carve-out and the
// shared-view owner exemption are exercised verbatim.
func corpusConfig() lint.Config {
	return lint.DefaultConfig(filepath.Join("testdata", "src"))
}

var (
	corpusOnce     sync.Once
	corpusCached   []lint.Finding
	corpusCacheErr error
)

func corpusFindings(t *testing.T) []lint.Finding {
	t.Helper()
	corpusOnce.Do(func() {
		corpusCached, corpusCacheErr = lint.Run(corpusConfig(), []string{"./..."})
	})
	if corpusCacheErr != nil {
		t.Fatalf("Run: %v", corpusCacheErr)
	}
	return corpusCached
}

func fileFindings(t *testing.T, file string) []lint.Finding {
	t.Helper()
	var out []lint.Finding
	for _, f := range corpusFindings(t) {
		if f.File == file {
			out = append(out, f)
		}
	}
	return out
}

// formatFindings renders findings in the golden format: one line per
// finding, suppressed ones annotated with their pragma reason so the
// suppression inventory is golden-tested too.
func formatFindings(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprint(&b, f.String())
		if f.Suppressed {
			fmt.Fprintf(&b, " [suppressed: %s]", f.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCorpusGolden pins every finding — ID, severity, position, message,
// suppression state — the analyzer reports on the bad-fixture corpus.
func TestCorpusGolden(t *testing.T) {
	got := formatFindings(corpusFindings(t))
	goldenPath := filepath.Join("testdata", "expected.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("corpus findings diverge from %s (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestCorpusFailsTheBuild pins the CLI contract on the corpus: failing
// findings exist, so surfer-lint would exit nonzero.
func TestCorpusFailsTheBuild(t *testing.T) {
	if n := len(lint.Failing(corpusFindings(t))); n == 0 {
		t.Fatal("bad-fixture corpus produced no failing findings; the gate is dead")
	}
}

// TestNRMapRegression re-introduces the PR 1 nrMR.Map bug — emitting
// partial ranks directly from a map range — and asserts surfer-lint flags
// it as SL002 at the range statement.
func TestNRMapRegression(t *testing.T) {
	hits := fileFindings(t, "internal/apps/nrmr_bug.go")
	if len(hits) != 1 {
		t.Fatalf("nrmr_bug.go: want exactly 1 finding, got %d: %v", len(hits), hits)
	}
	f := hits[0]
	if f.ID != lint.IDMapOrder {
		t.Errorf("nrmr_bug.go finding ID = %s, want %s (map-range emission)", f.ID, lint.IDMapOrder)
	}
	if f.Suppressed {
		t.Error("the nrMR.Map bug must not be suppressible without a pragma")
	}
	if !strings.Contains(f.Message, "emit") {
		t.Errorf("finding should name the emit call, got %q", f.Message)
	}
}

// TestPragmaSuppression covers the //lint:allow path: reasoned pragmas
// (leading and trailing) drop findings from the exit status but keep them
// in the stream with Suppressed=true and the reason; a pragma without a
// reason suppresses nothing and is itself an SL000 error, as are the
// unknown-ID and malformed-ID pragmas at the bottom of the fixture.
func TestPragmaSuppression(t *testing.T) {
	sched := fileFindings(t, "internal/scheduler/suppressed.go")
	if len(sched) != 6 {
		t.Fatalf("suppressed.go: want 6 findings (2 suppressed SL001 + 1 live SL001 + 3 SL000), got %d:\n%s",
			len(sched), formatFindings(sched))
	}
	var suppressed, live, audit int
	for _, f := range sched {
		switch {
		case f.ID == lint.IDPragma:
			audit++
			if f.Suppressed {
				t.Errorf("SL000 at line %d was suppressed; the pragma audit must not be silenceable", f.Line)
			}
			if f.Severity != lint.SeverityError {
				t.Errorf("SL000 severity = %s, want error", f.Severity)
			}
		case f.Suppressed:
			suppressed++
			if f.Reason == "" {
				t.Errorf("suppressed finding at line %d has no reason", f.Line)
			}
		default:
			live++
		}
	}
	if suppressed != 2 || live != 1 || audit != 3 {
		t.Fatalf("want 2 suppressed + 1 live + 3 audit, got %d + %d + %d", suppressed, live, audit)
	}
	for _, f := range lint.Unsuppressed(sched) {
		if f.Suppressed {
			t.Fatal("Unsuppressed returned a suppressed finding")
		}
	}

	// The -json contract: suppressed findings serialize with
	// "suppressed": true and their pragma reason.
	raw, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"suppressed":true`) {
		t.Errorf("JSON output lacks suppressed:true: %s", raw)
	}
	if !strings.Contains(string(raw), "one-shot process start stamp") {
		t.Errorf("JSON output lacks the pragma reason: %s", raw)
	}
}

// TestSanctionedPoolExempt pins the SL003 carve-out: the goroutine in the
// corpus copy of internal/engine/parallel.go produces no finding, while
// spawn.go in the same package is flagged.
func TestSanctionedPoolExempt(t *testing.T) {
	if hits := fileFindings(t, "internal/engine/parallel.go"); len(hits) > 0 {
		t.Errorf("sanctioned worker pool flagged: %v", hits)
	}
	var spawn int
	for _, f := range fileFindings(t, "internal/engine/spawn.go") {
		if f.ID == lint.IDConcurrency {
			spawn++
		}
	}
	// One go statement + one multi-case select; the single-case select is
	// deterministic and exempt.
	if spawn != 2 {
		t.Errorf("spawn.go: want 2 SL003 findings, got %d", spawn)
	}
}

// TestDocSync pins SL004: the fixture metrics doc omits exactly the
// "spill" kind, the scheduler's "job-preempted" and the elastic
// "machine-drain" — documented kinds, including the scheduler's
// "job-queued" and the elastic "partition-migrate", stay silent.
func TestDocSync(t *testing.T) {
	var docs []lint.Finding
	for _, f := range corpusFindings(t) {
		if f.ID == lint.IDDocSync {
			docs = append(docs, f)
		}
	}
	if len(docs) != 3 {
		t.Fatalf("want 3 SL004 findings, got %d: %v", len(docs), docs)
	}
	if !strings.Contains(docs[0].Message, "KindSpill") || !strings.Contains(docs[0].Message, `"spill"`) {
		t.Errorf("SL004 message should name KindSpill and its display string, got %q", docs[0].Message)
	}
	if !strings.Contains(docs[1].Message, "KindJobPreempted") || !strings.Contains(docs[1].Message, `"job-preempted"`) {
		t.Errorf("SL004 message should name KindJobPreempted and its display string, got %q", docs[1].Message)
	}
	if !strings.Contains(docs[2].Message, "KindMachineDrain") || !strings.Contains(docs[2].Message, `"machine-drain"`) {
		t.Errorf("SL004 message should name KindMachineDrain and its display string, got %q", docs[2].Message)
	}
	for _, f := range docs {
		if strings.Contains(f.Message, "KindJobQueued") || strings.Contains(f.Message, "KindPartitionMigrate") {
			t.Errorf("documented kind flagged: %q", f.Message)
		}
	}
}

// TestTransitiveChain pins SL005 end to end on the seeded fixture:
// engine.tick → graph.Stamp → graph.loadStamp → time.Now. The finding
// lands at the call site that leaves the deterministic tier, carries the
// full chain outermost-first, and the suppressed twin (tickAllowed) rides
// with its reason. The sink's own SL001 is suppressed in the fixture —
// proof that a suppressed sink still propagates.
func TestTransitiveChain(t *testing.T) {
	var live, suppressed []lint.Finding
	for _, f := range fileFindings(t, "internal/engine/transitive.go") {
		if f.ID != lint.IDTransitive {
			t.Errorf("unexpected %s finding in transitive fixture: %v", f.ID, f)
			continue
		}
		if f.Suppressed {
			suppressed = append(suppressed, f)
		} else {
			live = append(live, f)
		}
	}
	if len(live) != 1 || len(suppressed) != 1 {
		t.Fatalf("want 1 live + 1 suppressed SL005, got %d + %d", len(live), len(suppressed))
	}
	f := live[0]
	if f.Severity != lint.SeverityError {
		t.Errorf("SL005 severity = %s, want error", f.Severity)
	}
	if !strings.Contains(f.Message, "time.Now") {
		t.Errorf("SL005 message should name the sink, got %q", f.Message)
	}
	wantFrames := []string{"engine.tick", "graph.Stamp", "graph.loadStamp", "time.Now"}
	if len(f.Chain) != len(wantFrames) {
		t.Fatalf("chain length = %d, want %d: %v", len(f.Chain), len(wantFrames), f.Chain)
	}
	for i, frame := range f.Chain {
		if !strings.Contains(frame, wantFrames[i]) {
			t.Errorf("chain[%d] = %q, want it to mention %q", i, frame, wantFrames[i])
		}
		if !strings.Contains(frame, ":") || !strings.Contains(frame, "(") {
			t.Errorf("chain[%d] = %q lacks a file:line site", i, frame)
		}
	}
	if suppressed[0].Reason == "" {
		t.Error("suppressed SL005 lost its pragma reason")
	}

	// The sink itself must be a *suppressed* SL001 in the helper package —
	// were it live, the chain test would be proving nothing new.
	for _, f := range fileFindings(t, "internal/graph/stamp.go") {
		if f.ID == lint.IDEntropy && !f.Suppressed {
			t.Errorf("fixture sink SL001 should be suppressed, got live: %v", f)
		}
	}
}

// TestFloatAccum pins SL006: the map-range fold and the ForEach-captured
// scalar are flagged at warn severity; the keyed-slot carve-out and the
// index-disjoint worker write stay silent; the pragma case is suppressed.
func TestFloatAccum(t *testing.T) {
	var live, suppressed []lint.Finding
	for _, f := range fileFindings(t, "internal/propagation/floatacc_bug.go") {
		if f.ID != lint.IDFloatAccum {
			t.Errorf("unexpected %s finding in floatacc fixture: %v", f.ID, f)
			continue
		}
		if f.Severity != lint.SeverityWarn {
			t.Errorf("SL006 severity = %s, want warn", f.Severity)
		}
		if f.Suppressed {
			suppressed = append(suppressed, f)
		} else {
			live = append(live, f)
		}
	}
	if len(live) != 2 || len(suppressed) != 1 {
		t.Fatalf("floatacc_bug.go: want 2 live + 1 suppressed SL006, got %d + %d", len(live), len(suppressed))
	}
	if !strings.Contains(live[0].Message, "map range") {
		t.Errorf("map-range fold message: %q", live[0].Message)
	}
	if !strings.Contains(live[1].Message, "ForEach") || !strings.Contains(live[1].Message, `"total"`) {
		t.Errorf("captured-accumulator message should name ForEach and the variable, got %q", live[1].Message)
	}
}

// TestSharedViews pins SL007: every write shape through a published view —
// tainted alias, direct accessor index, re-slice, field element, field
// reassignment, copy destination, append — is flagged outside the owner;
// the copy-out-then-mutate pattern and the owner packages stay silent; the
// pragma case is suppressed.
func TestSharedViews(t *testing.T) {
	var live, suppressed int
	for _, f := range fileFindings(t, "internal/engine/mutate.go") {
		if f.ID != lint.IDSharedView {
			t.Errorf("unexpected %s finding in mutate fixture: %v", f.ID, f)
			continue
		}
		if f.Suppressed {
			suppressed++
		} else {
			live++
		}
	}
	if live != 8 || suppressed != 1 {
		t.Fatalf("mutate.go: want 8 live + 1 suppressed SL007, got %d + %d", live, suppressed)
	}
	// The owner packages construct the very same views with no findings.
	for _, file := range []string{"internal/graph/graph.go", "internal/storage/part.go"} {
		for _, f := range fileFindings(t, file) {
			if f.ID == lint.IDSharedView {
				t.Errorf("owner-package construction flagged: %v", f)
			}
		}
	}
}

// TestSchemaSync pins SL008 on both halves: the undocumented analyze
// category and the undocumented bench metric/info keys are flagged, the
// documented ones (cpu-bound, wall_seconds, surfer-bench/v1) are silent,
// and the pragma case is suppressed.
func TestSchemaSync(t *testing.T) {
	var msgs []string
	var suppressed int
	for _, f := range corpusFindings(t) {
		if f.ID != lint.IDSchemaSync {
			continue
		}
		if f.Suppressed {
			suppressed++
			if !strings.Contains(f.Message, "CatQueue") {
				t.Errorf("suppressed SL008 should be CatQueue, got %q", f.Message)
			}
			continue
		}
		msgs = append(msgs, f.Message)
	}
	joined := strings.Join(msgs, "\n")
	if len(msgs) != 3 || suppressed != 1 {
		t.Fatalf("want 3 live + 1 suppressed SL008, got %d + %d:\n%s", len(msgs), suppressed, joined)
	}
	for _, want := range []string{"CatSpill", "rank_residual", "converged"} {
		if !strings.Contains(joined, want) {
			t.Errorf("SL008 findings should mention %s:\n%s", want, joined)
		}
	}
	for _, silent := range []string{"CatCPU", "wall_seconds", "surfer-bench/v1"} {
		if strings.Contains(joined, silent) {
			t.Errorf("documented vocabulary %s flagged:\n%s", silent, joined)
		}
	}
}

// TestTierPins is the satellite-6 fixture pin: internal/jobsvc and
// internal/analyze sit in the deterministic tier, proven by findings that
// only fire there (SL003 for jobsvc, SL002 for analyze). If either package
// is ever dropped from the tier table, these findings vanish.
func TestTierPins(t *testing.T) {
	var jobsvc, analyze bool
	for _, f := range fileFindings(t, "internal/jobsvc/queue.go") {
		if f.ID == lint.IDConcurrency {
			jobsvc = true
		}
	}
	for _, f := range fileFindings(t, "internal/analyze/blame.go") {
		if f.ID == lint.IDMapOrder {
			analyze = true
		}
	}
	if !jobsvc {
		t.Error("internal/jobsvc lost its deterministic-tier assignment (no SL003 from the fixture)")
	}
	if !analyze {
		t.Error("internal/analyze lost its deterministic-tier assignment (no SL002 from the fixture)")
	}
}

// TestSeverityModel pins the severity table and its rendering.
func TestSeverityModel(t *testing.T) {
	if got := lint.SeverityOf(lint.IDFloatAccum); got != lint.SeverityWarn {
		t.Errorf("SL006 severity = %s, want warn", got)
	}
	for _, id := range lint.CheckIDs() {
		if id == lint.IDFloatAccum {
			continue
		}
		if got := lint.SeverityOf(id); got != lint.SeverityError {
			t.Errorf("%s severity = %s, want error", id, got)
		}
	}
	if got := lint.SeverityOf("SL999"); got != lint.SeverityError {
		t.Errorf("unknown check severity = %s, want error", got)
	}
	f := lint.Finding{ID: lint.IDFloatAccum, Severity: lint.SeverityWarn, File: "x.go", Line: 1, Col: 2, Message: "m"}
	if got := f.String(); got != "x.go:1:2: SL006[warn]: m" {
		t.Errorf("Finding.String() = %q", got)
	}
}

// TestBaselineWorkflow covers the warn-baseline loop: BaselineFrom captures
// the corpus's unsuppressed warn findings, ApplyBaseline marks exactly
// those Baselined, Failing then drops them while every error-severity
// finding still fails, and the file round-trips through Write/Load.
func TestBaselineWorkflow(t *testing.T) {
	findings := append([]lint.Finding(nil), corpusFindings(t)...)
	b := lint.BaselineFrom(findings)
	if len(b.Findings) == 0 {
		t.Fatal("corpus has warn findings; baseline should not be empty")
	}
	for _, e := range b.Findings {
		if lint.SeverityOf(e.ID) != lint.SeverityWarn {
			t.Errorf("error-severity finding %s leaked into the baseline", e.ID)
		}
	}

	path := filepath.Join(t.TempDir(), "lint-baseline.json")
	if err := lint.WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Findings) != len(b.Findings) {
		t.Fatalf("baseline round-trip lost entries: %d != %d", len(loaded.Findings), len(b.Findings))
	}

	lint.ApplyBaseline(findings, loaded)
	for _, f := range lint.Failing(findings) {
		if f.Severity == lint.SeverityWarn {
			t.Errorf("baselined warn finding still failing: %v", f)
		}
	}
	var errorsStillFail bool
	for _, f := range lint.Failing(findings) {
		if f.Severity == lint.SeverityError {
			errorsStillFail = true
		}
	}
	if !errorsStillFail {
		t.Error("error-severity corpus findings must keep failing under any baseline")
	}

	// A missing baseline file is an empty baseline, not an error.
	empty, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Findings) != 0 {
		t.Errorf("missing baseline file should load empty, got %d entries", len(empty.Findings))
	}
}

// TestOutputsDeterministic runs the analyzer twice and requires the JSON
// and SARIF serializations to match byte for byte — the same bar the
// analyzer holds the engine to.
func TestOutputsDeterministic(t *testing.T) {
	render := func() (string, string) {
		findings, err := lint.Run(corpusConfig(), []string{"./..."})
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var sarif bytes.Buffer
		if err := lint.WriteSARIF(&sarif, findings); err != nil {
			t.Fatal(err)
		}
		return string(j), sarif.String()
	}
	j1, s1 := render()
	j2, s2 := render()
	if j1 != j2 {
		t.Error("JSON output differs between two runs over the same tree")
	}
	if s1 != s2 {
		t.Error("SARIF output differs between two runs over the same tree")
	}
	if !strings.Contains(s1, `"version": "2.1.0"`) {
		t.Error("SARIF output lacks the 2.1.0 version marker")
	}
	if !strings.Contains(s1, "inSource") {
		t.Error("SARIF output lacks suppressions for the corpus pragmas")
	}
	if !strings.Contains(s1, "chain:") {
		t.Error("SARIF output lacks the SL005 chain in the message text")
	}
}

// TestEmptyPattern pins the satellite fix: a pattern matching no Go files
// is an error, not a silently clean run.
func TestEmptyPattern(t *testing.T) {
	_, err := lint.Run(corpusConfig(), []string{"internal/does-not-exist/..."})
	if err == nil || !strings.Contains(err.Error(), "matched no Go files") {
		t.Fatalf("want 'matched no Go files' error, got %v", err)
	}
}

// TestDirPattern checks non-recursive package patterns: analyzing only
// internal/scheduler must not surface engine findings. The doc-sync and
// schema-sync passes are disabled so the run scopes to the one package.
func TestDirPattern(t *testing.T) {
	cfg := corpusConfig()
	cfg.TraceDir, cfg.MetricsDoc = "", ""
	cfg.AnalyzeDir, cfg.BenchDir = "", ""
	findings, err := lint.Run(cfg, []string{"internal/scheduler"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !strings.HasPrefix(f.File, "internal/scheduler/") {
			t.Errorf("pattern leak: %v", f)
		}
	}
	if len(findings) != 6 {
		t.Errorf("internal/scheduler: want 6 findings, got %d:\n%s", len(findings), formatFindings(findings))
	}
}

// TestRepoIsClean runs the real configuration over the real tree: the
// determinism contract — including the transitive SL005 pass, the float
// and shared-view checks and both schema-sync halves — holds on every
// commit, with all suppressions carrying reasons and any warn debt parked
// in the committed baseline. This is the same gate ci.sh runs via the CLI.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	findings, err := lint.Run(lint.DefaultConfig(root), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := lint.LoadBaseline(filepath.Join(root, "lint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	lint.ApplyBaseline(findings, baseline)
	if failing := lint.Failing(findings); len(failing) > 0 {
		t.Errorf("determinism contract violated on the current tree:\n%s", formatFindings(failing))
	}
	for _, f := range findings {
		if f.Suppressed && f.Reason == "" {
			t.Errorf("suppression without reason: %v", f)
		}
	}
	// Replay the new check family explicitly: SL005–SL008 ran (any finding
	// they produced is suppressed or baselined, never silently absent
	// because the pass was skipped).
	for _, id := range []string{lint.IDTransitive, lint.IDFloatAccum, lint.IDSharedView, lint.IDSchemaSync} {
		for _, f := range findings {
			if f.ID == id && !f.Suppressed && !f.Baselined {
				t.Errorf("live %s finding on the real tree: %v", id, f)
			}
		}
	}
}
