package lint_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// corpusConfig scopes the analyzer to the known-bad fixture tree, which
// mirrors the repository layout (internal/engine, internal/apps, ...) so
// the real tier classification and the sanctioned-pool carve-out are
// exercised verbatim.
func corpusConfig() lint.Config {
	return lint.DefaultConfig(filepath.Join("testdata", "src"))
}

func corpusFindings(t *testing.T) []lint.Finding {
	t.Helper()
	findings, err := lint.Run(corpusConfig(), []string{"./..."})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return findings
}

// formatFindings renders findings in the golden format: one line per
// finding, suppressed ones annotated with their pragma reason so the
// suppression inventory is golden-tested too.
func formatFindings(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprint(&b, f.String())
		if f.Suppressed {
			fmt.Fprintf(&b, " [suppressed: %s]", f.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCorpusGolden pins every finding — ID, position, message, suppression
// state — the analyzer reports on the bad-fixture corpus.
func TestCorpusGolden(t *testing.T) {
	got := formatFindings(corpusFindings(t))
	goldenPath := filepath.Join("testdata", "expected.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("corpus findings diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestCorpusFailsTheBuild pins the CLI contract on the corpus: unsuppressed
// findings exist, so surfer-lint would exit nonzero.
func TestCorpusFailsTheBuild(t *testing.T) {
	if n := len(lint.Unsuppressed(corpusFindings(t))); n == 0 {
		t.Fatal("bad-fixture corpus produced no unsuppressed findings; the gate is dead")
	}
}

// TestNRMapRegression re-introduces the PR 1 nrMR.Map bug — emitting
// partial ranks directly from a map range — and asserts surfer-lint flags
// it as SL002 at the range statement.
func TestNRMapRegression(t *testing.T) {
	var hits []lint.Finding
	for _, f := range corpusFindings(t) {
		if f.File == "internal/apps/nrmr_bug.go" {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("nrmr_bug.go: want exactly 1 finding, got %d: %v", len(hits), hits)
	}
	f := hits[0]
	if f.ID != lint.IDMapOrder {
		t.Errorf("nrmr_bug.go finding ID = %s, want %s (map-range emission)", f.ID, lint.IDMapOrder)
	}
	if f.Suppressed {
		t.Error("the nrMR.Map bug must not be suppressible without a pragma")
	}
	if !strings.Contains(f.Message, "emit") {
		t.Errorf("finding should name the emit call, got %q", f.Message)
	}
}

// TestPragmaSuppression covers the //lint:allow path: reasoned pragmas
// (leading and trailing) drop findings from the exit status but keep them
// in the stream with Suppressed=true and the reason; a pragma without a
// reason suppresses nothing.
func TestPragmaSuppression(t *testing.T) {
	var sched []lint.Finding
	for _, f := range corpusFindings(t) {
		if f.File == "internal/scheduler/suppressed.go" {
			sched = append(sched, f)
		}
	}
	if len(sched) != 3 {
		t.Fatalf("suppressed.go: want 3 findings (2 suppressed + 1 bare-pragma), got %d: %v", len(sched), sched)
	}
	var suppressed, live int
	for _, f := range sched {
		if f.Suppressed {
			suppressed++
			if f.Reason == "" {
				t.Errorf("suppressed finding at line %d has no reason", f.Line)
			}
		} else {
			live++
		}
	}
	if suppressed != 2 || live != 1 {
		t.Fatalf("want 2 suppressed + 1 live, got %d + %d", suppressed, live)
	}
	for _, f := range lint.Unsuppressed(sched) {
		if f.Suppressed {
			t.Fatal("Unsuppressed returned a suppressed finding")
		}
	}

	// The -json contract: suppressed findings serialize with
	// "suppressed": true and their pragma reason.
	raw, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"suppressed":true`) {
		t.Errorf("JSON output lacks suppressed:true: %s", raw)
	}
	if !strings.Contains(string(raw), "one-shot process start stamp") {
		t.Errorf("JSON output lacks the pragma reason: %s", raw)
	}
}

// TestSanctionedPoolExempt pins the SL003 carve-out: the goroutine in the
// corpus copy of internal/engine/parallel.go produces no finding, while
// spawn.go in the same package is flagged.
func TestSanctionedPoolExempt(t *testing.T) {
	for _, f := range corpusFindings(t) {
		if f.File == "internal/engine/parallel.go" {
			t.Errorf("sanctioned worker pool flagged: %v", f)
		}
	}
	var spawn int
	for _, f := range corpusFindings(t) {
		if f.File == "internal/engine/spawn.go" && f.ID == lint.IDConcurrency {
			spawn++
		}
	}
	// One go statement + one multi-case select; the single-case select is
	// deterministic and exempt.
	if spawn != 2 {
		t.Errorf("spawn.go: want 2 SL003 findings, got %d", spawn)
	}
}

// TestDocSync pins SL004: the fixture metrics doc omits exactly the
// "spill" kind, the scheduler's "job-preempted" and the elastic
// "machine-drain" — documented kinds, including the scheduler's
// "job-queued" and the elastic "partition-migrate", stay silent.
func TestDocSync(t *testing.T) {
	var docs []lint.Finding
	for _, f := range corpusFindings(t) {
		if f.ID == lint.IDDocSync {
			docs = append(docs, f)
		}
	}
	if len(docs) != 3 {
		t.Fatalf("want 3 SL004 findings, got %d: %v", len(docs), docs)
	}
	if !strings.Contains(docs[0].Message, "KindSpill") || !strings.Contains(docs[0].Message, `"spill"`) {
		t.Errorf("SL004 message should name KindSpill and its display string, got %q", docs[0].Message)
	}
	if !strings.Contains(docs[1].Message, "KindJobPreempted") || !strings.Contains(docs[1].Message, `"job-preempted"`) {
		t.Errorf("SL004 message should name KindJobPreempted and its display string, got %q", docs[1].Message)
	}
	if !strings.Contains(docs[2].Message, "KindMachineDrain") || !strings.Contains(docs[2].Message, `"machine-drain"`) {
		t.Errorf("SL004 message should name KindMachineDrain and its display string, got %q", docs[2].Message)
	}
	for _, f := range docs {
		if strings.Contains(f.Message, "KindJobQueued") || strings.Contains(f.Message, "KindPartitionMigrate") {
			t.Errorf("documented kind flagged: %q", f.Message)
		}
	}
}

// TestDirPattern checks non-recursive package patterns: analyzing only
// internal/scheduler must not surface engine findings.
func TestDirPattern(t *testing.T) {
	cfg := corpusConfig()
	cfg.TraceDir, cfg.MetricsDoc = "", "" // scope to the one package
	findings, err := lint.Run(cfg, []string{"internal/scheduler"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !strings.HasPrefix(f.File, "internal/scheduler/") {
			t.Errorf("pattern leak: %v", f)
		}
	}
	if len(findings) != 3 {
		t.Errorf("internal/scheduler: want 3 findings, got %d", len(findings))
	}
}

// TestRepoIsClean runs the real configuration over the real tree: the
// determinism contract holds on every commit, with all suppressions
// carrying reasons. This is the same gate ci.sh runs via the CLI.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	findings, err := lint.Run(lint.DefaultConfig(root), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if live := lint.Unsuppressed(findings); len(live) > 0 {
		t.Errorf("determinism contract violated on the current tree:\n%s", formatFindings(live))
	}
	for _, f := range findings {
		if f.Suppressed && f.Reason == "" {
			t.Errorf("suppression without reason: %v", f)
		}
	}
}
