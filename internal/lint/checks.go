package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// addFunc appends a finding at a position.
type addFunc func(pos token.Pos, id, format string, args ...any)

// forbiddenTime are time-package calls that read or depend on the wall
// clock. Virtual time lives in the engine's event loop; wall time in a
// simulation package makes results depend on the host.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// forbiddenOS are environment reads: configuration must arrive through
// plumbed options, not ambient process state.
var forbiddenOS = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// allowedRand are the math/rand constructors: building a seeded *rand.Rand
// is exactly what the contract wants. Everything else at package level
// (Intn, Perm, Shuffle, Float64, ...) draws from the process-global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// checkEntropy is SL001: calls to wall-clock, environment or
// global-randomness functions. It resolves the file's imports so aliased
// packages are caught and same-named locals are not.
func checkEntropy(file *ast.File, add addFunc) {
	imports := importNames(file)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil { // Obj != nil: a local, not the package
			return true
		}
		switch imports[pkg.Name] {
		case "time":
			if forbiddenTime[sel.Sel.Name] {
				add(call.Pos(), IDEntropy,
					"call to %s.%s reads the wall clock; simulated time comes from the engine clock",
					pkg.Name, sel.Sel.Name)
			}
		case "os":
			if forbiddenOS[sel.Sel.Name] {
				add(call.Pos(), IDEntropy,
					"call to %s.%s reads ambient process environment; plumb configuration through options",
					pkg.Name, sel.Sel.Name)
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[sel.Sel.Name] {
				add(call.Pos(), IDEntropy,
					"call to %s.%s draws from the global rand source; use a seeded, plumbed *rand.Rand",
					pkg.Name, sel.Sel.Name)
			}
		}
		return true
	})
}

// checkConcurrency is SL003: go statements and multi-case selects outside
// the sanctioned worker pool (internal/engine/parallel.go). Goroutine
// scheduling order is nondeterministic; the contract allows concurrency
// only behind Pool.ForEach's index-disjoint discipline.
func checkConcurrency(file *ast.File, add addFunc) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			add(s.Pos(), IDConcurrency,
				"go statement outside the sanctioned worker pool; route parallel work through engine.Pool.ForEach")
		case *ast.SelectStmt:
			if len(s.Body.List) > 1 {
				add(s.Pos(), IDConcurrency,
					"multi-case select resolves by runtime scheduling order; deterministic code must not race channels")
			}
		}
		return true
	})
}

// checkMapRangeEmission is SL002, the PR 1 nrMR.Map bug class: a range
// over a map whose body feeds ordered output — an emit callback, a trace
// Emit, a channel send, or an append to a result slice — inherits the
// runtime's randomized map iteration order. Appending keys and sorting
// afterwards (the sortedKeys idiom) is the sanctioned fix: an append whose
// target is passed to a sort call later in the same block is accepted.
func checkMapRangeEmission(file *ast.File, add addFunc) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		inspectStmtLists(fn.Body, func(stmts []ast.Stmt) {
			for i, st := range stmts {
				rng, ok := st.(*ast.RangeStmt)
				if !ok || !isMapExpr(rng.X, fn) {
					continue
				}
				direct, appends := findEmissions(rng.Body)
				for _, em := range direct {
					add(em.pos, IDMapOrder,
						"map iteration order is nondeterministic and this range body %s; emit in sorted key order",
						em.what)
				}
				for _, em := range appends {
					if sortedAfter(stmts[i+1:], em.target) {
						continue
					}
					add(em.pos, IDMapOrder,
						"map iteration order is nondeterministic and this range body appends to %q, which is never sorted afterwards",
						em.target)
				}
			}
		})
	}
}

// inspectStmtLists visits every statement list in a function body: blocks,
// switch cases and select clauses.
func inspectStmtLists(body *ast.BlockStmt, visit func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			visit(s.List)
		case *ast.CaseClause:
			visit(s.Body)
		case *ast.CommClause:
			visit(s.Body)
		}
		return true
	})
}

type emission struct {
	pos    token.Pos
	what   string // direct emissions: what the body does
	target string // append emissions: the slice identifier
}

// findEmissions scans a range body for statements whose effect is ordered:
// calls to an emit callback or an Emit/Record method, channel sends, and
// appends to an identifier (returned separately so the caller can look for
// a sanctioning sort).
func findEmissions(body *ast.BlockStmt) (direct, appends []emission) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			direct = append(direct, emission{pos: s.Pos(), what: "sends on a channel"})
		case *ast.CallExpr:
			switch fun := s.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "emit" {
					direct = append(direct, emission{pos: s.Pos(), what: "calls emit"})
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Emit" || fun.Sel.Name == "Record" {
					direct = append(direct, emission{pos: s.Pos(), what: "calls " + fun.Sel.Name})
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" {
				appends = append(appends, emission{pos: s.Pos(), target: lhs.Name})
			}
		}
		return true
	})
	return direct, appends
}

// sortedAfter reports whether any statement in rest sorts target: a
// sort.* / slices.* call taking it, or any call to a function whose name
// mentions sorting (a sortKeys-style helper).
func sortedAfter(rest []ast.Stmt, target string) bool {
	found := false
	for _, st := range rest {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !mentionsIdent(call.Args, target) {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if pkg, ok := fun.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
					found = true
				}
			case *ast.Ident:
				if strings.Contains(strings.ToLower(fun.Name), "sort") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func mentionsIdent(exprs []ast.Expr, name string) bool {
	for _, e := range exprs {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				hit = true
			}
			return !hit
		})
		if hit {
			return true
		}
	}
	return false
}

// isMapExpr decides syntactically whether expr has a map type, resolving
// identifiers against parameters and local declarations of the enclosing
// function. Unresolvable expressions (cross-package calls, struct fields)
// return false: without go/types the check stays conservative and quiet
// rather than guessing.
func isMapExpr(expr ast.Expr, fn *ast.FuncDecl) bool {
	t := exprType(expr, fn, 0)
	_, ok := t.(*ast.MapType)
	return ok
}

const maxResolveDepth = 8

// exprType infers the type expression of expr within fn, or nil.
func exprType(expr ast.Expr, fn *ast.FuncDecl, depth int) ast.Expr {
	if depth > maxResolveDepth {
		return nil
	}
	switch e := expr.(type) {
	case *ast.Ident:
		return identType(e.Name, fn, depth)
	case *ast.IndexExpr:
		// x[i]: indexing a slice/array yields the element, a map the value.
		switch t := exprType(e.X, fn, depth+1).(type) {
		case *ast.ArrayType:
			return t.Elt
		case *ast.MapType:
			return t.Value
		}
	case *ast.CompositeLit:
		return e.Type
	case *ast.CallExpr:
		if fun, ok := e.Fun.(*ast.Ident); ok && fun.Name == "make" && len(e.Args) > 0 {
			return e.Args[0]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprType(e.X, fn, depth+1)
		}
	case *ast.ParenExpr:
		return exprType(e.X, fn, depth+1)
	}
	return nil
}

// identType finds the declared or inferred type of a name in fn: receiver,
// parameters, then the last assignment or var declaration in the body. A
// syntactic nearest-wins lookup — shadowing across nested scopes is rare
// enough in this codebase to accept.
func identType(name string, fn *ast.FuncDecl, depth int) ast.Expr {
	if fn.Recv != nil {
		if t := fieldType(fn.Recv, name); t != nil {
			return t
		}
	}
	if fn.Type.Params != nil {
		if t := fieldType(fn.Type.Params, name); t != nil {
			return t
		}
	}
	var typ ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != name || i >= len(s.Rhs) {
					continue
				}
				if t := exprType(s.Rhs[i], fn, depth+1); t != nil {
					typ = t
				}
			}
		case *ast.ValueSpec:
			for _, id := range s.Names {
				if id.Name == name && s.Type != nil {
					typ = s.Type
				}
			}
		}
		return true
	})
	return typ
}

func fieldType(fields *ast.FieldList, name string) ast.Expr {
	for _, f := range fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return f.Type
			}
		}
	}
	return nil
}

// importNames maps each local package name of the file to its import path.
func importNames(file *ast.File) map[string]string {
	m := make(map[string]string, len(file.Imports))
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}
