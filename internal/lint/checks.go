package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// addFunc appends a finding at a position.
type addFunc func(pos token.Pos, id, format string, args ...any)

// forbiddenTime are time-package calls that read or depend on the wall
// clock. Virtual time lives in the engine's event loop; wall time in a
// simulation package makes results depend on the host.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// forbiddenOS are environment reads: configuration must arrive through
// plumbed options, not ambient process state.
var forbiddenOS = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// allowedRand are the math/rand constructors: building a seeded *rand.Rand
// is exactly what the contract wants. Everything else at package level
// (Intn, Perm, Shuffle, Float64, ...) draws from the process-global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// classifySink reports whether a call expression is an entropy sink —
// wall clock, ambient environment, or the global rand source — resolving
// the package qualifier through the type checker (aliases and shadowed
// names handled exactly). The returned strings are the local qualifier as
// written, the selector, and the SL001 message template.
func classifySink(ctx *fileCtx, call *ast.CallExpr) (qual, name, format string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	pkg, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", "", false
	}
	switch ctx.pkgPathOf(pkg) {
	case "time":
		if forbiddenTime[sel.Sel.Name] {
			return pkg.Name, sel.Sel.Name,
				"call to %s.%s reads the wall clock; simulated time comes from the engine clock", true
		}
	case "os":
		if forbiddenOS[sel.Sel.Name] {
			return pkg.Name, sel.Sel.Name,
				"call to %s.%s reads ambient process environment; plumb configuration through options", true
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[sel.Sel.Name] {
			return pkg.Name, sel.Sel.Name,
				"call to %s.%s draws from the global rand source; use a seeded, plumbed *rand.Rand", true
		}
	}
	return "", "", "", false
}

// checkEntropy is SL001: direct calls to wall-clock, environment or
// global-randomness functions.
func checkEntropy(ctx *fileCtx) {
	ast.Inspect(ctx.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if qual, name, format, hit := classifySink(ctx, call); hit {
			ctx.add(call.Pos(), IDEntropy, format, qual, name)
		}
		return true
	})
}

// checkConcurrency is SL003: go statements and multi-case selects outside
// the sanctioned worker pool (internal/engine/parallel.go). Goroutine
// scheduling order is nondeterministic; the contract allows concurrency
// only behind Pool.ForEach's index-disjoint discipline.
func checkConcurrency(ctx *fileCtx) {
	ast.Inspect(ctx.file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			ctx.add(s.Pos(), IDConcurrency,
				"go statement outside the sanctioned worker pool; route parallel work through engine.Pool.ForEach")
		case *ast.SelectStmt:
			if len(s.Body.List) > 1 {
				ctx.add(s.Pos(), IDConcurrency,
					"multi-case select resolves by runtime scheduling order; deterministic code must not race channels")
			}
		}
		return true
	})
}

// checkMapRangeEmission is SL002, the PR 1 nrMR.Map bug class: a range
// over a map whose body feeds ordered output — an emit callback, a trace
// Emit, a channel send, or an append to a result slice — inherits the
// runtime's randomized map iteration order. Appending keys and sorting
// afterwards (the sortedKeys idiom) is the sanctioned fix: an append whose
// target is passed to a sort call later in the same block is accepted.
//
// Map-ness is decided by the type checker, so struct fields, cross-package
// accessors and every aliasing the v1 syntactic resolver had to skip are
// now covered; the syntactic resolver remains as the fallback when type
// information is incomplete (the known-bad corpus is linted on purpose).
func checkMapRangeEmission(ctx *fileCtx) {
	for _, decl := range ctx.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		inspectStmtLists(fn.Body, func(stmts []ast.Stmt) {
			for i, st := range stmts {
				rng, ok := st.(*ast.RangeStmt)
				if !ok || !ctx.isMapRange(rng, fn) {
					continue
				}
				direct, appends := findEmissions(rng.Body)
				for _, em := range direct {
					ctx.add(em.pos, IDMapOrder,
						"map iteration order is nondeterministic and this range body %s; emit in sorted key order",
						em.what)
				}
				for _, em := range appends {
					if sortedAfter(stmts[i+1:], em.target) {
						continue
					}
					ctx.add(em.pos, IDMapOrder,
						"map iteration order is nondeterministic and this range body appends to %q, which is never sorted afterwards",
						em.target)
				}
			}
		})
	}
}

// isMapRange decides whether a range statement iterates a map, typed
// first, syntactic fallback second.
func (ctx *fileCtx) isMapRange(rng *ast.RangeStmt, fn *ast.FuncDecl) bool {
	if t := ctx.typeOf(rng.X); t != nil {
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	return isMapExpr(rng.X, fn)
}

// inspectStmtLists visits every statement list in a function body: blocks,
// switch cases and select clauses.
func inspectStmtLists(body *ast.BlockStmt, visit func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			visit(s.List)
		case *ast.CaseClause:
			visit(s.Body)
		case *ast.CommClause:
			visit(s.Body)
		}
		return true
	})
}

type emission struct {
	pos    token.Pos
	what   string // direct emissions: what the body does
	target string // append emissions: the slice identifier
}

// findEmissions scans a range body for statements whose effect is ordered:
// calls to an emit callback or an Emit/Record method, channel sends, and
// appends to an identifier (returned separately so the caller can look for
// a sanctioning sort).
func findEmissions(body *ast.BlockStmt) (direct, appends []emission) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			direct = append(direct, emission{pos: s.Pos(), what: "sends on a channel"})
		case *ast.CallExpr:
			switch fun := s.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "emit" {
					direct = append(direct, emission{pos: s.Pos(), what: "calls emit"})
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Emit" || fun.Sel.Name == "Record" {
					direct = append(direct, emission{pos: s.Pos(), what: "calls " + fun.Sel.Name})
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" {
				appends = append(appends, emission{pos: s.Pos(), target: lhs.Name})
			}
		}
		return true
	})
	return direct, appends
}

// sortedAfter reports whether any statement in rest sorts target: a
// sort.* / slices.* call taking it, or any call to a function whose name
// mentions sorting (a sortKeys-style helper).
func sortedAfter(rest []ast.Stmt, target string) bool {
	found := false
	for _, st := range rest {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !mentionsIdent(call.Args, target) {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if pkg, ok := fun.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
					found = true
				}
			case *ast.Ident:
				if strings.Contains(strings.ToLower(fun.Name), "sort") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func mentionsIdent(exprs []ast.Expr, name string) bool {
	for _, e := range exprs {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				hit = true
			}
			return !hit
		})
		if hit {
			return true
		}
	}
	return false
}

// isMapExpr decides syntactically whether expr has a map type, resolving
// identifiers against parameters and local declarations of the enclosing
// function — the pre-types fallback, kept for partial-information files.
func isMapExpr(expr ast.Expr, fn *ast.FuncDecl) bool {
	t := exprType(expr, fn, 0)
	_, ok := t.(*ast.MapType)
	return ok
}

const maxResolveDepth = 8

// exprType infers the type expression of expr within fn, or nil.
func exprType(expr ast.Expr, fn *ast.FuncDecl, depth int) ast.Expr {
	if depth > maxResolveDepth {
		return nil
	}
	switch e := expr.(type) {
	case *ast.Ident:
		return identType(e.Name, fn, depth)
	case *ast.IndexExpr:
		// x[i]: indexing a slice/array yields the element, a map the value.
		switch t := exprType(e.X, fn, depth+1).(type) {
		case *ast.ArrayType:
			return t.Elt
		case *ast.MapType:
			return t.Value
		}
	case *ast.CompositeLit:
		return e.Type
	case *ast.CallExpr:
		if fun, ok := e.Fun.(*ast.Ident); ok && fun.Name == "make" && len(e.Args) > 0 {
			return e.Args[0]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprType(e.X, fn, depth+1)
		}
	case *ast.ParenExpr:
		return exprType(e.X, fn, depth+1)
	}
	return nil
}

// identType finds the declared or inferred type of a name in fn: receiver,
// parameters, then the last assignment or var declaration in the body. A
// syntactic nearest-wins lookup — shadowing across nested scopes is rare
// enough in this codebase to accept.
func identType(name string, fn *ast.FuncDecl, depth int) ast.Expr {
	if fn.Recv != nil {
		if t := fieldType(fn.Recv, name); t != nil {
			return t
		}
	}
	if fn.Type.Params != nil {
		if t := fieldType(fn.Type.Params, name); t != nil {
			return t
		}
	}
	var typ ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != name || i >= len(s.Rhs) {
					continue
				}
				if t := exprType(s.Rhs[i], fn, depth+1); t != nil {
					typ = t
				}
			}
		case *ast.ValueSpec:
			for _, id := range s.Names {
				if id.Name == name && s.Type != nil {
					typ = s.Type
				}
			}
		}
		return true
	})
	return typ
}

func fieldType(fields *ast.FieldList, name string) ast.Expr {
	for _, f := range fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return f.Type
			}
		}
	}
	return nil
}
