// SL006: order-sensitive float accumulation. Float addition is not
// associative, so a fold whose visit order varies — a compound assignment
// inside a map range, or an accumulator captured across Pool.ForEach
// worker goroutines — can change the low bits between runs even when every
// input is identical. That is exactly the failure mode the bit-identical
// trace gates exist to catch, hours later and much more expensively.
//
// Two carve-outs keep the check precise: writing m[k] += x where k is the
// range key touches each slot exactly once regardless of order, and
// indexed writes inside a ForEach body follow the pool's index-disjoint
// discipline. Both are skipped.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var floatCompound = map[token.Token]string{
	token.ADD_ASSIGN: "+=",
	token.SUB_ASSIGN: "-=",
	token.MUL_ASSIGN: "*=",
	token.QUO_ASSIGN: "/=",
}

func checkFloatAccum(ctx *fileCtx) {
	for _, decl := range ctx.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.RangeStmt:
				if ctx.isMapRange(s, fn) {
					ctx.flagMapRangeAccums(s, fn)
				}
			case *ast.CallExpr:
				if sel, ok := s.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "ForEach" {
					for _, arg := range s.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							ctx.flagCapturedAccums(lit)
						}
					}
				}
			}
			return true
		})
	}
}

// flagMapRangeAccums reports float compound assignments inside a map-range
// body, excluding per-key slot updates (LHS indexed exactly by the range
// key variable).
func (ctx *fileCtx) flagMapRangeAccums(rng *ast.RangeStmt, fn *ast.FuncDecl) {
	keyObj := ctx.identObj(rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		op, compound := floatCompound[as.Tok]
		if !compound || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if id, ok := idx.Index.(*ast.Ident); ok {
				if obj := ctx.identObj(id); obj != nil && obj == keyObj {
					return true // m[k] op= x: one slot per key, order-free
				}
				if keyID, ok := rng.Key.(*ast.Ident); ok && keyObj == nil && id.Name == keyID.Name {
					return true // syntactic fallback for partially typed files
				}
			}
		}
		if !ctx.isFloatExpr(lhs, fn) {
			return true
		}
		ctx.add(as.Pos(), IDFloatAccum,
			"float %s inside a map range folds in nondeterministic iteration order; accumulate into a keyed slot or sort the keys first", op)
		return true
	})
}

// flagCapturedAccums reports float compound assignments inside a ForEach
// worker body whose target is captured from the enclosing scope — a shared
// accumulator raced across workers. Indexed writes are the pool's
// sanctioned index-disjoint pattern and are skipped.
func (ctx *fileCtx) flagCapturedAccums(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		op, compound := floatCompound[as.Tok]
		if !compound || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true // indexed or field writes: index-disjoint discipline
		}
		obj := ctx.identObj(id)
		if obj == nil || !isFloat(obj.Type()) {
			return true
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the worker body: private state
		}
		ctx.add(as.Pos(), IDFloatAccum,
			"float %s into %q captured across ForEach workers; merge order is scheduling-dependent — reduce per-index and fold in index order", op, id.Name)
		return true
	})
}

// identObj resolves an identifier expression to its object, or nil.
func (ctx *fileCtx) identObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || ctx.info == nil {
		return nil
	}
	if obj := ctx.info.Uses[id]; obj != nil {
		return obj
	}
	if obj := ctx.info.Defs[id]; obj != nil {
		return obj
	}
	return nil
}

// isFloatExpr decides float-ness of an lvalue, typed first, falling back
// to the syntactic resolver on partially typed files.
func (ctx *fileCtx) isFloatExpr(e ast.Expr, fn *ast.FuncDecl) bool {
	if t := ctx.typeOf(e); t != nil {
		return isFloat(t)
	}
	if t := exprType(e, fn, 0); t != nil {
		if id, ok := t.(*ast.Ident); ok {
			return id.Name == "float64" || id.Name == "float32"
		}
	}
	return false
}
