// The //lint:allow pragma path: parsing, hygiene auditing (SL000) and
// suppression. A pragma suppresses a finding of the named check on its own
// line or the line directly below; the reason is mandatory, and a pragma
// that fails to parse is itself an error-severity finding so dead or bare
// suppressions cannot accumulate silently.

package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

const pragmaMarker = "//lint:allow"

// pragma is one parsed //lint:allow comment.
type pragma struct {
	line   int
	col    int
	id     string // check being allowed, "" if unparseable
	reason string
	// malformed is the empty string for a valid pragma, otherwise a short
	// diagnosis used in the SL000 message.
	malformed string
	text      string
}

var pragmaIDRE = regexp.MustCompile(`^SL\d{3}$`)

// parsePragma classifies one comment's text. ok is false when the comment
// is not a //lint:allow pragma at all (ordinary prose); a pragma that IS
// one but is unusable comes back with malformed set.
func parsePragma(text string) (id, reason, malformed string, ok bool) {
	rest, found := strings.CutPrefix(text, pragmaMarker)
	if !found {
		return "", "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// "//lint:allowed" — prose, not a pragma.
		return "", "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "missing check ID and reason", true
	}
	id = fields[0]
	if !pragmaIDRE.MatchString(id) {
		return id, "", "check ID must look like SLnnn, got " + strconvQuote(id), true
	}
	if !KnownCheck(id) {
		return id, "", "unknown check " + id, true
	}
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), id))
	if reason == "" {
		return id, "", "suppression requires a non-empty reason", true
	}
	return id, reason, "", true
}

// strconvQuote is a tiny inline %q without importing strconv everywhere.
func strconvQuote(s string) string {
	b := make([]byte, 0, len(s)+2)
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' {
			b = append(b, '\\', c)
		} else if c >= 0x20 && c < 0x7f {
			b = append(b, c)
		} else {
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'x', hex[c>>4], hex[c&0xf])
		}
	}
	return string(append(b, '"'))
}

// filePragmas extracts every //lint:allow pragma of a file, valid or not.
func filePragmas(fset *token.FileSet, file *ast.File) []pragma {
	var out []pragma
	for _, group := range file.Comments {
		for _, c := range group.List {
			id, reason, malformed, ok := parsePragma(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			out = append(out, pragma{
				line: pos.Line, col: pos.Column,
				id: id, reason: reason, malformed: malformed, text: c.Text,
			})
		}
	}
	return out
}

// pragmaFindings audits a file's pragmas: every malformed one is an SL000
// error at the pragma itself.
func pragmaFindings(relFile string, pragmas []pragma) []Finding {
	var out []Finding
	for _, p := range pragmas {
		if p.malformed == "" {
			continue
		}
		out = append(out, Finding{
			ID:   IDPragma,
			File: relFile,
			Line: p.line,
			Col:  p.col,
			Message: "malformed //lint:allow pragma (" + p.malformed +
				"): it suppresses nothing",
		})
	}
	return out
}

// suppressAll marks findings covered by a valid pragma on the same line or
// the line directly above, across all analyzed files. SL000 findings are
// never suppressible — the audit itself must not be silenceable.
func suppressAll(prog *program, analyzed map[string]*pkgInfo, findings []Finding) {
	type allow struct {
		id     string
		reason string
	}
	byFileLine := map[string]map[int][]allow{}
	for _, pi := range analyzed {
		for i, file := range pi.files {
			for _, p := range filePragmas(prog.fset, file) {
				if p.malformed != "" {
					continue
				}
				m := byFileLine[pi.relFiles[i]]
				if m == nil {
					m = map[int][]allow{}
					byFileLine[pi.relFiles[i]] = m
				}
				m[p.line] = append(m[p.line], allow{id: p.id, reason: p.reason})
			}
		}
	}
	if len(byFileLine) == 0 {
		return
	}
	for i := range findings {
		if findings[i].ID == IDPragma {
			continue
		}
		m := byFileLine[findings[i].File]
		if m == nil {
			continue
		}
		for _, line := range []int{findings[i].Line, findings[i].Line - 1} {
			for _, a := range m[line] {
				if a.id == findings[i].ID {
					findings[i].Suppressed = true
					findings[i].Reason = a.reason
				}
			}
		}
	}
}

// suppressWith applies one parsed file's pragmas to findings already known
// to belong to that file — the doc-sync passes parse their packages
// outside the loader and suppress locally.
func suppressWith(fset *token.FileSet, file *ast.File, findings []Finding) {
	byLine := map[int][]pragma{}
	for _, p := range filePragmas(fset, file) {
		if p.malformed != "" {
			continue
		}
		byLine[p.line] = append(byLine[p.line], p)
	}
	if len(byLine) == 0 {
		return
	}
	for i := range findings {
		if findings[i].ID == IDPragma {
			continue
		}
		for _, line := range []int{findings[i].Line, findings[i].Line - 1} {
			for _, a := range byLine[line] {
				if a.id == findings[i].ID {
					findings[i].Suppressed = true
					findings[i].Reason = a.reason
				}
			}
		}
	}
}
