// Fuzz targets for the two parsers whose inputs are least controlled: the
// //lint:allow pragma parser (arbitrary comment text from any file the
// analyzer ever reads) and the finding deduplicator (streams merged from
// several passes). Seed corpus under testdata/fuzz/ is committed; `go test
// -fuzz` extends it locally.

package lint

import (
	"strings"
	"testing"
)

func FuzzParsePragma(f *testing.F) {
	for _, seed := range []string{
		"//lint:allow SL001 one-shot process start stamp",
		"//lint:allow SL001",
		"//lint:allow",
		"//lint:allowed is prose, not a pragma",
		"//lint:allow SL999 retired check",
		"//lint:allow entropy misspelled reference",
		"//lint:allow SL006\ttab-separated reason",
		"//lint:allow  SL007   extra   interior   spacing",
		"// ordinary comment",
		"//lint:allow SL001 SL002 two IDs, second one is reason text",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		id, reason, malformed, ok := parsePragma(text)
		if !ok {
			// Not a pragma: nothing may leak out.
			if id != "" || reason != "" || malformed != "" {
				t.Fatalf("non-pragma %q returned (%q, %q, %q)", text, id, reason, malformed)
			}
			return
		}
		if !strings.HasPrefix(text, pragmaMarker) {
			t.Fatalf("parsed a pragma out of %q, which lacks the marker", text)
		}
		if malformed == "" {
			// Valid pragma: usable ID, mandatory non-blank reason.
			if !KnownCheck(id) {
				t.Fatalf("valid pragma %q carries unknown check %q", text, id)
			}
			if strings.TrimSpace(reason) == "" {
				t.Fatalf("valid pragma %q has a blank reason", text)
			}
		} else if reason != "" {
			// Malformed pragmas never suppress, so they must never carry a
			// reason a suppression could use.
			t.Fatalf("malformed pragma %q carries reason %q", text, reason)
		}
	})
}

func FuzzDedup(f *testing.F) {
	f.Add("SL001", "a.go", "m1", 1, 2, "SL002", "b.go", "m2", 3, 4)
	f.Add("SL001", "a.go", "m1", 1, 2, "SL001", "a.go", "m1", 1, 2)
	f.Add("SL000", "", "", 0, 0, "SL000", "", "", 0, 0)
	f.Add("SL007", "x.go", "same line, different col", 7, 1, "SL007", "x.go", "same line, different col", 7, 9)
	f.Fuzz(func(t *testing.T, id1, file1, msg1 string, line1, col1 int, id2, file2, msg2 string, line2, col2 int) {
		in := []Finding{
			{ID: id1, File: file1, Message: msg1, Line: line1, Col: col1},
			{ID: id2, File: file2, Message: msg2, Line: line2, Col: col2},
			{ID: id1, File: file1, Message: msg1, Line: line1, Col: col1}, // guaranteed duplicate
		}
		out := Dedup(append([]Finding(nil), in...))
		if len(out) > len(in) {
			t.Fatalf("Dedup grew the stream: %d -> %d", len(in), len(out))
		}
		type key struct {
			id, file, msg string
			line, col     int
		}
		seen := map[key]bool{}
		for _, f := range out {
			k := key{f.ID, f.File, f.Message, f.Line, f.Col}
			if seen[k] {
				t.Fatalf("duplicate survived Dedup: %+v", f)
			}
			seen[k] = true
		}
		// Every input finding must still be represented.
		for _, f := range in {
			if !seen[key{f.ID, f.File, f.Message, f.Line, f.Col}] {
				t.Fatalf("Dedup dropped a distinct finding: %+v", f)
			}
		}
		// Idempotence and first-wins order: out is a subsequence of in.
		again := Dedup(append([]Finding(nil), out...))
		if len(again) != len(out) {
			t.Fatalf("Dedup not idempotent: %d -> %d", len(out), len(again))
		}
		keyOf := func(f Finding) key { return key{f.ID, f.File, f.Message, f.Line, f.Col} }
		i := 0
		for _, f := range in {
			if i < len(out) && keyOf(out[i]) == keyOf(f) {
				i++
			}
		}
		if i != len(out) {
			t.Fatalf("Dedup reordered findings: %v not a subsequence of %v", out, in)
		}
	})
}
