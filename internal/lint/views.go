// SL007: mutation-after-publish of shared read-only views. The CSR fast
// path hands callers the engine's own backing arrays (graph.Offsets /
// graph.Targets) and the storage layer publishes flat partition tables
// (PartInfo.Vertices / PartInfo.CrossDst); every consumer shares one copy,
// so a single write corrupts every replica and every later job on the
// machine. The owning package — the constructor set — may write while
// building; everybody else gets a types-resolved taint pass: values
// obtained from a view accessor or field (directly, via aliasing, or via
// re-slicing) must never appear on the left of an element write, a copy
// destination, an append, or a field reassignment.

package lint

import (
	"go/ast"
	"go/types"
)

// viewRef describes how an expression touches a configured shared view.
type viewRef struct {
	spec *ViewSpec
	name string // "graph.Graph.Offsets()" / "storage.PartInfo.Vertices"
}

func checkSharedViews(ctx *fileCtx) {
	specs := ctx.activeViewSpecs()
	if len(specs) == 0 || ctx.info == nil {
		return
	}
	for _, decl := range ctx.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ctx.checkViewsInFunc(fn, specs)
	}
}

// activeViewSpecs returns the view specs whose owner is NOT this package:
// inside the owner the view is still being constructed.
func (ctx *fileCtx) activeViewSpecs() []*ViewSpec {
	var specs []*ViewSpec
	for i := range ctx.cfg.SharedViews {
		vs := &ctx.cfg.SharedViews[i]
		if vs.Pkg != ctx.pkgRel {
			specs = append(specs, vs)
		}
	}
	return specs
}

// checkViewsInFunc runs a single forward pass over one function body:
// taint identifiers bound to view-derived slices, then flag writes through
// anything tainted (or through a view expression directly).
func (ctx *fileCtx) checkViewsInFunc(fn *ast.FuncDecl, specs []*ViewSpec) {
	taint := map[types.Object]viewRef{}

	// viewExpr classifies an expression as view-derived: a direct accessor
	// call / field selection, a tainted identifier, or a slice of either.
	var viewExpr func(e ast.Expr) (viewRef, bool)
	viewExpr = func(e ast.Expr) (viewRef, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if ref, ok := ctx.viewMethod(sel, specs); ok {
					return ref, true
				}
			}
		case *ast.SelectorExpr:
			if ref, ok := ctx.viewField(x, specs); ok {
				return ref, true
			}
		case *ast.Ident:
			if obj := ctx.identObj(x); obj != nil {
				if ref, ok := taint[obj]; ok {
					return ref, true
				}
			}
		case *ast.SliceExpr:
			return viewExpr(x.X)
		}
		return viewRef{}, false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// Propagate taint: x := view, x := view[1:], x = alias.
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					if ref, ok := viewExpr(s.Rhs[i]); ok {
						if id, isID := s.Lhs[i].(*ast.Ident); isID {
							if obj := ctx.identObj(id); obj != nil {
								taint[obj] = ref
							}
						}
					}
				}
			}
			for _, lhs := range s.Lhs {
				// Element write: view[i] = v, tainted[i] op= v.
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if ref, ok := viewExpr(idx.X); ok {
						ctx.add(s.Pos(), IDSharedView,
							"element write through the shared view %s (owned by %s); published views are read-only after construction",
							ref.name, ref.spec.Pkg)
					}
				}
				// Field reassignment: pi.Vertices = ... outside the owner.
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if ref, ok := ctx.viewField(sel, specs); ok {
						ctx.add(s.Pos(), IDSharedView,
							"reassignment of the shared view field %s (owned by %s); published views are read-only after construction",
							ref.name, ref.spec.Pkg)
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok {
				if ref, ok := viewExpr(idx.X); ok {
					ctx.add(s.Pos(), IDSharedView,
						"element write through the shared view %s (owned by %s); published views are read-only after construction",
						ref.name, ref.spec.Pkg)
				}
			}
		case *ast.CallExpr:
			// copy(view, src) writes the view's backing array; append(view,
			// ...) may, depending on capacity nobody outside the owner knows.
			if fun, ok := s.Fun.(*ast.Ident); ok && len(s.Args) > 0 {
				switch fun.Name {
				case "copy":
					if ref, ok := viewExpr(s.Args[0]); ok {
						ctx.add(s.Pos(), IDSharedView,
							"copy into the shared view %s (owned by %s); published views are read-only after construction",
							ref.name, ref.spec.Pkg)
					}
				case "append":
					if ref, ok := viewExpr(s.Args[0]); ok {
						ctx.add(s.Pos(), IDSharedView,
							"append to the shared view %s (owned by %s) can write its backing array; build a fresh slice instead",
							ref.name, ref.spec.Pkg)
					}
				}
			}
		}
		return true
	})
}

// viewMethod matches a selector used as a call target against the specs'
// accessor methods, resolving the receiver's named type through go/types.
func (ctx *fileCtx) viewMethod(sel *ast.SelectorExpr, specs []*ViewSpec) (viewRef, bool) {
	obj, ok := ctx.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return viewRef{}, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return viewRef{}, false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return viewRef{}, false
	}
	for _, vs := range specs {
		if !ctx.specOwnsType(vs, named) {
			continue
		}
		for _, m := range vs.Methods {
			if m == sel.Sel.Name {
				return viewRef{spec: vs, name: named.Obj().Pkg().Name() + "." + vs.Type + "." + m + "()"}, true
			}
		}
	}
	return viewRef{}, false
}

// viewField matches a field selection against the specs' shared fields.
func (ctx *fileCtx) viewField(sel *ast.SelectorExpr, specs []*ViewSpec) (viewRef, bool) {
	s, ok := ctx.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return viewRef{}, false
	}
	named := namedOf(s.Recv())
	if named == nil {
		return viewRef{}, false
	}
	for _, vs := range specs {
		if !ctx.specOwnsType(vs, named) {
			continue
		}
		for _, f := range vs.Fields {
			if f == sel.Sel.Name {
				return viewRef{spec: vs, name: named.Obj().Pkg().Name() + "." + vs.Type + "." + f}, true
			}
		}
	}
	return viewRef{}, false
}

// specOwnsType reports whether a named type is the one a spec protects:
// same type name, declared in the spec's package of this module.
func (ctx *fileCtx) specOwnsType(vs *ViewSpec, named *types.Named) bool {
	obj := named.Obj()
	if obj == nil || obj.Name() != vs.Type || obj.Pkg() == nil {
		return false
	}
	want := ctx.cfg.Module
	if vs.Pkg != "." && vs.Pkg != "" {
		want += "/" + vs.Pkg
	}
	return obj.Pkg().Path() == want
}

// namedOf peels pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}
