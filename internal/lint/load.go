// Whole-program package loader: parses and type-checks every analyzed
// package (and, transitively, every module-internal package it imports)
// into one shared token.FileSet, so the per-file checks see resolved types
// and the call-graph pass sees one object identity per function.
//
// Import resolution is two-headed: paths under Config.Module map to
// directories under Config.Root and are loaded recursively from source;
// everything else goes through go/importer's source importer (stdlib from
// GOROOT). If the source importer is unavailable — stripped containers —
// the loader degrades to empty stub packages and the checks fall back to
// their syntactic resolution, staying conservative instead of failing.

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// pkgInfo is one loaded module package.
type pkgInfo struct {
	rel      string // slash-relative directory under Root ("." = root pkg)
	tier     tier
	files    []*ast.File
	relFiles []string // parallel to files
	pkg      *types.Package
	info     *types.Info
}

// program holds the loader state shared by one Run.
type program struct {
	cfg  *Config
	fset *token.FileSet
	pkgs map[string]*pkgInfo // by rel dir

	loading  map[string]bool
	std      types.Importer // go/importer source importer, nil after failure
	stdOnce  bool
	stdStubs map[string]*types.Package
}

func newProgram(cfg *Config) *program {
	return &program{
		cfg:      cfg,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*pkgInfo{},
		loading:  map[string]bool{},
		stdStubs: map[string]*types.Package{},
	}
}

// loadRel parses and type-checks the module package in the slash-relative
// directory rel, memoized. Type errors do not abort the load: the checks
// are conservative under partial information, and the known-bad fixture
// corpus is linted on purpose.
func (p *program) loadRel(rel string) (*pkgInfo, error) {
	if pi, ok := p.pkgs[rel]; ok {
		return pi, nil
	}
	if p.loading[rel] {
		return nil, fmt.Errorf("surfer-lint: import cycle through %s", rel)
	}
	p.loading[rel] = true
	defer delete(p.loading, rel)

	dir := filepath.Join(p.cfg.Root, filepath.FromSlash(rel))
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{rel: rel, tier: p.cfg.tierOf(rel)}
	for _, name := range names {
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(p.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("surfer-lint: %w", err)
		}
		pi.files = append(pi.files, file)
		pi.relFiles = append(pi.relFiles, relSlash(p.cfg.Root, path))
	}
	pi.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: (*progImporter)(p),
		Error:    func(error) {}, // collect nothing, continue past errors
	}
	// Check returns the (possibly incomplete) package even on error; with
	// the Error hook set it keeps going, which is exactly what linting a
	// known-bad corpus needs.
	pi.pkg, _ = conf.Check(p.importPath(rel), p.fset, pi.files, pi.info)
	p.pkgs[rel] = pi
	return pi, nil
}

// importPath is the module import path of a relative directory.
func (p *program) importPath(rel string) string {
	if rel == "." || rel == "" {
		return p.cfg.Module
	}
	return p.cfg.Module + "/" + rel
}

// relOfImportPath inverts importPath; ok is false for paths outside the
// module.
func (p *program) relOfImportPath(path string) (string, bool) {
	if path == p.cfg.Module {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, p.cfg.Module+"/"); ok {
		return rest, true
	}
	return "", false
}

// progImporter adapts program to types.Importer.
type progImporter program

func (im *progImporter) Import(path string) (*types.Package, error) {
	p := (*program)(im)
	if rel, ok := p.relOfImportPath(path); ok {
		pi, err := p.loadRel(rel)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return p.stdPkg(path)
}

// stdPkg resolves a non-module import, preferring real types from the
// go/importer source importer and degrading to a named empty stub.
func (p *program) stdPkg(path string) (*types.Package, error) {
	if pkg, ok := p.stdStubs[path]; ok {
		return pkg, nil
	}
	if !p.stdOnce {
		p.stdOnce = true
		p.std = importer.ForCompiler(p.fset, "source", nil)
	}
	if p.std != nil {
		if pkg, err := p.std.Import(path); err == nil {
			p.stdStubs[path] = pkg
			return pkg, nil
		}
	}
	pkg := types.NewPackage(path, pkgNameOf(path))
	pkg.MarkComplete()
	p.stdStubs[path] = pkg
	return pkg, nil
}

var versionElem = regexp.MustCompile(`^v\d+$`)

// pkgNameOf guesses a package name from its import path ("math/rand/v2"
// is package rand).
func pkgNameOf(path string) string {
	elems := strings.Split(path, "/")
	name := elems[len(elems)-1]
	if versionElem.MatchString(name) && len(elems) > 1 {
		name = elems[len(elems)-2]
	}
	return name
}

// fileCtx is the per-file checking context handed to each check.
type fileCtx struct {
	cfg        *Config
	fset       *token.FileSet
	file       *ast.File
	info       *types.Info
	pkgRel     string
	relFile    string
	tier       tier
	sanctioned bool
	add        addFunc

	importsOnce map[string]string // lazy syntactic fallback
}

// pkgPathOf resolves an identifier used as a package qualifier to its
// import path, or "" if it names anything else. Type-resolved when
// possible (aliases and shadowing handled exactly), syntactic fallback
// otherwise.
func (ctx *fileCtx) pkgPathOf(id *ast.Ident) string {
	if ctx.info != nil {
		if obj, ok := ctx.info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return "" // resolved to a local, field, func, ...
		}
	}
	if id.Obj != nil {
		return ""
	}
	if ctx.importsOnce == nil {
		ctx.importsOnce = importNames(ctx.file)
	}
	return ctx.importsOnce[id.Name]
}

// typeOf returns the resolved type of an expression, or nil.
func (ctx *fileCtx) typeOf(e ast.Expr) types.Type {
	if ctx.info == nil {
		return nil
	}
	t := ctx.info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// walkGoDirs calls fn for every directory under base, skipping hidden,
// underscore and testdata subtrees.
func walkGoDirs(base string, fn func(path string)) error {
	if _, err := os.Stat(base); os.IsNotExist(err) {
		return nil // no such subtree: zero matches, Run reports the pattern
	}
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		fn(path)
		return nil
	})
}

// goSources lists the non-test .go files of one directory, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importNames maps each local package name of the file to its import path
// (the syntactic fallback when type information is unavailable).
func importNames(file *ast.File) map[string]string {
	m := make(map[string]string, len(file.Imports))
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}
