// The warn-finding baseline: a committed inventory of accepted
// warn-severity findings (lint-baseline.json) so a new heuristic check can
// land at warn and existing debt burns down incrementally instead of
// blocking every commit. Error-severity findings never baseline — the
// contract checks fail the build, full stop.

package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineFormat identifies the file format.
const BaselineFormat = "surfer-lint-baseline"

// BaselineEntry identifies one accepted finding. Line numbers are omitted
// on purpose: unrelated edits above a finding must not invalidate the
// baseline, so the key is (check, file, message).
type BaselineEntry struct {
	ID      string `json:"id"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// Baseline is the committed accepted-findings inventory.
type Baseline struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// not an error — repos without debt simply do not commit one.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Format: BaselineFormat, Version: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("surfer-lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("surfer-lint: baseline %s: %w", path, err)
	}
	if b.Format != BaselineFormat {
		return nil, fmt.Errorf("surfer-lint: baseline %s: unexpected format %q", path, b.Format)
	}
	return &b, nil
}

// BaselineFrom builds the baseline covering the current run: every
// unsuppressed warn-severity finding, sorted and deduplicated so the file
// is byte-deterministic.
func BaselineFrom(findings []Finding) *Baseline {
	seen := map[BaselineEntry]bool{}
	b := &Baseline{Format: BaselineFormat, Version: 1, Findings: []BaselineEntry{}}
	for _, f := range findings {
		if f.Suppressed || SeverityOf(f.ID) != SeverityWarn {
			continue
		}
		e := BaselineEntry{ID: f.ID, File: f.File, Message: f.Message}
		if !seen[e] {
			seen[e] = true
			b.Findings = append(b.Findings, e)
		}
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.ID != c.ID {
			return a.ID < c.ID
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the baseline file, trailing newline included.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline marks every warn-severity finding matched by the baseline
// as Baselined. Error-severity matches are ignored: promoting a check from
// warn to error is exactly the moment its parked findings must surface.
func ApplyBaseline(findings []Finding, b *Baseline) {
	if b == nil || len(b.Findings) == 0 {
		return
	}
	accepted := make(map[BaselineEntry]bool, len(b.Findings))
	for _, e := range b.Findings {
		accepted[e] = true
	}
	for i := range findings {
		f := &findings[i]
		if f.Severity != SeverityWarn {
			continue
		}
		if accepted[BaselineEntry{ID: f.ID, File: f.File, Message: f.Message}] {
			f.Baselined = true
		}
	}
}
