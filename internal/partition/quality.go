package partition

import (
	"math/rand"

	"repro/internal/graph"
)

// CrossEdges counts directed edges of g whose endpoints lie in different
// partitions — the objective graph partitioning minimizes (§2).
func CrossEdges(g *graph.Graph, pt *Partitioning) int64 {
	var c int64
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		if pt.Assign[u] != pt.Assign[v] {
			c++
		}
		return true
	})
	return c
}

// InnerEdgeRatio computes ier = ie/|E| (§F.2 Table 5), the fraction of
// directed edges with both endpoints in the same partition.
func InnerEdgeRatio(g *graph.Graph, pt *Partitioning) float64 {
	if g.NumEdges() == 0 {
		return 1
	}
	cross := CrossEdges(g, pt)
	return float64(g.NumEdges()-cross) / float64(g.NumEdges())
}

// Balance reports max partition size divided by the ideal size |V|/P;
// 1.0 is perfect balance.
func Balance(pt *Partitioning) float64 {
	sizes := pt.Sizes()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	ideal := float64(len(pt.Assign)) / float64(pt.P)
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// Random assigns vertices to P partitions uniformly at random — the sanity
// baseline of Table 5.
func Random(g *graph.Graph, p int, seed int64) *Partitioning {
	rng := rand.New(rand.NewSource(seed))
	pt := &Partitioning{Assign: make([]PartID, g.NumVertices()), P: p}
	for v := range pt.Assign {
		pt.Assign[v] = PartID(rng.Intn(p))
	}
	return pt
}

// ChoosePartitionCount implements the paper's sizing rule (§4.2):
// P = 2^ceil(log2(||G|| / memoryBytes)) so each partition fits in memory.
// It returns the level count L and P = 2^L; a graph already fitting in
// memory yields L=0, P=1.
func ChoosePartitionCount(graphBytes, memoryBytes int64) (levels, p int) {
	if memoryBytes <= 0 {
		panic("partition: memory budget must be positive")
	}
	levels = 0
	for (graphBytes+((1<<levels)-1))>>levels > memoryBytes {
		levels++
	}
	return levels, 1 << levels
}
