package partition

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestBisectRingCutsTwo(t *testing.T) {
	// A ring's optimal bisection cuts exactly 2 undirected edges.
	und := graph.Ring(64).Undirected()
	all := allVertices(64)
	w, _ := newWorkGraph(und, all)
	side := bisectWork(w, rand.New(rand.NewSource(1)))
	if cut := cutWeight(w, side); cut != 2 {
		t.Fatalf("ring cut = %d, want 2", cut)
	}
	if !balanced(side, 0.1) {
		t.Fatal("ring bisection unbalanced")
	}
}

func TestBisectGridCutNearOptimal(t *testing.T) {
	// A 16x16 grid's optimal bisection cuts 16 edges; accept some slack.
	und := graph.Grid(16, 16).Undirected()
	all := allVertices(256)
	w, _ := newWorkGraph(und, all)
	side := bisectWork(w, rand.New(rand.NewSource(2)))
	cut := cutWeight(w, side)
	if cut > 24 {
		t.Fatalf("grid cut = %d, want <= 24", cut)
	}
	if !balanced(side, 0.1) {
		t.Fatal("grid bisection unbalanced")
	}
}

func TestBisectTwoCliques(t *testing.T) {
	// Two 20-cliques joined by one edge: optimal cut = 1.
	b := graph.NewBuilder(40)
	for c := 0; c < 2; c++ {
		base := graph.VertexID(c * 20)
		for i := 0; i < 20; i++ {
			for j := 0; j < 20; j++ {
				if i != j {
					b.AddEdge(base+graph.VertexID(i), base+graph.VertexID(j))
				}
			}
		}
	}
	b.AddEdge(0, 20)
	und := b.Build().Undirected()
	w, _ := newWorkGraph(und, allVertices(40))
	side := bisectWork(w, rand.New(rand.NewSource(3)))
	if cut := cutWeight(w, side); cut != 1 {
		t.Fatalf("two-clique cut = %d, want 1", cut)
	}
}

func TestBisectSmallGraphs(t *testing.T) {
	for n := 0; n < 5; n++ {
		und := graph.Ring(max(n, 1)).Undirected()
		subset := allVertices(und.NumVertices())[:n]
		w, _ := newWorkGraph(und, subset)
		side := bisectWork(w, rand.New(rand.NewSource(4)))
		if len(side) != n {
			t.Fatalf("n=%d: got %d sides", n, len(side))
		}
	}
}

func TestCoarsenPreservesVertexWeight(t *testing.T) {
	und := graph.RMAT(graph.DefaultRMAT(9, 6, 5)).Undirected()
	w, _ := newWorkGraph(und, allVertices(und.NumVertices()))
	rng := rand.New(rand.NewSource(6))
	total := w.totalVertexWeight()
	match, cn := w.heavyEdgeMatching(rng)
	c := w.contract(match, cn)
	if c.totalVertexWeight() != total {
		t.Fatalf("coarsening changed total vertex weight: %d -> %d", total, c.totalVertexWeight())
	}
	if c.n() >= w.n() {
		t.Fatalf("coarsening did not shrink: %d -> %d", w.n(), c.n())
	}
}

func TestCoarsenPreservesCutStructure(t *testing.T) {
	// Cut weight of a projected partition must be identical on the coarse
	// and fine graph.
	und := graph.SmallWorld(graph.DefaultSmallWorld(2000, 7)).Undirected()
	w, _ := newWorkGraph(und, allVertices(und.NumVertices()))
	rng := rand.New(rand.NewSource(8))
	match, cn := w.heavyEdgeMatching(rng)
	c := w.contract(match, cn)
	// Arbitrary partition of the coarse graph.
	coarseSide := make([]uint8, c.n())
	for i := range coarseSide {
		coarseSide[i] = uint8(i % 2)
	}
	fineSide := make([]uint8, w.n())
	for v := range fineSide {
		fineSide[v] = coarseSide[match[v]]
	}
	if cc, fc := cutWeight(c, coarseSide), cutWeight(w, fineSide); cc != fc {
		t.Fatalf("cut mismatch coarse=%d fine=%d", cc, fc)
	}
}

func TestMatchingIsValid(t *testing.T) {
	und := graph.RMAT(graph.DefaultRMAT(8, 5, 9)).Undirected()
	w, _ := newWorkGraph(und, allVertices(und.NumVertices()))
	match, cn := w.heavyEdgeMatching(rand.New(rand.NewSource(10)))
	counts := make([]int, cn)
	for _, m := range match {
		if m < 0 || int(m) >= cn {
			t.Fatalf("match target %d out of range", m)
		}
		counts[m]++
	}
	for cv, c := range counts {
		if c < 1 || c > 2 {
			t.Fatalf("coarse vertex %d has %d members, want 1 or 2", cv, c)
		}
	}
}

func TestRefineNeverWorsensCut(t *testing.T) {
	und := graph.SmallWorld(graph.DefaultSmallWorld(1000, 11)).Undirected()
	w, _ := newWorkGraph(und, allVertices(und.NumVertices()))
	rng := rand.New(rand.NewSource(12))
	side := make([]uint8, w.n())
	for i := range side {
		side[i] = uint8(rng.Intn(2))
	}
	before := cutWeight(w, side)
	refine(w, side)
	after := cutWeight(w, side)
	if after > before {
		t.Fatalf("refinement worsened cut %d -> %d", before, after)
	}
}

func allVertices(n int) []graph.VertexID {
	all := make([]graph.VertexID, n)
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	return all
}

func balanced(side []uint8, tol float64) bool {
	n := len(side)
	c := 0
	for _, s := range side {
		if s == 0 {
			c++
		}
	}
	dev := float64(c)/float64(n) - 0.5
	if dev < 0 {
		dev = -dev
	}
	return dev <= tol
}
