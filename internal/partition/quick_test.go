package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// TestQuickRecursiveBisectInvariants: cover, balance and sketch consistency
// hold for random graphs at random level counts.
func TestQuickRecursiveBisectInvariants(t *testing.T) {
	f := func(seed int64, levelPick uint8) bool {
		n := 200 + int(uint64(seed)%500)
		g := graph.Uniform(n, n*3, seed)
		levels := 1 + int(levelPick%4)
		pt, sk := RecursiveBisect(g, levels, Options{Seed: seed})
		if pt.Validate() != nil || sk.Validate(pt) != nil {
			return false
		}
		total := 0
		for _, s := range pt.Sizes() {
			total += s
		}
		if total != n {
			return false
		}
		// Monotonicity of level cross edges.
		prev := int64(-1)
		for d := 0; d <= sk.Levels(); d++ {
			tl := sk.LevelCrossEdges(g, d)
			if tl < prev {
				return false
			}
			prev = tl
		}
		// Balance within the kernel's documented tolerance compounded
		// per level (3% per bisection).
		return Balance(pt) < 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEncodingBijection: consecutive-range encoding is a bijection
// with correct PartOf for arbitrary partitionings.
func TestQuickEncodingBijection(t *testing.T) {
	f := func(seed int64, pPick uint8) bool {
		n := 100 + int(uint64(seed)%400)
		p := 1 + int(pPick%12)
		g := graph.Ring(n)
		pt := Random(g, p, seed)
		e := NewEncoding(pt)
		if e.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			old := graph.VertexID(v)
			nw := e.ToNew(old)
			if e.ToOld(nw) != old {
				return false
			}
			if e.PartOf(nw) != pt.Assign[old] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBandwidthAwarePlacement: Algorithm 4 always produces a valid,
// balanced placement with sketch siblings co-located in pods on tree
// topologies.
func TestQuickBandwidthAwarePlacement(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Uniform(300, 1500, seed)
		topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
		res := BandwidthAware(g, topo, 4, Options{Seed: seed})
		if res.Partitioning.Validate() != nil || res.Placement.Validate(topo) != nil {
			return false
		}
		// Sibling partitions share pods.
		for p := 0; p < 16; p += 2 {
			if !topo.SamePod(res.Placement.MachineOf[p], res.Placement.MachineOf[p+1]) {
				return false
			}
		}
		// Per-machine partition counts balanced (16 partitions, 8
		// machines -> exactly 2 each).
		count := map[cluster.MachineID]int{}
		for _, m := range res.Placement.MachineOf {
			count[m]++
		}
		for _, c := range count {
			if c != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomPlacementBalanced: the balanced-random layout never puts
// more than ceil(P/N) partitions on a machine.
func TestQuickRandomPlacementBalanced(t *testing.T) {
	f := func(seed int64, pPick, nPick uint8) bool {
		p := 1 + int(pPick%64)
		n := 1 + int(nPick%16)
		topo := cluster.NewT1(n)
		pl := RandomPlacement(p, topo, seed)
		count := make([]int, n)
		for _, m := range pl.MachineOf {
			count[m]++
		}
		maxAllowed := (p + n - 1) / n
		for _, c := range count {
			if c > maxAllowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
