package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// Placement maps each partition to the machine that stores and processes its
// primary replica.
type Placement struct {
	// MachineOf[p] is the machine storing partition p.
	MachineOf []cluster.MachineID
}

// NumPartitions reports how many partitions the placement covers.
func (pl *Placement) NumPartitions() int { return len(pl.MachineOf) }

// Validate checks that every partition has a machine within the topology.
func (pl *Placement) Validate(t *cluster.Topology) error {
	for p, m := range pl.MachineOf {
		if int(m) < 0 || int(m) >= t.NumMachines() {
			return fmt.Errorf("partition: partition %d placed on invalid machine %d", p, m)
		}
	}
	return nil
}

// BisectStep records one bisection performed during distributed
// partitioning, for the elapsed-time cost model (Table 1).
type BisectStep struct {
	// Depth is the sketch depth of the node being bisected (0 = root).
	Depth int
	// DataVertices and DataEdges size the subgraph being bisected.
	DataVertices int
	DataEdges    int64
	// Machines is the machine set performing this bisection.
	Machines []cluster.MachineID
	// Local marks a bisection performed entirely on one machine.
	Local bool
}

// Result bundles everything a partitioning run produces.
type Result struct {
	Partitioning *Partitioning
	Sketch       *Sketch
	Placement    *Placement
	Steps        []BisectStep
}

// BandwidthAware runs Algorithm 4: it simultaneously bisects the machine
// graph and the data graph, using each machine-graph half to process (and
// finally store) the corresponding data-graph half. The resulting placement
// realizes the three design principles P1–P3 of §4.1: sibling partitions in
// the sketch (many mutual cross edges, by proximity) land on machine sets
// with high mutual bandwidth.
func BandwidthAware(g *graph.Graph, topo *cluster.Topology, levels int, opt Options) *Result {
	und := g.Undirected()
	n := g.NumVertices()
	all := make([]graph.VertexID, n)
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	res := &Result{
		Partitioning: &Partitioning{Assign: make([]PartID, n), P: 1 << levels},
		Sketch:       newSketch(levels),
		Placement:    &Placement{MachineOf: make([]cluster.MachineID, 1<<levels)},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	mg := cluster.NewMachineGraph(topo)
	baPart(und, g, all, mg, 0, levels, 0, res, rng, newWScratch(n))
	return res
}

// baPart is the recursive BAPart(M, G, l) of Algorithm 4.
func baPart(und, g *graph.Graph, subset []graph.VertexID, mg *cluster.MachineGraph, depth, levels int, firstPart PartID, res *Result, rng *rand.Rand, sc *wscratch) {
	res.Sketch.setNode(depth, int(firstPart)>>(levels-depth), subset)
	if depth == levels {
		// Algorithm 4 line 7-9: undividable data partition; store it on
		// the best-connected machine of the remaining machine set.
		m := mg.BestConnected()
		for _, v := range subset {
			res.Partitioning.Assign[v] = firstPart
		}
		res.Placement.MachineOf[firstPart] = m
		return
	}
	if mg.Size() == 1 {
		// Algorithm 4 line 2-5: a single machine divides the rest of the
		// way locally and stores all resulting partitions.
		m := mg.Machines()[0]
		res.Steps = append(res.Steps, BisectStep{
			Depth: depth, DataVertices: len(subset),
			DataEdges: countSubsetEdges(g, subset),
			Machines:  mg.Machines(), Local: true,
		})
		localBisect(und, g, subset, depth, levels, firstPart, m, res, rng, sc)
		return
	}

	// Bisect the data graph with the machines in M (cost recorded), and
	// the machine graph with the local algorithm.
	res.Steps = append(res.Steps, BisectStep{
		Depth: depth, DataVertices: len(subset),
		DataEdges: countSubsetEdges(g, subset),
		Machines:  mg.Machines(),
	})
	w, toGlobal := newWorkGraphScratch(und, subset, sc)
	side := bisectWork(w, rng)
	var left, right []graph.VertexID
	for i, s := range side {
		if s == 0 {
			left = append(left, toGlobal[i])
		} else {
			right = append(right, toGlobal[i])
		}
	}
	m1, m2 := mg.Bisect()
	half := PartID(1 << (levels - depth - 1))
	baPart(und, g, left, m1, depth+1, levels, firstPart, res, rng, sc)
	baPart(und, g, right, m2, depth+1, levels, firstPart+half, res, rng, sc)
}

// localBisect finishes the recursion on a single machine: it keeps bisecting
// the data graph (recording sketch nodes) and maps every leaf to machine m.
func localBisect(und, g *graph.Graph, subset []graph.VertexID, depth, levels int, firstPart PartID, m cluster.MachineID, res *Result, rng *rand.Rand, sc *wscratch) {
	res.Sketch.setNode(depth, int(firstPart)>>(levels-depth), subset)
	if depth == levels {
		for _, v := range subset {
			res.Partitioning.Assign[v] = firstPart
		}
		res.Placement.MachineOf[firstPart] = m
		return
	}
	w, toGlobal := newWorkGraphScratch(und, subset, sc)
	side := bisectWork(w, rng)
	var left, right []graph.VertexID
	for i, s := range side {
		if s == 0 {
			left = append(left, toGlobal[i])
		} else {
			right = append(right, toGlobal[i])
		}
	}
	half := PartID(1 << (levels - depth - 1))
	localBisect(und, g, left, depth+1, levels, firstPart, m, res, rng, sc)
	localBisect(und, g, right, depth+1, levels, firstPart+half, m, res, rng, sc)
}

// ParMetisLike runs the same multilevel recursive bisection on the data
// graph but is oblivious to network bandwidth: at every recursion step it
// picks a *random* machine subset to process each half, and stores each
// final partition on a random machine of the subset that produced it — the
// baseline behaviour the paper attributes to ParMetis on cloud clusters
// ("randomly chooses the available machine for processing", §6.2).
func ParMetisLike(g *graph.Graph, topo *cluster.Topology, levels int, opt Options) *Result {
	pt, sk := RecursiveBisect(g, levels, opt)
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	res := &Result{Partitioning: pt, Sketch: sk, Placement: RandomPlacement(pt.P, topo, opt.Seed+1)}

	// Cost-model steps: the recursion assigns random machine subsets of
	// the same sizes the bandwidth-aware version would use.
	all := make([]cluster.MachineID, topo.NumMachines())
	for i := range all {
		all[i] = cluster.MachineID(i)
	}
	var walk func(depth, index int, machines []cluster.MachineID)
	walk = func(depth, index int, machines []cluster.MachineID) {
		subset := sk.Node(depth, index)
		if len(subset) == 0 {
			return
		}
		local := len(machines) == 1
		res.Steps = append(res.Steps, BisectStep{
			Depth: depth, DataVertices: len(subset),
			DataEdges: countSubsetEdges(g, subset),
			Machines:  machines, Local: local,
		})
		if depth+1 > sk.Levels() || local {
			return
		}
		// Split the machine set randomly in half (bandwidth-oblivious).
		shuffled := make([]cluster.MachineID, len(machines))
		copy(shuffled, machines)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		h := len(shuffled) / 2
		walk(depth+1, 2*index, shuffled[:h])
		walk(depth+1, 2*index+1, shuffled[h:])
	}
	walk(0, 0, all)
	return res
}

// RandomPlacement places partitions on machines in a random but *balanced*
// way: every machine receives floor(P/N) or ceil(P/N) partitions, with the
// pairing randomized. This models a bandwidth-oblivious but load-balanced
// layout (what a topology-unaware scheduler produces); comparing it against
// SketchPlacement isolates bandwidth awareness from load balancing.
func RandomPlacement(p int, topo *cluster.Topology, seed int64) *Placement {
	rng := rand.New(rand.NewSource(seed))
	n := topo.NumMachines()
	slots := make([]cluster.MachineID, p)
	for i := range slots {
		slots[i] = cluster.MachineID(i % n)
	}
	rng.Shuffle(p, func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return &Placement{MachineOf: slots}
}

// UnbalancedRandomPlacement places each partition on a uniformly random
// machine with no balance constraint — the literal reading of "randomly
// chooses the available machine" (§6.2). Collisions leave some machines
// with several partitions and others with none, so comparisons against it
// mix load-balance and bandwidth-awareness effects; the ablation experiment
// separates the two.
func UnbalancedRandomPlacement(p int, topo *cluster.Topology, seed int64) *Placement {
	rng := rand.New(rand.NewSource(seed))
	pl := &Placement{MachineOf: make([]cluster.MachineID, p)}
	for i := range pl.MachineOf {
		pl.MachineOf[i] = cluster.MachineID(rng.Intn(topo.NumMachines()))
	}
	return pl
}

// SketchPlacement derives a bandwidth-aware placement for an existing
// sketch-partitioned graph on a topology: it bisects the machine graph in
// lockstep with the sketch structure without re-partitioning the data. This
// is how optimization level O2/O4 layouts are derived from an O1/O3
// partitioning in the evaluation (§6.3).
func SketchPlacement(sk *Sketch, topo *cluster.Topology) *Placement {
	pl := &Placement{MachineOf: make([]cluster.MachineID, sk.NumPartitions())}
	var walk func(depth, index int, mg *cluster.MachineGraph)
	walk = func(depth, index int, mg *cluster.MachineGraph) {
		if depth == sk.Levels() {
			pl.MachineOf[index] = mg.BestConnected()
			return
		}
		if mg.Size() == 1 {
			// Map the whole subtree of partitions onto this machine.
			m := mg.Machines()[0]
			first := index << (sk.Levels() - depth)
			count := 1 << (sk.Levels() - depth)
			for i := 0; i < count; i++ {
				pl.MachineOf[first+i] = m
			}
			return
		}
		m1, m2 := mg.Bisect()
		walk(depth+1, 2*index, m1)
		walk(depth+1, 2*index+1, m2)
	}
	walk(0, 0, cluster.NewMachineGraph(topo))
	return pl
}

// countSubsetEdges counts directed edges of g with both endpoints in subset.
func countSubsetEdges(g *graph.Graph, subset []graph.VertexID) int64 {
	in := makeMemberSet(g.NumVertices(), subset)
	var c int64
	for _, v := range subset {
		for _, nb := range g.Neighbors(v) {
			if in[nb] {
				c++
			}
		}
	}
	return c
}
