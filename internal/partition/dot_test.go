package partition

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
)

func TestWriteDOT(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(500, 51))
	topo := cluster.NewT1(4)
	_, sk := RecursiveBisect(g, 2, Options{Seed: 51})
	pl := SketchPlacement(sk, topo)
	var sb strings.Builder
	if err := sk.WriteDOT(&sb, g, pl); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph sketch", "n0_0", "n2_3", "cross", "machine"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// 7 sketch nodes for a 2-level sketch.
	if c := strings.Count(out, "[label="); c != 7 {
		t.Errorf("node count = %d, want 7", c)
	}
	// Without graph/placement: still valid output.
	var sb2 strings.Builder
	if err := sk.WriteDOT(&sb2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "cross") {
		t.Error("cross labels emitted without a graph")
	}
}

func TestMachineOfString(t *testing.T) {
	pl := &Placement{MachineOf: []cluster.MachineID{3, 1}}
	if got := pl.MachineOfString(); got != "p0->m3 p1->m1" {
		t.Fatalf("got %q", got)
	}
}
