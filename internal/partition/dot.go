package partition

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// WriteDOT renders the partition sketch as a Graphviz digraph: one node per
// sketch node annotated with its vertex count and (at the leaf level) the
// machine holding the partition, plus dashed edges labeling the
// cross-partition edge counts between siblings. It is the textual
// equivalent of the runtime-dynamics view the Surfer GUI shows developers
// ([3], Appendix B).
func (s *Sketch) WriteDOT(w io.Writer, g *graph.Graph, pl *Placement) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph sketch {\n")
	p("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	for d := 0; d <= s.levels; d++ {
		for idx := 0; idx < 1<<d; idx++ {
			label := fmt.Sprintf("L%d.%d\\n%d vertices", d, idx, len(s.Node(d, idx)))
			if d == s.levels && pl != nil && idx < len(pl.MachineOf) {
				label += fmt.Sprintf("\\nmachine %d", pl.MachineOf[idx])
			}
			p("  n%d_%d [label=\"%s\"];\n", d, idx, label)
			if d > 0 {
				p("  n%d_%d -> n%d_%d;\n", d-1, idx/2, d, idx)
			}
		}
	}
	// Sibling cross-edge annotations at the leaf level.
	if g != nil {
		for idx := 0; idx+1 < 1<<s.levels; idx += 2 {
			c := s.CrossEdges(g, s.levels, idx, idx+1)
			p("  n%d_%d -> n%d_%d [style=dashed, dir=none, label=\"%d cross\"];\n",
				s.levels, idx, s.levels, idx+1, c)
		}
	}
	p("}\n")
	return err
}

// MachineOfString formats a placement compactly for logs: "p0->m3 p1->m3 ...".
func (pl *Placement) MachineOfString() string {
	out := ""
	for p, m := range pl.MachineOf {
		if p > 0 {
			out += " "
		}
		out += fmt.Sprintf("p%d->m%d", p, m)
	}
	return out
}
