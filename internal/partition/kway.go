package partition

import (
	"repro/internal/graph"
)

// KWayRefine improves an existing k-way partitioning with greedy boundary
// moves: a vertex moves to the neighboring partition holding most of its
// (undirected) edges when that strictly reduces the number of
// cross-partition edges and keeps every partition within balanceTol of the
// ideal size. It runs up to maxPasses sweeps and returns the number of
// moves performed.
//
// Recursive bisection is locally optimal per bisection but not globally
// (§4.1 notes "partitioning with optimal bisections does not necessarily
// result in P partitions with globally minimum number of cross-partition
// edges"); this pass recovers some of that gap, and the tests quantify it.
func KWayRefine(g *graph.Graph, pt *Partitioning, maxPasses int, balanceTol float64) int {
	und := g.Undirected()
	n := und.NumVertices()
	sizes := pt.Sizes()
	ideal := float64(n) / float64(pt.P)
	maxSize := int(ideal * (1 + balanceTol))
	if maxSize < 1 {
		maxSize = 1
	}
	minSize := int(ideal * (1 - balanceTol))

	moves := 0
	counts := make(map[PartID]int, 8)
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for v := 0; v < n; v++ {
			home := pt.Assign[v]
			if sizes[home] <= minSize {
				continue // moving would unbalance the donor
			}
			clear(counts)
			for _, nb := range und.Neighbors(graph.VertexID(v)) {
				counts[pt.Assign[nb]]++
			}
			bestPart := home
			bestCount := counts[home]
			for p, c := range counts {
				if p == home || sizes[p] >= maxSize {
					continue
				}
				// Strictly better, with deterministic tie-breaks by ID.
				if c > bestCount || (c == bestCount && p != home && bestPart != home && p < bestPart) {
					bestPart, bestCount = p, c
				}
			}
			if bestPart != home {
				pt.Assign[v] = bestPart
				sizes[home]--
				sizes[bestPart]++
				moves++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return moves
}
