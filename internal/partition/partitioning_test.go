package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRecursiveBisectCover(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(2000, 1))
	pt, sk := RecursiveBisect(g, 3, Options{Seed: 1})
	if pt.P != 8 {
		t.Fatalf("P = %d, want 8", pt.P)
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sk.Validate(pt); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range pt.Sizes() {
		total += s
	}
	if total != g.NumVertices() {
		t.Fatalf("cover broken: %d of %d vertices", total, g.NumVertices())
	}
}

func TestRecursiveBisectBalance(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(4000, 2))
	pt, _ := RecursiveBisect(g, 4, Options{Seed: 2})
	if b := Balance(pt); b > 1.35 {
		t.Fatalf("balance = %.2f, want <= 1.35", b)
	}
}

func TestRecursiveBisectZeroLevels(t *testing.T) {
	g := graph.Ring(10)
	pt, sk := RecursiveBisect(g, 0, Options{})
	if pt.P != 1 || sk.NumPartitions() != 1 {
		t.Fatalf("P = %d", pt.P)
	}
	for _, p := range pt.Assign {
		if p != 0 {
			t.Fatal("single partition must be 0")
		}
	}
}

func TestPartitioningBeatsRandom(t *testing.T) {
	// Core quality claim behind Table 5: multilevel partitioning's inner
	// edge ratio dwarfs random partitioning's.
	g := graph.SmallWorld(graph.DefaultSmallWorld(4000, 3))
	pt, _ := RecursiveBisect(g, 4, Options{Seed: 3})
	rnd := Random(g, 16, 3)
	ierOurs := InnerEdgeRatio(g, pt)
	ierRand := InnerEdgeRatio(g, rnd)
	if ierOurs < 5*ierRand {
		t.Fatalf("ier ours=%.3f rand=%.3f: partitioning not much better than random", ierOurs, ierRand)
	}
	if ierOurs < 0.4 {
		t.Fatalf("ier = %.3f, want >= 0.4 on a small-world graph", ierOurs)
	}
}

func TestMonotonicity(t *testing.T) {
	// §4.1: T_l is non-decreasing with sketch level.
	g := graph.SmallWorld(graph.DefaultSmallWorld(2000, 4))
	_, sk := RecursiveBisect(g, 4, Options{Seed: 4})
	prev := int64(0)
	for d := 0; d <= sk.Levels(); d++ {
		tl := sk.LevelCrossEdges(g, d)
		if tl < prev {
			t.Fatalf("monotonicity violated at level %d: %d < %d", d, tl, prev)
		}
		prev = tl
	}
	if sk.LevelCrossEdges(g, 0) != 0 {
		t.Fatal("root level must have no cross edges")
	}
}

func TestSketchSiblingsCrossMoreThanCousins(t *testing.T) {
	// Proximity (§4.1): partitions with a lower common ancestor share more
	// cross edges than those with a higher one. Check the leaf level of a
	// 2-level sketch: C(0,1)+C(2,3) >= C(0,2)+C(1,3) etc.
	g := graph.SmallWorld(graph.DefaultSmallWorld(3000, 5))
	_, sk := RecursiveBisect(g, 2, Options{Seed: 5})
	d := 2
	c01 := sk.CrossEdges(g, d, 0, 1)
	c23 := sk.CrossEdges(g, d, 2, 3)
	c02 := sk.CrossEdges(g, d, 0, 2)
	c13 := sk.CrossEdges(g, d, 1, 3)
	c03 := sk.CrossEdges(g, d, 0, 3)
	c12 := sk.CrossEdges(g, d, 1, 2)
	sib := c01 + c23
	if sib < c02+c13 || sib < c03+c12 {
		t.Fatalf("proximity violated: sib=%d vs %d, %d", sib, c02+c13, c03+c12)
	}
}

func TestChoosePartitionCount(t *testing.T) {
	cases := []struct {
		g, r   int64
		levels int
	}{
		{100, 200, 0},
		{100, 100, 0},
		{101, 100, 1},
		{400, 100, 2},
		{401, 100, 3},
		{1 << 30, 1 << 25, 5},
	}
	for _, c := range cases {
		l, p := ChoosePartitionCount(c.g, c.r)
		if l != c.levels || p != 1<<c.levels {
			t.Errorf("ChoosePartitionCount(%d,%d) = (%d,%d), want (%d,%d)",
				c.g, c.r, l, p, c.levels, 1<<c.levels)
		}
		// Resulting partition size must fit in memory.
		if (c.g+int64(p)-1)/int64(p) > c.r {
			t.Errorf("P=%d leaves partitions over budget", p)
		}
	}
}

func TestChoosePartitionCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero memory")
		}
	}()
	ChoosePartitionCount(100, 0)
}

func TestValidateCatchesBadAssign(t *testing.T) {
	pt := &Partitioning{Assign: []PartID{0, 5}, P: 2}
	if err := pt.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMembersMatchesAssign(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(8, 4, 6))
	pt, _ := RecursiveBisect(g, 2, Options{Seed: 6})
	for p, members := range pt.Members() {
		for _, v := range members {
			if pt.Assign[v] != PartID(p) {
				t.Fatalf("member list wrong for partition %d", p)
			}
		}
	}
}

func TestRandomPartitioningCoverProperty(t *testing.T) {
	f := func(seed int64, pPick uint8) bool {
		p := 1 + int(pPick%16)
		g := graph.Ring(100)
		pt := Random(g, p, seed)
		return pt.Validate() == nil && len(pt.Assign) == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveBisectDeterministic(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(1500, 8))
	a, _ := RecursiveBisect(g, 3, Options{Seed: 42})
	b, _ := RecursiveBisect(g, 3, Options{Seed: 42})
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("same seed produced different partitionings")
		}
	}
}
