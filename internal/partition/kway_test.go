package partition

import (
	"testing"

	"repro/internal/graph"
)

func TestKWayRefineImprovesRandomPartitioning(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(2000, 31))
	pt := Random(g, 8, 31)
	before := CrossEdges(g, pt)
	moves := KWayRefine(g, pt, 8, 0.1)
	after := CrossEdges(g, pt)
	if moves == 0 {
		t.Fatal("no moves on a random partitioning")
	}
	if after >= before {
		t.Fatalf("refinement did not improve cut: %d -> %d", before, after)
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if b := Balance(pt); b > 1.15 {
		t.Fatalf("balance = %.2f after refinement", b)
	}
}

func TestKWayRefineNeverWorsensBisection(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(3000, 32))
	pt, _ := RecursiveBisect(g, 4, Options{Seed: 32})
	before := CrossEdges(g, pt)
	KWayRefine(g, pt, 4, 0.05)
	after := CrossEdges(g, pt)
	if after > before {
		t.Fatalf("refinement worsened cut: %d -> %d", before, after)
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKWayRefineRespectsBalance(t *testing.T) {
	// A star graph tempts refinement to pile everything into the hub's
	// partition; the balance constraint must prevent that.
	n := 400
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.VertexID(i))
		b.AddEdge(graph.VertexID(i), 0)
	}
	g := b.Build()
	pt := Random(g, 4, 33)
	initial := pt.Sizes()
	KWayRefine(g, pt, 10, 0.1)
	sizes := pt.Sizes()
	cap := int(float64(n) / 4 * 1.1)
	for p, s := range sizes {
		// Refinement must never grow a partition beyond the cap; ones
		// that started above it may only shrink or stay.
		limit := cap
		if initial[p] > limit {
			limit = initial[p]
		}
		if s > limit {
			t.Fatalf("partition %d grew to %d (limit %d)", p, s, limit)
		}
	}
}

func TestKWayRefineDeterministic(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(1000, 34))
	a := Random(g, 4, 34)
	bpt := Random(g, 4, 34)
	KWayRefine(g, a, 5, 0.1)
	KWayRefine(g, bpt, 5, 0.1)
	for v := range a.Assign {
		if a.Assign[v] != bpt.Assign[v] {
			t.Fatal("nondeterministic refinement")
		}
	}
}

func TestKWayRefineIdempotentAtFixpoint(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(1000, 35))
	pt := Random(g, 4, 35)
	KWayRefine(g, pt, 20, 0.1) // run to convergence
	if moves := KWayRefine(g, pt, 1, 0.1); moves != 0 {
		t.Fatalf("fixpoint not stable: %d extra moves", moves)
	}
}
