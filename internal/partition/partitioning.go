package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// PartID identifies a partition, densely numbered 0..P-1. The numbering
// follows the partition sketch: leaf i of the sketch (left to right) is
// partition i, so partitions i and i^1 are sketch siblings.
type PartID int32

// Partitioning assigns every vertex of a data graph to one of P partitions.
type Partitioning struct {
	// Assign[v] is the partition of vertex v.
	Assign []PartID
	// P is the number of partitions (a power of two for sketch-produced
	// partitionings; arbitrary for random ones).
	P int
}

// NumVertices reports the number of assigned vertices.
func (pt *Partitioning) NumVertices() int { return len(pt.Assign) }

// Validate checks the cover invariant: every vertex has a partition in
// [0, P). It returns an error describing the first violation.
func (pt *Partitioning) Validate() error {
	for v, p := range pt.Assign {
		if p < 0 || int(p) >= pt.P {
			return fmt.Errorf("partition: vertex %d assigned to invalid partition %d (P=%d)", v, p, pt.P)
		}
	}
	return nil
}

// Sizes returns the number of vertices in each partition.
func (pt *Partitioning) Sizes() []int {
	sizes := make([]int, pt.P)
	for _, p := range pt.Assign {
		sizes[p]++
	}
	return sizes
}

// Members returns the vertex lists of all partitions, each sorted by ID.
func (pt *Partitioning) Members() [][]graph.VertexID {
	sizes := pt.Sizes()
	out := make([][]graph.VertexID, pt.P)
	for p := range out {
		out[p] = make([]graph.VertexID, 0, sizes[p])
	}
	for v, p := range pt.Assign {
		out[p] = append(out[p], graph.VertexID(v))
	}
	return out
}

// Options configures the recursive bisection partitioner.
type Options struct {
	// Seed drives all randomized steps (matching order, GGGP seeds).
	Seed int64
}

// RecursiveBisect partitions g into P = 2^levels partitions with multilevel
// recursive bisection on the undirected view of g, and returns both the
// partitioning and its partition sketch. This is the pure partitioning
// kernel; machine placement is layered on top by BandwidthAware and
// ParMetisLike.
func RecursiveBisect(g *graph.Graph, levels int, opt Options) (*Partitioning, *Sketch) {
	if levels < 0 {
		panic("partition: negative level count")
	}
	und := g.Undirected()
	n := g.NumVertices()
	all := make([]graph.VertexID, n)
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	pt := &Partitioning{Assign: make([]PartID, n), P: 1 << levels}
	rng := rand.New(rand.NewSource(opt.Seed))
	sk := newSketch(levels)
	bisectRecursive(und, all, 0, levels, 0, pt, sk, rng, newWScratch(n))
	return pt, sk
}

// bisectRecursive splits subset into 2^(levels-depth) partitions, assigning
// partition IDs so that the sketch leaf order matches partition order.
// node is the sketch node index covering subset.
func bisectRecursive(und *graph.Graph, subset []graph.VertexID, depth, levels int, firstPart PartID, pt *Partitioning, sk *Sketch, rng *rand.Rand, sc *wscratch) {
	sk.setNode(depth, int(firstPart)>>(levels-depth), subset)
	if depth == levels {
		for _, v := range subset {
			pt.Assign[v] = firstPart
		}
		return
	}
	w, toGlobal := newWorkGraphScratch(und, subset, sc)
	side := bisectWork(w, rng)
	var left, right []graph.VertexID
	for i, s := range side {
		if s == 0 {
			left = append(left, toGlobal[i])
		} else {
			right = append(right, toGlobal[i])
		}
	}
	half := 1 << (levels - depth - 1)
	bisectRecursive(und, left, depth+1, levels, firstPart, pt, sk, rng, sc)
	bisectRecursive(und, right, depth+1, levels, firstPart+PartID(half), pt, sk, rng, sc)
}
