package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Sketch is the partition sketch of §4.1: a balanced binary tree modeling
// the multi-level bisection process. The root (depth 0) is the whole data
// graph; the node at (depth, index) holds the vertex set fed to the bisection
// at that point; the 2^levels leaves are the final partitions, ordered so
// that leaf i is partition i.
type Sketch struct {
	levels  int
	members [][][]graph.VertexID // members[depth][index]
}

func newSketch(levels int) *Sketch {
	s := &Sketch{levels: levels}
	s.members = make([][][]graph.VertexID, levels+1)
	for d := 0; d <= levels; d++ {
		s.members[d] = make([][]graph.VertexID, 1<<d)
	}
	return s
}

// setNode records the vertex membership of the sketch node at (depth, index).
func (s *Sketch) setNode(depth, index int, subset []graph.VertexID) {
	cp := make([]graph.VertexID, len(subset))
	copy(cp, subset)
	s.members[depth][index] = cp
}

// Levels reports the leaf depth; the tree has Levels+1 levels and 2^Levels
// leaves (the paper's "(log2 P + 1) levels").
func (s *Sketch) Levels() int { return s.levels }

// NumPartitions reports the number of leaves.
func (s *Sketch) NumPartitions() int { return 1 << s.levels }

// Node returns the vertex set of sketch node (depth, index). The returned
// slice must not be modified.
func (s *Sketch) Node(depth, index int) []graph.VertexID {
	return s.members[depth][index]
}

// LeafParts returns, for a leaf index, the partition ID (identical by
// construction; kept for readability at call sites).
func (s *Sketch) LeafParts(index int) PartID { return PartID(index) }

// CrossEdges counts C(n1, n2): directed edges of g with one endpoint in
// sketch node (depth, i) and the other in (depth, j), in either direction.
func (s *Sketch) CrossEdges(g *graph.Graph, depth, i, j int) int64 {
	inI := makeMemberSet(g.NumVertices(), s.members[depth][i])
	inJ := makeMemberSet(g.NumVertices(), s.members[depth][j])
	var count int64
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		if (inI[u] && inJ[v]) || (inJ[u] && inI[v]) {
			count++
		}
		return true
	})
	return count
}

// LevelCrossEdges computes T_l: the total number of directed edges of g
// crossing between any two distinct sketch nodes at depth l. The
// monotonicity property (§4.1) states T_i <= T_j for i <= j on an ideal
// sketch.
func (s *Sketch) LevelCrossEdges(g *graph.Graph, depth int) int64 {
	nodeOf := make([]int32, g.NumVertices())
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	for idx, set := range s.members[depth] {
		for _, v := range set {
			nodeOf[v] = int32(idx)
		}
	}
	var count int64
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		if nodeOf[u] != nodeOf[v] && nodeOf[u] >= 0 && nodeOf[v] >= 0 {
			count++
		}
		return true
	})
	return count
}

// Validate checks sketch structural invariants: each level is a refinement
// of the previous (children partition their parent's vertex set), and the
// leaf sets match the given partitioning.
func (s *Sketch) Validate(pt *Partitioning) error {
	for d := 0; d < s.levels; d++ {
		for idx := range s.members[d] {
			parent := len(s.members[d][idx])
			kids := len(s.members[d+1][2*idx]) + len(s.members[d+1][2*idx+1])
			if parent != kids {
				return fmt.Errorf("sketch: node (%d,%d) has %d vertices but children hold %d", d, idx, parent, kids)
			}
		}
	}
	for leaf := 0; leaf < s.NumPartitions(); leaf++ {
		for _, v := range s.members[s.levels][leaf] {
			if pt.Assign[v] != PartID(leaf) {
				return fmt.Errorf("sketch: leaf %d contains vertex %d assigned to %d", leaf, v, pt.Assign[v])
			}
		}
	}
	return nil
}

func makeMemberSet(n int, members []graph.VertexID) []bool {
	set := make([]bool, n)
	for _, v := range members {
		set[v] = true
	}
	return set
}
