package partition

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
)

func testGraph(seed int64) *graph.Graph {
	return graph.SmallWorld(graph.DefaultSmallWorld(2000, seed))
}

func TestBandwidthAwareBasics(t *testing.T) {
	g := testGraph(1)
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	res := BandwidthAware(g, topo, 4, Options{Seed: 1}) // 16 partitions, 8 machines
	if err := res.Partitioning.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(topo); err != nil {
		t.Fatal(err)
	}
	if err := res.Sketch.Validate(res.Partitioning); err != nil {
		t.Fatal(err)
	}
	if len(res.Placement.MachineOf) != 16 {
		t.Fatalf("placement covers %d partitions", len(res.Placement.MachineOf))
	}
}

func TestBandwidthAwareSiblingsSharePods(t *testing.T) {
	// P3: sketch-sibling partitions must land in the same pod (they have
	// the most mutual cross edges).
	g := testGraph(2)
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	res := BandwidthAware(g, topo, 4, Options{Seed: 2})
	pl := res.Placement
	for p := 0; p < 16; p += 2 {
		a, b := pl.MachineOf[p], pl.MachineOf[p+1]
		if !topo.SamePod(a, b) {
			t.Fatalf("sibling partitions %d,%d on different pods (machines %d,%d)", p, p+1, a, b)
		}
	}
}

func TestBandwidthAwareTopSplitMatchesPods(t *testing.T) {
	// The first machine bisection separates the pods, so partitions
	// 0..P/2-1 all live in one pod and the rest in the other.
	g := testGraph(3)
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	res := BandwidthAware(g, topo, 3, Options{Seed: 3})
	firstPod := topo.Pod(res.Placement.MachineOf[0])
	for p := 0; p < 4; p++ {
		if topo.Pod(res.Placement.MachineOf[p]) != firstPod {
			t.Fatalf("partition %d escaped its pod", p)
		}
	}
	for p := 4; p < 8; p++ {
		if topo.Pod(res.Placement.MachineOf[p]) == firstPod {
			t.Fatalf("partition %d in wrong pod", p)
		}
	}
}

func TestBandwidthAwareMoreLevelsThanMachines(t *testing.T) {
	// 4 machines, 16 partitions: each machine locally produces 4 leaves.
	g := testGraph(4)
	topo := cluster.NewT1(4)
	res := BandwidthAware(g, topo, 4, Options{Seed: 4})
	if err := res.Placement.Validate(topo); err != nil {
		t.Fatal(err)
	}
	// Count partitions per machine: must be exactly 4 each (balanced).
	count := map[cluster.MachineID]int{}
	for _, m := range res.Placement.MachineOf {
		count[m]++
	}
	for m, c := range count {
		if c != 4 {
			t.Fatalf("machine %d stores %d partitions, want 4", m, c)
		}
	}
	// Consecutive groups of 4 partitions share a machine (sketch subtrees).
	for p := 0; p < 16; p += 4 {
		m := res.Placement.MachineOf[p]
		for q := p + 1; q < p+4; q++ {
			if res.Placement.MachineOf[q] != m {
				t.Fatalf("subtree partitions %d..%d split across machines", p, p+3)
			}
		}
	}
}

func TestBandwidthAwareRecordsSteps(t *testing.T) {
	g := testGraph(5)
	topo := cluster.NewT1(8)
	res := BandwidthAware(g, topo, 4, Options{Seed: 5})
	// Levels 0..2 distributed with 8,4,2 machines: 1+2+4 = 7 steps,
	// then 8 local steps at depth 3 (machine sets of size 1 finishing
	// the last level locally).
	if len(res.Steps) != 15 {
		t.Fatalf("steps = %d, want 15", len(res.Steps))
	}
	locals := 0
	for _, s := range res.Steps {
		if s.Local {
			locals++
			if len(s.Machines) != 1 {
				t.Fatal("local step with multiple machines")
			}
		}
	}
	if locals != 8 {
		t.Fatalf("local steps = %d, want 8", locals)
	}
}

func TestParMetisLikeBasics(t *testing.T) {
	g := testGraph(6)
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	res := ParMetisLike(g, topo, 4, Options{Seed: 6})
	if err := res.Partitioning.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(topo); err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no cost steps recorded")
	}
}

func TestParMetisSameCutQualityAsBA(t *testing.T) {
	// Both use the same bisection kernel, so cut quality should be close;
	// the experiments isolate placement, not cut quality.
	g := testGraph(7)
	topo := cluster.NewT1(8)
	ba := BandwidthAware(g, topo, 3, Options{Seed: 7})
	pm := ParMetisLike(g, topo, 3, Options{Seed: 7})
	ierBA := InnerEdgeRatio(g, ba.Partitioning)
	ierPM := InnerEdgeRatio(g, pm.Partitioning)
	if diff := ierBA - ierPM; diff > 0.1 || diff < -0.1 {
		t.Fatalf("cut quality diverged: BA=%.3f PM=%.3f", ierBA, ierPM)
	}
}

func TestSketchPlacementMatchesBandwidthAware(t *testing.T) {
	// Deriving a placement from an existing sketch must also co-locate
	// sketch siblings within pods.
	g := testGraph(8)
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	_, sk := RecursiveBisect(g, 4, Options{Seed: 8})
	pl := SketchPlacement(sk, topo)
	if err := pl.Validate(topo); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p += 2 {
		if !topo.SamePod(pl.MachineOf[p], pl.MachineOf[p+1]) {
			t.Fatalf("sketch placement split siblings %d,%d", p, p+1)
		}
	}
}

func TestPartitioningTimeT1Equal(t *testing.T) {
	// On T1 every machine pair has the same bandwidth, so bandwidth-aware
	// and ParMetis-like partitioning should cost about the same (Table 1).
	g := testGraph(9)
	topo := cluster.NewT1(8)
	cm := DefaultCostModel()
	ba := BandwidthAware(g, topo, 4, Options{Seed: 9})
	pm := ParMetisLike(g, topo, 4, Options{Seed: 9})
	tBA := cm.PartitioningTime(ba, topo, false)
	tPM := cm.PartitioningTime(pm, topo, true)
	if tBA <= 0 || tPM <= 0 {
		t.Fatalf("non-positive times %g %g", tBA, tPM)
	}
	ratio := tPM / tBA
	if ratio < 1.0 || ratio > 1.6 {
		t.Fatalf("T1 ratio = %.2f, want close to 1 (staging only)", ratio)
	}
}

func TestPartitioningTimeBandwidthAwareWinsOnT2(t *testing.T) {
	// Table 1's headline: on tree topologies the bandwidth-aware algorithm
	// is substantially faster than the oblivious baseline.
	g := testGraph(10)
	topo := cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1})
	cm := DefaultCostModel()
	ba := BandwidthAware(g, topo, 4, Options{Seed: 10})
	pm := ParMetisLike(g, topo, 4, Options{Seed: 10})
	tBA := cm.PartitioningTime(ba, topo, false)
	tPM := cm.PartitioningTime(pm, topo, true)
	if tPM < tBA*1.2 {
		t.Fatalf("bandwidth-aware not winning on T2: BA=%.3fs PM=%.3fs", tBA, tPM)
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	g := testGraph(11)
	pt, _ := RecursiveBisect(g, 3, Options{Seed: 11})
	e := NewEncoding(pt)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if e.ToOld(e.ToNew(graph.VertexID(v))) != graph.VertexID(v) {
			t.Fatalf("encoding not a bijection at %d", v)
		}
	}
}

func TestEncodingPartOf(t *testing.T) {
	g := testGraph(12)
	pt, _ := RecursiveBisect(g, 3, Options{Seed: 12})
	e := NewEncoding(pt)
	for v := 0; v < g.NumVertices(); v++ {
		old := graph.VertexID(v)
		if e.PartOf(e.ToNew(old)) != pt.Assign[old] {
			t.Fatalf("PartOf mismatch at %d", v)
		}
	}
}

func TestEncodingRanges(t *testing.T) {
	g := testGraph(13)
	pt, _ := RecursiveBisect(g, 2, Options{Seed: 13})
	e := NewEncoding(pt)
	sizes := pt.Sizes()
	var cum graph.VertexID
	for p := 0; p < pt.P; p++ {
		lo, hi := e.Range(PartID(p))
		if lo != cum || hi-lo != graph.VertexID(sizes[p]) {
			t.Fatalf("range of %d = [%d,%d), want [%d,%d)", p, lo, hi, cum, cum+graph.VertexID(sizes[p]))
		}
		cum = hi
	}
}

func TestEncodingApplyPreservesStructure(t *testing.T) {
	g := testGraph(14)
	pt, _ := RecursiveBisect(g, 2, Options{Seed: 14})
	e := NewEncoding(pt)
	h := e.Apply(g)
	if h.NumEdges() != g.NumEdges() || h.NumVertices() != g.NumVertices() {
		t.Fatal("apply changed graph size")
	}
	// Spot-check: edges map through the bijection.
	checked := 0
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		if !h.HasEdge(e.ToNew(u), e.ToNew(v)) {
			t.Fatalf("edge (%d,%d) missing after relabel", u, v)
		}
		checked++
		return checked < 500
	})
}
