package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Encoding relabels vertex IDs so that the vertices of each partition form a
// consecutive range (Appendix B): the j-th vertex of partition i gets
// encoded ID sum(sizes of partitions < i) + j. Surfer then finds a vertex's
// partition with a binary search over P range starts instead of a global
// vertex→partition map — crucial for Combine-task recovery, which must know
// which partition each incoming edge came from.
type Encoding struct {
	// starts[p] is the first encoded ID of partition p; starts[P] = |V|.
	starts []graph.VertexID
	// toNew[old] and toOld[new] are the relabeling bijection.
	toNew []graph.VertexID
	toOld []graph.VertexID
}

// NewEncoding builds the consecutive-range encoding for a partitioning.
// Within a partition, vertices keep their relative order.
func NewEncoding(pt *Partitioning) *Encoding {
	n := len(pt.Assign)
	sizes := pt.Sizes()
	e := &Encoding{
		starts: make([]graph.VertexID, pt.P+1),
		toNew:  make([]graph.VertexID, n),
		toOld:  make([]graph.VertexID, n),
	}
	for p := 0; p < pt.P; p++ {
		e.starts[p+1] = e.starts[p] + graph.VertexID(sizes[p])
	}
	cursor := make([]graph.VertexID, pt.P)
	copy(cursor, e.starts[:pt.P])
	for old := 0; old < n; old++ {
		p := pt.Assign[old]
		nw := cursor[p]
		cursor[p]++
		e.toNew[old] = nw
		e.toOld[nw] = graph.VertexID(old)
	}
	return e
}

// ToNew maps an original vertex ID to its encoded ID.
func (e *Encoding) ToNew(old graph.VertexID) graph.VertexID { return e.toNew[old] }

// ToOld maps an encoded vertex ID back to the original ID.
func (e *Encoding) ToOld(nw graph.VertexID) graph.VertexID { return e.toOld[nw] }

// PartOf returns the partition of an encoded vertex ID by binary search over
// the range starts.
func (e *Encoding) PartOf(nw graph.VertexID) PartID {
	// First start strictly greater than nw, minus one.
	i := sort.Search(len(e.starts), func(i int) bool { return e.starts[i] > nw }) - 1
	return PartID(i)
}

// Range returns the encoded ID range [lo, hi) of partition p.
func (e *Encoding) Range(p PartID) (lo, hi graph.VertexID) {
	return e.starts[p], e.starts[p+1]
}

// NumVertices reports the number of encoded vertices.
func (e *Encoding) NumVertices() int { return len(e.toNew) }

// NumPartitions reports the number of partitions.
func (e *Encoding) NumPartitions() int { return len(e.starts) - 1 }

// Apply produces the relabeled graph: vertex v of the result corresponds to
// original vertex ToOld(v) and its neighbor lists are relabeled accordingly.
func (e *Encoding) Apply(g *graph.Graph) *graph.Graph {
	if g.NumVertices() != len(e.toNew) {
		panic(fmt.Sprintf("partition: encoding covers %d vertices, graph has %d", len(e.toNew), g.NumVertices()))
	}
	b := graph.NewBuilder(g.NumVertices()).KeepDuplicates()
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		b.AddEdge(e.toNew[u], e.toNew[v])
		return true
	})
	return b.Build()
}

// Validate checks the bijection and range invariants.
func (e *Encoding) Validate() error {
	n := len(e.toNew)
	seen := make([]bool, n)
	for old, nw := range e.toNew {
		if int(nw) >= n {
			return fmt.Errorf("partition: encoded ID %d out of range", nw)
		}
		if seen[nw] {
			return fmt.Errorf("partition: encoded ID %d assigned twice", nw)
		}
		seen[nw] = true
		if e.toOld[nw] != graph.VertexID(old) {
			return fmt.Errorf("partition: toOld(toNew(%d)) = %d", old, e.toOld[nw])
		}
	}
	for p := 0; p+1 < len(e.starts); p++ {
		if e.starts[p] > e.starts[p+1] {
			return fmt.Errorf("partition: range starts not monotone at %d", p)
		}
	}
	if e.starts[len(e.starts)-1] != graph.VertexID(n) {
		return fmt.Errorf("partition: ranges do not cover all %d vertices", n)
	}
	return nil
}
