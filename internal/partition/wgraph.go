// Package partition implements Surfer's graph partitioning (§4): a
// multi-level bisection kernel (coarsen → initial partition → refine →
// uncoarsen, Appendix A.2), recursive bisection into P = 2^L partitions, the
// partition-sketch model with its local-optimality / monotonicity / proximity
// properties, and the bandwidth-aware algorithm (Algorithm 4) that bisects
// the machine graph and the data graph in lockstep to place partitions on
// machine sets whose mutual bandwidth matches their cross-partition edge
// counts.
package partition

import (
	"math/rand"
	"slices"

	"repro/internal/graph"
)

// wedge is a weighted adjacency entry in the coarsening work graph.
type wedge struct {
	to int32
	w  int64
}

// wgraph is the mutable weighted graph the multilevel kernel coarsens, in
// compressed sparse row form: vertex v's adjacency is edges[xadj[v]:
// xadj[v+1]]. Vertex weights count the original vertices collapsed into each
// coarse vertex; edge weights count the original undirected edges collapsed
// into each coarse edge. Both are what bisection must balance and minimize.
// The flat layout replaces the per-vertex []wedge slices the kernel used to
// coarsen: contraction now accumulates into stamp-indexed scratch arrays and
// writes one slab, instead of clearing and refilling a hash map per coarse
// vertex (which dominated partitioning time at 1M vertices).
type wgraph struct {
	vwgt  []int64
	xadj  []int32
	edges []wedge
}

func (w *wgraph) n() int { return len(w.vwgt) }

// adjOf returns vertex v's adjacency as a shared, read-only slice.
func (w *wgraph) adjOf(v int) []wedge { return w.edges[w.xadj[v]:w.xadj[v+1]] }

// totalVertexWeight sums all vertex weights (invariant under coarsening).
func (w *wgraph) totalVertexWeight() int64 {
	var s int64
	for _, v := range w.vwgt {
		s += v
	}
	return s
}

// wscratch is the reusable workspace of one recursive-bisection run: the
// global→local vertex index (full graph size, reset per subset, so building
// a work graph never hashes) shared by every newWorkGraph call of the run.
type wscratch struct {
	local []int32
}

func newWScratch(n int) *wscratch {
	l := make([]int32, n)
	for i := range l {
		l[i] = -1
	}
	return &wscratch{local: l}
}

// newWorkGraph builds the induced weighted subgraph of an undirected graph
// over the given (global-ID) vertex subset. Each undirected edge gets
// weight 1; each vertex is weighted by 1 + its degree, so bisection
// balances partitions by *edge* count — the paper's constraint ("all
// partitions with similar number of edges", §2), which also balances
// per-partition bytes and work on skewed graphs. It also returns the
// local→global map. Adjacency order matches the neighbor order of und, so
// every downstream decision (matching, GGGP, refinement) is identical to
// the pre-CSR per-vertex-slice layout.
func newWorkGraph(und *graph.Graph, subset []graph.VertexID) (*wgraph, []graph.VertexID) {
	return newWorkGraphScratch(und, subset, nil)
}

// newWorkGraphScratch is newWorkGraph with a caller-owned scratch, so a
// recursive run indexes global→local through one flat array instead of
// building a hash map per subset. The scratch's local entries are restored
// to -1 before returning.
func newWorkGraphScratch(und *graph.Graph, subset []graph.VertexID, sc *wscratch) (*wgraph, []graph.VertexID) {
	if sc == nil {
		sc = newWScratch(und.NumVertices())
	}
	local := sc.local
	for i, v := range subset {
		local[v] = int32(i)
	}
	w := &wgraph{
		vwgt: make([]int64, len(subset)),
		xadj: make([]int32, len(subset)+1),
	}
	// Pass 1: count induced degrees.
	deg := int32(0)
	for i, v := range subset {
		w.vwgt[i] = 1 + int64(und.OutDegree(v))
		for _, nb := range und.Neighbors(v) {
			if local[nb] >= 0 {
				deg++
			}
		}
		w.xadj[i+1] = deg
	}
	// Pass 2: fill the slab in neighbor order.
	w.edges = make([]wedge, deg)
	cur := int32(0)
	for _, v := range subset {
		for _, nb := range und.Neighbors(v) {
			if j := local[nb]; j >= 0 {
				w.edges[cur] = wedge{to: j, w: 1}
				cur++
			}
		}
	}
	for _, v := range subset {
		local[v] = -1
	}
	toGlobal := make([]graph.VertexID, len(subset))
	copy(toGlobal, subset)
	return w, toGlobal
}

// contract builds the coarse graph given a matching: match[v] is the coarse
// vertex index of v. Parallel edges between the same coarse pair merge with
// summed weight; edges internal to a coarse vertex disappear. Accumulation
// uses a stamp array (slot[cn] holds cn's position in the current coarse
// vertex's output range, cleared by walking back over that range) — no
// per-coarse-vertex map to clear, no per-edge hashing.
func (w *wgraph) contract(match []int32, coarseN int) *wgraph {
	c := &wgraph{
		vwgt: make([]int64, coarseN),
		xadj: make([]int32, coarseN+1),
	}
	for v := range w.vwgt {
		c.vwgt[match[v]] += w.vwgt[v]
	}
	// Group fine vertices by coarse vertex (counting sort: stable in fine
	// vertex order, like the append loop it replaces).
	counts := make([]int32, coarseN+1)
	for v := range w.vwgt {
		counts[match[v]+1]++
	}
	for i := 1; i <= int(coarseN); i++ {
		counts[i] += counts[i-1]
	}
	members := make([]int32, len(w.vwgt))
	cursor := make([]int32, coarseN)
	copy(cursor, counts[:coarseN])
	for v := range w.vwgt {
		cv := match[v]
		members[cursor[cv]] = int32(v)
		cursor[cv]++
	}
	// slot[cn] = index into the accumulation buffer where coarse neighbor cn
	// accumulates for the coarse vertex being built, or -1.
	slot := make([]int32, coarseN)
	for i := range slot {
		slot[i] = -1
	}
	// Accumulate each coarse vertex's neighbors as packed (to<<32 | w)
	// words: sorting []uint64 with slices.Sort is several times faster than
	// comparison-function sorting of 16-byte structs, and because neighbor
	// IDs are unique within a range, ordering the packed words orders the
	// range by neighbor. Weights are far below 2^32 at our scales (they
	// count collapsed undirected edges); the overflow guard falls back to
	// widening arithmetic should that ever change.
	var packed []uint64
	c.edges = make([]wedge, 0, len(w.edges))
	for cv := int32(0); cv < int32(coarseN); cv++ {
		packed = packed[:0]
		overflow := false
		for _, v := range members[counts[cv]:counts[cv+1]] {
			for _, e := range w.adjOf(int(v)) {
				cn := match[e.to]
				if cn == cv {
					continue
				}
				if s := slot[cn]; s >= 0 {
					packed[s] += uint64(e.w)
					if packed[s]>>32 != uint64(cn) {
						overflow = true
					}
				} else {
					slot[cn] = int32(len(packed))
					packed = append(packed, uint64(cn)<<32|uint64(e.w))
					if e.w >= 1<<32 {
						overflow = true
					}
				}
			}
		}
		for _, pk := range packed {
			slot[pk>>32] = -1
		}
		if overflow {
			// A weight crossed 2^32: redo this coarse vertex with full-width
			// weights. Deterministic and vanishingly rare (requires 4G+
			// collapsed edges between one coarse pair).
			c.edges = contractWide(w, match, members[counts[cv]:counts[cv+1]], cv, slot, c.edges)
		} else {
			slices.Sort(packed)
			for _, pk := range packed {
				c.edges = append(c.edges, wedge{to: int32(pk >> 32), w: int64(pk & 0xFFFFFFFF)})
			}
		}
		c.xadj[cv+1] = int32(len(c.edges))
	}
	return c
}

// contractWide is contract's overflow fallback for one coarse vertex: the
// same accumulation with 64-bit weights. slot must arrive all -1 and is
// restored before returning.
func contractWide(w *wgraph, match []int32, members []int32, cv int32, slot []int32, out []wedge) []wedge {
	start := len(out)
	for _, v := range members {
		for _, e := range w.adjOf(int(v)) {
			cn := match[e.to]
			if cn == cv {
				continue
			}
			if s := slot[cn]; s >= 0 {
				out[s].w += e.w
			} else {
				slot[cn] = int32(len(out))
				out = append(out, wedge{to: cn, w: e.w})
			}
		}
	}
	rng := out[start:]
	slices.SortFunc(rng, func(a, b wedge) int { return int(a.to) - int(b.to) })
	for _, e := range rng {
		slot[e.to] = -1
	}
	return out
}

// heavyEdgeMatching computes a matching for coarsening: vertices are visited
// in random order; each unmatched vertex is matched with its unmatched
// neighbor of maximum edge weight (the paper's multilevel scheme [15,16]).
// It returns the fine→coarse map and the coarse vertex count.
func (w *wgraph) heavyEdgeMatching(rng *rand.Rand) ([]int32, int) {
	n := w.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	next := int32(0)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		for _, e := range w.adjOf(int(v)) {
			if match[e.to] < 0 && e.to != v && e.w > bestW {
				bestW, best = e.w, e.to
			}
		}
		match[v] = next
		if best >= 0 {
			match[best] = next
		}
		next++
	}
	return match, int(next)
}
