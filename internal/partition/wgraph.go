// Package partition implements Surfer's graph partitioning (§4): a
// multi-level bisection kernel (coarsen → initial partition → refine →
// uncoarsen, Appendix A.2), recursive bisection into P = 2^L partitions, the
// partition-sketch model with its local-optimality / monotonicity / proximity
// properties, and the bandwidth-aware algorithm (Algorithm 4) that bisects
// the machine graph and the data graph in lockstep to place partitions on
// machine sets whose mutual bandwidth matches their cross-partition edge
// counts.
package partition

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// wedge is a weighted adjacency entry in the coarsening work graph.
type wedge struct {
	to int32
	w  int64
}

// wgraph is the mutable weighted graph the multilevel kernel coarsens.
// Vertex weights count the original vertices collapsed into each coarse
// vertex; edge weights count the original undirected edges collapsed into
// each coarse edge. Both are what bisection must balance and minimize.
type wgraph struct {
	vwgt []int64
	adj  [][]wedge
}

func (w *wgraph) n() int { return len(w.vwgt) }

// totalVertexWeight sums all vertex weights (invariant under coarsening).
func (w *wgraph) totalVertexWeight() int64 {
	var s int64
	for _, v := range w.vwgt {
		s += v
	}
	return s
}

// newWorkGraph builds the induced weighted subgraph of an undirected graph
// over the given (global-ID) vertex subset. Each undirected edge gets
// weight 1; each vertex is weighted by 1 + its degree, so bisection
// balances partitions by *edge* count — the paper's constraint ("all
// partitions with similar number of edges", §2), which also balances
// per-partition bytes and work on skewed graphs. It also returns the
// local→global map.
func newWorkGraph(und *graph.Graph, subset []graph.VertexID) (*wgraph, []graph.VertexID) {
	local := make(map[graph.VertexID]int32, len(subset))
	for i, v := range subset {
		local[v] = int32(i)
	}
	w := &wgraph{
		vwgt: make([]int64, len(subset)),
		adj:  make([][]wedge, len(subset)),
	}
	for i, v := range subset {
		w.vwgt[i] = 1 + int64(und.OutDegree(v))
		for _, nb := range und.Neighbors(v) {
			if j, ok := local[nb]; ok {
				w.adj[i] = append(w.adj[i], wedge{to: j, w: 1})
			}
		}
	}
	toGlobal := make([]graph.VertexID, len(subset))
	copy(toGlobal, subset)
	return w, toGlobal
}

// contract builds the coarse graph given a matching: match[v] is the coarse
// vertex index of v. Parallel edges between the same coarse pair merge with
// summed weight; edges internal to a coarse vertex disappear.
func (w *wgraph) contract(match []int32, coarseN int) *wgraph {
	c := &wgraph{
		vwgt: make([]int64, coarseN),
		adj:  make([][]wedge, coarseN),
	}
	for v := range w.vwgt {
		c.vwgt[match[v]] += w.vwgt[v]
	}
	// Merge adjacency using a scratch map keyed by coarse neighbor; reused
	// across coarse vertices via the lastSeen trick to avoid reallocating.
	acc := make(map[int32]int64)
	// Group fine vertices by coarse vertex.
	members := make([][]int32, coarseN)
	for v := range w.adj {
		cv := match[v]
		members[cv] = append(members[cv], int32(v))
	}
	for cv := int32(0); cv < int32(coarseN); cv++ {
		clear(acc)
		for _, v := range members[cv] {
			for _, e := range w.adj[v] {
				cn := match[e.to]
				if cn != cv {
					acc[cn] += e.w
				}
			}
		}
		if len(acc) == 0 {
			continue
		}
		list := make([]wedge, 0, len(acc))
		for to, wt := range acc {
			list = append(list, wedge{to: to, w: wt})
		}
		// Sort for determinism: map iteration order would otherwise leak
		// into matching and refinement decisions.
		sort.Slice(list, func(i, j int) bool { return list[i].to < list[j].to })
		c.adj[cv] = list
	}
	return c
}

// heavyEdgeMatching computes a matching for coarsening: vertices are visited
// in random order; each unmatched vertex is matched with its unmatched
// neighbor of maximum edge weight (the paper's multilevel scheme [15,16]).
// It returns the fine→coarse map and the coarse vertex count.
func (w *wgraph) heavyEdgeMatching(rng *rand.Rand) ([]int32, int) {
	n := w.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	next := int32(0)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		for _, e := range w.adj[v] {
			if match[e.to] < 0 && e.to != v && e.w > bestW {
				bestW, best = e.w, e.to
			}
		}
		match[v] = next
		if best >= 0 {
			match[best] = next
		}
		next++
	}
	return match, int(next)
}
