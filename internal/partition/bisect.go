package partition

import (
	"math/rand"
)

// bisection kernel parameters.
const (
	// coarsenTarget stops coarsening once the graph is this small; the
	// paper coarsens to "the scale of thousands of vertices" — a smaller
	// target is fine at our laptop scale and GGGP handles the rest.
	coarsenTarget = 256
	// coarsenMinShrink aborts coarsening when a round shrinks the graph by
	// less than this factor (heavy-edge matching has stalled).
	coarsenMinShrink = 0.95
	// gggpTrials is how many seeds GGGP grows, keeping the best cut.
	gggpTrials = 4
	// balanceTolerance allows each side of a bisection to exceed half the
	// total vertex weight by this fraction.
	balanceTolerance = 0.03
)

// bisectWork splits a weighted graph into two sides, returning side[v] in
// {0,1} for every vertex. It is the full multilevel pipeline of Appendix A.2:
// coarsening with heavy-edge matching, GGGP on the coarsest graph, and
// FM boundary refinement at every uncoarsening step.
func bisectWork(w *wgraph, rng *rand.Rand) []uint8 {
	if w.n() < 2 {
		return make([]uint8, w.n())
	}
	// Coarsening phase: remember the matchings to project back.
	levels := []*wgraph{w}
	var matchings [][]int32
	cur := w
	for cur.n() > coarsenTarget {
		match, cn := cur.heavyEdgeMatching(rng)
		if float64(cn) > coarsenMinShrink*float64(cur.n()) {
			break
		}
		coarse := cur.contract(match, cn)
		matchings = append(matchings, match)
		levels = append(levels, coarse)
		cur = coarse
	}

	// Initial partitioning on the coarsest graph.
	side := gggp(cur, rng)
	refine(cur, side)

	// Uncoarsening: project the partition to the finer graph and refine.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		match := matchings[li]
		fineSide := make([]uint8, fine.n())
		for v := range fineSide {
			fineSide[v] = side[match[v]]
		}
		refine(fine, fineSide)
		side = fineSide
	}
	return side
}

// gggp performs Greedy Graph Growing Partitioning [15] on the coarsest
// graph: from a random seed, grow side 0 by repeatedly absorbing the
// frontier vertex with maximum gain until it holds half the vertex weight.
// Several trials are run and the best cut wins.
func gggp(w *wgraph, rng *rand.Rand) []uint8 {
	n := w.n()
	total := w.totalVertexWeight()
	half := total / 2

	var bestSide []uint8
	bestCut := int64(-1)
	for trial := 0; trial < gggpTrials; trial++ {
		side := make([]uint8, n)
		for i := range side {
			side[i] = 1
		}
		inZero := make([]bool, n)
		// gain[v] = (weight of edges from v into side 0) - (weight into side 1);
		// moving a high-gain frontier vertex into side 0 shrinks the cut.
		gain := make([]int64, n)
		for v := range gain {
			for _, e := range w.adjOf(v) {
				gain[v] -= e.w
			}
		}
		seed := rng.Intn(n)
		var grown int64
		add := func(v int) {
			inZero[v] = true
			side[v] = 0
			grown += w.vwgt[v]
			for _, e := range w.adjOf(v) {
				gain[e.to] += 2 * e.w
			}
		}
		add(seed)
		for grown < half {
			// Pick the frontier vertex (neighbor of side 0) with max gain;
			// fall back to any unabsorbed vertex if the frontier is empty
			// (disconnected graph).
			best := -1
			var bestGain int64
			for v := 0; v < n; v++ {
				if inZero[v] {
					continue
				}
				onFrontier := false
				for _, e := range w.adjOf(v) {
					if inZero[e.to] {
						onFrontier = true
						break
					}
				}
				if !onFrontier {
					continue
				}
				if best == -1 || gain[v] > bestGain {
					best, bestGain = v, gain[v]
				}
			}
			if best == -1 {
				for v := 0; v < n; v++ {
					if !inZero[v] {
						best = v
						break
					}
				}
				if best == -1 {
					break
				}
			}
			add(best)
		}
		cut := cutWeight(w, side)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			bestSide = side
		}
	}
	return bestSide
}

// cutWeight sums the weight of edges crossing the bisection. Each undirected
// edge appears twice in adj, so the sum is halved.
func cutWeight(w *wgraph, side []uint8) int64 {
	var s int64
	for v := 0; v < w.n(); v++ {
		for _, e := range w.adjOf(v) {
			if side[v] != side[e.to] {
				s += e.w
			}
		}
	}
	return s / 2
}

// refine runs Fiduccia–Mattheyses-style boundary refinement: passes of
// single-vertex moves in best-gain order with a balance constraint,
// accepting a pass only if it improved the cut ("local refinement can
// significantly improve the partition quality", Appendix A.2).
func refine(w *wgraph, side []uint8) {
	n := w.n()
	total := w.totalVertexWeight()
	maxSide := total/2 + int64(float64(total)*balanceTolerance) + 1

	sideWeight := [2]int64{}
	for v := 0; v < n; v++ {
		sideWeight[side[v]] += w.vwgt[v]
	}
	gain := func(v int) int64 {
		// Cut reduction if v moves to the other side.
		var g int64
		for _, e := range w.adjOf(v) {
			if side[e.to] != side[v] {
				g += e.w
			} else {
				g -= e.w
			}
		}
		return g
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		// One sweep: move any vertex with positive gain whose move keeps
		// balance. Greedy single-sweep FM is sufficient at our scales.
		for v := 0; v < n; v++ {
			g := gain(v)
			if g <= 0 {
				continue
			}
			from := side[v]
			to := 1 - from
			if sideWeight[to]+w.vwgt[v] > maxSide {
				continue
			}
			side[v] = to
			sideWeight[from] -= w.vwgt[v]
			sideWeight[to] += w.vwgt[v]
			improved = true
		}
		if !improved {
			break
		}
	}
}
