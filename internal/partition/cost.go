package partition

import (
	"repro/internal/cluster"
)

// The elapsed-time model for distributed partitioning (Table 1).
//
// A distributed multilevel bisection of a subgraph on a machine set costs:
//
//  1. compute — coarsening, initial partitioning and refinement touch each
//     edge a few times: ComputePerEdge × edges / |machines|.
//  2. exchange — the machines performing the bisection exchange the
//     subgraph repeatedly during coarsening and refinement (matching
//     proposals, contracted graphs, boundary updates): ExchangeFactor ×
//     bytes in an all-to-all pattern. Each machine moves its share across
//     its links into the rest of the set; the step finishes when the
//     worst-connected machine does.
//  3. staging — only when the machines processing a node are *not* the
//     machines holding its data. The bandwidth-oblivious baseline picks
//     random machines at every level ("ParMetis randomly chooses the
//     available machine for processing", §6.2), so it re-stages the node's
//     data over average random links each level, twice (fetch input, write
//     output). The bandwidth-aware algorithm keeps data in place down the
//     recursion and pays staging only at the root (initial load, which both
//     approaches share and which we therefore omit from both).
//
// Sibling bisections run on disjoint machine sets in parallel, so a level's
// elapsed time is the maximum over its nodes and the total is the sum over
// levels.
type CostModel struct {
	// ComputePerEdge is seconds of CPU work per directed edge per pass of
	// the multilevel pipeline.
	ComputePerEdge float64
	// ExchangeFactor scales the subgraph bytes exchanged all-to-all during
	// a distributed bisection.
	ExchangeFactor float64
	// StagingRounds is how many times a bandwidth-oblivious step re-moves
	// the node's data over random links (fetch + write-back = 2).
	StagingRounds float64
}

// DefaultCostModel returns constants calibrated so that the simulated
// cluster reproduces the relative ordering of Table 1 (equal methods on T1;
// bandwidth-aware 39–55% faster elsewhere).
func DefaultCostModel() CostModel {
	return CostModel{
		ComputePerEdge: 1.0e-6,
		ExchangeFactor: 3.0,
		StagingRounds:  3,
	}
}

// PartitioningTime estimates the elapsed seconds of the distributed
// partitioning run recorded in res.Steps on the given topology. staged
// selects the bandwidth-oblivious staging penalty (true for ParMetisLike
// results, false for BandwidthAware ones).
func (cm CostModel) PartitioningTime(res *Result, topo *cluster.Topology, staged bool) float64 {
	// Group steps by depth; each level's elapsed time is the max over its
	// nodes (disjoint machine sets run in parallel).
	byDepth := map[int][]BisectStep{}
	maxDepth := 0
	for _, s := range res.Steps {
		byDepth[s.Depth] = append(byDepth[s.Depth], s)
		if s.Depth > maxDepth {
			maxDepth = s.Depth
		}
	}
	avgRandom := averagePairBandwidth(topo)
	var total float64
	for d := 0; d <= maxDepth; d++ {
		var levelMax float64
		for _, s := range byDepth[d] {
			t := cm.stepTime(s, topo, staged, avgRandom)
			if t > levelMax {
				levelMax = t
			}
		}
		total += levelMax
	}
	return total
}

func (cm CostModel) stepTime(s BisectStep, topo *cluster.Topology, staged bool, avgRandom float64) float64 {
	bytes := float64(8*s.DataVertices) + 4*float64(s.DataEdges)
	nm := len(s.Machines)
	compute := cm.ComputePerEdge * float64(s.DataEdges) / float64(nm)
	if s.Local || nm <= 1 {
		// Single-machine bisection: CPU plus a disk pass over the data.
		return compute + 2*bytes/topo.DiskBandwidth()
	}
	// All-to-all exchange: each machine moves its share (bytes/nm ×
	// factor) into the rest of the set; bottleneck is the machine with the
	// lowest average bandwidth to its peers.
	perMachine := cm.ExchangeFactor * bytes / float64(nm)
	worst := 0.0
	for _, i := range s.Machines {
		var bwSum float64
		for _, j := range s.Machines {
			if i != j {
				bwSum += topo.Bandwidth(i, j)
			}
		}
		avg := bwSum / float64(nm-1)
		if t := perMachine / avg; t > worst {
			worst = t
		}
	}
	t := compute + worst
	if staged && s.Depth > 0 {
		// Re-stage the node's data over average random links.
		t += cm.StagingRounds * (bytes / float64(nm)) / avgRandom
	}
	return t
}

// averagePairBandwidth computes the mean bandwidth over all distinct
// machine pairs — the expected rate of a transfer between randomly chosen
// machines.
func averagePairBandwidth(t *cluster.Topology) float64 {
	n := t.NumMachines()
	if n < 2 {
		return cluster.LinkBandwidth
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += t.Bandwidth(cluster.MachineID(i), cluster.MachineID(j))
			count++
		}
	}
	return sum / float64(count)
}
