package metrics

import (
	"math"
	"sort"
)

// SeriesFormat / SeriesVersion identify the exported series-set schema (see
// docs/METRICS.md §8 for the field-by-field reference).
const (
	SeriesFormat  = "surfer-metrics-series"
	SeriesVersion = 1
)

// Set is the exported form of a collection run: every series padded to the
// same window count, sorted by name (natural order, so machine-tasks:2
// precedes machine-tasks:10).
type Set struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Window  float64  `json:"window"`
	Windows int      `json:"windows"`
	Series  []Series `json:"series"`
}

// Series is one named signal: Values[w] is the window-w value — a sum for
// count-like series, a time-weighted average for span series, a
// nearest-rank percentile for the wait series.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Lookup returns the named series, or nil.
func (s *Set) Lookup(name string) *Series {
	for i := range s.Series {
		if s.Series[i].Name == name {
			return &s.Series[i]
		}
	}
	return nil
}

// class is how a series' raw accumulator converts to exported values.
type class int

const (
	// classSum: acc is the window value (counts, bytes).
	classSum class = iota
	// classAvg: acc is value-seconds; the window value is acc ÷ window
	// length (utilizations, depths, occupancies).
	classAvg
	// classP99: the window value is the 99th-percentile (nearest rank) of
	// the window's samples.
	classP99
)

// series is one signal's accumulation state.
type series struct {
	class class
	acc   []float64
	// samples holds per-window observations for classP99.
	samples map[int][]float64
	// ctrVal / ctrSince are the running level of a time-weighted counter
	// (classAvg series fed through Collector.counter).
	ctrVal   float64
	ctrSince float64
	maxW     int // highest window index touched (for classP99, where acc stays empty)
}

func (s *series) grow(w int) {
	for len(s.acc) <= w {
		s.acc = append(s.acc, 0)
	}
	if w > s.maxW {
		s.maxW = w
	}
}

func (s *series) sample(w int, v float64) {
	if s.samples == nil {
		s.samples = make(map[int][]float64)
	}
	s.samples[w] = append(s.samples[w], v)
	if w > s.maxW {
		s.maxW = w
	}
}

// windows reports how many windows this series spans.
func (s *series) windows() int {
	if len(s.acc) == 0 && s.samples == nil {
		return 0
	}
	return s.maxW + 1
}

// value returns the exported value of window w in the series' current
// state (used by the alert evaluator at seal time).
func (s *series) value(w int, window float64) float64 {
	switch s.class {
	case classAvg:
		if w < len(s.acc) {
			return s.acc[w] / window
		}
	case classSum:
		if w < len(s.acc) {
			return s.acc[w]
		}
	case classP99:
		return percentile(s.samples[w], 0.99)
	}
	return 0
}

// export renders the series over nw windows.
func (s *series) export(nw int, window float64) []float64 {
	out := make([]float64, nw)
	for w := 0; w < nw; w++ {
		out[w] = s.value(w, window)
	}
	return out
}

// percentile is the nearest-rank percentile of samples (p in (0,1]); the
// samples are copied and sorted, so arrival order never leaks into values.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// sortedKeys returns the series keys in natural sort order (numeric runs
// compare as numbers), caching between calls until a new series appears.
func (c *Collector) sortedKeys() []string {
	if !c.sorted {
		sort.Slice(c.keys, func(i, j int) bool { return naturalLess(c.keys[i], c.keys[j]) })
		c.sorted = true
	}
	return c.keys
}

// naturalLess compares strings with embedded integers numerically, so
// "machine-tasks:2" < "machine-tasks:10".
func naturalLess(a, b string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		da, db := ca >= '0' && ca <= '9', cb >= '0' && cb <= '9'
		if da && db {
			// Compare the full digit runs: longer run of significant digits
			// wins; equal lengths compare lexically.
			si, sj := i, j
			for i < len(a) && a[i] >= '0' && a[i] <= '9' {
				i++
			}
			for j < len(b) && b[j] >= '0' && b[j] <= '9' {
				j++
			}
			na, nb := trimZeros(a[si:i]), trimZeros(b[sj:j])
			if len(na) != len(nb) {
				return len(na) < len(nb)
			}
			if na != nb {
				return na < nb
			}
			continue
		}
		if ca != cb {
			return ca < cb
		}
		i++
		j++
	}
	return len(a)-i < len(b)-j
}

func trimZeros(s string) string {
	for len(s) > 1 && s[0] == '0' {
		s = s[1:]
	}
	return s
}
