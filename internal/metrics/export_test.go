package metrics

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func sampleSet() *Set {
	return &Set{
		Format: SeriesFormat, Version: SeriesVersion,
		Window: 0.5, Windows: 3,
		Series: []Series{
			{Name: "link-bytes:0>1", Values: []float64{100, 0, 50}},
			{Name: "machine-tasks:0", Values: []float64{1, 0.5, 0}},
		},
	}
}

func TestWriteSetReadSetRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSet(&buf, sampleSet()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteSet(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}

func TestReadSetRejectsForeignFiles(t *testing.T) {
	if _, err := ReadSet(strings.NewReader(`{"format":"other","version":1}`)); err == nil {
		t.Fatal("foreign format accepted")
	}
	if _, err := ReadSet(strings.NewReader(`{"format":"surfer-metrics-series","version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := ReadSet(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleSet()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 windows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "window,start,link-bytes:0>1,machine-tasks:0" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "1,0.5,0,0.5" {
		t.Fatalf("window 1 row = %q", lines[2])
	}
}

func TestWritePromExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, sampleSet()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE surfer_series_last gauge",
		`surfer_series_last{name="link-bytes:0>1"} 50`,
		`surfer_series_sum{name="machine-tasks:0"} 1.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8); got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", got)
	}
	if got := Sparkline([]float64{0, 0, 0}, 3); got != "▁▁▁" {
		t.Fatalf("all-zero = %q", got)
	}
	// Resampling keeps the bucket maximum, so the spike survives.
	if got := Sparkline([]float64{0, 9, 0, 0, 0, 0, 0, 0}, 4); got[:3] != "█" {
		t.Fatalf("spike lost: %q", got)
	}
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Fatal("degenerate inputs should render empty")
	}
}

func TestNaturalLess(t *testing.T) {
	keys := []string{
		"machine-tasks:10", "machine-tasks:2", "level-util:0",
		"link-util:2>10", "link-util:2>3",
	}
	sort.Slice(keys, func(i, j int) bool { return naturalLess(keys[i], keys[j]) })
	want := []string{
		"level-util:0", "link-util:2>3", "link-util:2>10",
		"machine-tasks:2", "machine-tasks:10",
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("order = %v, want %v", keys, want)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	if v := percentile([]float64{5, 1, 3}, 0.99); v != 5 {
		t.Fatalf("p99 of 3 = %g", v)
	}
	if v := percentile([]float64{4, 2}, 0.5); v != 2 {
		t.Fatalf("p50 of 2 = %g", v)
	}
	if v := percentile(nil, 0.99); v != 0 {
		t.Fatalf("empty = %g", v)
	}
}
