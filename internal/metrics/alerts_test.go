package metrics_test

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// emitBusy emits a transfer keeping the 0→1 link busy for [t0, t1) into
// rec (Seq handled by the recorder).
func emitBusy(rec *trace.Recorder, t0, t1 float64) {
	rec.Emit(trace.Event{Kind: trace.KindTransfer, Cause: trace.None,
		Machine: 0, Dst: 1, Part: trace.None, Bytes: 1000,
		Time: t0, Start: t0, End: t1})
}

// tick emits a zero-span marker advancing the stream clock to t.
func tick(rec *trace.Recorder, t float64) {
	rec.Emit(trace.Event{Kind: trace.KindStageBegin, Cause: trace.None,
		Machine: trace.None, Dst: trace.None, Part: trace.None, Time: t})
}

// TestAlertLifecycle drives a synthetic saturation plateau through a
// for-3-windows rule: the alert fires at the third consecutive breaching
// seal, stays quiet while breaching continues, and resolves on the first
// clear window.
func TestAlertLifecycle(t *testing.T) {
	rules := &metrics.RuleSet{Rules: []metrics.Rule{
		{Name: "hot", Series: "link-util:0>1", Op: ">", Threshold: 0.9, For: 3},
	}}
	rec := trace.NewRecorder()
	col, err := metrics.NewCollector(metrics.Config{Window: 1, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	col.Attach(rec)
	// Windows 0..4 fully busy, then idle through window 8.
	for w := 0; w < 5; w++ {
		emitBusy(rec, float64(w), float64(w+1))
	}
	for w := 5; w < 9; w++ {
		tick(rec, float64(w+1))
	}
	col.Finish()

	alerts := col.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want fire+resolve", alerts)
	}
	fire, res := alerts[0], alerts[1]
	if fire.Resolved || fire.Rule != "hot" || fire.Series != "link-util:0>1" {
		t.Fatalf("first alert = %+v, want a fire of hot", fire)
	}
	// Breaches seal at windows 0,1,2 → the for-3 rule fires at window 2.
	if fire.Window != 2 || fire.Time != 3 {
		t.Fatalf("fired at window %d (t=%g), want window 2 (t=3)", fire.Window, fire.Time)
	}
	if fire.Value != 1 {
		t.Fatalf("fire value = %g, want 1", fire.Value)
	}
	if !res.Resolved || res.Window != 5 || res.Time != 6 {
		t.Fatalf("resolve = %+v, want window 5 (t=6)", res)
	}

	// The live stream carries the matching events with causal edges.
	var fireEv, resEv *trace.Event
	events := rec.Events()
	for i := range events {
		switch events[i].Kind {
		case trace.KindAlertFired:
			fireEv = &events[i]
		case trace.KindAlertResolved:
			resEv = &events[i]
		}
	}
	if fireEv == nil || resEv == nil {
		t.Fatal("live stream missing alert events")
	}
	if fireEv.Name != "hot@link-util:0>1" || resEv.Name != fireEv.Name {
		t.Fatalf("event names %q / %q", fireEv.Name, resEv.Name)
	}
	if fireEv.Cause == trace.None || events[fireEv.Cause].Time >= fireEv.Time {
		t.Fatalf("fire cause %d not inside the breaching window", fireEv.Cause)
	}
	if resEv.Cause != fireEv.Seq {
		t.Fatalf("resolve cause %d, want the fire's seq %d", resEv.Cause, fireEv.Seq)
	}
}

// TestAlertPatternRulesMatchFamilies: a trailing-* rule instantiates per
// matching series and the Tenant field rides on tenant alerts.
func TestAlertPatternRulesMatchFamilies(t *testing.T) {
	rules := &metrics.RuleSet{Rules: []metrics.Rule{
		{Name: "wait", Series: "tenant-wait-p99:*", Op: ">", Threshold: 0.5},
	}}
	rec := trace.NewRecorder()
	col, err := metrics.NewCollector(metrics.Config{Window: 1, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	col.Attach(rec)
	// Tenant "acme" queues at 0 and admits at 0.9 (wait 0.9 > 0.5);
	// tenant "zen" waits only 0.1.
	rec.Emit(trace.Event{Kind: trace.KindJobQueued, Job: "a", Tenant: "acme",
		Cause: trace.None, Machine: trace.None, Dst: trace.None, Part: trace.None, Time: 0})
	rec.Emit(trace.Event{Kind: trace.KindJobQueued, Job: "z", Tenant: "zen",
		Cause: trace.None, Machine: trace.None, Dst: trace.None, Part: trace.None, Time: 0.4})
	rec.Emit(trace.Event{Kind: trace.KindJobAdmitted, Job: "z", Tenant: "zen",
		Cause: trace.None, Machine: trace.None, Dst: trace.None, Part: trace.None, Time: 0.5})
	rec.Emit(trace.Event{Kind: trace.KindJobAdmitted, Job: "a", Tenant: "acme",
		Cause: trace.None, Machine: trace.None, Dst: trace.None, Part: trace.None, Time: 0.9})
	tick(rec, 3)
	col.Finish()

	var fired []metrics.Alert
	for _, al := range col.Alerts() {
		if !al.Resolved {
			fired = append(fired, al)
		}
	}
	if len(fired) != 1 || fired[0].Series != "tenant-wait-p99:acme" {
		t.Fatalf("fired = %+v, want exactly tenant-wait-p99:acme", fired)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindAlertFired && ev.Tenant != "acme" {
			t.Fatalf("alert event tenant = %q, want acme", ev.Tenant)
		}
	}
}

func TestRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error; "" = valid
	}{
		{"valid", `{"rules":[{"name":"a","series":"s","op":">","threshold":1}]}`, ""},
		{"bad op", `{"rules":[{"name":"a","series":"s","op":"!=","threshold":1}]}`, "unknown op"},
		{"no name", `{"rules":[{"series":"s","op":">","threshold":1}]}`, "no name"},
		{"dup name", `{"rules":[{"name":"a","series":"s","op":">"},{"name":"a","series":"t","op":"<"}]}`, "duplicate"},
		{"no series", `{"rules":[{"name":"a","op":">"}]}`, "names no series"},
		{"garbage", `{"rules": 7}`, "parsing rules"},
	}
	for _, tc := range cases {
		rs, err := metrics.ParseRules([]byte(tc.json))
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			if rs.Rules[0].For != 1 {
				t.Fatalf("%s: For defaulted to %d, want 1", tc.name, rs.Rules[0].For)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestSealLagHidesLateSpans: a window's alert decision sees only what had
// arrived when it sealed, but the exported series still carries the late
// span — the documented scrape-delay semantics.
func TestSealLagHidesLateSpans(t *testing.T) {
	rules := &metrics.RuleSet{Rules: []metrics.Rule{
		{Name: "busy", Series: "machine-tasks:0", Op: ">", Threshold: 0.5},
	}}
	rec := trace.NewRecorder()
	col, err := metrics.NewCollector(metrics.Config{Window: 1, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	col.Attach(rec)
	// Clock runs to t=9 first, sealing windows 0..7 while they look empty;
	// then a long task whose span reaches back to t=0 lands.
	tick(rec, 9)
	rec.Emit(trace.Event{Kind: trace.KindTaskEnd, Name: "late", Cause: trace.None,
		Machine: 0, Dst: trace.None, Part: trace.None, Time: 9, Start: 0, End: 9})
	set := col.Finish()
	// Only window 8 — sealed by Finish, after the span landed — fires; the
	// eight earlier windows were already judged empty.
	alerts := col.Alerts()
	if len(alerts) != 1 || alerts[0].Resolved || alerts[0].Window != 8 {
		t.Fatalf("alerts = %+v, want a single fire at window 8", alerts)
	}
	s := set.Lookup("machine-tasks:0")
	if s == nil {
		t.Fatal("series missing")
	}
	for w := 0; w < 9; w++ {
		if s.Values[w] != 1 {
			t.Fatalf("window %d = %g, want the late span exported", w, s.Values[w])
		}
	}
}
