package metrics_test

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chaosTopo returns the four-machine topology of the chaos workload.
func chaosTopo() *cluster.Topology { return cluster.NewT1(4) }

// chaosConfig assembles the seeded fault+elastic schedule the determinism
// goldens pin: a slow spot-instance join, a graceful drain with a real
// migration, a machine death with failover retries, and a transient link
// drop with backoff retries — every event family the collector folds.
func chaosConfig(rec *trace.Recorder, workers int) engine.Config {
	bw := int64(cluster.LinkBandwidth)
	return engine.Config{
		Topo: chaosTopo(),
		Replicas: &storage.Replicas{Machines: [][]cluster.MachineID{
			{0, 2}, {1, 3}, {2, 0},
		}},
		Trace:   rec,
		Workers: workers,
		Failures: []engine.Failure{
			// Mid-second-stage: machine 2's running task is lost and retried
			// on its surviving replica after the heartbeat.
			{Machine: 2, At: 3.8},
		},
		Faults: &fault.Schedule{
			Joins:  []fault.MachineJoin{{Machine: 3, At: 0.25, NICs: cluster.LinkBandwidth / 2}},
			Drains: []fault.MachineDrain{{Machine: 1, At: 0.5, Deadline: 10}},
			Links: []fault.LinkFault{
				// Covers the 2→0 shuffle transfer at t=2: one drop, one
				// timeout, one backoff retry.
				{Src: 2, Dst: 0, From: 1.5, Until: 2.4, Drop: true},
			},
		},
		PartBytes: []int64{0, bw, 0},
	}
}

// chaosJob is a two-stage job with pinned tasks and enough cross-machine
// traffic to keep the level-0 cut busy.
func chaosJob() *engine.Job {
	stage := func(name string, compute float64, fanOut bool) *engine.Stage {
		tasks := make([]*engine.Task, 3)
		for i := range tasks {
			tasks[i] = &engine.Task{
				Name: name + "-t" + strconv.Itoa(i),
				Part: partition.PartID(i), Machine: cluster.MachineID(i),
				Compute: compute,
			}
			if fanOut {
				tasks[i].Outputs = []engine.Output{
					{DstTask: (i + 1) % 3, Bytes: int64(cluster.LinkBandwidth / 4)},
				}
			}
		}
		return &engine.Stage{Name: name, Tasks: tasks}
	}
	return &engine.Job{Name: "chaos", Stages: []*engine.Stage{
		stage("s0", 2, true), stage("s1", 1, false),
	}}
}

const chaosWindow = 0.25

// chaosRules exercises the alert engine on the chaos run.
func chaosRules() *metrics.RuleSet {
	return &metrics.RuleSet{Rules: []metrics.Rule{
		{Name: "level0-hot", Series: "level-util:0", Op: ">", Threshold: 0.5, For: 2},
		{Name: "machine-busy", Series: "machine-tasks:*", Op: ">=", Threshold: 0.9, For: 1},
	}}
}

// chaosRun executes the workload once: live series sampled during the run,
// alert events emitted into the stream. Returns the live set, the captured
// stream and the live alert records.
func chaosRun(t *testing.T, workers int) (*metrics.Set, []trace.Event, []metrics.Alert) {
	t.Helper()
	rec := trace.NewRecorder()
	col, err := metrics.NewCollector(metrics.Config{
		Window: chaosWindow, Topo: chaosTopo(), Rules: chaosRules(),
	})
	if err != nil {
		t.Fatal(err)
	}
	col.Attach(rec)
	r := engine.New(chaosConfig(rec, workers))
	if _, err := r.Run(chaosJob()); err != nil {
		t.Fatal(err)
	}
	return col.Finish(), rec.Events(), col.Alerts()
}

func marshalSet(t *testing.T, s *metrics.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLiveEqualsDerivedAcrossWorkers is the tentpole identity: the series
// sampled live during the run and the series derived offline from the
// captured stream are byte-identical, for Workers 1, 4 and 8, under the
// seeded fault+elastic schedule — and pinned against a committed golden.
func TestLiveEqualsDerivedAcrossWorkers(t *testing.T) {
	var first []byte
	for _, workers := range []int{1, 4, 8} {
		live, events, liveAlerts := chaosRun(t, workers)
		liveBytes := marshalSet(t, live)

		// The captured stream contains the live-emitted alert events; the
		// derived fold must skip them and reproduce the live series exactly.
		derived, alerts, err := metrics.FromEvents(events, metrics.Config{
			Window: chaosWindow, Topo: chaosTopo(), Rules: chaosRules(),
		})
		if err != nil {
			t.Fatal(err)
		}
		derivedBytes := marshalSet(t, derived)
		if !bytes.Equal(liveBytes, derivedBytes) {
			t.Fatalf("workers=%d: live and derived series differ\n--- live ---\n%s\n--- derived ---\n%s",
				workers, liveBytes, derivedBytes)
		}
		if len(alerts) != len(liveAlerts) {
			t.Fatalf("workers=%d: %d derived alerts, %d live", workers, len(alerts), len(liveAlerts))
		}
		for i := range alerts {
			if alerts[i] != liveAlerts[i] {
				t.Fatalf("workers=%d: alert %d differs: live %+v derived %+v",
					workers, i, liveAlerts[i], alerts[i])
			}
		}
		if first == nil {
			first = liveBytes
		} else if !bytes.Equal(first, liveBytes) {
			t.Fatalf("workers=%d: series differ from Workers=1", workers)
		}
	}

	golden := filepath.Join("testdata", "chaos_series.golden")
	if *update {
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("chaos series drifted from %s (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s",
			golden, first, want)
	}
}

// TestAlertEventsInStream checks the live alert events: fired events anchor
// to an event of their breaching window, resolves anchor to their fire, and
// the stream still validates end to end (Seq dense, causes acausal-free) —
// surfer-analyze accepts it.
func TestAlertEventsInStream(t *testing.T) {
	_, events, _ := chaosRun(t, 1)
	fired := make(map[string]int) // name → seq
	sawFire, sawResolve := false, false
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindAlertFired:
			sawFire = true
			if ev.Cause != trace.None {
				c := events[ev.Cause]
				if c.Time >= ev.Time {
					t.Fatalf("alert %q cause %d at t=%g, not inside the window ending %g",
						ev.Name, ev.Cause, c.Time, ev.Time)
				}
			}
			fired[ev.Name] = ev.Seq
		case trace.KindAlertResolved:
			sawResolve = true
			fseq, ok := fired[ev.Name]
			if !ok {
				t.Fatalf("resolve %q without a fire", ev.Name)
			}
			if ev.Cause != fseq {
				t.Fatalf("resolve %q cause %d, want its fire %d", ev.Name, ev.Cause, fseq)
			}
			delete(fired, ev.Name)
		}
	}
	if !sawFire || !sawResolve {
		t.Fatalf("chaos run fired=%v resolved=%v, want both (tune the rules)", sawFire, sawResolve)
	}
	if _, err := analyze.Analyze(events, chaosTopo()); err != nil {
		t.Fatalf("analyzer rejects a stream with alert events: %v", err)
	}
}

// TestLinkBytesIntegralMatchesAnalyze: summing a link's link-bytes windows
// must reproduce exactly the per-link and per-level byte totals the analyze
// link report computes from the same trace — for every worker count.
func TestLinkBytesIntegralMatchesAnalyze(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		_, events, _ := chaosRun(t, workers)
		set, _, err := metrics.FromEvents(events, metrics.Config{Window: chaosWindow, Topo: chaosTopo()})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := analyze.Analyze(events, chaosTopo())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Links == nil {
			t.Fatal("no link report")
		}
		integral := func(name string) float64 {
			s := set.Lookup(name)
			if s == nil {
				return 0
			}
			sum := 0.0
			for _, v := range s.Values {
				sum += v
			}
			return sum
		}
		for _, link := range rep.Links.Hot {
			name := "link-bytes:" + strconv.Itoa(link.Src) + ">" + strconv.Itoa(link.Dst)
			if got := integral(name); got != float64(link.Bytes) {
				t.Fatalf("workers=%d: %s integrates to %g, analyze says %d", workers, name, got, link.Bytes)
			}
		}
		// Per-level totals: group the series by bisection level and compare.
		lvl := cluster.BisectionLevels(chaosTopo())
		for _, ls := range rep.Links.Levels {
			sum := 0.0
			for i := range set.Series {
				name := set.Series[i].Name
				if !strings.HasPrefix(name, "link-bytes:") {
					continue
				}
				var src, dst int
				pair := strings.TrimPrefix(name, "link-bytes:")
				if _, err := fmtSscan(pair, &src, &dst); err != nil {
					t.Fatal(err)
				}
				if lvl[src][dst] != ls.Level {
					continue
				}
				for _, v := range set.Series[i].Values {
					sum += v
				}
			}
			if sum != float64(ls.Bytes) {
				t.Fatalf("workers=%d: level %d integrates to %g, analyze says %d",
					workers, ls.Level, sum, ls.Bytes)
			}
		}
	}
}

// fmtSscan parses "S>D" link labels.
func fmtSscan(pair string, src, dst *int) (int, error) {
	parts := strings.SplitN(pair, ">", 2)
	s, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, err
	}
	d, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, err
	}
	*src, *dst = s, d
	return 2, nil
}

// TestAutoscalePlanUnchangedByRewire: Autoscale consuming metrics.JobWindows
// must still emit the documented plan on the canonical synthetic stream
// (mirrors analyze's policy golden, guarding the rewiring from here).
func TestAutoscalePlanUnchangedByRewire(t *testing.T) {
	rec := trace.NewRecorder()
	win := func(name string, t0, busy float64) {
		b := rec.Emit(trace.Event{Kind: trace.KindJobBegin, Job: name, Cause: trace.None,
			Machine: trace.None, Dst: trace.None, Part: trace.None, Time: t0})
		if busy > 0 {
			rec.Emit(trace.Event{Kind: trace.KindTransfer, Job: name, Cause: b,
				Machine: 0, Dst: 1, Part: trace.None, Bytes: int64(busy * cluster.LinkBandwidth),
				Time: t0, Start: t0, End: t0 + busy})
		}
		rec.Emit(trace.Event{Kind: trace.KindJobEnd, Job: name, Cause: b,
			Machine: trace.None, Dst: trace.None, Part: trace.None, Time: t0 + 1})
	}
	win("w1", 0, 0.9)
	win("w2", 1, 0.9)
	win("w3", 2, 0)
	win("w4", 3, 0)
	topo := cluster.NewT1(2)

	wins := metrics.JobWindows(rec.Events(), topo)
	if len(wins) != 4 {
		t.Fatalf("JobWindows = %d, want 4", len(wins))
	}
	if math.Abs(wins[0].MaxLevel0Util-0.9) > 1e-9 || wins[2].MaxLevel0Util != 0 {
		t.Fatalf("utils = %+v", wins)
	}
	plan, err := analyze.Autoscale(rec.Events(), topo, analyze.AutoscalePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Joins) != 1 || int(plan.Joins[0].Machine) != 2 || plan.Joins[0].At != 2 {
		t.Fatalf("joins = %+v", plan.Joins)
	}
	if len(plan.Drains) != 1 || plan.Drains[0].Machine != 1 || plan.Drains[0].At != 4 {
		t.Fatalf("drains = %+v", plan.Drains)
	}
}
