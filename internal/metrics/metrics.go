// Package metrics is Surfer's windowed time-series layer: it folds the trace
// event stream into fixed virtual-clock windows — per-directed-link and
// per-bisection-level utilization, per-machine NIC queue depth, running
// tasks and inflight bytes, per-tenant slot occupancy and admission wait,
// and retry/migration/checkpoint rates — and evaluates SLO alert rules
// against the sealed windows as they close.
//
// The same Collector serves both sampling paths. Live, it attaches to the
// engine's trace.Recorder as an Emit observer and folds each event the
// moment the serial event loop emits it; offline, FromEvents replays a
// captured surfer-trace-events stream through the identical Observe loop in
// Seq order. Because the two paths execute the same code over the same
// ordered stream, their exported series are byte-identical — for every
// worker count, with or without faults and elastic churn — which is what
// lets the autoscaler, the alert engine and the dashboards all trust one
// set of numbers.
//
// Windowing semantics: window w covers [w·W, (w+1)·W) of virtual time.
// Count-like signals (bytes, rates, waits) are charged wholly to the window
// containing their event's Time, so window sums integrate exactly to the
// stream totals analyze computes. Span signals (utilization, running tasks,
// inflight bytes, slot occupancy) spread their Start..End interval over the
// windows it overlaps and export as time-weighted averages. A window seals
// — and alert rules evaluate — once the stream clock has advanced one full
// window past its end; span contributions arriving later (a long task whose
// end event lands windows after its start) still reach the exported series
// but are invisible to the already-sealed alert evaluation. That lag is the
// deterministic analogue of a real collector's scrape delay.
package metrics

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// sealLagWindows is how many whole windows the stream clock must advance
// past a window's end before it seals. One window of lag lets the span
// signals of short tasks and transfers land before their window is judged.
const sealLagWindows = 1

// Config parameterizes a Collector.
type Config struct {
	// Window is the fixed virtual-clock window length in seconds. Required.
	Window float64
	// Topo, when set, enables the per-bisection-level utilization series and
	// bounds the per-link series to its machines (mirroring the link
	// report's guards, so window sums reconcile with analyze exactly).
	Topo *cluster.Topology
	// Rules, when set, is evaluated at every window seal; breaches emit
	// alert-fired / alert-resolved events (live) and Alert records (always).
	Rules *RuleSet
}

// Collector folds an ordered event stream into windowed series. Create with
// NewCollector, feed with Observe (or Attach to a live Recorder), then call
// Finish exactly once.
type Collector struct {
	cfg     Config
	n       int     // machine count when Topo is set, else 0
	lvl     [][]int // bisection levels when Topo is set
	series  map[string]*series
	keys    []string // series keys in creation order (sorted on demand)
	sorted  bool
	lastSeq []int // per window: Seq of the last event whose Time fell in it
	// queuedAt maps a queued job's spec ID to its job-queued time, for the
	// admission-wait samples.
	queuedAt map[string]float64
	cursor   float64 // monotone max event Time seen
	maxTime  float64 // max Time/End seen: the extent of the series
	sealedTo int     // windows [0, sealedTo) have been sealed
	alerts   []Alert
	states   map[string]*alertState
	emit     func(trace.Event) int // live alert emission; nil offline
	finished bool
}

// NewCollector validates cfg and returns an empty collector.
func NewCollector(cfg Config) (*Collector, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("metrics: window must be positive, got %g", cfg.Window)
	}
	if cfg.Rules != nil {
		if err := cfg.Rules.Validate(); err != nil {
			return nil, err
		}
	}
	c := &Collector{
		cfg:      cfg,
		series:   make(map[string]*series),
		queuedAt: make(map[string]float64),
		states:   make(map[string]*alertState),
	}
	if cfg.Topo != nil {
		c.n = cfg.Topo.NumMachines()
		c.lvl = cluster.BisectionLevels(cfg.Topo)
	}
	return c, nil
}

// Attach registers the collector as a live observer on rec: every Emit is
// folded immediately, and alert events are emitted back into the same
// stream with real Seqs and causal edges. Call before the run starts.
func (c *Collector) Attach(rec *trace.Recorder) {
	c.emit = rec.Emit
	rec.Observe(c.Observe)
}

// FromEvents derives the series (and alert records) a live collector with
// the same config would have produced, by replaying a captured stream
// through the identical fold. Alert events already present in the stream
// (from a live run with rules) are skipped by the fold, so deriving from a
// live capture reproduces the live series byte for byte.
func FromEvents(events []trace.Event, cfg Config) (*Set, []Alert, error) {
	c, err := NewCollector(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, ev := range events {
		c.Observe(ev)
	}
	set := c.Finish()
	return set, c.Alerts(), nil
}

// windowOf maps a virtual time to its window index.
func (c *Collector) windowOf(t float64) int {
	if t <= 0 {
		return 0
	}
	return int(t / c.cfg.Window)
}

// spanWindows calls f(window, overlap seconds) for every window the
// interval [lo, hi) overlaps.
func (c *Collector) spanWindows(lo, hi float64, f func(w int, overlap float64)) {
	if hi <= lo {
		return
	}
	if lo < 0 {
		lo = 0
	}
	w := c.windowOf(lo)
	for {
		wlo := float64(w) * c.cfg.Window
		whi := wlo + c.cfg.Window
		olo, ohi := lo, hi
		if olo < wlo {
			olo = wlo
		}
		if ohi > whi {
			ohi = whi
		}
		if ohi > olo {
			f(w, ohi-olo)
		}
		if hi <= whi {
			return
		}
		w++
	}
}

// at returns (creating if needed) the series for key.
func (c *Collector) at(key string, cl class) *series {
	s := c.series[key]
	if s == nil {
		s = &series{class: cl}
		c.series[key] = s
		c.keys = append(c.keys, key)
		c.sorted = false
	}
	return s
}

// addAt charges v to the window containing t (count-like signals).
func (c *Collector) addAt(s *series, t, v float64) {
	w := c.windowOf(t)
	s.grow(w)
	s.acc[w] += v
}

// addSpan spreads rate × overlap over the windows [lo, hi) touches.
func (c *Collector) addSpan(s *series, lo, hi, rate float64) {
	c.spanWindows(lo, hi, func(w int, o float64) {
		s.grow(w)
		s.acc[w] += rate * o
	})
}

// counter applies a step change of delta at time t to a time-weighted
// counter series: the level held since the last change is flushed into the
// windows it spanned, then the level steps.
func (c *Collector) counter(key string, t, delta float64) {
	s := c.at(key, classAvg)
	c.addSpan(s, s.ctrSince, t, s.ctrVal)
	if t > s.ctrSince {
		s.ctrSince = t
	}
	s.ctrVal += delta
}

// flushCounters brings every counter series current to time t, so sealed
// windows carry the level that was held across them even when no step
// change landed nearby. Iterates in sorted key order (each counter touches
// only its own series, but the order is pinned anyway).
func (c *Collector) flushCounters(t float64) {
	for _, key := range c.sortedKeys() {
		s := c.series[key]
		if s.ctrVal != 0 || s.ctrSince > 0 {
			c.addSpan(s, s.ctrSince, t, s.ctrVal)
			if t > s.ctrSince {
				s.ctrSince = t
			}
		}
	}
}

// note records t (and optional span end) against the clock extents, and the
// event's Seq as the window's latest causal anchor.
func (c *Collector) note(ev *trace.Event) {
	if ev.Time > c.maxTime {
		c.maxTime = ev.Time
	}
	if ev.End > c.maxTime {
		c.maxTime = ev.End
	}
	w := c.windowOf(ev.Time)
	for len(c.lastSeq) <= w {
		c.lastSeq = append(c.lastSeq, trace.None)
	}
	c.lastSeq[w] = ev.Seq
}

// linkOK mirrors the link report's machine guards: non-negative IDs, and in
// range of the topology when one is configured.
func (c *Collector) linkOK(src, dst int) bool {
	if src < 0 || dst < 0 {
		return false
	}
	if c.n > 0 && (src >= c.n || dst >= c.n) {
		return false
	}
	return true
}

// Observe folds one event. Events must arrive in Seq order (the Recorder
// guarantees this live; FromEvents replays captures in stream order).
func (c *Collector) Observe(ev trace.Event) {
	if c == nil || c.finished {
		return
	}
	switch ev.Kind {
	case trace.KindAlertFired, trace.KindAlertResolved:
		// Alerts are outputs of this fold, not inputs: skipping them makes
		// deriving from a live capture (which contains them) reproduce the
		// live series exactly, and keeps the rule engine from feeding back.
		return
	}

	switch ev.Kind {
	case trace.KindTransfer, trace.KindPartitionMigrate:
		if c.linkOK(ev.Machine, ev.Dst) {
			link := c.at(fmt.Sprintf("link-util:%d>%d", ev.Machine, ev.Dst), classAvg)
			var level *series
			if c.lvl != nil {
				level = c.at(fmt.Sprintf("level-util:%d", c.lvl[ev.Machine][ev.Dst]), classAvg)
			}
			c.spanWindows(ev.Start, ev.End, func(w int, o float64) {
				link.grow(w)
				link.acc[w] += o
				if level != nil {
					// The level series tracks its hottest directed link per
					// window; link accumulators only grow, so a running max
					// stays correct as later transfers land.
					level.grow(w)
					if link.acc[w] > level.acc[w] {
						level.acc[w] = link.acc[w]
					}
				}
			})
			c.addAt(c.at(fmt.Sprintf("link-bytes:%d>%d", ev.Machine, ev.Dst), classSum), ev.Time, float64(ev.Bytes))
			c.addSpan(c.at(fmt.Sprintf("machine-inflight-bytes:%d", ev.Dst), classAvg), ev.Time, ev.End, float64(ev.Bytes))
		}
		if ev.Machine >= 0 {
			// NIC queue depth: the transfer waited on the source machine's
			// egress from issue until both NICs freed up.
			c.addSpan(c.at(fmt.Sprintf("machine-queue:%d", ev.Machine), classAvg), ev.Time, ev.Start, 1)
		}
		if ev.Kind == trace.KindPartitionMigrate {
			c.addAt(c.at("rate-migrations", classSum), ev.Time, 1)
		}
	case trace.KindTaskEnd:
		if ev.Machine >= 0 {
			c.addSpan(c.at(fmt.Sprintf("machine-tasks:%d", ev.Machine), classAvg), ev.Start, ev.End, 1)
		}
	case trace.KindTransferDrop:
		if ev.Machine >= 0 {
			c.addSpan(c.at(fmt.Sprintf("machine-queue:%d", ev.Machine), classAvg), ev.Time, ev.Start, 1)
		}
		c.addAt(c.at("rate-transfer-drops", classSum), ev.Time, 1)
	case trace.KindTransferRetry:
		c.addAt(c.at("rate-transfer-retries", classSum), ev.Time, 1)
	case trace.KindRetry:
		c.addAt(c.at("rate-retries", classSum), ev.Time, 1)
	case trace.KindSpeculate:
		c.addAt(c.at("rate-speculations", classSum), ev.Time, 1)
	case trace.KindFailure:
		c.addAt(c.at("rate-failures", classSum), ev.Time, 1)
	case trace.KindCheckpoint:
		c.addAt(c.at("rate-checkpoints", classSum), ev.Time, 1)
	case trace.KindRestore:
		c.addAt(c.at("rate-restores", classSum), ev.Time, 1)
	case trace.KindJobQueued:
		c.counter("queue-depth", ev.Time, 1)
		c.queuedAt[ev.Job] = ev.Time
	case trace.KindJobAdmitted:
		c.counter("queue-depth", ev.Time, -1)
		if qt, ok := c.queuedAt[ev.Job]; ok {
			delete(c.queuedAt, ev.Job)
			if ev.Tenant != "" {
				s := c.at("tenant-wait-p99:"+ev.Tenant, classP99)
				s.sample(c.windowOf(ev.Time), ev.Time-qt)
			}
		}
	case trace.KindJobRejected:
		c.counter("queue-depth", ev.Time, -1)
		delete(c.queuedAt, ev.Job)
	case trace.KindStageBegin:
		if ev.Tenant != "" {
			// A run slot is held exactly while a stage runs (the scheduler
			// re-arbitrates slots at every barrier), so slot occupancy is the
			// stage-begin/stage-end bracket.
			c.counter("tenant-slots:"+ev.Tenant, ev.Time, 1)
		}
	case trace.KindStageEnd:
		if ev.Tenant != "" {
			c.counter("tenant-slots:"+ev.Tenant, ev.Time, -1)
		}
	}

	c.note(&ev)
	if ev.Time > c.cursor {
		c.cursor = ev.Time
		c.sealTo(c.cursor)
	}
}

// sealTo seals (and rule-evaluates) every window whose end is at least one
// full seal-lag window behind the stream clock.
func (c *Collector) sealTo(clock float64) {
	flushed := false
	for float64(c.sealedTo+1+sealLagWindows)*c.cfg.Window <= clock {
		if !flushed {
			c.flushCounters(clock)
			flushed = true
		}
		c.seal(c.sealedTo)
		c.sealedTo++
	}
}

// Finish flushes the counters, seals every remaining window, and returns
// the exported series set. Call exactly once; further Observe calls are
// ignored.
func (c *Collector) Finish() *Set {
	if c.finished {
		return nil
	}
	c.flushCounters(c.maxTime)
	nw := 0
	for _, s := range c.series {
		if n := s.windows(); n > nw {
			nw = n
		}
	}
	for c.sealedTo < nw {
		c.seal(c.sealedTo)
		c.sealedTo++
	}
	c.finished = true

	set := &Set{
		Format:  SeriesFormat,
		Version: SeriesVersion,
		Window:  c.cfg.Window,
		Windows: nw,
	}
	for _, key := range c.sortedKeys() {
		set.Series = append(set.Series, Series{
			Name:   key,
			Values: c.series[key].export(nw, c.cfg.Window),
		})
	}
	return set
}

// Alerts returns the alert records in decision order (valid after Finish,
// or at any point during a live run for the windows sealed so far).
func (c *Collector) Alerts() []Alert { return c.alerts }
