package metrics

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/trace"
)

// SLO alert rules. A rule names a series (exactly, or a family via a
// trailing-* prefix pattern), a comparison against a threshold, and how many
// consecutive breaching windows must seal before the alert fires. Rules
// evaluate at window-seal time — deterministically, on the same numbers both
// sampling paths compute — and fire/resolve transitions become alert-fired /
// alert-resolved trace events (live) and Alert records (both paths).

// Rule is one SLO condition, e.g. {"name": "level0-hot", "series":
// "level-util:0", "op": ">", "threshold": 0.9, "for": 3}.
type Rule struct {
	// Name labels the alert in events and records.
	Name string `json:"name"`
	// Series is the series key the rule watches, or a prefix pattern ending
	// in "*" ("tenant-wait-p99:*") that instantiates the rule per matching
	// series.
	Series string `json:"series"`
	// Op is the breach comparison: ">", ">=", "<" or "<=".
	Op string `json:"op"`
	// Threshold is the breach boundary.
	Threshold float64 `json:"threshold"`
	// For is how many consecutive breaching windows fire the alert.
	// Defaults to 1. Resolution needs a single clear window.
	For int `json:"for,omitempty"`
}

// matches reports whether the rule watches series key.
func (r *Rule) matches(key string) bool {
	if strings.HasSuffix(r.Series, "*") {
		return strings.HasPrefix(key, strings.TrimSuffix(r.Series, "*"))
	}
	return key == r.Series
}

// breach reports whether v violates the rule.
func (r *Rule) breach(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Threshold
	case ">=":
		return v >= r.Threshold
	case "<":
		return v < r.Threshold
	case "<=":
		return v <= r.Threshold
	}
	return false
}

// RuleSet is the on-disk rule file: {"rules": [...]}.
type RuleSet struct {
	Rules []Rule `json:"rules"`
}

// Validate checks every rule is well-formed and applies the For default.
func (rs *RuleSet) Validate() error {
	seen := make(map[string]bool)
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if r.Name == "" {
			return fmt.Errorf("metrics: rule %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("metrics: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Series == "" {
			return fmt.Errorf("metrics: rule %q names no series", r.Name)
		}
		switch r.Op {
		case ">", ">=", "<", "<=":
		default:
			return fmt.Errorf("metrics: rule %q has unknown op %q (want >, >=, < or <=)", r.Name, r.Op)
		}
		if r.For <= 0 {
			r.For = 1
		}
	}
	return nil
}

// ParseRules decodes and validates a JSON rule file.
func ParseRules(data []byte) (*RuleSet, error) {
	rs := &RuleSet{}
	if err := json.Unmarshal(data, rs); err != nil {
		return nil, fmt.Errorf("metrics: parsing rules: %w", err)
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	return rs, nil
}

// Alert is one fire/resolve decision, identical between the live and
// trace-derived paths (the live path additionally emits a trace event whose
// Seq interleaves with the stream).
type Alert struct {
	// Rule and Series identify the (rule, series) instance.
	Rule   string `json:"rule"`
	Series string `json:"series"`
	// Window is the sealed window the decision was made at; Time is that
	// window's end.
	Window int     `json:"window"`
	Time   float64 `json:"time"`
	// Resolved distinguishes the resolve record from the fire record.
	Resolved bool `json:"resolved,omitempty"`
	// Value is the window's series value: the breaching value when firing,
	// the first clear value when resolving.
	Value float64 `json:"value"`
	// Cause is the Seq of the last stream event inside the decided window
	// when firing (trace.None when the window was empty or when resolving):
	// the causal anchor the emitted event carries.
	Cause int `json:"cause"`
}

// alertState tracks one (rule, series) instance between seals.
type alertState struct {
	streak   int
	fired    bool
	firedSeq int // live Seq of the fired event, for the resolve edge
}

// tenantOf extracts the tenant from a per-tenant series key, for the
// Tenant field of emitted alert events.
func tenantOf(key string) string {
	if !strings.HasPrefix(key, "tenant-") {
		return ""
	}
	if i := strings.LastIndex(key, ":"); i >= 0 {
		return key[i+1:]
	}
	return ""
}

// seal evaluates every rule against window w. Series are visited in sorted
// key order and rules in file order, so the decision sequence — and the Seq
// of every live-emitted alert event — is deterministic.
func (c *Collector) seal(w int) {
	if c.cfg.Rules == nil || len(c.cfg.Rules.Rules) == 0 {
		return
	}
	keys := c.sortedKeys()
	for i := range c.cfg.Rules.Rules {
		r := &c.cfg.Rules.Rules[i]
		for _, key := range keys {
			if !r.matches(key) {
				continue
			}
			v := c.series[key].value(w, c.cfg.Window)
			id := r.Name + "\x00" + key
			st := c.states[id]
			if st == nil {
				st = &alertState{firedSeq: trace.None}
				c.states[id] = st
			}
			if r.breach(v) {
				st.streak++
				if !st.fired && st.streak >= r.For {
					st.fired = true
					st.firedSeq = c.decide(r, key, w, v, false, trace.None)
				}
			} else {
				st.streak = 0
				if st.fired {
					st.fired = false
					c.decide(r, key, w, v, true, st.firedSeq)
					st.firedSeq = trace.None
				}
			}
		}
	}
}

// decide records one alert transition and, on the live path, emits the
// matching trace event; it returns the emitted Seq (trace.None offline).
func (c *Collector) decide(r *Rule, key string, w int, v float64, resolved bool, firedSeq int) int {
	start := float64(w) * c.cfg.Window
	end := start + c.cfg.Window
	cause := trace.None
	if !resolved && w < len(c.lastSeq) {
		cause = c.lastSeq[w]
	}
	c.alerts = append(c.alerts, Alert{
		Rule: r.Name, Series: key, Window: w, Time: end,
		Resolved: resolved, Value: v, Cause: cause,
	})
	if c.emit == nil {
		return trace.None
	}
	kind := trace.KindAlertFired
	evCause := cause
	if resolved {
		kind = trace.KindAlertResolved
		evCause = firedSeq
	}
	return c.emit(trace.Event{
		Kind: kind, Name: r.Name + "@" + key, Tenant: tenantOf(key),
		Cause: evCause, Machine: trace.None, Dst: trace.None, Part: trace.None,
		Time: end, Start: start, End: end,
	})
}
