package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteSet writes the series set as indented-but-stable JSON: a fixed
// header, then one series per line. Output is byte-deterministic (series
// sorted, Go's shortest-round-trip float encoding), which is what the
// live-vs-derived identity gates compare.
func WriteSet(w io.Writer, s *Set) error {
	hdr, err := json.Marshal(struct {
		Format  string  `json:"format"`
		Version int     `json:"version"`
		Window  float64 `json:"window"`
		Windows int     `json:"windows"`
	}{s.Format, s.Version, s.Window, s.Windows})
	if err != nil {
		return err
	}
	head := strings.TrimSuffix(string(hdr), "}")
	if _, err := io.WriteString(w, head+`,"series":[`+"\n"); err != nil {
		return err
	}
	for i := range s.Series {
		line, err := json.Marshal(&s.Series[i])
		if err != nil {
			return err
		}
		sep := ","
		if i == len(s.Series)-1 {
			sep = ""
		}
		if _, err := w.Write(append(line, []byte(sep+"\n")...)); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "]}\n")
	return err
}

// ReadSet parses a series file written by WriteSet.
func ReadSet(r io.Reader) (*Set, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := &Set{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("metrics: parsing series file: %w", err)
	}
	if s.Format != SeriesFormat {
		return nil, fmt.Errorf("metrics: format %q, want %q", s.Format, SeriesFormat)
	}
	if s.Version != SeriesVersion {
		return nil, fmt.Errorf("metrics: version %d, want %d", s.Version, SeriesVersion)
	}
	return s, nil
}

// WriteCSV writes the set as a window-per-row table: window index, window
// start time, then one column per series.
func WriteCSV(w io.Writer, s *Set) error {
	cols := make([]string, 0, 2+len(s.Series))
	cols = append(cols, "window", "start")
	for i := range s.Series {
		cols = append(cols, s.Series[i].Name)
	}
	if _, err := io.WriteString(w, strings.Join(cols, ",")+"\n"); err != nil {
		return err
	}
	for wi := 0; wi < s.Windows; wi++ {
		row := make([]string, 0, len(cols))
		row = append(row, fmt.Sprintf("%d", wi), formatFloat(float64(wi)*s.Window))
		for i := range s.Series {
			row = append(row, formatFloat(s.Series[i].Values[wi]))
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// WriteProm writes the set in Prometheus text exposition format: the
// last-window value of every series as a gauge and the whole-run sum as a
// counter-style total, labeled by series name. This is the bridge for the
// wall-clock bench path — scrape-friendly output, same numbers as the
// deterministic exports.
func WriteProm(w io.Writer, s *Set) error {
	if _, err := io.WriteString(w,
		"# HELP surfer_series_last Last-window value of a surfer metrics series.\n"+
			"# TYPE surfer_series_last gauge\n"); err != nil {
		return err
	}
	for i := range s.Series {
		last := 0.0
		if n := len(s.Series[i].Values); n > 0 {
			last = s.Series[i].Values[n-1]
		}
		if _, err := fmt.Fprintf(w, "surfer_series_last{name=%q} %s\n",
			s.Series[i].Name, formatFloat(last)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w,
		"# HELP surfer_series_sum Sum of a surfer metrics series over all windows.\n"+
			"# TYPE surfer_series_sum gauge\n"); err != nil {
		return err
	}
	for i := range s.Series {
		sum := 0.0
		for _, v := range s.Series[i].Values {
			sum += v
		}
		if _, err := fmt.Fprintf(w, "surfer_series_sum{name=%q} %s\n",
			s.Series[i].Name, formatFloat(sum)); err != nil {
			return err
		}
	}
	return nil
}

// sparkRunes is the eight-level bar ramp of Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width bar string, resampling by
// taking the maximum within each column's bucket and scaling to the series
// maximum (an all-zero series renders as all-minimum bars).
func Sparkline(values []float64, width int) string {
	if width <= 0 || len(values) == 0 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for c := 0; c < width; c++ {
		lo := c * len(values) / width
		hi := (c + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		bucket := 0.0
		for _, v := range values[lo:hi] {
			if v > bucket {
				bucket = v
			}
		}
		idx := 0
		if max > 0 {
			idx = int(bucket / max * float64(len(sparkRunes)-1))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		out[c] = sparkRunes[idx]
	}
	return string(out)
}
