package metrics

import (
	"repro/internal/cluster"
	"repro/internal/trace"
)

// Job windows: the per-engine-job aggregation the autoscaler consumes (one
// window per job in stream order — per iteration for propagation runs),
// distinct from the Collector's fixed-width windows. Factored here so the
// autoscale policy and the dashboards observe the same numbers through the
// same fold.

// JobWindow is one engine job's level-0 utilization summary.
type JobWindow struct {
	// Job is the engine job name (its KindJobBegin's Job field).
	Job string
	// Start / End bracket the job; only completed jobs with positive span
	// are reported (an unfinished job carries no signal).
	Start, End float64
	// MaxLevel0Util is the hottest level-0 directed link's busy fraction of
	// the window: transfer and migration busy seconds ÷ window span,
	// maximized over the links crossing the topology's top-level bisection.
	MaxLevel0Util float64
}

// JobWindows folds a stream into per-job level-0 utilization windows.
// Transfers and migrations are charged to the window of their enclosing job
// (concurrent jobs each accumulate their own traffic); machine pairs outside
// the topology or below level 0 are ignored, mirroring the link report.
func JobWindows(events []trace.Event, topo *cluster.Topology) []JobWindow {
	n := topo.NumMachines()
	lvl := cluster.BisectionLevels(topo)

	type window struct {
		job        string
		start, end float64
		busy       map[[2]int]float64
	}
	var wins []*window
	open := make(map[string]*window) // job name → its open window
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case trace.KindJobBegin:
			w := &window{job: ev.Job, start: ev.Time, busy: make(map[[2]int]float64)}
			wins = append(wins, w)
			open[ev.Job] = w
		case trace.KindJobEnd:
			if w := open[ev.Job]; w != nil {
				w.end = ev.Time
				delete(open, ev.Job)
			}
		case trace.KindTransfer, trace.KindPartitionMigrate:
			if ev.Machine < 0 || ev.Dst < 0 || ev.Machine >= n || ev.Dst >= n {
				continue
			}
			if lvl[ev.Machine][ev.Dst] != 0 {
				continue
			}
			if w := open[ev.Job]; w != nil {
				w.busy[[2]int{ev.Machine, ev.Dst}] += ev.End - ev.Start
			}
		}
	}

	var out []JobWindow
	for _, w := range wins {
		if w.end <= w.start {
			continue // unfinished or instantaneous window: no signal
		}
		span := w.end - w.start
		maxUtil := 0.0
		for _, busy := range w.busy {
			// A max over map values is order-independent, so ranging the map
			// is safe here.
			if u := busy / span; u > maxUtil {
				maxUtil = u
			}
		}
		out = append(out, JobWindow{Job: w.job, Start: w.start, End: w.end, MaxLevel0Util: maxUtil})
	}
	return out
}
