package scheduler

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/storage"
)

// computeJob returns a JobFunc running one task of the given duration on
// machine 0.
func computeJob(seconds float64) JobFunc {
	return func(r *engine.Runner) (engine.Metrics, error) {
		return r.Run(&engine.Job{Stages: []*engine.Stage{{
			Tasks: []*engine.Task{{Machine: 0, Compute: seconds}},
		}}})
	}
}

func TestFIFOOrder(t *testing.T) {
	s := New(Config{Topo: cluster.NewT1(2), Policy: FIFO})
	for i, d := range []float64{1, 2, 3} {
		s.Submit(Request{Name: string(rune('a' + i)), User: "u", Run: computeJob(d)})
	}
	s.RunAll()
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	names := []string{"a", "b", "c"}
	var prevFinish float64
	for i, rec := range recs {
		if rec.Name != names[i] {
			t.Fatalf("order = %q at %d", rec.Name, i)
		}
		if rec.StartedAt < prevFinish {
			t.Fatal("jobs overlapped")
		}
		prevFinish = rec.FinishedAt
	}
	// Third job waited for the first two: wait = 3s.
	if math.Abs(recs[2].WaitSeconds()-3) > 1e-9 {
		t.Fatalf("job c waited %g, want 3", recs[2].WaitSeconds())
	}
}

func TestFairSharesAcrossUsers(t *testing.T) {
	s := New(Config{Topo: cluster.NewT1(2), Policy: Fair})
	// Alice floods the queue, then Bob submits one job. Under Fair, after
	// Alice's first job runs, Bob (served 0) goes next.
	for i := 0; i < 3; i++ {
		s.Submit(Request{Name: "alice-job", User: "alice", Run: computeJob(2)})
	}
	s.Submit(Request{Name: "bob-job", User: "bob", Run: computeJob(2)})
	s.RunAll()
	recs := s.Records()
	if recs[0].User != "alice" {
		t.Fatalf("first job user %q", recs[0].User)
	}
	if recs[1].User != "bob" {
		t.Fatalf("fair policy did not prioritize bob; order: %v", []string{recs[0].User, recs[1].User, recs[2].User, recs[3].User})
	}
	svc := s.UserService()
	if math.Abs(svc["alice"]-6) > 1e-9 || math.Abs(svc["bob"]-2) > 1e-9 {
		t.Fatalf("service = %v", svc)
	}
}

func TestManagerElectionRotates(t *testing.T) {
	s := New(Config{Topo: cluster.NewT1(3), Policy: FIFO})
	for i := 0; i < 6; i++ {
		s.Submit(Request{Name: "j", User: "u", Run: computeJob(0.1)})
	}
	s.RunAll()
	seen := map[cluster.MachineID]int{}
	for _, rec := range s.Records() {
		seen[rec.Manager]++
	}
	if len(seen) != 3 {
		t.Fatalf("managers used: %v, want all 3 machines", seen)
	}
	for m, c := range seen {
		if c != 2 {
			t.Fatalf("machine %d elected %d times, want 2", m, c)
		}
	}
}

func TestMembershipAfterFailure(t *testing.T) {
	topo := cluster.NewT1(3)
	pl := &partition.Placement{MachineOf: []cluster.MachineID{0, 1, 2}}
	reps := storage.PlaceReplicas(pl, topo, 1)
	s := New(Config{
		Topo: topo, Replicas: reps, Policy: FIFO,
		Failures: []engine.Failure{{Machine: 1, At: 0.5}},
	})
	if got := len(s.Membership()); got != 3 {
		t.Fatalf("initial membership = %d", got)
	}
	// A job long enough for the failure to fire.
	s.Submit(Request{Name: "j", User: "u", Run: func(r *engine.Runner) (engine.Metrics, error) {
		return r.Run(&engine.Job{Stages: []*engine.Stage{{
			Tasks: []*engine.Task{
				{Part: 0, Machine: 0, Compute: 2},
				{Part: 1, Machine: 1, Compute: 2},
			},
		}}})
	}})
	s.RunAll()
	live := s.Membership()
	if len(live) != 2 {
		t.Fatalf("membership after failure = %d, want 2", len(live))
	}
	for _, m := range live {
		if m == 1 {
			t.Fatal("dead machine still a member")
		}
	}
	// Manager election skips the dead machine afterwards.
	for i := 0; i < 4; i++ {
		s.Submit(Request{Name: "k", User: "u", Run: computeJob(0.1)})
	}
	s.RunAll()
	for _, rec := range s.Records()[1:] {
		if rec.Manager == 1 {
			t.Fatal("dead machine elected as manager")
		}
	}
}

func TestJobErrorRecorded(t *testing.T) {
	s := New(Config{Topo: cluster.NewT1(1)})
	boom := errors.New("boom")
	s.Submit(Request{Name: "bad", User: "u", Run: func(r *engine.Runner) (engine.Metrics, error) {
		return engine.Metrics{}, boom
	}})
	s.RunAll()
	recs := s.Records()
	if len(recs) != 1 || !errors.Is(recs[0].Err, boom) {
		t.Fatalf("error not recorded: %+v", recs)
	}
}

func TestSubmitDuringRun(t *testing.T) {
	s := New(Config{Topo: cluster.NewT1(1)})
	s.Submit(Request{Name: "outer", User: "u", Run: func(r *engine.Runner) (engine.Metrics, error) {
		s.Submit(Request{Name: "inner", User: "u", Run: computeJob(1)})
		return computeJob(1)(r)
	}})
	s.RunAll()
	if len(s.Records()) != 2 {
		t.Fatalf("records = %d, want 2 (nested submission ran)", len(s.Records()))
	}
}

func TestSubmitWithoutBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Topo: cluster.NewT1(1)}).Submit(Request{Name: "nil"})
}

func TestRunnerAccessor(t *testing.T) {
	s := New(Config{Topo: cluster.NewT1(2)})
	if s.Runner() == nil || s.Runner().NumMachines() != 2 {
		t.Fatal("runner accessor broken")
	}
	if s.Pending() != 0 {
		t.Fatal("fresh scheduler has pending jobs")
	}
	if s.RunOne() {
		t.Fatal("RunOne on empty queue returned true")
	}
}

func TestPolicyStrings(t *testing.T) {
	if FIFO.String() != "fifo" || Fair.String() != "fair" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must stringify")
	}
}

func TestFairTieBreaksBySubmission(t *testing.T) {
	s := New(Config{Topo: cluster.NewT1(1), Policy: Fair})
	// Both users unserved: submission order decides.
	s.Submit(Request{Name: "first", User: "b", Run: computeJob(1)})
	s.Submit(Request{Name: "second", User: "a", Run: computeJob(1)})
	s.RunAll()
	if s.Records()[0].Name != "first" {
		t.Fatalf("tie not broken by submission order: %q first", s.Records()[0].Name)
	}
}
