// Package scheduler implements the top box of Surfer's architecture
// (Figure 1, §3): the job scheduler that maintains cluster membership and
// coordinates resource scheduling across jobs. For every job it elects a
// live machine as the job manager (Appendix B, Step 2: "the job scheduler
// selects a machine as the job manager"), dispatches the job, and records
// queueing and execution statistics.
//
// Jobs run in virtual time on a shared engine.Runner, one at a time (the
// cluster is the resource). The ordering policy decides which queued job
// runs next: FIFO for simple deployments, or fair sharing across users in
// the spirit of Quincy [11], picking the job whose user has received the
// least cluster time so far.
package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Policy orders the pending job queue.
type Policy int

const (
	// FIFO runs jobs in submission order.
	FIFO Policy = iota
	// Fair runs the job of the least-served user first (ties by
	// submission order).
	Fair
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Fair:
		return "fair"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// JobFunc is the body of a job: it receives the runner and performs its
// stages (typically via propagation or mapreduce helpers).
type JobFunc func(r *engine.Runner) (engine.Metrics, error)

// Request is a job submission.
type Request struct {
	Name string
	User string
	Run  JobFunc
}

// Record is the scheduler's account of one executed job.
type Record struct {
	Name string
	User string
	// Manager is the machine elected as this job's manager.
	Manager cluster.MachineID
	// SubmittedAt / StartedAt / FinishedAt are virtual times.
	SubmittedAt float64
	StartedAt   float64
	FinishedAt  float64
	Metrics     engine.Metrics
	Err         error
}

// WaitSeconds is how long the job queued before starting.
func (rec Record) WaitSeconds() float64 { return rec.StartedAt - rec.SubmittedAt }

// Config configures a Scheduler.
type Config struct {
	Topo     *cluster.Topology
	Replicas *storage.Replicas
	Failures []engine.Failure
	Policy   Policy
	// SlotsPerMachine is forwarded to the engine.
	SlotsPerMachine int
	// Workers is forwarded to the engine's compute worker pool
	// (0 = GOMAXPROCS, 1 = serial; results identical either way).
	Workers int
	// Trace is forwarded to the engine: all jobs the scheduler runs emit
	// their structured events into this recorder. Nil disables tracing.
	Trace *trace.Recorder
	// Faults, Retry and Speculation are forwarded to the engine's expanded
	// fault model (transient link faults, dropped-transfer backoff, backup
	// tasks for stragglers).
	Faults      *fault.Schedule
	Retry       fault.RetryPolicy
	Speculation fault.SpeculationPolicy
}

// Scheduler coordinates jobs over one shared simulated cluster.
type Scheduler struct {
	cfg    Config
	runner *engine.Runner
	// pending jobs in submission order.
	pending []pendingJob
	records []Record
	// served tracks cluster seconds consumed per user (for Fair).
	served map[string]float64
	// managerCursor rotates job-manager election over live machines.
	managerCursor int
	submitSeq     int
}

type pendingJob struct {
	req         Request
	submittedAt float64
	seq         int
}

// New creates a scheduler over a fresh runner.
func New(cfg Config) *Scheduler {
	return &Scheduler{
		cfg: cfg,
		runner: engine.New(engine.Config{
			Topo:            cfg.Topo,
			Replicas:        cfg.Replicas,
			Failures:        cfg.Failures,
			SlotsPerMachine: cfg.SlotsPerMachine,
			Workers:         cfg.Workers,
			Trace:           cfg.Trace,
			Faults:          cfg.Faults,
			Retry:           cfg.Retry,
			Speculation:     cfg.Speculation,
		}),
		served: make(map[string]float64),
	}
}

// Runner exposes the shared runner (for workload helpers that need it).
func (s *Scheduler) Runner() *engine.Runner { return s.runner }

// Submit queues a job at the current virtual time. The submission itself is
// traced (KindJobQueued), so the gap to the job's begin event — scheduler
// queueing delay — is visible in analysis.
func (s *Scheduler) Submit(req Request) {
	if req.Run == nil {
		panic("scheduler: job without a body")
	}
	s.cfg.Trace.Emit(trace.Event{Kind: trace.KindJobQueued, Job: req.Name,
		Cause: trace.None, Machine: trace.None, Dst: trace.None, Part: trace.None,
		Time: s.runner.Clock()})
	s.pending = append(s.pending, pendingJob{
		req:         req,
		submittedAt: s.runner.Clock(),
		seq:         s.submitSeq,
	})
	s.submitSeq++
}

// Pending reports the number of queued jobs.
func (s *Scheduler) Pending() int { return len(s.pending) }

// Records returns the completed job records in execution order.
func (s *Scheduler) Records() []Record {
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Membership reports the live machines, as tracked through the engine's
// failure handling.
func (s *Scheduler) Membership() []cluster.MachineID {
	var live []cluster.MachineID
	for i := 0; i < s.cfg.Topo.NumMachines(); i++ {
		m := cluster.MachineID(i)
		if !s.runner.IsDead(m) {
			live = append(live, m)
		}
	}
	return live
}

// electManager picks the next job manager round-robin over live machines.
func (s *Scheduler) electManager() (cluster.MachineID, error) {
	live := s.Membership()
	if len(live) == 0 {
		return 0, fmt.Errorf("scheduler: no live machines")
	}
	m := live[s.managerCursor%len(live)]
	s.managerCursor++
	return m, nil
}

// next removes and returns the job the policy schedules next.
func (s *Scheduler) next() pendingJob {
	idx := 0
	switch s.cfg.Policy {
	case Fair:
		// Least-served user first; within a user, submission order.
		sort.SliceStable(s.pending, func(i, j int) bool {
			si, sj := s.served[s.pending[i].req.User], s.served[s.pending[j].req.User]
			if si != sj {
				return si < sj
			}
			return s.pending[i].seq < s.pending[j].seq
		})
	default:
		sort.SliceStable(s.pending, func(i, j int) bool {
			return s.pending[i].seq < s.pending[j].seq
		})
	}
	job := s.pending[idx]
	s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
	return job
}

// RunOne executes the next scheduled job; it reports false when the queue
// is empty.
func (s *Scheduler) RunOne() bool {
	if len(s.pending) == 0 {
		return false
	}
	job := s.next()
	manager, err := s.electManager()
	rec := Record{
		Name:        job.req.Name,
		User:        job.req.User,
		Manager:     manager,
		SubmittedAt: job.submittedAt,
		StartedAt:   s.runner.Clock(),
	}
	if err != nil {
		rec.Err = err
		rec.FinishedAt = s.runner.Clock()
		s.records = append(s.records, rec)
		return true
	}
	m, err := job.req.Run(s.runner)
	rec.Metrics = m
	rec.Err = err
	rec.FinishedAt = s.runner.Clock()
	s.served[job.req.User] += rec.FinishedAt - rec.StartedAt
	s.records = append(s.records, rec)
	return true
}

// RunAll drains the queue, including jobs submitted by earlier jobs.
func (s *Scheduler) RunAll() {
	for s.RunOne() {
	}
}

// UserService reports the cluster seconds consumed per user so far.
func (s *Scheduler) UserService() map[string]float64 {
	out := make(map[string]float64, len(s.served))
	for u, t := range s.served {
		out[u] = t
	}
	return out
}
