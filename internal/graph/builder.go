package graph

import "sort"

// Builder accumulates directed edges and produces an immutable Graph.
// It tolerates unsorted and duplicate input; Build sorts each adjacency list
// and (optionally) removes duplicates.
type Builder struct {
	n       int
	srcs    []VertexID
	dsts    []VertexID
	dedup   bool
	noLoops bool
}

// NewBuilder creates a builder for a graph with n vertices. Duplicate edges
// are removed by default; self-loops are kept.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, dedup: true}
}

// KeepDuplicates configures Build to keep parallel edges.
func (b *Builder) KeepDuplicates() *Builder { b.dedup = false; return b }

// DropSelfLoops configures Build to drop edges u->u.
func (b *Builder) DropSelfLoops() *Builder { b.noLoops = true; return b }

// AddEdge records the directed edge u->v. It panics if either endpoint is
// out of range.
func (b *Builder) AddEdge(u, v VertexID) {
	if int(u) >= b.n || int(v) >= b.n {
		panic("graph: edge endpoint out of range")
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
}

// NumPendingEdges reports how many edges have been added so far (before any
// dedup that Build may apply).
func (b *Builder) NumPendingEdges() int { return len(b.srcs) }

// Build constructs the Graph. The builder can be reused afterwards, but the
// accumulated edges are retained; call Reset to start fresh.
func (b *Builder) Build() *Graph {
	// Counting sort by source to build CSR without a global edge sort.
	counts := make([]int64, b.n+1)
	for _, u := range b.srcs {
		counts[u+1]++
	}
	offsets := make([]int64, b.n+1)
	for i := 1; i <= b.n; i++ {
		offsets[i] = offsets[i-1] + counts[i]
	}
	targets := make([]VertexID, len(b.srcs))
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for i, u := range b.srcs {
		targets[cursor[u]] = b.dsts[i]
		cursor[u]++
	}
	// Sort each adjacency list, then compact in place if deduping.
	outOff := make([]int64, b.n+1)
	w := int64(0)
	for v := 0; v < b.n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		list := targets[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		outOff[v] = w
		var prev VertexID
		first := true
		for _, t := range list {
			if b.noLoops && t == VertexID(v) {
				continue
			}
			if b.dedup && !first && t == prev {
				continue
			}
			targets[w] = t
			w++
			prev, first = t, false
		}
	}
	outOff[b.n] = w
	return &Graph{offsets: outOff, targets: targets[:w]}
}

// Reset discards accumulated edges, keeping capacity.
func (b *Builder) Reset() {
	b.srcs = b.srcs[:0]
	b.dsts = b.dsts[:0]
}

// FromEdges is a convenience constructor building a deduplicated graph from
// an explicit edge list.
func FromEdges(n int, edges [][2]VertexID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
