package graph

import (
	"math/rand"
)

// RMATConfig parameterizes the recursive matrix (R-MAT) generator of
// Chakrabarti, Zhan and Faloutsos, the generator the paper cites [2] for its
// synthetic small-world workloads. Probabilities must sum to ~1.
type RMATConfig struct {
	// Scale is log2 of the number of vertices.
	Scale int
	// EdgeFactor is the average out-degree; Scale=17, EdgeFactor=16 gives
	// ~2M edges.
	EdgeFactor int
	// A, B, C are the recursive quadrant probabilities; D = 1-A-B-C.
	// The classic skewed setting is A=0.57, B=0.19, C=0.19.
	A, B, C float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultRMAT returns the classic skewed R-MAT parameters at the given scale.
func DefaultRMAT(scale, edgeFactor int, seed int64) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, Seed: seed}
}

// RMAT generates a directed graph with 2^Scale vertices and roughly
// EdgeFactor * 2^Scale edges (duplicates and self-loops are removed, so the
// realized count is slightly lower). The degree distribution is power-law,
// matching large social and web graphs.
func RMAT(cfg RMATConfig) *Graph {
	n := 1 << cfg.Scale
	m := n * cfg.EdgeFactor
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder(n).DropSelfLoops()
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, cfg)
		b.AddEdge(u, v)
	}
	return b.Build()
}

func rmatEdge(rng *rand.Rand, cfg RMATConfig) (VertexID, VertexID) {
	var u, v int
	ab := cfg.A + cfg.B
	abc := ab + cfg.C
	for bit := cfg.Scale - 1; bit >= 0; bit-- {
		r := rng.Float64()
		switch {
		case r < cfg.A:
			// top-left quadrant: no bits set
		case r < ab:
			v |= 1 << bit
		case r < abc:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return VertexID(u), VertexID(v)
}

// SmallWorldConfig parameterizes the paper's synthetic graph recipe (§F.1):
// generate Components small graphs with small-world characteristics, then
// rewire a ratio RewireRatio of all edges to random endpoints anywhere in the
// combined graph, stitching the components into one large graph. The paper's
// default rewire ratio p_r is 5%.
type SmallWorldConfig struct {
	// Components is the number of small-world component graphs.
	Components int
	// VerticesPerComponent is the size of each component ring.
	VerticesPerComponent int
	// K is the ring-lattice half-degree: each vertex connects to its K
	// nearest successors around the ring before rewiring.
	K int
	// Beta is the Watts–Strogatz intra-component rewiring probability.
	Beta float64
	// RewireRatio is the fraction of edges redirected to uniformly random
	// vertices of the whole graph, creating the cross-component edges
	// (paper default 0.05).
	RewireRatio float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSmallWorld returns the paper-flavored stitched small-world
// configuration sized to roughly n vertices.
func DefaultSmallWorld(n int, seed int64) SmallWorldConfig {
	comps := 64
	if n < comps*16 {
		comps = 4
	}
	return SmallWorldConfig{
		Components:           comps,
		VerticesPerComponent: n / comps,
		K:                    8,
		Beta:                 0.1,
		RewireRatio:          0.05,
		Seed:                 seed,
	}
}

// SmallWorld generates the stitched small-world graph described by cfg.
// The result is directed: each ring edge yields one directed edge, and the
// generator adds the reverse direction with probability 0.5 to keep the
// graph strongly-connected-ish without doubling every edge.
func SmallWorld(cfg SmallWorldConfig) *Graph {
	n := cfg.Components * cfg.VerticesPerComponent
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder(n).DropSelfLoops()
	for c := 0; c < cfg.Components; c++ {
		base := c * cfg.VerticesPerComponent
		addWattsStrogatz(b, rng, base, cfg.VerticesPerComponent, cfg.K, cfg.Beta, n, cfg.RewireRatio)
	}
	return b.Build()
}

// addWattsStrogatz emits the edges of one component. An edge is first
// a ring-lattice edge, then with probability beta rewired inside the
// component, and independently with probability globalRatio redirected to a
// uniformly random vertex of the whole graph (the stitching step).
func addWattsStrogatz(b *Builder, rng *rand.Rand, base, size, k int, beta float64, total int, globalRatio float64) {
	for i := 0; i < size; i++ {
		for j := 1; j <= k; j++ {
			src := VertexID(base + i)
			dst := VertexID(base + (i+j)%size)
			if rng.Float64() < globalRatio {
				// Stitch: cross-component random edge.
				dst = VertexID(rng.Intn(total))
			} else if rng.Float64() < beta {
				dst = VertexID(base + rng.Intn(size))
			}
			b.AddEdge(src, dst)
			if rng.Float64() < 0.5 {
				b.AddEdge(dst, src)
			}
		}
	}
}

// SocialConfig parameterizes the hybrid social-network generator: a
// stitched small-world base (community structure, like the paper's §F.1
// synthetic recipe) overlaid with a sparse R-MAT layer (power-law hubs,
// like real social graphs such as the MSN snapshot). Communities give graph
// partitioning its locality; hubs give TFL/TC/NR their heavy intermediate
// data.
type SocialConfig struct {
	SmallWorld SmallWorldConfig
	// HubEdgeFactor is the average out-degree of the R-MAT overlay.
	HubEdgeFactor int
	Seed          int64
}

// DefaultSocial sizes the hybrid generator to roughly n vertices (rounded
// down to a power of two for the R-MAT overlay).
func DefaultSocial(n int, seed int64) SocialConfig {
	sw := DefaultSmallWorld(n, seed)
	return SocialConfig{SmallWorld: sw, HubEdgeFactor: 3, Seed: seed}
}

// Social generates the hybrid social graph: the union of a stitched
// small-world graph and an R-MAT overlay on the same vertex set.
func Social(cfg SocialConfig) *Graph {
	base := SmallWorld(cfg.SmallWorld)
	n := base.NumVertices()
	scale := 0
	for (1 << (scale + 1)) <= n {
		scale++
	}
	b := NewBuilder(n).DropSelfLoops()
	base.ForEachEdge(func(u, v VertexID) bool {
		b.AddEdge(u, v)
		return true
	})
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5F5E1))
	rcfg := DefaultRMAT(scale, cfg.HubEdgeFactor, cfg.Seed)
	m := (1 << scale) * cfg.HubEdgeFactor
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, rcfg)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Uniform generates an Erdős–Rényi-style directed graph with n vertices and
// approximately m edges; duplicates and self-loops are removed. Used as an
// unstructured control in partition-quality experiments.
func Uniform(n int, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n).DropSelfLoops()
	for i := 0; i < m; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return b.Build()
}

// Ring generates a directed cycle of n vertices (v -> v+1 mod n). Useful in
// tests: every bisection of a ring cuts exactly two undirected edges.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(VertexID(i), VertexID((i+1)%n))
	}
	return b.Build()
}

// Grid generates a directed 2D grid of rows x cols vertices with edges to the
// right and down neighbor. Grids have predictable cut structure for tests.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	b := NewBuilder(n)
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}
