// Package graph provides the core directed-graph data structures used by
// Surfer: a compact adjacency-list (CSR) representation, an edge-stream
// builder, synthetic graph generators matching the paper's workloads, binary
// serialization, and basic structural statistics.
//
// The on-disk and in-memory format follows the paper (§3): the graph is a set
// of adjacency lists <ID, d, neighbors>, where ID is the vertex ID, d its
// out-degree, and neighbors the IDs of its out-neighbors. Vertices are dense
// integers in [0, NumVertices).
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Vertex IDs are dense: a graph with n vertices
// uses IDs 0..n-1. The 32-bit width comfortably covers the laptop-scale
// graphs this reproduction targets while halving memory traffic versus int64.
type VertexID uint32

// Graph is an immutable directed graph in compressed sparse row form.
// offsets has NumVertices+1 entries; the out-neighbors of vertex v are
// targets[offsets[v]:offsets[v+1]].
//
// The zero value is an empty graph. Construct graphs with a Builder or one of
// the generators; Graph values are safe for concurrent readers.
type Graph struct {
	offsets []int64
	targets []VertexID
}

// NewFromCSR wraps pre-built CSR arrays in a Graph. offsets must be
// non-decreasing with offsets[0]==0 and offsets[len-1]==len(targets);
// it panics otherwise. The caller must not modify the slices afterwards.
func NewFromCSR(offsets []int64, targets []VertexID) *Graph {
	if len(offsets) == 0 || offsets[0] != 0 {
		panic("graph: offsets must start at 0")
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			panic("graph: offsets must be non-decreasing")
		}
	}
	if offsets[len(offsets)-1] != int64(len(targets)) {
		panic("graph: offsets tail must equal len(targets)")
	}
	return &Graph{offsets: offsets, targets: targets}
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int64 {
	return int64(len(g.targets))
}

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-neighbors of v as a shared, read-only slice.
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the directed edge u->v exists. Neighbor lists are
// sorted by Builder.Build, so the lookup is a binary search.
func (g *Graph) HasEdge(u, v VertexID) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// EdgeOffset returns the index into the flat edge array of the first edge
// leaving v. Together with OutDegree it lets callers address per-edge state.
func (g *Graph) EdgeOffset(v VertexID) int64 {
	return g.offsets[v]
}

// Offsets exposes the CSR offset array (NumVertices+1 entries) as a shared,
// read-only slice: the out-neighbors of v are Targets()[Offsets()[v]:
// Offsets()[v+1]]. Hot loops that walk the whole edge array use the flat
// pair directly, skipping the per-vertex Neighbors call. Callers must not
// modify the returned slice.
func (g *Graph) Offsets() []int64 { return g.offsets }

// Targets exposes the flat CSR edge array as a shared, read-only slice. See
// Offsets. Callers must not modify the returned slice.
func (g *Graph) Targets() []VertexID { return g.targets }

// ForEachEdge calls fn for every directed edge (u, v) in vertex order.
// It stops early if fn returns false.
func (g *Graph) ForEachEdge(fn func(u, v VertexID) bool) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if !fn(VertexID(u), v) {
				return
			}
		}
	}
}

// SizeBytes estimates the serialized size of the graph in the adjacency-list
// format <ID, d, neighbors> with 4-byte IDs and degrees. It is the quantity
// ||G|| used by the partition-count rule P = 2^ceil(log2(||G||/r)) (§4.2).
func (g *Graph) SizeBytes() int64 {
	// 4 bytes ID + 4 bytes degree per vertex, 4 bytes per neighbor.
	return int64(g.NumVertices())*8 + g.NumEdges()*4
}

// Reverse returns the transpose graph: an edge u->v becomes v->u. Neighbor
// lists of the result are sorted. This is the reference computation for the
// Reverse Link Graph (RLG) application.
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices()
	inDeg := make([]int64, n+1)
	for _, v := range g.targets {
		inDeg[v+1]++
	}
	offsets := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		offsets[i] = offsets[i-1] + inDeg[i]
	}
	targets := make([]VertexID, len(g.targets))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			targets[cursor[v]] = VertexID(u)
			cursor[v]++
		}
	}
	// Each neighbor list is appended in increasing source order, so the
	// lists are already sorted.
	return &Graph{offsets: offsets, targets: targets}
}

// Undirected returns the symmetric closure of g with self-loops and duplicate
// edges removed: for every edge u->v (u != v), both u->v and v->u appear
// exactly once. Partitioning operates on this view, since cut quality is
// about connectivity regardless of direction.
func (g *Graph) Undirected() *Graph {
	n := g.NumVertices()
	b := NewBuilder(n)
	g.ForEachEdge(func(u, v VertexID) bool {
		if u != v {
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		}
		return true
	})
	return b.Build()
}

// Equal reports whether two graphs have identical vertex counts and
// adjacency lists.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for i := range g.offsets {
		if g.offsets[i] != h.offsets[i] {
			return false
		}
	}
	for i := range g.targets {
		if g.targets[i] != h.targets[i] {
			return false
		}
	}
	return true
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d}", g.NumVertices(), g.NumEdges())
}

// InDegrees computes the in-degree of every vertex in one pass.
func (g *Graph) InDegrees() []int {
	in := make([]int, g.NumVertices())
	for _, v := range g.targets {
		in[v]++
	}
	return in
}

// MaxOutDegree returns the largest out-degree in the graph, or 0 if empty.
func (g *Graph) MaxOutDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}
