package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseEdgeListBasic(t *testing.T) {
	in := `# a comment
0 1
1 2

2 0   # trailing fields are ignored beyond two? no: fields[2] allowed
`
	// The parser only reads the first two fields.
	g, err := ParseEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(2, 0) {
		t.Fatal("missing edge")
	}
}

func TestParseEdgeListMinVertices(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("V = %d, want 10", g.NumVertices())
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 x\n",
		"-1 2\n",
		"0 99999999999999\n",
	}
	for _, in := range cases {
		if _, err := ParseEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := SmallWorld(DefaultSmallWorld(500, 3))
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ParseEdgeList(&buf, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("edge-list round trip changed graph")
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	g := RMAT(DefaultRMAT(7, 3, 9))
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.SaveEdgeList(path); err != nil {
		t.Fatal(err)
	}
	h, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	// Trailing isolated vertices may be trimmed on load; compare edges.
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("E = %d, want %d", h.NumEdges(), g.NumEdges())
	}
	g.ForEachEdge(func(u, v VertexID) bool {
		if !h.HasEdge(u, v) {
			t.Fatalf("missing edge (%d,%d)", u, v)
		}
		return true
	})
}
