package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary format: a little-endian header followed by the CSR arrays.
//
//	magic   uint32  'S','R','F','G'
//	version uint32  1
//	nVerts  uint64
//	nEdges  uint64
//	offsets [nVerts+1]int64
//	targets [nEdges]uint32
//
// This is the adjacency-list storage from §3 flattened into two arrays; the
// per-vertex degree d is offsets[v+1]-offsets[v].
const (
	fileMagic   = uint32('S') | uint32('R')<<8 | uint32('F')<<16 | uint32('G')<<24
	fileVersion = 1
)

// WriteTo serializes the graph to w in the Surfer binary format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if err := put(fileMagic); err != nil {
		return written, err
	}
	if err := put(uint32(fileVersion)); err != nil {
		return written, err
	}
	if err := put(uint64(g.NumVertices())); err != nil {
		return written, err
	}
	if err := put(uint64(g.NumEdges())); err != nil {
		return written, err
	}
	if err := put(g.offsets); err != nil {
		return written, err
	}
	if err := put(g.targets); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadFrom deserializes a graph written by WriteTo.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("graph: reading version: %w", err)
	}
	if version != fileVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	var nv, ne uint64
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, fmt.Errorf("graph: reading vertex count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &ne); err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	const maxReasonable = 1 << 31
	if nv > maxReasonable || ne > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes V=%d E=%d", nv, ne)
	}
	// Read the arrays in bounded chunks so a corrupt header declaring a
	// huge graph fails fast at end-of-input instead of allocating the
	// declared size up front.
	offsets, err := readChunked[int64](br, nv+1, "offsets")
	if err != nil {
		return nil, err
	}
	targets, err := readChunked[VertexID](br, ne, "targets")
	if err != nil {
		return nil, err
	}
	if offsets[0] != 0 || offsets[nv] != int64(ne) {
		return nil, fmt.Errorf("graph: corrupt offsets")
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	for i, t := range targets {
		if uint64(t) >= nv {
			return nil, fmt.Errorf("graph: edge target %d at index %d out of range (V=%d)", t, i, nv)
		}
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}

// readChunked reads n little-endian values of type T in slabs, growing the
// result as input actually arrives. A header lying about the element count
// therefore errors out after at most one slab of over-allocation.
func readChunked[T int64 | VertexID](r io.Reader, n uint64, what string) ([]T, error) {
	const slab = 1 << 20
	out := make([]T, 0, min(n, slab))
	for remaining := n; remaining > 0; {
		chunk := remaining
		if chunk > slab {
			chunk = slab
		}
		buf := make([]T, chunk)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		out = append(out, buf...)
		remaining -= chunk
	}
	return out, nil
}

// Save writes the graph to the named file, creating or truncating it.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from the named file.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
