package graph

import (
	"testing"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want [1 2]", got)
	}
	if g.OutDegree(1) != 0 {
		t.Errorf("OutDegree(1) = %d, want 0", g.OutDegree(1))
	}
	if !g.HasEdge(2, 3) || g.HasEdge(3, 2) {
		t.Errorf("HasEdge wrong: HasEdge(2,3)=%v HasEdge(3,2)=%v", g.HasEdge(2, 3), g.HasEdge(3, 2))
	}
}

func TestBuilderSortsNeighbors(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	b.AddEdge(0, 2)
	g := b.Build()
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not strictly sorted: %v", ns)
		}
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	b.AddEdge(0, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("dedup failed: %d edges, want 2", g.NumEdges())
	}
}

func TestBuilderKeepDuplicates(t *testing.T) {
	b := NewBuilder(2).KeepDuplicates()
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("KeepDuplicates dropped edges: %d, want 2", g.NumEdges())
	}
}

func TestBuilderDropSelfLoops(t *testing.T) {
	b := NewBuilder(2).DropSelfLoops()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	g := b.Build()
	if g.NumEdges() != 1 || !g.HasEdge(0, 1) {
		t.Fatalf("self loops not dropped: E=%d", g.NumEdges())
	}
}

func TestBuilderPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range endpoint")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.Reset()
	if g := b.Build(); g.NumEdges() != 0 {
		t.Fatalf("Reset did not clear edges: %d", g.NumEdges())
	}
}

func TestReverseSmall(t *testing.T) {
	g := FromEdges(3, [][2]VertexID{{0, 1}, {0, 2}, {1, 2}})
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 0) || !r.HasEdge(2, 1) {
		t.Fatalf("Reverse missing edges")
	}
	if r.NumEdges() != 3 {
		t.Fatalf("Reverse edge count = %d, want 3", r.NumEdges())
	}
}

func TestReverseTwiceIsIdentity(t *testing.T) {
	g := RMAT(DefaultRMAT(8, 4, 1))
	rr := g.Reverse().Reverse()
	if !g.Equal(rr) {
		t.Fatal("Reverse(Reverse(g)) != g")
	}
}

func TestReversePreservesEdgeCount(t *testing.T) {
	g := SmallWorld(DefaultSmallWorld(1000, 7))
	if g.Reverse().NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed edge count")
	}
}

func TestUndirectedSymmetric(t *testing.T) {
	g := RMAT(DefaultRMAT(7, 4, 2))
	u := g.Undirected()
	u.ForEachEdge(func(a, b VertexID) bool {
		if !u.HasEdge(b, a) {
			t.Fatalf("undirected missing reverse of (%d,%d)", a, b)
		}
		if a == b {
			t.Fatalf("undirected kept self loop at %d", a)
		}
		return true
	})
}

func TestInDegreesMatchReverse(t *testing.T) {
	g := RMAT(DefaultRMAT(7, 3, 3))
	in := g.InDegrees()
	r := g.Reverse()
	for v := 0; v < g.NumVertices(); v++ {
		if in[v] != r.OutDegree(VertexID(v)) {
			t.Fatalf("in-degree mismatch at %d: %d vs %d", v, in[v], r.OutDegree(VertexID(v)))
		}
	}
}

func TestForEachEdgeEarlyStop(t *testing.T) {
	g := Ring(10)
	count := 0
	g.ForEachEdge(func(u, v VertexID) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: visited %d", count)
	}
}

func TestNewFromCSRValidation(t *testing.T) {
	cases := []struct {
		name    string
		offsets []int64
		targets []VertexID
	}{
		{"empty offsets", nil, nil},
		{"nonzero start", []int64{1, 2}, []VertexID{0}},
		{"decreasing", []int64{0, 2, 1}, []VertexID{0}},
		{"tail mismatch", []int64{0, 1}, []VertexID{0, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewFromCSR(tc.offsets, tc.targets)
		})
	}
}

func TestSizeBytes(t *testing.T) {
	g := Ring(10)
	want := int64(10*8 + 10*4)
	if g.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", g.SizeBytes(), want)
	}
}

func TestMaxOutDegree(t *testing.T) {
	g := FromEdges(4, [][2]VertexID{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if g.MaxOutDegree() != 3 {
		t.Fatalf("MaxOutDegree = %d, want 3", g.MaxOutDegree())
	}
}

func TestEqual(t *testing.T) {
	a := Ring(5)
	b := Ring(5)
	c := Ring(6)
	if !a.Equal(b) {
		t.Error("identical rings not Equal")
	}
	if a.Equal(c) {
		t.Error("different rings Equal")
	}
	d := FromEdges(5, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 1}})
	if a.Equal(d) {
		t.Error("different edges Equal")
	}
}
