package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Edge-list text format: one "src dst" pair per line (whitespace separated),
// '#' comments and blank lines ignored — the interchange format of SNAP and
// similar graph repositories, so real datasets can be fed to Surfer
// directly. Vertex IDs are dense non-negative integers; the vertex count is
// one more than the largest ID seen (or the optional explicit count).

// ParseEdgeList reads an edge list from r. If minVertices > 0, the graph
// has at least that many vertices even when trailing IDs never appear.
func ParseEdgeList(r io.Reader, minVertices int) (*Graph, error) {
	type edge struct{ u, v int64 }
	var edges []edge
	maxID := int64(minVertices) - 1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex ID", lineNo)
		}
		const maxVertex = 1 << 31
		if u >= maxVertex || v >= maxVertex {
			return nil, fmt.Errorf("graph: line %d: vertex ID over %d", lineNo, maxVertex)
		}
		edges = append(edges, edge{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Guard against a tiny file naming an astronomically large vertex ID,
	// which would make the builder allocate the whole ID range: real
	// edge lists have vertex counts within a small factor of their edge
	// counts.
	limit := int64(minVertices)
	if cap := 1024 + 256*int64(len(edges)); cap > limit {
		limit = cap
	}
	if maxID >= limit {
		return nil, fmt.Errorf("graph: vertex ID %d implausibly large for %d edges", maxID, len(edges))
	}
	b := NewBuilder(int(maxID + 1))
	for _, e := range edges {
		b.AddEdge(VertexID(e.u), VertexID(e.v))
	}
	return b.Build(), nil
}

// LoadEdgeList reads an edge-list text file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseEdgeList(f, 0)
}

// WriteEdgeList writes the graph as an edge-list with a header comment.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# surfer graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v VertexID) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a text file.
func (g *Graph) SaveEdgeList(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
