package graph

import "testing"

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(DefaultRMAT(10, 8, 42))
	b := RMAT(DefaultRMAT(10, 8, 42))
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
	c := RMAT(DefaultRMAT(10, 8, 43))
	if a.Equal(c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATShape(t *testing.T) {
	cfg := DefaultRMAT(12, 8, 1)
	g := RMAT(cfg)
	if g.NumVertices() != 1<<12 {
		t.Fatalf("V = %d, want %d", g.NumVertices(), 1<<12)
	}
	// Dedup removes some edges, but most should survive.
	want := int64(1<<12) * 8
	if g.NumEdges() < want/2 || g.NumEdges() > want {
		t.Fatalf("E = %d, outside [%d, %d]", g.NumEdges(), want/2, want)
	}
}

func TestRMATPowerLawIsh(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 16, 5))
	// A power-law graph should have a max degree far above the average.
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxOutDegree()) < 5*avg {
		t.Fatalf("max degree %d not skewed vs avg %.1f", g.MaxOutDegree(), avg)
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a := SmallWorld(DefaultSmallWorld(2000, 9))
	b := SmallWorld(DefaultSmallWorld(2000, 9))
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestSmallWorldLocality(t *testing.T) {
	// A stitched small-world graph should keep most edges inside a
	// component: with RewireRatio 5% roughly 95% of edges stay local.
	cfg := SmallWorldConfig{
		Components: 8, VerticesPerComponent: 500,
		K: 6, Beta: 0.1, RewireRatio: 0.05, Seed: 3,
	}
	g := SmallWorld(cfg)
	local, total := 0, 0
	g.ForEachEdge(func(u, v VertexID) bool {
		total++
		if int(u)/cfg.VerticesPerComponent == int(v)/cfg.VerticesPerComponent {
			local++
		}
		return true
	})
	frac := float64(local) / float64(total)
	if frac < 0.85 {
		t.Fatalf("component locality %.2f, want >= 0.85", frac)
	}
	if frac > 0.999 {
		t.Fatalf("component locality %.3f: stitching produced no cross edges", frac)
	}
}

func TestUniformSize(t *testing.T) {
	g := Uniform(1000, 5000, 11)
	if g.NumVertices() != 1000 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() < 4500 || g.NumEdges() > 5000 {
		t.Fatalf("E = %d, want ~5000", g.NumEdges())
	}
}

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.NumEdges() != 5 {
		t.Fatalf("E = %d, want 5", g.NumEdges())
	}
	for i := 0; i < 5; i++ {
		if !g.HasEdge(VertexID(i), VertexID((i+1)%5)) {
			t.Fatalf("missing ring edge %d", i)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("V = %d, want 12", g.NumVertices())
	}
	// 3 rows of 3 right-edges + 2 rows of 4 down-edges = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("E = %d, want 17", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) {
		t.Fatal("grid edges missing")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Ring(7)
	h := g.DegreeHistogram()
	if h[1] != 7 || len(h) != 1 {
		t.Fatalf("histogram = %v, want {1:7}", h)
	}
}

func TestBFSDistancesRing(t *testing.T) {
	g := Ring(6)
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, 4, 5}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdges(3, [][2]VertexID{{0, 1}})
	d := g.BFSDistances(0)
	if d[2] != -1 {
		t.Fatalf("unreachable vertex has dist %d", d[2])
	}
}

func TestEstimateDiameterRing(t *testing.T) {
	g := Ring(10)
	if d := g.EstimateDiameter(10); d != 9 {
		t.Fatalf("ring diameter estimate = %d, want 9", d)
	}
}

func TestCountTriangles(t *testing.T) {
	// Triangle 0-1-2 plus a dangling edge.
	g := FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	all := []bool{true, true, true, true}
	if n := g.CountTrianglesAmong(all); n != 1 {
		t.Fatalf("triangles = %d, want 1", n)
	}
	// Deselect one corner: no triangle.
	some := []bool{true, true, false, true}
	if n := g.CountTrianglesAmong(some); n != 0 {
		t.Fatalf("triangles = %d, want 0", n)
	}
}

func TestCountTrianglesK4(t *testing.T) {
	var edges [][2]VertexID
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]VertexID{VertexID(i), VertexID(j)})
		}
	}
	g := FromEdges(4, edges)
	all := []bool{true, true, true, true}
	if n := g.CountTrianglesAmong(all); n != 4 {
		t.Fatalf("K4 triangles = %d, want 4", n)
	}
}

func TestTwoHopNeighbors(t *testing.T) {
	g := FromEdges(5, [][2]VertexID{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {2, 0}})
	got := g.TwoHopNeighbors(0)
	// 0 -> 1 -> {2,3}; excludes 0 itself even if reachable.
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("TwoHopNeighbors(0) = %v, want [2 3]", got)
	}
}
