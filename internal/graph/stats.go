package graph

import "slices"

// DegreeHistogram returns a map from out-degree to the number of vertices
// with that out-degree. This is the reference computation for the Vertex
// Degree Distribution (VDD) application.
func (g *Graph) DegreeHistogram() map[int]int64 {
	h := make(map[int]int64)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.OutDegree(VertexID(v))]++
	}
	return h
}

// BFSDistances computes shortest-path hop distances from src following out
// edges. Unreachable vertices get -1.
func (g *Graph) BFSDistances(src VertexID) []int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []VertexID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src, i.e. the
// hop count to the farthest reachable vertex.
func (g *Graph) Eccentricity(src VertexID) int {
	ecc := 0
	for _, d := range g.BFSDistances(src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// EstimateDiameter estimates the graph diameter by taking the maximum
// eccentricity over `samples` evenly spaced source vertices. Exact diameter
// computation is quadratic; the estimate is what cascaded propagation needs
// (it only uses the minimum partition diameter as a batching depth, §5.2).
func (g *Graph) EstimateDiameter(samples int) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if samples < 1 {
		samples = 1
	}
	if samples > n {
		samples = n
	}
	step := n / samples
	if step == 0 {
		step = 1
	}
	best := 0
	for s := 0; s < n; s += step {
		if e := g.Eccentricity(VertexID(s)); e > best {
			best = e
		}
	}
	return best
}

// CountTrianglesAmong counts the number of triangles in the subgraph induced
// by the selected vertices, treating edges as undirected. selected[v] marks
// membership. This is the reference computation for the Triangle Counting
// (TC) application, which in the paper runs on a sampled vertex subset.
func (g *Graph) CountTrianglesAmong(selected []bool) int64 {
	und := g.Undirected()
	var count int64
	for u := 0; u < und.NumVertices(); u++ {
		if !selected[u] {
			continue
		}
		nu := und.Neighbors(VertexID(u))
		for _, v := range nu {
			if v <= VertexID(u) || !selected[v] {
				continue
			}
			// Count common neighbors w > v to count each triangle once.
			nv := und.Neighbors(v)
			count += countCommonGreater(nu, nv, v, selected)
		}
	}
	return count
}

// countCommonGreater counts elements present in both sorted lists that are
// greater than floor and selected.
func countCommonGreater(a, b []VertexID, floor VertexID, selected []bool) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor && selected[a[i]] {
				c++
			}
			i++
			j++
		}
	}
	return c
}

// TwoHopNeighbors returns the distinct set of two-hop out-neighbors of v,
// excluding v itself. Reference computation for the Two-hop Friends List
// (TFL) application.
func (g *Graph) TwoHopNeighbors(v VertexID) []VertexID {
	seen := make(map[VertexID]struct{})
	for _, u := range g.Neighbors(v) {
		for _, w := range g.Neighbors(u) {
			if w != v {
				seen[w] = struct{}{}
			}
		}
	}
	out := make([]VertexID, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}
