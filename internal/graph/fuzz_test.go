package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFrom hardens the binary graph decoder against corrupt input: it
// must return an error or a structurally valid graph, never panic or hang.
func FuzzReadFrom(f *testing.F) {
	// Seed corpus: valid graphs and simple corruptions.
	for _, g := range []*Graph{Ring(8), Grid(3, 3), RMAT(DefaultRMAT(5, 2, 1))} {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 10 {
			f.Add(buf.Bytes()[:buf.Len()/2])
		}
	}
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded graph must be internally consistent.
		n := g.NumVertices()
		var edges int64
		for v := 0; v < n; v++ {
			for _, nb := range g.Neighbors(VertexID(v)) {
				if int(nb) >= n {
					t.Fatalf("decoded neighbor %d out of range %d", nb, n)
				}
				edges++
			}
		}
		if edges != g.NumEdges() {
			t.Fatalf("edge count mismatch: %d vs %d", edges, g.NumEdges())
		}
	})
}

// FuzzParseEdgeList hardens the text parser the same way.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n3 4 extra\n")
	f.Add("a b\n")
	f.Add("-1 0\n")
	f.Add("999999999999999999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ParseEdgeList(strings.NewReader(in), 0)
		if err != nil {
			return
		}
		n := g.NumVertices()
		g.ForEachEdge(func(u, v VertexID) bool {
			if int(u) >= n || int(v) >= n {
				t.Fatalf("edge (%d,%d) out of range %d", u, v, n)
			}
			return true
		})
	})
}
