package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRoundTripSmall(t *testing.T) {
	g := FromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {3, 0}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip changed graph")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if h.NumVertices() != 0 || h.NumEdges() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, scalePick uint8) bool {
		scale := 4 + int(scalePick%4)
		g := RMAT(DefaultRMAT(scale, 3, seed))
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		h, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoad(t *testing.T) {
	g := SmallWorld(DefaultSmallWorld(500, 1))
	path := filepath.Join(t.TempDir(), "g.srfg")
	if err := g.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	h, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !g.Equal(h) {
		t.Fatal("save/load changed graph")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadFromRejectsBadMagic(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOTAGRAPHFILE....."))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	g := Ring(100)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 4, 8, 16, 24, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadFrom(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("expected error for truncation at %d", cut)
		}
	}
}

func TestReadFromRejectsCorruptOffsets(t *testing.T) {
	g := Ring(8)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt a byte inside the offsets array (header is 24 bytes).
	raw[24+9] = 0xFF
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for corrupt offsets")
	}
}

func TestWriteToByteCount(t *testing.T) {
	g := Ring(10)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
}

func TestRoundTripFuzzedBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(60)
		b := NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(h) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}
