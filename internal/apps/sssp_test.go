package apps

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/propagation"
)

func TestSSSPPropagationMatchesReference(t *testing.T) {
	f := newFixture(t, 30)
	src := graph.VertexID(17)
	want := ReferenceSSSP(f.g, src)
	app := NewSSSP(src, 100)
	for name, opt := range optLevels {
		res, _, err := app.RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.([]int32)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPMapReduceMatchesReference(t *testing.T) {
	f := newFixture(t, 31)
	src := graph.VertexID(5)
	want := ReferenceSSSP(f.g, src)
	res, _, err := NewSSSP(src, 100).RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	got := res.([]int32)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("MR: dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	// Two disconnected chains: distances from one side must not leak to
	// the other.
	g := graph.FromEdges(6, [][2]graph.VertexID{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	f := fixtureFor(t, g, 1, 32)
	res, _, err := NewSSSP(0, 10).RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.([]int32)
	want := []int32{0, 1, 2, Unreachable, Unreachable, Unreachable}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestSSSPConvergesEarly(t *testing.T) {
	g := graph.Ring(20)
	f := fixtureFor(t, g, 2, 33)
	res, m, err := NewSSSP(0, 1000).RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.([]int32)[19] != 19 {
		t.Fatalf("ring dist[19] = %d, want 19", res.([]int32)[19])
	}
	// Convergence at ~20 iterations (+1 fixpoint check), far below 1000.
	if m.TasksRun > 25*2*f.pg.Part.P {
		t.Fatalf("did not converge early: %d tasks", m.TasksRun)
	}
}
