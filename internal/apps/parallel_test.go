package apps

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// TestAppsParallelDeterminism pins the determinism contract at the
// application level: PageRank (NR), SSSP and CC produce bit-identical
// results and identical engine metrics whether the compute pool runs 1, 2
// or 8 workers, across the paper's topology families.
func TestAppsParallelDeterminism(t *testing.T) {
	g := graph.Social(graph.DefaultSocial(4096, 7))
	pt, sk := partition.RecursiveBisect(g, 3, partition.Options{Seed: 7})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topos := map[string]*cluster.Topology{
		"T1": cluster.NewT1(8),
		"T2": cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1}),
		"T3": cluster.NewT3(8, 7),
	}
	appsUnderTest := map[string]App{
		"PageRank": NewNR(5),
		"SSSP":     NewSSSP(0, 30),
		"CC":       NewCC(30),
	}
	for topoName, topo := range topos {
		pl := partition.SketchPlacement(sk, topo)
		for appName, app := range appsUnderTest {
			t.Run(topoName+"/"+appName, func(t *testing.T) {
				run := func(workers int) (any, engine.Metrics) {
					r := engine.New(engine.Config{Topo: topo, Workers: workers})
					res, m, err := app.RunPropagation(r, pg, pl, propagation.Options{
						LocalPropagation: true, LocalCombination: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res, m
				}
				refRes, refM := run(1)
				for _, workers := range []int{2, 8} {
					gotRes, gotM := run(workers)
					if gotM != refM {
						t.Errorf("workers=%d: metrics %+v, want %+v", workers, gotM, refM)
					}
					if !reflect.DeepEqual(gotRes, refRes) {
						t.Errorf("workers=%d: results diverge from serial run", workers)
					}
				}
			})
		}
	}
}

// TestAppsParallelMapReduceDeterminism covers the MapReduce primitive's
// parallel map/reduce phases the same way.
func TestAppsParallelMapReduceDeterminism(t *testing.T) {
	g := graph.Social(graph.DefaultSocial(2048, 11))
	pt, _ := partition.RecursiveBisect(g, 3, partition.Options{Seed: 11})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT1(8)
	pl := partition.RandomPlacement(pt.P, topo, 11)
	for _, app := range []App{NewNR(3), NewSSSP(0, 10), NewCC(10)} {
		t.Run(app.Name(), func(t *testing.T) {
			run := func(workers int) (any, engine.Metrics) {
				r := engine.New(engine.Config{Topo: topo, Workers: workers})
				res, m, err := app.RunMapReduce(r, pg, pl)
				if err != nil {
					t.Fatal(err)
				}
				return res, m
			}
			refRes, refM := run(1)
			for _, workers := range []int{2, 8} {
				gotRes, gotM := run(workers)
				if gotM != refM {
					t.Errorf("workers=%d: metrics %+v, want %+v", workers, gotM, refM)
				}
				if !reflect.DeepEqual(gotRes, refRes) {
					t.Errorf("workers=%d: results diverge from serial run", workers)
				}
			}
		})
	}
}
