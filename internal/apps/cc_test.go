package apps

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

func TestCCPropagationMatchesReference(t *testing.T) {
	f := newFixture(t, 20)
	want := ReferenceCC(f.g)
	app := NewCC(40)
	for name, opt := range optLevels {
		res, _, err := app.RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.([]uint32)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: label[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestCCMapReduceMatchesReference(t *testing.T) {
	f := newFixture(t, 21)
	want := ReferenceCC(f.g)
	res, _, err := NewCC(40).RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	got := res.([]uint32)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("MR: label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestCCDisconnectedComponents(t *testing.T) {
	// Two separate triangles plus an isolated vertex.
	g := graph.FromEdges(7, [][2]graph.VertexID{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
	})
	want := ReferenceCC(g)
	expected := []uint32{0, 0, 0, 3, 3, 3, 6}
	for v := range expected {
		if want[v] != expected[v] {
			t.Fatalf("reference label[%d] = %d, want %d", v, want[v], expected[v])
		}
	}
}

func TestCCConvergesEarly(t *testing.T) {
	// A small ring converges in about its diameter; a huge MaxIterations
	// budget must not be consumed (RunUntilConverged stops at fixpoint).
	g := graph.Ring(32)
	f := fixtureFor(t, g, 2, 22)
	app := NewCC(1000)
	res, m, err := app.RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range res.([]uint32) {
		if l != 0 {
			t.Fatalf("ring label[%d] = %d, want 0", v, l)
		}
	}
	// Each iteration runs 2 stages x P tasks; 1000 iterations would be
	// 2000*P tasks. Converging in <= 40 iterations keeps it far below.
	if m.TasksRun > 40*2*f.pg.Part.P {
		t.Fatalf("did not converge early: %d tasks", m.TasksRun)
	}
}

// fixtureFor builds a fixture around an explicit graph.
func fixtureFor(t *testing.T, g *graph.Graph, levels int, seed int64) *fixture {
	t.Helper()
	pt, sk := partition.RecursiveBisect(g, levels, partition.Options{Seed: seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT1(4)
	return &fixture{g: g, pg: pg, sk: sk, topo: topo, pl: partition.SketchPlacement(sk, topo)}
}
