package apps

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

type fixture struct {
	g    *graph.Graph
	pg   *storage.PartitionedGraph
	sk   *partition.Sketch
	topo *cluster.Topology
	pl   *partition.Placement
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	g := graph.SmallWorld(graph.DefaultSmallWorld(2000, seed))
	pt, sk := partition.RecursiveBisect(g, 3, partition.Options{Seed: seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT1(4)
	pl := partition.SketchPlacement(sk, topo)
	return &fixture{g: g, pg: pg, sk: sk, topo: topo, pl: pl}
}

func (f *fixture) runner() *engine.Runner {
	return engine.New(engine.Config{Topo: f.topo})
}

var optLevels = map[string]propagation.Options{
	"O1": {},
	"O3": {LocalPropagation: true, LocalCombination: true},
}

// --- NR ---

func TestNRPropagationMatchesReference(t *testing.T) {
	f := newFixture(t, 1)
	want := ReferenceNR(f.g, 3)
	for name, opt := range optLevels {
		res, _, err := NewNR(3).RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.([]float64)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("%s: rank[%d] = %g, want %g", name, v, got[v], want[v])
			}
		}
	}
}

func TestNRMapReduceMatchesReference(t *testing.T) {
	f := newFixture(t, 2)
	want := ReferenceNR(f.g, 3)
	res, _, err := NewNR(3).RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	got := res.([]float64)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %g, want %g", v, got[v], want[v])
		}
	}
}

func TestNRRanksSumToOne(t *testing.T) {
	f := newFixture(t, 3)
	res, _, err := NewNR(2).RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range res.([]float64) {
		sum += r
	}
	// Dangling vertices leak rank mass; small-world graphs have few, so
	// the sum stays near 1.
	if sum < 0.8 || sum > 1.0+1e-9 {
		t.Fatalf("rank sum = %g", sum)
	}
}

// --- RS ---

func TestRSAllVariantsAgree(t *testing.T) {
	f := newFixture(t, 4)
	cfg := DefaultRSConfig()
	want := ReferenceRS(f.g, cfg)
	for name, opt := range optLevels {
		res, _, err := NewRS(cfg).RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.([]uint8)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: adoption[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
	res, _, err := NewRS(cfg).RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	got := res.([]uint8)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("MR: adoption[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestRSAdoptionGrows(t *testing.T) {
	f := newFixture(t, 5)
	cfg := DefaultRSConfig()
	adopted := ReferenceRS(f.g, cfg)
	seeds, final := 0, 0
	for v := range adopted {
		if cfg.seeded(graph.VertexID(v)) {
			seeds++
		}
		if adopted[v] == 1 {
			final++
		}
	}
	if final <= seeds {
		t.Fatalf("adoption did not grow: seeds=%d final=%d", seeds, final)
	}
}

// --- VDD ---

func TestVDDAllVariantsAgree(t *testing.T) {
	f := newFixture(t, 6)
	want := ReferenceVDD(f.g)
	for name, opt := range optLevels {
		res, _, err := NewVDD().RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.(map[int]int64)
		if !histEqual(got, want) {
			t.Fatalf("%s: histogram mismatch", name)
		}
	}
	res, _, err := NewVDD().RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	if !histEqual(res.(map[int]int64), want) {
		t.Fatal("MR histogram mismatch")
	}
}

func histEqual(a, b map[int]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// --- RLG ---

func TestRLGAllVariantsAgree(t *testing.T) {
	f := newFixture(t, 7)
	want := ReferenceRLG(f.g)
	for name, opt := range optLevels {
		res, _, err := NewRLG().RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !listsEqual(res.([][]graph.VertexID), want) {
			t.Fatalf("%s: reversed lists mismatch", name)
		}
	}
	res, _, err := NewRLG().RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	if !listsEqual(res.([][]graph.VertexID), want) {
		t.Fatal("MR reversed lists mismatch")
	}
}

func TestRLGDoubleReverseIsIdentity(t *testing.T) {
	f := newFixture(t, 8)
	lists := ReferenceRLG(f.g)
	b := graph.NewBuilder(f.g.NumVertices())
	for v, ins := range lists {
		for _, u := range ins {
			b.AddEdge(graph.VertexID(v), u) // re-reverse
		}
	}
	if !b.Build().Equal(f.g.Reverse()) {
		t.Fatal("double reverse mismatch")
	}
}

func listsEqual(a, b [][]graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// --- TC ---

func TestTCAllVariantsAgree(t *testing.T) {
	f := newFixture(t, 9)
	// Use a denser sample so some triangles exist at this scale.
	ratio := 2
	want := ReferenceTC(f.g, ratio)
	if want == 0 {
		t.Fatal("fixture has no triangles; pick another seed")
	}
	for name, opt := range optLevels {
		res, _, err := NewTC(ratio).RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.(int64) != want {
			t.Fatalf("%s: triangles = %d, want %d", name, res.(int64), want)
		}
	}
	res, _, err := NewTC(ratio).RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.(int64) != want {
		t.Fatalf("MR: triangles = %d, want %d", res.(int64), want)
	}
}

func TestTCNotAssociative(t *testing.T) {
	p := &tcProgram{}
	if p.Associative() {
		t.Fatal("TC must not be associative")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge on TC must panic")
		}
	}()
	p.Merge(0, nil)
}

// --- TFL ---

func TestTFLAllVariantsAgree(t *testing.T) {
	f := newFixture(t, 10)
	want := ReferenceTFL(f.g, DefaultSelectRatio)
	for name, opt := range optLevels {
		res, _, err := NewTFL(DefaultSelectRatio).RunPropagation(f.runner(), f.pg, f.pl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !listsEqual(res.([][]graph.VertexID), want) {
			t.Fatalf("%s: two-hop lists mismatch", name)
		}
	}
	res, _, err := NewTFL(DefaultSelectRatio).RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	if !listsEqual(res.([][]graph.VertexID), want) {
		t.Fatal("MR two-hop lists mismatch")
	}
}

// --- cross-cutting metric shapes ---

func TestOptimizationsReduceIO(t *testing.T) {
	// O3 (local propagation + combination) must beat O1 on network and
	// disk for every edge-oriented app (§6.3 Tables 2-3).
	f := newFixture(t, 11)
	for _, app := range []App{NewNR(1), NewRLG(), NewTFL(DefaultSelectRatio)} {
		_, m1, err := app.RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, m3, err := app.RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{LocalPropagation: true, LocalCombination: true})
		if err != nil {
			t.Fatal(err)
		}
		if m3.NetworkBytes > m1.NetworkBytes {
			t.Errorf("%s: O3 network %d > O1 %d", app.Name(), m3.NetworkBytes, m1.NetworkBytes)
		}
		if m3.DiskBytes >= m1.DiskBytes {
			t.Errorf("%s: O3 disk %d >= O1 %d", app.Name(), m3.DiskBytes, m1.DiskBytes)
		}
		if m3.ResponseSeconds >= m1.ResponseSeconds {
			t.Errorf("%s: O3 response %.3f >= O1 %.3f", app.Name(), m3.ResponseSeconds, m1.ResponseSeconds)
		}
	}
}

func TestPropagationBeatsMapReduceOnNetwork(t *testing.T) {
	// Figure 7's mechanism: propagation only ships cross-partition
	// values to owner machines; MapReduce hash-shuffles everything.
	f := newFixture(t, 12)
	for _, app := range []App{NewNR(3), NewRLG(), NewTFL(DefaultSelectRatio)} {
		_, mp, err := app.RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{LocalPropagation: true, LocalCombination: true})
		if err != nil {
			t.Fatal(err)
		}
		_, mm, err := app.RunMapReduce(f.runner(), f.pg, f.pl)
		if err != nil {
			t.Fatal(err)
		}
		if mp.NetworkBytes >= mm.NetworkBytes {
			t.Errorf("%s: propagation network %d >= MR %d", app.Name(), mp.NetworkBytes, mm.NetworkBytes)
		}
		if mp.ResponseSeconds >= mm.ResponseSeconds {
			t.Errorf("%s: propagation response %.3f >= MR %.3f", app.Name(), mp.ResponseSeconds, mm.ResponseSeconds)
		}
	}
}

func TestVDDPropagationComparableToMapReduce(t *testing.T) {
	// §6.4: emulating MapReduce with virtual vertices, propagation's VDD
	// performs similarly to MapReduce (no large win either way).
	f := newFixture(t, 13)
	_, mp, err := NewVDD().RunPropagation(f.runner(), f.pg, f.pl, propagation.Options{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	_, mm, err := NewVDD().RunMapReduce(f.runner(), f.pg, f.pl)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mp.ResponseSeconds / mm.ResponseSeconds
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("VDD propagation/MR response ratio = %.2f, want within 3x", ratio)
	}
}

func TestAllRegistry(t *testing.T) {
	apps := All()
	if len(apps) != 6 {
		t.Fatalf("All() returned %d apps", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name()] = true
		if a.Iterations() < 1 {
			t.Errorf("%s: iterations = %d", a.Name(), a.Iterations())
		}
	}
	for _, want := range []string{"VDD", "RS", "NR", "RLG", "TC", "TFL"} {
		if !names[want] {
			t.Errorf("missing app %s", want)
		}
	}
}

func TestSelectedRatio(t *testing.T) {
	n := 100000
	c := 0
	for v := 0; v < n; v++ {
		if Selected(uint32(v), 10) {
			c++
		}
	}
	frac := float64(c) / float64(n)
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("selected fraction = %.3f, want ~0.10", frac)
	}
	if !Selected(5, 1) {
		t.Fatal("ratio 1 must select everything")
	}
}
