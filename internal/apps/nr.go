package apps

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// Damping is the PageRank random-jump factor d.
const Damping = 0.85

// NR is network ranking: iterative PageRank over the graph (Appendix D,
// Algorithm 1). Its access pattern is the canonical propagation workload.
type NR struct {
	iterations int
}

// NewNR creates the network-ranking application with the given iteration
// count.
func NewNR(iterations int) *NR { return &NR{iterations: iterations} }

func (a *NR) Name() string    { return "NR" }
func (a *NR) Iterations() int { return a.iterations }

// nrProgram is the propagation program of Algorithm 1: transfer sends
// rank*d/outdegree along each edge; combine sums the received partial ranks
// and adds the random-jump term.
type nrProgram struct {
	g *graph.Graph
	n float64
}

func (p *nrProgram) Init(graph.VertexID) float64 { return 1 / p.n }

func (p *nrProgram) Transfer(src graph.VertexID, rank float64, dst graph.VertexID, emit propagation.Emit[float64]) {
	emit(dst, rank*Damping/float64(p.g.OutDegree(src)))
}

func (p *nrProgram) Combine(_ graph.VertexID, _ float64, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum + (1-Damping)/p.n
}

func (p *nrProgram) Bytes(float64) int64 { return 8 }

func (p *nrProgram) Associative() bool { return true }

func (p *nrProgram) Merge(_ graph.VertexID, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum
}

// RunPropagation runs the configured number of PageRank iterations and
// returns the final rank vector.
func (a *NR) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	prog := &nrProgram{g: pg.G, n: float64(pg.G.NumVertices())}
	st := propagation.NewState[float64](pg, prog)
	st, m, err := propagation.RunIterations(r, pg, pl, prog, st, opt, a.iterations)
	if err != nil {
		return nil, m, err
	}
	return st.Values, m, nil
}

// nrMR is the MapReduce implementation of Algorithm 2: map computes partial
// ranks per partition into a hash table (one emission per distinct
// destination seen in the partition) and reduce sums them.
type nrMR struct {
	g     *graph.Graph
	ranks []float64
}

func (p *nrMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, float64)) {
	rTable := make(map[graph.VertexID]float64)
	for _, u := range pi.Vertices {
		deg := g.OutDegree(u)
		if deg == 0 {
			continue
		}
		delta := p.ranks[u] * Damping / float64(deg)
		for _, v := range g.Neighbors(u) {
			rTable[v] += delta
		}
	}
	// Emit in vertex order: map iteration order would scramble the value
	// sequence reaching each reducer, and float summation in Reduce is not
	// order-independent — run-to-run results would differ in the last ULP.
	dsts := make([]graph.VertexID, 0, len(rTable))
	for v := range rTable {
		dsts = append(dsts, v)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, v := range dsts {
		emit(v, rTable[v])
	}
}

func (p *nrMR) Reduce(_ graph.VertexID, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum + (1-Damping)/float64(p.g.NumVertices())
}

func (p *nrMR) PairBytes(graph.VertexID, float64) int64 { return 12 }
func (p *nrMR) ResultBytes(float64) int64               { return 12 }

// RunMapReduce runs the configured number of iterations with the MapReduce
// primitive, re-distributing the rank vector between iterations.
func (a *NR) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	n := pg.G.NumVertices()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	var total engine.Metrics
	for it := 0; it < a.iterations; it++ {
		prog := &nrMR{g: pg.G, ranks: ranks}
		res, m, err := mapreduce.Run[graph.VertexID, float64, float64](r, pg, pl, prog, mapreduce.Options{StatePerVertexBytes: 8})
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		next := make([]float64, n)
		jump := (1 - Damping) / float64(n)
		for v := range next {
			next[v] = jump // vertices with no inbound mass
		}
		for v, r := range res {
			next[v] = r
		}
		ranks = next
	}
	return ranks, total, nil
}

// ReferenceNR computes PageRank sequentially with the same semantics as
// both distributed implementations.
func ReferenceNR(g *graph.Graph, iterations int) []float64 {
	n := g.NumVertices()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		next := make([]float64, n)
		jump := (1 - Damping) / float64(n)
		for v := range next {
			next[v] = jump
		}
		for u := 0; u < n; u++ {
			deg := g.OutDegree(graph.VertexID(u))
			if deg == 0 {
				continue
			}
			delta := ranks[u] * Damping / float64(deg)
			for _, v := range g.Neighbors(graph.VertexID(u)) {
				next[v] += delta
			}
		}
		ranks = next
	}
	return ranks
}
