package apps

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// VDD computes the vertex (out-)degree distribution. It is the paper's
// vertex-oriented counter-example: the access pattern does not match
// propagation, so the propagation implementation emulates MapReduce with
// virtual vertices — one virtual vertex per distinct degree — and performs
// about as well as MapReduce (§6.4).
type VDD struct{}

// NewVDD creates the degree-distribution application.
func NewVDD() *VDD { return &VDD{} }

func (a *VDD) Name() string    { return "VDD" }
func (a *VDD) Iterations() int { return 1 }

// vddProgram emits, once per vertex, a count of one to the virtual vertex
// whose ID encodes the vertex's degree (Appendix D: "the virtual vertex ID
// is the same as the value of the degree").
type vddProgram struct {
	g *graph.Graph
}

func (p *vddProgram) Init(graph.VertexID) int64 { return 0 }

// TransferVertex sends along the virtual edge to the degree's virtual
// vertex.
func (p *vddProgram) TransferVertex(v graph.VertexID, _ int64, emit propagation.Emit[int64]) {
	if int(v) >= p.g.NumVertices() {
		return // virtual vertices have no degree
	}
	deg := p.g.OutDegree(v)
	emit(graph.VertexID(p.g.NumVertices()+deg), 1)
}

// Transfer does nothing on real edges: VDD is vertex oriented.
func (p *vddProgram) Transfer(graph.VertexID, int64, graph.VertexID, propagation.Emit[int64]) {}

func (p *vddProgram) Combine(_ graph.VertexID, prev int64, values []int64) int64 {
	sum := prev
	for _, c := range values {
		sum += c
	}
	return sum
}

func (p *vddProgram) Bytes(int64) int64 { return 8 }

func (p *vddProgram) Associative() bool { return true }

func (p *vddProgram) Merge(_ graph.VertexID, values []int64) int64 {
	var sum int64
	for _, c := range values {
		sum += c
	}
	return sum
}

// RunPropagation returns the degree histogram as map[degree]count.
func (a *VDD) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	prog := &vddProgram{g: pg.G}
	opt.VirtualVertices = pg.G.MaxOutDegree() + 1
	st := propagation.NewState[int64](pg, prog)
	st, m, err := propagation.Iterate(r, pg, pl, prog, st, opt)
	if err != nil {
		return nil, m, err
	}
	hist := make(map[int]int64)
	n := pg.G.NumVertices()
	for vid, count := range st.Virtual {
		hist[int(vid)-n] = count
	}
	return hist, m, nil
}

// vddMR is the natural MapReduce implementation: emit (degree, 1), sum.
type vddMR struct{}

func (vddMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(int, int64)) {
	for _, v := range pi.Vertices {
		emit(g.OutDegree(v), 1)
	}
}

func (vddMR) Reduce(_ int, values []int64) int64 {
	var sum int64
	for _, c := range values {
		sum += c
	}
	return sum
}

// CombineValues folds counts map-side (a MapReduce combiner): degree
// counting is associative, so each map task ships one pair per distinct
// degree instead of one per vertex.
func (vddMR) CombineValues(_ int, values []int64) int64 {
	var sum int64
	for _, c := range values {
		sum += c
	}
	return sum
}

func (vddMR) PairBytes(int, int64) int64 { return 12 }
func (vddMR) ResultBytes(int64) int64    { return 12 }

// RunMapReduce returns the degree histogram as map[degree]count.
func (a *VDD) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	res, m, err := mapreduce.Run[int, int64, int64](r, pg, pl, vddMR{}, mapreduce.Options{})
	if err != nil {
		return nil, m, err
	}
	hist := make(map[int]int64, len(res))
	for d, c := range res {
		hist[d] = c
	}
	return hist, m, nil
}

// ReferenceVDD computes the histogram sequentially.
func ReferenceVDD(g *graph.Graph) map[int]int64 {
	return g.DegreeHistogram()
}
