package apps

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// CC computes weakly connected components by iterative label propagation —
// an extension workload beyond the paper's six, exercising the primitive on
// a fixpoint computation: every vertex adopts the minimum label it has seen,
// and labels flow both ways across each edge until nothing changes. (HADI
// [12] and PEGASUS [13], the systems the paper compares against, treat
// connected components as a core operation.)
type CC struct {
	// MaxIterations bounds the label-propagation rounds; the diameter of
	// the graph suffices for convergence.
	MaxIterations int
}

// NewCC creates the connected-components application.
func NewCC(maxIterations int) *CC { return &CC{MaxIterations: maxIterations} }

func (a *CC) Name() string    { return "CC" }
func (a *CC) Iterations() int { return a.MaxIterations }

// ccProgram: the value is the smallest vertex ID known to be in the same
// weak component. Transfer pushes the label along each edge of the
// symmetrized graph; combine keeps the minimum of the previous label and
// the bag, so labels only ever decrease and the fixpoint is the component
// minimum.
type ccProgram struct{}

func (ccProgram) Init(v graph.VertexID) uint32 { return uint32(v) }

func (ccProgram) Transfer(_ graph.VertexID, label uint32, dst graph.VertexID, emit propagation.Emit[uint32]) {
	emit(dst, label)
}

func (ccProgram) Combine(v graph.VertexID, prev uint32, values []uint32) uint32 {
	min := prev
	for _, l := range values {
		if l < min {
			min = l
		}
	}
	return min
}

func (ccProgram) Bytes(uint32) int64 { return 4 }
func (ccProgram) Associative() bool  { return true }
func (ccProgram) Merge(_ graph.VertexID, values []uint32) uint32 {
	min := values[0]
	for _, l := range values[1:] {
		if l < min {
			min = l
		}
	}
	return min
}

// ccDelta measures label changes between iterations, for convergence.
func ccDelta(a, b uint32) float64 {
	if a == b {
		return 0
	}
	return 1
}

// RunPropagation runs label propagation to convergence (or MaxIterations)
// on the symmetrized graph and returns the per-vertex component labels.
//
// Weak connectivity needs labels to flow against edge direction too, so the
// execution runs on the undirected view of the partitioned graph. The
// partitioning is inherited from the directed graph (cut structure is
// direction-blind).
func (a *CC) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	upg, err := undirectedView(pg)
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	prog := ccProgram{}
	st := propagation.NewState[uint32](upg, prog)
	st, m, err := propagation.RunUntilConverged(r, upg, pl, prog, st, opt, a.MaxIterations, ccDelta, 0)
	if err != nil {
		return nil, m, err
	}
	return st.Values, m, nil
}

// undirectedView rebuilds the partition metadata over the symmetric closure
// of the data graph, keeping the same vertex-to-partition assignment.
func undirectedView(pg *storage.PartitionedGraph) (*storage.PartitionedGraph, error) {
	return storage.Build(pg.G.Undirected(), pg.Part)
}

// ccMR is the MapReduce variant of one label-propagation round: map emits
// each vertex's label across its (undirected) edges plus to itself; reduce
// takes the min.
type ccMR struct {
	labels []uint32
}

func (p *ccMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, uint32)) {
	for _, u := range pi.Vertices {
		emit(u, p.labels[u])
		for _, v := range g.Neighbors(u) {
			emit(v, p.labels[u])
		}
	}
}

func (p *ccMR) Reduce(_ graph.VertexID, values []uint32) uint32 {
	min := values[0]
	for _, l := range values[1:] {
		if l < min {
			min = l
		}
	}
	return min
}

func (p *ccMR) PairBytes(graph.VertexID, uint32) int64 { return 8 }
func (p *ccMR) ResultBytes(uint32) int64               { return 8 }

// CombineValues folds labels map-side: min is associative.
func (p *ccMR) CombineValues(_ graph.VertexID, values []uint32) uint32 {
	min := values[0]
	for _, l := range values[1:] {
		if l < min {
			min = l
		}
	}
	return min
}

// RunMapReduce iterates MapReduce label-propagation rounds until the labels
// stop changing (or MaxIterations).
func (a *CC) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	upg, err := undirectedView(pg)
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	n := upg.G.NumVertices()
	labels := make([]uint32, n)
	for v := range labels {
		labels[v] = uint32(v)
	}
	var total engine.Metrics
	for it := 0; it < a.MaxIterations; it++ {
		prog := &ccMR{labels: labels}
		res, m, err := mapreduce.Run[graph.VertexID, uint32, uint32](r, upg, pl, prog, mapreduce.Options{StatePerVertexBytes: 4})
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		changed := false
		next := make([]uint32, n)
		copy(next, labels)
		for v, l := range res {
			if l < next[v] {
				next[v] = l
				changed = true
			}
		}
		labels = next
		if !changed {
			break
		}
	}
	return labels, total, nil
}

// ReferenceCC computes weak components with a union-find.
func ReferenceCC(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g.ForEachEdge(func(u, v graph.VertexID) bool {
		ru, rv := find(int32(u)), find(int32(v))
		if ru != rv {
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
		return true
	})
	// Normalize: label = minimum vertex ID in the component.
	min := make([]uint32, n)
	for i := range min {
		min[i] = uint32(n)
	}
	for v := 0; v < n; v++ {
		r := find(int32(v))
		if uint32(v) < min[r] {
			min[r] = uint32(v)
		}
	}
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = min[find(int32(v))]
	}
	return out
}
