package apps

import (
	"slices"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// RLG reverses every edge of the directed graph and stores the result as
// adjacency lists (Appendix D): vertex v's output is the sorted list of its
// in-neighbors.
type RLG struct{}

// NewRLG creates the reverse-link-graph application.
func NewRLG() *RLG { return &RLG{} }

func (a *RLG) Name() string    { return "RLG" }
func (a *RLG) Iterations() int { return 1 }

// rlgProgram: transfer sends the reversed edge (the source ID) to the
// destination; combine assembles the destination's reversed adjacency list.
type rlgProgram struct{}

func (rlgProgram) Init(graph.VertexID) []graph.VertexID { return nil }

func (rlgProgram) Transfer(src graph.VertexID, _ []graph.VertexID, dst graph.VertexID, emit propagation.Emit[[]graph.VertexID]) {
	emit(dst, []graph.VertexID{src})
}

func (rlgProgram) Combine(_ graph.VertexID, _ []graph.VertexID, values [][]graph.VertexID) []graph.VertexID {
	var out []graph.VertexID
	for _, l := range values {
		out = append(out, l...)
	}
	slices.Sort(out)
	return out
}

func (rlgProgram) Bytes(l []graph.VertexID) int64 {
	if len(l) == 0 {
		return 0 // vertices with no in-edges store nothing
	}
	return 4 + 4*int64(len(l))
}

func (rlgProgram) Associative() bool { return true }

func (rlgProgram) Merge(_ graph.VertexID, values [][]graph.VertexID) []graph.VertexID {
	var out []graph.VertexID
	for _, l := range values {
		out = append(out, l...)
	}
	slices.Sort(out)
	return out
}

// RunPropagation returns the reversed adjacency lists indexed by vertex.
func (a *RLG) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	prog := rlgProgram{}
	st := propagation.NewState[[]graph.VertexID](pg, prog)
	st, m, err := propagation.Iterate(r, pg, pl, prog, st, opt)
	if err != nil {
		return nil, m, err
	}
	return st.Values, m, nil
}

// rlgMR: map emits (dst, src) per edge; reduce sorts the in-neighbor list.
type rlgMR struct{}

func (rlgMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, graph.VertexID)) {
	for _, u := range pi.Vertices {
		for _, v := range g.Neighbors(u) {
			emit(v, u)
		}
	}
}

func (rlgMR) Reduce(_ graph.VertexID, values []graph.VertexID) []graph.VertexID {
	out := make([]graph.VertexID, len(values))
	copy(out, values)
	slices.Sort(out)
	return out
}

func (rlgMR) PairBytes(graph.VertexID, graph.VertexID) int64 { return 8 }
func (rlgMR) ResultBytes(l []graph.VertexID) int64           { return 8 + 4*int64(len(l)) }

// RunMapReduce returns the reversed adjacency lists indexed by vertex
// (vertices with no in-edges are absent from the map and have empty lists).
func (a *RLG) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	res, m, err := mapreduce.Run[graph.VertexID, graph.VertexID, []graph.VertexID](r, pg, pl, rlgMR{}, mapreduce.Options{})
	if err != nil {
		return nil, m, err
	}
	out := make([][]graph.VertexID, pg.G.NumVertices())
	for v, l := range res {
		out[v] = l
	}
	return out, m, nil
}

// ReferenceRLG computes the reversed adjacency lists via the graph
// transpose.
func ReferenceRLG(g *graph.Graph) [][]graph.VertexID {
	rev := g.Reverse()
	out := make([][]graph.VertexID, rev.NumVertices())
	for v := 0; v < rev.NumVertices(); v++ {
		ns := rev.Neighbors(graph.VertexID(v))
		if len(ns) > 0 {
			out[v] = append([]graph.VertexID(nil), ns...)
		}
	}
	return out
}
