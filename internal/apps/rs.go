package apps

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// RSConfig parameterizes the recommender-system simulation (Appendix D):
// recommendation starts at a seed set of product users; each user
// recommends to all friends; a recipient accepts with a fixed probability.
// Acceptance is derandomized per vertex with a hash so both primitives and
// the reference agree exactly.
type RSConfig struct {
	// SeedPermille: a vertex starts as a product user when
	// hash(v) % 1000 < SeedPermille.
	SeedPermille int
	// AcceptPermille: a recommended vertex accepts when
	// hash(v+salt) % 1000 < AcceptPermille.
	AcceptPermille int
	// Iterations of recommendation rounds.
	Iterations int
}

// DefaultRSConfig seeds 1% of the network and accepts at 30%.
func DefaultRSConfig() RSConfig {
	return RSConfig{SeedPermille: 10, AcceptPermille: 300, Iterations: 3}
}

// RS is the recommender-system application.
type RS struct {
	cfg RSConfig
}

// NewRS creates the recommender application.
func NewRS(cfg RSConfig) *RS { return &RS{cfg: cfg} }

func (a *RS) Name() string    { return "RS" }
func (a *RS) Iterations() int { return a.cfg.Iterations }

func rsHash(v graph.VertexID, salt uint64) uint64 {
	x := uint64(v)*0x9E3779B97F4A7C15 + salt*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 27
	return x
}

func (cfg RSConfig) seeded(v graph.VertexID) bool {
	return int(rsHash(v, 1)%1000) < cfg.SeedPermille
}

func (cfg RSConfig) accepts(v graph.VertexID) bool {
	return int(rsHash(v, 2)%1000) < cfg.AcceptPermille
}

// rsProgram: value 1 means the vertex uses the product. Transfer recommends
// to every friend of a user; combine flips a recipient to user when it
// accepts.
type rsProgram struct {
	cfg RSConfig
}

func (p *rsProgram) Init(v graph.VertexID) uint8 {
	if p.cfg.seeded(v) {
		return 1
	}
	return 0
}

func (p *rsProgram) Transfer(_ graph.VertexID, use uint8, dst graph.VertexID, emit propagation.Emit[uint8]) {
	if use == 1 {
		emit(dst, 1)
	}
}

func (p *rsProgram) Combine(v graph.VertexID, prev uint8, values []uint8) uint8 {
	if prev == 1 {
		return 1
	}
	if len(values) > 0 && p.cfg.accepts(v) {
		return 1
	}
	return 0
}

func (p *rsProgram) Bytes(uint8) int64 { return 1 }

func (p *rsProgram) Associative() bool { return true }

func (p *rsProgram) Merge(_ graph.VertexID, values []uint8) uint8 {
	// Any recommendation is as good as many: OR.
	return 1
}

// RunPropagation simulates the recommendation rounds and returns the final
// adoption vector.
func (a *RS) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	prog := &rsProgram{cfg: a.cfg}
	st := propagation.NewState[uint8](pg, prog)
	st, m, err := propagation.RunIterations(r, pg, pl, prog, st, opt, a.cfg.Iterations)
	if err != nil {
		return nil, m, err
	}
	return st.Values, m, nil
}

// rsMR is the MapReduce variant: map emits a recommendation pair per friend
// of each product user; reduce applies the acceptance rule.
type rsMR struct {
	cfg   RSConfig
	state []uint8
}

func (p *rsMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, uint8)) {
	for _, u := range pi.Vertices {
		if p.state[u] != 1 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			emit(v, 1)
		}
	}
}

func (p *rsMR) Reduce(v graph.VertexID, values []uint8) uint8 {
	if p.state[v] == 1 {
		return 1
	}
	if len(values) > 0 && p.cfg.accepts(v) {
		return 1
	}
	return 0
}

func (p *rsMR) PairBytes(graph.VertexID, uint8) int64 { return 5 }
func (p *rsMR) ResultBytes(uint8) int64               { return 5 }

// RunMapReduce runs the rounds with the MapReduce primitive.
func (a *RS) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	n := pg.G.NumVertices()
	state := make([]uint8, n)
	for v := range state {
		if a.cfg.seeded(graph.VertexID(v)) {
			state[v] = 1
		}
	}
	var total engine.Metrics
	for it := 0; it < a.cfg.Iterations; it++ {
		prog := &rsMR{cfg: a.cfg, state: state}
		res, m, err := mapreduce.Run[graph.VertexID, uint8, uint8](r, pg, pl, prog, mapreduce.Options{StatePerVertexBytes: 1})
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		next := make([]uint8, n)
		copy(next, state)
		for v, adopted := range res {
			if adopted == 1 {
				next[v] = 1
			}
		}
		state = next
	}
	return state, total, nil
}

// ReferenceRS computes the adoption vector sequentially.
func ReferenceRS(g *graph.Graph, cfg RSConfig) []uint8 {
	n := g.NumVertices()
	state := make([]uint8, n)
	for v := range state {
		if cfg.seeded(graph.VertexID(v)) {
			state[v] = 1
		}
	}
	for it := 0; it < cfg.Iterations; it++ {
		recommended := make([]bool, n)
		for u := 0; u < n; u++ {
			if state[u] != 1 {
				continue
			}
			for _, v := range g.Neighbors(graph.VertexID(u)) {
				recommended[v] = true
			}
		}
		next := make([]uint8, n)
		copy(next, state)
		for v := range recommended {
			if recommended[v] && state[v] != 1 && cfg.accepts(graph.VertexID(v)) {
				next[v] = 1
			}
		}
		state = next
	}
	return state
}
