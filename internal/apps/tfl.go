package apps

import (
	"slices"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// TFL aggregates two-hop friend lists (Appendix D): every selected vertex
// pushes its neighbor list to each of its neighbors; each destination
// stores the distinct vertices of the received lists. TFL moves whole
// adjacency lists along edges, so it generates the paper's largest
// intermediate data volume — the workload where locality optimizations help
// the most (Table 3).
type TFL struct {
	ratio int
}

// NewTFL creates the two-hop-friends application with a 1-in-ratio sample.
func NewTFL(ratio int) *TFL { return &TFL{ratio: ratio} }

func (a *TFL) Name() string    { return "TFL" }
func (a *TFL) Iterations() int { return 1 }

type tflProgram struct {
	g     *graph.Graph
	ratio int
}

func (p *tflProgram) Init(graph.VertexID) []graph.VertexID { return nil }

func (p *tflProgram) Transfer(src graph.VertexID, _ []graph.VertexID, dst graph.VertexID, emit propagation.Emit[[]graph.VertexID]) {
	if !Selected(uint32(src), p.ratio) {
		return
	}
	emit(dst, p.g.Neighbors(src))
}

func (p *tflProgram) Combine(_ graph.VertexID, _ []graph.VertexID, values [][]graph.VertexID) []graph.VertexID {
	return distinctUnion(values)
}

func (p *tflProgram) Bytes(l []graph.VertexID) int64 {
	if len(l) == 0 {
		return 0 // vertices with no two-hop list store nothing
	}
	return 4 + 4*int64(len(l))
}

func (p *tflProgram) Associative() bool { return true }

// Merge pre-unions lists headed to the same destination: distinct-union is
// associative, so local combination preserves the final result.
func (p *tflProgram) Merge(_ graph.VertexID, values [][]graph.VertexID) []graph.VertexID {
	return distinctUnion(values)
}

// distinctUnion returns the sorted set union of the given lists. Every
// input is already sorted (adjacency lists from Builder.Build, or earlier
// distinctUnion outputs), so a tournament of pairwise merges computes the
// union in O(m log k) without re-sorting the concatenation — the dominant
// cost of TFL at millions of vertices. Inputs are never modified.
func distinctUnion(lists [][]graph.VertexID) []graph.VertexID {
	cur := make([][]graph.VertexID, 0, len(lists))
	for _, l := range lists {
		if len(l) > 0 {
			cur = append(cur, l)
		}
	}
	if len(cur) == 0 {
		return nil
	}
	if len(cur) == 1 {
		// Dedupe-copy so the result never aliases a shared adjacency list.
		return slices.Compact(slices.Clone(cur[0]))
	}
	for len(cur) > 1 {
		k := 0
		for i := 0; i+1 < len(cur); i += 2 {
			cur[k] = mergeDistinct(cur[i], cur[i+1])
			k++
		}
		if len(cur)%2 == 1 {
			cur[k] = cur[len(cur)-1]
			k++
		}
		cur = cur[:k]
	}
	return cur[0]
}

// mergeDistinct merges two sorted lists into a fresh sorted list, dropping
// duplicates within and across the inputs.
func mergeDistinct(a, b []graph.VertexID) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(a)+len(b))
	push := func(v graph.VertexID) {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			push(a[i])
			i++
		case b[j] < a[i]:
			push(b[j])
			j++
		default:
			push(a[i])
			i, j = i+1, j+1
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return out
}

// RunPropagation returns each vertex's two-hop list (indexed by vertex).
func (a *TFL) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	prog := &tflProgram{g: pg.G, ratio: a.ratio}
	st := propagation.NewState[[]graph.VertexID](pg, prog)
	st, m, err := propagation.Iterate(r, pg, pl, prog, st, opt)
	if err != nil {
		return nil, m, err
	}
	return st.Values, m, nil
}

// tflMR mirrors the logic under MapReduce.
type tflMR struct {
	ratio int
}

func (p *tflMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, []graph.VertexID)) {
	for _, u := range pi.Vertices {
		if !Selected(uint32(u), p.ratio) {
			continue
		}
		list := g.Neighbors(u)
		for _, v := range list {
			emit(v, list)
		}
	}
}

func (p *tflMR) Reduce(_ graph.VertexID, values [][]graph.VertexID) []graph.VertexID {
	return distinctUnion(values)
}

func (p *tflMR) PairBytes(_ graph.VertexID, l []graph.VertexID) int64 { return 8 + 4*int64(len(l)) }
func (p *tflMR) ResultBytes(l []graph.VertexID) int64                 { return 8 + 4*int64(len(l)) }

// RunMapReduce returns each vertex's two-hop list (indexed by vertex).
func (a *TFL) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	prog := &tflMR{ratio: a.ratio}
	res, m, err := mapreduce.Run[graph.VertexID, []graph.VertexID, []graph.VertexID](r, pg, pl, prog, mapreduce.Options{})
	if err != nil {
		return nil, m, err
	}
	out := make([][]graph.VertexID, pg.G.NumVertices())
	for v, l := range res {
		out[v] = l
	}
	return out, m, nil
}

// ReferenceTFL computes the pushed two-hop lists sequentially: vertex v's
// list is the distinct union of the neighbor lists of its selected
// in-neighbors.
func ReferenceTFL(g *graph.Graph, ratio int) [][]graph.VertexID {
	out := make([][]graph.VertexID, g.NumVertices())
	var acc [][][]graph.VertexID = make([][][]graph.VertexID, g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		if !Selected(uint32(u), ratio) {
			continue
		}
		list := g.Neighbors(graph.VertexID(u))
		for _, v := range list {
			acc[v] = append(acc[v], list)
		}
	}
	for v := range out {
		if len(acc[v]) > 0 {
			out[v] = distinctUnion(acc[v])
		}
	}
	return out
}
