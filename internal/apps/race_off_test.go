//go:build !race

package apps

// raceEnabled reports whether the race detector is compiled in; the
// million-vertex smoke test skips under it (instrumentation makes the run
// minutes long, and CI's race pass covers the same code at small scale).
const raceEnabled = false
