package apps

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// TestMillionVertexSmoke drives the whole fast path — CSR social graph,
// recursive bisection, partition metadata, pooled propagation — at a
// million vertices (~16M directed edges) and checks TFL and NR complete
// end to end with sane results. It exists to catch superlinear blowups
// (per-message allocation, quadratic merge, map-heavy hot loops) that
// small fixtures never see. Skipped in -short and under the race detector
// (instrumentation would stretch it to minutes).
func TestMillionVertexSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-vertex smoke skipped in -short")
	}
	if raceEnabled {
		t.Skip("1M-vertex smoke skipped under -race")
	}
	const n = 1 << 20
	g := graph.Social(graph.DefaultSocial(n, 42))
	pt, _ := partition.RecursiveBisect(g, 4, partition.Options{Seed: 42})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT1(16)
	pl := partition.RandomPlacement(pt.P, topo, 42)
	opt := propagation.Options{LocalPropagation: true, LocalCombination: true}

	tflOut, _, err := NewTFL(10).RunPropagation(engine.New(engine.Config{Topo: topo}), pg, pl, opt)
	if err != nil {
		t.Fatal(err)
	}
	lists := tflOut.([][]graph.VertexID)
	var listSum int64
	for _, l := range lists {
		listSum += int64(len(l))
	}
	if listSum == 0 {
		t.Fatal("TFL produced no two-hop lists at 1M vertices")
	}

	nrOut, _, err := NewNR(3).RunPropagation(engine.New(engine.Config{Topo: topo}), pg, pl, opt)
	if err != nil {
		t.Fatal(err)
	}
	ranks := nrOut.([]float64)
	var rankSum float64
	for _, r := range ranks {
		rankSum += r
	}
	// NR keeps the rank distribution normalized: total mass 1 within
	// float tolerance.
	if rankSum < 0.99 || rankSum > 1.01 {
		t.Fatalf("NR rank mass = %g, want ~1", rankSum)
	}
}
