// Package apps implements the paper's six benchmark applications (Appendix
// D) — network ranking (NR), recommender system (RS), triangle counting
// (TC), vertex degree distribution (VDD), reverse link graph (RLG) and
// two-hop friend lists (TFL) — each twice: once with the propagation
// primitive and once with the home-grown MapReduce primitive, plus a
// sequential reference used by the tests to pin down semantics.
package apps

import (
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// App is a benchmark application runnable under both primitives.
type App interface {
	// Name is the paper's abbreviation (NR, RS, ...).
	Name() string
	// Iterations is the number of propagation iterations the workload
	// runs (1 for single-pass applications).
	Iterations() int
	// RunPropagation executes the propagation implementation and returns
	// an opaque result for cross-checking.
	RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error)
	// RunMapReduce executes the MapReduce implementation.
	RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error)
}

// All returns the six applications in the order the paper's tables use
// (VDD, RS, NR, RLG, TC, TFL).
func All() []App {
	return []App{
		NewVDD(),
		NewRS(DefaultRSConfig()),
		NewNR(3),
		NewRLG(),
		NewTC(DefaultSelectRatio),
		NewTFL(DefaultSelectRatio),
	}
}

// DefaultSelectRatio is the vertex sampling ratio TC and TFL use ("the
// ratio of selected vertices is 10%", Appendix D).
const DefaultSelectRatio = 10

// Selected reports whether vertex v is in the deterministic sample used by
// TC and TFL: one in `ratio` vertices, spread by a multiplicative hash.
func Selected(v uint32, ratio int) bool {
	if ratio <= 1 {
		return true
	}
	return (uint64(v)*2654435761)%uint64(ratio) == 0
}
