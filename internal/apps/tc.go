package apps

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// TC counts directed triangles (u->v, u->w, v->w) among a deterministic 10%
// vertex sample (Appendix D, Algorithm 3): the transfer stage ships each
// selected source's sampled neighbor list across its edges to selected
// destinations; the combine stage intersects received lists with the
// destination's own neighbor list.
//
// TC's combine is NOT associative — merging two neighbor lists before the
// intersection would change the count — so local combination never applies
// to it; only local propagation does.
type TC struct {
	ratio int
}

// NewTC creates the triangle-counting application with a 1-in-ratio vertex
// sample.
func NewTC(ratio int) *TC { return &TC{ratio: ratio} }

func (a *TC) Name() string    { return "TC" }
func (a *TC) Iterations() int { return 1 }

// TCValue is either a transferred neighbor list (List != nil) or a vertex's
// triangle count.
type TCValue struct {
	List  []graph.VertexID
	Count int64
}

type tcProgram struct {
	propagation.NonAssociative[TCValue]
	g     *graph.Graph
	ratio int
}

func (p *tcProgram) selectedNeighbors(v graph.VertexID) []graph.VertexID {
	var out []graph.VertexID
	for _, w := range p.g.Neighbors(v) {
		if Selected(uint32(w), p.ratio) {
			out = append(out, w)
		}
	}
	return out
}

func (p *tcProgram) Init(graph.VertexID) TCValue { return TCValue{} }

func (p *tcProgram) Transfer(src graph.VertexID, _ TCValue, dst graph.VertexID, emit propagation.Emit[TCValue]) {
	if !Selected(uint32(src), p.ratio) || !Selected(uint32(dst), p.ratio) {
		return
	}
	emit(dst, TCValue{List: p.selectedNeighbors(src)})
}

func (p *tcProgram) Combine(v graph.VertexID, prev TCValue, values []TCValue) TCValue {
	count := prev.Count
	if len(values) > 0 {
		mine := p.selectedNeighbors(v)
		for _, val := range values {
			count += intersectCount(mine, val.List)
		}
	}
	return TCValue{Count: count}
}

func (p *tcProgram) Bytes(v TCValue) int64 {
	if v.List != nil {
		return 4 + 4*int64(len(v.List))
	}
	if v.Count == 0 {
		// Vertices that found no triangles store nothing.
		return 0
	}
	return 8
}

// intersectCount counts common elements of two sorted lists.
func intersectCount(a, b []graph.VertexID) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// RunPropagation returns the total directed-triangle count over the sample.
func (a *TC) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	prog := &tcProgram{g: pg.G, ratio: a.ratio}
	st := propagation.NewState[TCValue](pg, prog)
	st, m, err := propagation.Iterate(r, pg, pl, prog, st, opt)
	if err != nil {
		return nil, m, err
	}
	var total int64
	for _, v := range st.Values {
		total += v.Count
	}
	return total, m, nil
}

// tcMR mirrors the propagation logic under MapReduce: map ships neighbor
// lists keyed by the destination vertex, reduce intersects.
type tcMR struct {
	g     *graph.Graph
	ratio int
}

func (p *tcMR) selectedNeighbors(v graph.VertexID) []graph.VertexID {
	var out []graph.VertexID
	for _, w := range p.g.Neighbors(v) {
		if Selected(uint32(w), p.ratio) {
			out = append(out, w)
		}
	}
	return out
}

func (p *tcMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, []graph.VertexID)) {
	for _, u := range pi.Vertices {
		if !Selected(uint32(u), p.ratio) {
			continue
		}
		list := p.selectedNeighbors(u)
		for _, v := range g.Neighbors(u) {
			if Selected(uint32(v), p.ratio) {
				emit(v, list)
			}
		}
	}
}

func (p *tcMR) Reduce(v graph.VertexID, values [][]graph.VertexID) int64 {
	mine := p.selectedNeighbors(v)
	var count int64
	for _, l := range values {
		count += intersectCount(mine, l)
	}
	return count
}

func (p *tcMR) PairBytes(_ graph.VertexID, l []graph.VertexID) int64 { return 8 + 4*int64(len(l)) }
func (p *tcMR) ResultBytes(int64) int64                              { return 12 }

// RunMapReduce returns the total triangle count.
func (a *TC) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	prog := &tcMR{g: pg.G, ratio: a.ratio}
	res, m, err := mapreduce.Run[graph.VertexID, []graph.VertexID, int64](r, pg, pl, prog, mapreduce.Options{})
	if err != nil {
		return nil, m, err
	}
	var total int64
	for _, c := range res {
		total += c
	}
	return total, m, nil
}

// ReferenceTC counts directed triangles among the sample sequentially.
func ReferenceTC(g *graph.Graph, ratio int) int64 {
	var total int64
	for u := 0; u < g.NumVertices(); u++ {
		if !Selected(uint32(u), ratio) {
			continue
		}
		var nu []graph.VertexID
		for _, w := range g.Neighbors(graph.VertexID(u)) {
			if Selected(uint32(w), ratio) {
				nu = append(nu, w)
			}
		}
		for _, v := range nu {
			var nv []graph.VertexID
			for _, w := range g.Neighbors(v) {
				if Selected(uint32(w), ratio) {
					nv = append(nv, w)
				}
			}
			total += intersectCount(nu, nv)
		}
	}
	return total
}
