package apps

import (
	"math"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// SSSP computes single-source shortest hop distances by iterative
// relaxation — a second extension workload: unlike CC it has an asymmetric
// frontier (only vertices whose distance improved emit), exercising the
// primitive's selective-transfer path the way RS does but with a numeric
// fixpoint.
type SSSP struct {
	Source graph.VertexID
	// MaxIterations bounds the relaxation rounds (graph diameter
	// suffices).
	MaxIterations int
}

// NewSSSP creates the shortest-paths application.
func NewSSSP(source graph.VertexID, maxIterations int) *SSSP {
	return &SSSP{Source: source, MaxIterations: maxIterations}
}

func (a *SSSP) Name() string    { return "SSSP" }
func (a *SSSP) Iterations() int { return a.MaxIterations }

// Unreachable marks vertices with no path from the source.
const Unreachable = int32(math.MaxInt32)

type ssspProgram struct {
	source graph.VertexID
}

func (p *ssspProgram) Init(v graph.VertexID) int32 {
	if v == p.source {
		return 0
	}
	return Unreachable
}

func (p *ssspProgram) Transfer(_ graph.VertexID, dist int32, dst graph.VertexID, emit propagation.Emit[int32]) {
	if dist != Unreachable {
		emit(dst, dist+1)
	}
}

func (p *ssspProgram) Combine(_ graph.VertexID, prev int32, values []int32) int32 {
	min := prev
	for _, d := range values {
		if d < min {
			min = d
		}
	}
	return min
}

func (p *ssspProgram) Bytes(int32) int64 { return 4 }
func (p *ssspProgram) Associative() bool { return true }
func (p *ssspProgram) Merge(_ graph.VertexID, values []int32) int32 {
	min := values[0]
	for _, d := range values[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

func ssspDelta(a, b int32) float64 {
	if a == b {
		return 0
	}
	return 1
}

// RunPropagation relaxes distances until fixpoint (or MaxIterations) and
// returns the per-vertex hop distances (Unreachable where no path exists).
func (a *SSSP) RunPropagation(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, opt propagation.Options) (any, engine.Metrics, error) {
	prog := &ssspProgram{source: a.Source}
	st := propagation.NewState[int32](pg, prog)
	st, m, err := propagation.RunUntilConverged(r, pg, pl, prog, st, opt, a.MaxIterations, ssspDelta, 0)
	if err != nil {
		return nil, m, err
	}
	return st.Values, m, nil
}

// ssspMR is one relaxation round under MapReduce.
type ssspMR struct {
	dists []int32
}

func (p *ssspMR) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, int32)) {
	for _, u := range pi.Vertices {
		if p.dists[u] == Unreachable {
			continue
		}
		for _, v := range g.Neighbors(u) {
			emit(v, p.dists[u]+1)
		}
	}
}

func (p *ssspMR) Reduce(_ graph.VertexID, values []int32) int32 {
	min := values[0]
	for _, d := range values[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

func (p *ssspMR) PairBytes(graph.VertexID, int32) int64 { return 8 }
func (p *ssspMR) ResultBytes(int32) int64               { return 8 }

// CombineValues folds candidate distances map-side (min is associative).
func (p *ssspMR) CombineValues(_ graph.VertexID, values []int32) int32 {
	min := values[0]
	for _, d := range values[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// RunMapReduce iterates relaxation rounds until no distance changes.
func (a *SSSP) RunMapReduce(r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement) (any, engine.Metrics, error) {
	n := pg.G.NumVertices()
	dists := make([]int32, n)
	for v := range dists {
		dists[v] = Unreachable
	}
	dists[a.Source] = 0
	var total engine.Metrics
	for it := 0; it < a.MaxIterations; it++ {
		prog := &ssspMR{dists: dists}
		res, m, err := mapreduce.Run[graph.VertexID, int32, int32](r, pg, pl, prog, mapreduce.Options{StatePerVertexBytes: 4})
		if err != nil {
			return nil, total, err
		}
		total.Add(m)
		changed := false
		for v, d := range res {
			if d < dists[v] {
				dists[v] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dists, total, nil
}

// ReferenceSSSP computes hop distances with a BFS.
func ReferenceSSSP(g *graph.Graph, source graph.VertexID) []int32 {
	out := make([]int32, g.NumVertices())
	for v, d := range g.BFSDistances(source) {
		if d < 0 {
			out[v] = Unreachable
		} else {
			out[v] = int32(d)
		}
	}
	return out
}
