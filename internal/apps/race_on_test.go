//go:build race

package apps

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
