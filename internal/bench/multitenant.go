package bench

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/jobsvc"
)

// The multitenant benchmark runs the same seeded arrival workload through
// the job service once per scheduling policy on one shared deployment —
// the cloud premise of the paper pushed one level up: not one job on a
// shared network, but many tenants' jobs on a shared cluster. Gated
// metrics are the deterministic virtual-time aggregates (makespan, latency
// percentiles, mean wait); fairness is reported but not gated because
// higher is better.

// MultitenantConfig sizes the multi-tenant experiment.
type MultitenantConfig struct {
	// Scale sizes the shared deployment (graph, partitions, machines).
	Scale Scale
	// Jobs and Tenants shape the generated workload.
	Jobs    int
	Tenants int
	// Concurrency is the service's job-slot count; QueueLimit bounds the
	// admission queue (0 = unlimited).
	Concurrency int
	// QueueLimit bounds queued-or-preempted jobs per policy run.
	QueueLimit int
	// WorkloadSeed drives arrival generation (distinct from Scale.Seed so
	// the deployment and the workload vary independently).
	WorkloadSeed int64
}

// DefaultMultitenantConfig is the committed-baseline scale: small enough
// for CI, busy enough that policies disagree.
func DefaultMultitenantConfig() MultitenantConfig {
	return MultitenantConfig{
		Scale:        Scale{Vertices: 4096, Levels: 4, Machines: 8, Seed: 42},
		Jobs:         10,
		Tenants:      3,
		Concurrency:  2,
		WorkloadSeed: 11,
	}
}

// MultitenantRow is one policy's aggregate outcome on the shared workload.
type MultitenantRow struct {
	Policy      jobsvc.Policy `json:"policy"`
	Makespan    float64       `json:"makespan_seconds"`
	P50         float64       `json:"p50_latency_seconds"`
	P99         float64       `json:"p99_latency_seconds"`
	MeanWait    float64       `json:"mean_wait_seconds"`
	Jain        float64       `json:"jain_fairness"`
	Finished    int           `json:"jobs_finished"`
	RejectedN   int           `json:"jobs_rejected"`
	Preemptions int           `json:"preemptions"`
}

// Multitenant plans the workload once on a shared deployment and replays
// it under every policy.
func Multitenant(cfg MultitenantConfig) ([]MultitenantRow, error) {
	s := cfg.Scale
	topo := cluster.NewT3(s.Machines, s.Seed)
	p, err := jobsvc.NewPlanner(jobsvc.PlannerConfig{
		Graph:   s.MakeGraph(),
		Topo:    topo,
		Levels:  s.Levels,
		Seed:    s.Seed,
		Workers: s.Workers,
	})
	if err != nil {
		return nil, err
	}
	wl := jobsvc.GenerateWorkload(jobsvc.GenConfig{
		Jobs:          cfg.Jobs,
		Tenants:       cfg.Tenants,
		MaxPriority:   2,
		MaxIterations: 2,
		Seed:          cfg.WorkloadSeed,
	})
	jobs, err := p.Jobs(wl)
	if err != nil {
		return nil, err
	}
	var rows []MultitenantRow
	for _, pol := range jobsvc.Policies {
		recs, err := jobsvc.Run(jobsvc.Config{
			Topo:        topo,
			Policy:      pol,
			Concurrency: cfg.Concurrency,
			QueueLimit:  cfg.QueueLimit,
			Trace:       s.Trace,
			Faults:      s.Faults,
			Retry:       s.Retry,
		}, jobs)
		if err != nil {
			return nil, fmt.Errorf("bench: multitenant %s: %w", pol, err)
		}
		row := MultitenantRow{
			Policy:   pol,
			P50:      jobsvc.LatencyPercentile(recs, 0.50),
			P99:      jobsvc.LatencyPercentile(recs, 0.99),
			MeanWait: jobsvc.MeanWait(recs),
		}
		_, service := jobsvc.TenantService(recs)
		row.Jain = jobsvc.JainIndex(service)
		for _, r := range recs {
			if r.Rejected {
				row.RejectedN++
				continue
			}
			row.Finished++
			row.Preemptions += r.Preemptions
			if r.Finished > row.Makespan {
				row.Makespan = r.Finished
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FromMultitenant converts policy rows into the versioned report schema:
// one entry per policy, deterministic lower-is-better aggregates gated,
// fairness and counts as info.
func FromMultitenant(rows []MultitenantRow) *Report {
	r := NewReport()
	for _, row := range rows {
		r.Entries = append(r.Entries, Entry{
			Experiment: "multitenant",
			Case:       row.Policy.String(),
			Metrics: map[string]float64{
				"makespan_seconds":    row.Makespan,
				"p50_latency_seconds": row.P50,
				"p99_latency_seconds": row.P99,
				"mean_wait_seconds":   row.MeanWait,
			},
			Info: map[string]float64{
				"jain_fairness": row.Jain,
				"jobs_finished": float64(row.Finished),
				"jobs_rejected": float64(row.RejectedN),
				"preemptions":   float64(row.Preemptions),
			},
		})
	}
	return r
}

// WriteMultitenant renders the policy comparison for the terminal.
func WriteMultitenant(w io.Writer, rows []MultitenantRow) {
	fmt.Fprintln(w, "Multi-tenant job service: one workload, every policy (shared T3 cluster)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %8s %6s %6s %6s\n",
		"policy", "makespan(s)", "p50 lat(s)", "p99 lat(s)", "mean wait(s)", "jain", "done", "rej", "preempt")
	for _, row := range rows {
		fmt.Fprintf(w, "%-10s %12.4f %12.4f %12.4f %12.4f %8.3f %6d %6d %6d\n",
			row.Policy, row.Makespan, row.P50, row.P99, row.MeanWait, row.Jain,
			row.Finished, row.RejectedN, row.Preemptions)
	}
}
