package bench

import (
	"os"
	"strings"
	"testing"
)

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 topologies", len(rows))
	}
	for _, r := range rows {
		if r.ParMetisSec <= 0 || r.BandwidthSec <= 0 {
			t.Fatalf("%s: non-positive times %+v", r.Topology, r)
		}
		switch r.Topology {
		case "T1":
			// On an even network the two algorithms should be close;
			// the staging penalty keeps the baseline slightly slower.
			if r.ImprovementPct < 0 || r.ImprovementPct > 40 {
				t.Errorf("T1 improvement %.1f%%, want small", r.ImprovementPct)
			}
		case "T3":
			// Heterogeneous NICs: under elapsed-time-is-the-straggler
			// semantics the slow half bounds both algorithms' exchange,
			// so only the staging penalty separates them — a small but
			// positive win (the paper's larger T3 gain is discussed in
			// EXPERIMENTS.md).
			if r.ImprovementPct < 1 {
				t.Errorf("T3 improvement %.1f%%, want positive", r.ImprovementPct)
			}
		default:
			// Tree topologies: the headline claim.
			if r.ImprovementPct < 15 {
				t.Errorf("%s improvement %.1f%%, want substantial", r.Topology, r.ImprovementPct)
			}
		}
	}
	WriteTable1(os.Stderr, rows)
}

func TestTables23Shapes(t *testing.T) {
	cells, err := Tables23(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 24 {
		t.Fatalf("cells = %d, want 6 apps x 4 levels", len(cells))
	}
	get := func(app string, lvl OptLevel) AppLevelMetrics {
		for _, c := range cells {
			if c.App == app && c.Level == lvl {
				return c
			}
		}
		t.Fatalf("missing cell %s %v", app, lvl)
		return AppLevelMetrics{}
	}
	for _, app := range []string{"RS", "NR", "RLG", "TFL"} {
		o1 := get(app, O1).Metrics
		o3 := get(app, O3).Metrics
		if o3.ResponseSeconds >= o1.ResponseSeconds {
			t.Errorf("%s: O3 response %.4f >= O1 %.4f", app, o3.ResponseSeconds, o1.ResponseSeconds)
		}
		// O3 vs O1 holds the placement fixed, isolating the local
		// optimizations: network and disk must both shrink. (O4 vs O1
		// network is noisy at test scale: the placements co-locate
		// different partition pairs.)
		if o3.NetworkBytes >= o1.NetworkBytes {
			t.Errorf("%s: O3 network %d >= O1 %d", app, o3.NetworkBytes, o1.NetworkBytes)
		}
		if o3.DiskBytes >= o1.DiskBytes {
			t.Errorf("%s: O3 disk %d >= O1 %d", app, o3.DiskBytes, o1.DiskBytes)
		}
	}
}

func TestTable4Counts(t *testing.T) {
	rows, err := Table4("../apps")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PropagationLoC <= 0 || r.MapReduceLoC <= 0 {
			t.Fatalf("%s: zero LoC %+v", r.App, r)
		}
		// The programmability claim: propagation UDFs are not bigger
		// than MapReduce UDFs (the paper's ratio is far larger because
		// its MR code handles partition plumbing by hand).
		if r.App != "VDD" && r.PropagationLoC > r.MapReduceLoC+10 {
			t.Errorf("%s: propagation %d lines much bigger than MR %d", r.App, r.PropagationLoC, r.MapReduceLoC)
		}
	}
}

func TestTable5Shapes(t *testing.T) {
	rows, err := Table5(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotonicity: fewer partitions -> higher ier; ours >> random.
	for i := 1; i < len(rows); i++ {
		if rows[i].Partitions >= rows[i-1].Partitions {
			t.Fatal("rows not ordered by decreasing partition count")
		}
		if rows[i].IerOursPct < rows[i-1].IerOursPct {
			t.Errorf("ier not monotone: %.1f%% at P=%d vs %.1f%% at P=%d",
				rows[i].IerOursPct, rows[i].Partitions, rows[i-1].IerOursPct, rows[i-1].Partitions)
		}
	}
	for _, r := range rows {
		// Random partitioning's ier is ~1/P; ours should beat it by a
		// wide margin at every granularity (Table 5's sanity check).
		if r.IerOursPct < r.IerRandomPct+30 {
			t.Errorf("P=%d: ours %.1f%% not >> random %.1f%%", r.Partitions, r.IerOursPct, r.IerRandomPct)
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	rows, err := Fig6(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 non-T1 topologies x 2 apps
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Topology == "T3" {
			// On T3 the sketch layout concentrates heavy sibling traffic
			// onto the slow half's NICs; a balanced-random spread can tie
			// or slightly win at test scale (see EXPERIMENTS.md).
			if r.ImprovementPct < -25 {
				t.Errorf("T3/%s: aware layout badly worse (%.1f%%)", r.App, r.ImprovementPct)
			}
			continue
		}
		if r.ImprovementPct <= 0 {
			t.Errorf("%s/%s: aware layout not better (%.1f%%)", r.Topology, r.App, r.ImprovementPct)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.App == "VDD" {
			// Propagation emulates MR here; parity expected.
			if r.Speedup < 0.3 || r.Speedup > 3 {
				t.Errorf("VDD speedup %.2f out of parity band", r.Speedup)
			}
			continue
		}
		if r.Speedup <= 1 {
			t.Errorf("%s: propagation not faster (%.2fx)", r.App, r.Speedup)
		}
		if r.NetReductionPct <= 0 {
			t.Errorf("%s: no network reduction (%.1f%%)", r.App, r.NetReductionPct)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	rows, err := Fig9(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's finding: improvement grows with the delay factor.
	if rows[len(rows)-1].ImprovementPct <= rows[0].ImprovementPct {
		t.Errorf("improvement did not grow with delay: %.1f%% at %g vs %.1f%% at %g",
			rows[0].ImprovementPct, rows[0].DelayFactor,
			rows[len(rows)-1].ImprovementPct, rows[len(rows)-1].DelayFactor)
	}
}

func TestFig10Shapes(t *testing.T) {
	res, err := Fig10(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredSec < res.NormalSec {
		t.Errorf("recovery run (%.4f) faster than normal (%.4f)", res.RecoveredSec, res.NormalSec)
	}
	if res.OverheadPct > 100 {
		t.Errorf("overhead %.1f%% implausibly large", res.OverheadPct)
	}
	if res.Recoveries < 1 {
		t.Error("no recoveries recorded")
	}
	if len(res.Timeline) == 0 {
		t.Error("empty timeline")
	}
}

func TestFig11And12Shapes(t *testing.T) {
	rows, err := Fig11And12(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 { // TestScale has 8 machines: single point
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup <= 1 {
		t.Errorf("MR speedup %.2f <= 1", rows[0].Speedup)
	}
}

func TestCascadeShapes(t *testing.T) {
	res, err := Cascade(TestScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskSavingPct < 0 {
		t.Errorf("cascading increased disk: %.1f%%", res.DiskSavingPct)
	}
	if res.CascadedSec > res.PlainSec*1.001 {
		t.Errorf("cascading slowed the run: %.4f vs %.4f", res.CascadedSec, res.PlainSec)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	s := TestScale()
	var sb strings.Builder
	if rows, err := Table1(s); err == nil {
		WriteTable1(&sb, rows)
	} else {
		t.Fatal(err)
	}
	if rows, err := Table5(s); err == nil {
		WriteTable5(&sb, rows)
	} else {
		t.Fatal(err)
	}
	if rows, err := Table4("../apps"); err == nil {
		WriteTable4(&sb, rows)
	} else {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 5", "Table 4", "T2(2,1)", "Propagation"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestFigureRenderersProduceOutput(t *testing.T) {
	s := TestScale()
	var sb strings.Builder
	if rows, err := Fig6(s); err == nil {
		WriteFig6(&sb, rows)
	} else {
		t.Fatal(err)
	}
	if rows, err := Fig7(s); err == nil {
		WriteFig7(&sb, rows)
	} else {
		t.Fatal(err)
	}
	if rows, err := Fig9(s); err == nil {
		WriteFig9(&sb, rows)
	} else {
		t.Fatal(err)
	}
	if res, err := Fig10(s); err == nil {
		WriteFig10(&sb, res)
	} else {
		t.Fatal(err)
	}
	if rows, err := Fig11And12(s); err == nil {
		WriteFig11And12(&sb, rows)
	} else {
		t.Fatal(err)
	}
	if res, err := Cascade(s, 3); err == nil {
		WriteCascade(&sb, res)
	} else {
		t.Fatal(err)
	}
	if cells, err := Tables23(s); err == nil {
		WriteTable2(&sb, cells)
		WriteTable3(&sb, cells)
	} else {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 9", "Figure 10", "Figures 11-12", "Cascaded", "Table 2", "Table 3"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	s := TestScale()
	a, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Fig7 row %d differs between runs", i)
		}
	}
	t1a, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	t1b, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1a {
		if t1a[i] != t1b[i] {
			t.Fatalf("Table1 row %d differs between runs", i)
		}
	}
}
