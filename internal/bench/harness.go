// Package bench regenerates every table and figure of the paper's
// evaluation (§6, Appendix F) on the simulated cluster: Table 1
// (partitioning time by topology), Tables 2–3 (optimization levels O1–O4),
// Table 4 (user code size), Table 5 (partition quality), Figure 6
// (bandwidth-aware impact by topology), Figure 7 (MapReduce vs
// propagation), Figure 9 (cross-pod delay sweep), Figure 10 (fault
// tolerance), Figures 11–12 (scalability), and the §6.3 cascaded
// propagation study.
package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Scale sizes an experiment run. The defaults mirror the paper's setup
// shrunk to laptop scale: 32 machines, 64 partitions, a stitched
// small-world graph standing in for the MSN snapshot.
type Scale struct {
	// Vertices in the synthetic data graph.
	Vertices int
	// Levels is log2 of the partition count (paper default: 64
	// partitions).
	Levels int
	// Machines in the simulated cluster (paper: 32).
	Machines int
	// Seed drives generation and partitioning.
	Seed int64
	// Workers sizes the engine's compute worker pool (0 = GOMAXPROCS,
	// 1 = serial). Measured virtual-time results are identical for every
	// value; only wall-clock changes.
	Workers int
	// Trace, when non-nil, receives the structured event stream of every
	// run built from this scale. The stream is identical for every
	// Workers value.
	Trace *trace.Recorder
	// Failures schedules machine deaths for every runner built from this
	// scale (Figure 10); Heartbeat is the failure-detection latency
	// (0 = engine default, 1s).
	Failures  []engine.Failure
	Heartbeat float64
	// Faults injects transient faults (degraded or blackholed links,
	// machine slowdowns); Retry and Speculation tune the recovery policies.
	Faults      *fault.Schedule
	Retry       fault.RetryPolicy
	Speculation fault.SpeculationPolicy
}

// DefaultScale is the full benchmark scale.
func DefaultScale() Scale {
	return Scale{Vertices: 1 << 16, Levels: 6, Machines: 32, Seed: 42}
}

// TestScale is a shrunken configuration keeping test runtimes low.
func TestScale() Scale {
	return Scale{Vertices: 4096, Levels: 4, Machines: 8, Seed: 42}
}

// MakeGraph generates the data graph for a scale: the hybrid social graph
// (small-world communities + power-law hubs) standing in for the MSN
// snapshot.
func (s Scale) MakeGraph() *graph.Graph {
	return graph.Social(graph.DefaultSocial(s.Vertices, s.Seed))
}

// Topologies returns the named network settings of §6.1 at this scale.
func (s Scale) Topologies() []*cluster.Topology {
	return []*cluster.Topology{
		cluster.NewT1(s.Machines),
		cluster.NewT2(cluster.T2Config{Machines: s.Machines, Pods: 2, Levels: 1}),
		cluster.NewT2(cluster.T2Config{Machines: s.Machines, Pods: 4, Levels: 1}),
		cluster.NewT2(cluster.T2Config{Machines: s.Machines, Pods: 4, Levels: 2}),
		cluster.NewT3(s.Machines, s.Seed),
	}
}

// OptLevel is one of the paper's four optimization levels (§6.3).
type OptLevel int

const (
	O1 OptLevel = iota + 1 // ParMetis layout, no local optimizations
	O2                     // sketch layout, no local optimizations
	O3                     // ParMetis layout, local optimizations
	O4                     // sketch layout, local optimizations
)

func (o OptLevel) String() string { return fmt.Sprintf("O%d", int(o)) }

// BandwidthAwareLayout reports whether the level stores partitions by the
// machine-graph sketch.
func (o OptLevel) BandwidthAwareLayout() bool { return o == O2 || o == O4 }

// LocalOpts reports whether local propagation and combination are enabled.
func (o OptLevel) LocalOpts() bool { return o == O3 || o == O4 }

// Deployment is a partitioned graph with both placements precomputed, so
// the four optimization levels can run against identical partitions.
type Deployment struct {
	Scale Scale
	Graph *graph.Graph
	PG    *storage.PartitionedGraph
	Sk    *partition.Sketch
	Topo  *cluster.Topology
	// PlacePM is the bandwidth-oblivious (random) placement; PlaceBA the
	// sketch-guided one.
	PlacePM *partition.Placement
	PlaceBA *partition.Placement
	// Replicas is the three-way replica layout over the sketch-guided
	// placement: the failover targets for machine deaths and the backup
	// hosts for speculative re-execution.
	Replicas *storage.Replicas
}

// NewDeployment partitions the scale's graph once and derives both
// placements for the given topology.
func NewDeployment(s Scale, topo *cluster.Topology) (*Deployment, error) {
	g := s.MakeGraph()
	return NewDeploymentFor(s, topo, g)
}

// NewDeploymentFor is NewDeployment with a caller-provided graph (so sweeps
// can reuse one partitioning across topologies).
func NewDeploymentFor(s Scale, topo *cluster.Topology, g *graph.Graph) (*Deployment, error) {
	pt, sk := partition.RecursiveBisect(g, s.Levels, partition.Options{Seed: s.Seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		return nil, err
	}
	placeBA := partition.SketchPlacement(sk, topo)
	d := &Deployment{
		Scale:    s,
		Graph:    g,
		PG:       pg,
		Sk:       sk,
		Topo:     topo,
		PlacePM:  partition.RandomPlacement(pt.P, topo, s.Seed),
		PlaceBA:  placeBA,
		Replicas: storage.PlaceReplicas(placeBA, topo, s.Seed),
	}
	if err := engine.ValidateFailures(s.Failures, topo, d.Replicas); err != nil {
		return nil, err
	}
	if err := s.Faults.Validate(topo.NumMachines()); err != nil {
		return nil, err
	}
	return d, nil
}

// Placement returns the placement an optimization level uses.
func (d *Deployment) Placement(o OptLevel) *partition.Placement {
	if o.BandwidthAwareLayout() {
		return d.PlaceBA
	}
	return d.PlacePM
}

// Options returns the propagation options an optimization level uses.
func (d *Deployment) Options(o OptLevel) propagation.Options {
	return propagation.Options{
		LocalPropagation: o.LocalOpts(),
		LocalCombination: o.LocalOpts(),
	}
}

// Runner builds a fresh metrics-clean runner on the deployment's topology.
// The scale's trace recorder (if any) is shared across runners, so one
// recorder collects a whole experiment sweep.
func (d *Deployment) Runner() *engine.Runner {
	return engine.New(engine.Config{
		Topo:              d.Topo,
		Workers:           d.Scale.Workers,
		Trace:             d.Scale.Trace,
		Replicas:          d.Replicas,
		Failures:          d.Scale.Failures,
		HeartbeatInterval: d.Scale.Heartbeat,
		Faults:            d.Scale.Faults,
		Retry:             d.Scale.Retry,
		Speculation:       d.Scale.Speculation,
		PartBytes:         d.PG.PartBytes(),
	})
}

// RunApp executes one application at one optimization level.
func (d *Deployment) RunApp(app apps.App, o OptLevel) (engine.Metrics, error) {
	_, m, err := app.RunPropagation(d.Runner(), d.PG, d.Placement(o), d.Options(o))
	return m, err
}

// RunAppMR executes one application's MapReduce implementation (always on
// the bandwidth-oblivious placement: MapReduce is layout-unaware).
func (d *Deployment) RunAppMR(app apps.App) (engine.Metrics, error) {
	_, m, err := app.RunMapReduce(d.Runner(), d.PG, d.PlacePM)
	return m, err
}
