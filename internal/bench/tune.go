package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// The auto-tuner (surfer-tune) searches the deployment configuration space
// — engine worker-pool size × partition count × combiner settings — by
// coordinate descent: sweep one axis holding the others at the incumbent,
// adopt the best point, move to the next axis, and repeat until a full
// cycle improves nothing (convergence) or the evaluation budget runs out.
//
// Two objectives are supported. The default, virtual response seconds of
// the simulated cluster, is fully deterministic: the tuner's trajectory and
// winner are reproducible from the seed, and the Workers axis is skipped
// because worker count never changes virtual results (the determinism
// contract). The wall objective measures host wall-clock adaptively
// (rerun until the relative standard error converges, see AdaptiveConfig)
// and includes the Workers axis — use it to tune a real host.

// Objective selects what the tuner minimizes.
type Objective int

const (
	// ObjVirtual minimizes simulated response seconds (deterministic).
	ObjVirtual Objective = iota
	// ObjWall minimizes adaptive host wall-clock seconds.
	ObjWall
)

func (o Objective) String() string {
	if o == ObjWall {
		return "wall"
	}
	return "virtual"
}

// TunePoint is one configuration in the search space.
type TunePoint struct {
	// Workers is the engine pool size (0 = GOMAXPROCS). Only searched
	// under ObjWall.
	Workers int
	// Levels is log2 of the partition count.
	Levels int
	// LocalProp / LocalComb are the §5.1 locality optimizations.
	LocalProp bool
	LocalComb bool
}

func (p TunePoint) String() string {
	return fmt.Sprintf("workers=%d P=%d localProp=%v localComb=%v", p.Workers, 1<<p.Levels, p.LocalProp, p.LocalComb)
}

// TuneEval is one evaluated configuration.
type TuneEval struct {
	Point TunePoint
	// Objective is the minimized value (virtual or wall seconds); Wall
	// carries the adaptive measurement under ObjWall.
	Objective float64
	Wall      AdaptiveResult
	// VirtualSeconds is always recorded (deterministic context).
	VirtualSeconds float64
}

// TuneConfig parameterizes a search.
type TuneConfig struct {
	// Scale supplies the graph (Vertices, Seed) and cluster (Machines).
	// Scale.Levels seeds the partition-count axis' starting point.
	Scale Scale
	// App is "nr" or "tfl".
	App string
	// Objective selects virtual (default) or wall minimization.
	Objective Objective
	// Budget caps the number of distinct configuration evaluations
	// (cached repeats are free). Zero selects 24.
	Budget int
	// LevelsMin/LevelsMax bound the partition-count axis. Zeros select
	// [1, Scale.Levels+2].
	LevelsMin, LevelsMax int
	// WorkersAxis lists the pool sizes swept under ObjWall. Empty selects
	// {1, 2, 4, 8}.
	WorkersAxis []int
	// Adaptive bounds the wall measurements under ObjWall.
	Adaptive AdaptiveConfig
	// MaxCycles caps the coordinate-descent cycles. Zero selects 4.
	MaxCycles int
}

// TuneResult is the search outcome.
type TuneResult struct {
	Best TuneEval
	// Trace lists every distinct evaluation in search order.
	Trace []TuneEval
	// Cycles is the number of full coordinate cycles run; Converged is
	// true when the last cycle improved nothing (as opposed to running
	// out of budget).
	Cycles    int
	Converged bool
}

func (c TuneConfig) withDefaults() TuneConfig {
	if c.Budget <= 0 {
		c.Budget = 24
	}
	if c.LevelsMax <= 0 {
		c.LevelsMax = c.Scale.Levels + 2
	}
	if c.LevelsMin <= 0 {
		c.LevelsMin = 1
	}
	if c.LevelsMax < c.LevelsMin {
		c.LevelsMax = c.LevelsMin
	}
	if len(c.WorkersAxis) == 0 {
		c.WorkersAxis = []int{1, 2, 4, 8}
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 4
	}
	if c.App == "" {
		c.App = "nr"
	}
	return c
}

// tuner carries the search state: the graph is generated once, partitioning
// (the expensive step) is cached per level, and evaluations are cached per
// point so re-visited configurations are free.
type tuner struct {
	cfg   TuneConfig
	topo  *cluster.Topology
	pgs   map[int]*storage.PartitionedGraph
	pls   map[int]*partition.Placement
	evals map[TunePoint]TuneEval
	trace []TuneEval
	spent int
}

// Tune runs the coordinate-descent search.
func Tune(cfg TuneConfig) (*TuneResult, error) {
	cfg = cfg.withDefaults()
	g := cfg.Scale.MakeGraph()
	tn := &tuner{
		cfg:   cfg,
		topo:  cluster.NewT1(cfg.Scale.Machines),
		pgs:   make(map[int]*storage.PartitionedGraph),
		pls:   make(map[int]*partition.Placement),
		evals: make(map[TunePoint]TuneEval),
	}
	deploy := func(levels int) (*storage.PartitionedGraph, *partition.Placement, error) {
		if pg, ok := tn.pgs[levels]; ok {
			return pg, tn.pls[levels], nil
		}
		pt, _ := partition.RecursiveBisect(g, levels, partition.Options{Seed: cfg.Scale.Seed})
		pg, err := storage.Build(g, pt)
		if err != nil {
			return nil, nil, err
		}
		tn.pgs[levels] = pg
		tn.pls[levels] = partition.RandomPlacement(pt.P, tn.topo, cfg.Scale.Seed)
		return pg, tn.pls[levels], nil
	}
	newApp := func() (apps.App, error) {
		switch cfg.App {
		case "nr":
			return apps.NewNR(10), nil
		case "tfl":
			return apps.NewTFL(10), nil
		default:
			return nil, fmt.Errorf("bench: unknown tune app %q (want nr or tfl)", cfg.App)
		}
	}
	if _, err := newApp(); err != nil {
		return nil, err
	}

	eval := func(p TunePoint) (TuneEval, error) {
		if e, ok := tn.evals[p]; ok {
			return e, nil
		}
		if tn.spent >= cfg.Budget {
			return TuneEval{}, errBudget
		}
		tn.spent++
		pg, pl, err := deploy(p.Levels)
		if err != nil {
			return TuneEval{}, err
		}
		opt := propagation.Options{LocalPropagation: p.LocalProp, LocalCombination: p.LocalComb}
		var m engine.Metrics
		runOnce := func() error {
			app, err := newApp()
			if err != nil {
				return err
			}
			r := engine.New(engine.Config{Topo: tn.topo, Workers: p.Workers})
			_, rm, err := app.RunPropagation(r, pg, pl, opt)
			m = rm
			return err
		}
		e := TuneEval{Point: p}
		if cfg.Objective == ObjWall {
			wall, err := MeasureWall(cfg.Adaptive, runOnce)
			if err != nil {
				return TuneEval{}, err
			}
			e.Wall = wall
			e.Objective = wall.Mean
		} else {
			if err := runOnce(); err != nil {
				return TuneEval{}, err
			}
			e.Objective = m.ResponseSeconds
		}
		e.VirtualSeconds = m.ResponseSeconds
		tn.evals[p] = e
		tn.trace = append(tn.trace, e)
		return e, nil
	}

	// Starting point: the scale's own configuration at O4.
	start := TunePoint{Workers: cfg.Scale.Workers, Levels: cfg.Scale.Levels, LocalProp: true, LocalComb: true}
	if start.Levels < cfg.LevelsMin {
		start.Levels = cfg.LevelsMin
	}
	if start.Levels > cfg.LevelsMax {
		start.Levels = cfg.LevelsMax
	}
	best, err := eval(start)
	if err != nil {
		return nil, err
	}

	res := &TuneResult{}
	// Coordinate axes, each generating candidates around the incumbent.
	levelsAxis := func(p TunePoint) []TunePoint {
		var out []TunePoint
		for l := cfg.LevelsMin; l <= cfg.LevelsMax; l++ {
			q := p
			q.Levels = l
			out = append(out, q)
		}
		return out
	}
	combAxis := func(p TunePoint) []TunePoint {
		var out []TunePoint
		for _, lp := range []bool{false, true} {
			for _, lc := range []bool{false, true} {
				q := p
				q.LocalProp, q.LocalComb = lp, lc
				out = append(out, q)
			}
		}
		return out
	}
	workersAxis := func(p TunePoint) []TunePoint {
		var out []TunePoint
		for _, w := range cfg.WorkersAxis {
			q := p
			q.Workers = w
			out = append(out, q)
		}
		return out
	}
	axes := []func(TunePoint) []TunePoint{levelsAxis, combAxis}
	if cfg.Objective == ObjWall {
		axes = append(axes, workersAxis)
	}

	for cycle := 0; cycle < cfg.MaxCycles; cycle++ {
		improved := false
		for _, axis := range axes {
			for _, cand := range axis(best.Point) {
				e, err := eval(cand)
				if err == errBudget {
					res.Cycles = cycle + 1
					res.Best = best
					res.Trace = tn.trace
					return res, nil
				}
				if err != nil {
					return nil, err
				}
				if e.Objective < best.Objective {
					best = e
					improved = true
				}
			}
		}
		res.Cycles = cycle + 1
		if !improved {
			res.Converged = true
			break
		}
	}
	res.Best = best
	res.Trace = tn.trace
	return res, nil
}

// errBudget is the internal out-of-budget sentinel.
var errBudget = fmt.Errorf("bench: tune evaluation budget exhausted")

// WriteTune prints the search trace and winner.
func WriteTune(w io.Writer, cfg TuneConfig, res *TuneResult) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "surfer-tune: app=%s objective=%s budget=%d evals=%d cycles=%d converged=%v\n",
		cfg.App, cfg.Objective, cfg.Budget, len(res.Trace), res.Cycles, res.Converged)
	for i, e := range res.Trace {
		marker := " "
		if e.Point == res.Best.Point {
			marker = "*"
		}
		if cfg.Objective == ObjWall {
			fmt.Fprintf(w, "%s %2d  %-44s %s  (virtual %.2fs)\n", marker, i, e.Point, e.Wall, e.VirtualSeconds)
		} else {
			fmt.Fprintf(w, "%s %2d  %-44s %.3fs\n", marker, i, e.Point, e.Objective)
		}
	}
	fmt.Fprintf(w, "best: %s  objective=%.3fs\n", res.Best.Point, res.Best.Objective)
}

// FromTune converts a (deterministic-objective) tune result into the report
// schema: the winner's virtual seconds gate; the search shape goes to Info.
func FromTune(cfg TuneConfig, res *TuneResult) *Report {
	cfg = cfg.withDefaults()
	r := NewReport()
	info := map[string]float64{
		"evals":           float64(len(res.Trace)),
		"cycles":          float64(res.Cycles),
		"best_workers":    float64(res.Best.Point.Workers),
		"best_levels":     float64(res.Best.Point.Levels),
		"best_local_prop": b2f(res.Best.Point.LocalProp),
		"best_local_comb": b2f(res.Best.Point.LocalComb),
	}
	if res.Converged {
		info["converged"] = 1
	} else {
		info["converged"] = 0
	}
	r.Entries = append(r.Entries, Entry{
		Experiment: "tune",
		Case:       fmt.Sprintf("%s/%d", cfg.App, cfg.Scale.Vertices),
		Metrics:    map[string]float64{"best_virtual_seconds": res.Best.VirtualSeconds},
		Info:       info,
	})
	return r
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
