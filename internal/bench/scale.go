package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// The scale experiment records the fast-path engine's end-to-end trajectory
// from small to multi-million-vertex graphs: for each size it partitions
// the social graph, builds the partition metadata, and runs TFL (1-in-10
// sample, the paper's heaviest data mover) and NR (10 iterations) at O4.
// Two kinds of numbers come out of one run: the simulated cluster's virtual
// metrics, which are bit-identical across runs and gate regressions via
// surfer-analyze -compare, and host wall-clock phase timings, measured
// adaptively (rerun until the relative standard error converges) and
// recorded as ungated info.

// TrajectoryRow is the measurement at one graph size.
type TrajectoryRow struct {
	Vertices int
	Edges    int64
	P        int
	// Wall-clock phase timings on the host (ungated).
	PartitionWall AdaptiveResult
	BuildWall     AdaptiveResult
	TFLWall       AdaptiveResult
	NRWall        AdaptiveResult
	// Virtual metrics of the simulated runs (gated).
	TFL engine.Metrics
	NR  engine.Metrics
}

// ScaleExperiment runs the scale trajectory over the given vertex counts,
// deriving every other parameter (seed, levels, machines) from s. The
// wall-clock phases are measured per cfg.
func ScaleExperiment(s Scale, sizes []int, cfg AdaptiveConfig) ([]TrajectoryRow, error) {
	var rows []TrajectoryRow
	for _, n := range sizes {
		sc := s
		sc.Vertices = n
		row, err := scaleOne(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: scale at %d vertices: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func scaleOne(s Scale, cfg AdaptiveConfig) (TrajectoryRow, error) {
	g := s.MakeGraph()
	row := TrajectoryRow{Vertices: g.NumVertices(), Edges: g.NumEdges(), P: 1 << s.Levels}
	topo := cluster.NewT1(s.Machines)

	var pt *partition.Partitioning
	var err error
	row.PartitionWall, err = MeasureWall(cfg, func() error {
		pt, _ = partition.RecursiveBisect(g, s.Levels, partition.Options{Seed: s.Seed})
		return nil
	})
	if err != nil {
		return row, err
	}
	var pg *storage.PartitionedGraph
	row.BuildWall, err = MeasureWall(cfg, func() error {
		pg, err = storage.Build(g, pt)
		return err
	})
	if err != nil {
		return row, err
	}
	pl := partition.RandomPlacement(pt.P, topo, s.Seed)
	opt := propagation.Options{LocalPropagation: true, LocalCombination: true} // O4

	runApp := func(app apps.App) (engine.Metrics, AdaptiveResult, error) {
		var m engine.Metrics
		wall, err := MeasureWall(cfg, func() error {
			r := engine.New(engine.Config{Topo: topo, Workers: s.Workers, Trace: s.Trace})
			_, rm, err := app.RunPropagation(r, pg, pl, opt)
			m = rm
			return err
		})
		return m, wall, err
	}
	if row.TFL, row.TFLWall, err = runApp(apps.NewTFL(10)); err != nil {
		return row, err
	}
	if row.NR, row.NRWall, err = runApp(apps.NewNR(10)); err != nil {
		return row, err
	}
	return row, nil
}

// WriteScale prints the trajectory as a table.
func WriteScale(w io.Writer, rows []TrajectoryRow) {
	fmt.Fprintf(w, "Scale trajectory (TFL 1-in-10 + NR x10 at O4, wall ±rel err)\n")
	fmt.Fprintf(w, "%10s %10s %5s  %-18s %-18s %-18s %-18s %12s %12s\n",
		"vertices", "edges", "P", "partition", "build", "tfl", "nr", "tfl-virt(s)", "nr-virt(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %10d %5d  %-18s %-18s %-18s %-18s %12.2f %12.2f\n",
			r.Vertices, r.Edges, r.P,
			r.PartitionWall, r.BuildWall, r.TFLWall, r.NRWall,
			r.TFL.ResponseSeconds, r.NR.ResponseSeconds)
	}
}

// scaleWallInfo flattens an adaptive result into report info fields.
func scaleWallInfo(info map[string]float64, prefix string, a AdaptiveResult) {
	info[prefix+"_wall_seconds"] = a.Mean
	info[prefix+"_wall_rel_err"] = a.RelErr
	info[prefix+"_wall_runs"] = float64(a.Runs)
}

// FromScale converts scale rows into the report schema: virtual metrics
// gate, wall-clock phase timings go to Info.
func FromScale(rows []TrajectoryRow) *Report {
	r := NewReport()
	for _, row := range rows {
		for _, app := range []struct {
			name string
			m    engine.Metrics
		}{{"tfl", row.TFL}, {"nr", row.NR}} {
			info := map[string]float64{"edges": float64(row.Edges), "partitions": float64(row.P)}
			scaleWallInfo(info, "partition", row.PartitionWall)
			scaleWallInfo(info, "build", row.BuildWall)
			if app.name == "tfl" {
				scaleWallInfo(info, "app", row.TFLWall)
			} else {
				scaleWallInfo(info, "app", row.NRWall)
			}
			r.Entries = append(r.Entries, Entry{
				Experiment: "scale",
				Case:       fmt.Sprintf("%s/%d", app.name, row.Vertices),
				Metrics: metricsOf(app.m.ResponseSeconds, app.m.MachineSeconds,
					app.m.NetworkBytes, app.m.DiskBytes, app.m.TasksRun),
				Info: info,
			})
		}
	}
	return r
}
