package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// The parallel benchmark measures what the simulator's virtual clock cannot:
// the wall-clock throughput of the engine's real compute. It runs PageRank
// (NR) on an R-MAT graph with the compute worker pool at 1 worker and at N
// workers, asserts the results and metrics are bit-identical, and reports
// the speedup.

// ParallelConfig sizes the parallel wall-clock benchmark.
type ParallelConfig struct {
	// Scale is log2 of the vertex count (default 17).
	Scale int
	// EdgeFactor is edges per vertex (default 8: with Scale 17 that is a
	// ~1M-edge R-MAT graph).
	EdgeFactor int
	// Levels is log2 of the partition count (default 4 = 16 partitions).
	Levels int
	// Machines in the simulated cluster (default 16).
	Machines int
	// Iterations of PageRank (default 10).
	Iterations int
	// Workers for the parallel run; 0 selects GOMAXPROCS.
	Workers int
	// Seed drives generation and partitioning.
	Seed int64
}

// DefaultParallelConfig returns the acceptance-scale setup: PageRank, 10
// iterations, ~1M-edge R-MAT graph, 16 partitions.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{Scale: 17, EdgeFactor: 8, Levels: 4, Machines: 16, Iterations: 10, Seed: 42}
}

// ParallelRun is one timed execution of the workload.
type ParallelRun struct {
	Workers         int     `json:"workers"`
	WallSeconds     float64 `json:"wall_seconds"`
	ResponseSeconds float64 `json:"virtual_response_seconds"`
	NetworkBytes    int64   `json:"network_bytes"`
	DiskBytes       int64   `json:"disk_bytes"`
	TasksRun        int     `json:"tasks_run"`
	RankSum         float64 `json:"rank_sum"`
}

// ParallelResult is the serial-vs-parallel comparison written to
// BENCH_parallel.json.
type ParallelResult struct {
	App        string        `json:"app"`
	Vertices   int           `json:"vertices"`
	Edges      int64         `json:"edges"`
	Partitions int           `json:"partitions"`
	Iterations int           `json:"iterations"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Serial     ParallelRun   `json:"serial"`
	Parallel   ParallelRun   `json:"parallel"`
	Speedup    float64       `json:"speedup"`
	Identical  bool          `json:"bit_identical"`
	Runs       []ParallelRun `json:"runs"`
}

// ParallelBench times PageRank serial vs parallel and verifies bit-identical
// results and metrics.
func ParallelBench(cfg ParallelConfig) (*ParallelResult, error) {
	if cfg.Scale == 0 {
		cfg = DefaultParallelConfig()
	}
	g := graph.RMAT(graph.DefaultRMAT(cfg.Scale, cfg.EdgeFactor, cfg.Seed))
	pt, sk := partition.RecursiveBisect(g, cfg.Levels, partition.Options{Seed: cfg.Seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		return nil, err
	}
	topo := cluster.NewT1(cfg.Machines)
	pl := partition.SketchPlacement(sk, topo)
	app := apps.NewNR(cfg.Iterations)
	opt := propagation.Options{LocalPropagation: true, LocalCombination: true}

	parWorkers := cfg.Workers
	if parWorkers <= 0 {
		parWorkers = runtime.GOMAXPROCS(0)
	}
	exec := func(workers int) (ParallelRun, []float64, error) {
		r := engine.New(engine.Config{Topo: topo, Workers: workers})
		start := time.Now() //lint:allow SL001 measuring real wall-clock speedup of the pool is this benchmark's purpose
		res, m, err := app.RunPropagation(r, pg, pl, opt)
		wall := time.Since(start).Seconds() //lint:allow SL001 wall-clock benchmarking; the simulated result itself stays seed-deterministic
		if err != nil {
			return ParallelRun{}, nil, err
		}
		ranks := res.([]float64)
		sum := 0.0
		for _, v := range ranks {
			sum += v
		}
		return ParallelRun{
			Workers:         workers,
			WallSeconds:     wall,
			ResponseSeconds: m.ResponseSeconds,
			NetworkBytes:    m.NetworkBytes,
			DiskBytes:       m.DiskBytes,
			TasksRun:        m.TasksRun,
			RankSum:         sum,
		}, ranks, nil
	}

	serial, serialRanks, err := exec(1)
	if err != nil {
		return nil, err
	}
	parallel, parallelRanks, err := exec(parWorkers)
	if err != nil {
		return nil, err
	}
	identical := len(serialRanks) == len(parallelRanks) &&
		serial.ResponseSeconds == parallel.ResponseSeconds &&
		serial.NetworkBytes == parallel.NetworkBytes &&
		serial.DiskBytes == parallel.DiskBytes &&
		serial.TasksRun == parallel.TasksRun
	if identical {
		for v := range serialRanks {
			if math.Float64bits(serialRanks[v]) != math.Float64bits(parallelRanks[v]) {
				identical = false
				break
			}
		}
	}
	return &ParallelResult{
		App:        "NR (PageRank)",
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Partitions: pt.P,
		Iterations: cfg.Iterations,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Serial:     serial,
		Parallel:   parallel,
		Speedup:    serial.WallSeconds / parallel.WallSeconds,
		Identical:  identical,
		Runs:       []ParallelRun{serial, parallel},
	}, nil
}

// WriteParallelJSON writes the result to path in the versioned bench report
// schema (ReportSchema), so BENCH_parallel.json records the perf trajectory
// in the form surfer-analyze -compare gates.
func WriteParallelJSON(path string, res *ParallelResult) error {
	return WriteReport(path, FromParallel(res))
}

// WriteParallel renders the comparison for the terminal.
func WriteParallel(w io.Writer, res *ParallelResult) {
	fmt.Fprintf(w, "Parallel executor: %s, %d iterations, %d vertices / %d edges, %d partitions\n",
		res.App, res.Iterations, res.Vertices, res.Edges, res.Partitions)
	fmt.Fprintf(w, "GOMAXPROCS: %d\n", res.GOMAXPROCS)
	fmt.Fprintf(w, "%-10s %12s %18s\n", "workers", "wall (s)", "virtual resp (s)")
	for _, r := range res.Runs {
		fmt.Fprintf(w, "%-10d %12.3f %18.3f\n", r.Workers, r.WallSeconds, r.ResponseSeconds)
	}
	fmt.Fprintf(w, "speedup: %.2fx, bit-identical: %v\n", res.Speedup, res.Identical)
}
