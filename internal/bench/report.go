package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The versioned bench report schema: the machine-readable output of
// surfer-bench (-json) and the input of the surfer-analyze -compare
// regression gate. Metrics are the gated numbers — deterministic,
// lower-is-better quantities of the simulated cluster (virtual seconds,
// bytes, task counts). Info carries everything else (wall-clock timings,
// speedups, rank sums): recorded for the history, never gated, because it
// is host-dependent or not lower-is-better.

// ReportSchema identifies the current bench report format. The version
// bumps on any change that would make old/new reports incomparable.
const ReportSchema = "surfer-bench/v1"

// Entry is one benchmark case's record.
type Entry struct {
	// Experiment and Case identify the entry ("parallel"/"serial",
	// "table1"/"T2(8,2)"); Compare matches entries on the pair.
	Experiment string `json:"experiment"`
	Case       string `json:"case"`
	// Metrics are gated: deterministic and lower-is-better.
	Metrics map[string]float64 `json:"metrics"`
	// Info is ungated context.
	Info map[string]float64 `json:"info,omitempty"`
}

// Report is a bench run's full machine-readable output.
type Report struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// NewReport returns an empty report carrying the current schema.
func NewReport() *Report { return &Report{Schema: ReportSchema} }

// Validate checks the schema marker and shape, so the CI gate rejects
// files from other tools (or other schema versions) loudly.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("bench: report schema %q, want %q", r.Schema, ReportSchema)
	}
	for i, e := range r.Entries {
		if e.Experiment == "" || e.Case == "" {
			return fmt.Errorf("bench: entry %d missing experiment/case", i)
		}
		if len(e.Metrics) == 0 {
			return fmt.Errorf("bench: entry %d (%s/%s) has no metrics", i, e.Experiment, e.Case)
		}
	}
	return nil
}

// WriteReport writes the report as indented JSON to path.
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads and validates a report file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one gated metric that got worse beyond the threshold.
type Regression struct {
	Experiment string  `json:"experiment"`
	Case       string  `json:"case"`
	Metric     string  `json:"metric"`
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	// Pct is the relative increase in percent (+Inf rendered as a large
	// number when Old is zero).
	Pct float64 `json:"pct"`
}

// Compare gates new against old: every metric present in both reports for
// the same experiment/case must not exceed the old value by more than
// thresholdPct percent. Returned regressions follow new's entry order with
// metric names sorted, so the output is deterministic.
func Compare(old, new *Report, thresholdPct float64) []Regression {
	type key struct{ exp, cs string }
	om := make(map[key]Entry, len(old.Entries))
	for _, e := range old.Entries {
		om[key{e.Experiment, e.Case}] = e
	}
	var regs []Regression
	for _, e := range new.Entries {
		oe, ok := om[key{e.Experiment, e.Case}]
		if !ok {
			continue
		}
		names := make([]string, 0, len(e.Metrics))
		for name := range e.Metrics {
			if _, ok := oe.Metrics[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			ov, nv := oe.Metrics[name], e.Metrics[name]
			if nv <= ov*(1+thresholdPct/100) {
				continue
			}
			pct := 0.0
			if ov > 0 {
				pct = (nv - ov) / ov * 100
			} else {
				pct = 100 * nv // old was zero; any positive value regresses
			}
			regs = append(regs, Regression{
				Experiment: e.Experiment, Case: e.Case, Metric: name,
				Old: ov, New: nv, Pct: pct,
			})
		}
	}
	return regs
}

// ---------------------------------------------------------------- adapters

// metricsOf flattens engine-level aggregates into gated report metrics.
func metricsOf(responseSec, machineSec float64, networkBytes, diskBytes int64, tasks int) map[string]float64 {
	return map[string]float64{
		"response_seconds": responseSec,
		"machine_seconds":  machineSec,
		"network_bytes":    float64(networkBytes),
		"disk_bytes":       float64(diskBytes),
		"tasks_run":        float64(tasks),
	}
}

// FromParallel converts the parallel wall-clock benchmark into the report
// schema: the simulated quantities gate, the host wall-clock goes to Info.
func FromParallel(res *ParallelResult) *Report {
	r := NewReport()
	for i, run := range res.Runs {
		// Label by role, not worker count: on a single-core host the
		// parallel run's pool is also 1 worker.
		cs := "parallel"
		if i == 0 {
			cs = "serial"
		}
		e := Entry{
			Experiment: "parallel",
			Case:       cs,
			Metrics: map[string]float64{
				"virtual_response_seconds": run.ResponseSeconds,
				"network_bytes":            float64(run.NetworkBytes),
				"disk_bytes":               float64(run.DiskBytes),
				"tasks_run":                float64(run.TasksRun),
			},
			Info: map[string]float64{
				"workers":      float64(run.Workers),
				"wall_seconds": run.WallSeconds,
				"rank_sum":     run.RankSum,
			},
		}
		if cs == "parallel" {
			e.Info["speedup"] = res.Speedup
			if res.Identical {
				e.Info["bit_identical"] = 1
			} else {
				e.Info["bit_identical"] = 0
			}
			e.Info["gomaxprocs"] = float64(res.GOMAXPROCS)
		}
		r.Entries = append(r.Entries, e)
	}
	return r
}

// FromTable1 converts partitioning-time rows (Table 1).
func FromTable1(rows []Table1Row) *Report {
	r := NewReport()
	for _, row := range rows {
		r.Entries = append(r.Entries, Entry{
			Experiment: "table1",
			Case:       row.Topology,
			Metrics: map[string]float64{
				"parmetis_seconds":  row.ParMetisSec,
				"bandwidth_seconds": row.BandwidthSec,
			},
			Info: map[string]float64{"improvement_pct": row.ImprovementPct},
		})
	}
	return r
}

// FromTables23 converts the (application, optimization level) cells behind
// Tables 2 and 3.
func FromTables23(cells []AppLevelMetrics) *Report {
	r := NewReport()
	for _, c := range cells {
		r.Entries = append(r.Entries, Entry{
			Experiment: "tables23",
			Case:       fmt.Sprintf("%s/%s", c.App, c.Level),
			Metrics: metricsOf(c.Metrics.ResponseSeconds, c.Metrics.MachineSeconds,
				c.Metrics.NetworkBytes, c.Metrics.DiskBytes, c.Metrics.TasksRun),
		})
	}
	return r
}

// Merge appends other's entries (same schema assumed).
func (r *Report) Merge(other *Report) {
	r.Entries = append(r.Entries, other.Entries...)
}
