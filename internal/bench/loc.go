package bench

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
)

// Table4Row reports the user-defined-function source line counts of one
// application under both primitives (Table 4). PaperHadoop and
// PaperPropagation reproduce the paper's reported numbers for context.
type Table4Row struct {
	App              string
	MapReduceLoC     int
	PropagationLoC   int
	PaperHadoop      int
	PaperHomegrown   int
	PaperPropagation int
}

// paperTable4 is the paper's reported Table 4, keyed by app.
var paperTable4 = map[string][3]int{
	"VDD": {24, 33, 18},
	"NR":  {147, 163, 21},
	"RS":  {152, 168, 22},
	"RLG": {131, 144, 23},
	"TC":  {157, 171, 27},
	"TFL": {171, 194, 25},
}

// udf method sets per primitive: the user-authored logic, excluding size
// accounting and associativity glue.
var (
	propagationUDFs = map[string]bool{"Init": true, "Transfer": true, "TransferVertex": true, "Combine": true, "Merge": true}
	mapreduceUDFs   = map[string]bool{"Map": true, "Reduce": true}
)

// receiver type prefixes per app within the apps package sources.
var appReceivers = map[string][2]string{
	"NR":  {"nrProgram", "nrMR"},
	"RS":  {"rsProgram", "rsMR"},
	"TC":  {"tcProgram", "tcMR"},
	"VDD": {"vddProgram", "vddMR"},
	"RLG": {"rlgProgram", "rlgMR"},
	"TFL": {"tflProgram", "tflMR"},
}

// Table4 parses the application sources in appsDir (internal/apps) and
// counts the lines of each user-defined function body.
func Table4(appsDir string) ([]Table4Row, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, appsDir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", appsDir, err)
	}
	// methodLines[recv][method] = body line count.
	methodLines := map[string]map[string]int{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil {
					continue
				}
				recv := receiverName(fn)
				if recv == "" {
					continue
				}
				start := fset.Position(fn.Pos()).Line
				end := fset.Position(fn.End()).Line
				if methodLines[recv] == nil {
					methodLines[recv] = map[string]int{}
				}
				methodLines[recv][fn.Name.Name] = end - start + 1
			}
		}
	}
	order := []string{"VDD", "NR", "RS", "RLG", "TC", "TFL"}
	var rows []Table4Row
	for _, app := range order {
		recvs := appReceivers[app]
		prop := sumMethods(methodLines[recvs[0]], propagationUDFs)
		mr := sumMethods(methodLines[recvs[1]], mapreduceUDFs)
		if prop == 0 || mr == 0 {
			return nil, fmt.Errorf("bench: no UDFs found for %s in %s", app, appsDir)
		}
		paper := paperTable4[app]
		rows = append(rows, Table4Row{
			App:              app,
			MapReduceLoC:     mr,
			PropagationLoC:   prop,
			PaperHadoop:      paper[0],
			PaperHomegrown:   paper[1],
			PaperPropagation: paper[2],
		})
	}
	return rows, nil
}

func receiverName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) != 1 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func sumMethods(methods map[string]int, want map[string]bool) int {
	total := 0
	for name, lines := range methods {
		if want[name] {
			total += lines
		}
	}
	return total
}

// FindAppsDir locates internal/apps starting from a repo-relative guess,
// for callers running from different working directories.
func FindAppsDir(candidates ...string) string {
	for _, c := range candidates {
		if matches, _ := filepath.Glob(filepath.Join(c, "*.go")); len(matches) > 0 {
			return c
		}
	}
	return "internal/apps"
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: Source code lines in user-defined functions")
	fmt.Fprintf(w, "%-22s", "Engine")
	for _, r := range rows {
		fmt.Fprintf(w, "%7s", r.App)
	}
	fmt.Fprintf(w, "\n%-22s", "MapReduce (ours)")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d", r.MapReduceLoC)
	}
	fmt.Fprintf(w, "\n%-22s", "Propagation (ours)")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d", r.PropagationLoC)
	}
	fmt.Fprintf(w, "\n%-22s", "Hadoop (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d", r.PaperHadoop)
	}
	fmt.Fprintf(w, "\n%-22s", "Homegrown MR (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d", r.PaperHomegrown)
	}
	fmt.Fprintf(w, "\n%-22s", "Propagation (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d", r.PaperPropagation)
	}
	fmt.Fprintln(w)
}
