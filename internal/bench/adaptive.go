package bench

import (
	"fmt"
	"math"
	"time"
)

// Adaptive-runtime wall-clock measurement: rerun a benchmark body until the
// relative standard error of the mean falls below a bound (or the run
// budget is exhausted), so slow-but-stable cases stop early and noisy cases
// buy more samples. Only wall-clock quantities need this — the simulated
// metrics are bit-identical across runs and are measured once.

// AdaptiveConfig bounds an adaptive measurement.
type AdaptiveConfig struct {
	// MinRuns and MaxRuns bound the sample count. Zero selects the
	// defaults (2 and 6).
	MinRuns int
	MaxRuns int
	// MaxRelErr is the convergence criterion: the standard error of the
	// mean divided by the mean. Measurement stops at the first sample
	// count >= MinRuns satisfying it. Zero selects 0.10.
	MaxRelErr float64
}

// WithDefaults fills unset fields.
func (c AdaptiveConfig) WithDefaults() AdaptiveConfig {
	if c.MinRuns <= 0 {
		c.MinRuns = 2
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 6
	}
	if c.MaxRuns < c.MinRuns {
		c.MaxRuns = c.MinRuns
	}
	if c.MaxRelErr <= 0 {
		c.MaxRelErr = 0.10
	}
	return c
}

// AdaptiveResult is one adaptively-measured wall-clock quantity.
type AdaptiveResult struct {
	// Mean is the sample mean in seconds; RelErr the relative standard
	// error of the mean at stop time (0 with a single sample).
	Mean   float64 `json:"mean_seconds"`
	RelErr float64 `json:"rel_err"`
	// Runs is the number of samples taken; Converged whether the bound was
	// met within the budget.
	Runs      int  `json:"runs"`
	Converged bool `json:"converged"`
}

func (a AdaptiveResult) String() string {
	return fmt.Sprintf("%.2fs ±%.0f%% (n=%d)", a.Mean, a.RelErr*100, a.Runs)
}

// relStdErr returns stderr(mean)/mean for a sample, 0 when undefined.
func relStdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return sd / math.Sqrt(float64(len(xs))) / math.Abs(mean)
}

// MeasureWall runs fn repeatedly per cfg and returns the adaptive result.
// fn's error aborts the measurement.
func MeasureWall(cfg AdaptiveConfig, fn func() error) (AdaptiveResult, error) {
	cfg = cfg.WithDefaults()
	var samples []float64
	for len(samples) < cfg.MaxRuns {
		start := time.Now() //lint:allow SL001 adaptive wall-clock benchmarking is this helper's purpose; simulated metrics stay deterministic
		if err := fn(); err != nil {
			return AdaptiveResult{}, err
		}
		samples = append(samples, time.Since(start).Seconds()) //lint:allow SL001 wall-clock sample of the adaptive measurement
		if len(samples) >= cfg.MinRuns && relStdErr(samples) <= cfg.MaxRelErr {
			break
		}
	}
	var sum float64
	for _, x := range samples {
		sum += x
	}
	re := relStdErr(samples)
	return AdaptiveResult{
		Mean:      sum / float64(len(samples)),
		RelErr:    re,
		Runs:      len(samples),
		Converged: re <= cfg.MaxRelErr,
	}, nil
}
