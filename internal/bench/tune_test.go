package bench

import (
	"math"
	"reflect"
	"testing"
)

func TestRelStdErr(t *testing.T) {
	if got := relStdErr(nil); got != 0 {
		t.Fatalf("relStdErr(nil) = %g, want 0", got)
	}
	if got := relStdErr([]float64{3.5}); got != 0 {
		t.Fatalf("relStdErr(single) = %g, want 0", got)
	}
	if got := relStdErr([]float64{2, 2, 2, 2}); got != 0 {
		t.Fatalf("relStdErr(constant) = %g, want 0", got)
	}
	// {1,3}: mean 2, sd sqrt(2), stderr sqrt(2)/sqrt(2)=1, relative 0.5.
	if got := relStdErr([]float64{1, 3}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("relStdErr({1,3}) = %g, want 0.5", got)
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	c := AdaptiveConfig{}.WithDefaults()
	if c.MinRuns != 2 || c.MaxRuns != 6 || c.MaxRelErr != 0.10 {
		t.Fatalf("defaults = %+v, want {2 6 0.1}", c)
	}
	// MaxRuns never drops below MinRuns.
	c = AdaptiveConfig{MinRuns: 5, MaxRuns: 3}.WithDefaults()
	if c.MaxRuns != 5 {
		t.Fatalf("MaxRuns = %d, want clamped to MinRuns 5", c.MaxRuns)
	}
}

func TestMeasureWallStopsAtMinRunsWhenStable(t *testing.T) {
	runs := 0
	res, err := MeasureWall(AdaptiveConfig{MinRuns: 2, MaxRuns: 6, MaxRelErr: 0.5}, func() error {
		runs++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != runs {
		t.Fatalf("Runs = %d but fn ran %d times", res.Runs, runs)
	}
	if res.Runs < 2 || res.Runs > 6 {
		t.Fatalf("Runs = %d, want within [2, 6]", res.Runs)
	}
}

// TestTuneDeterministic pins the determinism contract on the tuner itself:
// under the virtual objective, two searches from the same seed must produce
// identical traces and the same winner.
func TestTuneDeterministic(t *testing.T) {
	cfg := TuneConfig{
		Scale:     Scale{Vertices: 2048, Levels: 3, Machines: 8, Seed: 42, Workers: 1},
		App:       "nr",
		Objective: ObjVirtual,
		Budget:    12,
	}
	a, err := Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Best, b.Best) {
		t.Fatalf("best diverged across identical searches:\n%+v\n%+v", a.Best, b.Best)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("trace diverged across identical searches (%d vs %d evals)", len(a.Trace), len(b.Trace))
	}
	if len(a.Trace) == 0 || len(a.Trace) > cfg.Budget {
		t.Fatalf("trace has %d evals, want within (0, %d]", len(a.Trace), cfg.Budget)
	}
	// The winner can only improve on (or match) the starting point.
	if a.Best.Objective > a.Trace[0].Objective {
		t.Fatalf("best objective %.3f worse than start %.3f", a.Best.Objective, a.Trace[0].Objective)
	}
}

func TestTuneRejectsUnknownApp(t *testing.T) {
	_, err := Tune(TuneConfig{Scale: Scale{Vertices: 256, Levels: 2, Machines: 4, Seed: 1}, App: "nope"})
	if err == nil {
		t.Fatal("Tune accepted an unknown app")
	}
}
