package bench

import (
	"reflect"
	"testing"
)

// TestMultitenantDeterministic: the experiment is a pure function of its
// config — identical rows across repeated runs and across planning worker
// counts — and its report validates against the schema.
func TestMultitenantDeterministic(t *testing.T) {
	cfg := DefaultMultitenantConfig()
	cfg.Scale = TestScale()
	var ref []MultitenantRow
	for _, workers := range []int{1, 4} {
		cfg.Scale.Workers = workers
		rows, err := Multitenant(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("got %d rows, want one per policy", len(rows))
		}
		if ref == nil {
			ref = rows
			continue
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Fatalf("workers=%d rows differ:\n%+v\nvs\n%+v", workers, rows, ref)
		}
	}
	for _, row := range ref {
		if row.Makespan <= 0 || row.P50 <= 0 || row.P99 < row.P50 {
			t.Errorf("%s: implausible aggregates: %+v", row.Policy, row)
		}
		if row.Jain <= 0 || row.Jain > 1 {
			t.Errorf("%s: Jain index %g outside (0,1]", row.Policy, row.Jain)
		}
		if row.Finished == 0 {
			t.Errorf("%s: no jobs finished", row.Policy)
		}
	}
	rep := FromMultitenant(ref)
	if err := rep.Validate(); err != nil {
		t.Fatalf("multitenant report fails schema validation: %v", err)
	}
	for _, e := range rep.Entries {
		if e.Experiment != "multitenant" {
			t.Errorf("entry experiment %q", e.Experiment)
		}
		for _, k := range []string{"makespan_seconds", "p50_latency_seconds", "p99_latency_seconds", "mean_wait_seconds"} {
			if _, ok := e.Metrics[k]; !ok {
				t.Errorf("entry %s missing gated metric %s", e.Case, k)
			}
		}
		if _, ok := e.Info["jain_fairness"]; !ok {
			t.Errorf("entry %s missing jain_fairness info", e.Case)
		}
	}
}
