package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleReport() *Report {
	r := NewReport()
	r.Entries = append(r.Entries,
		Entry{
			Experiment: "parallel", Case: "serial",
			Metrics: map[string]float64{"virtual_response_seconds": 2.0, "network_bytes": 1e6},
			Info:    map[string]float64{"wall_seconds": 3.5},
		},
		Entry{
			Experiment: "tables23", Case: "NR/O4",
			Metrics: map[string]float64{"response_seconds": 1.0, "tasks_run": 64},
		},
	)
	return r
}

// TestReportRoundTrip: WriteReport → LoadReport preserves the report, and
// Load rejects files without the schema marker.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	r := sampleReport()
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", r, got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("LoadReport accepted a foreign schema")
	}
}

// TestCompare: within-threshold drift passes, past-threshold regression is
// reported (the surfer-analyze -compare exit gate rides on this), improved
// or equal metrics never trip, and Info is ignored.
func TestCompare(t *testing.T) {
	old := sampleReport()

	same := sampleReport()
	if regs := Compare(old, same, 5); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %+v", regs)
	}

	drift := sampleReport()
	drift.Entries[0].Metrics["virtual_response_seconds"] = 2.08 // +4%, under 5%
	drift.Entries[0].Info["wall_seconds"] = 99                  // Info is never gated
	if regs := Compare(old, drift, 5); len(regs) != 0 {
		t.Fatalf("within-threshold drift regressed: %+v", regs)
	}

	regressed := sampleReport()
	regressed.Entries[0].Metrics["virtual_response_seconds"] = 2.2 // +10%
	regressed.Entries[1].Metrics["tasks_run"] = 80                 // +25%
	regs := Compare(old, regressed, 5)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %+v", regs)
	}
	if regs[0].Metric != "virtual_response_seconds" || regs[1].Metric != "tasks_run" {
		t.Fatalf("unexpected regression order: %+v", regs)
	}
	if regs[0].Pct < 9.9 || regs[0].Pct > 10.1 {
		t.Fatalf("bad pct: %+v", regs[0])
	}

	improved := sampleReport()
	improved.Entries[0].Metrics["virtual_response_seconds"] = 1.5
	if regs := Compare(old, improved, 5); len(regs) != 0 {
		t.Fatalf("improvement regressed: %+v", regs)
	}
}

// TestFromParallel: the adapter carries the simulated quantities as gated
// metrics and the host wall-clock as ungated info, and the result validates.
func TestFromParallel(t *testing.T) {
	res := &ParallelResult{
		GOMAXPROCS: 8,
		Speedup:    2.5,
		Identical:  true,
		Runs: []ParallelRun{
			{Workers: 1, WallSeconds: 10, ResponseSeconds: 4, NetworkBytes: 100, TasksRun: 7, RankSum: 1},
			{Workers: 8, WallSeconds: 4, ResponseSeconds: 4, NetworkBytes: 100, TasksRun: 7, RankSum: 1},
		},
	}
	r := FromParallel(res)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 2 || r.Entries[0].Case != "serial" || r.Entries[1].Case != "parallel" {
		t.Fatalf("unexpected entries: %+v", r.Entries)
	}
	if r.Entries[0].Metrics["virtual_response_seconds"] != 4 {
		t.Fatalf("serial metrics: %+v", r.Entries[0].Metrics)
	}
	if _, gated := r.Entries[0].Metrics["wall_seconds"]; gated {
		t.Fatal("wall_seconds must not be a gated metric")
	}
	if r.Entries[1].Info["speedup"] != 2.5 || r.Entries[1].Info["bit_identical"] != 1 {
		t.Fatalf("parallel info: %+v", r.Entries[1].Info)
	}
}
