package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
)

// AblationRow isolates the contribution of one design choice for one
// application on one topology.
type AblationRow struct {
	Topology string
	App      string
	Variant  string
	Metrics  engine.Metrics
}

// Ablation decomposes the end-to-end gains of DESIGN.md's called-out
// choices:
//
//   - the two local optimizations, separately and together (placement held
//     at balanced-random so only the optimizations vary);
//   - the three placements — unbalanced-random (the literal "random
//     available machine"), balanced-random (load-balance only) and the
//     sketch mapping (load balance + bandwidth awareness) — with both
//     local optimizations on.
//
// Running it on T1 and T2(2,1) separates intra-machine locality from pod
// locality.
func Ablation(s Scale) ([]AblationRow, error) {
	g := s.MakeGraph()
	topos := []*cluster.Topology{
		cluster.NewT1(s.Machines),
		cluster.NewT2(cluster.T2Config{Machines: s.Machines, Pods: 2, Levels: 1}),
	}
	workloads := []apps.App{apps.NewNR(3), apps.NewTFL(apps.DefaultSelectRatio)}
	var rows []AblationRow
	for _, topo := range topos {
		d, err := NewDeploymentFor(s, topo, g)
		if err != nil {
			return nil, err
		}
		unbalanced := partition.UnbalancedRandomPlacement(d.PG.Part.P, topo, s.Seed)
		for _, app := range workloads {
			run := func(variant string, pl *partition.Placement, opt propagation.Options) error {
				_, m, err := app.RunPropagation(d.Runner(), d.PG, pl, opt)
				if err != nil {
					return fmt.Errorf("%s/%s/%s: %w", topo.Name(), app.Name(), variant, err)
				}
				rows = append(rows, AblationRow{Topology: topo.Name(), App: app.Name(), Variant: variant, Metrics: m})
				return nil
			}
			// Optimization split (balanced-random placement).
			for _, v := range []struct {
				name string
				opt  propagation.Options
			}{
				{"opts:none", propagation.Options{}},
				{"opts:local-prop", propagation.Options{LocalPropagation: true}},
				{"opts:local-comb", propagation.Options{LocalCombination: true}},
				{"opts:both", propagation.Options{LocalPropagation: true, LocalCombination: true}},
			} {
				if err := run(v.name, d.PlacePM, v.opt); err != nil {
					return nil, err
				}
			}
			// Placement split (both optimizations on).
			both := propagation.Options{LocalPropagation: true, LocalCombination: true}
			if err := run("place:unbalanced", unbalanced, both); err != nil {
				return nil, err
			}
			if err := run("place:balanced", d.PlacePM, both); err != nil {
				return nil, err
			}
			if err := run("place:sketch", d.PlaceBA, both); err != nil {
				return nil, err
			}
			// Tree aggregation (extension), on the spread placement
			// where cross-pod traffic is heaviest. NR only: TFL's
			// distinct-union merge barely shrinks bytes.
			if app.Name() == "NR" && topo.NumPods() > 1 {
				nr := apps.NewNR(3)
				prog := nrTreeProgram(d.Graph)
				st := propagation.NewState[float64](d.PG, prog)
				st, m, err := propagation.RunIterationsTree(d.Runner(), d.PG, d.PlacePM, prog, st, both, nr.Iterations())
				if err != nil {
					return nil, err
				}
				_ = st
				rows = append(rows, AblationRow{Topology: topo.Name(), App: app.Name(), Variant: "tree-aggregation", Metrics: m})
			}
		}
	}
	return rows, nil
}

// nrTreeProgram builds a PageRank program for the tree-aggregation row.
func nrTreeProgram(g *graph.Graph) propagation.Program[float64] {
	return nrProgramFor(g)
}

// WriteAblation renders the ablation rows.
func WriteAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation: contribution of each design choice (propagation)")
	fmt.Fprintf(w, "%-10s %-5s %-18s %12s %12s %12s\n",
		"Topology", "App", "Variant", "Resp (s)", "Net (MB)", "Disk (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-5s %-18s %12.4f %12.2f %12.2f\n",
			r.Topology, r.App, r.Variant,
			r.Metrics.ResponseSeconds,
			float64(r.Metrics.NetworkBytes)/1e6,
			float64(r.Metrics.DiskBytes)/1e6)
	}
}
