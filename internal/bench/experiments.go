package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one topology column of Table 1.
type Table1Row struct {
	Topology       string
	ParMetisSec    float64
	BandwidthSec   float64
	ImprovementPct float64
}

// Table1 measures the elapsed time of distributed partitioning under each
// topology for the oblivious baseline and the bandwidth-aware algorithm.
func Table1(s Scale) ([]Table1Row, error) {
	g := s.MakeGraph()
	cm := partition.DefaultCostModel()
	var rows []Table1Row
	for _, topo := range s.Topologies() {
		// The oblivious baseline's cost depends on which random machine
		// subsets its recursion happens to draw; average several seeds so
		// the row reflects the expected behaviour, not one lucky draw.
		const pmTrials = 5
		var tPM float64
		for trial := int64(0); trial < pmTrials; trial++ {
			pm := partition.ParMetisLike(g, topo, s.Levels, partition.Options{Seed: s.Seed + trial})
			tPM += cm.PartitioningTime(pm, topo, true)
		}
		tPM /= pmTrials
		ba := partition.BandwidthAware(g, topo, s.Levels, partition.Options{Seed: s.Seed})
		tBA := cm.PartitioningTime(ba, topo, false)
		rows = append(rows, Table1Row{
			Topology:       topo.Name(),
			ParMetisSec:    tPM,
			BandwidthSec:   tBA,
			ImprovementPct: 100 * (tPM - tBA) / tPM,
		})
	}
	return rows, nil
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Elapsed time of partitioning on different topologies (seconds)")
	fmt.Fprintf(w, "%-16s", "Topology")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s", r.Topology)
	}
	fmt.Fprintf(w, "\n%-16s", "ParMetis-like")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.2f", r.ParMetisSec)
	}
	fmt.Fprintf(w, "\n%-16s", "Bandwidth aware")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.2f", r.BandwidthSec)
	}
	fmt.Fprintf(w, "\n%-16s", "Improvement %")
	for _, r := range rows {
		fmt.Fprintf(w, "%11.1f%%", r.ImprovementPct)
	}
	fmt.Fprintln(w)
}

// ------------------------------------------------------------ Tables 2-3

// AppLevelMetrics is one (application, optimization level) cell of Tables
// 2 and 3.
type AppLevelMetrics struct {
	App     string
	Level   OptLevel
	Metrics engine.Metrics
}

// Tables23 runs every application at every optimization level on T1.
func Tables23(s Scale) ([]AppLevelMetrics, error) {
	topo := cluster.NewT1(s.Machines)
	d, err := NewDeployment(s, topo)
	if err != nil {
		return nil, err
	}
	var out []AppLevelMetrics
	for _, app := range apps.All() {
		for _, lvl := range []OptLevel{O1, O2, O3, O4} {
			m, err := d.RunApp(app, lvl)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", app.Name(), lvl, err)
			}
			out = append(out, AppLevelMetrics{App: app.Name(), Level: lvl, Metrics: m})
		}
	}
	return out, nil
}

// WriteTable2 renders response and total machine time.
func WriteTable2(w io.Writer, cells []AppLevelMetrics) {
	fmt.Fprintln(w, "Table 2: Response time and total machine time of applications on T1 (seconds)")
	writeAppLevelTable(w, cells, func(m engine.Metrics) (float64, float64) {
		return m.ResponseSeconds, m.MachineSeconds
	}, "Res.", "Total.", "%10.3f")
}

// WriteTable3 renders network and disk I/O.
func WriteTable3(w io.Writer, cells []AppLevelMetrics) {
	fmt.Fprintln(w, "Table 3: Disk and network I/O of applications on T1 (MB)")
	writeAppLevelTable(w, cells, func(m engine.Metrics) (float64, float64) {
		return float64(m.NetworkBytes) / 1e6, float64(m.DiskBytes) / 1e6
	}, "Net.", "Disk.", "%10.2f")
}

func writeAppLevelTable(w io.Writer, cells []AppLevelMetrics, pick func(engine.Metrics) (float64, float64), h1, h2, f string) {
	order := []string{"VDD", "RS", "NR", "RLG", "TC", "TFL"}
	fmt.Fprintf(w, "%-4s", "")
	for _, app := range order {
		fmt.Fprintf(w, "%10s%10s", app+" "+h1, h2)
	}
	fmt.Fprintln(w)
	for _, lvl := range []OptLevel{O1, O2, O3, O4} {
		fmt.Fprintf(w, "%-4s", lvl)
		for _, app := range order {
			for _, c := range cells {
				if c.App == app && c.Level == lvl {
					a, b := pick(c.Metrics)
					fmt.Fprintf(w, f, a)
					fmt.Fprintf(w, f, b)
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------- Table 5

// Table5Row is one partition-count column of Table 5.
type Table5Row struct {
	Partitions    int
	GranularityMB float64
	IerOursPct    float64
	IerRandomPct  float64
}

// Table5 sweeps the partition count and reports inner-edge ratios for the
// multilevel partitioner versus random partitioning.
func Table5(s Scale) ([]Table5Row, error) {
	g := s.MakeGraph()
	var rows []Table5Row
	for levels := s.Levels + 1; levels >= s.Levels-2 && levels >= 1; levels-- {
		p := 1 << levels
		pt, _ := partition.RecursiveBisect(g, levels, partition.Options{Seed: s.Seed})
		rnd := partition.Random(g, p, s.Seed)
		rows = append(rows, Table5Row{
			Partitions:    p,
			GranularityMB: float64(g.SizeBytes()) / float64(p) / 1e6,
			IerOursPct:    100 * partition.InnerEdgeRatio(g, pt),
			IerRandomPct:  100 * partition.InnerEdgeRatio(g, rnd),
		})
	}
	return rows, nil
}

// WriteTable5 renders Table 5.
func WriteTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: Inner edge ratios with different partition sizes")
	fmt.Fprintf(w, "%-28s", "Number of partitions")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d", r.Partitions)
	}
	fmt.Fprintf(w, "\n%-28s", "Partition granularity (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.2f", r.GranularityMB)
	}
	fmt.Fprintf(w, "\n%-28s", "ier of our partitioning (%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.1f", r.IerOursPct)
	}
	fmt.Fprintf(w, "\n%-28s", "ier of random (%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.1f", r.IerRandomPct)
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------- Fig 6

// Fig6Row reports the bandwidth-aware layout's improvement for one
// application on one topology (O3 vs O4, both with local optimizations).
type Fig6Row struct {
	Topology       string
	App            string
	ObliviousSec   float64
	AwareSec       float64
	ImprovementPct float64
}

// Fig6 measures the impact of bandwidth-aware partitioning on the non-flat
// topologies.
func Fig6(s Scale) ([]Fig6Row, error) {
	g := s.MakeGraph()
	var rows []Fig6Row
	for _, topo := range s.Topologies() {
		if topo.Name() == "T1" {
			continue
		}
		d, err := NewDeploymentFor(s, topo, g)
		if err != nil {
			return nil, err
		}
		for _, app := range []apps.App{apps.NewNR(3), apps.NewTFL(apps.DefaultSelectRatio)} {
			m3, err := d.RunApp(app, O3)
			if err != nil {
				return nil, err
			}
			m4, err := d.RunApp(app, O4)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6Row{
				Topology:       topo.Name(),
				App:            app.Name(),
				ObliviousSec:   m3.ResponseSeconds,
				AwareSec:       m4.ResponseSeconds,
				ImprovementPct: 100 * (m3.ResponseSeconds - m4.ResponseSeconds) / m3.ResponseSeconds,
			})
		}
	}
	return rows, nil
}

// WriteFig6 renders Figure 6.
func WriteFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: Impact of bandwidth aware partitioning on different topologies")
	fmt.Fprintf(w, "%-10s %-5s %14s %14s %12s\n", "Topology", "App", "Oblivious (s)", "Aware (s)", "Improvement")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-5s %14.3f %14.3f %11.1f%%\n", r.Topology, r.App, r.ObliviousSec, r.AwareSec, r.ImprovementPct)
	}
}

// ---------------------------------------------------------------- Fig 7

// Fig7Row compares the two primitives for one application on T1.
type Fig7Row struct {
	App             string
	MRSec           float64
	PropSec         float64
	Speedup         float64
	MRNetMB         float64
	PropNetMB       float64
	NetReductionPct float64
}

// Fig7 compares MapReduce against fully optimized propagation (O4).
func Fig7(s Scale) ([]Fig7Row, error) {
	topo := cluster.NewT1(s.Machines)
	d, err := NewDeployment(s, topo)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, app := range apps.All() {
		mm, err := d.RunAppMR(app)
		if err != nil {
			return nil, err
		}
		mp, err := d.RunApp(app, O4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			App:             app.Name(),
			MRSec:           mm.ResponseSeconds,
			PropSec:         mp.ResponseSeconds,
			Speedup:         mm.ResponseSeconds / mp.ResponseSeconds,
			MRNetMB:         float64(mm.NetworkBytes) / 1e6,
			PropNetMB:       float64(mp.NetworkBytes) / 1e6,
			NetReductionPct: 100 * float64(mm.NetworkBytes-mp.NetworkBytes) / float64(mm.NetworkBytes),
		})
	}
	return rows, nil
}

// WriteFig7 renders Figure 7.
func WriteFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: Performance comparison between MapReduce and P-Surfer on T1")
	fmt.Fprintf(w, "%-5s %12s %12s %9s %12s %12s %10s\n", "App", "MR (s)", "Prop (s)", "Speedup", "MR net MB", "Prop net MB", "Net -%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %12.3f %12.3f %8.1fx %12.2f %12.2f %9.1f%%\n",
			r.App, r.MRSec, r.PropSec, r.Speedup, r.MRNetMB, r.PropNetMB, r.NetReductionPct)
	}
}

// ---------------------------------------------------------------- Fig 9

// Fig9Row is one delay factor of the cross-pod sweep.
type Fig9Row struct {
	DelayFactor    float64
	ObliviousSec   float64
	AwareSec       float64
	ImprovementPct float64
}

// Fig9 sweeps the simulated cross-pod delay on T2(2,1) running NR.
func Fig9(s Scale) ([]Fig9Row, error) {
	g := s.MakeGraph()
	var rows []Fig9Row
	for _, factor := range []float64{2, 4, 8, 16, 32, 64, 128} {
		topo := cluster.NewT2(cluster.T2Config{
			Machines: s.Machines, Pods: 2, Levels: 1, TopFactor: factor,
		})
		d, err := NewDeploymentFor(s, topo, g)
		if err != nil {
			return nil, err
		}
		app := apps.NewNR(3)
		m3, err := d.RunApp(app, O3)
		if err != nil {
			return nil, err
		}
		m4, err := d.RunApp(app, O4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			DelayFactor:    factor,
			ObliviousSec:   m3.ResponseSeconds,
			AwareSec:       m4.ResponseSeconds,
			ImprovementPct: 100 * (m3.ResponseSeconds - m4.ResponseSeconds) / m3.ResponseSeconds,
		})
	}
	return rows, nil
}

// WriteFig9 renders Figure 9.
func WriteFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: Impact of cross-pod delay factor for NR on T2(2,1)")
	fmt.Fprintf(w, "%-8s %14s %14s %12s\n", "Delay", "Oblivious (s)", "Aware (s)", "Improvement")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8.0f %14.3f %14.3f %11.1f%%\n", r.DelayFactor, r.ObliviousSec, r.AwareSec, r.ImprovementPct)
	}
}

// ---------------------------------------------------------------- Fig 10

// Fig10Result summarizes the fault-tolerance experiment.
type Fig10Result struct {
	NormalSec     float64
	RecoveredSec  float64
	OverheadPct   float64
	Recoveries    int
	KilledMachine cluster.MachineID
	KillAtSec     float64
	// Timeline is the disk-I/O rate series of the recovered run.
	Timeline []engine.IOSample
}

// Fig10 runs NR, kills one slave mid-run and reports the recovery overhead
// and the disk-I/O timeline. The experiment designs its own kill, so
// scale-level Failures are ignored here; transient faults (Scale.Faults)
// apply to the baseline and the killed runs alike.
func Fig10(s Scale) (*Fig10Result, error) {
	s.Failures = nil
	topo := cluster.NewT1(s.Machines)
	d, err := NewDeployment(s, topo)
	if err != nil {
		return nil, err
	}
	app := apps.NewNR(3)
	// Baseline.
	base, err := d.RunApp(app, O4)
	if err != nil {
		return nil, err
	}
	// Kill the most loaded machine (largest partitions — with power-law
	// hubs the critical path runs through it) mid-run. A kill landing in
	// the gap between two stages reassigns tasks before dispatch instead
	// of re-executing them, so probe kill times until one interrupts a
	// running task.
	load := make(map[cluster.MachineID]int64)
	for p, m := range d.PlaceBA.MachineOf {
		load[m] += d.PG.Parts[p].Bytes
	}
	victim := d.PlaceBA.MachineOf[0]
	for m, b := range load {
		if b > load[victim] || (b == load[victim] && m < victim) {
			victim = m
		}
	}
	replicas := storage.PlaceReplicas(d.PlaceBA, topo, s.Seed)
	// Kill times are probed as fractions of the span in which tasks
	// actually run. Under a transient-fault schedule the baseline response
	// can be dominated by retry stalls (a dropped transfer holds the stage
	// while no task runs), so probe against a fault-free reference instead.
	probeResp := base.ResponseSeconds
	if !s.Faults.Empty() {
		clean := engine.New(engine.Config{Topo: topo, Workers: s.Workers})
		_, cm, err := app.RunPropagation(clean, d.PG, d.PlaceBA, d.Options(O4))
		if err != nil {
			return nil, err
		}
		probeResp = cm.ResponseSeconds
	}
	var m engine.Metrics
	var r *engine.Runner
	killAt := probeResp / 3
	found := false
	for _, frac := range []float64{0.05, 0.15, 0.25, 1.0 / 3, 0.45, 0.55, 0.65, 0.75} {
		cand := engine.New(engine.Config{
			Topo:              topo,
			Replicas:          replicas,
			Failures:          []engine.Failure{{Machine: victim, At: probeResp * frac}},
			HeartbeatInterval: probeResp / 20,
			Faults:            s.Faults,
			Retry:             s.Retry,
			Speculation:       s.Speculation,
		})
		_, cm, err := app.RunPropagation(cand, d.PG, d.PlaceBA, d.Options(O4))
		if err != nil {
			return nil, err
		}
		// Keep the probe with the largest recovery impact: killing an
		// idle machine between stages shows nothing, killing a loaded one
		// mid-task shows the re-execution cost (the paper kills a slave
		// actively serving the job).
		if cm.Recoveries > 0 && (!found || cm.ResponseSeconds > m.ResponseSeconds) {
			found = true
			m, r = cm, cand
			killAt = probeResp * frac
		}
	}
	if !found {
		return nil, fmt.Errorf("bench: failure injection produced no recoveries at any probed time")
	}
	width := m.ResponseSeconds / 40
	return &Fig10Result{
		NormalSec:     base.ResponseSeconds,
		RecoveredSec:  m.ResponseSeconds,
		OverheadPct:   100 * (m.ResponseSeconds - base.ResponseSeconds) / base.ResponseSeconds,
		Recoveries:    m.Recoveries,
		KilledMachine: victim,
		KillAtSec:     killAt,
		Timeline:      r.Timeline().Buckets(width, m.ResponseSeconds),
	}, nil
}

// WriteFig10 renders Figure 10.
func WriteFig10(w io.Writer, res *Fig10Result) {
	fmt.Fprintln(w, "Figure 10: Fault tolerance for NR (one slave killed mid-run)")
	fmt.Fprintf(w, "normal run:    %.3f s\n", res.NormalSec)
	fmt.Fprintf(w, "with failure:  %.3f s (machine %d killed at %.3f s, %d task recoveries)\n",
		res.RecoveredSec, res.KilledMachine, res.KillAtSec, res.Recoveries)
	fmt.Fprintf(w, "overhead:      %.1f%%\n", res.OverheadPct)
	fmt.Fprintln(w, "disk I/O rate over time (MB per bucket):")
	for _, s := range res.Timeline {
		bars := int(float64(s.DiskBytes) / 1e6 / 4)
		if bars > 60 {
			bars = 60
		}
		fmt.Fprintf(w, "  t=%8.3f %8.2f ", s.Time, float64(s.DiskBytes)/1e6)
		for i := 0; i < bars; i++ {
			fmt.Fprint(w, "#")
		}
		fmt.Fprintln(w)
	}
}

// ------------------------------------------------------------ Figs 11-12

// ScaleRow is one cluster size of the scalability sweep.
type ScaleRow struct {
	Machines int
	Vertices int
	PropSec  float64
	MRSec    float64
	Speedup  float64
}

// Fig11And12 grows machines and graph together (8→Machines) and reports
// P-Surfer and MapReduce response times for NR.
func Fig11And12(s Scale) ([]ScaleRow, error) {
	var rows []ScaleRow
	for machines := 8; machines <= s.Machines; machines += 8 {
		sub := s
		sub.Machines = machines
		sub.Vertices = s.Vertices * machines / s.Machines
		topo := cluster.NewT1(machines)
		d, err := NewDeployment(sub, topo)
		if err != nil {
			return nil, err
		}
		app := apps.NewNR(3)
		mp, err := d.RunApp(app, O4)
		if err != nil {
			return nil, err
		}
		mm, err := d.RunAppMR(app)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{
			Machines: machines,
			Vertices: sub.Vertices,
			PropSec:  mp.ResponseSeconds,
			MRSec:    mm.ResponseSeconds,
			Speedup:  mm.ResponseSeconds / mp.ResponseSeconds,
		})
	}
	return rows, nil
}

// WriteFig11And12 renders Figures 11 and 12.
func WriteFig11And12(w io.Writer, rows []ScaleRow) {
	fmt.Fprintln(w, "Figures 11-12: Scalability of NR with machines and graph grown together")
	fmt.Fprintf(w, "%-9s %10s %14s %14s %9s\n", "Machines", "Vertices", "P-Surfer (s)", "MapReduce (s)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9d %10d %14.3f %14.3f %8.1fx\n", r.Machines, r.Vertices, r.PropSec, r.MRSec, r.Speedup)
	}
}

// ---------------------------------------------------------- §6.3 cascade

// CascadeResult summarizes the multi-iteration cascaded propagation study.
type CascadeResult struct {
	Iterations     int
	VkRatioPct     float64 // fraction of vertices in V_k, k >= 2
	MinDiameter    int
	PlainSec       float64
	CascadedSec    float64
	TimeSavingPct  float64
	PlainDiskMB    float64
	CascadedDiskMB float64
	DiskSavingPct  float64
}

// Cascade runs NR for several iterations with and without cascading.
//
// Cascading pays off only when some vertices sit several hops away from any
// cross-partition in-edge ("the performance improvement of cascaded
// propagation highly depends on the structure of the graph", §6.3). The
// hub-overlay social graph has essentially no such vertices, so this
// experiment uses the paper's pure stitched small-world generator with a
// low rewire ratio, where V_k (k>=2) is materially populated.
func Cascade(s Scale, iterations int) (*CascadeResult, error) {
	topo := cluster.NewT1(s.Machines)
	swCfg := graph.DefaultSmallWorld(s.Vertices, s.Seed)
	swCfg.RewireRatio = 0.01
	swCfg.Beta = 0.05
	g := graph.SmallWorld(swCfg)
	d, err := NewDeploymentFor(s, topo, g)
	if err != nil {
		return nil, err
	}
	ci := propagation.AnalyzeCascade(d.PG)
	prog := nrProgramFor(d.Graph)
	opt := d.Options(O4)

	stA := propagation.NewState[float64](d.PG, prog)
	_, plain, err := propagation.RunIterations(d.Runner(), d.PG, d.PlaceBA, prog, stA, opt, iterations)
	if err != nil {
		return nil, err
	}
	stB := propagation.NewState[float64](d.PG, prog)
	_, casc, err := propagation.RunCascaded(d.Runner(), d.PG, d.PlaceBA, prog, stB, opt, iterations, ci)
	if err != nil {
		return nil, err
	}
	return &CascadeResult{
		Iterations:     iterations,
		VkRatioPct:     100 * ci.VkRatio(2),
		MinDiameter:    ci.MinDiameter,
		PlainSec:       plain.ResponseSeconds,
		CascadedSec:    casc.ResponseSeconds,
		TimeSavingPct:  100 * (plain.ResponseSeconds - casc.ResponseSeconds) / plain.ResponseSeconds,
		PlainDiskMB:    float64(plain.DiskBytes) / 1e6,
		CascadedDiskMB: float64(casc.DiskBytes) / 1e6,
		DiskSavingPct:  100 * float64(plain.DiskBytes-casc.DiskBytes) / float64(plain.DiskBytes),
	}, nil
}

// WriteCascade renders the cascaded propagation study.
func WriteCascade(w io.Writer, res *CascadeResult) {
	fmt.Fprintln(w, "Cascaded propagation (NR, §6.3 multi-iteration study)")
	fmt.Fprintf(w, "iterations: %d   V_k (k>=2) ratio: %.1f%%   d_min: %d\n", res.Iterations, res.VkRatioPct, res.MinDiameter)
	fmt.Fprintf(w, "response:  plain %.3f s   cascaded %.3f s   saving %.1f%%\n", res.PlainSec, res.CascadedSec, res.TimeSavingPct)
	fmt.Fprintf(w, "disk I/O:  plain %.2f MB  cascaded %.2f MB  saving %.1f%%\n", res.PlainDiskMB, res.CascadedDiskMB, res.DiskSavingPct)
}

// nrProgramFor builds the NR propagation program outside the apps package
// (the cascade study needs direct state control).
func nrProgramFor(g *graph.Graph) propagation.Program[float64] {
	return &cascNR{g: g, n: float64(g.NumVertices())}
}

type cascNR struct {
	g *graph.Graph
	n float64
}

func (p *cascNR) Init(graph.VertexID) float64 { return 1 / p.n }
func (p *cascNR) Transfer(src graph.VertexID, rank float64, dst graph.VertexID, emit propagation.Emit[float64]) {
	emit(dst, rank*0.85/float64(p.g.OutDegree(src)))
}
func (p *cascNR) Combine(_ graph.VertexID, _ float64, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum + 0.15/p.n
}
func (p *cascNR) Bytes(float64) int64 { return 8 }
func (p *cascNR) Associative() bool   { return true }
func (p *cascNR) Merge(_ graph.VertexID, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum
}
