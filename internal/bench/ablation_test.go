package bench

import (
	"strings"
	"testing"
)

func TestAblationShapes(t *testing.T) {
	rows, err := Ablation(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	// 2 topologies x 2 apps x 7 variants, plus the NR tree-aggregation
	// row on the multi-pod topology.
	if len(rows) != 29 {
		t.Fatalf("rows = %d, want 29", len(rows))
	}
	for _, r := range rows {
		if r.Variant == "tree-aggregation" && (r.Topology != "T2(2,1)" || r.App != "NR") {
			t.Fatalf("unexpected tree-aggregation row: %+v", r)
		}
	}
	get := func(topo, app, variant string) AblationRow {
		for _, r := range rows {
			if r.Topology == topo && r.App == app && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("missing row %s/%s/%s", topo, app, variant)
		return AblationRow{}
	}
	for _, topo := range []string{"T1", "T2(2,1)"} {
		for _, app := range []string{"NR", "TFL"} {
			none := get(topo, app, "opts:none").Metrics
			lp := get(topo, app, "opts:local-prop").Metrics
			lc := get(topo, app, "opts:local-comb").Metrics
			both := get(topo, app, "opts:both").Metrics
			// Local propagation reduces disk and leaves network alone.
			if lp.DiskBytes >= none.DiskBytes {
				t.Errorf("%s/%s: local-prop disk %d >= none %d", topo, app, lp.DiskBytes, none.DiskBytes)
			}
			if lp.NetworkBytes != none.NetworkBytes {
				t.Errorf("%s/%s: local-prop changed network", topo, app)
			}
			// Local combination reduces network.
			if lc.NetworkBytes >= none.NetworkBytes {
				t.Errorf("%s/%s: local-comb net %d >= none %d", topo, app, lc.NetworkBytes, none.NetworkBytes)
			}
			// Both together dominate each alone on disk+network combined.
			if both.DiskBytes > lp.DiskBytes || both.NetworkBytes > lc.NetworkBytes {
				t.Errorf("%s/%s: both not cumulative", topo, app)
			}
			// Placement split. For NR (traffic spread evenly), load
			// balance wins over collision-prone random placement; for
			// hub-heavy TFL, collisions can co-locate heavy partition
			// pairs and invert the ordering, so only NR is asserted.
			unb := get(topo, app, "place:unbalanced").Metrics
			bal := get(topo, app, "place:balanced").Metrics
			if app == "NR" && bal.ResponseSeconds >= unb.ResponseSeconds {
				t.Errorf("%s/%s: balanced %.4f >= unbalanced %.4f", topo, app, bal.ResponseSeconds, unb.ResponseSeconds)
			}
			if topo == "T2(2,1)" {
				// Pod locality: the sketch mapping must beat the balanced
				// random spread once the network is uneven.
				sk := get(topo, app, "place:sketch").Metrics
				if sk.ResponseSeconds >= bal.ResponseSeconds {
					t.Errorf("%s/%s: sketch %.4f >= balanced %.4f", topo, app, sk.ResponseSeconds, bal.ResponseSeconds)
				}
			}
		}
	}
	var sb strings.Builder
	WriteAblation(&sb, rows)
	if !strings.Contains(sb.String(), "place:sketch") {
		t.Error("renderer missing variants")
	}
}
