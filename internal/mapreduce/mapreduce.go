// Package mapreduce is Surfer's second primitive (§3.1): a home-grown
// MapReduce over the partitioned graph. Map takes a whole graph partition as
// input (so developers can hand-roll partition-level data reduction), but
// the shuffle between Map and Reduce is ordinary hash partitioning —
// oblivious to graph partitions and to the machines that own the
// destination vertices. That obliviousness is exactly what propagation
// removes, and what the Figure 7 comparison measures.
package mapreduce

import (
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// Key constrains MapReduce keys to integer-like types so the shuffle can
// hash them deterministically.
type Key interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// Program is the user-defined logic of a MapReduce application on the
// partitioned graph.
type Program[K Key, V any, R any] interface {
	// Map processes one partition and emits key/value pairs. The graph
	// gives access to the adjacency lists of the partition's vertices.
	Map(pi *storage.PartInfo, g *graph.Graph, emit func(K, V))
	// Reduce folds all values of one key into a result.
	Reduce(key K, values []V) R
	// PairBytes reports the serialized size of one key/value pair.
	PairBytes(k K, v V) int64
	// ResultBytes reports the serialized size of one reduce output.
	ResultBytes(r R) int64
}

// Options configures an execution.
type Options struct {
	// StatePerVertexBytes charges extra Map-side disk reads for
	// application state stored alongside the partition (e.g. PageRank
	// ranks).
	StatePerVertexBytes int64
	// ComputePerPair is CPU seconds per emitted pair (Map) and per
	// folded value (Reduce). Zero selects a default matching the
	// propagation cost constants.
	ComputePerPair float64
	// JobName labels the engine job in trace output; empty means
	// "mapreduce".
	JobName string
}

func (o Options) computePerPair() float64 {
	if o.ComputePerPair == 0 {
		// Matches propagation.DefaultCostParams: the simulated system is
		// I/O-bound like the paper's deployment.
		return 20e-9
	}
	return o.ComputePerPair
}

// Combiner is an optional Program extension: when implemented, the values
// a map task emits for the same key are folded map-side before the shuffle
// (Google MapReduce's combiner [5]), shrinking the map output and the
// network traffic for associative reductions.
type Combiner[K Key, V any] interface {
	CombineValues(key K, values []V) V
}

// hashKey is the shuffle's hash partitioner.
func hashKey[K Key](k K, mod int) int {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return int(h>>33) % mod
}

// shuffled is one entry of a map task's output log: the pair plus its
// destination reducer. Map tasks run in parallel and each fills only its
// own log; the shuffle then replays the logs in map-task index order, so
// every reducer sees its values in the exact sequence a serial run
// produces.
type shuffled[K Key, V any] struct {
	key K
	val V
	red int
}

// kv is one key/value pair of a grouping log.
type kv[K Key, V any] struct {
	key K
	val V
}

// groupSorted sorts an index permutation of the log stably by key (ties
// break on log position, which makes the unstable sort stable) and calls fn
// once per distinct key, ascending, with that key's values in log order.
// vals is a reusable gather buffer; fn must not retain it. This replaces
// per-entry hash-map grouping on the shuffle's hot path: one index sort
// groups the whole log without hashing, and without moving the (possibly
// wide) values during sorting.
func groupSorted[K Key, V any](log []kv[K, V], idx []int32, vals []V, fn func(k K, vals []V)) {
	idx = idx[:0]
	for j := range log {
		idx = append(idx, int32(j))
	}
	slices.SortFunc(idx, func(a, b int32) int {
		ka, kb := log[a].key, log[b].key
		switch {
		case ka < kb:
			return -1
		case kb < ka:
			return 1
		default:
			return int(a - b)
		}
	})
	for s := 0; s < len(idx); {
		k := log[idx[s]].key
		vals = vals[:0]
		e := s
		for ; e < len(idx) && log[idx[e]].key == k; e++ {
			vals = append(vals, log[idx[e]].val)
		}
		s = e
		fn(k, vals)
	}
}

// Run executes the MapReduce job on the simulated cluster and returns the
// reduce results keyed by K. The number of reduce tasks equals the number
// of partitions; reducers are spread round-robin over machines, reflecting
// hash shuffling's obliviousness to data placement.
func Run[K Key, V any, R any](r *engine.Runner, pg *storage.PartitionedGraph, pl *partition.Placement, prog Program[K, V, R], opt Options) (map[K]R, engine.Metrics, error) {
	if pl.NumPartitions() != pg.Part.P {
		return nil, engine.Metrics{}, fmt.Errorf("mapreduce: placement covers %d partitions, graph has %d", pl.NumPartitions(), pg.Part.P)
	}
	p := pg.Part.P
	numMachines := r.NumMachines()
	reducers := p

	// Semantic map phase with exact shuffle accounting. Map bodies run in
	// parallel over the runner's pool; each task writes only its own log
	// and accounting slots (perMap[i], mapOutBytes[i], ...).
	perMap := make([][]shuffled[K, V], p)
	mapOutBytes := make([]int64, p)    // materialized map output per partition
	shuffleBytes := make([][]int64, p) // [mapTask][reducer] bytes
	pairsEmitted := make([]int64, p)
	for i := range shuffleBytes {
		shuffleBytes[i] = make([]int64, reducers)
	}
	combiner, hasCombiner := prog.(Combiner[K, V])
	pool := r.Pool()
	pool.ForEach(p, func(i int) {
		pi := pg.Parts[i]
		var out []shuffled[K, V]
		if hasCombiner {
			// Collect this map task's pairs, fold per key map-side,
			// then account and shuffle only the folded pairs.
			var pairs []kv[K, V]
			prog.Map(pi, pg.G, func(k K, v V) {
				pairs = append(pairs, kv[K, V]{key: k, val: v})
				pairsEmitted[i]++
			})
			groupSorted(pairs, nil, nil, func(k K, vals []V) {
				folded := vals[0]
				if len(vals) > 1 {
					folded = combiner.CombineValues(k, vals)
				}
				red := hashKey(k, reducers)
				b := prog.PairBytes(k, folded)
				mapOutBytes[i] += b
				shuffleBytes[i][red] += b
				out = append(out, shuffled[K, V]{key: k, val: folded, red: red})
			})
		} else {
			prog.Map(pi, pg.G, func(k K, v V) {
				red := hashKey(k, reducers)
				b := prog.PairBytes(k, v)
				mapOutBytes[i] += b
				shuffleBytes[i][red] += b
				pairsEmitted[i]++
				out = append(out, shuffled[K, V]{key: k, val: v, red: red})
			})
		}
		perMap[i] = out
	})
	// Deterministic shuffle: concatenate the logs into per-reducer runs in
	// map-task index order — the serial delivery order. Each reducer's run
	// is then grouped by one index sort (stable, so a key's values keep the
	// delivery order), replacing the per-entry hash-map inserts that
	// dominated the shuffle at large pair counts.
	redSizes := make([]int, reducers)
	for i := range perMap {
		for j := range perMap[i] {
			redSizes[perMap[i][j].red]++
		}
	}
	redLogs := make([][]kv[K, V], reducers)
	for red := range redLogs {
		redLogs[red] = make([]kv[K, V], 0, redSizes[red])
	}
	for i := range perMap {
		for _, s := range perMap[i] {
			redLogs[s.red] = append(redLogs[s.red], kv[K, V]{key: s.key, val: s.val})
		}
		perMap[i] = nil
	}

	// Semantic reduce phase: reducers own disjoint (hash-partitioned) key
	// sets, so they fold in parallel into per-reducer result logs.
	type kr struct {
		key K
		res R
	}
	perRed := make([][]kr, reducers)
	reduceValues := make([]int64, reducers)
	reduceOutBytes := make([]int64, reducers)
	pool.ForEach(reducers, func(red int) {
		local := make([]kr, 0, len(redLogs[red]))
		groupSorted(redLogs[red], nil, nil, func(k K, vals []V) {
			res := prog.Reduce(k, vals)
			local = append(local, kr{key: k, res: res})
			reduceValues[red] += int64(len(vals))
			reduceOutBytes[red] += prog.ResultBytes(res)
		})
		perRed[red] = local
	})
	results := make(map[K]R)
	for _, local := range perRed {
		for _, e := range local {
			results[e.key] = e.res
		}
	}

	// Build the two-stage engine job.
	cpp := opt.computePerPair()
	mapTasks := make([]*engine.Task, p)
	for i, pi := range pg.Parts {
		var edges int64
		for _, v := range pi.Vertices {
			edges += int64(pg.G.OutDegree(v))
		}
		var outs []engine.Output
		for red := 0; red < reducers; red++ {
			if b := shuffleBytes[i][red]; b > 0 {
				outs = append(outs, engine.Output{DstTask: red, Bytes: b})
			}
		}
		mapTasks[i] = &engine.Task{
			Name:     fmt.Sprintf("map-p%d", i),
			Kind:     engine.KindTransfer,
			Part:     partition.PartID(i),
			Machine:  pl.MachineOf[i],
			Compute:  cpp * float64(edges+pairsEmitted[i]),
			DiskRead: pi.Bytes + opt.StatePerVertexBytes*int64(len(pi.Vertices)),
			// Map output is spilled, then rewritten sorted by reducer —
			// the Google-style map-side sort pass [5].
			DiskWrite: 2 * mapOutBytes[i],
			Outputs:   outs,
		}
	}
	reduceTasks := make([]*engine.Task, reducers)
	for red := 0; red < reducers; red++ {
		var received int64
		for i := 0; i < p; i++ {
			received += shuffleBytes[i][red]
		}
		reduceTasks[red] = &engine.Task{
			Name:    fmt.Sprintf("reduce-%d", red),
			Kind:    engine.KindCombine,
			Part:    engine.NoPart,
			Machine: reducerMachine(red, numMachines),
			Compute: cpp * float64(reduceValues[red]),
			// Shuffled input is materialized on arrival, merge-sorted
			// (read + read again for the reduce scan), and the results
			// written out.
			DiskRead:  2 * received,
			DiskWrite: received + reduceOutBytes[red],
		}
	}
	// Reduce outputs land on the distributed file system with 3-way
	// replication (GFS [6]): each reducer ships two remote copies, which
	// the receiving machines write to disk. Iterative MapReduce pays this
	// every iteration; Surfer's propagation writes partition-private
	// state locally and recovers by re-execution instead.
	sinkTasks := make([]*engine.Task, numMachines)
	sinkWrite := make([]int64, numMachines)
	for red := 0; red < reducers; red++ {
		m := int(reducerMachine(red, numMachines))
		for _, offset := range []int{1, 2} {
			target := (m + offset) % numMachines
			sinkWrite[target] += reduceOutBytes[red]
			reduceTasks[red].Outputs = append(reduceTasks[red].Outputs,
				engine.Output{DstTask: target, Bytes: reduceOutBytes[red]})
		}
	}
	for m := 0; m < numMachines; m++ {
		sinkTasks[m] = &engine.Task{
			Name:      fmt.Sprintf("replica-sink-%d", m),
			Kind:      engine.KindCombine,
			Part:      engine.NoPart,
			Machine:   cluster.MachineID(m),
			DiskWrite: sinkWrite[m],
		}
	}
	stages := []*engine.Stage{
		{Name: "map", Tasks: mapTasks},
		{Name: "reduce", Tasks: reduceTasks},
		{Name: "replicate", Tasks: sinkTasks},
	}
	if opt.StatePerVertexBytes > 0 {
		// Iterative MapReduce reads its per-vertex state from the DFS,
		// where the previous iteration's reduce output is hash-scattered
		// across machines rather than aligned with graph partitions: each
		// map task fetches its state over the network from a remote DFS
		// replica before it can scan its partition.
		fetchTasks := make([]*engine.Task, p)
		for i, pi := range pg.Parts {
			bytes := opt.StatePerVertexBytes * int64(len(pi.Vertices))
			src := cluster.MachineID((int(pl.MachineOf[i]) + 1 + i%max(numMachines-1, 1)) % numMachines)
			fetchTasks[i] = &engine.Task{
				Name:     fmt.Sprintf("dfs-read-p%d", i),
				Kind:     engine.KindTransfer,
				Part:     partition.PartID(i),
				Machine:  src,
				DiskRead: bytes,
				Outputs:  []engine.Output{{DstTask: i, Bytes: bytes}},
			}
		}
		stages = append([]*engine.Stage{{Name: "dfs-read", Tasks: fetchTasks}}, stages...)
	}
	jobName := opt.JobName
	if jobName == "" {
		jobName = "mapreduce"
	}
	job := &engine.Job{Name: jobName, Stages: stages}
	m, err := r.Run(job)
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	return results, m, nil
}

// reducerMachine spreads reducers over machines round-robin — the hash
// shuffle has no notion of data placement.
func reducerMachine(red, numMachines int) cluster.MachineID {
	return cluster.MachineID(red % numMachines)
}
