package mapreduce

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// edgeCount emits (dst, 1) per edge; reduce sums — in-degree counting.
type edgeCount struct{}

func (edgeCount) Map(pi *storage.PartInfo, g *graph.Graph, emit func(graph.VertexID, int64)) {
	for _, u := range pi.Vertices {
		for _, v := range g.Neighbors(u) {
			emit(v, 1)
		}
	}
}

func (edgeCount) Reduce(_ graph.VertexID, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}

func (edgeCount) PairBytes(graph.VertexID, int64) int64 { return 12 }
func (edgeCount) ResultBytes(int64) int64               { return 12 }

func newFixture(t *testing.T, n, levels int, seed int64) (*storage.PartitionedGraph, *partition.Placement, *engine.Runner) {
	t.Helper()
	g := graph.SmallWorld(graph.DefaultSmallWorld(n, seed))
	pt, sk := partition.RecursiveBisect(g, levels, partition.Options{Seed: seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewT1(4)
	return pg, partition.SketchPlacement(sk, topo), engine.New(engine.Config{Topo: topo})
}

func TestRunComputesInDegrees(t *testing.T) {
	pg, pl, r := newFixture(t, 1000, 2, 1)
	res, m, err := Run[graph.VertexID, int64, int64](r, pg, pl, edgeCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := pg.G.InDegrees()
	for v, d := range want {
		if d == 0 {
			if _, ok := res[graph.VertexID(v)]; ok {
				t.Fatalf("vertex %d has result but no in-edges", v)
			}
			continue
		}
		if res[graph.VertexID(v)] != int64(d) {
			t.Fatalf("in-degree[%d] = %d, want %d", v, res[graph.VertexID(v)], d)
		}
	}
	// map + reduce tasks per partition, plus one replica sink per machine.
	if m.TasksRun != 2*pg.Part.P+4 {
		t.Fatalf("tasks = %d, want %d", m.TasksRun, 2*pg.Part.P+4)
	}
	if m.NetworkBytes == 0 || m.DiskBytes == 0 {
		t.Fatalf("metrics %+v missing traffic", m)
	}
}

func TestShuffleIsHashDistributed(t *testing.T) {
	// Every reducer should receive a nontrivial share of the keys: the
	// hash shuffle ignores partition locality.
	pg, pl, r := newFixture(t, 2000, 3, 2)
	_, m, err := Run[graph.VertexID, int64, int64](r, pg, pl, edgeCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With P=8 partitions on 4 machines, a hash shuffle moves roughly
	// (numMachines-1)/numMachines = 75% of the pair bytes across the
	// network. Check it is over half.
	totalPairs := pg.G.NumEdges() * 12
	if m.NetworkBytes < totalPairs/2 {
		t.Fatalf("network %d less than half of pair bytes %d; shuffle too local", m.NetworkBytes, totalPairs)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	pgA, plA, rA := newFixture(t, 800, 2, 3)
	resA, mA, err := Run[graph.VertexID, int64, int64](rA, pgA, plA, edgeCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pgB, plB, rB := newFixture(t, 800, 2, 3)
	resB, mB, err := Run[graph.VertexID, int64, int64](rB, pgB, plB, edgeCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mA != mB {
		t.Fatalf("metrics differ: %+v vs %+v", mA, mB)
	}
	for k, v := range resA {
		if resB[k] != v {
			t.Fatalf("result differs at %d", k)
		}
	}
}

func TestPlacementMismatchErrors(t *testing.T) {
	pg, _, r := newFixture(t, 100, 1, 4)
	bad := &partition.Placement{MachineOf: make([]cluster.MachineID, 1)}
	if _, _, err := Run[graph.VertexID, int64, int64](r, pg, bad, edgeCount{}, Options{}); err == nil {
		t.Fatal("expected placement mismatch error")
	}
}

func TestStateBytesCharged(t *testing.T) {
	pg, pl, r1 := newFixture(t, 500, 2, 5)
	_, m0, err := Run[graph.VertexID, int64, int64](r1, pg, pl, edgeCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, r2 := newFixture(t, 500, 2, 5)
	_, m8, err := Run[graph.VertexID, int64, int64](r2, pg, pl, edgeCount{}, Options{StatePerVertexBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	// State is read twice: once at the DFS replica serving the fetch and
	// once by the map task scanning it locally.
	extra := int64(2 * 8 * pg.G.NumVertices())
	if m8.DiskBytes != m0.DiskBytes+extra {
		t.Fatalf("state bytes not charged: %d vs %d+%d", m8.DiskBytes, m0.DiskBytes, extra)
	}
	if m8.NetworkBytes <= m0.NetworkBytes {
		t.Fatal("DFS state fetch generated no network traffic")
	}
}

func TestHashKeyStable(t *testing.T) {
	for mod := 1; mod <= 64; mod *= 2 {
		counts := make([]int, mod)
		for k := 0; k < 10000; k++ {
			h := hashKey(graph.VertexID(k), mod)
			if h < 0 || h >= mod {
				t.Fatalf("hash out of range: %d", h)
			}
			counts[h]++
		}
		// Rough uniformity: no bucket under half or over double fair share.
		fair := 10000 / mod
		for b, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Fatalf("mod %d bucket %d has %d keys (fair %d)", mod, b, c, fair)
			}
		}
	}
}

// combiningCount emits (dst,1) per edge and folds map-side.
type combiningCount struct{ edgeCount }

func (combiningCount) CombineValues(_ graph.VertexID, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}

func TestCombinerShrinksShuffle(t *testing.T) {
	pg, pl, r1 := newFixture(t, 1500, 3, 7)
	resPlain, mPlain, err := Run[graph.VertexID, int64, int64](r1, pg, pl, edgeCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, r2 := newFixture(t, 1500, 3, 7)
	resComb, mComb, err := Run[graph.VertexID, int64, int64](r2, pg, pl, combiningCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same results.
	for k, v := range resPlain {
		if resComb[k] != v {
			t.Fatalf("combiner changed result at %d: %d vs %d", k, resComb[k], v)
		}
	}
	// Strictly less shuffle traffic (multiple edges share destinations).
	if mComb.NetworkBytes >= mPlain.NetworkBytes {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d", mComb.NetworkBytes, mPlain.NetworkBytes)
	}
	if mComb.ResponseSeconds >= mPlain.ResponseSeconds {
		t.Fatalf("combiner did not speed up the job: %g vs %g", mComb.ResponseSeconds, mPlain.ResponseSeconds)
	}
}

func TestReplicationSinksWriteTwoCopies(t *testing.T) {
	pg, pl, r := newFixture(t, 500, 2, 8)
	_, m, err := Run[graph.VertexID, int64, int64](r, pg, pl, edgeCount{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reduce output bytes: 12 per distinct key; each key's result written
	// once at the reducer and twice at replica sinks.
	var keys int64
	for v, d := range pg.G.InDegrees() {
		_ = v
		if d > 0 {
			keys++
		}
	}
	// Disk contains: map read + 2x mapOut + received(2x read counted as
	// read) ... assert the replica share explicitly: killing replication
	// would reduce DiskBytes by exactly 2 x resultBytes.
	resultBytes := keys * 12
	if m.DiskBytes < 2*resultBytes {
		t.Fatalf("disk %d too small to include 2 replica copies (%d)", m.DiskBytes, 2*resultBytes)
	}
	// And the network includes the two remote copies.
	if m.NetworkBytes < 2*resultBytes/2 {
		t.Fatalf("network %d missing replica traffic", m.NetworkBytes)
	}
}
