package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestValidateElastic(t *testing.T) {
	cases := []struct {
		name   string
		joins  []MachineJoin
		drains []MachineDrain
		want   string // substring of the error, "" = valid
	}{
		{"empty", nil, nil, ""},
		{"valid join and drain", []MachineJoin{{Machine: 3, At: 1}},
			[]MachineDrain{{Machine: 1, At: 2, Deadline: 5}}, ""},
		{"join outside topology", []MachineJoin{{Machine: 4, At: 1}}, nil, "outside"},
		{"join negative machine", []MachineJoin{{Machine: -1, At: 1}}, nil, "outside"},
		{"join negative time", []MachineJoin{{Machine: 3, At: -0.5}}, nil, "negative time"},
		{"join negative NIC rate", []MachineJoin{{Machine: 3, At: 1, NICs: -1}}, nil, "negative NIC rate"},
		{"duplicate join", []MachineJoin{{Machine: 3, At: 1}, {Machine: 3, At: 2}}, nil, "already live"},
		{"drain outside topology", nil, []MachineDrain{{Machine: 9, At: 1, Deadline: 2}}, "outside"},
		{"drain negative time", nil, []MachineDrain{{Machine: 1, At: -1, Deadline: 2}}, "negative time"},
		{"deadline before start", nil, []MachineDrain{{Machine: 1, At: 3, Deadline: 3}}, "could never finish"},
		{"drain before its join", []MachineJoin{{Machine: 3, At: 5}},
			[]MachineDrain{{Machine: 3, At: 2, Deadline: 9}}, "before it joins"},
		{"drain after its join is fine", []MachineJoin{{Machine: 3, At: 1}},
			[]MachineDrain{{Machine: 3, At: 2, Deadline: 9}}, ""},
		{"duplicate drain", nil,
			[]MachineDrain{{Machine: 1, At: 1, Deadline: 2}, {Machine: 1, At: 3, Deadline: 4}}, "duplicate drain"},
	}
	for _, tc := range cases {
		err := ValidateElastic(tc.joins, tc.drains, 4)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestScheduleValidateIncludesElastic(t *testing.T) {
	s := &Schedule{Joins: []MachineJoin{{Machine: 7, At: 1}}}
	if err := s.Validate(4); err == nil {
		t.Fatal("Schedule.Validate let an out-of-range join through")
	}
}

func TestAcceptingAt(t *testing.T) {
	s := &Schedule{
		Joins:  []MachineJoin{{Machine: 3, At: 2}},
		Drains: []MachineDrain{{Machine: 1, At: 5, Deadline: 9}},
	}
	cases := []struct {
		m    cluster.MachineID
		t    float64
		want bool
	}{
		{0, 0, true},    // untouched machine
		{3, 1.9, false}, // join target before its join
		{3, 2.0, true},  // live from the join instant
		{1, 4.9, true},  // not yet draining
		{1, 5.0, false}, // stops accepting at drain start
		{1, 99, false},  // and never resumes
	}
	for _, c := range cases {
		if got := s.AcceptingAt(c.m, c.t); got != c.want {
			t.Errorf("AcceptingAt(%d, %g) = %v, want %v", c.m, c.t, got, c.want)
		}
	}
	var nilSched *Schedule
	if !nilSched.AcceptingAt(0, 0) {
		t.Error("nil schedule should accept everywhere")
	}
}

func TestDormantAndSortedAccessors(t *testing.T) {
	s := &Schedule{
		Joins: []MachineJoin{{Machine: 5, At: 3}, {Machine: 4, At: 1}},
		Drains: []MachineDrain{
			{Machine: 2, At: 4, Deadline: 9}, {Machine: 1, At: 4, Deadline: 8},
		},
	}
	d := s.Dormant(6)
	if !d[4] || !d[5] || d[0] || d[3] {
		t.Fatalf("Dormant = %v, want only join targets", d)
	}
	js := s.SortedJoins()
	if js[0].Machine != 4 || js[1].Machine != 5 {
		t.Fatalf("SortedJoins order = %v", js)
	}
	ds := s.SortedDrains()
	if ds[0].Machine != 1 || ds[1].Machine != 2 {
		t.Fatalf("SortedDrains tie-break = %v", ds)
	}
	var nilSched *Schedule
	if nilSched.SortedJoins() != nil || nilSched.SortedDrains() != nil {
		t.Error("nil schedule accessors should return nil")
	}
	if got := nilSched.Dormant(3); len(got) != 3 || got[0] || got[1] || got[2] {
		t.Errorf("nil schedule Dormant = %v", got)
	}
}

func TestFileRoundTripElastic(t *testing.T) {
	doc := `{
	  "kills":  [{"machine": 2, "at": 1.5}],
	  "joins":  [{"machine": 8, "at": 0.5, "nics": 62.5e6}],
	  "drains": [{"machine": 3, "at": 1.0, "deadline": 4.0}]
	}`
	path := filepath.Join(t.TempDir(), "elastic.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Schedule()
	if s == nil {
		t.Fatal("elastic-only schedule decoded to nil")
	}
	if len(s.Joins) != 1 || s.Joins[0].Machine != 8 || s.Joins[0].NICs != 62.5e6 {
		t.Fatalf("joins = %+v", s.Joins)
	}
	if len(s.Drains) != 1 || s.Drains[0].Machine != 3 || s.Drains[0].Deadline != 4.0 {
		t.Fatalf("drains = %+v", s.Drains)
	}
	if got := f.MaxMachine(); got != 8 {
		t.Fatalf("MaxMachine = %d, want 8", got)
	}
	// A 9-machine topology (expanded for the join) accepts the file; the
	// base 8-machine one rejects the join.
	if err := f.Validate(9); err != nil {
		t.Fatalf("Validate(9): %v", err)
	}
	if err := f.Validate(8); err == nil {
		t.Fatal("Validate(8) let the out-of-range join through")
	}
}

// TestFileValidateCatchesOutOfRangeKill is the regression test for the
// surfer-bench -faults fix: a kills-only file has a nil Schedule, so the old
// Schedule().Validate path silently accepted a kill of a machine outside the
// topology and the run proceeded fault-free.
func TestFileValidateCatchesOutOfRangeKill(t *testing.T) {
	f := &File{Kills: []FileKill{{Machine: 40, At: 1}}}
	if f.Schedule() != nil {
		t.Fatal("kills-only file should have a nil transient schedule")
	}
	err := f.Validate(32)
	if err == nil || !strings.Contains(err.Error(), "outside the 32-machine topology") {
		t.Fatalf("err = %v, want out-of-range kill error", err)
	}
	if err := f.Validate(41); err != nil {
		t.Fatalf("Validate(41): %v", err)
	}
	var nilFile *File
	if err := nilFile.Validate(4); err != nil {
		t.Fatalf("nil file Validate: %v", err)
	}
}

func TestGenerateElasticEvents(t *testing.T) {
	cfg := GenConfig{
		Machines: 8, Horizon: 10,
		Kills: 1, Joins: 2, Drains: 3, Seed: 7,
	}
	s, kills := Generate(cfg)
	if len(s.Joins) != 2 || len(s.Drains) != 3 || len(kills) != 1 {
		t.Fatalf("joins/drains/kills = %d/%d/%d", len(s.Joins), len(s.Drains), len(kills))
	}
	// Join targets are the provisioned machines past the base topology.
	for i, j := range s.Joins {
		if int(j.Machine) != cfg.Machines+i {
			t.Errorf("join %d targets machine %d, want %d", i, j.Machine, cfg.Machines+i)
		}
	}
	// Drains pick distinct live machines, never 0 and never a killed one.
	killed := map[cluster.MachineID]bool{}
	for _, k := range kills {
		killed[k.Machine] = true
	}
	seen := map[cluster.MachineID]bool{}
	for _, d := range s.Drains {
		if d.Machine == 0 || killed[d.Machine] || seen[d.Machine] {
			t.Errorf("drain of machine %d collides (killed=%v seen=%v)", d.Machine, killed[d.Machine], seen[d.Machine])
		}
		seen[d.Machine] = true
		if d.Deadline <= d.At {
			t.Errorf("drain of machine %d has deadline %g <= at %g", d.Machine, d.Deadline, d.At)
		}
	}
	// The generated plan must pass its own validation against the expanded
	// topology, and reproduce bit-identically from the same seed.
	if err := s.Validate(cfg.Machines + cfg.Joins); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	s2, kills2 := Generate(cfg)
	if len(s2.Joins) != len(s.Joins) || len(s2.Drains) != len(s.Drains) || len(kills2) != len(kills) {
		t.Fatal("same seed generated a different schedule shape")
	}
	for i := range s.Drains {
		if s.Drains[i] != s2.Drains[i] {
			t.Fatalf("drain %d differs across same-seed generations", i)
		}
	}
}
