// Package fault is Surfer's expanded fault model: transient link faults
// (degraded bandwidth, dropped transfers), machine slowdowns (stragglers),
// and the policies the job manager applies against them — retry with
// timeout and exponential backoff for transfers, speculative re-execution
// for straggling tasks.
//
// The package deliberately holds no engine state: a Schedule is a pure,
// immutable description of *when* the cluster misbehaves, queried by the
// engine's serial event loop at transfer-start and task-start times. That
// keeps the whole fault model inside the discrete-event determinism
// contract — the same schedule replays identically for every compute
// worker count, so faulty runs stay bit-reproducible.
//
// Permanent machine deaths remain engine.Failure (Figure 10); this package
// covers everything short of death: real clusters mostly fail partially
// (links degrade, transfers stall, machines run slow without dying).
package fault

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// LinkFault degrades or blackholes one directed machine-to-machine link for
// a virtual-time window. A transfer is affected when it *starts* (clears
// both NICs) inside [From, Until).
type LinkFault struct {
	// Src and Dst identify the directed link.
	Src, Dst cluster.MachineID
	// From and Until bound the active window [From, Until) in virtual
	// seconds.
	From, Until float64
	// Factor divides the link bandwidth while the fault is active
	// (Factor 4 = quarter rate). Values <= 1 leave bandwidth unchanged.
	// Ignored when Drop is set.
	Factor float64
	// Drop, when true, makes transfers starting in the window fail
	// entirely: the sender times out after RetryPolicy.Timeout and
	// retries with backoff.
	Drop bool
}

// Slowdown multiplies the duration of tasks *starting* on a machine inside
// [From, Until) — the straggler model: the machine keeps working and keeps
// heartbeating, it is just slow.
type Slowdown struct {
	Machine cluster.MachineID
	// From and Until bound the active window [From, Until).
	From, Until float64
	// Factor multiplies task durations; values <= 1 have no effect.
	Factor float64
}

// Schedule is a deterministic fault plan: every query is a pure function of
// (link or machine, virtual time), so replaying a run replays its faults.
// A nil *Schedule is valid and means "no transient faults" — every query
// on it is a nil-check and allocates nothing (the fault-free hot path).
type Schedule struct {
	Links     []LinkFault
	Slowdowns []Slowdown
	// Joins and Drains are the elastic-membership events (see elastic.go):
	// machines arriving mid-job and machines gracefully decommissioning
	// with live partition migration.
	Joins  []MachineJoin
	Drains []MachineDrain
}

// active reports whether t falls inside [from, until).
func active(from, until, t float64) bool { return t >= from && t < until }

// LinkFactor returns the combined bandwidth divisor of all degradations
// active on src→dst at time t (overlapping faults compound). It is 1 when
// the link is healthy and never less than 1.
func (s *Schedule) LinkFactor(src, dst cluster.MachineID, t float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for i := range s.Links {
		lf := &s.Links[i]
		if lf.Drop || lf.Src != src || lf.Dst != dst || !active(lf.From, lf.Until, t) {
			continue
		}
		if lf.Factor > 1 {
			f *= lf.Factor
		}
	}
	return f
}

// DropsTransfer reports whether a transfer starting on src→dst at time t is
// dropped by an active blackhole fault.
func (s *Schedule) DropsTransfer(src, dst cluster.MachineID, t float64) bool {
	if s == nil {
		return false
	}
	for i := range s.Links {
		lf := &s.Links[i]
		if lf.Drop && lf.Src == src && lf.Dst == dst && active(lf.From, lf.Until, t) {
			return true
		}
	}
	return false
}

// SlowdownFactor returns the compute slowdown of machine m at time t: the
// product of all active Slowdown factors, never less than 1.
func (s *Schedule) SlowdownFactor(m cluster.MachineID, t float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for i := range s.Slowdowns {
		sd := &s.Slowdowns[i]
		if sd.Machine == m && active(sd.From, sd.Until, t) && sd.Factor > 1 {
			f *= sd.Factor
		}
	}
	return f
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Links) == 0 && len(s.Slowdowns) == 0 &&
		len(s.Joins) == 0 && len(s.Drains) == 0)
}

// Validate rejects malformed fault windows before they can hang a run: a
// drop window needs a finite end (otherwise retries never succeed and the
// stage deadlocks) and every window must be well-ordered.
func (s *Schedule) Validate(numMachines int) error {
	if s == nil {
		return nil
	}
	for i, lf := range s.Links {
		if int(lf.Src) < 0 || int(lf.Src) >= numMachines || int(lf.Dst) < 0 || int(lf.Dst) >= numMachines {
			return fmt.Errorf("fault: link fault %d references machine outside [0,%d)", i, numMachines)
		}
		if lf.Src == lf.Dst {
			return fmt.Errorf("fault: link fault %d on loopback link %d→%d", i, lf.Src, lf.Dst)
		}
		if lf.From < 0 || lf.Until <= lf.From {
			return fmt.Errorf("fault: link fault %d has malformed window [%g,%g)", i, lf.From, lf.Until)
		}
		if lf.Drop && math.IsInf(lf.Until, 1) {
			return fmt.Errorf("fault: link fault %d drops transfers forever; retries could never succeed", i)
		}
		if !lf.Drop && lf.Factor <= 1 {
			return fmt.Errorf("fault: link fault %d degrades by factor %g (want > 1, or Drop)", i, lf.Factor)
		}
	}
	for i, sd := range s.Slowdowns {
		if int(sd.Machine) < 0 || int(sd.Machine) >= numMachines {
			return fmt.Errorf("fault: slowdown %d references machine outside [0,%d)", i, numMachines)
		}
		if sd.From < 0 || sd.Until <= sd.From {
			return fmt.Errorf("fault: slowdown %d has malformed window [%g,%g)", i, sd.From, sd.Until)
		}
		if sd.Factor <= 1 {
			return fmt.Errorf("fault: slowdown %d has factor %g (want > 1)", i, sd.Factor)
		}
	}
	return ValidateElastic(s.Joins, s.Drains, numMachines)
}

// RetryPolicy governs dropped-transfer recovery: a transfer that makes no
// progress for Timeout seconds is declared failed, and the sender re-issues
// it after an exponentially growing backoff. The zero value selects the
// defaults; attempts are unlimited unless MaxAttempts is set, so a transfer
// always succeeds once its drop window closes.
type RetryPolicy struct {
	// Timeout is how long a stalled transfer holds its NICs before the
	// sender declares it failed. Default 1s.
	Timeout float64
	// Backoff is the wait before the first retry. Default 0.25s.
	Backoff float64
	// Multiplier grows the backoff per attempt. Default 2.
	Multiplier float64
	// MaxBackoff caps the backoff. Default 8s.
	MaxBackoff float64
	// MaxAttempts bounds retries; 0 means unlimited. When the bound is
	// exhausted the engine fails the whole run — there is no silent loss.
	MaxAttempts int
}

// WithDefaults fills unset fields with the default policy.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 1.0
	}
	if p.Backoff <= 0 {
		p.Backoff = 0.25
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 8
	}
	return p
}

// BackoffAt returns the wait before retry attempt n (1-based): the
// exponential schedule Backoff · Multiplier^(n-1), capped at MaxBackoff.
func (p RetryPolicy) BackoffAt(attempt int) float64 {
	b := p.Backoff
	for i := 1; i < attempt; i++ {
		b *= p.Multiplier
		if b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if b > p.MaxBackoff {
		return p.MaxBackoff
	}
	return b
}

// SpeculationPolicy is the job manager's backup-task rule (MapReduce-style
// speculative re-execution): once enough of a stage has completed to
// estimate a median task time, any still-running task projected to take
// longer than Factor × median gets a backup copy on a replica holder; the
// first completion commits, and the engine commits results in task order —
// not completion order — so the determinism contract survives duplicates.
type SpeculationPolicy struct {
	// Enabled turns speculation on.
	Enabled bool
	// Factor is the straggler threshold multiple over the stage's median
	// completed-task duration. Default 2.
	Factor float64
	// MinCompletedFraction is how much of the stage must have completed
	// before the median is trusted. Default 0.5.
	MinCompletedFraction float64
}

// WithDefaults fills unset fields with the default policy.
func (p SpeculationPolicy) WithDefaults() SpeculationPolicy {
	if p.Factor <= 1 {
		p.Factor = 2
	}
	if p.MinCompletedFraction <= 0 || p.MinCompletedFraction > 1 {
		p.MinCompletedFraction = 0.5
	}
	return p
}

// IsStraggler applies the policy: projected is the running task's expected
// total duration, median the stage's median completed duration, completed
// and total the stage's progress.
func (p SpeculationPolicy) IsStraggler(projected, median float64, completed, total int) bool {
	if !p.Enabled || total == 0 || median <= 0 {
		return false
	}
	if float64(completed) < p.MinCompletedFraction*float64(total) {
		return false
	}
	return projected > p.Factor*median
}
