package fault

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// Elastic cluster membership: production clouds do not only break, they
// grow and shrink — spot instances arrive and are reclaimed, autoscalers
// add and drain capacity. MachineJoin and MachineDrain extend the
// deterministic fault plan with those events, keeping the same contract as
// every other Schedule entry: a pure description of *when* membership
// changes, replayed identically by the engine's serial event loop for every
// worker count.
//
// Convention: a machine named in a MachineJoin starts *dormant* — it exists
// in the topology's bandwidth matrix (provisioned capacity) but holds no
// partitions, runs no tasks and backs no failovers until its join time.
// All other topology machines are live from t = 0.

// MachineJoin adds a provisioned-but-dormant machine to the cluster at a
// virtual time. From At on, the machine accepts migrated partitions, acts
// as a failover and speculation target, and its NICs carry traffic.
type MachineJoin struct {
	// At is the join time in virtual seconds.
	At float64
	// Machine is the joining machine's ID in the (expanded) topology.
	Machine cluster.MachineID
	// NICs is the machine's NIC line rate in bytes/second; transfers
	// touching the machine run at min(link bandwidth, NICs). Zero means
	// the full topology rate — set it below the link rate to model cheap
	// spot instances with slower network.
	NICs float64
}

// MachineDrain begins a graceful decommission of a live machine at a
// virtual time: the machine stops accepting new tasks, its partitions
// migrate live to surviving machines (ordinary NIC-charged transfers), and
// once the last byte lands the machine retires with nothing lost. A drain
// whose Deadline passes before migration completes degrades into an
// ordinary machine death (engine.Failure semantics: lost tasks fail over
// to replicas after heartbeat detection).
type MachineDrain struct {
	// At is the drain start in virtual seconds.
	At float64
	// Machine is the machine being decommissioned.
	Machine cluster.MachineID
	// Deadline is the absolute virtual time by which migration must have
	// finished; at Deadline an undrained machine is killed. Required
	// (Deadline > At), so every drain terminates.
	Deadline float64
}

// ValidateElastic rejects malformed elastic plans before they can corrupt a
// run, mirroring engine.ValidateFailures: joins and drains must reference
// machines inside the topology, a machine may join at most once (a second
// join would join an already-live machine), a drain must target a machine
// that is live at drain time (initially live, or joined before At), drains
// must not repeat, and every drain needs a deadline after its start.
func ValidateElastic(joins []MachineJoin, drains []MachineDrain, numMachines int) error {
	joinAt := make(map[cluster.MachineID]float64, len(joins))
	for i, j := range joins {
		if int(j.Machine) < 0 || int(j.Machine) >= numMachines {
			return fmt.Errorf("fault: join %d references machine %d outside [0,%d)", i, j.Machine, numMachines)
		}
		if j.At < 0 {
			return fmt.Errorf("fault: join %d of machine %d at negative time %g", i, j.Machine, j.At)
		}
		if j.NICs < 0 {
			return fmt.Errorf("fault: join %d of machine %d has negative NIC rate %g", i, j.Machine, j.NICs)
		}
		if _, dup := joinAt[j.Machine]; dup {
			return fmt.Errorf("fault: join %d joins machine %d, which is already live (joined earlier)", i, j.Machine)
		}
		joinAt[j.Machine] = j.At
	}
	drained := make(map[cluster.MachineID]bool, len(drains))
	for i, d := range drains {
		if int(d.Machine) < 0 || int(d.Machine) >= numMachines {
			return fmt.Errorf("fault: drain %d references machine %d outside [0,%d)", i, d.Machine, numMachines)
		}
		if d.At < 0 {
			return fmt.Errorf("fault: drain %d of machine %d at negative time %g", i, d.Machine, d.At)
		}
		if d.Deadline <= d.At {
			return fmt.Errorf("fault: drain %d of machine %d has deadline %g <= start %g; migration could never finish", i, d.Machine, d.Deadline, d.At)
		}
		if at, joins := joinAt[d.Machine]; joins && at >= d.At {
			return fmt.Errorf("fault: drain %d drains machine %d at %g, before it joins at %g", i, d.Machine, d.At, at)
		}
		if drained[d.Machine] {
			return fmt.Errorf("fault: duplicate drain for machine %d", d.Machine)
		}
		drained[d.Machine] = true
	}
	return nil
}

// AcceptingAt reports whether machine m accepts new task assignments at
// time t under this schedule: a join target is not live before its join
// time, and a draining machine stops accepting new work from its drain
// start (already-running work finishes). A pure function of (m, t), so
// schedulers that consult it at barrier points stay deterministic.
func (s *Schedule) AcceptingAt(m cluster.MachineID, t float64) bool {
	if s == nil {
		return true
	}
	for i := range s.Joins {
		if s.Joins[i].Machine == m && t < s.Joins[i].At {
			return false
		}
	}
	for i := range s.Drains {
		if s.Drains[i].Machine == m && t >= s.Drains[i].At {
			return false
		}
	}
	return true
}

// Dormant returns the machines that start dormant under this schedule (the
// join targets), as a lookup slice over numMachines machines. A nil
// schedule dormants nothing.
func (s *Schedule) Dormant(numMachines int) []bool {
	out := make([]bool, numMachines)
	if s == nil {
		return out
	}
	for _, j := range s.Joins {
		if int(j.Machine) >= 0 && int(j.Machine) < numMachines {
			out[j.Machine] = true
		}
	}
	return out
}

// SortedJoins returns the schedule's joins ordered by (At, Machine), the
// deterministic arming order the engine uses.
func (s *Schedule) SortedJoins() []MachineJoin {
	if s == nil || len(s.Joins) == 0 {
		return nil
	}
	out := append([]MachineJoin(nil), s.Joins...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Machine < out[j].Machine
	})
	return out
}

// SortedDrains returns the schedule's drains ordered by (At, Machine).
func (s *Schedule) SortedDrains() []MachineDrain {
	if s == nil || len(s.Drains) == 0 {
		return nil
	}
	out := append([]MachineDrain(nil), s.Drains...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Machine < out[j].Machine
	})
	return out
}
