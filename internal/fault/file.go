package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cluster"
)

// File is the on-disk fault-schedule format consumed by the CLIs: a JSON
// document naming machine kills, link faults and slowdowns in one place,
// so a whole chaos scenario is reproducible from a single file.
//
//	{
//	  "kills":     [{"machine": 2, "at": 1.5}],
//	  "links":     [{"src": 0, "dst": 3, "from": 0.5, "until": 2.0,
//	                 "factor": 4}],
//	  "drops":     [{"src": 1, "dst": 2, "from": 0.2, "until": 0.8}],
//	  "slowdowns": [{"machine": 5, "from": 0, "until": 10, "factor": 3}]
//	}
type File struct {
	Kills     []FileKill     `json:"kills,omitempty"`
	Links     []FileLink     `json:"links,omitempty"`
	Drops     []FileLink     `json:"drops,omitempty"`
	Slowdowns []FileSlowdown `json:"slowdowns,omitempty"`
}

// FileKill is a permanent machine death entry.
type FileKill struct {
	Machine int     `json:"machine"`
	At      float64 `json:"at"`
}

// FileLink is a link degradation ("links", Factor required) or a transfer
// drop window ("drops", Factor ignored).
type FileLink struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	From   float64 `json:"from"`
	Until  float64 `json:"until"`
	Factor float64 `json:"factor,omitempty"`
}

// FileSlowdown is a machine compute slowdown entry.
type FileSlowdown struct {
	Machine int     `json:"machine"`
	From    float64 `json:"from"`
	Until   float64 `json:"until"`
	Factor  float64 `json:"factor"`
}

// Load reads and decodes a fault-schedule file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: reading schedule: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("fault: parsing schedule %s: %w", path, err)
	}
	return &f, nil
}

// Schedule converts the file's transient entries into an engine-ready
// Schedule (kills are exposed separately via Kills, since permanent deaths
// are engine.Failure territory).
func (f *File) Schedule() *Schedule {
	if f == nil || (len(f.Links) == 0 && len(f.Drops) == 0 && len(f.Slowdowns) == 0) {
		return nil
	}
	s := &Schedule{}
	for _, l := range f.Links {
		s.Links = append(s.Links, LinkFault{
			Src: cluster.MachineID(l.Src), Dst: cluster.MachineID(l.Dst),
			From: l.From, Until: l.Until, Factor: l.Factor,
		})
	}
	for _, l := range f.Drops {
		s.Links = append(s.Links, LinkFault{
			Src: cluster.MachineID(l.Src), Dst: cluster.MachineID(l.Dst),
			From: l.From, Until: l.Until, Drop: true,
		})
	}
	for _, sd := range f.Slowdowns {
		s.Slowdowns = append(s.Slowdowns, Slowdown{
			Machine: cluster.MachineID(sd.Machine),
			From:    sd.From, Until: sd.Until, Factor: sd.Factor,
		})
	}
	return s
}

// KillList returns the file's machine deaths as generator Kill entries.
func (f *File) KillList() []Kill {
	if f == nil {
		return nil
	}
	out := make([]Kill, 0, len(f.Kills))
	for _, k := range f.Kills {
		out = append(out, Kill{Machine: cluster.MachineID(k.Machine), At: k.At})
	}
	return out
}
