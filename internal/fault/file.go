package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cluster"
)

// File is the on-disk fault-schedule format consumed by the CLIs: a JSON
// document naming machine kills, link faults, slowdowns and elastic
// membership events in one place, so a whole chaos scenario is reproducible
// from a single file.
//
//	{
//	  "kills":     [{"machine": 2, "at": 1.5}],
//	  "links":     [{"src": 0, "dst": 3, "from": 0.5, "until": 2.0,
//	                 "factor": 4}],
//	  "drops":     [{"src": 1, "dst": 2, "from": 0.2, "until": 0.8}],
//	  "slowdowns": [{"machine": 5, "from": 0, "until": 10, "factor": 3}],
//	  "joins":     [{"machine": 8, "at": 0.5, "nics": 62.5e6}],
//	  "drains":    [{"machine": 3, "at": 1.0, "deadline": 4.0}]
//	}
//
// A machine named in "joins" starts dormant: the runner's topology must be
// provisioned large enough to include it (the CLIs expand the base topology
// automatically when a join references a machine beyond it).
type File struct {
	Kills     []FileKill     `json:"kills,omitempty"`
	Links     []FileLink     `json:"links,omitempty"`
	Drops     []FileLink     `json:"drops,omitempty"`
	Slowdowns []FileSlowdown `json:"slowdowns,omitempty"`
	Joins     []FileJoin     `json:"joins,omitempty"`
	Drains    []FileDrain    `json:"drains,omitempty"`
}

// FileKill is a permanent machine death entry.
type FileKill struct {
	Machine int     `json:"machine"`
	At      float64 `json:"at"`
}

// FileLink is a link degradation ("links", Factor required) or a transfer
// drop window ("drops", Factor ignored).
type FileLink struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	From   float64 `json:"from"`
	Until  float64 `json:"until"`
	Factor float64 `json:"factor,omitempty"`
}

// FileSlowdown is a machine compute slowdown entry.
type FileSlowdown struct {
	Machine int     `json:"machine"`
	From    float64 `json:"from"`
	Until   float64 `json:"until"`
	Factor  float64 `json:"factor"`
}

// FileJoin is an elastic machine-join entry; NICs is the optional NIC line
// rate in bytes/second (0 = full topology rate).
type FileJoin struct {
	Machine int     `json:"machine"`
	At      float64 `json:"at"`
	NICs    float64 `json:"nics,omitempty"`
}

// FileDrain is an elastic machine-drain entry; Deadline is the absolute
// virtual time by which live migration must finish.
type FileDrain struct {
	Machine  int     `json:"machine"`
	At       float64 `json:"at"`
	Deadline float64 `json:"deadline"`
}

// Load reads and decodes a fault-schedule file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: reading schedule: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("fault: parsing schedule %s: %w", path, err)
	}
	return &f, nil
}

// Schedule converts the file's transient and elastic entries into an
// engine-ready Schedule (kills are exposed separately via KillList, since
// permanent deaths are engine.Failure territory).
func (f *File) Schedule() *Schedule {
	if f == nil || (len(f.Links) == 0 && len(f.Drops) == 0 && len(f.Slowdowns) == 0 &&
		len(f.Joins) == 0 && len(f.Drains) == 0) {
		return nil
	}
	s := &Schedule{}
	for _, l := range f.Links {
		s.Links = append(s.Links, LinkFault{
			Src: cluster.MachineID(l.Src), Dst: cluster.MachineID(l.Dst),
			From: l.From, Until: l.Until, Factor: l.Factor,
		})
	}
	for _, l := range f.Drops {
		s.Links = append(s.Links, LinkFault{
			Src: cluster.MachineID(l.Src), Dst: cluster.MachineID(l.Dst),
			From: l.From, Until: l.Until, Drop: true,
		})
	}
	for _, sd := range f.Slowdowns {
		s.Slowdowns = append(s.Slowdowns, Slowdown{
			Machine: cluster.MachineID(sd.Machine),
			From:    sd.From, Until: sd.Until, Factor: sd.Factor,
		})
	}
	for _, j := range f.Joins {
		s.Joins = append(s.Joins, MachineJoin{
			Machine: cluster.MachineID(j.Machine), At: j.At, NICs: j.NICs,
		})
	}
	for _, d := range f.Drains {
		s.Drains = append(s.Drains, MachineDrain{
			Machine: cluster.MachineID(d.Machine), At: d.At, Deadline: d.Deadline,
		})
	}
	return s
}

// KillList returns the file's machine deaths as generator Kill entries.
func (f *File) KillList() []Kill {
	if f == nil {
		return nil
	}
	out := make([]Kill, 0, len(f.Kills))
	for _, k := range f.Kills {
		out = append(out, Kill{Machine: cluster.MachineID(k.Machine), At: k.At})
	}
	return out
}

// MaxMachine returns the largest machine ID the file references, or -1 for
// an empty file. CLIs use it to expand the base topology when a join
// provisions machines beyond it.
func (f *File) MaxMachine() int {
	max := -1
	up := func(m int) {
		if m > max {
			max = m
		}
	}
	if f == nil {
		return max
	}
	for _, k := range f.Kills {
		up(k.Machine)
	}
	for _, l := range f.Links {
		up(l.Src)
		up(l.Dst)
	}
	for _, l := range f.Drops {
		up(l.Src)
		up(l.Dst)
	}
	for _, sd := range f.Slowdowns {
		up(sd.Machine)
	}
	for _, j := range f.Joins {
		up(j.Machine)
	}
	for _, d := range f.Drains {
		up(d.Machine)
	}
	return max
}

// Validate rejects a fault file that references machines outside a
// numMachines-machine topology — including kills, which the Schedule
// conversion does not carry — and replays the full Schedule validation on
// the transient and elastic entries. CLIs call it right after Load so a
// stray machine ID fails loudly instead of producing a fault-free run.
func (f *File) Validate(numMachines int) error {
	if f == nil {
		return nil
	}
	for i, k := range f.Kills {
		if k.Machine < 0 || k.Machine >= numMachines {
			return fmt.Errorf("fault: kill %d references machine %d outside the %d-machine topology", i, k.Machine, numMachines)
		}
	}
	if err := f.Schedule().Validate(numMachines); err != nil {
		return err
	}
	return nil
}
