package fault

import (
	"math/rand"

	"repro/internal/cluster"
)

// GenConfig parameterizes the seeded chaos-schedule generator.
type GenConfig struct {
	// Machines is the cluster size faults are drawn over.
	Machines int
	// Horizon is the virtual-time span faults land in; windows are drawn
	// from [0.05·Horizon, 0.95·Horizon] so they overlap real work.
	Horizon float64
	// Degrades, Drops and Slowdowns count the faults of each class.
	Degrades  int
	Drops     int
	Slowdowns int
	// Kills is the number of permanent machine deaths to draw (returned
	// separately — deaths are engine.Failure territory).
	Kills int
	// Seed drives every random choice.
	Seed int64
}

// Kill is a generated permanent machine death (mirrors engine.Failure
// without importing the engine, which imports this package).
type Kill struct {
	Machine cluster.MachineID
	At      float64
}

// Generate draws a random but fully deterministic fault schedule: link
// degradations, transfer-drop windows, straggler slowdowns, and machine
// kills. Distinct machines are killed (never machine 0, so a live machine
// always remains) and drop windows are kept short relative to the horizon
// so retries always eventually succeed.
func Generate(cfg GenConfig) (*Schedule, []Kill) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{}
	window := func(maxLen float64) (float64, float64) {
		lo, hi := 0.05*cfg.Horizon, 0.95*cfg.Horizon
		from := lo + rng.Float64()*(hi-lo)
		until := from + (0.05+rng.Float64())*maxLen
		return from, until
	}
	pair := func() (cluster.MachineID, cluster.MachineID) {
		src := cluster.MachineID(rng.Intn(cfg.Machines))
		dst := cluster.MachineID(rng.Intn(cfg.Machines))
		for dst == src {
			dst = cluster.MachineID(rng.Intn(cfg.Machines))
		}
		return src, dst
	}
	for i := 0; i < cfg.Degrades; i++ {
		src, dst := pair()
		from, until := window(0.3 * cfg.Horizon)
		s.Links = append(s.Links, LinkFault{
			Src: src, Dst: dst, From: from, Until: until,
			Factor: 2 + rng.Float64()*6,
		})
	}
	for i := 0; i < cfg.Drops; i++ {
		src, dst := pair()
		from, until := window(0.15 * cfg.Horizon)
		s.Links = append(s.Links, LinkFault{
			Src: src, Dst: dst, From: from, Until: until, Drop: true,
		})
	}
	for i := 0; i < cfg.Slowdowns; i++ {
		m := cluster.MachineID(rng.Intn(cfg.Machines))
		from, until := window(0.5 * cfg.Horizon)
		s.Slowdowns = append(s.Slowdowns, Slowdown{
			Machine: m, From: from, Until: until,
			Factor: 2 + rng.Float64()*4,
		})
	}
	var kills []Kill
	used := map[cluster.MachineID]bool{0: true}
	for i := 0; i < cfg.Kills && len(used) < cfg.Machines; i++ {
		m := cluster.MachineID(1 + rng.Intn(cfg.Machines-1))
		for used[m] {
			m = cluster.MachineID(1 + rng.Intn(cfg.Machines-1))
		}
		used[m] = true
		kills = append(kills, Kill{
			Machine: m,
			At:      (0.1 + 0.6*rng.Float64()) * cfg.Horizon,
		})
	}
	return s, kills
}
