package fault

import (
	"math/rand"

	"repro/internal/cluster"
)

// GenConfig parameterizes the seeded chaos-schedule generator.
type GenConfig struct {
	// Machines is the cluster size faults are drawn over.
	Machines int
	// Horizon is the virtual-time span faults land in; windows are drawn
	// from [0.05·Horizon, 0.95·Horizon] so they overlap real work.
	Horizon float64
	// Degrades, Drops and Slowdowns count the faults of each class.
	Degrades  int
	Drops     int
	Slowdowns int
	// Kills is the number of permanent machine deaths to draw (returned
	// separately — deaths are engine.Failure territory).
	Kills int
	// Joins is the number of elastic machine joins to draw. Join targets
	// are the machines [Machines, Machines+Joins) — callers must provision
	// the topology that large (cluster.Expand) and size validation against
	// Machines+Joins.
	Joins int
	// Drains is the number of graceful machine drains to draw, over
	// distinct initially-live machines (never machine 0, never a killed
	// machine). Deadlines mix loose (migration completes) and tight
	// (degrades into the death path) so churn exercises both outcomes.
	Drains int
	// Seed drives every random choice.
	Seed int64
}

// Kill is a generated permanent machine death (mirrors engine.Failure
// without importing the engine, which imports this package).
type Kill struct {
	Machine cluster.MachineID
	At      float64
}

// Generate draws a random but fully deterministic fault schedule: link
// degradations, transfer-drop windows, straggler slowdowns, and machine
// kills. Distinct machines are killed (never machine 0, so a live machine
// always remains) and drop windows are kept short relative to the horizon
// so retries always eventually succeed.
func Generate(cfg GenConfig) (*Schedule, []Kill) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{}
	window := func(maxLen float64) (float64, float64) {
		lo, hi := 0.05*cfg.Horizon, 0.95*cfg.Horizon
		from := lo + rng.Float64()*(hi-lo)
		until := from + (0.05+rng.Float64())*maxLen
		return from, until
	}
	pair := func() (cluster.MachineID, cluster.MachineID) {
		src := cluster.MachineID(rng.Intn(cfg.Machines))
		dst := cluster.MachineID(rng.Intn(cfg.Machines))
		for dst == src {
			dst = cluster.MachineID(rng.Intn(cfg.Machines))
		}
		return src, dst
	}
	for i := 0; i < cfg.Degrades; i++ {
		src, dst := pair()
		from, until := window(0.3 * cfg.Horizon)
		s.Links = append(s.Links, LinkFault{
			Src: src, Dst: dst, From: from, Until: until,
			Factor: 2 + rng.Float64()*6,
		})
	}
	for i := 0; i < cfg.Drops; i++ {
		src, dst := pair()
		from, until := window(0.15 * cfg.Horizon)
		s.Links = append(s.Links, LinkFault{
			Src: src, Dst: dst, From: from, Until: until, Drop: true,
		})
	}
	for i := 0; i < cfg.Slowdowns; i++ {
		m := cluster.MachineID(rng.Intn(cfg.Machines))
		from, until := window(0.5 * cfg.Horizon)
		s.Slowdowns = append(s.Slowdowns, Slowdown{
			Machine: m, From: from, Until: until,
			Factor: 2 + rng.Float64()*4,
		})
	}
	var kills []Kill
	used := map[cluster.MachineID]bool{0: true}
	for i := 0; i < cfg.Kills && len(used) < cfg.Machines; i++ {
		m := cluster.MachineID(1 + rng.Intn(cfg.Machines-1))
		for used[m] {
			m = cluster.MachineID(1 + rng.Intn(cfg.Machines-1))
		}
		used[m] = true
		kills = append(kills, Kill{
			Machine: m,
			At:      (0.1 + 0.6*rng.Float64()) * cfg.Horizon,
		})
	}
	for i := 0; i < cfg.Joins; i++ {
		s.Joins = append(s.Joins, MachineJoin{
			Machine: cluster.MachineID(cfg.Machines + i),
			At:      (0.05 + 0.5*rng.Float64()) * cfg.Horizon,
			NICs:    0,
		})
	}
	// Drains pick distinct initially-live machines, avoiding machine 0 and
	// the killed set so a drain never races a death of the same machine.
	for i := 0; i < cfg.Drains && len(used) < cfg.Machines; i++ {
		m := cluster.MachineID(1 + rng.Intn(cfg.Machines-1))
		for used[m] {
			m = cluster.MachineID(1 + rng.Intn(cfg.Machines-1))
		}
		used[m] = true
		at := (0.1 + 0.5*rng.Float64()) * cfg.Horizon
		// Alternate loose and tight deadlines: loose drains migrate out
		// cleanly, tight ones expire into the death/failover path.
		slack := 0.5 * cfg.Horizon
		if i%2 == 1 {
			slack = 0.01 * cfg.Horizon
		}
		s.Drains = append(s.Drains, MachineDrain{
			Machine: m, At: at, Deadline: at + slack,
		})
	}
	return s, kills
}
