package fault

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestScheduleQueries(t *testing.T) {
	s := &Schedule{
		Links: []LinkFault{
			{Src: 0, Dst: 1, From: 1, Until: 3, Factor: 4},
			{Src: 0, Dst: 1, From: 2, Until: 5, Factor: 2},
			{Src: 2, Dst: 3, From: 0, Until: 1, Drop: true},
		},
		Slowdowns: []Slowdown{
			{Machine: 1, From: 0, Until: 10, Factor: 3},
			{Machine: 1, From: 5, Until: 6, Factor: 2},
		},
	}
	cases := []struct {
		src, dst cluster.MachineID
		at, want float64
	}{
		{0, 1, 0.5, 1}, // before window
		{0, 1, 1.5, 4}, // first fault only
		{0, 1, 2.5, 8}, // overlap compounds
		{0, 1, 4.0, 2}, // second fault only
		{0, 1, 5.0, 1}, // Until is exclusive
		{1, 0, 2.0, 1}, // directed: reverse link healthy
	}
	for _, c := range cases {
		if got := s.LinkFactor(c.src, c.dst, c.at); got != c.want {
			t.Errorf("LinkFactor(%d→%d, %g) = %g, want %g", c.src, c.dst, c.at, got, c.want)
		}
	}
	if !s.DropsTransfer(2, 3, 0.5) {
		t.Error("drop window not active at 0.5")
	}
	if s.DropsTransfer(2, 3, 1.0) {
		t.Error("drop window active at its exclusive end")
	}
	if s.DropsTransfer(3, 2, 0.5) {
		t.Error("drop applies to the reverse link")
	}
	if got := s.SlowdownFactor(1, 5.5); got != 6 {
		t.Errorf("SlowdownFactor overlap = %g, want 6", got)
	}
	if got := s.SlowdownFactor(0, 5.5); got != 1 {
		t.Errorf("healthy machine slowdown = %g, want 1", got)
	}
}

// TestNilScheduleHotPathAllocatesNothing pins the fault-free hot path: the
// engine queries the schedule on every task start and transfer start, and
// with no faults configured (nil schedule) those queries must stay
// allocation-free so the untraced, fault-free event loop is as cheap as it
// was before the fault model existed.
func TestNilScheduleHotPathAllocatesNothing(t *testing.T) {
	var s *Schedule
	allocs := testing.AllocsPerRun(1000, func() {
		if s.LinkFactor(0, 1, 2.5) != 1 || s.SlowdownFactor(0, 2.5) != 1 || s.DropsTransfer(0, 1, 2.5) {
			t.Fatal("nil schedule injected a fault")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-schedule queries allocate %.1f objects per call, want 0", allocs)
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []*Schedule{
		{Links: []LinkFault{{Src: 0, Dst: 9, From: 0, Until: 1, Factor: 2}}},
		{Links: []LinkFault{{Src: 1, Dst: 1, From: 0, Until: 1, Factor: 2}}},
		{Links: []LinkFault{{Src: 0, Dst: 1, From: 2, Until: 1, Factor: 2}}},
		{Links: []LinkFault{{Src: 0, Dst: 1, From: 0, Until: 1, Factor: 0.5}}},
		{Links: []LinkFault{{Src: 0, Dst: 1, From: 0, Until: math.Inf(1), Drop: true}}},
		{Slowdowns: []Slowdown{{Machine: 9, From: 0, Until: 1, Factor: 2}}},
		{Slowdowns: []Slowdown{{Machine: 0, From: 0, Until: 1, Factor: 1}}},
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Errorf("schedule %d validated but is malformed: %+v", i, s)
		}
	}
	ok := &Schedule{
		Links:     []LinkFault{{Src: 0, Dst: 1, From: 0, Until: 2, Factor: 3}, {Src: 1, Dst: 2, From: 1, Until: 2, Drop: true}},
		Slowdowns: []Slowdown{{Machine: 3, From: 0, Until: 5, Factor: 2}},
	}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	var nilSched *Schedule
	if err := nilSched.Validate(4); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.Timeout != 1.0 || p.Backoff != 0.25 || p.Multiplier != 2 || p.MaxBackoff != 8 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	want := []float64{0.25, 0.5, 1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := p.BackoffAt(i + 1); got != w {
			t.Errorf("BackoffAt(%d) = %g, want %g", i+1, got, w)
		}
	}
}

func TestSpeculationPolicy(t *testing.T) {
	p := SpeculationPolicy{Enabled: true}.WithDefaults()
	if p.IsStraggler(10, 2, 1, 10) {
		t.Error("speculated with only 10% of the stage complete")
	}
	if !p.IsStraggler(10, 2, 6, 10) {
		t.Error("missed a 5x straggler with 60% complete")
	}
	if p.IsStraggler(3, 2, 6, 10) {
		t.Error("speculated on a task within the threshold")
	}
	off := SpeculationPolicy{}.WithDefaults()
	if off.IsStraggler(100, 1, 9, 10) {
		t.Error("disabled policy speculated")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{Machines: 8, Horizon: 20, Degrades: 3, Drops: 2, Slowdowns: 2, Kills: 2, Seed: 7}
	s1, k1 := Generate(cfg)
	s2, k2 := Generate(cfg)
	if len(s1.Links) != 5 || len(s1.Slowdowns) != 2 || len(k1) != 2 {
		t.Fatalf("unexpected counts: %d links, %d slowdowns, %d kills", len(s1.Links), len(s1.Slowdowns), len(k1))
	}
	if err := s1.Validate(cfg.Machines); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i := range s1.Links {
		if s1.Links[i] != s2.Links[i] {
			t.Fatal("same seed produced different link faults")
		}
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("same seed produced different kills")
		}
		if k1[i].Machine == 0 {
			t.Fatal("generator killed machine 0")
		}
	}
	seen := map[cluster.MachineID]bool{}
	for _, k := range k1 {
		if seen[k.Machine] {
			t.Fatal("generator killed the same machine twice")
		}
		seen[k.Machine] = true
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faults.json")
	doc := `{
		"kills": [{"machine": 2, "at": 1.5}],
		"links": [{"src": 0, "dst": 3, "from": 0.5, "until": 2.0, "factor": 4}],
		"drops": [{"src": 1, "dst": 2, "from": 0.2, "until": 0.8}],
		"slowdowns": [{"machine": 5, "from": 0, "until": 10, "factor": 3}]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Schedule()
	if len(s.Links) != 2 || len(s.Slowdowns) != 1 {
		t.Fatalf("unexpected schedule: %+v", s)
	}
	if got := s.LinkFactor(0, 3, 1.0); got != 4 {
		t.Errorf("degradation factor = %g, want 4", got)
	}
	if !s.DropsTransfer(1, 2, 0.5) {
		t.Error("drop entry not converted")
	}
	if got := s.SlowdownFactor(5, 5); got != 3 {
		t.Errorf("slowdown factor = %g, want 3", got)
	}
	kills := f.KillList()
	if len(kills) != 1 || kills[0].Machine != 2 || kills[0].At != 1.5 {
		t.Fatalf("unexpected kills: %+v", kills)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte("{"), 0o644)
	if _, err := Load(badPath); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Errorf("bad JSON error = %v", err)
	}
}

func TestFileEmptySchedule(t *testing.T) {
	var f *File
	if f.Schedule() != nil || f.KillList() != nil {
		t.Error("nil file produced a schedule")
	}
	empty := &File{Kills: []FileKill{{Machine: 1, At: 2}}}
	if empty.Schedule() != nil {
		t.Error("kills-only file produced a transient schedule")
	}
}
