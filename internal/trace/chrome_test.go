package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteChromeGolden pins the exporter's exact byte output for the
// hand-built stream. Run `go test ./internal/trace -update` after an
// intentional format change.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, handStream()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter output differs from %s\ngot:\n%s", golden, buf.String())
	}
}

// TestWriteChromeParses checks the output is valid JSON with the structure
// Chrome's trace viewer expects.
func TestWriteChromeParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, handStream()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, ev := range tf.TraceEvents {
		counts[ev.Ph]++
		if ev.Ph == "X" {
			if ev.Dur == nil {
				t.Fatalf("complete event %q without dur", ev.Name)
			}
			if *ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("negative timing on %q: ts=%v dur=%v", ev.Name, ev.Ts, *ev.Dur)
			}
		}
	}
	// handStream: 1 job span + 2 stage spans + 2 task spans + 2 transfers
	// (2 lanes each) = 9 "X"; failure + lost + retry = 3 "i"; metadata for
	// 2 machines (1 process + 3 lanes each) + job row (1 + 2) = 11 "M".
	if counts["X"] != 9 || counts["i"] != 3 || counts["M"] != 11 {
		t.Fatalf("phase counts = %v, want X:9 i:3 M:11", counts)
	}
}

// TestWriteChromeEmpty: an empty stream still yields a parseable file.
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}

// TestWriteChromeDeterministic: the same stream marshals to the same bytes.
func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, handStream()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, handStream()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same stream differ")
	}
}
