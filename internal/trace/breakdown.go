package trace

import "sort"

// Breakdown is the hierarchical metrics view of a trace: per job, per
// stage, per machine. It is computed from the event stream alone
// (Summarize), so it is consistent with any exported trace by
// construction, and — like the stream — identical for every worker count.
type Breakdown struct {
	Jobs []*JobBreakdown
	// Checkpoints / Restores count driver-level checkpoint commits and
	// rollback restores observed in the stream (they carry no machine:
	// their I/O cost appears as ordinary checkpoint/restore jobs).
	Checkpoints int
	Restores    int
	// CheckpointJobs / RestoreJobs record which job each commit / restore
	// belongs to ("ckpt-002", "restore-002", …), in stream order, so a
	// rollback replay is attributable to its iteration instead of being an
	// anonymous global count.
	CheckpointJobs []string
	RestoreJobs    []string
}

// JobBreakdown aggregates one engine job.
type JobBreakdown struct {
	Name       string
	Begin, End float64
	Stages     []*StageBreakdown
}

// StageBreakdown aggregates one stage of a job.
type StageBreakdown struct {
	Name       string
	Begin, End float64
	// Machines holds one entry per machine that did anything in the
	// stage, sorted by machine ID.
	Machines []*MachineBreakdown
}

// MachineBreakdown is the per-machine accounting within one stage (or an
// aggregate across stages; then Machine may be None).
type MachineBreakdown struct {
	Machine int
	// ComputeSeconds is task busy time (compute + local disk) on the
	// machine: the sum of task Start..End intervals.
	ComputeSeconds float64
	// EgressBusySeconds / IngressBusySeconds are the times the machine's
	// NICs were occupied by serialized transfers. Because every transfer
	// occupies exactly one egress and one ingress NIC for its duration,
	// the cluster-wide sums of the two are equal.
	EgressBusySeconds  float64
	IngressBusySeconds float64
	// EgressBytes / IngressBytes are the bytes sent / received. Each sums
	// to the engine's Metrics.NetworkBytes across all machines.
	EgressBytes  int64
	IngressBytes int64
	// BytesToPart attributes sent bytes to the destination partition.
	BytesToPart map[int]int64
	// StallSeconds is the total NIC queueing delay of transfers this
	// machine sent; IncastStallSeconds is the share of inbound transfers'
	// delay where this machine's ingress NIC was the binding constraint
	// (the incast signature: many senders converging on one receiver).
	StallSeconds       float64
	IncastStallSeconds float64
	// TasksRun / TasksLost / Transfers / Retries count completions,
	// failure-killed tasks, sent transfers, and re-dispatches.
	TasksRun  int
	TasksLost int
	Transfers int
	Retries   int
	// TransferDrops / TransferRetries count transfers this machine sent
	// that a transient link fault failed, and their backoff re-issues.
	TransferDrops   int
	TransferRetries int
	// Speculations counts backup task copies launched on this machine by
	// the job manager's straggler rule.
	Speculations int
	// DropStallSeconds is NIC time wasted by dropped transfers: both NICs
	// were held from the attempt's start until the sender's timeout.
	DropStallSeconds float64
	// Failed reports the machine died during the stage.
	Failed bool
}

// add folds other into m (for cross-stage/cross-job aggregation).
func (m *MachineBreakdown) add(other *MachineBreakdown) {
	m.ComputeSeconds += other.ComputeSeconds
	m.EgressBusySeconds += other.EgressBusySeconds
	m.IngressBusySeconds += other.IngressBusySeconds
	m.EgressBytes += other.EgressBytes
	m.IngressBytes += other.IngressBytes
	for p, b := range other.BytesToPart {
		if m.BytesToPart == nil {
			m.BytesToPart = make(map[int]int64)
		}
		m.BytesToPart[p] += b
	}
	m.StallSeconds += other.StallSeconds
	m.IncastStallSeconds += other.IncastStallSeconds
	m.TasksRun += other.TasksRun
	m.TasksLost += other.TasksLost
	m.Transfers += other.Transfers
	m.Retries += other.Retries
	m.TransferDrops += other.TransferDrops
	m.TransferRetries += other.TransferRetries
	m.Speculations += other.Speculations
	m.DropStallSeconds += other.DropStallSeconds
	m.Failed = m.Failed || other.Failed
}

// machine finds or creates the stage's breakdown row for machine id.
func (sb *StageBreakdown) machine(id int) *MachineBreakdown {
	for _, mb := range sb.Machines {
		if mb.Machine == id {
			return mb
		}
	}
	mb := &MachineBreakdown{Machine: id}
	sb.Machines = append(sb.Machines, mb)
	return mb
}

// Summarize folds an event stream into the job → stage → machine hierarchy.
// Events outside any job or stage context (there are none in engine-emitted
// streams) are gathered under a synthetic "(untracked)" job/stage.
func Summarize(events []Event) *Breakdown {
	b := &Breakdown{}
	var job *JobBreakdown
	var stage *StageBreakdown
	ensure := func() *StageBreakdown {
		if job == nil {
			job = &JobBreakdown{Name: "(untracked)"}
			b.Jobs = append(b.Jobs, job)
		}
		if stage == nil {
			stage = &StageBreakdown{Name: "(untracked)"}
			job.Stages = append(job.Stages, stage)
		}
		return stage
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindJobBegin:
			job = &JobBreakdown{Name: ev.Job, Begin: ev.Time, End: ev.Time}
			stage = nil
			b.Jobs = append(b.Jobs, job)
		case KindJobEnd:
			if job != nil {
				job.End = ev.Time
			}
			stage = nil
		case KindStageBegin:
			if job == nil {
				ensure()
			}
			stage = &StageBreakdown{Name: ev.Stage, Begin: ev.Time, End: ev.Time}
			job.Stages = append(job.Stages, stage)
		case KindStageEnd:
			if stage != nil {
				stage.End = ev.Time
			}
			stage = nil
		case KindTaskEnd:
			mb := ensure().machine(ev.Machine)
			mb.ComputeSeconds += ev.End - ev.Start
			mb.TasksRun++
		case KindTaskLost:
			ensure().machine(ev.Machine).TasksLost++
		case KindTransfer, KindPartitionMigrate:
			// Migration bytes are counted like transfers: they occupy the
			// same NICs and sum into Metrics.NetworkBytes, so the
			// egress/ingress reconciliation invariant holds on elastic runs.
			sb := ensure()
			src := sb.machine(ev.Machine)
			dst := sb.machine(ev.Dst)
			dur := ev.End - ev.Start
			src.EgressBusySeconds += dur
			src.EgressBytes += ev.Bytes
			src.Transfers++
			src.StallSeconds += ev.Stall
			if src.BytesToPart == nil {
				src.BytesToPart = make(map[int]int64)
			}
			src.BytesToPart[ev.Part] += ev.Bytes
			dst.IngressBusySeconds += dur
			dst.IngressBytes += ev.Bytes
			if ev.Incast {
				dst.IncastStallSeconds += ev.Stall
			}
		case KindFailure:
			ensure().machine(ev.Machine).Failed = true
		case KindRetry:
			ensure().machine(ev.Machine).Retries++
		case KindTransferDrop:
			mb := ensure().machine(ev.Machine)
			mb.TransferDrops++
			mb.DropStallSeconds += ev.End - ev.Start
		case KindTransferRetry:
			ensure().machine(ev.Machine).TransferRetries++
		case KindSpeculate:
			ensure().machine(ev.Machine).Speculations++
		case KindCheckpoint:
			b.Checkpoints++
			b.CheckpointJobs = append(b.CheckpointJobs, ev.Job)
		case KindRestore:
			b.Restores++
			b.RestoreJobs = append(b.RestoreJobs, ev.Job)
		}
	}
	for _, jb := range b.Jobs {
		for _, sb := range jb.Stages {
			sort.Slice(sb.Machines, func(i, j int) bool {
				return sb.Machines[i].Machine < sb.Machines[j].Machine
			})
		}
	}
	return b
}

// PerMachine aggregates the breakdown across every job and stage into one
// row per machine, sorted by machine ID.
func (b *Breakdown) PerMachine() []*MachineBreakdown {
	byID := make(map[int]*MachineBreakdown)
	for _, jb := range b.Jobs {
		for _, sb := range jb.Stages {
			for _, mb := range sb.Machines {
				agg, ok := byID[mb.Machine]
				if !ok {
					agg = &MachineBreakdown{Machine: mb.Machine}
					byID[mb.Machine] = agg
				}
				agg.add(mb)
			}
		}
	}
	out := make([]*MachineBreakdown, 0, len(byID))
	for _, mb := range byID {
		out = append(out, mb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// Totals aggregates the whole trace into one row (Machine == None).
func (b *Breakdown) Totals() MachineBreakdown {
	t := MachineBreakdown{Machine: None}
	for _, mb := range b.PerMachine() {
		t.add(mb)
	}
	return t
}
