package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The raw-trace reader's failure contract: a damaged file is refused with
// an error naming the damage, and no partial stream ever escapes — a
// truncated capture must not silently analyze as a shorter run.

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReadEventsValidFixture(t *testing.T) {
	s, err := ReadEvents(bytes.NewReader(readFixture(t, "valid.json")))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 6 || s.Topo == nil || s.Topo.Machines != 2 {
		t.Fatalf("fixture parsed wrong: %d events, topo %+v", len(s.Events), s.Topo)
	}
}

func TestReadEventsTruncated(t *testing.T) {
	s, err := ReadEvents(bytes.NewReader(readFixture(t, "truncated.json")))
	if err == nil {
		t.Fatalf("truncated file accepted with %d events — partial success must be an error", len(s.Events))
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncation error %q should say the file is truncated", err)
	}
	if s != nil {
		t.Error("truncated read returned a stream alongside the error")
	}
}

// TestReadEventsEveryTruncationPoint: no prefix of a valid file may parse
// except the complete one. This is the no-silent-partial-success property
// over the whole file, not one lucky cut.
func TestReadEventsEveryTruncationPoint(t *testing.T) {
	// The trailing newline is cosmetic; every cut inside the JSON value
	// itself must fail.
	full := bytes.TrimRight(readFixture(t, "valid.json"), "\n")
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadEvents(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed successfully", cut, len(full))
		}
	}
	if _, err := ReadEvents(bytes.NewReader(full)); err != nil {
		t.Fatalf("complete file rejected: %v", err)
	}
}

func TestReadEventsCorruptJSON(t *testing.T) {
	_, err := ReadEvents(bytes.NewReader(readFixture(t, "corrupt.json")))
	if err == nil {
		t.Fatal("corrupt file accepted")
	}
	if !strings.Contains(err.Error(), "invalid raw trace JSON") {
		t.Errorf("corruption error %q should name invalid JSON", err)
	}
	if strings.Contains(err.Error(), "truncated") {
		t.Errorf("mid-file corruption misreported as truncation: %q", err)
	}
}

func TestReadEventsBadSeq(t *testing.T) {
	_, err := ReadEvents(bytes.NewReader(readFixture(t, "badseq.json")))
	if err == nil {
		t.Fatal("seq-gap file accepted")
	}
	if !strings.Contains(err.Error(), "reordered or truncated") {
		t.Errorf("seq error %q should flag reordering/truncation", err)
	}
}

func TestReadEventsEmptyAndForeign(t *testing.T) {
	if _, err := ReadEvents(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	_, err := ReadEvents(strings.NewReader(`{"format":"chrome-trace","version":1,"events":[]}`))
	if err == nil {
		t.Fatal("foreign format accepted")
	}
	if !strings.Contains(err.Error(), "not a raw event trace") {
		t.Errorf("foreign-format error %q should name the format mismatch", err)
	}
}
