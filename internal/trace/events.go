package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Raw event-stream export: unlike the Chrome export (a rendering), this
// format round-trips the exact Event stream — Seq/Cause edges included — so
// surfer-analyze can rebuild the causal DAG and surfer-trace -breakdown can
// recompute the job→stage→machine hierarchy from a file. The header embeds
// the cluster's bandwidth matrix, which is what the analyzer's
// bisection-level link report needs; a trace therefore carries everything
// required to attribute its own makespan.

// StreamFormat and StreamVersion identify the raw trace file format. The
// version bumps whenever Event gains fields analysis depends on.
const (
	StreamFormat  = "surfer-trace-events"
	StreamVersion = 1
)

// TopoInfo is the topology header of a raw trace: enough of the cluster
// model to rebuild the machine graph (per-pair bandwidth) without the
// generating process.
type TopoInfo struct {
	Name     string `json:"name"`
	Machines int    `json:"machines"`
	// Bandwidth is the full pairwise bandwidth matrix in bytes/second
	// (diagonal = loopback), row-major [src][dst].
	Bandwidth [][]float64 `json:"bandwidth"`
}

// Stream is a parsed raw trace file.
type Stream struct {
	Format  string    `json:"format"`
	Version int       `json:"version"`
	Topo    *TopoInfo `json:"topology,omitempty"`
	Events  []Event   `json:"events"`
}

// WriteEvents writes the event stream (with an optional topology header) as
// raw trace JSON: one event per line, struct-driven field order, so
// identical streams produce byte-identical files — the same determinism
// guarantee the Chrome export carries.
func WriteEvents(w io.Writer, topo *TopoInfo, events []Event) error {
	if _, err := fmt.Fprintf(w, "{\"format\":%q,\"version\":%d", StreamFormat, StreamVersion); err != nil {
		return err
	}
	if topo != nil {
		hdr, err := json.Marshal(topo)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, ",\"topology\":"); err != nil {
			return err
		}
		if _, err := w.Write(hdr); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, ",\"events\":[\n"); err != nil {
		return err
	}
	for i := range events {
		line, err := json.Marshal(&events[i])
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// ReadEvents parses a raw trace file and validates its envelope: the format
// marker, a supported version, and consistent Seq numbering (Seq == stream
// position, Cause < Seq) so DAG reconstruction can index events directly.
func ReadEvents(r io.Reader) (*Stream, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var s Stream
	if err := json.Unmarshal(data, &s); err != nil {
		// A cut-off file fails at the very end of the input; name the real
		// problem instead of pointing at the JSON grammar.
		var syn *json.SyntaxError
		if errors.As(err, &syn) && syn.Offset >= int64(len(data)) {
			return nil, fmt.Errorf("trace: raw trace file is truncated after %d bytes (the capture was interrupted or the copy is partial): %w", len(data), err)
		}
		return nil, fmt.Errorf("trace: invalid raw trace JSON: %w", err)
	}
	if s.Format != StreamFormat {
		return nil, fmt.Errorf("trace: not a raw event trace (format %q, want %q — Chrome exports cannot be analyzed, re-capture with -events)", s.Format, StreamFormat)
	}
	if s.Version != StreamVersion {
		return nil, fmt.Errorf("trace: unsupported raw trace version %d (want %d)", s.Version, StreamVersion)
	}
	for i := range s.Events {
		ev := &s.Events[i]
		if ev.Seq != i {
			return nil, fmt.Errorf("trace: event %d carries seq %d; stream is reordered or truncated", i, ev.Seq)
		}
		if ev.Cause < None || ev.Cause >= ev.Seq {
			return nil, fmt.Errorf("trace: event %d has acausal cause %d", i, ev.Cause)
		}
	}
	if s.Topo != nil {
		if s.Topo.Machines != len(s.Topo.Bandwidth) {
			return nil, fmt.Errorf("trace: topology header claims %d machines but carries a %d-row bandwidth matrix", s.Topo.Machines, len(s.Topo.Bandwidth))
		}
		for i, row := range s.Topo.Bandwidth {
			if len(row) != s.Topo.Machines {
				return nil, fmt.Errorf("trace: bandwidth matrix row %d has %d entries, want %d", i, len(row), s.Topo.Machines)
			}
		}
	}
	return &s, nil
}
