package trace

import "testing"

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("NewRecorder not enabled")
	}
	if r.Len() != 0 {
		t.Fatalf("fresh recorder has %d events", r.Len())
	}
	r.Emit(Event{Kind: KindJobBegin, Job: "j"})
	r.Emit(Event{Kind: KindJobEnd, Job: "j", Time: 1})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != KindJobBegin || evs[1].Kind != KindJobEnd {
		t.Fatalf("events out of order: %v, %v", evs[0].Kind, evs[1].Kind)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Emit(Event{Kind: KindTransfer}) // must not panic
	r.Reset()                         // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder holds events")
	}
}

// TestDisabledRecorderAllocatesNothing pins the zero-overhead-when-disabled
// contract: emitting through a nil recorder performs no allocation, so the
// engine's untraced hot path stays free.
func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder
	ev := Event{Kind: KindTransfer, Job: "j", Stage: "s", Machine: 1, Dst: 2, Bytes: 1 << 20}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f objects per call, want 0", allocs)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{KindJobBegin, KindJobEnd, KindStageBegin, KindStageEnd,
		KindTaskStart, KindTaskEnd, KindTaskLost, KindTransfer, KindFailure, KindRetry,
		KindTransferDrop, KindTransferRetry, KindSpeculate, KindCheckpoint, KindRestore}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EventKind(250).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}

// handStream is a two-stage job on two machines with one transfer each way
// plus a failure/retry pair, exercising every Summarize path.
func handStream() []Event {
	return []Event{
		{Kind: KindJobBegin, Job: "j1", Time: 0},
		{Kind: KindStageBegin, Job: "j1", Stage: "s1", Time: 0},
		{Kind: KindTaskStart, Job: "j1", Stage: "s1", Name: "t0", Machine: 0, Part: 0, Time: 0, Start: 0},
		{Kind: KindTaskEnd, Job: "j1", Stage: "s1", Name: "t0", Machine: 0, Part: 0, Time: 2, Start: 0, End: 2},
		// m0 -> m1, issued at 2, NICs free immediately: no stall.
		{Kind: KindTransfer, Job: "j1", Stage: "s1", Machine: 0, Dst: 1, Part: 1, Bytes: 100, Time: 2, Start: 2, End: 3},
		// m1 -> m0, issued at 2 but delayed to 3 by m0's busy ingress: incast.
		{Kind: KindTransfer, Job: "j1", Stage: "s1", Machine: 1, Dst: 0, Part: 0, Bytes: 50, Time: 2, Start: 3, End: 3.5, Stall: 1, Incast: true},
		{Kind: KindStageEnd, Job: "j1", Stage: "s1", Time: 3.5},
		{Kind: KindStageBegin, Job: "j1", Stage: "s2", Time: 3.5},
		{Kind: KindFailure, Job: "j1", Stage: "s2", Machine: 1, Time: 4},
		{Kind: KindTaskLost, Job: "j1", Stage: "s2", Name: "t1", Machine: 1, Part: 1, Time: 4},
		{Kind: KindRetry, Job: "j1", Stage: "s2", Name: "t1", Machine: 0, Part: 1, Time: 5},
		{Kind: KindTaskEnd, Job: "j1", Stage: "s2", Name: "t1", Machine: 0, Part: 1, Time: 7, Start: 5, End: 7},
		{Kind: KindStageEnd, Job: "j1", Stage: "s2", Time: 7},
		{Kind: KindJobEnd, Job: "j1", Time: 7},
	}
}

func TestSummarize(t *testing.T) {
	b := Summarize(handStream())
	if len(b.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(b.Jobs))
	}
	jb := b.Jobs[0]
	if jb.Name != "j1" || jb.Begin != 0 || jb.End != 7 {
		t.Fatalf("job = %q [%v, %v]", jb.Name, jb.Begin, jb.End)
	}
	if len(jb.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(jb.Stages))
	}
	s1 := jb.Stages[0]
	if s1.Name != "s1" || s1.End != 3.5 {
		t.Fatalf("stage1 = %q end %v", s1.Name, s1.End)
	}
	if len(s1.Machines) != 2 {
		t.Fatalf("stage1 machines = %d, want 2", len(s1.Machines))
	}
	m0, m1 := s1.Machines[0], s1.Machines[1]
	if m0.Machine != 0 || m1.Machine != 1 {
		t.Fatalf("machines not sorted: %d, %d", m0.Machine, m1.Machine)
	}
	if m0.ComputeSeconds != 2 || m0.TasksRun != 1 {
		t.Fatalf("m0 compute = %v / %d tasks", m0.ComputeSeconds, m0.TasksRun)
	}
	if m0.EgressBytes != 100 || m0.IngressBytes != 50 {
		t.Fatalf("m0 egress/ingress bytes = %d/%d", m0.EgressBytes, m0.IngressBytes)
	}
	if m0.EgressBusySeconds != 1 || m0.IngressBusySeconds != 0.5 {
		t.Fatalf("m0 NIC busy = %v/%v", m0.EgressBusySeconds, m0.IngressBusySeconds)
	}
	if m0.BytesToPart[1] != 100 {
		t.Fatalf("m0 bytes to part 1 = %d", m0.BytesToPart[1])
	}
	if m0.IncastStallSeconds != 1 {
		t.Fatalf("m0 incast stall = %v, want 1 (it was the congested receiver)", m0.IncastStallSeconds)
	}
	if m1.StallSeconds != 1 {
		t.Fatalf("m1 stall = %v, want 1 (its transfer queued)", m1.StallSeconds)
	}
	s2 := jb.Stages[1]
	fm := s2.machine(1)
	if !fm.Failed || fm.TasksLost != 1 {
		t.Fatalf("machine 1 in s2: failed=%v lost=%d", fm.Failed, fm.TasksLost)
	}
	if s2.machine(0).Retries != 1 {
		t.Fatalf("machine 0 retries = %d", s2.machine(0).Retries)
	}

	// Cross-stage aggregation and cluster-wide invariants.
	per := b.PerMachine()
	if len(per) != 2 {
		t.Fatalf("PerMachine rows = %d", len(per))
	}
	if per[0].TasksRun != 2 {
		t.Fatalf("m0 total tasks = %d, want 2", per[0].TasksRun)
	}
	tot := b.Totals()
	if tot.EgressBytes != tot.IngressBytes {
		t.Fatalf("cluster egress %d != ingress %d", tot.EgressBytes, tot.IngressBytes)
	}
	if tot.EgressBusySeconds != tot.IngressBusySeconds {
		t.Fatalf("cluster egress busy %v != ingress busy %v", tot.EgressBusySeconds, tot.IngressBusySeconds)
	}
	if tot.EgressBytes != 150 {
		t.Fatalf("total bytes = %d, want 150", tot.EgressBytes)
	}
}

func TestSummarizeUntracked(t *testing.T) {
	b := Summarize([]Event{
		{Kind: KindTaskEnd, Machine: 3, Start: 0, End: 1},
	})
	if len(b.Jobs) != 1 || b.Jobs[0].Name != "(untracked)" {
		t.Fatalf("untracked events not gathered: %+v", b.Jobs)
	}
}

// TestSummarizeFaultKinds covers the expanded fault model's event kinds:
// dropped transfers with their wasted NIC time, backoff retries, backup
// task launches, and driver-level checkpoint/restore markers.
func TestSummarizeFaultKinds(t *testing.T) {
	b := Summarize([]Event{
		{Kind: KindJobBegin, Job: "j", Time: 0},
		{Kind: KindStageBegin, Job: "j", Stage: "s", Time: 0},
		{Kind: KindTransferDrop, Job: "j", Stage: "s", Machine: 0, Dst: 1, Bytes: 100, Time: 0, Start: 0.5, End: 1.5},
		{Kind: KindTransferRetry, Job: "j", Stage: "s", Machine: 0, Dst: 1, Time: 2, Attempt: 1},
		{Kind: KindTransfer, Job: "j", Stage: "s", Machine: 0, Dst: 1, Part: 0, Bytes: 100, Time: 2, Start: 2, End: 3, Attempt: 1},
		{Kind: KindSpeculate, Job: "j", Stage: "s", Name: "t0", Machine: 2, Part: 0, Time: 2.5},
		{Kind: KindStageEnd, Job: "j", Stage: "s", Time: 3},
		{Kind: KindJobEnd, Job: "j", Time: 3},
		{Kind: KindCheckpoint, Job: "ckpt-1", Machine: None, Dst: None, Part: None, Bytes: 4096, Time: 3},
		{Kind: KindRestore, Job: "restore-1", Machine: None, Dst: None, Part: None, Bytes: 4096, Time: 4},
	})
	tot := b.Totals()
	if tot.TransferDrops != 1 || tot.TransferRetries != 1 {
		t.Fatalf("drops/retries = %d/%d, want 1/1", tot.TransferDrops, tot.TransferRetries)
	}
	if tot.DropStallSeconds != 1.0 {
		t.Fatalf("drop stall = %v, want 1.0", tot.DropStallSeconds)
	}
	if tot.Speculations != 1 {
		t.Fatalf("speculations = %d, want 1", tot.Speculations)
	}
	if b.Checkpoints != 1 || b.Restores != 1 {
		t.Fatalf("checkpoints/restores = %d/%d, want 1/1", b.Checkpoints, b.Restores)
	}
	// Delivered bytes count the successful attempt only.
	if tot.EgressBytes != 100 {
		t.Fatalf("egress bytes = %d, want 100", tot.EgressBytes)
	}
}
