package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: one JSON object in the format accepted by
// chrome://tracing and Perfetto (legacy JSON importer). The layout puts
// machines as rows against the virtual clock:
//
//   - each machine is a process (pid = machine ID, named "machine-NN")
//     with three thread lanes: "tasks" (task busy intervals), "egress"
//     and "ingress" (NIC busy intervals — serialized transfers, so a
//     lane's intervals never overlap);
//   - a final "job" process (pid = number of machines) carries the job
//     and stage-barrier spans;
//   - failures, lost tasks and retries are instant events on the machine
//     that suffered them.
//
// Times are microseconds of virtual time. The writer emits events in
// stream order with struct-driven field order and strconv float
// formatting, so identical event streams produce byte-identical files —
// the property the determinism tests pin down.

// Thread lane IDs within a machine process.
const (
	laneTasks = iota
	laneEgress
	laneIngress
)

// chromeEvent is one trace_event entry. Field order (and therefore output
// byte layout) is fixed by the struct; optional fields are omitted when
// empty so instant and metadata events stay minimal.
type chromeEvent struct {
	Name  string      `json:"name"`
	Ph    string      `json:"ph"`
	Cat   string      `json:"cat,omitempty"`
	Pid   int         `json:"pid"`
	Tid   int         `json:"tid"`
	Ts    float64     `json:"ts"`
	Dur   *float64    `json:"dur,omitempty"`
	Scope string      `json:"s,omitempty"`
	Args  *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the structured payload of an event. Only the fields
// relevant to the event kind are set.
type chromeArgs struct {
	Name    string   `json:"name,omitempty"` // metadata events
	Part    *int     `json:"part,omitempty"`
	Bytes   *int64   `json:"bytes,omitempty"`
	Src     *int     `json:"src,omitempty"`
	Dst     *int     `json:"dst,omitempty"`
	StallUs *float64 `json:"stall_us,omitempty"`
	Incast  bool     `json:"incast,omitempty"`
	Job     string   `json:"job,omitempty"`
}

func usec(t float64) float64 { return t * 1e6 }

func ptrF(v float64) *float64 { return &v }
func ptrI(v int) *int         { return &v }
func ptrB(v int64) *int64     { return &v }

// WriteChrome writes the event stream as Chrome trace_event JSON. The
// output is one event per line inside the traceEvents array, so diffs and
// golden files stay readable.
func WriteChrome(w io.Writer, events []Event) error {
	maxMachine := -1
	note := func(m int) {
		if m > maxMachine {
			maxMachine = m
		}
	}
	for i := range events {
		if events[i].Machine != None {
			note(events[i].Machine)
		}
		if events[i].Dst != None {
			note(events[i].Dst)
		}
	}
	jobPid := maxMachine + 1

	var out []chromeEvent
	// Metadata: name every machine process and its lanes, then the job row.
	for m := 0; m <= maxMachine; m++ {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: m,
			Args: &chromeArgs{Name: fmt.Sprintf("machine-%02d", m)},
		})
		for lane, name := range []string{"tasks", "egress", "ingress"} {
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: m, Tid: lane,
				Args: &chromeArgs{Name: name},
			})
		}
	}
	out = append(out,
		chromeEvent{Name: "process_name", Ph: "M", Pid: jobPid, Args: &chromeArgs{Name: "job"}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: jobPid, Tid: 0, Args: &chromeArgs{Name: "jobs"}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: jobPid, Tid: 1, Args: &chromeArgs{Name: "stages"}},
	)

	// Jobs and stages need their end events to compute spans; scan ahead
	// by pairing each begin with the next matching end in stream order.
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindJobBegin:
			if end := findEnd(events, i, KindJobEnd); end >= 0 {
				out = append(out, chromeEvent{
					Name: ev.Job, Ph: "X", Cat: "job", Pid: jobPid, Tid: 0,
					Ts: usec(ev.Time), Dur: ptrF(usec(events[end].Time - ev.Time)),
				})
			}
		case KindStageBegin:
			if end := findEnd(events, i, KindStageEnd); end >= 0 {
				out = append(out, chromeEvent{
					Name: ev.Stage, Ph: "X", Cat: "stage", Pid: jobPid, Tid: 1,
					Ts: usec(ev.Time), Dur: ptrF(usec(events[end].Time - ev.Time)),
					Args: &chromeArgs{Job: ev.Job},
				})
			}
		case KindTaskEnd:
			out = append(out, chromeEvent{
				Name: ev.Name, Ph: "X", Cat: "task", Pid: ev.Machine, Tid: laneTasks,
				Ts: usec(ev.Start), Dur: ptrF(usec(ev.End - ev.Start)),
				Args: taskArgs(ev),
			})
		case KindTaskLost:
			out = append(out, chromeEvent{
				Name: "lost:" + ev.Name, Ph: "i", Cat: "failure",
				Pid: ev.Machine, Tid: laneTasks, Ts: usec(ev.Time), Scope: "t",
				Args: taskArgs(ev),
			})
		case KindTransfer:
			args := &chromeArgs{
				Bytes: ptrB(ev.Bytes), Src: ptrI(ev.Machine), Dst: ptrI(ev.Dst),
				StallUs: ptrF(usec(ev.Stall)), Incast: ev.Incast,
			}
			if ev.Part != None {
				args.Part = ptrI(ev.Part)
			}
			dur := ptrF(usec(ev.End - ev.Start))
			out = append(out,
				chromeEvent{
					Name: fmt.Sprintf("send→m%02d", ev.Dst), Ph: "X", Cat: "transfer",
					Pid: ev.Machine, Tid: laneEgress, Ts: usec(ev.Start), Dur: dur, Args: args,
				},
				chromeEvent{
					Name: fmt.Sprintf("recv←m%02d", ev.Machine), Ph: "X", Cat: "transfer",
					Pid: ev.Dst, Tid: laneIngress, Ts: usec(ev.Start), Dur: dur, Args: args,
				})
		case KindFailure:
			out = append(out, chromeEvent{
				Name: "machine-failure", Ph: "i", Cat: "failure",
				Pid: ev.Machine, Tid: laneTasks, Ts: usec(ev.Time), Scope: "p",
			})
		case KindRetry:
			out = append(out, chromeEvent{
				Name: "retry:" + ev.Name, Ph: "i", Cat: "failure",
				Pid: ev.Machine, Tid: laneTasks, Ts: usec(ev.Time), Scope: "t",
				Args: taskArgs(ev),
			})
		case KindTransferDrop:
			// The failed attempt held the sender's egress NIC from Start
			// until the timeout fired at End; render it as a span so the
			// wasted NIC time is visible next to successful transfers.
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("drop→m%02d", ev.Dst), Ph: "X", Cat: "fault",
				Pid: ev.Machine, Tid: laneEgress, Ts: usec(ev.Start),
				Dur: ptrF(usec(ev.End - ev.Start)),
				Args: &chromeArgs{
					Bytes: ptrB(ev.Bytes), Src: ptrI(ev.Machine), Dst: ptrI(ev.Dst),
				},
			})
		case KindTransferRetry:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("transfer-retry→m%02d", ev.Dst), Ph: "i", Cat: "fault",
				Pid: ev.Machine, Tid: laneEgress, Ts: usec(ev.Time), Scope: "t",
				Args: &chromeArgs{Dst: ptrI(ev.Dst)},
			})
		case KindSpeculate:
			out = append(out, chromeEvent{
				Name: "speculate:" + ev.Name, Ph: "i", Cat: "speculation",
				Pid: ev.Machine, Tid: laneTasks, Ts: usec(ev.Time), Scope: "t",
				Args: taskArgs(ev),
			})
		case KindCheckpoint:
			out = append(out, chromeEvent{
				Name: "checkpoint", Ph: "i", Cat: "checkpoint",
				Pid: jobPid, Tid: 0, Ts: usec(ev.Time), Scope: "p",
				Args: &chromeArgs{Bytes: ptrB(ev.Bytes), Job: ev.Job},
			})
		case KindRestore:
			out = append(out, chromeEvent{
				Name: "restore", Ph: "i", Cat: "checkpoint",
				Pid: jobPid, Tid: 0, Ts: usec(ev.Time), Scope: "p",
				Args: &chromeArgs{Bytes: ptrB(ev.Bytes), Job: ev.Job},
			})
		case KindMachineJoin:
			out = append(out, chromeEvent{
				Name: "machine-join", Ph: "i", Cat: "elastic",
				Pid: ev.Machine, Tid: laneTasks, Ts: usec(ev.Time), Scope: "p",
			})
		case KindMachineDrain:
			out = append(out, chromeEvent{
				Name: "machine-drain", Ph: "i", Cat: "elastic",
				Pid: ev.Machine, Tid: laneTasks, Ts: usec(ev.Time), Scope: "p",
			})
		case KindPartitionMigrate:
			// Migrations occupy NICs like transfers; render both endpoints,
			// labeled so drain traffic is distinguishable from app traffic.
			args := &chromeArgs{
				Bytes: ptrB(ev.Bytes), Src: ptrI(ev.Machine), Dst: ptrI(ev.Dst),
				StallUs: ptrF(usec(ev.Stall)),
			}
			if ev.Part != None {
				args.Part = ptrI(ev.Part)
			}
			dur := ptrF(usec(ev.End - ev.Start))
			out = append(out,
				chromeEvent{
					Name: fmt.Sprintf("migrate→m%02d", ev.Dst), Ph: "X", Cat: "elastic",
					Pid: ev.Machine, Tid: laneEgress, Ts: usec(ev.Start), Dur: dur, Args: args,
				},
				chromeEvent{
					Name: fmt.Sprintf("migrate←m%02d", ev.Machine), Ph: "X", Cat: "elastic",
					Pid: ev.Dst, Tid: laneIngress, Ts: usec(ev.Start), Dur: dur, Args: args,
				})
		}
	}

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range out {
		line, err := json.Marshal(&out[i])
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

func taskArgs(ev *Event) *chromeArgs {
	if ev.Part == None {
		return nil
	}
	return &chromeArgs{Part: ptrI(ev.Part)}
}

// findEnd locates the matching end event for the begin at index i: the next
// event of the given kind with the same Job (and Stage for stage ends).
func findEnd(events []Event, i int, kind EventKind) int {
	for j := i + 1; j < len(events); j++ {
		if events[j].Kind != kind {
			continue
		}
		if events[j].Job != events[i].Job {
			continue
		}
		if kind == KindStageEnd && events[j].Stage != events[i].Stage {
			continue
		}
		return j
	}
	return -1
}
