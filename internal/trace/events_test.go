package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestEventsRoundTrip: WriteEvents → ReadEvents preserves the stream and
// the topology header exactly.
func TestEventsRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 0, Cause: None, Kind: KindJobBegin, Job: "j", Machine: None, Dst: None, Part: None},
		{Seq: 1, Cause: 0, Kind: KindStageBegin, Job: "j", Stage: "s", Machine: None, Dst: None, Part: None},
		{Seq: 2, Cause: 1, Kind: KindTransfer, Job: "j", Stage: "s", Name: "t-p1",
			Machine: 0, Dst: 1, Part: 1, Time: 0.5, Start: 0.25, End: 0.5, Bytes: 128, Stall: 0.1, Incast: true},
	}
	topo := &TopoInfo{Name: "T1", Machines: 2, Bandwidth: [][]float64{{1e9, 1e8}, {1e8, 1e9}}}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, topo, events); err != nil {
		t.Fatal(err)
	}
	s, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Events, events) {
		t.Fatalf("events changed in round trip:\n%+v\n%+v", s.Events, events)
	}
	if !reflect.DeepEqual(s.Topo, topo) {
		t.Fatalf("topology changed in round trip: %+v", s.Topo)
	}
}

// TestReadEventsRejects: the reader refuses Chrome exports, future
// versions, and reordered/acausal streams.
func TestReadEventsRejects(t *testing.T) {
	cases := map[string]string{
		"chrome export":  `{"displayTimeUnit":"ms","traceEvents":[]}`,
		"future version": `{"format":"surfer-trace-events","version":99,"events":[]}`,
		"reordered seq":  `{"format":"surfer-trace-events","version":1,"events":[{"seq":1,"cause":-1}]}`,
		"acausal cause":  `{"format":"surfer-trace-events","version":1,"events":[{"seq":0,"cause":0}]}`,
		"ragged matrix":  `{"format":"surfer-trace-events","version":1,"topology":{"name":"x","machines":2,"bandwidth":[[1]]},"events":[]}`,
	}
	for name, data := range cases {
		if _, err := ReadEvents(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
