// Package trace is Surfer's structured observability layer: the engine's
// discrete-event loop emits one Event per task start/finish, per NIC
// transfer, per stage barrier and per injected failure/retry into a
// Recorder. The stream is the ground truth behind the hierarchical metrics
// breakdown (Summarize) and the Chrome trace_event exporter (WriteChrome),
// and it inherits the engine's determinism contract: because every event is
// emitted from the serial event loop, the stream — and therefore the
// exported JSON — is byte-identical for every compute worker count.
//
// Tracing is off by default and free when off: a nil *Recorder is a valid,
// disabled recorder whose Emit is a nil-check and nothing else (no
// allocation, pinned by TestDisabledRecorderAllocatesNothing).
package trace

// EventKind identifies what a trace event describes.
type EventKind uint8

const (
	// KindJobBegin / KindJobEnd bracket one engine job (all its stages).
	KindJobBegin EventKind = iota
	KindJobEnd
	// KindStageBegin / KindStageEnd bracket one stage barrier: StageEnd
	// fires only after every task and every transfer of the stage is done.
	KindStageBegin
	KindStageEnd
	// KindTaskStart marks a task beginning execution on Machine at Start.
	KindTaskStart
	// KindTaskEnd marks a task completing on Machine; Start..End is its
	// busy interval (compute + local disk).
	KindTaskEnd
	// KindTaskLost marks a task killed by its machine's failure before
	// completing; Time is the failure time.
	KindTaskLost
	// KindTransfer is one NIC-serialized transfer: Machine -> Dst of Bytes
	// bytes. Time is when the producing task issued it, Start is when both
	// NICs became free (Stall = Start - Time is the queueing delay), End is
	// arrival. Incast reports whether the receiver's ingress NIC — not the
	// sender's egress — was the binding constraint for the delay.
	KindTransfer
	// KindFailure marks a machine death at Time.
	KindFailure
	// KindRetry marks a lost task being re-dispatched to Machine (its
	// failover replica) at Time, after the heartbeat detection latency.
	KindRetry
	// KindTransferDrop marks an in-flight transfer Machine -> Dst failed
	// by a transient link fault: it made no progress, held both NICs from
	// Start until the sender's timeout fired at End, and will be retried.
	// Attempt counts prior attempts (0 = the first send).
	KindTransferDrop
	// KindTransferRetry marks the re-issue of a dropped transfer after
	// its exponential backoff; Attempt is the retry number (1-based).
	KindTransferRetry
	// KindSpeculate marks the job manager launching a backup copy of a
	// straggling task on Machine (a replica holder of Part). The first
	// completed copy commits; results commit in task order either way.
	KindSpeculate
	// KindCheckpoint marks a completed iteration checkpoint: the vertex
	// state persisted to replica machines. Bytes is the state volume.
	KindCheckpoint
	// KindRestore marks a checkpoint restore after a machine death: the
	// run rolled back to the last checkpointed iteration.
	KindRestore
	// KindJobQueued marks a job arriving at the scheduler queue at Time;
	// the gap to its KindJobBegin is scheduler queueing delay.
	KindJobQueued
	// KindJobAdmitted marks the job service granting a queued job a run
	// slot; its Cause is the job's KindJobQueued event, so the walk
	// attributes the submit→admit gap to scheduler queueing.
	KindJobAdmitted
	// KindJobPreempted marks a job losing its run slot at a stage barrier
	// to a higher-ranked job; the job's state is intact and it resumes at
	// the next stage boundary it wins.
	KindJobPreempted
	// KindJobResumed marks a preempted job regaining a run slot; its Cause
	// is the job's KindJobPreempted event, bracketing the suspension.
	KindJobResumed
	// KindJobRejected marks admission control refusing a job at arrival
	// (queue over its limit); the job never runs.
	KindJobRejected
	// KindMachineJoin marks an elastic machine joining the cluster at Time:
	// from here on it accepts migrated partitions, failovers and backups.
	KindMachineJoin
	// KindMachineDrain marks a machine beginning a graceful drain at Time;
	// End carries the drain deadline. Its partitions migrate to survivors;
	// if migration is still incomplete at End the machine dies (an ordinary
	// failure event, caused by this drain).
	KindMachineDrain
	// KindPartitionMigrate is one live partition migration Machine -> Dst of
	// Bytes bytes, NIC-serialized exactly like a transfer (Start..End busy,
	// Stall queueing). Its Cause is the machine-drain that evicted it.
	KindPartitionMigrate
	// KindAlertFired marks an SLO alert rule breaching its threshold for its
	// configured run of consecutive metrics windows. Name is "rule@series",
	// Time is the end of the sealing window, and Cause is the last stream
	// event that contributed to the breaching window, so the causal walk can
	// reach the load that tripped the alert.
	KindAlertFired
	// KindAlertResolved marks the first sealed window in which a fired alert's
	// series no longer breaches; its Cause is the matching KindAlertFired.
	KindAlertResolved
)

func (k EventKind) String() string {
	switch k {
	case KindJobBegin:
		return "job-begin"
	case KindJobEnd:
		return "job-end"
	case KindStageBegin:
		return "stage-begin"
	case KindStageEnd:
		return "stage-end"
	case KindTaskStart:
		return "task-start"
	case KindTaskEnd:
		return "task-end"
	case KindTaskLost:
		return "task-lost"
	case KindTransfer:
		return "transfer"
	case KindFailure:
		return "failure"
	case KindRetry:
		return "retry"
	case KindTransferDrop:
		return "transfer-drop"
	case KindTransferRetry:
		return "transfer-retry"
	case KindSpeculate:
		return "speculate"
	case KindCheckpoint:
		return "checkpoint"
	case KindRestore:
		return "restore"
	case KindJobQueued:
		return "job-queued"
	case KindJobAdmitted:
		return "job-admitted"
	case KindJobPreempted:
		return "job-preempted"
	case KindJobResumed:
		return "job-resumed"
	case KindJobRejected:
		return "job-rejected"
	case KindMachineJoin:
		return "machine-join"
	case KindMachineDrain:
		return "machine-drain"
	case KindPartitionMigrate:
		return "partition-migrate"
	case KindAlertFired:
		return "alert-fired"
	case KindAlertResolved:
		return "alert-resolved"
	default:
		return "unknown"
	}
}

// None marks an Event integer field as not applicable.
const None = -1

// Event is one structured observation from the simulation. Unused fields
// hold zero values (and None for Machine/Dst/Part/Cause when not
// applicable); see docs/METRICS.md for the field-by-field reference.
type Event struct {
	Kind EventKind `json:"kind"`
	// Seq is the event's position in the recorder's stream, assigned by
	// Emit. Because emission happens in the engine's serial event loop it
	// is identical for every worker count, so Seq is a stable event ID.
	Seq int `json:"seq"`
	// Cause is the Seq of the event that causally enabled this one — the
	// parent edge of the causal DAG surfer-analyze walks: a task's end
	// causes the transfers it emitted, a failure causes the retries of its
	// lost tasks, a stage's binding event causes the stage barrier, the
	// previous job's end causes the next job's begin. None for root events.
	Cause int `json:"cause"`
	// Job and Stage name the enclosing engine job and stage.
	Job   string `json:"job,omitempty"`
	Stage string `json:"stage,omitempty"`
	// Tenant names the owning tenant on job-service emissions (and on alert
	// events about a tenant series); empty on raw engine streams.
	Tenant string `json:"tenant,omitempty"`
	// Name labels the subject: the task name for task events and — so the
	// causal edge transfer → receiving task is visible — the destination
	// task's name for transfer events; empty otherwise.
	Name string `json:"name,omitempty"`
	// Machine is the executing machine (task events), the failed machine
	// (failure events) or the transfer source. None when not applicable.
	Machine int `json:"machine"`
	// Dst is the transfer destination machine; None otherwise.
	Dst int `json:"dst"`
	// Part is the partition the subject belongs to: the task's partition,
	// or — for transfers — the partition of the *destination* task, so
	// cross-partition traffic can be attributed. None for unpinned tasks.
	Part int `json:"part"`
	// Bytes is the transfer volume; 0 otherwise.
	Bytes int64 `json:"bytes,omitempty"`
	// Time is the virtual time the event logically occurred: issue time
	// for transfers, the clock for begin/end markers, the failure time.
	Time float64 `json:"time"`
	// Start and End bracket the busy interval of tasks and transfers.
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
	// Stall is a transfer's NIC queueing delay (Start - Time): how long
	// the bytes waited for the sender's egress and receiver's ingress
	// serialization.
	Stall float64 `json:"stall,omitempty"`
	// Incast reports that the receiver's ingress NIC was the binding
	// constraint for Stall — the all-to-all incast signature.
	Incast bool `json:"incast,omitempty"`
	// Attempt is the transfer attempt number for drop/retry events and
	// for transfers that finally succeeded after retries (0 = first try).
	Attempt int `json:"attempt,omitempty"`
	// Degraded reports a transfer ran over a link slowed by a transient
	// fault (its duration reflects the degraded bandwidth).
	Degraded bool `json:"degraded,omitempty"`
}

// Recorder collects the event stream of one or more runs. The zero value is
// ready to use; a nil *Recorder is a valid disabled recorder (every method
// is nil-safe), which is how the engine runs untraced with zero overhead.
type Recorder struct {
	events    []Event
	observers []func(Event)
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether events are being collected.
func (r *Recorder) Enabled() bool { return r != nil }

// Observe registers fn to be called synchronously from Emit with every
// event after its Seq is assigned, in emission order. This is the live
// sampling hook: a metrics collector attached here sees exactly the stream a
// later reader of Events() would, so live and trace-derived series agree by
// construction. Observers run in registration order inside the serial event
// loop; an observer may itself Emit (the nested event is stored and observed
// before the outer Emit returns). No-op on a nil recorder.
func (r *Recorder) Observe(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.observers = append(r.observers, fn)
}

// Emit appends one event to the stream, assigning its Seq, and returns the
// assigned Seq so emitters can thread it as the Cause of later events. On a
// nil (disabled) recorder it is a nil-check returning None immediately,
// allocating nothing.
func (r *Recorder) Emit(ev Event) int {
	if r == nil {
		return None
	}
	ev.Seq = len(r.events)
	r.events = append(r.events, ev)
	for _, fn := range r.observers {
		fn(ev)
	}
	return ev.Seq
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded stream in emission order. The slice is the
// recorder's backing store; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Reset drops all recorded events, keeping the capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
}
