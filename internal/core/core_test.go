package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
)

func testConfig(seed int64, strat PartitionStrategy) Config {
	return Config{
		Graph:    graph.SmallWorld(graph.DefaultSmallWorld(1500, seed)),
		Topology: cluster.NewT2(cluster.T2Config{Machines: 8, Pods: 2, Levels: 1}),
		Levels:   3,
		Strategy: strat,
		Seed:     seed,
	}
}

func TestBuildAllStrategies(t *testing.T) {
	for _, strat := range []PartitionStrategy{StrategyBandwidthAware, StrategyParMetis, StrategyRandom} {
		sys, err := Build(testConfig(1, strat))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if sys.PG.Part.P != 8 {
			t.Fatalf("%v: P = %d", strat, sys.PG.Part.P)
		}
		if err := sys.PG.Validate(); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := sys.Replicas.Validate(sys.Topology); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
	}
}

func TestBuildRejectsMissingInputs(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
	if _, err := Build(Config{Graph: graph.Ring(4)}); err == nil {
		t.Fatal("expected error for missing topology")
	}
}

func TestBuildAutoSizesPartitions(t *testing.T) {
	g := graph.SmallWorld(graph.DefaultSmallWorld(1000, 2))
	cfg := Config{
		Graph:        g,
		Topology:     cluster.NewT1(4),
		MemoryBudget: g.SizeBytes() / 3, // needs 4 partitions
		Seed:         2,
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.PG.Part.P != 4 {
		t.Fatalf("auto P = %d, want 4", sys.PG.Part.P)
	}
}

func TestInnerEdgeRatioOrdering(t *testing.T) {
	ba, err := Build(testConfig(3, StrategyBandwidthAware))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Build(testConfig(3, StrategyRandom))
	if err != nil {
		t.Fatal(err)
	}
	if ba.InnerEdgeRatio() <= rnd.InnerEdgeRatio() {
		t.Fatalf("bandwidth-aware ier %.3f <= random %.3f", ba.InnerEdgeRatio(), rnd.InnerEdgeRatio())
	}
}

func TestPartitioningTimeOrdering(t *testing.T) {
	cm := partition.DefaultCostModel()
	ba, err := Build(testConfig(4, StrategyBandwidthAware))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Build(testConfig(4, StrategyParMetis))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Build(testConfig(4, StrategyRandom))
	if err != nil {
		t.Fatal(err)
	}
	tBA, tPM := ba.PartitioningTime(cm), pm.PartitioningTime(cm)
	if tBA <= 0 || tPM <= tBA {
		t.Fatalf("partitioning times BA=%.3f PM=%.3f", tBA, tPM)
	}
	if rnd.PartitioningTime(cm) != 0 {
		t.Fatal("random strategy should report no partitioning time")
	}
}

// countProgram counts in-neighbors.
type countProgram struct{}

func (countProgram) Init(graph.VertexID) int64 { return 0 }
func (countProgram) Transfer(_ graph.VertexID, _ int64, dst graph.VertexID, emit propagation.Emit[int64]) {
	emit(dst, 1)
}
func (countProgram) Combine(_ graph.VertexID, _ int64, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}
func (countProgram) Bytes(int64) int64 { return 8 }
func (countProgram) Associative() bool { return true }
func (countProgram) Merge(_ graph.VertexID, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}

func TestRunPropagationEndToEnd(t *testing.T) {
	sys, err := Build(testConfig(5, StrategyBandwidthAware))
	if err != nil {
		t.Fatal(err)
	}
	st, m, err := RunPropagation[int64](sys, sys.NewRunner(), countProgram{}, 1, propagation.Options{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	in := sys.Graph.InDegrees()
	for v := range in {
		if st.Values[v] != int64(in[v]) {
			t.Fatalf("value[%d] = %d, want %d", v, st.Values[v], in[v])
		}
	}
	if m.ResponseSeconds <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestRunCascadedEndToEnd(t *testing.T) {
	sys, err := Build(testConfig(6, StrategyBandwidthAware))
	if err != nil {
		t.Fatal(err)
	}
	stPlain, _, err := RunPropagation[int64](sys, sys.NewRunner(), countProgram{}, 4, propagation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stCasc, _, err := RunCascaded[int64](sys, sys.NewRunner(), countProgram{}, 4, propagation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range stPlain.Values {
		if stPlain.Values[v] != stCasc.Values[v] {
			t.Fatalf("cascaded result differs at %d", v)
		}
	}
}

func TestBuildWithFailuresWiresRunner(t *testing.T) {
	cfg := testConfig(7, StrategyBandwidthAware)
	cfg.Failures = []engine.Failure{{Machine: 0, At: 0.001}}
	cfg.HeartbeatInterval = 0.0005
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Running with a failure must still produce correct results.
	st, _, err := RunPropagation[int64](sys, sys.NewRunner(), countProgram{}, 1, propagation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := sys.Graph.InDegrees()
	for v := range in {
		if st.Values[v] != int64(in[v]) {
			t.Fatalf("value[%d] wrong under failure", v)
		}
	}
}

func TestBuildDefaultsToSinglePartition(t *testing.T) {
	g := graph.Ring(64)
	sys, err := Build(Config{Graph: g, Topology: cluster.NewT1(2), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.PG.Part.P != 1 {
		t.Fatalf("P = %d, want 1 with no Levels/MemoryBudget", sys.PG.Part.P)
	}
}

func TestBuildUnknownStrategy(t *testing.T) {
	cfg := testConfig(8, PartitionStrategy(99))
	if _, err := Build(cfg); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestStrategyStrings(t *testing.T) {
	if StrategyBandwidthAware.String() != "bandwidth-aware" ||
		StrategyParMetis.String() != "parmetis" ||
		StrategyRandom.String() != "random" {
		t.Fatal("strategy names wrong")
	}
	if PartitionStrategy(42).String() == "" {
		t.Fatal("unknown strategy must still stringify")
	}
}
