// Package core assembles the Surfer system (§3, Figure 1): given a data
// graph and a cluster topology, it partitions the graph (bandwidth-aware or
// baseline), derives the storage placement with three-way replication, and
// exposes runners that execute propagation and MapReduce jobs with full
// metrics. It is the engine room behind the public surfer package.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
	"repro/internal/trace"
)

// PartitionStrategy selects how the graph is partitioned and placed.
type PartitionStrategy int

const (
	// StrategyBandwidthAware runs Algorithm 4: lockstep machine-graph and
	// data-graph bisection, sketch-guided placement.
	StrategyBandwidthAware PartitionStrategy = iota
	// StrategyParMetis runs the same bisection kernel but places
	// partitions on random machines, like ParMetis in the cloud (§6.2).
	StrategyParMetis
	// StrategyRandom assigns vertices to partitions uniformly at random
	// (the Table 5 sanity baseline) with random placement.
	StrategyRandom
)

func (s PartitionStrategy) String() string {
	switch s {
	case StrategyBandwidthAware:
		return "bandwidth-aware"
	case StrategyParMetis:
		return "parmetis"
	case StrategyRandom:
		return "random"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config describes a Surfer deployment.
type Config struct {
	// Graph is the data graph.
	Graph *graph.Graph
	// Topology is the simulated cluster.
	Topology *cluster.Topology
	// Levels is log2 of the partition count. When 0 and MemoryBudget is
	// set, the level count follows the paper's sizing rule
	// P = 2^ceil(log2(||G||/r)); when both are zero, a single partition
	// is used.
	Levels int
	// MemoryBudget is the per-machine memory in bytes for auto-sizing.
	MemoryBudget int64
	// Strategy selects the partitioner; default bandwidth-aware.
	Strategy PartitionStrategy
	// Seed drives every randomized choice.
	Seed int64
	// Failures inject machine deaths into runners created by NewRunner.
	Failures []engine.Failure
	// HeartbeatInterval is the failure-detection latency (default 1s).
	HeartbeatInterval float64
	// Workers sizes the engine's compute worker pool for runners created
	// by NewRunner: 0 selects GOMAXPROCS, 1 forces serial execution.
	// Results are bit-identical for every value.
	Workers int
	// Trace, when non-nil, receives the structured event stream of every
	// runner created by NewRunner: task starts/finishes, NIC transfers
	// with queueing delays, stage barriers, failures and retries. Export
	// it with trace.WriteChrome or fold it with trace.Summarize. Nil (the
	// default) disables tracing at zero cost.
	Trace *trace.Recorder
	// Faults injects transient faults (degraded links, dropped transfers,
	// machine slowdowns) into runners created by NewRunner. Nil disables
	// them at zero cost; the schedule is validated at Build time.
	Faults *fault.Schedule
	// Retry governs dropped-transfer detection and backoff; the zero value
	// selects the defaults.
	Retry fault.RetryPolicy
	// Speculation enables backup tasks for stragglers.
	Speculation fault.SpeculationPolicy
}

// System is a fully assembled Surfer deployment: partitioned, placed and
// replicated, ready to run jobs.
type System struct {
	Graph     *graph.Graph
	Topology  *cluster.Topology
	PG        *storage.PartitionedGraph
	Sketch    *partition.Sketch
	Placement *partition.Placement
	Replicas  *storage.Replicas
	// Steps records the distributed-partitioning cost steps (empty for
	// StrategyRandom).
	Steps []partition.BisectStep

	cfg Config
}

// Build partitions, places and replicates the graph per the configuration.
func Build(cfg Config) (*System, error) {
	if cfg.Graph == nil || cfg.Topology == nil {
		return nil, fmt.Errorf("core: config requires Graph and Topology")
	}
	levels := cfg.Levels
	if levels == 0 && cfg.MemoryBudget > 0 {
		levels, _ = partition.ChoosePartitionCount(cfg.Graph.SizeBytes(), cfg.MemoryBudget)
	}
	sys := &System{Graph: cfg.Graph, Topology: cfg.Topology, cfg: cfg}
	switch cfg.Strategy {
	case StrategyBandwidthAware:
		res := partition.BandwidthAware(cfg.Graph, cfg.Topology, levels, partition.Options{Seed: cfg.Seed})
		sys.Sketch, sys.Placement, sys.Steps = res.Sketch, res.Placement, res.Steps
		pg, err := storage.Build(cfg.Graph, res.Partitioning)
		if err != nil {
			return nil, err
		}
		sys.PG = pg
	case StrategyParMetis:
		res := partition.ParMetisLike(cfg.Graph, cfg.Topology, levels, partition.Options{Seed: cfg.Seed})
		sys.Sketch, sys.Placement, sys.Steps = res.Sketch, res.Placement, res.Steps
		pg, err := storage.Build(cfg.Graph, res.Partitioning)
		if err != nil {
			return nil, err
		}
		sys.PG = pg
	case StrategyRandom:
		pt := partition.Random(cfg.Graph, 1<<levels, cfg.Seed)
		pg, err := storage.Build(cfg.Graph, pt)
		if err != nil {
			return nil, err
		}
		sys.PG = pg
		sys.Placement = partition.RandomPlacement(pt.P, cfg.Topology, cfg.Seed)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}
	if err := sys.Placement.Validate(cfg.Topology); err != nil {
		return nil, err
	}
	sys.Replicas = storage.PlaceReplicas(sys.Placement, cfg.Topology, cfg.Seed)
	// Fail fast on malformed fault plans: a bad kill schedule or fault
	// window should be a Build error, not a mid-run hang.
	if err := engine.ValidateFailures(cfg.Failures, cfg.Topology, sys.Replicas); err != nil {
		return nil, err
	}
	if err := cfg.Faults.Validate(cfg.Topology.NumMachines()); err != nil {
		return nil, err
	}
	return sys, nil
}

// NewRunner creates a fresh engine runner over this system's topology,
// replicas and failure plan. Each experiment should use its own runner so
// clocks and metrics start at zero.
func (s *System) NewRunner() *engine.Runner {
	return engine.New(engine.Config{
		Topo:              s.Topology,
		Replicas:          s.Replicas,
		Failures:          s.cfg.Failures,
		HeartbeatInterval: s.cfg.HeartbeatInterval,
		Workers:           s.cfg.Workers,
		Trace:             s.cfg.Trace,
		Faults:            s.cfg.Faults,
		Retry:             s.cfg.Retry,
		Speculation:       s.cfg.Speculation,
	})
}

// Trace reports the configured trace recorder (nil when tracing is off).
func (s *System) Trace() *trace.Recorder { return s.cfg.Trace }

// Workers reports the configured compute worker count (0 = GOMAXPROCS).
func (s *System) Workers() int { return s.cfg.Workers }

// Failures reports the configured machine-death plan.
func (s *System) Failures() []engine.Failure { return s.cfg.Failures }

// Faults reports the configured transient-fault schedule (nil when unset).
func (s *System) Faults() *fault.Schedule { return s.cfg.Faults }

// Retry reports the configured dropped-transfer retry policy.
func (s *System) Retry() fault.RetryPolicy { return s.cfg.Retry }

// Speculation reports the configured speculative-execution policy.
func (s *System) Speculation() fault.SpeculationPolicy { return s.cfg.Speculation }

// PartitioningTime estimates the elapsed time of the distributed
// partitioning run itself under the given cost model (Table 1). It returns
// 0 for StrategyRandom, which records no steps.
func (s *System) PartitioningTime(cm partition.CostModel) float64 {
	if len(s.Steps) == 0 {
		return 0
	}
	res := &partition.Result{Steps: s.Steps}
	staged := s.cfg.Strategy == StrategyParMetis
	return cm.PartitioningTime(res, s.Topology, staged)
}

// InnerEdgeRatio reports the partitioning quality metric of Table 5.
func (s *System) InnerEdgeRatio() float64 {
	return partition.InnerEdgeRatio(s.Graph, s.PG.Part)
}

// RunPropagation executes a propagation program for the given number of
// iterations on a fresh state, returning the final state and metrics.
func RunPropagation[V any](s *System, r *engine.Runner, prog propagation.Program[V], iters int, opt propagation.Options) (*propagation.State[V], engine.Metrics, error) {
	st := propagation.NewState[V](s.PG, prog)
	return propagation.RunIterations(r, s.PG, s.Placement, prog, st, opt, iters)
}

// RunCascaded is RunPropagation with cascaded multi-iteration optimization
// (§5.2).
func RunCascaded[V any](s *System, r *engine.Runner, prog propagation.Program[V], iters int, opt propagation.Options) (*propagation.State[V], engine.Metrics, error) {
	st := propagation.NewState[V](s.PG, prog)
	return propagation.RunCascaded(r, s.PG, s.Placement, prog, st, opt, iters, nil)
}

// RunCheckpointed is RunPropagation with iteration checkpointing: state is
// persisted to replicas every ckpt.Interval iterations, and a machine death
// replays at most that many iterations instead of the whole run.
func RunCheckpointed[V any](s *System, r *engine.Runner, prog propagation.Program[V], iters int, opt propagation.Options, ckpt propagation.CheckpointConfig) (*propagation.State[V], engine.Metrics, error) {
	if ckpt.Interval > 0 && ckpt.Replicas == nil {
		ckpt.Replicas = s.Replicas
	}
	st := propagation.NewState[V](s.PG, prog)
	return propagation.RunCheckpointed(r, s.PG, s.Placement, prog, st, opt, iters, ckpt)
}

// RunMapReduce executes a MapReduce program once.
func RunMapReduce[K mapreduce.Key, V any, R any](s *System, r *engine.Runner, prog mapreduce.Program[K, V, R], opt mapreduce.Options) (map[K]R, engine.Metrics, error) {
	return mapreduce.Run[K, V, R](r, s.PG, s.Placement, prog, opt)
}
