package analyze

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

// Edge-of-envelope streams: the analyzer must reject unusable input with a
// descriptive error and keep its invariants on minimal or oddly-terminated
// streams — never panic, never return a report that doesn't sum.

func TestAnalyzeEmptyStream(t *testing.T) {
	rep, err := Analyze(nil, nil)
	if err == nil {
		t.Fatalf("empty stream accepted: %+v", rep)
	}
	if !strings.Contains(err.Error(), "no completed job") {
		t.Errorf("empty-stream error %q should say no completed job", err)
	}
	if rep2, err2 := Analyze([]trace.Event{}, nil); err2 == nil {
		t.Fatalf("zero-length stream accepted: %+v", rep2)
	}
}

func TestAnalyzeSingleEventStream(t *testing.T) {
	// A lone job-begin: a job started but the trace carries no completion.
	events := []trace.Event{
		{Seq: 0, Kind: trace.KindJobBegin, Time: 0, Job: "solo", Cause: trace.None},
	}
	if rep, err := Analyze(events, nil); err == nil {
		t.Fatalf("job with no end accepted: %+v", rep)
	} else if !strings.Contains(err.Error(), "no completed job") {
		t.Errorf("error %q should say no completed job", err)
	}
	// A lone scheduler event: a job queued, nothing ever ran.
	events = []trace.Event{
		{Seq: 0, Kind: trace.KindJobQueued, Time: 0, Job: "solo", Cause: trace.None},
	}
	if rep, err := Analyze(events, nil); err == nil {
		t.Fatalf("queue-only stream accepted: %+v", rep)
	}
}

// TestAnalyzeTrailingFailure: a stream whose final events are failures
// after the last job-end — a machine died while the cluster wound down.
// The analyzer must anchor the makespan at the job-end, attribute fully,
// and not trip over the trailing instants.
func TestAnalyzeTrailingFailure(t *testing.T) {
	events := []trace.Event{
		{Seq: 0, Kind: trace.KindJobBegin, Time: 0, Job: "j", Cause: trace.None},
		{Seq: 1, Kind: trace.KindStageBegin, Time: 0, Job: "j", Stage: "s", Cause: 0},
		{Seq: 2, Kind: trace.KindTaskStart, Time: 0, Job: "j", Stage: "s", Name: "t", Machine: 0, Start: 0, End: 0.5, Cause: 1},
		{Seq: 3, Kind: trace.KindTaskEnd, Time: 0.5, Job: "j", Stage: "s", Name: "t", Machine: 0, Start: 0, End: 0.5, Cause: 2},
		{Seq: 4, Kind: trace.KindStageEnd, Time: 0.5, Job: "j", Stage: "s", Cause: 3},
		{Seq: 5, Kind: trace.KindJobEnd, Time: 0.5, Job: "j", Cause: 4},
		{Seq: 6, Kind: trace.KindFailure, Time: 0.7, Machine: 2, Cause: trace.None},
		{Seq: 7, Kind: trace.KindFailure, Time: 0.9, Machine: 3, Cause: trace.None},
	}
	rep, err := Analyze(events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 0.5 {
		t.Errorf("makespan %g, want 0.5 (job-end, not the trailing failure)", rep.Makespan)
	}
	var sum float64
	for _, c := range Categories {
		sum += rep.Blame[c]
	}
	if math.Abs(sum-rep.Makespan) > 1e-12 {
		t.Errorf("blame sums to %g, makespan %g", sum, rep.Makespan)
	}
	if math.Abs(rep.Blame[CatCompute]-0.5) > 1e-12 {
		t.Errorf("compute blame %g, want 0.5", rep.Blame[CatCompute])
	}
}

// TestAnalyzeRejectsCorruptSeq: reordered or truncated streams (seq gaps)
// are refused with a descriptive error, not analyzed partially.
func TestAnalyzeRejectsCorruptSeq(t *testing.T) {
	events := []trace.Event{
		{Seq: 0, Kind: trace.KindJobBegin, Time: 0, Job: "j", Cause: trace.None},
		{Seq: 2, Kind: trace.KindJobEnd, Time: 1, Job: "j", Cause: 0},
	}
	if _, err := Analyze(events, nil); err == nil {
		t.Fatal("seq-gap stream accepted")
	} else if !strings.Contains(err.Error(), "reordered or truncated") {
		t.Errorf("error %q should flag reordering/truncation", err)
	}
	events = []trace.Event{
		{Seq: 0, Kind: trace.KindJobBegin, Time: 0, Job: "j", Cause: trace.None},
		{Seq: 1, Kind: trace.KindJobEnd, Time: 1, Job: "j", Cause: 5},
	}
	if _, err := Analyze(events, nil); err == nil {
		t.Fatal("acausal stream accepted")
	} else if !strings.Contains(err.Error(), "acausal") {
		t.Errorf("error %q should flag the acausal edge", err)
	}
}
