package analyze

import "sort"

// Trace diff: given the analyses of two runs of the same workload, report
// where the time went differently — per blame category, per stage, and
// (when topology headers were present) which links and machines regressed.
// Positive deltas mean B is slower/busier than A.

// CategoryDelta is one blame category's change.
type CategoryDelta struct {
	Category string  `json:"category"`
	A        float64 `json:"a"`
	B        float64 `json:"b"`
	Delta    float64 `json:"delta"`
}

// StageDelta is one stage row's change; Worst names the category that
// regressed most within the stage (empty when the stage got faster).
type StageDelta struct {
	Label string  `json:"label"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"`
	Worst string  `json:"worst,omitempty"`
}

// LinkDelta is a directed link's busy-seconds change.
type LinkDelta struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Level int     `json:"level"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"`
}

// MachineDelta is a machine's compute busy-seconds change.
type MachineDelta struct {
	Machine int     `json:"machine"`
	A       float64 `json:"a"`
	B       float64 `json:"b"`
	Delta   float64 `json:"delta"`
}

// DiffReport is the delta view of two analyses.
type DiffReport struct {
	MakespanA  float64         `json:"makespan_a"`
	MakespanB  float64         `json:"makespan_b"`
	Delta      float64         `json:"delta"`
	Categories []CategoryDelta `json:"categories"`
	Stages     []StageDelta    `json:"stages"`
	// Links / Machines list the five worst regressions (largest positive
	// delta first); Links is empty when either trace lacked a topology.
	Links    []LinkDelta    `json:"links,omitempty"`
	Machines []MachineDelta `json:"machines,omitempty"`
}

// Diff compares two analyses of the same workload.
func Diff(a, b *Report) *DiffReport {
	d := &DiffReport{
		MakespanA: a.Makespan,
		MakespanB: b.Makespan,
		Delta:     b.Makespan - a.Makespan,
	}
	for _, cat := range Categories {
		d.Categories = append(d.Categories, CategoryDelta{
			Category: cat, A: a.Blame[cat], B: b.Blame[cat], Delta: b.Blame[cat] - a.Blame[cat],
		})
	}

	// Stages: B's chronological order first, then rows only A has.
	aRows := make(map[string]*StageBlame, len(a.Stages))
	for _, r := range a.Stages {
		aRows[r.Label] = r
	}
	bSeen := make(map[string]bool, len(b.Stages))
	for _, rb := range b.Stages {
		bSeen[rb.Label] = true
		sd := StageDelta{Label: rb.Label, B: rb.Total}
		worst := 0.0
		if ra := aRows[rb.Label]; ra != nil {
			sd.A = ra.Total
			for _, cat := range Categories {
				if dd := rb.Seconds[cat] - ra.Seconds[cat]; dd > worst {
					worst, sd.Worst = dd, cat
				}
			}
		} else {
			for _, cat := range Categories {
				if dd := rb.Seconds[cat]; dd > worst {
					worst, sd.Worst = dd, cat
				}
			}
		}
		sd.Delta = sd.B - sd.A
		d.Stages = append(d.Stages, sd)
	}
	for _, ra := range a.Stages {
		if !bSeen[ra.Label] {
			d.Stages = append(d.Stages, StageDelta{Label: ra.Label, A: ra.Total, Delta: -ra.Total})
		}
	}

	if a.Links != nil && b.Links != nil {
		d.Links = linkDeltas(a.Links, b.Links)
	}
	d.Machines = machineDeltas(a.MachineCompute, b.MachineCompute)
	return d
}

func linkDeltas(a, b *LinkReport) []LinkDelta {
	type key struct{ src, dst int }
	am := make(map[key]LinkStat, len(a.all))
	for _, st := range a.all {
		am[key{st.Src, st.Dst}] = st
	}
	seen := make(map[key]bool, len(b.all))
	var out []LinkDelta
	for _, st := range b.all {
		k := key{st.Src, st.Dst}
		seen[k] = true
		ld := LinkDelta{Src: st.Src, Dst: st.Dst, Level: st.Level, B: st.BusySeconds}
		ld.A = am[k].BusySeconds
		ld.Delta = ld.B - ld.A
		out = append(out, ld)
	}
	for _, st := range a.all {
		if !seen[key{st.Src, st.Dst}] {
			out = append(out, LinkDelta{Src: st.Src, Dst: st.Dst, Level: st.Level,
				A: st.BusySeconds, Delta: -st.BusySeconds})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	if len(out) > 5 {
		out = out[:5]
	}
	return out
}

func machineDeltas(a, b []float64) []MachineDelta {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]MachineDelta, 0, n)
	for m := 0; m < n; m++ {
		md := MachineDelta{Machine: m}
		if m < len(a) {
			md.A = a[m]
		}
		if m < len(b) {
			md.B = b[m]
		}
		md.Delta = md.B - md.A
		out = append(out, md)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		return out[i].Machine < out[j].Machine
	})
	if len(out) > 5 {
		out = out[:5]
	}
	return out
}
