package analyze

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Utilization-driven autoscaling (ROADMAP: elasticity; "Elastic Resource
// Allocation for Distributed Graph Processing Platforms" argues scaling
// decisions should follow per-superstep load). The policy reads the same
// signal the link report computes — per-directed-link utilization at
// bisection level 0, the top-level cut that is the scarcest bandwidth in the
// hierarchy — per job window (one window per engine job, i.e. per iteration
// for propagation runs): when any level-0 link stays saturated for K
// consecutive windows the cluster should grow, and when the whole level
// stays idle for K windows it should shrink.
//
// Autoscale is a pure function of (events, topology, policy), so its plan
// inherits the determinism contract and can be fed straight back into a
// re-run as a fault.File with joins and drains.

// AutoscalePolicy parameterizes the recommendation rule. The zero value
// selects the defaults.
type AutoscalePolicy struct {
	// SaturateUtil is the level-0 per-link utilization (busy seconds ÷
	// window length, on the hottest directed link) at or above which a
	// window counts as saturated. Default 0.8.
	SaturateUtil float64
	// IdleUtil is the utilization at or below which a window counts as
	// idle. Default 0.05.
	IdleUtil float64
	// K is how many consecutive saturated (idle) windows trigger a join
	// (drain). Default 2.
	K int
	// DrainSlack is the migration deadline a recommended drain gets, in
	// virtual seconds after its At. Default 2× the triggering window's
	// length (never below 1s), so a healthy cluster migrates out in time.
	DrainSlack float64
}

// WithDefaults fills unset fields with the default policy.
func (p AutoscalePolicy) WithDefaults() AutoscalePolicy {
	if p.SaturateUtil <= 0 {
		p.SaturateUtil = 0.8
	}
	if p.IdleUtil <= 0 {
		p.IdleUtil = 0.05
	}
	if p.K <= 0 {
		p.K = 2
	}
	return p
}

// WindowUtil is the per-window diagnostic behind a recommendation: one row
// per engine job in stream order.
type WindowUtil struct {
	Job   string  `json:"job"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// MaxLevel0Util is the hottest level-0 directed link's busy fraction
	// of this window.
	MaxLevel0Util float64 `json:"max_level0_util"`
	// Saturated / Idle report how the policy classified the window.
	Saturated bool `json:"saturated,omitempty"`
	Idle      bool `json:"idle,omitempty"`
}

// AutoscalePlan is the policy's output: elastic events ready to replay.
type AutoscalePlan struct {
	Windows []WindowUtil         `json:"windows"`
	Joins   []fault.MachineJoin  `json:"joins,omitempty"`
	Drains  []fault.MachineDrain `json:"drains,omitempty"`
}

// File converts the plan into the on-disk fault-schedule format, so a
// recommended scaling action replays with `surfer-run -fail plan.json`.
func (pl *AutoscalePlan) File() *fault.File {
	f := &fault.File{}
	for _, j := range pl.Joins {
		f.Joins = append(f.Joins, fault.FileJoin{Machine: int(j.Machine), At: j.At, NICs: j.NICs})
	}
	for _, d := range pl.Drains {
		f.Drains = append(f.Drains, fault.FileDrain{Machine: int(d.Machine), At: d.At, Deadline: d.Deadline})
	}
	return f
}

// Autoscale applies the policy to a trace: per job window it reads the
// hottest level-0 directed link's utilization (the metrics package's
// JobWindows fold — the same numbers the dashboards observe), then
// recommends one join per saturation streak (the next provisioned machine
// ID past the topology) and one drain per idle streak (the least-loaded
// machine by task busy seconds, never machine 0, never a machine already
// recommended for drain).
func Autoscale(events []trace.Event, topo *cluster.Topology, policy AutoscalePolicy) (*AutoscalePlan, error) {
	if topo == nil {
		return nil, fmt.Errorf("analyze: autoscale needs the trace's topology header")
	}
	p := policy.WithDefaults()
	if err := validate(events); err != nil {
		return nil, err
	}
	n := topo.NumMachines()
	wins := metrics.JobWindows(events, topo)

	// Least-loaded machine over the whole stream, for drain targeting.
	compute := machineCompute(events)

	plan := &AutoscalePlan{}
	sat, idle := 0, 0
	nextJoin := cluster.MachineID(n)
	drained := make(map[cluster.MachineID]bool)
	for _, w := range wins {
		span := w.End - w.Start
		maxUtil := w.MaxLevel0Util
		wu := WindowUtil{Job: w.Job, Start: w.Start, End: w.End, MaxLevel0Util: maxUtil}
		if maxUtil >= p.SaturateUtil {
			wu.Saturated = true
			sat++
			idle = 0
		} else if maxUtil <= p.IdleUtil {
			wu.Idle = true
			idle++
			sat = 0
		} else {
			sat, idle = 0, 0
		}
		plan.Windows = append(plan.Windows, wu)
		if sat >= p.K {
			// The bisection stayed saturated for K windows: grow. The join
			// target is the next machine past the current topology — the
			// caller expands the topology before replaying.
			plan.Joins = append(plan.Joins, fault.MachineJoin{At: w.End, Machine: nextJoin})
			nextJoin++
			sat = 0
		}
		if idle >= p.K {
			// The bisection stayed idle for K windows: shrink by draining
			// the least-loaded machine (ties to the lowest ID; machine 0 is
			// never drained so a live machine always remains).
			m := leastLoaded(compute, n, drained)
			if m > 0 {
				drained[m] = true
				slack := p.DrainSlack
				if slack <= 0 {
					slack = 2 * span
					if slack < 1 {
						slack = 1
					}
				}
				plan.Drains = append(plan.Drains, fault.MachineDrain{
					At: w.End, Machine: m, Deadline: w.End + slack,
				})
			}
			idle = 0
		}
	}
	sort.Slice(plan.Drains, func(i, j int) bool {
		if plan.Drains[i].At != plan.Drains[j].At {
			return plan.Drains[i].At < plan.Drains[j].At
		}
		return plan.Drains[i].Machine < plan.Drains[j].Machine
	})
	return plan, nil
}

// leastLoaded returns the machine with the smallest task busy time (ties to
// the lowest ID), skipping machine 0 and already-drained machines; 0 when
// no candidate remains.
func leastLoaded(compute []float64, n int, drained map[cluster.MachineID]bool) cluster.MachineID {
	best := cluster.MachineID(0)
	bestV := 0.0
	for i := 1; i < n; i++ {
		m := cluster.MachineID(i)
		if drained[m] {
			continue
		}
		v := 0.0
		if i < len(compute) {
			v = compute[i]
		}
		if best == 0 || v < bestV {
			best, bestV = m, v
		}
	}
	return best
}
